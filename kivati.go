// Package kivati is a from-scratch reproduction of "Kivati: Fast Detection
// and Prevention of Atomicity Violations" (Chew & Lie, EuroSys 2010).
//
// Kivati detects and prevents atomicity-violation bugs in running programs
// using hardware watchpoints. A static annotator brackets every consecutive
// pair of accesses to a shared variable — an atomic region (AR) — with
// begin_atomic/end_atomic annotations; at run time, begin_atomic arms a
// debug-register watchpoint on the variable, remote accesses that interleave
// trap into a kernel engine that undoes the committed access (x86 traps
// after the access) and delays the remote thread until the region completes,
// and end_atomic applies the serializability test of the paper's Figure 2 to
// decide whether a violation occurred.
//
// Because real debug registers are unreachable from Go, the library ships
// its own substrate: a MiniC front end standing in for C+CIL, a
// variable-length bytecode machine with per-core watchpoint registers and
// trap-after semantics, and a simulated kernel — so the paper's algorithms
// run end to end. See DESIGN.md for the substitution map.
//
// Quick start:
//
//	p, _ := kivati.Build(src)
//	report, _ := kivati.Run(p, kivati.Config{Mode: kivati.Prevention})
//	for _, v := range report.Violations { fmt.Println(v) }
package kivati

import (
	"kivati/internal/annotate"
	"kivati/internal/core"
	"kivati/internal/hw"
	"kivati/internal/kernel"
	"kivati/internal/trace"
	"kivati/internal/vm"
	"kivati/internal/whitelist"
)

// Mode selects prevention mode (low overhead) or bug-finding mode (pauses
// threads inside atomic regions to amplify interleavings, §2.3).
type Mode = kernel.Mode

const (
	Prevention = kernel.Prevention
	BugFinding = kernel.BugFinding
)

// OptLevel selects the optimization configuration (the paper's Table 3
// columns).
type OptLevel = kernel.OptLevel

const (
	OptBase        = kernel.OptBase
	OptNullSyscall = kernel.OptNullSyscall
	OptSyncVars    = kernel.OptSyncVars
	OptOptimized   = kernel.OptOptimized
)

// AccessType is a memory access kind (Read, Write or both).
type AccessType = hw.AccessType

const (
	Read  = hw.Read
	Write = hw.Write
)

// Violation is a detected atomicity violation, with the thread IDs, shared
// variable address and program counters of the involved accesses.
type Violation = trace.Violation

// Stats are the run's execution and kernel-entry counters.
type Stats = kernel.Stats

// FormatViolationReport renders a developer-facing report that groups
// violations by atomic region, with the thread IDs, variable addresses and
// program counters the paper's trace records contain (§2.2).
func FormatViolationReport(vs []Violation) string { return trace.FormatReport(vs) }

// Whitelist is the set of benign AR IDs skipped in user space.
type Whitelist = whitelist.Whitelist

// NewWhitelist returns an empty whitelist.
func NewWhitelist() *Whitelist { return whitelist.New() }

// LoadWhitelist reads a whitelist file (one AR ID per line, # comments).
func LoadWhitelist(path string) (*Whitelist, error) { return whitelist.Load(path) }

// Program is a built (annotated and compiled) MiniC program.
type Program struct {
	p *core.Program
}

// Build parses a MiniC source, runs the static annotator (LSV + reaching
// access pairing) and prepares it for execution.
func Build(source string) (*Program, error) {
	p, err := core.Build(source)
	if err != nil {
		return nil, err
	}
	return &Program{p: p}, nil
}

// Analysis selects the static-analysis extensions of the paper's §3.5
// future work.
type Analysis struct {
	// Precise enables the points-to pass: monitoring is restricted to
	// variables another thread can actually reach, and single-target
	// pointer dereferences fold onto their pointees (atomic regions form
	// across aliases).
	Precise bool
	// InterProcedural treats each call as a compound access to the
	// globals its callee transitively touches, so atomic regions span
	// subroutine boundaries (a caller-side check paired with a helper's
	// update).
	InterProcedural bool
	// Lockset runs the flow-sensitive Eraser-style lockset analysis and
	// marks every AR it proves serializable (both accesses consistently
	// protected by a common lock); StaticWhitelist then works.
	Lockset bool
	// Optimize enables the annotation optimizer: proven-benign ARs are
	// dropped, ARs covered by sub-regions are deduplicated, and chained
	// same-watch ARs coalesce. Implies Lockset.
	Optimize bool
	// Roots names extra thread entry functions (beyond main, spawn targets
	// and uncalled functions) for the lockset analysis.
	Roots []string
}

// BuildWithAnalysis is Build with the selected §3.5 analysis extensions.
func BuildWithAnalysis(source string, a Analysis) (*Program, error) {
	p, err := core.BuildWithOptions(source, annotate.Options{
		Precise:         a.Precise,
		InterProcedural: a.InterProcedural,
		Lockset:         a.Lockset || a.Optimize,
		Roots:           a.Roots,
		Optimize: annotate.OptimizeOptions{
			DropBenign: a.Optimize,
			Dedupe:     a.Optimize,
			Coalesce:   a.Optimize,
		},
	})
	if err != nil {
		return nil, err
	}
	return &Program{p: p}, nil
}

// BuildPrecise is BuildWithAnalysis with only the points-to pass enabled.
func BuildPrecise(source string) (*Program, error) {
	return BuildWithAnalysis(source, Analysis{Precise: true})
}

// AnnotatedSource renders the program with its begin_atomic / end_atomic /
// clear_ar annotations, in the style of the paper's Figures 3 and 4.
func (p *Program) AnnotatedSource() string {
	return annotate.PrintAnnotated(p.p.Annotated)
}

// AR describes one static atomic region.
type AR struct {
	ID     int
	Func   string
	Var    string
	First  AccessType
	Second AccessType
	Watch  AccessType
}

// ARs lists the program's atomic regions.
func (p *Program) ARs() []AR {
	out := make([]AR, 0, len(p.p.Annotated.ARs))
	for _, ar := range p.p.Annotated.ARs {
		out = append(out, AR{
			ID: ar.ID, Func: ar.Func, Var: ar.Key.String(),
			First: ar.First, Second: ar.Second, Watch: ar.Watch,
		})
	}
	return out
}

// SyncVarWhitelist returns the ARs on synchronization variables (lock and
// unlock operands, plus any extra flag names), the seed for optimization 4.
func (p *Program) SyncVarWhitelist(extraNames ...string) (*Whitelist, error) {
	return p.p.SyncVarWhitelist(extraNames...)
}

// StaticWhitelist returns the sync-variable whitelist plus every AR the
// lockset analysis statically proved serializable — a compile-time
// replacement for the Figure 7 training loop. The program must have been
// built with Analysis.Lockset (or Optimize) set.
func (p *Program) StaticWhitelist(extraNames ...string) (*Whitelist, error) {
	return p.p.StaticWhitelist(extraNames...)
}

// Start names a thread entry function and its integer argument.
type Start = core.Start

// RequestConfig drives the open-loop request generator for server programs
// using recv()/send().
type RequestConfig = vm.RequestConfig

// Config configures a run. The zero value runs prevention mode at the Base
// optimization level on 2 cores with 4 watchpoints, starting main().
type Config struct {
	Mode           Mode
	Opt            OptLevel
	Vanilla        bool // run without any Kivati instrumentation (baseline)
	NumWatchpoints int  // default 4 (x86 debug registers)
	Cores          int  // default 2
	Seed           int64
	MaxTicks       uint64 // virtual-time budget; default 500M ticks
	TimeoutTicks   uint64 // suspension timeout; default 10_000 (10 ms)
	PauseTicks     uint64 // bug-finding pause length
	PauseEvery     uint64 // bug-finding pause sampling (every Nth begin)
	// TrapBefore simulates before-access watchpoint hardware (Table 1:
	// SPARC/MIPS-class) instead of x86's trap-after semantics; the
	// prevention engine then delays remote threads without any undo.
	TrapBefore bool
	Whitelist  *Whitelist
	// WhitelistReloadTicks periodically re-reads the whitelist from its
	// backing source during execution (0 = every 1M ticks when a source
	// exists), so trained updates reach long-running processes (§3.2).
	WhitelistReloadTicks uint64
	Requests             *RequestConfig
	Starts               []Start
	// OnViolation, if set, sees each violation as it is detected;
	// returning true stops the run.
	OnViolation func(Violation) bool
}

// Report is the outcome of a run.
type Report struct {
	Violations []Violation
	Stats      *Stats
	Output     []int64  // values passed to print()
	Latencies  []uint64 // request latencies (server programs)
	Reason     string   // "completed", "max-ticks", "stopped", "deadlock"
	Ticks      uint64   // virtual time consumed
}

func (c Config) toCore() core.RunConfig {
	return core.RunConfig{
		Mode:                 c.Mode,
		Opt:                  c.Opt,
		Vanilla:              c.Vanilla,
		NumWatchpoints:       c.NumWatchpoints,
		Cores:                c.Cores,
		Seed:                 c.Seed,
		MaxTicks:             c.MaxTicks,
		TimeoutTicks:         c.TimeoutTicks,
		PauseTicks:           c.PauseTicks,
		PauseEvery:           c.PauseEvery,
		Whitelist:            c.Whitelist,
		WhitelistReloadTicks: c.WhitelistReloadTicks,
		Requests:             c.Requests,
		OnViolation:          c.OnViolation,
		Starts:               c.Starts,
	}
}

// Run executes the program under Kivati.
func Run(p *Program, cfg Config) (*Report, error) {
	res, err := core.Run(p.p, cfg.toCore())
	if err != nil {
		return nil, err
	}
	return &Report{
		Violations: res.Violations,
		Stats:      res.Stats,
		Output:     res.Output,
		Latencies:  res.Latencies,
		Reason:     res.Reason,
		Ticks:      res.Ticks,
	}, nil
}

// TrainResult reports a whitelist training campaign (§4.2 / Figure 7).
type TrainResult struct {
	Whitelist *Whitelist
	NewFPs    []int // new false positives found per iteration
}

// Train repeatedly runs the program, whitelisting every violated AR that is
// not on a known-bug variable — the paper's procedure for eliminating benign
// and required violations before deployment.
func Train(p *Program, cfg Config, iterations int, bugVars []string) (*TrainResult, error) {
	bugs := map[string]bool{}
	for _, v := range bugVars {
		bugs[v] = true
	}
	tr, err := core.Train(p.p, cfg.toCore(), iterations, bugs)
	if err != nil {
		return nil, err
	}
	return &TrainResult{Whitelist: tr.Whitelist, NewFPs: tr.NewFPs}, nil
}
