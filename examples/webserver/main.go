// Webserver: measure what Kivati costs a request-serving application — the
// paper's Table 5 experiment in miniature.
//
// A four-worker server handles requests arriving on an open-loop generator
// (recv()/send() mark request start and completion). Each request hits a
// lock-protected document cache and occasionally bumps unlocked statistics
// counters — the benign-violation pattern real servers exhibit. We compare
// mean request latency vanilla vs. fully-optimized Kivati.
//
// Run with: go run ./examples/webserver
package main

import (
	"fmt"
	"log"

	"kivati"
)

const src = `
int cache[8];
int cachetag[8];
int hits;
int statlk;
int cachelk;
int done;
int served;

int render(int v) {
    int x;
    int j;
    x = v + 7;
    j = 0;
    while (j < 1200) {
        x = x * 31 + j;
        j = j + 1;
    }
    return x;
}

void serve(int req) {
    int doc;
    int slot;
    int body;
    doc = req % 13;
    slot = doc % 8;
    lock(cachelk);
    if (cachetag[slot] == doc + 1) {
        body = cache[slot];
    } else {
        cachetag[slot] = doc + 1;
        cache[slot] = doc * 7 + 3;
        body = doc * 7 + 3;
    }
    unlock(cachelk);
    body = render(body);
    if (body % 6 == 0) {
        hits = hits + 1;
    }
}

void worker(int id) {
    int req;
    int stop;
    stop = 0;
    while (stop == 0) {
        lock(statlk);
        if (served >= 120) {
            stop = 1;
        } else {
            served = served + 1;
        }
        unlock(statlk);
        if (stop == 0) {
            req = recv();
            serve(req);
            send(req);
        }
    }
    lock(statlk);
    done = done + 1;
    unlock(statlk);
}

void main() {
    spawn(worker, 1);
    spawn(worker, 2);
    spawn(worker, 3);
    worker(0);
    while (done < 4) {
        yield();
    }
}
`

func mean(xs []uint64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s uint64
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

func main() {
	p, err := kivati.Build(src)
	if err != nil {
		log.Fatal(err)
	}
	reqs := &kivati.RequestConfig{MeanInterarrival: 5000, Count: 120}

	measure := func(name string, cfg kivati.Config) float64 {
		cfg.Requests = reqs
		cfg.Seed = 3
		rep, err := kivati.Run(p, cfg)
		if err != nil {
			log.Fatal(err)
		}
		m := mean(rep.Latencies)
		fmt.Printf("%-22s %4d requests, mean latency %7.0f ticks, runtime %8d ticks\n",
			name, len(rep.Latencies), m, rep.Ticks)
		return m
	}

	fmt.Println("Request latency under Kivati (Table 5 style):")
	wl, err := p.SyncVarWhitelist()
	if err != nil {
		log.Fatal(err)
	}
	van := measure("vanilla", kivati.Config{Vanilla: true})
	prev := measure("prevention/optimized", kivati.Config{
		Mode: kivati.Prevention, Opt: kivati.OptOptimized, Whitelist: wl,
	})
	bug := measure("bug-finding/optimized", kivati.Config{
		Mode: kivati.BugFinding, Opt: kivati.OptOptimized, Whitelist: wl,
		PauseTicks: 20_000, PauseEvery: 300,
	})
	fmt.Printf("\nlatency overhead: prevention %+.1f%%, bug-finding %+.1f%%\n",
		(prev-van)/van*100, (bug-van)/van*100)
}
