// Analysis: the paper's §3.5 future work, implemented — see what the
// points-to pass and the inter-procedural call summaries change.
//
// The program hides a check-then-act race behind a helper function and
// performs its updates through a pointer alias, while a pile of
// value-dependent private locals would bloat the prototype analysis's
// monitoring. We build it three ways and compare the atomic-region tables
// and the runtime behaviour.
//
// Run with: go run ./examples/analysis
package main

import (
	"fmt"
	"log"

	"kivati"
)

const src = `
int session;
int inits;
int done;
int lk;

int hash(int v) {
    int x;
    int j;
    x = v + 10007;
    j = 0;
    while (j < 40) {
        x = x * 31 + j;
        j = j + 1;
    }
    if (x < 0) {
        x = 0 - x;
    }
    return x;
}

void init_session(int id) {
    int *p;
    p = &session;
    *p = id;
    inits = inits + 1;
}

void reset_session(int id) {
    session = 0;
}

void worker(int id) {
    int i;
    int w;
    int copy1;
    int copy2;
    i = 0;
    while (i < 500) {
        w = hash(id * 131 + i);
        copy1 = session;
        copy2 = copy1 + w;
        if (w % 3 == 0) {
            if (session == 0) {
                init_session(id);
            }
        }
        if (w % 3 == 1) {
            reset_session(id);
        }
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}

void main() {
    spawn(worker, 1);
    worker(2);
    while (done < 2) {
        yield();
    }
}
`

func inspect(name string, p *kivati.Program) {
	ars := p.ARs()
	callerARs := 0
	for _, ar := range ars {
		if ar.Func == "worker" && ar.Var == "session" {
			callerARs++
		}
	}
	rep, err := kivati.Run(p, kivati.Config{Seed: 9, MaxTicks: 400_000_000})
	if err != nil {
		log.Fatal(err)
	}
	sessionViolations := 0
	for _, v := range rep.Violations {
		if v.Var == "session" || v.Var == "*p" {
			sessionViolations++
		}
	}
	fmt.Printf("%-28s %3d ARs total, %d caller-level on session; run: %4d begins, %2d session violations\n",
		name, len(ars), callerARs, rep.Stats.Begins, sessionViolations)
}

func main() {
	fmt.Println("Static analysis variants on the helper-factored check-then-act race:")
	fmt.Println()

	prototype, err := kivati.Build(src)
	if err != nil {
		log.Fatal(err)
	}
	inspect("prototype (paper §3.1)", prototype)

	precise, err := kivati.BuildWithAnalysis(src, kivati.Analysis{Precise: true})
	if err != nil {
		log.Fatal(err)
	}
	inspect("points-to (§3.5)", precise)

	full, err := kivati.BuildWithAnalysis(src, kivati.Analysis{Precise: true, InterProcedural: true})
	if err != nil {
		log.Fatal(err)
	}
	inspect("points-to + inter-proc", full)

	fmt.Println()
	fmt.Println("The points-to pass drops the monitors on copy1/copy2 (fewer ARs, fewer")
	fmt.Println("begins); the inter-procedural summaries add the caller-level region that")
	fmt.Println("spans init_session(), which is what catches the factored-out race.")
}
