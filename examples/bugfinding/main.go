// Bugfinding: hunt a rarely-manifesting atomicity bug with Kivati's
// bug-finding mode — the paper's Table 6 experiment in miniature.
//
// The program models MySQL bug #19938: a table row count is read, the row is
// inserted, and the count is written back, all without a lock. The
// triggering input reaches this code rarely (gated behind a hash of the
// request), so in prevention mode the violating interleaving takes a long
// time to show up. Bug-finding mode pauses threads inside atomic regions,
// stretching the vulnerable window from nanoseconds to milliseconds, and
// finds the bug orders of magnitude sooner.
//
// Run with: go run ./examples/bugfinding
package main

import (
	"fmt"
	"log"

	"kivati"
)

const src = `
int row_count;
int rows[8];
int bug_done;
int bug_lk;

int churn(int v) {
    int x;
    int j;
    x = v + 10007;
    j = 0;
    while (j < 40) {
        x = x * 31 + j;
        x = x ^ (x >> 7);
        j = j + 1;
    }
    if (x < 0) {
        x = 0 - x;
    }
    return x;
}

void insert_row(int id, int i) {
    int n;
    int j;
    n = row_count;
    j = 0;
    while (j < 6) {
        n = n + j % 2;
        j = j + 1;
    }
    n = n - 3;
    rows[n % 8] = id * 10 + i;
    row_count = n + 1;
}

void client(int id) {
    int i;
    int w;
    i = 0;
    while (i < 100000000) {
        w = churn(id * 65537 + i);
        if (w % 340 == 0) {
            insert_row(id, i);
        }
        i = i + 1;
    }
    lock(bug_lk);
    bug_done = bug_done + 1;
    unlock(bug_lk);
}

void main() {
    spawn(client, 1);
    client(2);
    while (bug_done < 2) {
        yield();
    }
}
`

func hunt(p *kivati.Program, name string, cfg kivati.Config) {
	var foundAt uint64
	found := false
	cfg.Seed = 11
	cfg.MaxTicks = 27_000_000 // the paper's 90-minute cap, scaled
	cfg.OnViolation = func(v kivati.Violation) bool {
		if v.Var == "row_count" {
			foundAt = v.Tick
			found = true
			fmt.Printf("  %s\n", v)
			return true // stop the run
		}
		return false
	}
	rep, err := kivati.Run(p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if found {
		fmt.Printf("%-22s found the bug after %d ticks\n\n", name, foundAt)
	} else {
		fmt.Printf("%-22s did NOT find the bug within the cap (%s)\n\n", name, rep.Reason)
	}
}

func main() {
	p, err := kivati.Build(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Hunting the row-count race (MySQL #19938 class):")
	hunt(p, "prevention mode", kivati.Config{Mode: kivati.Prevention})
	hunt(p, "bug-finding (20ms)", kivati.Config{
		Mode: kivati.BugFinding, PauseTicks: 20_000, PauseEvery: 4,
	})
	hunt(p, "bug-finding (50ms)", kivati.Config{
		Mode: kivati.BugFinding, PauseTicks: 50_000, PauseEvery: 4,
	})
}
