// Training: build a benign-AR whitelist with repeated runs — the paper's
// §4.2 training procedure and Figure 7 experiment in miniature.
//
// The program has three racy statistics counters that violate atomicity
// benignly (the program tolerates lost counts) plus one real lost-update bug
// on `balance`. Training whitelists the benign regions iteration by
// iteration while the bug variable is pinned as never-whitelistable; the
// trained whitelist then cuts both false positives and overhead, and the
// real bug remains detectable.
//
// Run with: go run ./examples/training
package main

import (
	"fmt"
	"log"

	"kivati"
)

const src = `
int balance;
int stat_a;
int stat_b;
int stat_c;
int lk;
int done;

int work(int v) {
    int x;
    int j;
    x = v;
    j = 0;
    while (j < 60) {
        x = x * 31 + j;
        j = j + 1;
    }
    if (x < 0) {
        x = 0 - x;
    }
    return x;
}

void client(int id) {
    int i;
    int w;
    int t;
    i = 0;
    while (i < 500) {
        w = work(id * 31 + i);
        if (w % 6 == 0) {
            t = stat_a;
            t = t + work(w) % 2;
            stat_a = t + 1;
        }
        if (w % 9 == 1) {
            stat_b = stat_b + 1;
        }
        if (w % 14 == 2) {
            stat_c = stat_c + w % 3;
        }
        if (w % 25 == 3) {
            t = balance;
            t = t + work(w) % 2;
            balance = t + 10;
        }
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}

void main() {
    spawn(client, 1);
    client(2);
    while (done < 2) {
        yield();
    }
}
`

func main() {
	p, err := kivati.Build(src)
	if err != nil {
		log.Fatal(err)
	}
	cfg := kivati.Config{
		Mode:       kivati.BugFinding, // training uses bug-finding to surface more per run (§2.3)
		Opt:        kivati.OptOptimized,
		PauseTicks: 20_000,
		PauseEvery: 64,
		Seed:       5,
	}

	fmt.Println("Training a whitelist (Figure 7 style); `balance` is a real bug and stays monitored:")
	tr, err := kivati.Train(p, cfg, 6, []string{"balance"})
	if err != nil {
		log.Fatal(err)
	}
	for i, n := range tr.NewFPs {
		fmt.Printf("  iteration %d: %d new benign AR(s) whitelisted\n", i+1, n)
	}
	fmt.Printf("  whitelist now holds %d AR id(s)\n\n", tr.Whitelist.Len())

	fmt.Println("Deploying with the trained whitelist:")
	rep, err := kivati.Run(p, kivati.Config{
		Mode: kivati.Prevention, Opt: kivati.OptOptimized,
		Whitelist: tr.Whitelist, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	balanceViolations, otherViolations := 0, 0
	for _, v := range rep.Violations {
		if v.Var == "balance" {
			balanceViolations++
		} else {
			otherViolations++
		}
	}
	fmt.Printf("  %d violation(s) on the real bug (balance), %d residual false positive(s)\n",
		balanceViolations, otherViolations)
	fmt.Printf("  %d annotations skipped in user space thanks to the whitelist\n",
		rep.Stats.WhitelistSkips)
}
