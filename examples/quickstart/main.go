// Quickstart: protect the paper's Figure 1 bug — Firefox NSS's
// check-then-assign race on a shared pointer — with Kivati.
//
// The program below runs two threads that both do:
//
//	if (shared_ptr == 0) { shared_ptr = id; }
//
// without a lock. The read and the write must execute atomically; when
// another thread's write interleaves, an update is lost. We run it three
// ways: vanilla (the race is invisible), prevention mode (violations are
// detected, reported with thread IDs and PCs, and the interleaving access is
// reordered), and with the violating region whitelisted (trained as benign).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kivati"
)

const src = `
int shared_ptr;
int lost;
int lk;
int done;

int think(int v) {
    int x;
    int j;
    x = v + 3;
    j = 0;
    while (j < 30) {
        x = x * 31 + j;
        j = j + 1;
    }
    if (x < 0) {
        x = 0 - x;
    }
    return x;
}

void attempt(int id) {
    int p;
    if (shared_ptr == 0) {
        p = think(id);
        shared_ptr = p + 1;
    } else {
        lock(lk);
        lost = lost + 1;
        unlock(lk);
    }
    shared_ptr = 0;
}

void racer(int id) {
    int i;
    int w;
    i = 0;
    while (i < 800) {
        w = think(id * 7919 + i);
        if (w % 3 == 0) {
            attempt(id);
        }
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}

void main() {
    spawn(racer, 1);
    racer(2);
    while (done < 2) {
        yield();
    }
}
`

func main() {
	p, err := kivati.Build(src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Atomic regions the static annotator found ===")
	for _, ar := range p.ARs() {
		if ar.Var == "shared_ptr" {
			fmt.Printf("  AR%-3d %s.%s  local %v..%v, watching remote %v\n",
				ar.ID, ar.Func, ar.Var, ar.First, ar.Second, ar.Watch)
		}
	}

	fmt.Println("\n=== 1. Vanilla run (no Kivati) ===")
	rep, err := kivati.Run(p, kivati.Config{Vanilla: true, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  completed in %d ticks; the race runs unobserved\n", rep.Ticks)

	fmt.Println("\n=== 2. Prevention mode ===")
	rep, err = kivati.Run(p, kivati.Config{Mode: kivati.Prevention, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	prevented := 0
	for _, v := range rep.Violations {
		if v.Prevented {
			prevented++
		}
	}
	fmt.Printf("  %d violation(s) detected on shared_ptr, %d reordered before doing harm:\n",
		len(rep.Violations), prevented)
	for i, v := range rep.Violations {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(rep.Violations)-3)
			break
		}
		fmt.Printf("  %s\n", v)
	}

	fmt.Println("\n=== 3. After whitelisting (trained as benign) ===")
	wl := kivati.NewWhitelist()
	for _, v := range rep.Violations {
		wl.Add(v.ARID)
	}
	rep, err = kivati.Run(p, kivati.Config{
		Mode: kivati.Prevention, Opt: kivati.OptSyncVars, Whitelist: wl, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d violation(s) with the whitelist; %d annotations skipped in user space\n",
		len(rep.Violations), rep.Stats.WhitelistSkips)
}
