// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations and a raw-substrate benchmark. Each table benchmark runs
// the corresponding harness experiment and reports the headline shape
// numbers as custom metrics (e.g. geomean overhead percentages), so
// `go test -bench . -benchmem` reproduces the paper's story in one sweep.
// The kivati-bench command prints the full tables.
package kivati_test

import (
	"testing"

	"kivati/internal/annotate"
	"kivati/internal/core"
	"kivati/internal/harness"
	"kivati/internal/kernel"
	"kivati/internal/vm"
	"kivati/internal/workloads"
)

// benchScale keeps each harness iteration around a second.
const benchScale = 0.25

func benchOpts() harness.Options {
	return harness.Options{Scale: benchScale, Seed: 1}
}

// sweep replays the five perf-suite tables (3, 4, 5, 7, 8) — the
// multi-table portion of `kivati-bench -all` that dominates sweep time.
func sweep(b *testing.B, o harness.Options) {
	if _, err := harness.RunTable3(o); err != nil {
		b.Fatal(err)
	}
	if _, err := harness.RunTable4(o); err != nil {
		b.Fatal(err)
	}
	if _, err := harness.RunTable5(o); err != nil {
		b.Fatal(err)
	}
	if _, err := harness.RunTable7(o); err != nil {
		b.Fatal(err)
	}
	if _, err := harness.RunTable8(o); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSweepSerialCold approximates the pre-pool harness: one worker,
// and the build cache dropped before every sweep so the workloads re-parse,
// re-analyze and re-compile each iteration — what a fresh process paid
// before the shared cache existed.
func BenchmarkSweepSerialCold(b *testing.B) {
	o := benchOpts()
	o.Parallelism = 1
	for i := 0; i < b.N; i++ {
		harness.ResetBuildCache()
		sweep(b, o)
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N), "s/sweep")
}

// BenchmarkSweepParallelWarm is the shipped configuration: GOMAXPROCS pool
// workers and the process-wide build cache shared across tables. Compare
// s/sweep against BenchmarkSweepSerialCold for the wall-clock win; the two
// print byte-identical tables (see the harness determinism tests).
func BenchmarkSweepParallelWarm(b *testing.B) {
	o := benchOpts() // Parallelism 0 = GOMAXPROCS
	harness.ResetBuildCache()
	for i := 0; i < b.N; i++ {
		sweep(b, o)
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N), "s/sweep")
	hits, misses := harness.BuildCacheStats()
	b.ReportMetric(float64(hits), "cache_hits")
	b.ReportMetric(float64(misses), "cache_misses")
}

// BenchmarkVMExecution measures the raw simulated-machine speed executing
// the vanilla NSS workload (host ns per simulated instruction).
func BenchmarkVMExecution(b *testing.B) {
	spec := workloads.NSS(workloads.Scale(benchScale))
	p, err := core.Build(spec.Source)
	if err != nil {
		b.Fatal(err)
	}
	var instr, fast uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(p, core.RunConfig{Vanilla: true, Seed: 1, MaxTicks: 1_000_000_000})
		if err != nil {
			b.Fatal(err)
		}
		instr += res.Stats.Instructions
		fast += res.FastInstructions
	}
	b.ReportMetric(float64(instr)/float64(b.Elapsed().Nanoseconds())*1e3, "Minstr/s")
	b.ReportMetric(100*float64(fast)/float64(instr), "fast_residency_%")
}

// BenchmarkVMExecutionLegacyStep is BenchmarkVMExecution pinned to the
// legacy one-instruction-at-a-time dispatcher; the ratio against
// BenchmarkVMExecution is the fast path's speedup.
func BenchmarkVMExecutionLegacyStep(b *testing.B) {
	spec := workloads.NSS(workloads.Scale(benchScale))
	p, err := core.Build(spec.Source)
	if err != nil {
		b.Fatal(err)
	}
	var instr uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(p, core.RunConfig{
			Vanilla: true, Seed: 1, MaxTicks: 1_000_000_000,
			Dispatch: vm.DispatchStep,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.FastInstructions != 0 {
			b.Fatalf("legacy dispatch retired %d fast-path instructions", res.FastInstructions)
		}
		instr += res.Stats.Instructions
	}
	b.ReportMetric(float64(instr)/float64(b.Elapsed().Nanoseconds())*1e3, "Minstr/s")
}

// BenchmarkAnnotator measures the static annotator + compiler pipeline.
func BenchmarkAnnotator(b *testing.B) {
	src := workloads.TPCW(1).Source
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1ArchSurvey renders the watchpoint survey (Table 1).
func BenchmarkTable1ArchSurvey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable3Overhead regenerates Table 3 and reports the geometric-mean
// overheads for the Base and fully-optimized configurations (the paper:
// ~30% and ~19%).
func BenchmarkTable3Overhead(b *testing.B) {
	var base, opt float64
	for i := 0; i < b.N; i++ {
		res, err := harness.RunTable3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		base = res.GeoMean.Base.PrevPct
		opt = res.GeoMean.Optimized.PrevPct
	}
	b.ReportMetric(base, "base_geomean_%")
	b.ReportMetric(opt, "optimized_geomean_%")
}

// BenchmarkTable4Crossings regenerates Table 4 and reports the average
// kernel-crossing reduction from the optimizations (paper: ~41%).
func BenchmarkTable4Crossings(b *testing.B) {
	var red float64
	for i := 0; i < b.N; i++ {
		res, err := harness.RunTable4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		red = res.AvgReduction
	}
	b.ReportMetric(red, "crossing_reduction_%")
}

// BenchmarkTable5Latency regenerates the server-latency table and reports
// the prevention-mode latency overheads (paper: 6.7% and 11.2%).
func BenchmarkTable5Latency(b *testing.B) {
	var web, tpcw float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunTable5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		web, tpcw = rows[0].PrevPct, rows[1].PrevPct
	}
	b.ReportMetric(web, "webstone_latency_%")
	b.ReportMetric(tpcw, "tpcw_latency_%")
}

// BenchmarkTable6BugDetection regenerates the bug-detection table and
// reports how many of the 11 bugs each mode found within the cap.
func BenchmarkTable6BugDetection(b *testing.B) {
	var prev, bug20 int
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunTable6(harness.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		prev, bug20 = 0, 0
		for _, r := range rows {
			if r.PrevDetected {
				prev++
			}
			if r.Bug20Found {
				bug20++
			}
		}
	}
	b.ReportMetric(float64(prev), "bugs_found_prevention")
	b.ReportMetric(float64(bug20), "bugs_found_bugfinding")
}

// BenchmarkTable7FalsePositives reports the total false positives across
// the suite (paper: 4-19 per app).
func BenchmarkTable7FalsePositives(b *testing.B) {
	var fp, traps float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunTable7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		fp, traps = 0, 0
		for _, r := range rows {
			fp += float64(r.PrevFP)
			traps += r.PrevTraps
		}
	}
	b.ReportMetric(fp, "total_FPs")
	b.ReportMetric(traps/5, "avg_traps_per_s")
}

// BenchmarkTable8MissedARs reports the average missed-AR percentage with 4
// watchpoints (paper: ~5%).
func BenchmarkTable8MissedARs(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunTable8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		avg = 0
		for _, r := range rows {
			avg += r.PrevPct
		}
		avg /= float64(len(rows))
	}
	b.ReportMetric(avg, "avg_missed_%")
}

// BenchmarkTable9WatchpointSweep reports the average register count at which
// missed ARs reach zero (paper: 8-12 depending on the app).
func BenchmarkTable9WatchpointSweep(b *testing.B) {
	var avgZero float64
	for i := 0; i < b.N; i++ {
		res, err := harness.RunTable9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, app := range res.Apps {
			for j, pct := range res.Pct[app] {
				if pct == 0 {
					total += res.Counts[j]
					break
				}
				if j == len(res.Pct[app])-1 {
					total += res.Counts[j] + 1
				}
			}
		}
		avgZero = float64(total) / float64(len(res.Apps))
	}
	b.ReportMetric(avgZero, "avg_registers_to_zero_missed")
}

// BenchmarkFigure7Training reports training convergence: total new FPs in
// the first and last iteration across the suite.
func BenchmarkFigure7Training(b *testing.B) {
	var first, last float64
	for i := 0; i < b.N; i++ {
		rs, err := harness.RunFigure7(harness.Options{Scale: 0.5, Seed: 1}, 5)
		if err != nil {
			b.Fatal(err)
		}
		first, last = 0, 0
		for _, r := range rs {
			first += float64(r.Prevention[0] + r.BugFinding[0])
			last += float64(r.Prevention[4] + r.BugFinding[4])
		}
	}
	b.ReportMetric(first, "new_FPs_iter1")
	b.ReportMetric(last, "new_FPs_iter5")
}

// BenchmarkAblationPauseTime compares the two bug-finding pause lengths of
// Table 6 on one workload's runtime — the paper's observation that longer
// pauses slow the application, sometimes outweighing the wider windows.
func BenchmarkAblationPauseTime(b *testing.B) {
	spec := workloads.NSS(workloads.Scale(benchScale))
	p, err := core.Build(spec.Source)
	if err != nil {
		b.Fatal(err)
	}
	run := func(pause uint64) uint64 {
		res, err := core.Run(p, core.RunConfig{
			Mode: kernel.BugFinding, Opt: kernel.OptBase,
			PauseTicks: pause, PauseEvery: 50, Seed: 1, MaxTicks: 2_000_000_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Ticks
	}
	var t20, t50 uint64
	for i := 0; i < b.N; i++ {
		t20 = run(harness.Pause20)
		t50 = run(harness.Pause50)
	}
	b.ReportMetric(float64(t50)/float64(t20), "pause50_vs_pause20_slowdown")
}

// BenchmarkAblationPreciseAnalysis compares the prototype's simple static
// analysis against the §3.5 points-to extension: fewer atomic regions, fewer
// annotations executed, lower runtime — the paper's prediction that "a
// smaller number of ARs benefits Kivati".
func BenchmarkAblationPreciseAnalysis(b *testing.B) {
	src := workloads.NSS(workloads.Scale(benchScale)).Source
	crude, err := core.Build(src)
	if err != nil {
		b.Fatal(err)
	}
	precise, err := core.BuildWithOptions(src, annotate.Options{Precise: true})
	if err != nil {
		b.Fatal(err)
	}
	var crudeTicks, preciseTicks uint64
	for i := 0; i < b.N; i++ {
		rc, err := core.Run(crude, core.RunConfig{Seed: 1, MaxTicks: 4_000_000_000})
		if err != nil {
			b.Fatal(err)
		}
		rp, err := core.Run(precise, core.RunConfig{Seed: 1, MaxTicks: 4_000_000_000})
		if err != nil {
			b.Fatal(err)
		}
		crudeTicks, preciseTicks = rc.Ticks, rp.Ticks
	}
	b.ReportMetric(float64(len(crude.Annotated.ARs)), "ARs_prototype")
	b.ReportMetric(float64(len(precise.Annotated.ARs)), "ARs_precise")
	b.ReportMetric(float64(preciseTicks)/float64(crudeTicks), "precise_runtime_ratio")
}

// BenchmarkBaselineSoftwareMonitor contrasts Kivati's watchpoint approach
// with per-access software instrumentation (AVIO/CTrigger-class tools): the
// same workload with every memory access paying an instrumentation check.
// The paper cites 15x-65x worst-case slowdowns for such systems.
func BenchmarkBaselineSoftwareMonitor(b *testing.B) {
	spec := workloads.NSS(workloads.Scale(benchScale))
	p, err := core.Build(spec.Source)
	if err != nil {
		b.Fatal(err)
	}
	var vanilla, kivati, monitor uint64
	for i := 0; i < b.N; i++ {
		van, err := core.Run(p, core.RunConfig{Vanilla: true, Seed: 1, MaxTicks: 40_000_000_000})
		if err != nil {
			b.Fatal(err)
		}
		kiv, err := core.Run(p, core.RunConfig{Opt: kernel.OptOptimized, Seed: 1, MaxTicks: 40_000_000_000})
		if err != nil {
			b.Fatal(err)
		}
		costs := vm.DefaultCosts()
		costs.AccessCheck = 40 // a software check per memory access
		mon, err := core.Run(p, core.RunConfig{Vanilla: true, Seed: 1, Costs: costs, MaxTicks: 40_000_000_000})
		if err != nil {
			b.Fatal(err)
		}
		vanilla, kivati, monitor = van.Ticks, kiv.Ticks, mon.Ticks
	}
	b.ReportMetric(float64(kivati)/float64(vanilla), "kivati_slowdown_x")
	b.ReportMetric(float64(monitor)/float64(vanilla), "software_monitor_slowdown_x")
}

// BenchmarkAblationTrapSemantics contrasts x86's after-access traps (which
// require the undo engine) with SPARC-class before-access traps (Table 1):
// same prevention guarantees, no rollback work.
func BenchmarkAblationTrapSemantics(b *testing.B) {
	spec := workloads.NSS(workloads.Scale(benchScale))
	p, err := core.Build(spec.Source)
	if err != nil {
		b.Fatal(err)
	}
	run := func(before bool) *vm.Result {
		res, err := core.Run(p, core.RunConfig{
			Opt: kernel.OptBase, Seed: 1, MaxTicks: 4_000_000_000, TrapBefore: before,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var after, before *vm.Result
	for i := 0; i < b.N; i++ {
		after = run(false)
		before = run(true)
	}
	b.ReportMetric(float64(before.Ticks)/float64(after.Ticks), "before_vs_after_runtime")
	b.ReportMetric(float64(after.Stats.Traps), "after_traps")
	b.ReportMetric(float64(before.Stats.Traps), "before_traps")
}
