package kivati_test

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"kivati"
)

const raceSrc = `
int shared;
int lk;
int done;
void worker(int n) {
    int i;
    i = 0;
    while (i < 200) {
        shared = shared + 1;
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void main() {
    spawn(worker, 0);
    worker(0);
    while (done < 2) {
        yield();
    }
    print(shared);
}
`

func TestBuildAndRun(t *testing.T) {
	p, err := kivati.Build(raceSrc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := kivati.Run(p, kivati.Config{Seed: 2, MaxTicks: 100_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reason != "completed" {
		t.Fatalf("reason %q", rep.Reason)
	}
	if len(rep.Output) != 1 {
		t.Fatalf("output %v", rep.Output)
	}
	if rep.Stats.Begins == 0 {
		t.Error("no annotations executed")
	}
	if len(rep.Violations) == 0 {
		t.Error("unlocked counter race produced no violations")
	}
}

func TestVanillaRun(t *testing.T) {
	p, err := kivati.Build(raceSrc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := kivati.Run(p, kivati.Config{Vanilla: true, Seed: 2, MaxTicks: 100_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 || rep.Stats.Begins != 0 {
		t.Error("vanilla run was instrumented")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := kivati.Build("int x; garbage"); err == nil {
		t.Error("want parse error")
	}
	if _, err := kivati.BuildPrecise("void f() { y = 1; }"); err == nil {
		t.Error("want resolution error")
	}
}

func TestARsAndAnnotatedSource(t *testing.T) {
	p, err := kivati.Build(raceSrc)
	if err != nil {
		t.Fatal(err)
	}
	ars := p.ARs()
	if len(ars) == 0 {
		t.Fatal("no ARs")
	}
	found := false
	for _, ar := range ars {
		if ar.Var == "shared" && ar.First == kivati.Read && ar.Second == kivati.Write {
			found = true
			if ar.Watch != kivati.Write {
				t.Errorf("R-W AR watches %v, want W", ar.Watch)
			}
		}
	}
	if !found {
		t.Error("R-W AR on shared not listed")
	}
	src := p.AnnotatedSource()
	for _, want := range []string{"begin_atomic(", "end_atomic(", "clear_ar()"} {
		if !strings.Contains(src, want) {
			t.Errorf("annotated source missing %q", want)
		}
	}
}

// TestPreciseDetectsAliasBug: a race where one side accesses the shared
// variable only through a pointer. The prototype analysis keys the accesses
// differently and forms no cross-alias AR; the precise analysis folds the
// dereference onto the pointee and the violation is caught.
func TestPreciseDetectsAliasBug(t *testing.T) {
	src := `
int account;
int done;
int lk;
void viaAlias(int n) {
    int *p;
    int t;
    int i;
    p = &account;
    i = 0;
    while (i < 300) {
        t = *p;
        *p = t + 1;
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void direct(int n) {
    int t;
    int i;
    i = 0;
    while (i < 300) {
        t = account;
        account = t + 1;
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void main() {
    spawn(viaAlias, 0);
    direct(0);
    while (done < 2) {
        yield();
    }
}
`
	run := func(p *kivati.Program) int {
		rep, err := kivati.Run(p, kivati.Config{Seed: 4, MaxTicks: 200_000_000})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, v := range rep.Violations {
			if v.Var == "account" || v.Var == "*p" {
				n++
			}
		}
		return n
	}
	precise, err := kivati.BuildPrecise(src)
	if err != nil {
		t.Fatal(err)
	}
	if n := run(precise); n == 0 {
		t.Error("precise analysis missed the alias race")
	}
	// The crude build still monitors both sides under different keys —
	// the direct side's own ARs catch remote writes regardless of how the
	// remote thread performs them, so we only assert the precise build's
	// AR table actually folded the alias.
	crude, err := kivati.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	crudeARs, preciseARs := crude.ARs(), precise.ARs()
	crudeDeref, preciseDeref := 0, 0
	for _, ar := range crudeARs {
		if strings.HasPrefix(ar.Var, "*") {
			crudeDeref++
		}
	}
	for _, ar := range preciseARs {
		if strings.HasPrefix(ar.Var, "*") {
			preciseDeref++
		}
	}
	if crudeDeref == 0 {
		t.Error("crude analysis should key the alias accesses as *p")
	}
	if preciseDeref != 0 {
		t.Error("precise analysis should fold *p onto account")
	}
	if len(preciseARs) >= len(crudeARs) {
		t.Errorf("precise ARs (%d) not below crude (%d)", len(preciseARs), len(crudeARs))
	}
}

func TestPreciseReducesOverhead(t *testing.T) {
	// Value-dependent locals dominate this program; the precise analysis
	// removes their monitors and the run gets cheaper.
	src := `
int shared;
int done;
int lk;
void worker(int n) {
    int a;
    int b;
    int c;
    int i;
    i = 0;
    while (i < 150) {
        a = shared;
        b = a * 3 + i;
        c = b - a;
        a = c + b;
        shared = a % 1000;
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void main() {
    spawn(worker, 0);
    worker(0);
    while (done < 2) {
        yield();
    }
}
`
	measure := func(p *kivati.Program) (uint64, uint64) {
		rep, err := kivati.Run(p, kivati.Config{Seed: 1, MaxTicks: 400_000_000})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Ticks, rep.Stats.Begins
	}
	crude, err := kivati.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	precise, err := kivati.BuildPrecise(src)
	if err != nil {
		t.Fatal(err)
	}
	ct, cb := measure(crude)
	pt, pb := measure(precise)
	if pb >= cb {
		t.Errorf("precise begins (%d) not below crude (%d)", pb, cb)
	}
	if pt >= ct {
		t.Errorf("precise runtime (%d) not below crude (%d)", pt, ct)
	}
}

func TestTrainAPI(t *testing.T) {
	p, err := kivati.Build(raceSrc)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := kivati.Train(p, kivati.Config{Seed: 2, MaxTicks: 100_000_000}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.NewFPs) != 3 {
		t.Fatalf("NewFPs = %v", tr.NewFPs)
	}
	if tr.Whitelist.Len() == 0 {
		t.Error("training whitelisted nothing despite the race")
	}
	// With the trained whitelist the violations disappear.
	rep, err := kivati.Run(p, kivati.Config{
		Opt: kivati.OptSyncVars, Whitelist: tr.Whitelist, Seed: 2, MaxTicks: 100_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("trained run still reports %d violations", len(rep.Violations))
	}
}

func TestSyncVarWhitelistAPI(t *testing.T) {
	p, err := kivati.Build(raceSrc)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := p.SyncVarWhitelist("done")
	if err != nil {
		t.Fatal(err)
	}
	if wl.Len() == 0 {
		t.Error("no sync-var ARs found (lk and done have ARs)")
	}
}

func TestOnViolationStops(t *testing.T) {
	p, err := kivati.Build(raceSrc)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	rep, err := kivati.Run(p, kivati.Config{
		Seed: 2, MaxTicks: 100_000_000,
		OnViolation: func(v kivati.Violation) bool {
			calls++
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || rep.Reason != "stopped" {
		t.Errorf("calls=%d reason=%q", calls, rep.Reason)
	}
}

// TestInterProceduralDetectsHelperBug: the Figure 1 pattern factored into a
// helper function — the prototype analysis forms no caller-level AR, so the
// race is invisible; the inter-procedural extension catches it.
func TestInterProceduralDetectsHelperBug(t *testing.T) {
	src := `
int shared_ptr;
int inits;
int done;
int lk;
void init_session(int id) {
    shared_ptr = id;
    inits = inits + 1;
}
void reset_session(int id) {
    shared_ptr = 0;
}
int think(int v) {
    int x;
    int j;
    x = v;
    j = 0;
    while (j < 25) {
        x = x * 31 + j;
        j = j + 1;
    }
    if (x < 0) {
        x = 0 - x;
    }
    return x;
}
void racer(int id) {
    int i;
    int w;
    i = 0;
    while (i < 600) {
        w = think(id * 131 + i);
        if (w % 3 == 0) {
            if (shared_ptr == 0) {
                init_session(id);
            }
        }
        if (w % 3 == 1) {
            reset_session(id);
        }
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void main() {
    spawn(racer, 1);
    racer(2);
    while (done < 2) {
        yield();
    }
}
`
	count := func(p *kivati.Program) int {
		rep, err := kivati.Run(p, kivati.Config{Seed: 6, MaxTicks: 400_000_000})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, v := range rep.Violations {
			// The check-then-init race: a remote access interleaving a
			// shared_ptr AR whose first access is the NULL check.
			if v.Var == "shared_ptr" && v.First == kivati.Read {
				n++
			}
		}
		return n
	}
	intra, err := kivati.Build(src)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := kivati.BuildWithAnalysis(src, kivati.Analysis{InterProcedural: true})
	if err != nil {
		t.Fatal(err)
	}
	// The intra-procedural build has no AR at all on shared_ptr in racer:
	// every write is hidden in a helper.
	for _, ar := range intra.ARs() {
		if ar.Func == "racer" && ar.Var == "shared_ptr" {
			t.Fatalf("intra build unexpectedly has a caller-level AR: %+v", ar)
		}
	}
	found := false
	for _, ar := range inter.ARs() {
		if ar.Func == "racer" && ar.Var == "shared_ptr" && ar.First == kivati.Read && ar.Second == kivati.Write {
			found = true
		}
	}
	if !found {
		t.Fatal("inter-procedural build lacks the caller-level R-W AR")
	}
	if n := count(inter); n == 0 {
		t.Error("inter-procedural build did not detect the helper-factored race at run time")
	}
}

// TestWhitelistPeriodicReload: a long-running process picks up a
// developer-shipped whitelist update mid-run (§3.2) — violations stop once
// the re-read delivers the new benign AR IDs.
func TestWhitelistPeriodicReload(t *testing.T) {
	p, err := kivati.Build(raceSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Learn the racy AR IDs from a throwaway run.
	probe, err := kivati.Run(p, kivati.Config{Seed: 2, MaxTicks: 100_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.Violations) == 0 {
		t.Skip("race did not manifest under this seed")
	}
	var update strings.Builder
	seen := map[int]bool{}
	for _, v := range probe.Violations {
		if !seen[v.ARID] {
			seen[v.ARID] = true
			fmt.Fprintf(&update, "%d\n", v.ARID)
		}
	}

	// The deployed whitelist starts empty; its source ships the update,
	// which only the periodic reload can deliver.
	wl := kivati.NewWhitelist()
	wl.Source = func() (io.Reader, error) { return strings.NewReader(update.String()), nil }

	rep, err := kivati.Run(p, kivati.Config{
		Opt:                  kivati.OptSyncVars,
		Whitelist:            wl,
		WhitelistReloadTicks: 20_000,
		Seed:                 2,
		MaxTicks:             100_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.WhitelistSkips == 0 {
		t.Error("the reloaded whitelist never took effect")
	}
	if wl.Len() == 0 {
		t.Error("whitelist not reloaded from its source")
	}
	// Violations before the first reload are possible; after it they stop,
	// so the count must be well below the unwhitelisted run's.
	if len(rep.Violations) >= len(probe.Violations) {
		t.Errorf("reload ineffective: %d violations vs %d without whitelist",
			len(rep.Violations), len(probe.Violations))
	}
}
