// Differential gate for the VM's tiered execution fast path: every
// workload and every corpus bug must produce bit-identical results under
// basic-block superstep dispatch and legacy one-instruction-at-a-time
// dispatch — same outputs, ticks, kernel stats, violation reports,
// latencies and final memory image. A recorded schedule trace must also
// replay identically on the fast path.
package kivati_test

import (
	"fmt"
	"reflect"
	"testing"

	"kivati/internal/bugs"
	"kivati/internal/core"
	"kivati/internal/kernel"
	"kivati/internal/vm"
	"kivati/internal/workloads"
)

// diffScale keeps the full workload × config × dispatch matrix fast while
// still exercising every workload's concurrency structure.
const diffScale = workloads.Scale(0.1)

// runDispatchMode executes one configuration under the given dispatch mode
// with memory hashing on.
func runDispatchMode(t *testing.T, p *core.Program, cfg core.RunConfig, d vm.DispatchMode) *vm.Result {
	t.Helper()
	cfg.Dispatch = d
	cfg.HashMemory = true
	res, err := core.Run(p, cfg)
	if err != nil {
		t.Fatalf("dispatch %v: %v", d, err)
	}
	return res
}

// assertResultsIdentical requires two runs to be observably identical.
func assertResultsIdentical(t *testing.T, name string, step, fast *vm.Result) {
	t.Helper()
	if step.FastInstructions != 0 {
		t.Errorf("%s: legacy dispatch retired %d fast-path instructions, want 0", name, step.FastInstructions)
	}
	if step.Reason != fast.Reason || step.Ticks != fast.Ticks {
		t.Errorf("%s: (reason, ticks) step=(%q, %d) fast=(%q, %d)",
			name, step.Reason, step.Ticks, fast.Reason, fast.Ticks)
	}
	if !reflect.DeepEqual(step.Output, fast.Output) {
		t.Errorf("%s: output differs: step=%v fast=%v", name, step.Output, fast.Output)
	}
	if !reflect.DeepEqual(step.Latencies, fast.Latencies) {
		t.Errorf("%s: latencies differ (%d vs %d entries)", name, len(step.Latencies), len(fast.Latencies))
	}
	if !reflect.DeepEqual(step.Faults, fast.Faults) {
		t.Errorf("%s: faults differ: step=%v fast=%v", name, step.Faults, fast.Faults)
	}
	if !reflect.DeepEqual(step.Stats, fast.Stats) {
		t.Errorf("%s: kernel stats differ:\n step=%+v\n fast=%+v", name, step.Stats, fast.Stats)
	}
	if !reflect.DeepEqual(step.Violations, fast.Violations) {
		t.Errorf("%s: violation reports differ: step=%d fast=%d entries",
			name, len(step.Violations), len(fast.Violations))
	}
	if !reflect.DeepEqual(step.Snapshot, fast.Snapshot) {
		t.Errorf("%s: snapshots differ: step=%v fast=%v", name, step.Snapshot, fast.Snapshot)
	}
	if step.MemHash != fast.MemHash {
		t.Errorf("%s: final memory image differs: step=%#x fast=%#x", name, step.MemHash, fast.MemHash)
	}
}

// TestFastPathDifferentialWorkloads runs the full performance suite under
// vanilla, prevention-base and prevention-optimized configurations,
// comparing legacy and fast dispatch pairwise.
func TestFastPathDifferentialWorkloads(t *testing.T) {
	for _, spec := range workloads.PerfSuite(diffScale) {
		p, err := core.Build(spec.Source)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		wl, err := p.SyncVarWhitelist(spec.FlagVars...)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		base := core.RunConfig{
			Seed:   1,
			Starts: spec.Starts,
		}
		if spec.Requests != nil {
			r := *spec.Requests
			base.Requests = &r
		}
		configs := []struct {
			name string
			mut  func(cfg core.RunConfig) core.RunConfig
		}{
			{"vanilla", func(cfg core.RunConfig) core.RunConfig {
				cfg.Vanilla = true
				return cfg
			}},
			{"prev-base", func(cfg core.RunConfig) core.RunConfig {
				cfg.Mode = kernel.Prevention
				cfg.Opt = kernel.OptBase
				return cfg
			}},
			{"prev-optimized", func(cfg core.RunConfig) core.RunConfig {
				cfg.Mode = kernel.Prevention
				cfg.Opt = kernel.OptOptimized
				cfg.Whitelist = wl
				return cfg
			}},
		}
		for _, cc := range configs {
			name := spec.Name + "/" + cc.name
			t.Run(name, func(t *testing.T) {
				cfg := cc.mut(base)
				if cfg.Requests != nil {
					// Each run needs its own request generator state.
					r := *cfg.Requests
					cfg.Requests = &r
				}
				step := runDispatchMode(t, p, cfg, vm.DispatchStep)
				cfg2 := cc.mut(base)
				if cfg2.Requests != nil {
					r := *cfg2.Requests
					cfg2.Requests = &r
				}
				fast := runDispatchMode(t, p, cfg2, vm.DispatchAuto)
				assertResultsIdentical(t, name, step, fast)
				if cc.name == "vanilla" && fast.FastInstructions == 0 {
					t.Errorf("%s: fast path never engaged on a watchpoint-free run", name)
				}
			})
		}
	}
}

// TestFastPathDifferentialBugCorpus runs all 11 corpus bug fixtures under
// prevention, comparing dispatch modes over several seeds: the prevention
// engine's trap/undo/suspend behavior must be identical.
func TestFastPathDifferentialBugCorpus(t *testing.T) {
	for _, b := range bugs.Corpus() {
		b := b
		t.Run(b.App+"-"+b.ID, func(t *testing.T) {
			p, err := core.Build(b.ExploreSource)
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(1); seed <= 3; seed++ {
				cfg := core.RunConfig{
					Mode:         kernel.Prevention,
					Opt:          kernel.OptBase,
					Seed:         seed,
					MaxTicks:     20_000_000,
					SnapshotVars: b.SnapshotVars,
				}
				step := runDispatchMode(t, p, cfg, vm.DispatchStep)
				fast := runDispatchMode(t, p, cfg, vm.DispatchAuto)
				assertResultsIdentical(t, fmt.Sprintf("%s-%s/seed%d", b.App, b.ID, seed), step, fast)
			}
		})
	}
}

// TestFastPathReplay records a schedule trace under legacy dispatch and
// replays it under DispatchFast (fast path active alongside the policy):
// the replay must consume the trace with zero mismatches and reproduce the
// run bit-identically. This is the property that lets explore traces stay
// portable across interpreter tiers.
func TestFastPathReplay(t *testing.T) {
	spec := workloads.NSS(diffScale)
	p, err := core.Build(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		mut  func(cfg core.RunConfig) core.RunConfig
	}{
		{"vanilla", func(cfg core.RunConfig) core.RunConfig { cfg.Vanilla = true; return cfg }},
		{"prevention", func(cfg core.RunConfig) core.RunConfig {
			cfg.Mode = kernel.Prevention
			cfg.Opt = kernel.OptBase
			return cfg
		}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			rec := vm.NewRecorder(nil)
			cfg := mode.mut(core.RunConfig{Seed: 1, Starts: spec.Starts})
			cfg.Policy = rec
			recorded := runDispatchMode(t, p, cfg, vm.DispatchStep)

			rep := vm.NewReplayer(rec.Chosen())
			cfg2 := mode.mut(core.RunConfig{Seed: 1, Starts: spec.Starts})
			cfg2.Policy = rep
			replayed := runDispatchMode(t, p, cfg2, vm.DispatchFast)

			if rep.Mismatches() != 0 {
				t.Errorf("replay mismatches = %d, want 0", rep.Mismatches())
			}
			if rep.Consumed() != len(rec.Chosen()) {
				t.Errorf("replay consumed %d of %d decisions", rep.Consumed(), len(rec.Chosen()))
			}
			if recorded.FastInstructions != 0 {
				t.Errorf("recording run used the fast path under DispatchStep")
			}
			if replayed.FastInstructions == 0 {
				t.Errorf("replay run never engaged the fast path under DispatchFast")
			}
			assertResultsIdentical(t, "replay-"+mode.name, recorded, replayed)
		})
	}
}

// TestFastRecordStepReplay is the inverse direction of TestFastPathReplay
// and the property Fast-mode exploration recording rests on: a schedule
// recorded while the fast path is active (DispatchFast, how the snapshot
// engine records access streams) must replay under legacy one-instruction
// dispatch with zero mismatches and a bit-identical outcome. It covers the
// whole performance suite and the 11-bug corpus.
func TestFastRecordStepReplay(t *testing.T) {
	type subject struct {
		name   string
		source string
		starts []core.Start
		cfgs   []core.RunConfig
	}
	var subjects []subject
	for _, spec := range workloads.PerfSuite(diffScale) {
		if spec.Requests != nil {
			// Open-loop request arrival draws from the machine RNG; the
			// recorder trace alone does not pin those draws, so the
			// record/replay property is scoped to closed workloads.
			continue
		}
		subjects = append(subjects, subject{
			name:   spec.Name,
			source: spec.Source,
			starts: spec.Starts,
			cfgs: []core.RunConfig{
				{Vanilla: true},
				{Mode: kernel.Prevention, Opt: kernel.OptBase},
			},
		})
	}
	for _, b := range bugs.Corpus() {
		subjects = append(subjects, subject{
			name:   b.App + "-" + b.ID,
			source: b.ExploreSource,
			cfgs: []core.RunConfig{
				{Vanilla: true},
				{Mode: kernel.Prevention, Opt: kernel.OptBase},
			},
		})
	}
	for _, s := range subjects {
		s := s
		t.Run(s.name, func(t *testing.T) {
			p, err := core.Build(s.source)
			if err != nil {
				t.Fatal(err)
			}
			for _, base := range s.cfgs {
				base.Seed = 1
				base.Starts = s.starts
				if base.MaxTicks == 0 {
					base.MaxTicks = 20_000_000
				}
				name := s.name + "/vanilla"
				if !base.Vanilla {
					name = s.name + "/prevention"
				}

				rec := vm.NewRecorder(nil)
				cfg := base
				cfg.Policy = rec
				recorded := runDispatchMode(t, p, cfg, vm.DispatchFast)

				rep := vm.NewReplayer(rec.Chosen())
				cfg2 := base
				cfg2.Policy = rep
				replayed := runDispatchMode(t, p, cfg2, vm.DispatchStep)

				if rep.Mismatches() != 0 {
					t.Errorf("%s: replay mismatches = %d, want 0", name, rep.Mismatches())
				}
				if rep.Consumed() != len(rec.Chosen()) {
					t.Errorf("%s: replay consumed %d of %d decisions", name, rep.Consumed(), len(rec.Chosen()))
				}
				// assertResultsIdentical pins the first argument to zero
				// fast-path instructions — that is the Step replay here.
				assertResultsIdentical(t, name, replayed, recorded)
			}
		})
	}
}
