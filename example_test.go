package kivati_test

import (
	"fmt"

	"kivati"
)

// ExampleBuild shows the static annotator's view of the paper's Figure 1
// bug: the NULL check and the assignment form an atomic region whose
// watchpoint monitors remote writes.
func ExampleBuild() {
	p, err := kivati.Build(`
int shared_ptr;
void update(int id) {
    if (shared_ptr == 0) {
        shared_ptr = id;
    }
}
void main() {
    update(1);
}
`)
	if err != nil {
		panic(err)
	}
	for _, ar := range p.ARs() {
		if ar.Var == "shared_ptr" {
			fmt.Printf("AR%d %s.%s: local %v..%v, watch remote %v\n",
				ar.ID, ar.Func, ar.Var, ar.First, ar.Second, ar.Watch)
		}
	}
	// Output:
	// AR1 update.shared_ptr: local R..W, watch remote W
}

// ExampleRun executes a single-threaded program under prevention mode; with
// no second thread there is nothing to interleave, so no violations are
// reported and the program's own output is unchanged.
func ExampleRun() {
	p, err := kivati.Build(`
int counter;
void main() {
    counter = counter + 41;
    counter = counter + 1;
    print(counter);
}
`)
	if err != nil {
		panic(err)
	}
	rep, err := kivati.Run(p, kivati.Config{Mode: kivati.Prevention})
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.Output[0], len(rep.Violations), rep.Reason)
	// Output:
	// 42 0 completed
}

// ExampleBuildWithAnalysis contrasts the prototype analysis with the §3.5
// extensions: the points-to pass stops monitoring the private local copy.
func ExampleBuildWithAnalysis() {
	src := `
int shared;
void f() {
    int copy;
    copy = shared;
    copy = copy + 1;
    shared = copy;
}
void main() { f(); }
`
	crude, _ := kivati.Build(src)
	precise, _ := kivati.BuildWithAnalysis(src, kivati.Analysis{Precise: true})
	fmt.Printf("prototype: %d ARs, precise: %d ARs\n", len(crude.ARs()), len(precise.ARs()))
	// Output:
	// prototype: 7 ARs, precise: 1 ARs
}
