// kivati-soak scales the differential oracle from the 11 hand-written
// bugs to a generated corpus: it emits N labeled MiniC programs with
// injected atomicity-violation shapes (plus correctly locked benign
// decoys), sweeps each through the snapshot-engine differential oracle in
// both modes, and scores the verdicts against the ground-truth labels.
// With -load it also runs the open-loop latency driver against a server
// workload — the heavy-traffic half of the soak story.
//
// Usage:
//
//	kivati-soak                                  # 50 programs, 60 schedules/mode
//	kivati-soak -n 200 -schedules 40 -seed 1     # the acceptance-scale sweep
//	kivati-soak -n 24 -schedules 40 -gate -strict   # the CI smoke gate
//	kivati-soak -arrays                          # add indirect-access decoys
//	kivati-soak -load -load-requests 240         # append the latency driver
//	kivati-soak -n 0 -load                       # latency driver only
//	kivati-soak -json                            # machine-readable report
//
// Every soak failure is replayable from the report alone: program k of a
// corpus regenerates from (gen_seed, k), and its exploration seeds derive
// from the same base seed (kivati-explore -gen N -gen-seed S explores the
// same corpus and can record traces).
//
// Exit status is nonzero if any prevention-mode schedule diverged (always
// an engine bug), or — under -gate — if any benign decoy was flagged,
// or — under -strict — if any injected bug went undetected.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"kivati/internal/explore"
	"kivati/internal/harness"
)

func main() {
	n := flag.Int("n", 50, "generated corpus size (0 = skip the corpus soak)")
	seed := flag.Int64("seed", 1, "generator + exploration base seed")
	schedules := flag.Int("schedules", 60, "schedule budget per program per mode")
	strategy := flag.String("strategy", "random", "schedule strategy: random or dfs")
	engine := flag.String("engine", "snapshot", "execution engine: snapshot or replay")
	benignEvery := flag.Int("benign-every", 5, "every k-th program is a benign decoy (negative disables)")
	arrays := flag.Bool("arrays", false, "add array decoys: runtime-sized rings (Unbounded footprints) and static-bound sweeps (bounded footprints)")
	iters := flag.Int("iters", 0, "per-thread iteration budget (0 = default 12)")
	cores := flag.Int("cores", 1, "simulated cores per campaign")
	quantum := flag.Uint64("quantum", 0, "preemption quantum override (0 = strategy default)")
	parallel := flag.Int("parallel", 0, "program-level worker pool size (0 = GOMAXPROCS, 1 = serial)")
	gate := flag.Bool("gate", false, "exit nonzero on any benign false positive")
	strict := flag.Bool("strict", false, "with -gate: also exit nonzero on any missed bug (100% recall required)")
	load := flag.Bool("load", false, "also run the open-loop latency driver")
	workload := flag.String("workload", "Webstone", "load: server workload (Webstone or TPC-W)")
	loadRequests := flag.Int("load-requests", 240, "load: target request count")
	loadInterarrival := flag.Uint64("load-interarrival", 900, "load: mean request interarrival in ticks")
	jsonOut := flag.Bool("json", false, "emit a JSON report instead of text")
	flag.Parse()

	var rep *harness.SoakReport
	if *n > 0 {
		var err error
		rep, err = harness.RunSoak(harness.SoakOptions{
			Programs:    *n,
			Seed:        *seed,
			Schedules:   *schedules,
			Strategy:    explore.Strategy(*strategy),
			Engine:      explore.Engine(*engine),
			BenignEvery: *benignEvery,
			Arrays:      *arrays,
			Iters:       *iters,
			Cores:       *cores,
			Quantum:     *quantum,
			Parallelism: *parallel,
		})
		check(err)
	} else if !*load {
		fmt.Fprintln(os.Stderr, "kivati-soak: nothing to do (-n 0 without -load)")
		os.Exit(2)
	}

	if *load {
		lrep, err := harness.RunLoad(harness.LoadOptions{
			Workload:         *workload,
			Requests:         *loadRequests,
			MeanInterarrival: *loadInterarrival,
			Seed:             *seed,
			Parallelism:      *parallel,
		})
		check(err)
		if rep == nil {
			rep = &harness.SoakReport{Schema: "kivati-soak/v1", GenSeed: *seed}
		}
		rep.Load = lrep
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(rep))
	} else {
		if rep.Corpus > 0 {
			fmt.Print(rep.String())
		}
		if rep.Load != nil {
			fmt.Print(rep.Load.String())
		}
	}

	// A prevention-mode divergence is an engine bug regardless of -gate.
	if rep.PreventionDivergences > 0 {
		fmt.Fprintf(os.Stderr, "kivati-soak: ENGINE BUG: %d prevention-mode schedules diverged from the serial result\n",
			rep.PreventionDivergences)
		os.Exit(1)
	}
	if *gate && rep.Corpus > 0 {
		if err := rep.Gate(*strict); err != nil {
			fmt.Fprintln(os.Stderr, "kivati-soak:", err)
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Println("soak gate: ok")
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kivati-soak:", err)
		os.Exit(1)
	}
}
