// kivati-train runs the whitelist training procedure of §4.2: a MiniC
// program is executed repeatedly, every violated atomic region that is not a
// known bug is added to the whitelist, and the resulting whitelist is saved
// for deployment.
//
// Usage:
//
//	kivati-train -iters 7 -out whitelist.txt [-bugvars s1,s2] file.mc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kivati"
)

func main() {
	iters := flag.Int("iters", 7, "training iterations")
	out := flag.String("out", "whitelist.txt", "output whitelist file")
	bugVars := flag.String("bugvars", "", "comma-separated shared variables that are real bugs (never whitelisted)")
	mode := flag.String("mode", "bugfinding", "prevention | bugfinding (bug-finding surfaces more per iteration)")
	seed := flag.Int64("seed", 1, "scheduler seed")
	maxTicks := flag.Uint64("maxticks", 500_000_000, "virtual-time budget per iteration")
	entry := flag.String("start", "main", "entry function")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kivati-train [flags] file.mc\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	p, err := kivati.Build(string(src))
	if err != nil {
		fatal(err)
	}
	// Seed with the synchronization-variable whitelist (optimization 4).
	wl, err := p.SyncVarWhitelist()
	if err != nil {
		fatal(err)
	}
	cfg := kivati.Config{
		Opt:       kivati.OptOptimized,
		Seed:      *seed,
		MaxTicks:  *maxTicks,
		Whitelist: wl,
		Starts:    []kivati.Start{{Fn: *entry}},
	}
	if *mode == "bugfinding" {
		cfg.Mode = kivati.BugFinding
		cfg.PauseTicks = 20_000
		cfg.PauseEvery = 64
	}
	var bugs []string
	if *bugVars != "" {
		bugs = strings.Split(*bugVars, ",")
	}

	tr, err := kivati.Train(p, cfg, *iters, bugs)
	if err != nil {
		fatal(err)
	}
	for i, n := range tr.NewFPs {
		fmt.Printf("iteration %d: %d new false positive(s)\n", i+1, n)
	}
	if err := tr.Whitelist.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d benign AR id(s) to %s\n", tr.Whitelist.Len(), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kivati-train:", err)
	os.Exit(1)
}
