// kivati-run executes a MiniC program on the simulated machine under
// Kivati's detection and prevention engine, and reports any atomicity
// violations with the thread IDs, shared-variable addresses and program
// counters involved.
//
// Usage:
//
//	kivati-run [flags] file.mc
//
// Examples:
//
//	kivati-run prog.mc                         # prevention mode, base config
//	kivati-run -opt optimized prog.mc          # all §3.4 optimizations
//	kivati-run -mode bugfinding -pause 20 prog.mc
//	kivati-run -vanilla prog.mc                # no instrumentation
package main

import (
	"flag"
	"fmt"
	"os"

	"kivati"
)

func main() {
	mode := flag.String("mode", "prevention", "prevention | bugfinding")
	opt := flag.String("opt", "base", "base | nullsyscall | syncvars | optimized")
	vanilla := flag.Bool("vanilla", false, "run without Kivati instrumentation")
	cores := flag.Int("cores", 2, "simulated cores")
	wps := flag.Int("watchpoints", 4, "hardware watchpoint registers")
	seed := flag.Int64("seed", 1, "scheduler seed")
	maxTicks := flag.Uint64("maxticks", 500_000_000, "virtual-time budget")
	pauseMs := flag.Uint64("pause", 20, "bug-finding pause, virtual ms")
	pauseEvery := flag.Uint64("pause-every", 300, "pause on every Nth monitored begin_atomic")
	wlPath := flag.String("whitelist", "", "benign-AR whitelist file")
	entry := flag.String("start", "main", "entry function")
	showStats := flag.Bool("stats", false, "print execution statistics")
	report := flag.Bool("report", false, "print a grouped violation report instead of the raw list")
	precise := flag.Bool("precise", false, "use the points-to analysis (§3.5 extension)")
	interproc := flag.Bool("interprocedural", false, "form ARs across subroutine calls (§3.5 extension)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kivati-run [flags] file.mc\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	p, err := kivati.BuildWithAnalysis(string(src), kivati.Analysis{
		Precise:         *precise,
		InterProcedural: *interproc,
	})
	if err != nil {
		fatal(err)
	}

	cfg := kivati.Config{
		Vanilla:        *vanilla,
		Cores:          *cores,
		NumWatchpoints: *wps,
		Seed:           *seed,
		MaxTicks:       *maxTicks,
		PauseTicks:     *pauseMs * 1000,
		PauseEvery:     *pauseEvery,
		Starts:         []kivati.Start{{Fn: *entry}},
	}
	switch *mode {
	case "prevention":
		cfg.Mode = kivati.Prevention
	case "bugfinding":
		cfg.Mode = kivati.BugFinding
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	switch *opt {
	case "base":
		cfg.Opt = kivati.OptBase
	case "nullsyscall":
		cfg.Opt = kivati.OptNullSyscall
	case "syncvars":
		cfg.Opt = kivati.OptSyncVars
	case "optimized":
		cfg.Opt = kivati.OptOptimized
	default:
		fatal(fmt.Errorf("unknown optimization level %q", *opt))
	}
	if *wlPath != "" {
		wl, err := kivati.LoadWhitelist(*wlPath)
		if err != nil {
			fatal(err)
		}
		cfg.Whitelist = wl
	} else if cfg.Opt == kivati.OptSyncVars || cfg.Opt == kivati.OptOptimized {
		wl, err := p.SyncVarWhitelist()
		if err != nil {
			fatal(err)
		}
		cfg.Whitelist = wl
	}

	rep, err := kivati.Run(p, cfg)
	if err != nil {
		fatal(err)
	}

	for _, v := range rep.Output {
		fmt.Println(v)
	}
	fmt.Printf("-- %s after %d ticks (%s, %s)\n", rep.Reason, rep.Ticks, *mode, *opt)
	switch {
	case *report:
		fmt.Print(kivati.FormatViolationReport(rep.Violations))
	case len(rep.Violations) > 0:
		fmt.Printf("-- %d atomicity violation(s) detected:\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Println("  ", v)
		}
	case !*vanilla:
		fmt.Println("-- no atomicity violations detected")
	}
	if *showStats {
		s := rep.Stats
		fmt.Printf("-- instructions=%d kernel-entries=%d (begin=%d end=%d clear=%d traps=%d) user-handled=%d missed-ARs=%d timeouts=%d\n",
			s.Instructions, s.KernelEntries(), s.BeginKernel, s.EndKernel,
			s.ClearKernel, s.Traps, s.UserHandled, s.MissedARs, s.Timeouts)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kivati-run:", err)
	os.Exit(1)
}
