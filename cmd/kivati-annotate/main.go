// kivati-annotate runs Kivati's static annotator over a MiniC source file
// and prints the annotated program (begin_atomic / end_atomic / clear_ar
// pseudo-statements, in the style of the paper's Figures 3 and 4), the
// atomic-region table, and summary statistics.
//
// With -lockset it additionally runs the Eraser-style lockset analysis and
// reports each shared global's candidate lockset and the statically proven
// (benign) regions that seed the compile-time whitelist; -optimize applies
// the annotation optimizer (benign drop, dedupe, coalesce). -lint prints a
// race diagnostic for every written global with no consistent lock, and
// combined with -strict exits nonzero when any race is found. -footprints
// compiles the program and dumps the per-basic-block footprint table the
// fast path dispatches on — each block's interval (after the value-range
// analysis) or UNBOUNDED with the escape-causing instruction — so a
// residency regression can be traced to source without running a benchmark.
//
// Usage:
//
//	kivati-annotate [-ars] [-lsv] [-lockset] [-optimize] [-lint [-strict]] [-footprints] file.mc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kivati/internal/analysis"
	"kivati/internal/annotate"
	"kivati/internal/compile"
	"kivati/internal/minic"
)

func main() {
	showARs := flag.Bool("ars", false, "print the atomic-region table")
	showLSV := flag.Bool("lsv", false, "print each function's list of shared variables")
	precise := flag.Bool("precise", false, "use the points-to analysis (§3.5 extension)")
	interproc := flag.Bool("interprocedural", false, "form ARs across subroutine calls (§3.5 extension)")
	useLockset := flag.Bool("lockset", false, "run the lockset analysis; print candidate locksets and proven-benign regions")
	optimize := flag.Bool("optimize", false, "drop proven-benign regions and dedupe/coalesce the AR table")
	lint := flag.Bool("lint", false, "report shared globals with inconsistent lock protection")
	footprints := flag.Bool("footprints", false, "compile and dump the per-basic-block footprint table (interval or UNBOUNDED with cause)")
	strict := flag.Bool("strict", false, "with -lint, exit nonzero when any race is reported")
	roots := flag.String("roots", "", "comma-separated functions assumed callable with no locks held (lockset roots)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kivati-annotate [-ars] [-lsv] [-lockset] [-optimize] [-lint [-strict]] file.mc\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}
	prog, err := minic.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	opts := annotate.Options{
		Precise:         *precise,
		InterProcedural: *interproc,
		Lockset:         *useLockset || *lint,
	}
	if *roots != "" {
		opts.Roots = strings.Split(*roots, ",")
	}
	if *optimize {
		opts.Optimize = annotate.OptimizeOptions{DropBenign: true, Dedupe: true, Coalesce: true}
	}
	ap, err := annotate.AnnotateWithOptions(prog, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Print(annotate.PrintAnnotated(ap))

	if *showLSV {
		fmt.Println("\n# List of shared variables (LSV) per function")
		for _, fa := range ap.Funcs {
			fmt.Printf("%-20s %v\n", fa.Fn.Name, analysis.SortedLSV(fa.LSV))
		}
	}
	if *showARs {
		fmt.Println("\n# Atomic regions")
		fmt.Print(annotate.Describe(ap))
	}
	if ap.Locks != nil && *useLockset {
		fmt.Println("\n# Candidate locksets (locks held at every named access)")
		for _, g := range prog.Globals {
			switch {
			case ap.Locks.SyncVar(g.Name):
				fmt.Printf("%-20s (lock)\n", g.Name)
			case ap.Locks.AddressTaken(g.Name):
				fmt.Printf("%-20s (address taken; not tracked)\n", g.Name)
			default:
				cand, ok := ap.Locks.Candidate(g.Name)
				if !ok {
					fmt.Printf("%-20s (no named accesses)\n", g.Name)
					continue
				}
				fmt.Printf("%-20s %s\n", g.Name, cand)
			}
		}
		var proven []string
		for _, ar := range ap.ARs {
			if ar.Benign() {
				proven = append(proven, fmt.Sprintf("AR%d %s.%s under %q", ar.ID, ar.Func, ar.Key, ar.Proof))
			}
		}
		fmt.Printf("\n# Statically proven serializable regions (compile-time whitelist): %d\n", len(proven))
		for _, p := range proven {
			fmt.Println(p)
		}
	}
	if *optimize {
		ost := ap.OptStats
		fmt.Printf("\n# Optimizer: %d regions in, %d out (-%d benign, -%d covered, -%d coalesced)\n",
			ost.Input, ost.Output, ost.Benign, ost.Deduped, ost.Coalesced)
	}
	st := ap.Stats()
	fmt.Printf("\n# %d functions, %d atomic regions on %d shared variables\n",
		st.Funcs, st.ARs, st.SharedVars)

	if *footprints {
		bin, err := compile.Compile(ap, compile.Options{})
		if err != nil {
			fatal(err)
		}
		rows, err := compile.FootprintReport(bin)
		if err != nil {
			fatal(err)
		}
		unbounded := 0
		fmt.Println("\n# Basic-block footprints (fast-path dispatch table)")
		fmt.Printf("%-16s %6s %6s  %s\n", "Func", "PC", "Instrs", "Footprint")
		for _, row := range rows {
			fmt.Printf("%-16s %6d %6d  %s\n", row.Fn, row.PC, row.Instrs, describeFootprint(row))
			if row.FP.Unbounded {
				unbounded++
			}
		}
		fmt.Printf("# %d blocks, %d unbounded\n", len(rows), unbounded)
	}

	if *lint {
		races := ap.Locks.Races()
		fmt.Printf("\n# Lint: %d race(s)\n", len(races))
		for _, r := range races {
			fmt.Printf("%s: %s\n", file, r)
		}
		if *strict && len(races) > 0 {
			os.Exit(1)
		}
	}
}

// describeFootprint renders one footprint row: the non-empty interval
// components, or UNBOUNDED with the instruction that caused the escape.
func describeFootprint(row compile.BlockFootprint) string {
	f := row.FP
	if f.Unbounded {
		s := "UNBOUNDED"
		if row.HasCause {
			s += fmt.Sprintf(" (cause pc %d: %s)", row.CausePC, row.CauseOp)
		}
		return s
	}
	var parts []string
	if f.AbsHi > f.AbsLo {
		parts = append(parts, fmt.Sprintf("abs [%#x, %#x)", f.AbsLo, f.AbsHi))
	}
	if f.SPHi > f.SPLo {
		parts = append(parts, fmt.Sprintf("SP [%+d, %+d)", f.SPLo, f.SPHi))
	}
	if f.FPHi > f.FPLo {
		parts = append(parts, fmt.Sprintf("FP [%+d, %+d)", f.FPLo, f.FPHi))
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, " ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kivati-annotate:", err)
	os.Exit(1)
}
