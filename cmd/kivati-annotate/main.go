// kivati-annotate runs Kivati's static annotator over a MiniC source file
// and prints the annotated program (begin_atomic / end_atomic / clear_ar
// pseudo-statements, in the style of the paper's Figures 3 and 4), the
// atomic-region table, and summary statistics.
//
// Usage:
//
//	kivati-annotate [-ars] [-lsv] file.mc
package main

import (
	"flag"
	"fmt"
	"os"

	"kivati/internal/analysis"
	"kivati/internal/annotate"
	"kivati/internal/minic"
)

func main() {
	showARs := flag.Bool("ars", false, "print the atomic-region table")
	showLSV := flag.Bool("lsv", false, "print each function's list of shared variables")
	precise := flag.Bool("precise", false, "use the points-to analysis (§3.5 extension)")
	interproc := flag.Bool("interprocedural", false, "form ARs across subroutine calls (§3.5 extension)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kivati-annotate [-ars] [-lsv] file.mc\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := minic.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	ap, err := annotate.AnnotateWithOptions(prog, annotate.Options{
		Precise:         *precise,
		InterProcedural: *interproc,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Print(annotate.PrintAnnotated(ap))

	if *showLSV {
		fmt.Println("\n# List of shared variables (LSV) per function")
		for _, fa := range ap.Funcs {
			fmt.Printf("%-20s %v\n", fa.Fn.Name, analysis.SortedLSV(fa.LSV))
		}
	}
	if *showARs {
		fmt.Println("\n# Atomic regions")
		fmt.Print(annotate.Describe(ap))
	}
	st := ap.Stats()
	fmt.Printf("\n# %d functions, %d atomic regions on %d shared variables\n",
		st.Funcs, st.ARs, st.SharedVars)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kivati-annotate:", err)
	os.Exit(1)
}
