// kivati-disasm compiles a MiniC program and prints its machine code — the
// disassembly, the function entry points, and the instruction-boundary table
// the kernel's undo engine consumes (§3.3). It is the inspection tool for
// the pre-processing pass: for every memory-accessing instruction it shows
// the next-PC → PC mapping used to roll the program counter back after a
// trap-after-access watchpoint fires.
//
// Usage:
//
//	kivati-disasm [-vanilla] [-boundary] file.mc
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"kivati/internal/annotate"
	"kivati/internal/compile"
	"kivati/internal/isa"
	"kivati/internal/minic"
)

func main() {
	vanilla := flag.Bool("vanilla", false, "compile without Kivati annotations")
	boundary := flag.Bool("boundary", false, "print the instruction-boundary table")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kivati-disasm [-vanilla] [-boundary] file.mc\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := minic.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	ap, err := annotate.Annotate(prog)
	if err != nil {
		fatal(err)
	}
	bin, err := compile.Compile(ap, compile.Options{Annotate: !*vanilla})
	if err != nil {
		fatal(err)
	}

	// Invert the function map for entry labels.
	entries := map[uint32]string{}
	for name, pc := range bin.Funcs {
		entries[pc] = name
	}

	lines, err := isa.Disassemble(bin.Code)
	if err != nil {
		fatal(err)
	}
	pc := uint32(0)
	for _, line := range lines {
		if name, ok := entries[pc]; ok {
			fmt.Printf("\n%s:\n", name)
		}
		fmt.Println(line)
		in, err := isa.Decode(bin.Code, pc)
		if err != nil {
			fatal(err)
		}
		pc += uint32(in.Len)
	}

	fmt.Printf("\n%d bytes, %d instructions, %d memory-accessing (boundary table entries)\n",
		len(bin.Code), len(lines), bin.Boundary.NumAccessInstrs())

	if *boundary {
		fmt.Println("\n# boundary table: next-PC -> accessing instruction PC")
		type entry struct{ next, instr uint32 }
		var table []entry
		scan := uint32(0)
		for int(scan) < len(bin.Code) {
			in, err := isa.Decode(bin.Code, scan)
			if err != nil {
				fatal(err)
			}
			next := scan + uint32(in.Len)
			if prev, ok := bin.Boundary.PrevAccess(next); ok && prev == scan {
				table = append(table, entry{next, scan})
			}
			scan = next
		}
		sort.Slice(table, func(i, j int) bool { return table[i].next < table[j].next })
		for _, e := range table {
			fmt.Printf("%06x -> %06x\n", e.next, e.instr)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kivati-disasm:", err)
	os.Exit(1)
}
