// kivati-bench regenerates the tables and figures of the paper's evaluation
// section (§4) on the simulated substrate.
//
// Usage:
//
//	kivati-bench -all                # every table and figure
//	kivati-bench -table 3            # one table (1-9)
//	kivati-bench -figure 7           # Figure 7
//	kivati-bench -ablation           # trained vs. static (lockset) whitelist
//	kivati-bench -all -scale 0.5     # larger workloads
//	kivati-bench -all -parallel 8    # fan runs out over 8 workers
//	kivati-bench -all -json          # machine-readable report on stdout
//	kivati-bench -bench-out BENCH_vm.json        # VM interpreter throughput baseline
//	kivati-bench -bench-baseline BENCH_vm.json   # compare current VM against a baseline
//	kivati-bench -bench-baseline BENCH_vm.json -bench-gate   # also fail on residency regression
//
// The independent VM runs inside each table fan out across a worker pool
// (-parallel, default GOMAXPROCS); output is byte-identical at every
// parallelism level. Per-target wall-clock timings go to stderr so stdout
// stays comparable across runs; -json swaps the rendered tables for one
// JSON report with rows, durations and build-cache counters. -cpuprofile
// and -memprofile capture pprof data for the whole sweep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"kivati/internal/harness"
)

// target is one table or figure regeneration: its rendered text, its
// structured rows, and how long it took.
type target struct {
	Target  string  `json:"target"`
	Seconds float64 `json:"seconds"`
	Result  any     `json:"result"`

	text string
}

// report is the -json output: everything a perf trajectory needs to track
// sweep time and per-table results across commits.
type report struct {
	Schema       string          `json:"schema"`
	Options      harness.Options `json:"options"`
	Parallelism  int             `json:"parallelism"`
	Targets      []target        `json:"targets"`
	CacheHits    uint64          `json:"build_cache_hits"`
	CacheMisses  uint64          `json:"build_cache_misses"`
	TotalSeconds float64         `json:"total_seconds"`
}

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-9)")
	figure := flag.Int("figure", 0, "regenerate one figure (7)")
	all := flag.Bool("all", false, "regenerate everything")
	ablation := flag.Bool("ablation", false, "run the trained-vs-static whitelist ablation")
	scale := flag.Float64("scale", 0.25, "workload scale (1.0 = full benchmark)")
	seed := flag.Int64("seed", 1, "scheduler seed")
	iters := flag.Int("train-iters", 7, "Figure 7 training iterations")
	ablIters := flag.Int("ablation-iters", 10, "training iterations in the ablation")
	parallel := flag.Int("parallel", 0, "worker pool size for independent runs (0 = GOMAXPROCS, 1 = serial)")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report instead of rendered tables")
	benchOut := flag.String("bench-out", "", "run the VM interpreter benchmark and write BENCH_vm.json-style output to this file")
	benchBaseline := flag.String("bench-baseline", "", "compare the VM interpreter benchmark against this baseline JSON file")
	benchGate := flag.Bool("bench-gate", false, "with -bench-baseline: exit nonzero if prevention-optimized fast residency regresses more than 5 points")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	o := harness.Options{Scale: *scale, Seed: *seed, Parallelism: *parallel}
	if !*all && *table == 0 && *figure == 0 && !*ablation && *benchOut == "" && *benchBaseline == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			check(f.Close())
		}()
	}

	// Mirror the harness's resolution (Options.parallelism) so the
	// reported number is the effective worker count, including for
	// nonsensical negative values.
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := report{Schema: "kivati-bench/v1", Options: o, Parallelism: workers}

	// run executes one target, records its structured result and timing,
	// and (outside -json mode) prints the rendered table to stdout and the
	// timing to stderr, keeping stdout byte-comparable across parallelism
	// levels.
	run := func(name string, fn func() (any, string, error)) {
		start := time.Now()
		res, text, err := fn()
		check(err)
		secs := time.Since(start).Seconds()
		rep.Targets = append(rep.Targets, target{Target: name, Seconds: secs, Result: res, text: text})
		if !*jsonOut {
			fmt.Println(text)
			fmt.Fprintf(os.Stderr, "# %s: %.2fs (parallelism %d)\n", name, secs, workers)
		}
	}

	runTable := func(n int) {
		switch n {
		case 1:
			run("table1", func() (any, string, error) {
				s := harness.Table1()
				return s, s, nil
			})
		case 2:
			run("table2", func() (any, string, error) {
				s := harness.Table2(o)
				return s, s, nil
			})
		case 3:
			run("table3", func() (any, string, error) {
				res, err := harness.RunTable3(o)
				if err != nil {
					return nil, "", err
				}
				return res, res.String(), nil
			})
		case 4:
			run("table4", func() (any, string, error) {
				res, err := harness.RunTable4(o)
				if err != nil {
					return nil, "", err
				}
				return res, res.String(), nil
			})
		case 5:
			run("table5", func() (any, string, error) {
				rows, err := harness.RunTable5(o)
				if err != nil {
					return nil, "", err
				}
				return rows, harness.FormatTable5(rows), nil
			})
		case 6:
			run("table6", func() (any, string, error) {
				rows, err := harness.RunTable6(harness.Options{Seed: *seed, Parallelism: *parallel})
				if err != nil {
					return nil, "", err
				}
				return rows, harness.FormatTable6(rows), nil
			})
		case 7:
			run("table7", func() (any, string, error) {
				rows, err := harness.RunTable7(o)
				if err != nil {
					return nil, "", err
				}
				return rows, harness.FormatTable7(rows), nil
			})
		case 8:
			run("table8", func() (any, string, error) {
				rows, err := harness.RunTable8(o)
				if err != nil {
					return nil, "", err
				}
				return rows, harness.FormatTable8(rows), nil
			})
		case 9:
			run("table9", func() (any, string, error) {
				res, err := harness.RunTable9(o)
				if err != nil {
					return nil, "", err
				}
				return res, res.String(), nil
			})
		default:
			check(fmt.Errorf("no table %d", n))
		}
	}
	runAblation := func() {
		run("ablation", func() (any, string, error) {
			rows, err := harness.RunAblation(o, *ablIters)
			if err != nil {
				return nil, "", err
			}
			return rows, harness.FormatAblation(rows), nil
		})
	}
	runFigure := func(n int) {
		switch n {
		case 7:
			run("figure7", func() (any, string, error) {
				rs, err := harness.RunFigure7(o, *iters)
				if err != nil {
					return nil, "", err
				}
				return rs, harness.FormatFigure7(rs), nil
			})
		default:
			check(fmt.Errorf("no figure %d", n))
		}
	}

	// runVMBench measures raw interpreter throughput (instr/sec, fast-path
	// residency, kernel crossings) per workload and configuration, writing
	// the report to -bench-out and/or comparing it against -bench-baseline.
	runVMBench := func() {
		run("vmbench", func() (any, string, error) {
			res, err := harness.RunVMBench(o)
			if err != nil {
				return nil, "", err
			}
			text := res.String()
			if *benchOut != "" {
				if err := harness.WriteVMBench(*benchOut, res); err != nil {
					return nil, "", err
				}
			}
			if *benchBaseline != "" {
				base, err := harness.ReadVMBench(*benchBaseline)
				if err != nil {
					return nil, "", err
				}
				text += "\n" + harness.CompareVMBench(base, res)
				if *benchGate {
					if err := harness.GateVMBench(base, res); err != nil {
						return nil, "", err
					}
				}
			} else if *benchGate {
				return nil, "", fmt.Errorf("-bench-gate requires -bench-baseline")
			}
			return res, text, nil
		})
	}

	sweepStart := time.Now()
	switch {
	case *all:
		for n := 1; n <= 9; n++ {
			runTable(n)
		}
		runFigure(7)
		runAblation()
	default:
		if *table != 0 {
			runTable(*table)
		}
		if *figure != 0 {
			runFigure(*figure)
		}
		if *ablation {
			runAblation()
		}
		if *benchOut != "" || *benchBaseline != "" {
			runVMBench()
		}
	}
	rep.TotalSeconds = time.Since(sweepStart).Seconds()
	rep.CacheHits, rep.CacheMisses = harness.BuildCacheStats()

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(rep))
	} else {
		fmt.Fprintf(os.Stderr, "# sweep: %.2fs total, build cache %d hits / %d misses\n",
			rep.TotalSeconds, rep.CacheHits, rep.CacheMisses)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		check(err)
		runtime.GC()
		check(pprof.WriteHeapProfile(f))
		check(f.Close())
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kivati-bench:", err)
		os.Exit(1)
	}
}
