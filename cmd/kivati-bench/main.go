// kivati-bench regenerates the tables and figures of the paper's evaluation
// section (§4) on the simulated substrate.
//
// Usage:
//
//	kivati-bench -all                # every table and figure
//	kivati-bench -table 3            # one table (1-9)
//	kivati-bench -figure 7           # Figure 7
//	kivati-bench -all -scale 0.5     # larger workloads
package main

import (
	"flag"
	"fmt"
	"os"

	"kivati/internal/harness"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-9)")
	figure := flag.Int("figure", 0, "regenerate one figure (7)")
	all := flag.Bool("all", false, "regenerate everything")
	scale := flag.Float64("scale", 0.25, "workload scale (1.0 = full benchmark)")
	seed := flag.Int64("seed", 1, "scheduler seed")
	iters := flag.Int("train-iters", 7, "Figure 7 training iterations")
	flag.Parse()

	o := harness.Options{Scale: *scale, Seed: *seed}
	if !*all && *table == 0 && *figure == 0 {
		flag.Usage()
		os.Exit(2)
	}

	run := func(n int) {
		switch n {
		case 1:
			fmt.Println(harness.Table1())
		case 2:
			fmt.Println(harness.Table2(o))
		case 3:
			res, err := harness.RunTable3(o)
			check(err)
			fmt.Println(res)
		case 4:
			res, err := harness.RunTable4(o)
			check(err)
			fmt.Println(res)
		case 5:
			rows, err := harness.RunTable5(o)
			check(err)
			fmt.Println(harness.FormatTable5(rows))
		case 6:
			rows, err := harness.RunTable6(harness.Options{Seed: *seed})
			check(err)
			fmt.Println(harness.FormatTable6(rows))
		case 7:
			rows, err := harness.RunTable7(o)
			check(err)
			fmt.Println(harness.FormatTable7(rows))
		case 8:
			rows, err := harness.RunTable8(o)
			check(err)
			fmt.Println(harness.FormatTable8(rows))
		case 9:
			res, err := harness.RunTable9(o)
			check(err)
			fmt.Println(res)
		default:
			check(fmt.Errorf("no table %d", n))
		}
	}
	runFigure := func(n int) {
		switch n {
		case 7:
			rs, err := harness.RunFigure7(o, *iters)
			check(err)
			fmt.Println(harness.FormatFigure7(rs))
		default:
			check(fmt.Errorf("no figure %d", n))
		}
	}

	if *all {
		for n := 1; n <= 9; n++ {
			run(n)
		}
		runFigure(7)
		return
	}
	if *table != 0 {
		run(*table)
	}
	if *figure != 0 {
		runFigure(*figure)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kivati-bench:", err)
		os.Exit(1)
	}
}
