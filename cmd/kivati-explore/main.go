// kivati-explore runs the schedule-exploration differential oracle over the
// bug corpus: it explores many thread interleavings of a bounded fixture in
// both vanilla and prevention mode and compares every final snapshot against
// the serial reference.
//
// Usage:
//
//	kivati-explore -bug NSS/341323              # one bug, 500 random schedules
//	kivati-explore -all                         # the whole 11-bug corpus
//	kivati-explore -bug NSS/341323 -strategy dfs -bound 3
//	kivati-explore -bug NSS/341323 -strategy dfs -dpor    # prune swap-redundant schedules
//	kivati-explore -all -engine replay          # legacy engine (fresh VM per schedule)
//	kivati-explore -bug NSS/341323 -trace-dir traces   # record divergent schedules
//	kivati-explore -replay traces/NSS-341323-vanilla-17.json
//	kivati-explore -gen 20 -gen-seed 1          # a generated 20-program corpus
//	kivati-explore -all -json                   # machine-readable report
//	kivati-explore -bench-out BENCH_explore.json          # engine throughput sweep
//	kivati-explore -bench-baseline BENCH_explore.json -bench-gate
//
// Exit status is nonzero if any prevention-mode schedule diverges from the
// serial result (an engine bug), if a replayed trace fails to reproduce
// its recorded outcome, or if -bench-gate detects a regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"kivati/internal/bugs"
	"kivati/internal/corpusgen"
	"kivati/internal/explore"
	"kivati/internal/harness"
)

// report is the -json output.
type report struct {
	Schema    string           `json:"schema"`
	Strategy  explore.Strategy `json:"strategy"`
	Engine    explore.Engine   `json:"engine"`
	DPOR      bool             `json:"dpor,omitempty"`
	Schedules int              `json:"schedules"`
	Seed      int64            `json:"seed"`
	Bound     int              `json:"bound,omitempty"`
	// GenSeed and Corpus identify a generated corpus (-gen): with the
	// generator's determinism guarantee they make every subject — and so
	// every recorded trace — replayable from this report alone.
	GenSeed      *int64                `json:"gen_seed,omitempty"`
	Corpus       int                   `json:"corpus_size,omitempty"`
	Subjects     []*explore.DiffReport `json:"subjects"`
	TotalSeconds float64               `json:"total_seconds"`
	// SchedulesPerSec is executed schedules (subjects x 2 modes x budget)
	// per wall-clock second; the engine counters aggregate over subjects
	// and modes.
	SchedulesPerSec float64 `json:"schedules_per_sec"`
	Snapshots       int     `json:"snapshots"`
	Restores        int     `json:"restores"`
	Resumed         int     `json:"resumed,omitempty"`
	Pruned          int     `json:"pruned,omitempty"`
	// Decision-point cost accounting aggregated over subjects and modes
	// (see harness.ExploreBenchReport for the column semantics).
	Decisions         uint64  `json:"decisions"`
	NsPerDecision     float64 `json:"ns_per_decision"`
	SamePickContinues uint64  `json:"same_pick_continues"`
	DeltaArms         uint64  `json:"delta_arms"`
	FullArms          uint64  `json:"full_arms"`
}

func main() {
	bug := flag.String("bug", "", "explore one bug (App/ID, e.g. NSS/341323)")
	all := flag.Bool("all", false, "explore the whole 11-bug corpus")
	gen := flag.Int("gen", 0, "explore a generated corpus of this many programs instead of the hand-written bugs")
	genSeed := flag.Int64("gen-seed", 1, "generated corpus base seed")
	genArrays := flag.Bool("gen-arrays", false, "generated corpus: add indirect-access ring decoys")
	strategy := flag.String("strategy", "random", "schedule strategy: random or dfs")
	n := flag.Int("n", 500, "schedule budget per mode")
	bound := flag.Int("bound", 3, "dfs: max preemption-point deviations")
	horizon := flag.Int("horizon", 0, "dfs: only the first N decisions spawn children (0 = default 64)")
	seed := flag.Int64("seed", 1, "base seed (random: schedule k uses seed+k)")
	quantum := flag.Uint64("quantum", 0, "preemption quantum override (0 = strategy default)")
	cores := flag.Int("cores", 1, "simulated cores")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	engine := flag.String("engine", "snapshot", "execution engine: snapshot (session reuse, fast dispatch, branch-point resume) or replay (legacy, fresh VM per schedule)")
	dpor := flag.Bool("dpor", false, "dfs: prune swap-redundant schedules via recorded access streams (snapshot engine, single core)")
	traceDir := flag.String("trace-dir", "", "record a replayable trace for every divergent schedule into this directory")
	replay := flag.String("replay", "", "replay one recorded trace file and verify it reproduces")
	jsonOut := flag.Bool("json", false, "emit a JSON report instead of text")
	benchOut := flag.String("bench-out", "", "run the corpus engine-throughput sweep and write BENCH_explore.json-style output to this file")
	benchBaseline := flag.String("bench-baseline", "", "compare the engine-throughput sweep against this baseline JSON file")
	benchGate := flag.Bool("bench-gate", false, "with -bench-baseline: exit nonzero on verdict drift or an aggregate speedup under the floor")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			check(f.Close())
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			check(err)
			runtime.GC()
			check(pprof.WriteHeapProfile(f))
			check(f.Close())
		}()
	}

	if *replay != "" {
		runReplay(*replay, *jsonOut)
		return
	}

	opts := explore.Options{
		Strategy:    explore.Strategy(*strategy),
		Schedules:   *n,
		Seed:        *seed,
		Bound:       *bound,
		Horizon:     *horizon,
		Quantum:     *quantum,
		Cores:       *cores,
		Parallelism: *parallel,
		Engine:      explore.Engine(*engine),
		DPOR:        *dpor,
	}

	if *benchOut != "" || *benchBaseline != "" {
		runBench(opts, *benchOut, *benchBaseline, *benchGate, *jsonOut)
		return
	}
	if *bug == "" && !*all && *gen == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var subjects []*explore.Subject
	if *gen > 0 {
		progs, err := corpusgen.Generate(corpusgen.Options{Count: *gen, Seed: *genSeed, Arrays: *genArrays})
		check(err)
		for _, p := range progs {
			subjects = append(subjects, explore.GenSubject(p, len(progs)))
		}
	} else if *all {
		for _, b := range bugs.Corpus() {
			s, err := explore.BugSubject(b)
			check(err)
			subjects = append(subjects, s)
		}
	} else {
		app, id, ok := strings.Cut(*bug, "/")
		if !ok {
			check(fmt.Errorf("bad -bug %q: want App/ID", *bug))
		}
		b, err := bugs.ByID(app, id)
		check(err)
		s, err := explore.BugSubject(b)
		check(err)
		subjects = append(subjects, s)
	}

	rep := report{
		Schema:    "kivati-explore/v2",
		Strategy:  opts.Strategy,
		Engine:    opts.Engine,
		DPOR:      *dpor,
		Schedules: *n,
		Seed:      *seed,
	}
	if opts.Strategy == explore.DFS {
		rep.Bound = *bound
	}
	if *gen > 0 {
		rep.GenSeed = genSeed
		rep.Corpus = *gen
	}

	engineBugs := 0
	start := time.Now()
	for _, s := range subjects {
		t0 := time.Now()
		d, err := explore.Differential(s, opts)
		check(err)
		rep.Subjects = append(rep.Subjects, d)
		if !*jsonOut {
			fmt.Printf("%-14s serial=%s  vanilla: %d/%d diverged  prevention: %d/%d diverged\n",
				d.Subject, fmtSnapshot(d.Serial),
				d.VanillaDivergences(), len(d.Vanilla.Runs),
				d.PreventionDivergences(), len(d.Prevention.Runs))
			fmt.Fprintf(os.Stderr, "# %s: %.2fs\n", d.Subject, time.Since(t0).Seconds())
		}
		engineBugs += d.PreventionDivergences()
		for _, st := range []*explore.EngineStats{d.Vanilla.Stats, d.Prevention.Stats} {
			if st == nil {
				continue
			}
			rep.Snapshots += st.Snapshots
			rep.Restores += st.Restores
			rep.Resumed += st.Resumed
			rep.Pruned += st.Pruned
		}
		for _, mr := range []*explore.Report{d.Vanilla, d.Prevention} {
			for _, r := range mr.Runs {
				rep.Decisions += uint64(r.Decisions)
				rep.SamePickContinues += r.SamePickContinues
				rep.DeltaArms += r.DeltaArms
				rep.FullArms += r.FullArms
			}
		}
		if *traceDir != "" {
			check(os.MkdirAll(*traceDir, 0o755))
			check(writeTraces(*traceDir, s, explore.Vanilla, opts, d.Vanilla, *jsonOut))
			check(writeTraces(*traceDir, s, explore.Prevention, opts, d.Prevention, *jsonOut))
		}
	}
	rep.TotalSeconds = time.Since(start).Seconds()
	if rep.TotalSeconds > 0 {
		rep.SchedulesPerSec = float64(len(subjects)*2**n) / rep.TotalSeconds
	}
	if rep.Decisions > 0 {
		rep.NsPerDecision = rep.TotalSeconds * 1e9 / float64(rep.Decisions)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(rep))
	}
	if engineBugs > 0 {
		fmt.Fprintf(os.Stderr, "kivati-explore: ENGINE BUG: %d prevention-mode schedules diverged from the serial result\n", engineBugs)
		os.Exit(1)
	}
}

// runBench is the -bench-out / -bench-baseline path: the corpus
// engine-throughput sweep, optionally gated against a checked-in baseline.
func runBench(opts explore.Options, out, baseline string, gate, jsonOut bool) {
	rep, err := harness.RunExploreBench(opts)
	check(err)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(rep))
	} else {
		fmt.Print(rep.String())
	}
	if out != "" {
		check(harness.WriteExploreBench(out, rep))
	}
	if baseline != "" {
		base, err := harness.ReadExploreBench(baseline)
		check(err)
		if gate {
			if err := harness.GateExploreBench(base, rep); err != nil {
				fmt.Fprintln(os.Stderr, "kivati-explore:", err)
				os.Exit(1)
			}
			if !jsonOut {
				fmt.Println("bench gate: ok")
			}
		}
	} else if gate {
		check(fmt.Errorf("-bench-gate requires -bench-baseline"))
	}
}

// writeTraces records one replayable trace per divergent schedule.
func writeTraces(dir string, s *explore.Subject, mode explore.Mode, opts explore.Options, rep *explore.Report, quiet bool) error {
	for _, r := range rep.Runs {
		if !r.Diverged {
			continue
		}
		tr, err := explore.RecordTrace(s, mode, opts, r)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("%s-%s-%d.json", strings.ReplaceAll(s.Name, "/", "-"), mode, r.Index)
		path := filepath.Join(dir, name)
		if err := tr.WriteFile(path); err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "# trace: %s\n", path)
		}
	}
	return nil
}

func runReplay(path string, jsonOut bool) {
	tr, err := explore.ReadTrace(path)
	check(err)
	res, err := explore.Replay(tr)
	check(err)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(res))
	} else {
		fmt.Printf("%s [%s] schedule %d: snapshot=%s serial=%s diverged=%v mismatches=%d\n",
			tr.Subject, tr.Mode, tr.Index, fmtSnapshot(res.Run.Snapshot),
			fmtSnapshot(tr.Serial), res.Run.Diverged, res.Mismatches)
	}
	if !res.Verdict {
		fmt.Fprintln(os.Stderr, "kivati-explore: replay did NOT reproduce the recorded outcome")
		os.Exit(1)
	}
	if !jsonOut {
		fmt.Println("replay reproduced the recorded outcome")
	}
}

// fmtSnapshot renders a snapshot in sorted-key order.
func fmtSnapshot(m map[string]int64) string {
	b, _ := json.Marshal(m) // map keys sort in encoding/json
	return string(b)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kivati-explore:", err)
		os.Exit(1)
	}
}
