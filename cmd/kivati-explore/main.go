// kivati-explore runs the schedule-exploration differential oracle over the
// bug corpus: it explores many thread interleavings of a bounded fixture in
// both vanilla and prevention mode and compares every final snapshot against
// the serial reference.
//
// Usage:
//
//	kivati-explore -bug NSS/341323              # one bug, 500 random schedules
//	kivati-explore -all                         # the whole 11-bug corpus
//	kivati-explore -bug NSS/341323 -strategy dfs -bound 3
//	kivati-explore -bug NSS/341323 -trace-dir traces   # record divergent schedules
//	kivati-explore -replay traces/NSS-341323-vanilla-17.json
//	kivati-explore -all -json                   # machine-readable report
//
// Exit status is nonzero if any prevention-mode schedule diverges from the
// serial result (an engine bug), or if a replayed trace fails to reproduce
// its recorded outcome.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"kivati/internal/bugs"
	"kivati/internal/explore"
)

// report is the -json output.
type report struct {
	Schema       string                `json:"schema"`
	Strategy     explore.Strategy      `json:"strategy"`
	Schedules    int                   `json:"schedules"`
	Seed         int64                 `json:"seed"`
	Bound        int                   `json:"bound,omitempty"`
	Subjects     []*explore.DiffReport `json:"subjects"`
	TotalSeconds float64               `json:"total_seconds"`
}

func main() {
	bug := flag.String("bug", "", "explore one bug (App/ID, e.g. NSS/341323)")
	all := flag.Bool("all", false, "explore the whole 11-bug corpus")
	strategy := flag.String("strategy", "random", "schedule strategy: random or dfs")
	n := flag.Int("n", 500, "schedule budget per mode")
	bound := flag.Int("bound", 3, "dfs: max preemption-point deviations")
	seed := flag.Int64("seed", 1, "base seed (random: schedule k uses seed+k)")
	quantum := flag.Uint64("quantum", 0, "preemption quantum override (0 = strategy default)")
	cores := flag.Int("cores", 1, "simulated cores")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	traceDir := flag.String("trace-dir", "", "record a replayable trace for every divergent schedule into this directory")
	replay := flag.String("replay", "", "replay one recorded trace file and verify it reproduces")
	jsonOut := flag.Bool("json", false, "emit a JSON report instead of text")
	flag.Parse()

	if *replay != "" {
		runReplay(*replay, *jsonOut)
		return
	}
	if *bug == "" && !*all {
		flag.Usage()
		os.Exit(2)
	}

	opts := explore.Options{
		Strategy:    explore.Strategy(*strategy),
		Schedules:   *n,
		Seed:        *seed,
		Bound:       *bound,
		Quantum:     *quantum,
		Cores:       *cores,
		Parallelism: *parallel,
	}

	var subjects []*explore.Subject
	if *all {
		for _, b := range bugs.Corpus() {
			s, err := explore.BugSubject(b)
			check(err)
			subjects = append(subjects, s)
		}
	} else {
		app, id, ok := strings.Cut(*bug, "/")
		if !ok {
			check(fmt.Errorf("bad -bug %q: want App/ID", *bug))
		}
		b, err := bugs.ByID(app, id)
		check(err)
		s, err := explore.BugSubject(b)
		check(err)
		subjects = append(subjects, s)
	}

	rep := report{
		Schema:    "kivati-explore/v1",
		Strategy:  opts.Strategy,
		Schedules: *n,
		Seed:      *seed,
	}
	if opts.Strategy == explore.DFS {
		rep.Bound = *bound
	}

	engineBugs := 0
	start := time.Now()
	for _, s := range subjects {
		t0 := time.Now()
		d, err := explore.Differential(s, opts)
		check(err)
		rep.Subjects = append(rep.Subjects, d)
		if !*jsonOut {
			fmt.Printf("%-14s serial=%s  vanilla: %d/%d diverged  prevention: %d/%d diverged\n",
				d.Subject, fmtSnapshot(d.Serial),
				d.VanillaDivergences(), len(d.Vanilla.Runs),
				d.PreventionDivergences(), len(d.Prevention.Runs))
			fmt.Fprintf(os.Stderr, "# %s: %.2fs\n", d.Subject, time.Since(t0).Seconds())
		}
		engineBugs += d.PreventionDivergences()
		if *traceDir != "" {
			check(os.MkdirAll(*traceDir, 0o755))
			check(writeTraces(*traceDir, s, explore.Vanilla, opts, d.Vanilla, *jsonOut))
			check(writeTraces(*traceDir, s, explore.Prevention, opts, d.Prevention, *jsonOut))
		}
	}
	rep.TotalSeconds = time.Since(start).Seconds()

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(rep))
	}
	if engineBugs > 0 {
		fmt.Fprintf(os.Stderr, "kivati-explore: ENGINE BUG: %d prevention-mode schedules diverged from the serial result\n", engineBugs)
		os.Exit(1)
	}
}

// writeTraces records one replayable trace per divergent schedule.
func writeTraces(dir string, s *explore.Subject, mode explore.Mode, opts explore.Options, rep *explore.Report, quiet bool) error {
	for _, r := range rep.Runs {
		if !r.Diverged {
			continue
		}
		tr, err := explore.RecordTrace(s, mode, opts, r)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("%s-%s-%d.json", strings.ReplaceAll(s.Name, "/", "-"), mode, r.Index)
		path := filepath.Join(dir, name)
		if err := tr.WriteFile(path); err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "# trace: %s\n", path)
		}
	}
	return nil
}

func runReplay(path string, jsonOut bool) {
	tr, err := explore.ReadTrace(path)
	check(err)
	res, err := explore.Replay(tr)
	check(err)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(res))
	} else {
		fmt.Printf("%s [%s] schedule %d: snapshot=%s serial=%s diverged=%v mismatches=%d\n",
			tr.Subject, tr.Mode, tr.Index, fmtSnapshot(res.Run.Snapshot),
			fmtSnapshot(tr.Serial), res.Run.Diverged, res.Mismatches)
	}
	if !res.Verdict {
		fmt.Fprintln(os.Stderr, "kivati-explore: replay did NOT reproduce the recorded outcome")
		os.Exit(1)
	}
	if !jsonOut {
		fmt.Println("replay reproduced the recorded outcome")
	}
}

// fmtSnapshot renders a snapshot in sorted-key order.
func fmtSnapshot(m map[string]int64) string {
	b, _ := json.Marshal(m) // map keys sort in encoding/json
	return string(b)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kivati-explore:", err)
		os.Exit(1)
	}
}
