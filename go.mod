module kivati

go 1.22
