package minic

import "fmt"

// Parser is a recursive-descent parser for MiniC.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a MiniC translation unit.
func Parse(src string) (*Program, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog := &Program{}
	for !p.atEOF() {
		if err := p.parseTopLevel(prog); err != nil {
			return nil, err
		}
	}
	if err := checkProgram(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

func (p *Parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *Parser) cur() Token {
	if p.atEOF() {
		last := Pos{}
		if len(p.toks) > 0 {
			last = p.toks[len(p.toks)-1].Pos
		}
		return Token{Kind: TokEOF, Pos: last}
	}
	return p.toks[p.pos]
}

func (p *Parser) next() Token {
	t := p.cur()
	p.pos++
	return t
}

func (p *Parser) is(text string) bool {
	t := p.cur()
	return (t.Kind == TokPunct || t.Kind == TokKeyword) && t.Text == text
}

func (p *Parser) accept(text string) bool {
	if p.is(text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(text string) (Token, error) {
	if p.is(text) {
		return p.next(), nil
	}
	return Token{}, fmt.Errorf("minic: %v: expected %q, found %q", p.cur().Pos, text, p.cur().String())
}

func (p *Parser) expectIdent() (Token, error) {
	if p.cur().Kind == TokIdent {
		return p.next(), nil
	}
	return Token{}, fmt.Errorf("minic: %v: expected identifier, found %q", p.cur().Pos, p.cur().String())
}

// parseTopLevel parses one global declaration or function definition.
func (p *Parser) parseTopLevel(prog *Program) error {
	start := p.cur()
	isVoid := p.accept("void")
	if !isVoid {
		if _, err := p.expect("int"); err != nil {
			return err
		}
	}
	ptr := p.accept("*")
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if p.is("(") {
		fn, err := p.parseFuncRest(start.Pos, name.Text, isVoid, ptr)
		if err != nil {
			return err
		}
		prog.Funcs = append(prog.Funcs, fn)
		return nil
	}
	if isVoid {
		return fmt.Errorf("minic: %v: global %q cannot have type void", start.Pos, name.Text)
	}
	decl, err := p.parseVarDeclRest(start.Pos, name.Text, ptr)
	if err != nil {
		return err
	}
	prog.Globals = append(prog.Globals, decl)
	return nil
}

// parseVarDeclRest parses the remainder of a variable declaration after the
// type and name: optional [N], optional = init, then ';'.
func (p *Parser) parseVarDeclRest(pos Pos, name string, ptr bool) (*VarDecl, error) {
	d := &VarDecl{Pos: pos, Name: name, Type: Type{Ptr: ptr}}
	if p.accept("[") {
		if ptr {
			return nil, fmt.Errorf("minic: %v: array of pointers not supported", pos)
		}
		n := p.cur()
		if n.Kind != TokInt || n.Val <= 0 {
			return nil, fmt.Errorf("minic: %v: expected positive array length", n.Pos)
		}
		p.next()
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		d.Type.ArrayLen = int(n.Val)
	}
	if p.accept("=") {
		if d.Type.ArrayLen > 0 {
			return nil, fmt.Errorf("minic: %v: array initializers not supported", pos)
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	_, err := p.expect(";")
	return d, err
}

func (p *Parser) parseFuncRest(pos Pos, name string, isVoid, retPtr bool) (*FuncDecl, error) {
	fn := &FuncDecl{Pos: pos, Name: name, Void: isVoid, RetPtr: retPtr}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.accept(")") {
		for {
			ppos := p.cur().Pos
			if _, err := p.expect("int"); err != nil {
				return nil, err
			}
			ptr := p.accept("*")
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, &VarDecl{Pos: ppos, Name: id.Text, Type: Type{Ptr: ptr}})
			if p.accept(")") {
				break
			}
			if _, err := p.expect(","); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.accept("}") {
		if p.atEOF() {
			return nil, fmt.Errorf("minic: unexpected end of input in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.is("int"):
		p.next()
		ptr := p.accept("*")
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d, err := p.parseVarDeclRest(t.Pos, id.Text, ptr)
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Pos: t.Pos, Decl: d}, nil
	case p.is("if"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		s := &IfStmt{Pos: t.Pos, Cond: cond, Then: then}
		if p.accept("else") {
			if p.is("if") {
				inner, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				s.Else = &Block{Stmts: []Stmt{inner}}
			} else {
				els, err := p.parseBlock()
				if err != nil {
					return nil, err
				}
				s.Else = els
			}
		}
		return s, nil
	case p.is("while"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: t.Pos, Cond: cond, Body: body}, nil
	case p.is("return"):
		p.next()
		s := &ReturnStmt{Pos: t.Pos}
		if !p.is(";") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.X = x
		}
		_, err := p.expect(";")
		return s, err
	}
	// Assignment or expression statement. Parse an expression; if '='
	// follows, the expression must be an lvalue.
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.accept("=") {
		if !isLvalue(x) {
			return nil, fmt.Errorf("minic: %v: assignment target is not an lvalue", t.Pos)
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: t.Pos, LHS: x, RHS: rhs}, nil
	}
	if _, ok := x.(*Call); !ok {
		return nil, fmt.Errorf("minic: %v: expression statement must be a call", t.Pos)
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: t.Pos, X: x}, nil
}

func isLvalue(x Expr) bool {
	switch e := x.(type) {
	case *Ident:
		return true
	case *Index:
		return true
	case *Unary:
		return e.Op == "*"
	}
	return false
}

// Binary operator precedence, loosest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBin(0) }

func (p *Parser) parseBin(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	x, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precLevels[level] {
			if p.is(op) {
				pos := p.next().Pos
				y, err := p.parseBin(level + 1)
				if err != nil {
					return nil, err
				}
				x = &Binary{Pos: pos, Op: op, X: x, Y: y}
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	for _, op := range []string{"-", "!", "*", "&"} {
		if p.is(op) {
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if op == "&" {
				if _, ok := x.(*Ident); !ok {
					if _, ok := x.(*Index); !ok {
						return nil, fmt.Errorf("minic: %v: & requires a variable or array element", t.Pos)
					}
				}
			}
			if op == "*" {
				if _, ok := x.(*Ident); !ok {
					return nil, fmt.Errorf("minic: %v: * requires a pointer variable", t.Pos)
				}
			}
			return &Unary{Pos: t.Pos, Op: op, X: x}, nil
		}
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.next()
		return &IntLit{Pos: t.Pos, V: t.Val}, nil
	case TokIdent:
		p.next()
		if p.accept("(") {
			c := &Call{Pos: t.Pos, Name: t.Text}
			if !p.accept(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					c.Args = append(c.Args, a)
					if p.accept(")") {
						break
					}
					if _, err := p.expect(","); err != nil {
						return nil, err
					}
				}
			}
			return c, nil
		}
		if p.accept("[") {
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			return &Index{Pos: t.Pos, Name: t.Text, Idx: idx}, nil
		}
		return &Ident{Pos: t.Pos, Name: t.Text}, nil
	}
	if p.accept("(") {
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(")")
		return x, err
	}
	return nil, fmt.Errorf("minic: %v: unexpected token %q", t.Pos, t.String())
}
