package minic

import "fmt"

// TokKind classifies lexical tokens.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokPunct   // operators and delimiters
	TokKeyword // int, void, if, else, while, return
)

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Val  int64 // for TokInt
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "EOF"
	case TokInt:
		return fmt.Sprintf("%d", t.Val)
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"int": true, "void": true, "if": true, "else": true,
	"while": true, "return": true,
}
