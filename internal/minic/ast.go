package minic

// Type describes a MiniC value type. The base type is always a 64-bit
// integer; a variable may additionally be a pointer to int or an array of
// int. This mirrors the subset of C the paper's examples use (scalars,
// pointers and arrays of shared data).
type Type struct {
	Ptr      bool // int*
	ArrayLen int  // >0 for int[N]
}

// Size returns the variable's size in bytes (elements are 8 bytes).
func (t Type) Size() int {
	if t.ArrayLen > 0 {
		return 8 * t.ArrayLen
	}
	return 8
}

func (t Type) String() string {
	switch {
	case t.Ptr:
		return "int*"
	case t.ArrayLen > 0:
		return "int[]"
	default:
		return "int"
	}
}

// Program is a parsed MiniC translation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// Func returns the function named name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global named name, or nil.
func (p *Program) Global(name string) *VarDecl {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// VarDecl declares a global, parameter or local variable.
type VarDecl struct {
	Pos  Pos
	Name string
	Type Type
	Init Expr // optional initializer (globals: constant only)
}

// FuncDecl declares a function. RetPtr distinguishes `int *f()` from
// `int f()`; Void marks `void f()`.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []*VarDecl
	Void   bool
	RetPtr bool
	Body   *Block
}

// Block is a brace-delimited statement list.
type Block struct {
	Stmts []Stmt
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmt() }

// DeclStmt is a local variable declaration, with optional initializer.
type DeclStmt struct {
	Pos  Pos
	Decl *VarDecl
}

// AssignStmt assigns RHS to an lvalue (Ident, Deref or Index expression).
type AssignStmt struct {
	Pos Pos
	LHS Expr
	RHS Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *Block
}

// ExprStmt is an expression evaluated for effect (a call).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	Pos Pos
	X   Expr // may be nil
}

// Annotation kinds inserted by the static annotator.
type AnnotKind int

const (
	AnnotBegin AnnotKind = iota // begin_atomic
	AnnotEnd                    // end_atomic
	AnnotClear                  // clear_ar
)

// Access type bits used in annotations; these mirror hw.Read/hw.Write but
// are kept as plain integers so the AST package has no dependencies.
const (
	AccRead  = 1
	AccWrite = 2
)

// AnnotStmt is a begin_atomic / end_atomic / clear_ar annotation inserted by
// the static annotator (never produced by the parser).
type AnnotStmt struct {
	Pos    Pos
	Kind   AnnotKind
	ARID   int
	Target Expr  // begin: lvalue whose address the watchpoint monitors
	Size   int   // begin: watched width in bytes
	Watch  uint8 // begin: remote access types to watch (AccRead|AccWrite bits)
	First  uint8 // begin: first local access type
	Second uint8 // end: second local access type
}

func (*DeclStmt) stmt()   {}
func (*AssignStmt) stmt() {}
func (*IfStmt) stmt()     {}
func (*WhileStmt) stmt()  {}
func (*ExprStmt) stmt()   {}
func (*ReturnStmt) stmt() {}
func (*AnnotStmt) stmt()  {}

// Expr is implemented by all expression nodes.
type Expr interface{ expr() }

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	V   int64
}

// Ident names a variable.
type Ident struct {
	Pos  Pos
	Name string
}

// Unary is a prefix operation: "-", "!", "*" (deref), "&" (address-of).
type Unary struct {
	Pos Pos
	Op  string
	X   Expr
}

// Binary is an infix operation.
type Binary struct {
	Pos Pos
	Op  string
	X   Expr
	Y   Expr
}

// Call invokes a function or builtin by name.
type Call struct {
	Pos  Pos
	Name string
	Args []Expr
}

// Index accesses an array element: Name[Idx].
type Index struct {
	Pos  Pos
	Name string
	Idx  Expr
}

func (*IntLit) expr() {}
func (*Ident) expr()  {}
func (*Unary) expr()  {}
func (*Binary) expr() {}
func (*Call) expr()   {}
func (*Index) expr()  {}

// Builtins are the runtime services MiniC programs may call; they compile to
// SYS instructions rather than CALLs.
var Builtins = map[string]int{
	"exit": 0, "lock": 1, "unlock": 1, "yield": 0, "sleep": 1,
	"print": 1, "spawn": 2, "rand": 0, "recv": 0, "send": 1, "nanos": 0,
}

// IsBuiltin reports whether name is a builtin and its arity.
func IsBuiltin(name string) (arity int, ok bool) {
	arity, ok = Builtins[name]
	return arity, ok
}
