package minic

import (
	"fmt"
	"strconv"
)

// Lexer tokenizes MiniC source text.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return fmt.Errorf("minic: %v: unterminated block comment", start)
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// twoCharPuncts lists the multi-character operators, longest match first.
var twoCharPuncts = []string{"==", "!=", "<=", ">=", "&&", "||", "<<", ">>"}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: pos}, nil
	case isDigit(c):
		start := l.off
		for l.off < len(l.src) && (isIdentPart(l.peek())) {
			l.advance()
		}
		text := l.src[start:l.off]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return Token{}, fmt.Errorf("minic: %v: bad integer literal %q", pos, text)
		}
		return Token{Kind: TokInt, Text: text, Val: v, Pos: pos}, nil
	}
	// Punctuation.
	if l.off+1 < len(l.src) {
		two := l.src[l.off : l.off+2]
		for _, p := range twoCharPuncts {
			if two == p {
				l.advance()
				l.advance()
				return Token{Kind: TokPunct, Text: p, Pos: pos}, nil
			}
		}
	}
	switch c {
	case '+', '-', '*', '/', '%', '&', '|', '^', '!', '<', '>', '=',
		'(', ')', '{', '}', '[', ']', ';', ',':
		l.advance()
		return Token{Kind: TokPunct, Text: string(c), Pos: pos}, nil
	}
	return Token{}, fmt.Errorf("minic: %v: unexpected character %q", pos, string(c))
}

// LexAll tokenizes the whole input (excluding the trailing EOF token).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
