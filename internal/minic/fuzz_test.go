package minic

import "testing"

// minicSeeds cover the language surface: globals with initializers, arrays,
// pointers, control flow, builtins, and operator precedence.
var minicSeeds = []string{
	`int x;
void main() {
    x = 1;
}
`,
	`int counter;
int buf[16];
int init = 42;
void work(int id) {
    int i;
    i = 0;
    while (i < 10) {
        buf[i % 16] = counter + id * 2;
        counter = counter + 1;
        i = i + 1;
    }
}
void main() {
    spawn(work, 1);
    spawn(work, 2);
}
`,
	`int lk;
int shared;
int peek(int x) {
    return shared;
}
void main() {
    int v;
    lock(lk);
    v = peek(0);
    if (v == 0) {
        shared = v + 1;
    } else {
        shared = 0;
    }
    unlock(lk);
    yield();
}
`,
	`int *p;
int cell;
void main() {
    int a;
    p = &cell;
    *p = 7;
    a = *p;
    if (a > 3 && a < 9) {
        cell = -a;
    }
    while (a != 0) {
        a = a - 1;
    }
}
`,
	`void main() {
    print(1 + 2 * 3 % 4 - 5 / 1);
    print((1 < 2) == (3 >= 3));
    print(!0 || 1 && 0);
}
`,
}

// FuzzMinicParse: the parser must never panic, and printing a parsed
// program must reach a fixpoint — Print(Parse(Print(Parse(src)))) ==
// Print(Parse(src)). The fixpoint is what makes the printer usable as the
// annotator's output format: annotated source is reparsed by the compiler
// pipeline, so print→parse must be lossless.
func FuzzMinicParse(f *testing.F) {
	for _, s := range minicSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return // keep per-exec cost bounded
		}
		prog, err := Parse(src)
		if err != nil {
			return // rejecting bad input is fine; panicking is not
		}
		p1 := Print(prog)
		prog2, err := Parse(p1)
		if err != nil {
			t.Fatalf("printed program does not reparse: %v\ninput:\n%s\nprinted:\n%s", err, src, p1)
		}
		p2 := Print(prog2)
		if p1 != p2 {
			t.Fatalf("print/parse fixpoint broken:\nfirst:\n%s\nsecond:\n%s", p1, p2)
		}
	})
}

// TestPrintParseFixpointSeeds runs the fixpoint property over the seeds
// directly so it is checked on every ordinary `go test` run too.
func TestPrintParseFixpointSeeds(t *testing.T) {
	for i, src := range minicSeeds {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("seed %d does not parse: %v", i, err)
		}
		p1 := Print(prog)
		prog2, err := Parse(p1)
		if err != nil {
			t.Fatalf("seed %d printed form does not reparse: %v\n%s", i, err, p1)
		}
		if p2 := Print(prog2); p1 != p2 {
			t.Fatalf("seed %d fixpoint broken:\n%s\n----\n%s", i, p1, p2)
		}
	}
}
