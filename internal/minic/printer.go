package minic

import (
	"fmt"
	"strings"
)

// Print renders a program back to MiniC source, including any annotation
// statements inserted by the static annotator. It is used by the
// kivati-annotate tool and by the annotator's golden tests (the Figure 3 and
// Figure 4 listings of the paper).
func Print(prog *Program) string {
	var b strings.Builder
	for _, g := range prog.Globals {
		printDecl(&b, 0, g)
	}
	for i, f := range prog.Funcs {
		if i > 0 || len(prog.Globals) > 0 {
			b.WriteString("\n")
		}
		printFunc(&b, f)
	}
	return b.String()
}

func indent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("    ")
	}
}

func printDecl(b *strings.Builder, depth int, d *VarDecl) {
	indent(b, depth)
	if d.Type.Ptr {
		fmt.Fprintf(b, "int *%s", d.Name)
	} else if d.Type.ArrayLen > 0 {
		fmt.Fprintf(b, "int %s[%d]", d.Name, d.Type.ArrayLen)
	} else {
		fmt.Fprintf(b, "int %s", d.Name)
	}
	if d.Init != nil {
		fmt.Fprintf(b, " = %s", ExprString(d.Init))
	}
	b.WriteString(";\n")
}

func printFunc(b *strings.Builder, f *FuncDecl) {
	ret := "int"
	if f.Void {
		ret = "void"
	} else if f.RetPtr {
		ret = "int *"
	}
	fmt.Fprintf(b, "%s %s(", ret, f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		if p.Type.Ptr {
			fmt.Fprintf(b, "int *%s", p.Name)
		} else {
			fmt.Fprintf(b, "int %s", p.Name)
		}
	}
	b.WriteString(") ")
	printBlock(b, 0, f.Body)
}

func printBlock(b *strings.Builder, depth int, blk *Block) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		printStmt(b, depth+1, s)
	}
	indent(b, depth)
	b.WriteString("}\n")
}

func accName(t uint8) string {
	switch t {
	case AccRead:
		return "R"
	case AccWrite:
		return "W"
	case AccRead | AccWrite:
		return "RW"
	}
	return "-"
}

func printStmt(b *strings.Builder, depth int, s Stmt) {
	switch st := s.(type) {
	case *DeclStmt:
		printDecl(b, depth, st.Decl)
	case *AssignStmt:
		indent(b, depth)
		fmt.Fprintf(b, "%s = %s;\n", ExprString(st.LHS), ExprString(st.RHS))
	case *IfStmt:
		indent(b, depth)
		fmt.Fprintf(b, "if (%s) ", ExprString(st.Cond))
		printBlockInline(b, depth, st.Then)
		if st.Else != nil {
			indent(b, depth)
			b.WriteString("else ")
			printBlockInline(b, depth, st.Else)
		}
	case *WhileStmt:
		indent(b, depth)
		fmt.Fprintf(b, "while (%s) ", ExprString(st.Cond))
		printBlockInline(b, depth, st.Body)
	case *ExprStmt:
		indent(b, depth)
		fmt.Fprintf(b, "%s;\n", ExprString(st.X))
	case *ReturnStmt:
		indent(b, depth)
		if st.X != nil {
			fmt.Fprintf(b, "return %s;\n", ExprString(st.X))
		} else {
			b.WriteString("return;\n")
		}
	case *AnnotStmt:
		indent(b, depth)
		switch st.Kind {
		case AnnotBegin:
			fmt.Fprintf(b, "begin_atomic(%d, &%s, %d, %s, %s);\n",
				st.ARID, ExprString(st.Target), st.Size, accName(st.Watch), accName(st.First))
		case AnnotEnd:
			fmt.Fprintf(b, "end_atomic(%d, %s);\n", st.ARID, accName(st.Second))
		case AnnotClear:
			b.WriteString("clear_ar();\n")
		}
	}
}

func printBlockInline(b *strings.Builder, depth int, blk *Block) {
	printBlock(b, depth, blk)
}

// ExprString renders an expression.
func ExprString(x Expr) string {
	switch e := x.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", e.V)
	case *Ident:
		return e.Name
	case *Index:
		return fmt.Sprintf("%s[%s]", e.Name, ExprString(e.Idx))
	case *Unary:
		return fmt.Sprintf("%s%s", e.Op, ExprString(e.X))
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", ExprString(e.X), e.Op, ExprString(e.Y))
	case *Call:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
	}
	return fmt.Sprintf("<%T>", x)
}
