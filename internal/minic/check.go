package minic

import "fmt"

// checkProgram performs name resolution and arity/type sanity checks. MiniC
// is deliberately small, so this is not a full type checker — it catches the
// errors that would otherwise surface as confusing compiler panics.
func checkProgram(prog *Program) error {
	seen := map[string]bool{}
	for _, g := range prog.Globals {
		if seen[g.Name] {
			return fmt.Errorf("minic: %v: duplicate global %q", g.Pos, g.Name)
		}
		seen[g.Name] = true
		if g.Init != nil {
			if _, ok := g.Init.(*IntLit); !ok {
				return fmt.Errorf("minic: %v: global initializer for %q must be a constant", g.Pos, g.Name)
			}
		}
	}
	fnames := map[string]*FuncDecl{}
	for _, f := range prog.Funcs {
		if fnames[f.Name] != nil {
			return fmt.Errorf("minic: %v: duplicate function %q", f.Pos, f.Name)
		}
		if _, ok := IsBuiltin(f.Name); ok {
			return fmt.Errorf("minic: %v: function %q shadows a builtin", f.Pos, f.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("minic: %v: function %q collides with a global", f.Pos, f.Name)
		}
		fnames[f.Name] = f
	}
	for _, f := range prog.Funcs {
		c := &checker{prog: prog, fn: f, scope: map[string]*VarDecl{}}
		for _, g := range prog.Globals {
			c.scope[g.Name] = g
		}
		for _, p := range f.Params {
			if c.fnLocal(p.Name) {
				return fmt.Errorf("minic: %v: duplicate parameter %q", p.Pos, p.Name)
			}
			c.locals = append(c.locals, p)
			c.scope[p.Name] = p
		}
		if err := c.block(f.Body); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	prog   *Program
	fn     *FuncDecl
	scope  map[string]*VarDecl // name -> decl (globals shadowed by locals)
	locals []*VarDecl
}

func (c *checker) fnLocal(name string) bool {
	for _, l := range c.locals {
		if l.Name == name {
			return true
		}
	}
	return false
}

func (c *checker) block(b *Block) error {
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s Stmt) error {
	switch st := s.(type) {
	case *DeclStmt:
		d := st.Decl
		if c.fnLocal(d.Name) {
			return fmt.Errorf("minic: %v: duplicate local %q", d.Pos, d.Name)
		}
		if d.Init != nil {
			if err := c.expr(d.Init); err != nil {
				return err
			}
		}
		c.locals = append(c.locals, d)
		c.scope[d.Name] = d
		return nil
	case *AssignStmt:
		if err := c.expr(st.LHS); err != nil {
			return err
		}
		return c.expr(st.RHS)
	case *IfStmt:
		if err := c.expr(st.Cond); err != nil {
			return err
		}
		if err := c.block(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.block(st.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.expr(st.Cond); err != nil {
			return err
		}
		return c.block(st.Body)
	case *ExprStmt:
		return c.expr(st.X)
	case *ReturnStmt:
		if st.X != nil {
			if c.fn.Void {
				return fmt.Errorf("minic: %v: void function %q returns a value", st.Pos, c.fn.Name)
			}
			return c.expr(st.X)
		}
		return nil
	case *AnnotStmt:
		return nil // inserted by the annotator, trusted
	}
	return fmt.Errorf("minic: unknown statement %T", s)
}

func (c *checker) expr(x Expr) error {
	switch e := x.(type) {
	case *IntLit:
		return nil
	case *Ident:
		if c.scope[e.Name] == nil {
			return fmt.Errorf("minic: %v: undefined variable %q", e.Pos, e.Name)
		}
		return nil
	case *Index:
		d := c.scope[e.Name]
		if d == nil {
			return fmt.Errorf("minic: %v: undefined array %q", e.Pos, e.Name)
		}
		if d.Type.ArrayLen == 0 && !d.Type.Ptr {
			return fmt.Errorf("minic: %v: %q is not an array", e.Pos, e.Name)
		}
		return c.expr(e.Idx)
	case *Unary:
		if e.Op == "*" {
			id, ok := e.X.(*Ident)
			if !ok {
				return fmt.Errorf("minic: deref of non-identifier")
			}
			d := c.scope[id.Name]
			if d == nil {
				return fmt.Errorf("minic: %v: undefined variable %q", id.Pos, id.Name)
			}
			if !d.Type.Ptr {
				return fmt.Errorf("minic: %v: dereference of non-pointer %q", id.Pos, id.Name)
			}
			return nil
		}
		return c.expr(e.X)
	case *Binary:
		if err := c.expr(e.X); err != nil {
			return err
		}
		return c.expr(e.Y)
	case *Call:
		if arity, ok := IsBuiltin(e.Name); ok {
			if len(e.Args) != arity {
				return fmt.Errorf("minic: %v: builtin %q takes %d argument(s), got %d",
					e.Pos, e.Name, arity, len(e.Args))
			}
			if e.Name == "spawn" {
				id, ok := e.Args[0].(*Ident)
				if !ok || c.prog.Func(id.Name) == nil {
					return fmt.Errorf("minic: %v: spawn's first argument must be a function name", e.Pos)
				}
				return c.expr(e.Args[1])
			}
			for _, a := range e.Args {
				if err := c.expr(a); err != nil {
					return err
				}
			}
			return nil
		}
		fn := c.prog.Func(e.Name)
		if fn == nil {
			return fmt.Errorf("minic: %v: undefined function %q", e.Pos, e.Name)
		}
		if len(e.Args) != len(fn.Params) {
			return fmt.Errorf("minic: %v: function %q takes %d argument(s), got %d",
				e.Pos, e.Name, len(fn.Params), len(e.Args))
		}
		for _, a := range e.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("minic: unknown expression %T", x)
}
