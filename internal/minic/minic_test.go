package minic

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("int x = 42; // comment\nwhile (x <= 0x10) { x = x << 2; } /* block */")
	if err != nil {
		t.Fatalf("LexAll: %v", err)
	}
	var kinds []string
	for _, tk := range toks {
		kinds = append(kinds, tk.String())
	}
	want := "int x = 42 ; while ( x <= 16 ) { x = x << 2 ; }"
	if got := strings.Join(kinds, " "); got != want {
		t.Errorf("tokens = %q, want %q", got, want)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("int\n  x;")
	if err != nil {
		t.Fatalf("LexAll: %v", err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("int at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("x at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "/* unterminated", "999999999999999999999999999"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q): want error", src)
		}
	}
}

const example = `
int shared1;
int shared2 = 7;
int arr[4];
int *ptr;
int lk;

void worker(int id, int *out) {
    int tmp;
    tmp = shared1;
    if (tmp == 0) {
        shared1 = tmp + 1;
    } else {
        shared1 = 0;
    }
    while (shared2 > 0) {
        shared2 = shared2 - 1;
        yield();
    }
    arr[id] = tmp;
    *out = arr[id];
    lock(lk);
    unlock(lk);
    return;
}

int *getptr() {
    return ptr;
}

void main() {
    spawn(worker, 1);
    worker(0, ptr);
}
`

func TestParseExample(t *testing.T) {
	prog, err := Parse(example)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Globals) != 5 {
		t.Errorf("got %d globals, want 5", len(prog.Globals))
	}
	if len(prog.Funcs) != 3 {
		t.Errorf("got %d funcs, want 3", len(prog.Funcs))
	}
	w := prog.Func("worker")
	if w == nil {
		t.Fatal("worker not found")
	}
	if len(w.Params) != 2 || !w.Params[1].Type.Ptr {
		t.Errorf("worker params wrong: %+v", w.Params)
	}
	g := prog.Global("shared2")
	if g == nil || g.Init.(*IntLit).V != 7 {
		t.Errorf("shared2 init wrong: %+v", g)
	}
	if prog.Global("arr").Type.ArrayLen != 4 {
		t.Errorf("arr len = %d", prog.Global("arr").Type.ArrayLen)
	}
	gp := prog.Func("getptr")
	if gp == nil || !gp.RetPtr || gp.Void {
		t.Errorf("getptr decl wrong: %+v", gp)
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse("int a;\nvoid f() { a = 1 + 2 * 3 == 7 && 1; }")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	as := prog.Funcs[0].Body.Stmts[0].(*AssignStmt)
	if got := ExprString(as.RHS); got != "(((1 + (2 * 3)) == 7) && 1)" {
		t.Errorf("RHS = %s", got)
	}
}

func TestParseElseIf(t *testing.T) {
	prog, err := Parse("int a;\nvoid f() { if (a) { a = 1; } else if (a == 2) { a = 3; } else { a = 4; } }")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ifs := prog.Funcs[0].Body.Stmts[0].(*IfStmt)
	inner, ok := ifs.Else.Stmts[0].(*IfStmt)
	if !ok {
		t.Fatalf("else-if not nested: %T", ifs.Else.Stmts[0])
	}
	if inner.Else == nil {
		t.Error("inner else missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int;",                              // missing name
		"void g;",                           // void global
		"int a; int a;",                     // duplicate global
		"void f() { x = 1; }",               // undefined variable
		"void f() { 1 + 2; }",               // non-call expression statement
		"void f() { 1 = 2; }",               // bad lvalue
		"int a; void f() { a(); }",          // calling a global
		"int a; void f() { a[0] = 1; }",     // indexing a scalar
		"int a; void f() { *a = 1; }",       // deref of non-pointer
		"void f() { return 1; }",            // void returns value
		"void f(int x, int x) { }",          // duplicate param
		"int a; void f() { int a; int a; }", // duplicate local
		"void f() { lock(); }",              // builtin arity
		"void f() { spawn(1, 2); }",         // spawn of non-function
		"void f() { g(1); } void g() { }",   // call arity
		"int arr[0];",                       // zero-length array
		"int a = b; int b;",                 // non-constant global init
		"void f() {",                        // unterminated block
		"int *p[3];",                        // array of pointers
		"void lock() { }",                   // builtin shadow
		"int f; void f() { }",               // func/global collision
		"void f() { } void f() { }",         // duplicate function
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestPrintRoundTrip(t *testing.T) {
	prog, err := Parse(example)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	printed := Print(prog)
	// Re-parsing the printed output must succeed and print identically
	// (fixed point).
	prog2, err := Parse(printed)
	if err != nil {
		t.Fatalf("Parse(printed): %v\nsource:\n%s", err, printed)
	}
	if printed2 := Print(prog2); printed2 != printed {
		t.Errorf("print not a fixed point:\n--- first\n%s\n--- second\n%s", printed, printed2)
	}
}

func TestPrintAnnotations(t *testing.T) {
	prog, err := Parse("int s;\nvoid f() { s = 1; }")
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Funcs[0].Body
	begin := &AnnotStmt{Kind: AnnotBegin, ARID: 3, Target: &Ident{Name: "s"}, Size: 8, Watch: AccWrite, First: AccRead}
	end := &AnnotStmt{Kind: AnnotEnd, ARID: 3, Second: AccWrite}
	clr := &AnnotStmt{Kind: AnnotClear}
	body.Stmts = append([]Stmt{begin}, append(body.Stmts, end, clr)...)
	out := Print(prog)
	for _, want := range []string{
		"begin_atomic(3, &s, 8, W, R);",
		"end_atomic(3, W);",
		"clear_ar();",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q:\n%s", want, out)
		}
	}
}

// Property: the lexer never panics and either errors or consumes all input.
func TestLexNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("LexAll(%q) panicked: %v", src, r)
			}
		}()
		_, _ = LexAll(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: the parser never panics on arbitrary token soup.
func TestParseNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Parse(%q) panicked: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTypeSize(t *testing.T) {
	if (Type{}).Size() != 8 {
		t.Error("scalar size != 8")
	}
	if (Type{ArrayLen: 5}).Size() != 40 {
		t.Error("array size != 40")
	}
	if (Type{Ptr: true}).Size() != 8 {
		t.Error("pointer size != 8")
	}
}

func TestTypeString(t *testing.T) {
	cases := map[string]Type{
		"int":   {},
		"int*":  {Ptr: true},
		"int[]": {ArrayLen: 3},
	}
	for want, ty := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", ty, got, want)
		}
	}
}

func TestPosString(t *testing.T) {
	if got := (Pos{Line: 3, Col: 9}).String(); got != "3:9" {
		t.Errorf("Pos.String() = %q", got)
	}
}
