// Package stats provides the small numeric helpers the experiment harness
// uses: geometric means (Table 3's summary row), means and percentiles for
// latency distributions, and the paper's mm:ss time formatting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// GeoMean returns the geometric mean of xs (which must be positive);
// it returns 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanU64 averages unsigned samples.
func MeanU64(xs []uint64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += float64(x)
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using
// nearest-rank on a sorted copy; 0 for empty input.
func Percentile(xs []uint64, p float64) uint64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]uint64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// OverheadPct returns the percentage overhead of measured versus baseline.
func OverheadPct(baseline, measured uint64) float64 {
	if baseline == 0 {
		return 0
	}
	return (float64(measured) - float64(baseline)) / float64(baseline) * 100
}

// FormatMMSS renders a duration in seconds as the paper's m:ss format.
func FormatMMSS(seconds float64) string {
	if seconds < 0 {
		return "-"
	}
	total := int(seconds + 0.5)
	return fmt.Sprintf("%d:%02d", total/60, total%60)
}
