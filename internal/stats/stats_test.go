package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	if got := GeoMean([]float64{4, 4, 4}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(4,4,4) = %v", got)
	}
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean(1,100) = %v, want 10", got)
	}
	if got := GeoMean([]float64{2, -1}); !math.IsNaN(got) {
		t.Errorf("GeoMean with nonpositive input = %v, want NaN", got)
	}
}

// Property: the geometric mean sits between min and max and is invariant
// under permutation.
func TestGeoMeanProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := GeoMean(xs)
		if g < lo-1e-9 || g > hi+1e-9 {
			return false
		}
		// Reverse and re-check.
		rev := make([]float64, len(xs))
		for i := range xs {
			rev[i] = xs[len(xs)-1-i]
		}
		return math.Abs(GeoMean(rev)-g) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := MeanU64([]uint64{10, 20}); got != 15 {
		t.Errorf("MeanU64 = %v", got)
	}
	if MeanU64(nil) != 0 {
		t.Error("MeanU64(nil) != 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []uint64{5, 1, 9, 3, 7}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("p50 = %d", got)
	}
	if got := Percentile(xs, 100); got != 9 {
		t.Errorf("p100 = %d", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %d", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty p50 = %d", got)
	}
	// Input must not be reordered.
	if xs[0] != 5 || xs[4] != 7 {
		t.Error("Percentile mutated its input")
	}
}

func TestOverheadPct(t *testing.T) {
	if got := OverheadPct(100, 130); got != 30 {
		t.Errorf("OverheadPct = %v", got)
	}
	if got := OverheadPct(0, 50); got != 0 {
		t.Errorf("OverheadPct(0, _) = %v", got)
	}
	if got := OverheadPct(100, 90); got != -10 {
		t.Errorf("negative overhead = %v", got)
	}
}

func TestFormatMMSS(t *testing.T) {
	cases := map[float64]string{
		0:      "0:00",
		59:     "0:59",
		60:     "1:00",
		61.4:   "1:01",
		3599.6: "60:00",
		4019:   "66:59",
	}
	for in, want := range cases {
		if got := FormatMMSS(in); got != want {
			t.Errorf("FormatMMSS(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatMMSS(-1); got != "-" {
		t.Errorf("FormatMMSS(-1) = %q", got)
	}
}
