package cfg

import (
	"testing"

	"kivati/internal/minic"
)

func mustParse(t *testing.T, src string) *minic.Program {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return prog
}

func TestStraightLine(t *testing.T) {
	prog := mustParse(t, "int a;\nvoid f() { a = 1; a = 2; }")
	g := Build(prog.Funcs[0])
	// entry -> s1 -> s2 -> exit
	if len(g.Nodes) != 4 {
		t.Fatalf("got %d nodes, want 4", len(g.Nodes))
	}
	s1 := g.Entry.Succs[0]
	if s1.Kind != KindStmt {
		t.Fatalf("entry succ is %v", s1)
	}
	s2 := s1.Succs[0]
	if s2.Succs[0] != g.Exit {
		t.Error("s2 does not reach exit")
	}
	if len(g.Exit.Preds) != 1 {
		t.Errorf("exit preds = %d, want 1", len(g.Exit.Preds))
	}
}

func TestIfElse(t *testing.T) {
	prog := mustParse(t, "int a;\nvoid f() { if (a) { a = 1; } else { a = 2; } a = 3; }")
	g := Build(prog.Funcs[0])
	cond := g.Entry.Succs[0]
	if cond.Kind != KindCond {
		t.Fatalf("expected cond node, got %v", cond)
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("cond succs = %d, want 2", len(cond.Succs))
	}
	// Both branches converge on the final statement.
	join := cond.Succs[0].Succs[0]
	if cond.Succs[1].Succs[0] != join {
		t.Error("branches do not converge")
	}
	if len(join.Preds) != 2 {
		t.Errorf("join preds = %d, want 2", len(join.Preds))
	}
}

func TestIfWithoutElse(t *testing.T) {
	prog := mustParse(t, "int a;\nvoid f() { if (a) { a = 1; } a = 3; }")
	g := Build(prog.Funcs[0])
	cond := g.Entry.Succs[0]
	// cond has two successors: then-branch and fall-through join.
	if len(cond.Succs) != 2 {
		t.Fatalf("cond succs = %d, want 2", len(cond.Succs))
	}
}

func TestWhileLoop(t *testing.T) {
	prog := mustParse(t, "int a;\nvoid f() { while (a) { a = a - 1; } }")
	g := Build(prog.Funcs[0])
	cond := g.Entry.Succs[0]
	if cond.Kind != KindCond {
		t.Fatalf("expected cond, got %v", cond)
	}
	body := cond.Succs[0]
	if body.Succs[0] != cond {
		t.Error("loop body does not feed back to cond")
	}
	// cond falls through to exit.
	found := false
	for _, s := range cond.Succs {
		if s == g.Exit {
			found = true
		}
	}
	if !found {
		t.Error("cond does not reach exit")
	}
	// Back edge means cond has two preds: entry and body.
	if len(cond.Preds) != 2 {
		t.Errorf("cond preds = %d, want 2", len(cond.Preds))
	}
}

func TestReturnTerminates(t *testing.T) {
	prog := mustParse(t, "int a;\nvoid f() { if (a) { return; } a = 1; }")
	g := Build(prog.Funcs[0])
	cond := g.Entry.Succs[0]
	var ret *Node
	for _, s := range cond.Succs {
		if st, ok := s.Stmt.(*minic.ReturnStmt); ok && st != nil {
			ret = s
		}
	}
	if ret == nil {
		t.Fatal("return node not found")
	}
	if len(ret.Succs) != 1 || ret.Succs[0] != g.Exit {
		t.Errorf("return succs = %v, want exit only", ret.Succs)
	}
	// Exit has two preds: the return and the trailing assignment.
	if len(g.Exit.Preds) != 2 {
		t.Errorf("exit preds = %d, want 2", len(g.Exit.Preds))
	}
}

func TestStmtNode(t *testing.T) {
	prog := mustParse(t, "int a;\nvoid f() { a = 1; }")
	g := Build(prog.Funcs[0])
	s := prog.Funcs[0].Body.Stmts[0]
	if n := g.StmtNode(s); n == nil || n.Stmt != s {
		t.Error("StmtNode did not find the statement")
	}
	if g.StmtNode(&minic.ReturnStmt{}) != nil {
		t.Error("StmtNode found a foreign statement")
	}
}

func TestCondOwner(t *testing.T) {
	prog := mustParse(t, "int a;\nvoid f() { while (a > 0) { a = 0; } }")
	g := Build(prog.Funcs[0])
	cond := g.Entry.Succs[0]
	if _, ok := cond.Owner.(*minic.WhileStmt); !ok {
		t.Errorf("cond owner = %T, want *WhileStmt", cond.Owner)
	}
}

func TestNestedLoops(t *testing.T) {
	prog := mustParse(t, `
int a;
void f() {
    while (a) {
        while (a > 1) {
            a = a - 1;
        }
        a = a - 2;
    }
}`)
	g := Build(prog.Funcs[0])
	// Every node must be reachable from entry.
	seen := map[int]bool{}
	var visit func(n *Node)
	visit = func(n *Node) {
		if seen[n.ID] {
			return
		}
		seen[n.ID] = true
		for _, s := range n.Succs {
			visit(s)
		}
	}
	visit(g.Entry)
	for _, n := range g.Nodes {
		if !seen[n.ID] {
			t.Errorf("node %v unreachable", n)
		}
	}
	// Pred/succ must be symmetric.
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			found := false
			for _, p := range s.Preds {
				if p == n {
					found = true
				}
			}
			if !found {
				t.Errorf("%v -> %v missing back pointer", n, s)
			}
		}
	}
}
