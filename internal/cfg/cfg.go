// Package cfg builds per-function control-flow graphs over MiniC ASTs, at
// statement granularity. Branch and loop conditions get their own nodes
// because they access variables too; the annotator attaches begin_atomic /
// end_atomic annotations to nodes, and the compiler emits them before/after
// the node's code.
package cfg

import (
	"fmt"

	"kivati/internal/minic"
)

// NodeKind classifies CFG nodes.
type NodeKind int

const (
	KindEntry NodeKind = iota
	KindExit
	KindStmt // a simple statement (decl, assign, call, return)
	KindCond // the condition of an if or while
)

// Node is one CFG node.
type Node struct {
	ID    int
	Kind  NodeKind
	Stmt  minic.Stmt // for KindStmt
	Cond  minic.Expr // for KindCond
	Owner minic.Stmt // for KindCond: the If/While statement owning the condition
	Succs []*Node
	Preds []*Node
}

func (n *Node) String() string {
	switch n.Kind {
	case KindEntry:
		return fmt.Sprintf("n%d:entry", n.ID)
	case KindExit:
		return fmt.Sprintf("n%d:exit", n.ID)
	case KindCond:
		return fmt.Sprintf("n%d:cond(%s)", n.ID, minic.ExprString(n.Cond))
	default:
		return fmt.Sprintf("n%d:stmt", n.ID)
	}
}

// Graph is a function's CFG.
type Graph struct {
	Fn    *minic.FuncDecl
	Entry *Node
	Exit  *Node
	Nodes []*Node
}

// StmtNode returns the node for a given simple statement, or nil.
func (g *Graph) StmtNode(s minic.Stmt) *Node {
	for _, n := range g.Nodes {
		if n.Kind == KindStmt && n.Stmt == s {
			return n
		}
	}
	return nil
}

type builder struct {
	g *Graph
}

func (b *builder) newNode(kind NodeKind) *Node {
	n := &Node{ID: len(b.g.Nodes), Kind: kind}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func connect(from []*Node, to *Node) {
	for _, f := range from {
		f.Succs = append(f.Succs, to)
		to.Preds = append(to.Preds, f)
	}
}

// Build constructs the CFG of fn.
func Build(fn *minic.FuncDecl) *Graph {
	g := &Graph{Fn: fn}
	b := &builder{g: g}
	g.Entry = b.newNode(KindEntry)
	g.Exit = b.newNode(KindExit)
	out := b.block(fn.Body, []*Node{g.Entry})
	connect(out, g.Exit)
	return g
}

// block threads the statements of blk after the dangling frontier `from`,
// returning the new frontier (nodes whose control falls through to whatever
// follows the block).
func (b *builder) block(blk *minic.Block, from []*Node) []*Node {
	for _, s := range blk.Stmts {
		from = b.stmt(s, from)
	}
	return from
}

func (b *builder) stmt(s minic.Stmt, from []*Node) []*Node {
	switch st := s.(type) {
	case *minic.IfStmt:
		c := b.newNode(KindCond)
		c.Cond = st.Cond
		c.Owner = st
		connect(from, c)
		thenOut := b.block(st.Then, []*Node{c})
		if st.Else != nil {
			elseOut := b.block(st.Else, []*Node{c})
			return append(thenOut, elseOut...)
		}
		return append(thenOut, c)
	case *minic.WhileStmt:
		c := b.newNode(KindCond)
		c.Cond = st.Cond
		c.Owner = st
		connect(from, c)
		bodyOut := b.block(st.Body, []*Node{c})
		connect(bodyOut, c)
		return []*Node{c}
	case *minic.ReturnStmt:
		n := b.newNode(KindStmt)
		n.Stmt = s
		connect(from, n)
		connect([]*Node{n}, b.g.Exit)
		return nil
	default:
		n := b.newNode(KindStmt)
		n.Stmt = s
		connect(from, n)
		return []*Node{n}
	}
}
