// Binary basic-block CFGs. While cfg.Build works at MiniC statement
// granularity for the annotator, BuildBinary partitions a decoded code
// region (one function of a compiled image) into maximal basic blocks with
// explicit successor edges — the graph the value-range footprint analysis
// (internal/valrange) runs its interval fixpoint over. Blocks are cut at
// jump targets and after control transfers only; SYS stays inside a block
// (it falls through to the next instruction — the fast path's "kernel
// boundary" notion is a dispatch property, not a control-flow one).
package cfg

import "kivati/internal/isa"

// BinBlock is one basic block of a decoded code region.
type BinBlock struct {
	ID    int
	Start uint32   // PC of the block's first instruction
	PCs   []uint32 // instruction-start PCs, in execution order
	Succs []int    // successor block IDs, in edge order (see BinGraph)
}

// End returns the PC one past the block's last instruction.
func (b *BinBlock) End(decoded []isa.Instr) uint32 {
	last := b.PCs[len(b.PCs)-1]
	return last + uint32(decoded[last].Len)
}

// BinGraph is the basic-block CFG of one code region [Lo, Hi). Edge order
// is fixed so per-edge analyses can refine: for a conditional jump (JZ,
// JNZ) the taken edge comes first and the fall-through edge second; every
// other block has at most one successor. Control transfers that leave the
// region (RET, HLT, a jump to a PC outside [Lo, Hi)) produce no edge.
type BinGraph struct {
	Lo, Hi uint32
	Blocks []*BinBlock
	// blockOf maps a PC inside the region to the ID of the block containing
	// it, or -1 for non-instruction offsets.
	blockOf []int
}

// BlockAt returns the ID of the block containing pc, or -1.
func (g *BinGraph) BlockAt(pc uint32) int {
	if pc < g.Lo || pc >= g.Hi {
		return -1
	}
	return g.blockOf[pc-g.Lo]
}

// BuildBinary builds the basic-block CFG of the region [lo, hi) of a
// decoded image (decoded is indexed by PC as produced by
// isa.DecodeProgram). The region must start at an instruction boundary;
// decoding is assumed to stay in phase across the region (the image-wide
// decode guarantees it).
func BuildBinary(decoded []isa.Instr, lo, hi uint32) *BinGraph {
	g := &BinGraph{Lo: lo, Hi: hi, blockOf: make([]int, hi-lo)}
	for i := range g.blockOf {
		g.blockOf[i] = -1
	}

	// Pass 1: leaders — the region start, every in-region jump target, and
	// every instruction following a control transfer.
	leader := make(map[uint32]bool, 8)
	leader[lo] = true
	for pc := lo; pc < hi; pc += uint32(decoded[pc].Len) {
		in := decoded[pc]
		next := pc + uint32(in.Len)
		switch in.Op {
		case isa.OpJMP, isa.OpJZ, isa.OpJNZ:
			if in.Addr >= lo && in.Addr < hi {
				leader[in.Addr] = true
			}
			if next < hi {
				leader[next] = true
			}
		case isa.OpRET, isa.OpHLT:
			if next < hi {
				leader[next] = true
			}
		}
	}

	// Pass 2: cut blocks at leaders.
	var cur *BinBlock
	for pc := lo; pc < hi; pc += uint32(decoded[pc].Len) {
		if cur == nil || leader[pc] {
			cur = &BinBlock{ID: len(g.Blocks), Start: pc}
			g.Blocks = append(g.Blocks, cur)
		}
		cur.PCs = append(cur.PCs, pc)
		g.blockOf[pc-lo] = cur.ID
		in := decoded[pc]
		switch in.Op {
		case isa.OpJMP, isa.OpJZ, isa.OpJNZ, isa.OpRET, isa.OpHLT:
			cur = nil
		}
	}

	// Pass 3: edges. Taken edge first for conditionals.
	for _, b := range g.Blocks {
		last := b.PCs[len(b.PCs)-1]
		in := decoded[last]
		next := last + uint32(in.Len)
		addEdge := func(target uint32) {
			if id := g.BlockAt(target); id >= 0 {
				b.Succs = append(b.Succs, id)
			}
		}
		switch in.Op {
		case isa.OpJMP:
			addEdge(in.Addr)
		case isa.OpJZ, isa.OpJNZ:
			addEdge(in.Addr)
			addEdge(next)
		case isa.OpRET, isa.OpHLT:
			// Region exit.
		default:
			addEdge(next)
		}
	}
	return g
}

// BackEdgeTargets returns the set of block IDs that are targets of a back
// edge (an edge to a block on the DFS stack), reachable from block 0 — the
// widening points a fixpoint over the graph needs. The classic DFS
// coloring: an edge into a gray node closes a cycle.
func (g *BinGraph) BackEdgeTargets() map[int]bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.Blocks))
	targets := map[int]bool{}
	var dfs func(int)
	dfs = func(n int) {
		color[n] = gray
		for _, s := range g.Blocks[n].Succs {
			switch color[s] {
			case white:
				dfs(s)
			case gray:
				targets[s] = true
			}
		}
		color[n] = black
	}
	if len(g.Blocks) > 0 {
		dfs(0)
	}
	return targets
}
