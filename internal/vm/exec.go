package vm

import (
	"kivati/internal/hw"
	"kivati/internal/isa"
	"kivati/internal/kernel"
	"kivati/internal/userlib"
)

// access records one committed memory access of an instruction, for the
// post-commit watchpoint check.
type access struct {
	addr uint32
	sz   uint8
	typ  hw.AccessType
}

// inBounds reports whether [addr, addr+sz) lies inside data memory.
func (m *Machine) inBounds(addr uint32, sz uint8) bool {
	return int(addr)+int(sz) <= len(m.Mem)
}

// rec records one memory access of the instruction core c is executing into
// the core's fixed access buffer (no per-step slice or closure allocation).
// It bounds-checks the access, faulting the thread on a miss, and on
// before-access hardware delivers the trap that aborts the instruction
// (setting c.trapAborted). A false return means the access did not commit;
// the caller must bail out through accessFailed.
func (m *Machine) rec(c *Core, t *Thread, addr uint32, sz uint8, typ hw.AccessType) bool {
	if !m.inBounds(addr, sz) {
		m.fault(t, "memory access out of bounds: %#x", addr)
		return false
	}
	if m.K.Cfg.TrapBefore {
		// Before-access hardware (Table 1: SPARC-class): the trap
		// fires before the access commits, aborting the instruction
		// with the PC still on it. No undo is ever needed.
		if idx := c.WP.Match(t.ID, addr, sz, typ); idx >= 0 {
			c.trapAborted = true
			m.adoptCanon(c)
			m.checkEpochWaiters()
			m.K.HandleTrapBefore(t.ID, t.PC, kernel.Access{Addr: addr, Size: sz, Type: typ}, idx)
			return false
		}
	}
	c.accs[c.nacc] = access{addr, sz, typ}
	c.nacc++
	return true
}

// accessFailed is the single exit path for an instruction whose memory
// access did not commit: either a before-access trap aborted it (charge the
// trap, keep the PC on the instruction for re-execution) or the bounds
// check faulted the thread (nothing more to charge). Keeping the
// post-failure semantics here — instead of duplicated after every rec call
// site — is what guarantees before-access-trap handling cannot drift
// between instruction forms.
func (m *Machine) accessFailed(c *Core, t *Thread, cost uint64) {
	if c.trapAborted {
		m.finishAbort(c, t, cost)
		return
	}
	m.curCore = nil
}

// alu evaluates a two-operand ALU op. ok is false on division by zero, the
// one ALU condition that faults.
func alu(op isa.Op, a, b int64) (v int64, ok bool) {
	switch op {
	case isa.OpADD:
		v = a + b
	case isa.OpSUB:
		v = a - b
	case isa.OpMUL:
		v = a * b
	case isa.OpDIV:
		if b == 0 {
			return 0, false
		}
		v = a / b
	case isa.OpMOD:
		if b == 0 {
			return 0, false
		}
		v = a % b
	case isa.OpAND:
		v = a & b
	case isa.OpOR:
		v = a | b
	case isa.OpXOR:
		v = a ^ b
	case isa.OpSHL:
		v = a << (uint64(b) & 63)
	case isa.OpSHR:
		v = int64(uint64(a) >> (uint64(b) & 63))
	case isa.OpCEQ:
		v = b2i(a == b)
	case isa.OpCNE:
		v = b2i(a != b)
	case isa.OpCLT:
		v = b2i(a < b)
	case isa.OpCLE:
		v = b2i(a <= b)
	case isa.OpCGT:
		v = b2i(a > b)
	case isa.OpCGE:
		v = b2i(a >= b)
	}
	return v, true
}

// step executes one instruction of the core's current thread, charges its
// cost, and delivers a watchpoint trap if a committed access matches the
// core's debug registers (x86 trap-after semantics).
func (m *Machine) step(c *Core) {
	// A legacy step advances the thread outside the fast path's view, so any
	// open block decision no longer describes the instructions at the
	// thread's PC: drop it (the stamp alone cannot catch this — the register
	// file may be unchanged while the PC moved).
	c.fastLeft = 0
	c.fastMerge = 0
	t := c.Cur
	in, ok := m.DecodeAt(t.PC)
	if !ok {
		t.LastInstr = t.PC
		m.fault(t, "invalid instruction")
		return
	}
	t.LastInstr = t.PC
	m.Stats.Instructions++
	m.curCore = c
	cost := m.cfg.Costs.Instr

	c.nacc = 0
	c.trapAborted = false

	nextPC := t.PC + uint32(in.Len)
	r := &t.Regs
	op := in.Op

	switch {
	case op == isa.OpNOP:
	case op == isa.OpHLT:
		m.exitThread(t)
		m.curCore = nil
		c.BusyUntil = m.clock + cost
		return
	case op == isa.OpMOVQ || op == isa.OpMOVL:
		r[in.Rd] = in.Imm
	case op == isa.OpMOVR:
		r[in.Rd] = r[in.Ra]
	case op >= isa.OpADD && op <= isa.OpCGE:
		v, ok := alu(op, r[in.Ra], r[in.Rb])
		if !ok {
			m.fault(t, "division by zero")
			m.curCore = nil
			return
		}
		r[in.Rd] = v
	case op == isa.OpADDI:
		r[in.Rd] = r[in.Ra] + in.Imm
	case op >= isa.OpLD && op < isa.OpLD+4:
		if !m.rec(c, t, in.Addr, in.Sz, hw.Read) {
			m.accessFailed(c, t, cost)
			return
		}
		r[in.Rd] = signExtend(m.loadRaw(in.Addr, in.Sz), in.Sz)
	case op >= isa.OpST && op < isa.OpST+4:
		if !m.rec(c, t, in.Addr, in.Sz, hw.Write) {
			m.accessFailed(c, t, cost)
			return
		}
		m.storeRaw(in.Addr, in.Sz, uint64(r[in.Ra]))
	case op >= isa.OpLDR && op < isa.OpLDR+4:
		addr := uint32(r[in.Ra] + in.Imm)
		if !m.rec(c, t, addr, in.Sz, hw.Read) {
			m.accessFailed(c, t, cost)
			return
		}
		r[in.Rd] = signExtend(m.loadRaw(addr, in.Sz), in.Sz)
	case op >= isa.OpSTR && op < isa.OpSTR+4:
		addr := uint32(r[in.Ra] + in.Imm)
		if !m.rec(c, t, addr, in.Sz, hw.Write) {
			m.accessFailed(c, t, cost)
			return
		}
		m.storeRaw(addr, in.Sz, uint64(r[in.Rb]))
	case op == isa.OpPUSH:
		sp := uint32(r[isa.RegSP]) - 8
		if !m.rec(c, t, sp, 8, hw.Write) {
			m.accessFailed(c, t, cost)
			return
		}
		r[isa.RegSP] = int64(sp)
		m.storeRaw(sp, 8, uint64(r[in.Ra]))
	case op == isa.OpPOP:
		sp := uint32(r[isa.RegSP])
		if !m.rec(c, t, sp, 8, hw.Read) {
			m.accessFailed(c, t, cost)
			return
		}
		r[in.Rd] = int64(m.loadRaw(sp, 8))
		r[isa.RegSP] = int64(sp + 8)
	case op >= isa.OpPUSHM && op < isa.OpPUSHM+4:
		// Memory-to-stack move: read the source, write the stack.
		if !m.rec(c, t, in.Addr, in.Sz, hw.Read) {
			m.accessFailed(c, t, cost)
			return
		}
		v := signExtend(m.loadRaw(in.Addr, in.Sz), in.Sz)
		sp := uint32(r[isa.RegSP]) - 8
		if !m.rec(c, t, sp, 8, hw.Write) {
			m.accessFailed(c, t, cost)
			return
		}
		r[isa.RegSP] = int64(sp)
		m.storeRaw(sp, 8, uint64(v))
	case op == isa.OpJMP:
		nextPC = in.Addr
	case op == isa.OpJZ:
		if r[in.Ra] == 0 {
			nextPC = in.Addr
		}
	case op == isa.OpJNZ:
		if r[in.Ra] != 0 {
			nextPC = in.Addr
		}
	case op == isa.OpCALL:
		sp := uint32(r[isa.RegSP]) - 8
		if !m.rec(c, t, sp, 8, hw.Write) {
			m.accessFailed(c, t, cost)
			return
		}
		r[isa.RegSP] = int64(sp)
		m.storeRaw(sp, 8, uint64(nextPC))
		nextPC = in.Addr
		t.Depth++
	case op == isa.OpCALLM:
		// Indirect call: the target-PC read can hit a watchpoint — the
		// §3.3 call special case.
		if !m.rec(c, t, in.Addr, 8, hw.Read) {
			m.accessFailed(c, t, cost)
			return
		}
		target := uint32(m.loadRaw(in.Addr, 8))
		sp := uint32(r[isa.RegSP]) - 8
		if !m.rec(c, t, sp, 8, hw.Write) {
			m.accessFailed(c, t, cost)
			return
		}
		r[isa.RegSP] = int64(sp)
		m.storeRaw(sp, 8, uint64(nextPC))
		nextPC = target
		t.Depth++
	case op == isa.OpRET:
		sp := uint32(r[isa.RegSP])
		if !m.rec(c, t, sp, 8, hw.Read) {
			m.accessFailed(c, t, cost)
			return
		}
		nextPC = uint32(m.loadRaw(sp, 8))
		r[isa.RegSP] = int64(sp + 8)
		if t.Depth > 0 {
			t.Depth--
		}
	case op == isa.OpSYS:
		t.PC = nextPC
		cost += m.syscall(c, t, t.LastInstr, int(in.Imm))
		m.finish(c, t, cost, nil)
		return
	default:
		m.fault(t, "unimplemented opcode %v", op)
		m.curCore = nil
		return
	}

	t.PC = nextPC
	m.finish(c, t, cost, c.accs[:c.nacc])
}

// abortCost is charged when a before-access trap aborts an instruction.
func (m *Machine) finishAbort(c *Core, t *Thread, cost uint64) {
	if m.segRecording() {
		m.seg.Global = true
	}
	cost += m.cfg.Costs.Trap
	c.BusyUntil = m.clock + cost
	if t.State != stRunning && t.OnCore == c.ID {
		t.OnCore = -1
		c.Cur = nil
	}
	m.curCore = nil
}

// finish charges the instruction cost, checks the committed accesses
// against the core's watchpoint registers, and delivers at most one trap.
func (m *Machine) finish(c *Core, t *Thread, cost uint64, accs []access) {
	cost += m.cfg.Costs.AccessCheck * uint64(len(accs))
	if m.segRecording() {
		for _, a := range accs {
			m.segAccess(a.addr, a.sz, a.typ)
		}
	}
	for _, a := range accs {
		if idx := c.WP.Match(t.ID, a.addr, a.sz, a.typ); idx >= 0 {
			// Trap: a kernel entry. The core adopts the canonical
			// watchpoint state, then the kernel handles the trap
			// (possibly undoing the access and suspending the thread).
			cost += m.cfg.Costs.Trap
			m.adoptCanon(c)
			m.checkEpochWaiters()
			if m.segRecording() {
				// Trap handling mutates kernel state the access stream
				// does not describe; the segment conflicts with all.
				m.seg.Global = true
			}
			m.K.HandleTrap(t.ID, t.PC, kernel.Access{Addr: a.addr, Size: a.sz, Type: a.typ}, idx)
			break
		}
	}
	c.BusyUntil = m.clock + cost
	if t.State != stRunning && t.OnCore == c.ID {
		t.OnCore = -1
		c.Cur = nil
	}
	m.curCore = nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func signExtend(v uint64, sz uint8) int64 {
	switch sz {
	case 1:
		return int64(int8(v))
	case 2:
		return int64(int16(v))
	case 4:
		return int64(int32(v))
	}
	return int64(v)
}

// syscall dispatches a SYS instruction and returns its additional cost.
// sysPC is the PC of the SYS instruction (threads suspended in begin_atomic
// are rewound to it for retry).
func (m *Machine) syscall(c *Core, t *Thread, sysPC uint32, n int) uint64 {
	if m.segRecording() {
		// Every syscall touches kernel/scheduler state (locks, AR tables,
		// run queues) outside the recorded access stream: treat the whole
		// segment as conflicting with everything rather than modeling
		// per-syscall effects.
		m.seg.Global = true
	}
	enterKernel := func() {
		m.adoptCanon(c)
		m.checkEpochWaiters()
	}
	costs := m.cfg.Costs
	switch n {
	case isa.SysExit:
		m.exitThread(t)
		return costs.SyscallEnter

	case isa.SysBeginAtomic:
		m.Stats.Begins++
		arID := int(t.Regs[0])
		addr := uint32(t.Regs[1])
		size := uint8(t.Regs[2])
		watch := hw.AccessType(t.Regs[3])
		first := hw.AccessType(t.Regs[4])
		switch userlib.Begin(m.K, t.ID, sysPC, arID, addr, size, watch, first) {
		case userlib.EnterKernel:
			enterKernel()
			m.K.BeginAtomic(t.ID, sysPC, arID, addr, size, watch, first)
			return costs.SyscallEnter
		default:
			return costs.UserLibCheck
		}

	case isa.SysEndAtomic:
		m.Stats.Ends++
		arID := int(t.Regs[0])
		second := hw.AccessType(t.Regs[1])
		switch userlib.End(m.K, t.ID, arID, second) {
		case userlib.EnterKernel:
			enterKernel()
			m.K.EndAtomic(t.ID, arID, second)
			return costs.SyscallEnter
		default:
			return costs.UserLibCheck
		}

	case isa.SysClearAR:
		m.Stats.Clears++
		switch userlib.Clear(m.K, t.ID, t.Depth) {
		case userlib.EnterKernel:
			enterKernel()
			m.K.ClearAR(t.ID)
			return costs.SyscallEnter
		default:
			return costs.UserLibCheck
		}

	case isa.SysLock:
		m.Stats.OtherSyscalls++
		enterKernel()
		m.tracef("T%d lock(%#x)", t.ID, uint32(t.Regs[0]))
		m.K.Lock(t.ID, uint32(t.Regs[0]))
		return costs.SyscallEnter

	case isa.SysUnlock:
		m.Stats.OtherSyscalls++
		enterKernel()
		m.tracef("T%d unlock(%#x)", t.ID, uint32(t.Regs[0]))
		m.K.Unlock(t.ID, uint32(t.Regs[0]))
		return costs.SyscallEnter

	case isa.SysYield:
		m.Stats.OtherSyscalls++
		enterKernel()
		m.preempt(c)
		return costs.SyscallEnter

	case isa.SysSleep:
		m.Stats.OtherSyscalls++
		enterKernel()
		dur := uint64(t.Regs[0])
		if dur == 0 {
			dur = 1
		}
		m.Suspend(t.ID, kernel.BlockSleep)
		m.SetWakeAt(t.ID, m.clock+dur)
		return costs.SyscallEnter

	case isa.SysPrint:
		m.Stats.OtherSyscalls++
		m.Output = append(m.Output, t.Regs[0])
		return costs.SyscallEnter

	case isa.SysSpawn:
		m.Stats.OtherSyscalls++
		enterKernel()
		tid, err := m.startAt(uint32(t.Regs[0]), t.Regs[1])
		if err != nil {
			t.Regs[0] = -1
		} else {
			t.Regs[0] = int64(tid)
		}
		return costs.SyscallEnter

	case isa.SysRand:
		t.Regs[0] = int64(m.rng.Int63())
		return 2

	case isa.SysRecv:
		m.Stats.OtherSyscalls++
		enterKernel()
		if len(m.reqQueue) > 0 {
			t.Regs[0] = int64(m.reqQueue[0])
			m.reqQueue = m.reqQueue[1:]
		} else {
			m.reqWaiters = append(m.reqWaiters, t)
			m.Suspend(t.ID, kernel.BlockRecv)
		}
		return costs.SyscallEnter

	case isa.SysSend:
		m.Stats.OtherSyscalls++
		enterKernel()
		id := int(t.Regs[0])
		if at, ok := m.reqArrivals[id]; ok {
			m.Latencies = append(m.Latencies, m.clock-at)
			delete(m.reqArrivals, id)
		}
		return costs.SyscallEnter

	case isa.SysNanos:
		t.Regs[0] = int64(m.clock)
		return 2
	}
	m.fault(t, "unknown syscall %d", n)
	return costs.SyscallEnter
}
