package vm

import (
	"testing"

	"kivati/internal/compile"
	"kivati/internal/hw"
	"kivati/internal/isa"
	"kivati/internal/kernel"
)

// Hand-assembled binaries exercise the undo-engine paths the MiniC compiler
// never emits: the indirect-call (CALLM) special case, the PUSHM
// read-into-memory leak guard, and the RET boundary-table mismatch.

const (
	varX  = uint32(0x1000)
	fptr  = uint32(0x1008)
	outG  = uint32(0x1010)
	varY  = uint32(0x1018)
	spinN = 1500
)

// asmLocal emits a thread that arms AR id 1 on addr (watch/first as given),
// writes first, spins to keep the AR open, writes again, and ends.
func asmLocal(e *isa.Encoder, addr uint32, watch, first hw.AccessType) {
	e.Label("local")
	e.MovImm(0, 1)
	e.MovImm(1, int64(addr))
	e.MovImm(2, 8)
	e.MovImm(3, int64(watch))
	e.MovImm(4, int64(first))
	e.Sys(isa.SysBeginAtomic)
	e.MovImm(5, 77)
	e.Store(addr, 5, 8) // first local access (write)
	e.MovImm(6, spinN)
	e.Label("local_spin")
	e.AddImm(6, 6, -1)
	e.Jnz(6, "local_spin")
	e.MovImm(5, 88)
	e.Store(addr, 5, 8) // second local access (write)
	e.MovImm(0, 1)
	e.MovImm(1, int64(hw.Write))
	e.Sys(isa.SysEndAtomic)
	e.Sys(isa.SysExit)
}

func buildHandBinary(t *testing.T, build func(e *isa.Encoder)) *compile.Binary {
	t.Helper()
	e := isa.NewEncoder()
	exit := e.PC()
	e.Sys(isa.SysExit)
	build(e)
	code, err := e.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	funcs := map[string]uint32{}
	var entries []uint32
	for _, name := range []string{"local", "remote", "callee"} {
		if pc, ok := e.LabelPC(name); ok {
			funcs[name] = pc
			entries = append(entries, pc)
		}
	}
	bt, err := isa.Preprocess(code, entries)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	return &compile.Binary{
		Code:        code,
		Funcs:       funcs,
		FuncEntries: entries,
		ExitStub:    exit,
		Globals:     map[string]uint32{"X": varX, "FPTR": fptr, "OUT": outG},
		InitMem:     map[uint32]int64{},
		Boundary:    bt,
		SyncVars:    map[string]bool{},
	}
}

func runHand(t *testing.T, bin *compile.Binary, seed int64) (*Machine, *Result) {
	t.Helper()
	k := kernel.New(kernel.Config{
		Mode:           kernel.Prevention,
		Opt:            kernel.OptBase,
		NumWatchpoints: 4,
		TimeoutTicks:   50_000,
	}, nil, nil, nil)
	m, err := New(bin, k, Config{Cores: 2, Seed: seed, MaxTicks: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start("local", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start("remote", 0); err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	for _, f := range res.Faults {
		t.Errorf("fault: %s", f)
	}
	return m, res
}

// TestCALLMSpecialCase: an indirect call whose function-pointer read traps.
// The trap PC is the callee's entry; the kernel must recover the call site
// from the return address on the stack (§3.3), undo the push, and suspend.
func TestCALLMSpecialCase(t *testing.T) {
	bin := buildHandBinary(t, func(e *isa.Encoder) {
		asmLocal(e, fptr, hw.ReadWrite, hw.Write)

		e.Label("remote")
		e.MovImm(1, spinN)
		e.Label("remote_spin")
		e.AddImm(1, 1, -1)
		e.Jnz(1, "remote_spin")
		e.CallMem(fptr) // fptr read can trap the local AR's watchpoint
		e.MovImm(2, 1)
		e.Store(outG, 2, 8) // marker: returned from the call
		e.Sys(isa.SysExit)

		e.Label("callee")
		e.MovImm(3, 5)
		e.Ret()
	})
	// FPTR initially points at callee; the local thread overwrites it with
	// 77 then 88 — make those valid targets too... simpler: point FPTR at
	// callee and make the local writes store the callee PC (rewritten
	// below), so re-execution lands somewhere valid.
	calleePC := int64(bin.Funcs["callee"])
	bin.InitMem[fptr] = calleePC
	// Patch the two MOVL r5/r6 immediates (77/88) to the callee PC so the
	// re-executed CALLM reads a valid target.
	patchImm(t, bin.Code, 77, calleePC)
	patchImm(t, bin.Code, 88, calleePC)

	m, res := runHand(t, bin, 7)
	if res.Reason != "completed" {
		t.Fatalf("reason %q stats %+v", res.Reason, *res.Stats)
	}
	if got := int64(m.loadRaw(outG, 8)); got != 1 {
		t.Errorf("remote never returned from the indirect call: OUT=%d", got)
	}
	if res.Stats.Traps == 0 {
		t.Fatal("no traps: the CALLM read never hit the watchpoint (timing?)")
	}
	if res.Stats.Suspensions == 0 {
		t.Error("remote CALLM was not suspended")
	}
	if res.Stats.BoundaryMismatch != 0 {
		t.Errorf("BoundaryMismatch = %d: call-site recovery failed", res.Stats.BoundaryMismatch)
	}
	// first=W, remote=R, second=W is the W-R-W non-serializable case.
	found := false
	for _, v := range res.Violations {
		if v.RemoteType == hw.Read && v.First == hw.Write && v.Second == hw.Write {
			found = true
		}
	}
	if !found {
		t.Errorf("no W-R-W violation recorded; got %v", res.Violations)
	}
}

// patchImm rewrites the first MOVL immediate equal to old in the code.
func patchImm(t *testing.T, code []byte, old, new int64) {
	t.Helper()
	for pc := uint32(0); int(pc) < len(code); {
		in, err := isa.Decode(code, pc)
		if err != nil {
			t.Fatal(err)
		}
		if in.Op == isa.OpMOVL && in.Imm == old {
			v := uint32(new)
			code[pc+2] = byte(v)
			code[pc+3] = byte(v >> 8)
			code[pc+4] = byte(v >> 16)
			code[pc+5] = byte(v >> 24)
			return
		}
		pc += uint32(in.Len)
	}
	t.Fatalf("immediate %d not found", old)
}

// TestPUSHMLeakGuard: a remote read whose destination is memory (the stack).
// The kernel cannot leave the leaked value readable, so it arms a spare
// watchpoint as a guard (§3.3), releases it when the remote re-executes.
func TestPUSHMLeakGuard(t *testing.T) {
	bin := buildHandBinary(t, func(e *isa.Encoder) {
		asmLocal(e, varX, hw.ReadWrite, hw.Write)

		e.Label("remote")
		e.MovImm(1, spinN)
		e.Label("remote_spin")
		e.AddImm(1, 1, -1)
		e.Jnz(1, "remote_spin")
		e.PushMem(varX, 8) // read X into the stack: the leak path
		e.Pop(2)
		e.Store(outG, 2, 8)
		e.Sys(isa.SysExit)
	})
	m, res := runHand(t, bin, 7)
	if res.Reason != "completed" {
		t.Fatalf("reason %q stats %+v", res.Reason, *res.Stats)
	}
	if res.Stats.Traps == 0 {
		t.Fatal("no traps: PUSHM read never hit the watchpoint")
	}
	if res.Stats.GuardsArmed == 0 {
		t.Error("no leak guard armed for the PUSHM destination")
	}
	// After the local AR completes the remote re-executes: OUT must hold
	// the final value of X (the local thread's second write).
	if got := int64(m.loadRaw(outG, 8)); got != 88 {
		t.Errorf("OUT = %d, want 88 (re-executed read must see the post-AR value)", got)
	}
	// All watchpoints must be free at the end (guards released).
	for i, wp := range m.K.Canon.WPs {
		if wp.Armed && !m.K.Meta[i].Stale {
			t.Errorf("watchpoint %d still armed at exit: %+v", i, wp)
		}
	}
}

// TestRETBoundaryMismatch: a RET whose return-address read traps lands on a
// PC whose boundary-table predecessor is the CALL instruction, not the RET.
// The kernel detects the mismatch and refuses the undo (logging the access
// as unreorderable) rather than corrupting state.
func TestRETBoundaryMismatch(t *testing.T) {
	// The remote thread CALLs callee; the local thread watches the stack
	// slot where remote's return address lives. Remote thread index is 1,
	// its SP starts at StackTop-8 (exit stub), the CALL pushes at -16.
	retSlot := StackTopFor(1) - 16
	bin := buildHandBinary(t, func(e *isa.Encoder) {
		asmLocal(e, retSlot, hw.ReadWrite, hw.Write)

		e.Label("remote")
		e.MovImm(1, spinN/2)
		e.Label("remote_spin")
		e.AddImm(1, 1, -1)
		e.Jnz(1, "remote_spin")
		e.Call("callee")
		e.MovImm(2, 1)
		e.Store(outG, 2, 8)
		e.Sys(isa.SysExit)

		e.Label("callee")
		e.MovImm(3, spinN)
		e.Label("callee_spin")
		e.AddImm(3, 3, -1)
		e.Jnz(3, "callee_spin")
		e.Ret() // reads the watched return-address slot
	})
	m, res := runHand(t, bin, 7)
	if res.Reason != "completed" {
		t.Fatalf("reason %q stats %+v", res.Reason, *res.Stats)
	}
	if got := int64(m.loadRaw(outG, 8)); got != 1 {
		t.Errorf("remote never completed: OUT=%d", got)
	}
	// Depending on timing either the CALL's push (write) traps — undone
	// via the function-entry special case — or the RET's read traps and
	// must be refused via the boundary mismatch. Force at least one trap.
	if res.Stats.Traps == 0 {
		t.Fatal("no traps at all; timing broke the scenario")
	}
	if res.Stats.BoundaryMismatch == 0 && res.Stats.Suspensions == 0 {
		t.Error("neither a refused undo nor a suspension occurred")
	}
}
