package vm

import (
	"container/heap"
	"encoding/binary"

	"kivati/internal/isa"
	"kivati/internal/kernel"
)

// This file implements kernel.Machine: the hardware/OS surface the Kivati
// kernel component drives.

// Now returns the virtual clock.
func (m *Machine) Now() uint64 { return m.clock }

// NumCores returns the core count.
func (m *Machine) NumCores() int { return len(m.cores) }

// Suspend blocks a thread. If it is currently running, its core is
// released.
func (m *Machine) Suspend(tid int, kind kernel.BlockKind) {
	t := m.threads[tid]
	if t.State == stDone {
		return
	}
	if t.State == stRunnable {
		// Remove from the run queue.
		for i, q := range m.runq {
			if q == t {
				m.runq = append(m.runq[:i], m.runq[i+1:]...)
				break
			}
		}
	}
	if t.OnCore >= 0 {
		m.cores[t.OnCore].Cur = nil
		t.OnCore = -1
	}
	if t.State == stBlocked && (t.Block == kernel.BlockEpoch || t.Block == kernel.BlockPause) {
		m.epochBlocked--
	}
	t.State = stBlocked
	t.Block = kind
	m.tracef("suspend T%d kind=%d pc=%#x", tid, kind, t.PC)
	if kind == kernel.BlockEpoch || kind == kernel.BlockPause {
		m.epochWaiters = true
		m.epochBlocked++
	}
}

// Resume makes a blocked thread runnable.
func (m *Machine) Resume(tid int) {
	t := m.threads[tid]
	if t.State != stBlocked {
		return
	}
	m.tracef("resume T%d pc=%#x", tid, t.PC)
	if t.Block == kernel.BlockEpoch || t.Block == kernel.BlockPause {
		m.epochBlocked--
	}
	t.State = stRunnable
	t.Block = kernel.BlockNone
	t.WakeAt = 0
	t.EpochTarget = 0
	m.runq = append(m.runq, t)
}

// SetWakeAt arms a time-based wake condition for BlockPause/BlockSleep.
// The pending wake is pure data (evWake) so snapshots can capture it.
func (m *Machine) SetWakeAt(tid int, tick uint64) {
	t := m.threads[tid]
	t.WakeAt = tick
	m.pushEvent(event{tick: tick, kind: evWake, a: uint64(tid)})
}

// SetEpochTarget arms an epoch-based wake condition for BlockEpoch.
func (m *Machine) SetEpochTarget(tid int, epoch uint64) {
	m.threads[tid].EpochTarget = epoch
	m.epochWaiters = true
}

// tryWake wakes an epoch/pause-blocked thread if all its conditions hold.
// Just before it resumes — the moment it enters its atomic region — the
// kernel re-records the rollback values for its ARs, closing the window in
// which a not-yet-propagated core stored to the variable untrapped.
func (m *Machine) tryWake(t *Thread) {
	if t.State != stBlocked {
		return
	}
	if t.WakeAt > m.clock {
		return
	}
	if t.EpochTarget > 0 && m.minCoreEpoch() < t.EpochTarget {
		return
	}
	if t.Block == kernel.BlockEpoch || t.Block == kernel.BlockPause {
		m.K.RecaptureSaved(t.ID)
	}
	m.Resume(t.ID)
}

func (m *Machine) minCoreEpoch() uint64 {
	min := ^uint64(0)
	for _, c := range m.cores {
		if c.WP.Epoch < min {
			min = c.WP.Epoch
		}
	}
	return min
}

// checkEpochWaiters wakes every epoch/pause-blocked thread whose conditions
// now hold. The blocked-thread count short-circuits the scan — kernel
// entries call this on every syscall, trap and timer interrupt, and in runs
// with no suspensions the full-table walk was pure overhead.
func (m *Machine) checkEpochWaiters() {
	if m.epochBlocked == 0 {
		m.epochWaiters = false
		return
	}
	any := false
	for _, t := range m.threads {
		if t.State == stBlocked && (t.Block == kernel.BlockEpoch || t.Block == kernel.BlockPause) {
			m.tryWake(t)
			if t.State == stBlocked {
				any = true
			}
		}
	}
	m.epochWaiters = any
}

// ThreadDepth returns the thread's call depth.
func (m *Machine) ThreadDepth(tid int) int { return m.threads[tid].Depth }

// PC returns the thread's program counter.
func (m *Machine) PC(tid int) uint32 { return m.threads[tid].PC }

// SetPC sets the thread's program counter (used to rewind over an undone
// access or to retry a blocked begin_atomic).
func (m *Machine) SetPC(tid int, pc uint32) { m.threads[tid].PC = pc }

// Reg reads a register.
func (m *Machine) Reg(tid int, r int) int64 { return m.threads[tid].Regs[r] }

// SetReg writes a register.
func (m *Machine) SetReg(tid int, r int, v int64) { m.threads[tid].Regs[r] = v }

// LastInstrPC returns the PC of the thread's most recently executed
// instruction.
func (m *Machine) LastInstrPC(tid int) uint32 { return m.threads[tid].LastInstr }

// Load reads memory (kernel access: no watchpoint check).
func (m *Machine) Load(addr uint32, sz uint8) uint64 { return m.loadRaw(addr, sz) }

// Store writes memory (kernel access: no watchpoint check).
func (m *Machine) Store(addr uint32, sz uint8, v uint64) { m.storeRaw(addr, sz, v) }

// Boundary returns the binary's instruction-boundary table.
func (m *Machine) Boundary() *isa.BoundaryTable { return m.Bin.Boundary }

// DecodeAt returns the decoded instruction at pc.
func (m *Machine) DecodeAt(pc uint32) (isa.Instr, bool) {
	if int(pc) >= len(m.decoded) || m.decoded[pc].Len == 0 {
		return isa.Instr{}, false
	}
	return m.decoded[pc], true
}

// pushEvent enqueues a timer event, stamping its tie-break sequence.
func (m *Machine) pushEvent(ev event) {
	m.eventSeq++
	ev.seq = m.eventSeq
	heap.Push(&m.events, ev)
}

// After schedules fn at Now()+ticks. Closure events cannot be captured by
// a Snapshot; kernel-originated timers use the typed AfterTimeout instead.
func (m *Machine) After(ticks uint64, fn func()) {
	m.pushEvent(event{tick: m.clock + ticks, kind: evFn, fn: fn})
}

// AfterTimeout schedules a watchpoint suspension-timeout: at Now()+ticks
// the kernel's TimeoutWP(wpIdx, gen) runs. Stored as data so pending
// timeouts snapshot and restore.
func (m *Machine) AfterTimeout(ticks uint64, wpIdx int, gen uint64) {
	m.pushEvent(event{tick: m.clock + ticks, kind: evWPTimeout, a: uint64(wpIdx), b: gen})
}

// EpochChanged: the canonical watchpoint state changed. The executing core
// is in the kernel and adopts immediately; the rest adopt on their next
// kernel entry or when idle (the coresBehind flag arms the Run loop's
// batched idle-adoption scan).
func (m *Machine) EpochChanged() {
	m.coresBehind = true
	if m.curCore != nil {
		m.adoptCanon(m.curCore)
	}
	if m.epochWaiters {
		m.checkEpochWaiters()
	}
}

// raw little-endian memory access; out-of-bounds reads return 0 and writes
// are dropped (the executing path bounds-checks and faults the thread
// first). The power-of-two sizes go through single word loads/stores; the
// byte loop survives only for irregular sizes.
func (m *Machine) loadRaw(addr uint32, sz uint8) uint64 {
	if int(addr)+int(sz) > len(m.Mem) {
		return 0
	}
	switch sz {
	case 8:
		return binary.LittleEndian.Uint64(m.Mem[addr:])
	case 4:
		return uint64(binary.LittleEndian.Uint32(m.Mem[addr:]))
	case 2:
		return uint64(binary.LittleEndian.Uint16(m.Mem[addr:]))
	case 1:
		return uint64(m.Mem[addr])
	}
	var v uint64
	for i := uint8(0); i < sz; i++ {
		v |= uint64(m.Mem[addr+uint32(i)]) << (8 * i)
	}
	return v
}

func (m *Machine) storeRaw(addr uint32, sz uint8, v uint64) {
	if int(addr)+int(sz) > len(m.Mem) {
		return
	}
	if m.memTrack {
		// A store spans at most two pages (sz <= 8 << pageShift).
		m.pageDirty[addr>>pageShift] = true
		m.pageDirty[(addr+uint32(sz)-1)>>pageShift] = true
	}
	switch sz {
	case 8:
		binary.LittleEndian.PutUint64(m.Mem[addr:], v)
	case 4:
		binary.LittleEndian.PutUint32(m.Mem[addr:], uint32(v))
	case 2:
		binary.LittleEndian.PutUint16(m.Mem[addr:], uint16(v))
	case 1:
		m.Mem[addr] = byte(v)
	default:
		for i := uint8(0); i < sz; i++ {
			m.Mem[addr+uint32(i)] = byte(v >> (8 * i))
		}
	}
}
