package vm

import "testing"

// epochSrc is single-threaded on purpose: with two cores configured, the
// second core never runs a thread, so the only way its watchpoint replica
// can follow the canonical state is the Run loop's batched idle-core
// adoption scan. If that scan broke, the first begin_atomic would deadlock
// waiting for the idle core's epoch (waitForEpoch blocks on minCoreEpoch).
const epochSrc = `
int shared;
void main() {
    int i;
    i = 0;
    while (i < 8) {
        shared = shared + 1;
        i = i + 1;
    }
    print(shared);
}
`

// TestIdleCoreAdoptsEpoch exercises the coresBehind-gated adoption scan:
// every canonical epoch advance must eventually reach cores that never
// enter the kernel on their own, and the scan flag must settle once they
// have caught up.
func TestIdleCoreAdoptsEpoch(t *testing.T) {
	o := defaultRunOpts()
	m, res := run(t, epochSrc, o)
	if res.Reason != "completed" {
		t.Fatalf("reason = %q, stats = %+v", res.Reason, *res.Stats)
	}
	if res.Stats.MonitoredARs == 0 {
		t.Fatal("no atomic regions were monitored; the test exercises nothing")
	}
	if m.K.Canon.Epoch == 0 {
		t.Fatal("canonical epoch never advanced; no watchpoint churn happened")
	}
	for i, c := range m.cores {
		if c.WP.Epoch != m.K.Canon.Epoch {
			t.Errorf("core %d epoch = %d, canonical = %d: idle-core adoption scan missed it",
				i, c.WP.Epoch, m.K.Canon.Epoch)
		}
	}
	if m.coresBehind {
		t.Error("coresBehind still set after every core caught up")
	}
}
