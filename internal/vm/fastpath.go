package vm

import (
	"kivati/internal/hw"
	"kivati/internal/isa"
)

// This file implements the tiered-execution fast path: basic-block
// superstep dispatch over the pre-decoded instruction stream.
//
// The paper's performance argument (§5) is that the non-AR common case —
// no watchpoint armed anywhere — must be nearly free. The legacy Run loop
// pays full per-instruction freight for that case: a scheduler visit, a
// timer comparison, an event-heap peek and a clock-advance computation per
// retired instruction. The superstep collapses all of it: when no kernel
// activity is due and no scheduling decision can arise, the machine
// computes the largest window [clock, bound) in which the legacy loop
// provably does nothing but retire straight-line instructions, executes
// the whole window in a tight lockstep loop, and charges cost in bulk.
//
// Armed watchpoints do not end the window. At every basic-block edge the
// dispatcher compares the block's static address footprint (compile-time
// table, evaluated against the thread's live SP/FP) with the core's armed
// registers: a provably disjoint block retires unchecked exactly as in the
// vanilla case, and an overlapping or unbounded block retires in *checked*
// mode, where each access is pre-checked against the register file before
// committing — an access that would trap bails out pre-commit and replays
// on the legacy path, which records it and delivers the trap. Everything
// observable — event delivery, timer interrupts, scheduling decisions,
// traps, rng consumption, per-thread instruction ticks — happens at
// exactly the clock values the legacy loop would have used, so execution
// is bit-identical (the differential gate in fastpath_test.go holds the
// interpreter to that).

// buildBlockLen precomputes, for every instruction start, how many
// instructions the fast path may retire beginning there without leaving
// straight-line code: 0 for pcs the fast path must not enter (SYS and HLT
// need the kernel; non-starts are decode faults), 1 for control flow
// (the block ends but the instruction itself is fast-executable), and
// 1 + blockLen[next] otherwise. starts is the list of instruction-start
// pcs in ascending order; the walk is in reverse so each entry is O(1).
// compile.Footprints runs the same reverse walk, so footprint entry pc
// covers (a superset of) the blockLen[pc] instructions dispatched from pc.
func (m *Machine) buildBlockLen(starts []uint32) {
	m.blockLen = make([]uint16, len(m.decoded))
	m.execKind = make([]uint8, len(m.decoded))
	const maxLen = ^uint16(0)
	for i := len(starts) - 1; i >= 0; i-- {
		pc := starts[i]
		in := m.decoded[pc]
		m.execKind[pc] = execKindOf(in.Op)
		switch {
		case in.Op.IsKernelBoundary():
			// The legacy path must execute it.
		case in.Op.IsControlFlow():
			m.blockLen[pc] = 1
		default:
			n := uint16(1)
			if next := pc + uint32(in.Len); int(next) < len(m.blockLen) {
				if bl := m.blockLen[next]; bl < maxLen {
					n += bl
				} else {
					n = maxLen
				}
			}
			m.blockLen[pc] = n
		}
	}
}

// Fast-interpreter dispatch kinds: one dense small integer per instruction
// form, precomputed at decode time, so execFast dispatches through a jump
// table instead of re-classifying the opcode's ranges on every retirement.
// ekNone marks everything the fast path must refuse — kernel boundaries,
// non-starts, and ops only the legacy interpreter (which faults them)
// handles.
const (
	ekNone uint8 = iota
	ekNOP
	ekMOVI
	ekMOVR
	ekALU
	ekADDI
	ekLD
	ekST
	ekLDR
	ekSTR
	ekPUSH
	ekPOP
	ekPUSHM
	ekJMP
	ekJZ
	ekJNZ
	ekCALL
	ekCALLM
	ekRET
)

func execKindOf(op isa.Op) uint8 {
	switch {
	case op == isa.OpNOP:
		return ekNOP
	case op == isa.OpMOVQ || op == isa.OpMOVL:
		return ekMOVI
	case op == isa.OpMOVR:
		return ekMOVR
	case op >= isa.OpADD && op <= isa.OpCGE:
		return ekALU
	case op == isa.OpADDI:
		return ekADDI
	case op >= isa.OpLD && op < isa.OpLD+4:
		return ekLD
	case op >= isa.OpST && op < isa.OpST+4:
		return ekST
	case op >= isa.OpLDR && op < isa.OpLDR+4:
		return ekLDR
	case op >= isa.OpSTR && op < isa.OpSTR+4:
		return ekSTR
	case op == isa.OpPUSH:
		return ekPUSH
	case op == isa.OpPOP:
		return ekPOP
	case op >= isa.OpPUSHM && op < isa.OpPUSHM+4:
		return ekPUSHM
	case op == isa.OpJMP:
		return ekJMP
	case op == isa.OpJZ:
		return ekJZ
	case op == isa.OpJNZ:
		return ekJNZ
	case op == isa.OpCALL:
		return ekCALL
	case op == isa.OpCALLM:
		return ekCALLM
	case op == isa.OpRET:
		return ekRET
	}
	return ekNone
}

// trySuperstep retires one superstep window if the machine state admits
// one, otherwise returns leaving all state untouched so the legacy loop
// handles the current clock. Demotion conditions (any one suffices):
//
//   - an event is due at the current clock;
//   - a running core has a timer interrupt due;
//   - a free core exists while the run queue is non-empty (a scheduling
//     decision, and under the built-in scheduler an rng consultation, is
//     due at this clock).
//
// Armed watchpoints and epoch/pause waiters no longer demote the window.
// Watchpoint state is frozen inside a window — register files change only
// on kernel entries (syscalls, traps, timer interrupts), none of which
// occur mid-window — so block-edge footprint decisions (see blockChecked)
// hold for the whole block, and the per-tick epoch-waiter checks the
// legacy loop would run are provably no-ops: minCoreEpoch cannot change
// mid-window, and time-based wakes arrive via events, which bound the
// window.
//
// The window bound is the earliest clock at which the legacy loop would do
// anything besides retire an instruction: a running core's next timer
// interrupt, a busy core's wake-up (it reschedules or resumes then), a
// free core's next idle timer reset, the next event, and MaxTicks.
func (m *Machine) trySuperstep() {
	if len(m.events) > 0 && m.events[0].tick <= m.clock {
		m.demotions.TimerEdge++
		return
	}
	t0 := m.clock
	bound := ^uint64(0)
	active := m.fastCores[:0]
	for _, c := range m.cores {
		if c.BusyUntil > t0 {
			// Mid-cost (or mid-instruction) core: the legacy loop skips
			// it entirely until BusyUntil, where it reschedules, resumes
			// or has its timer checked — end the window there.
			if c.BusyUntil < bound {
				bound = c.BusyUntil
			}
			continue
		}
		if c.Cur != nil {
			if t0 >= c.NextTimer {
				m.demotions.TimerEdge++
				return
			}
			if c.NextTimer < bound {
				bound = c.NextTimer
			}
			// A block decision left open by a previous window is kept only
			// when its stamp proves it still valid (same thread, register
			// file unmutated); otherwise the first block re-decides and any
			// leftover merge budget is dropped.
			m.resumeOrResetFast(c)
			active = append(active, c)
			continue
		}
		// Free core. If anything is runnable it schedules right now.
		if len(m.runq) > 0 {
			return
		}
		nt := c.NextTimer
		if t0 >= nt {
			// The legacy loop would reset the idle core's timer at t0
			// (no interrupt is delivered with nothing running); mirror
			// it so the post-window timer phase is identical.
			nt = t0 + m.cfg.Costs.Quantum
			c.NextTimer = nt
		}
		if nt < bound {
			bound = nt
		}
	}
	m.fastCores = active
	if len(active) == 0 {
		return
	}
	if len(m.events) > 0 && m.events[0].tick < bound {
		bound = m.events[0].tick
	}
	if m.cfg.MaxTicks > 0 && m.cfg.MaxTicks < bound {
		bound = m.cfg.MaxTicks
	}
	if bound <= t0 {
		return
	}

	// Single-core machines take the continuation executor, which can chain
	// several windows (and their timer-interrupt decision points) without
	// returning to the Run loop.
	if len(active) == 1 && len(m.cores) == 1 {
		m.superstepSingle(active[0], t0, bound)
		return
	}

	// Lockstep rounds: in the legacy loop every aligned running core
	// retires one instruction per Costs.Instr ticks, in core order within
	// the tick. Round k therefore executes at clock t0 + k*Instr; n is the
	// number of whole rounds that fit strictly before the bound.
	instr := m.cfg.Costs.Instr
	n := (bound - t0 + instr - 1) / instr
	if n == 0 {
		return
	}

	var rounds uint64
	stopIdx := 0
	stopped := false
	if len(active) == 1 {
		rounds = m.runFastSingle(active[0], n)
		stopped = rounds < n
	} else {
	loop:
		for k := uint64(0); k < n; k++ {
			for i, c := range active {
				if !m.stepFastBlock(c) {
					// Core i cannot proceed (kernel boundary, faulting
					// instruction, or a checked access that would trap):
					// in the legacy loop its round-k instruction commits
					// at t0+k*instr *after* the round-k instructions of
					// cores ordered before it, and *before* those of
					// cores ordered after it. So cores < i keep round k;
					// cores >= i replay it (and everything later) on the
					// legacy path.
					rounds, stopIdx, stopped = k, i, true
					break loop
				}
			}
		}
		if !stopped {
			rounds = n
		}
	}

	var total uint64
	for i, c := range active {
		cnt := rounds
		if stopped && i < stopIdx {
			cnt++
		}
		if cnt == 0 {
			continue
		}
		// Bulk cost charge: identical to cnt legacy steps at Instr each.
		c.BusyUntil = t0 + cnt*instr
		total += cnt
	}
	if total == 0 {
		return
	}
	m.Stats.Instructions += total
	m.fastInstrs += total
	m.fastWindows++
}

// fastMergeRun is the checked-block merge budget: after a fresh block-edge
// decision lands on checked, this many subsequent block edges in the same
// window inherit the decision instead of re-scanning the register file.
// Overlapping-footprint runs (tight loops over a watched array, call chains
// into watched frames) thus pay one decision per fastMergeRun+1 blocks.
// Inheriting checked is always sound — checked mode pre-checks every access
// exactly — so the only cost of a stale inheritance is per-access checks on
// a block that a fresh decision would have retired unchecked.
const fastMergeRun = 4

// stepFastBlock retires one instruction of core c's thread in the
// multi-core lockstep, re-deciding checked/unchecked execution whenever the
// core crosses a basic-block edge (fastLeft counts the instructions still
// covered by the current decision; trySuperstep resets it at window
// admission unless the decision's stamp proves it still valid).
func (m *Machine) stepFastBlock(c *Core) bool {
	t := c.Cur
	if c.fastLeft == 0 {
		pc := t.PC
		if int(pc) >= len(m.blockLen) || m.blockLen[pc] == 0 {
			return false
		}
		c.fastLeft = m.blockLen[pc]
		c.fastDecTID = t.ID
		c.fastDecMuts = c.WP.Muts()
		if c.fastMerge > 0 {
			c.fastMerge--
			c.fastChecked = true
			m.demotions.CheckedOverlap++
		} else {
			c.fastChecked = m.blockChecked(c, t, pc)
			if c.fastChecked {
				c.fastMerge = fastMergeRun
			}
		}
		if m.segRecording() {
			m.segBlockFootprint(t, pc)
		}
	}
	if !m.execFast(c, t, c.fastChecked) {
		c.fastLeft = 0
		c.fastMerge = 0
		return false
	}
	c.fastLeft--
	return true
}

// runFastSingle is the one-active-core window executor: it retires up to n
// instructions in blockLen-sized straight-line chunks, so both the "is
// this a kernel boundary" lookup and the checked/unchecked watchpoint
// decision are hoisted to block edges. The decision lives in the core's
// persistent fast fields (stamped for validity; see resumeOrResetFast), so
// a window that ends mid-block can hand its open decision to the next one.
// Returns the number of instructions retired.
func (m *Machine) runFastSingle(c *Core, n uint64) uint64 {
	t := c.Cur
	var done uint64
	for done < n {
		if c.fastLeft == 0 {
			pc := t.PC
			if int(pc) >= len(m.blockLen) || m.blockLen[pc] == 0 {
				return done
			}
			c.fastLeft = m.blockLen[pc]
			c.fastDecTID = t.ID
			c.fastDecMuts = c.WP.Muts()
			if c.fastMerge > 0 {
				c.fastMerge--
				c.fastChecked = true
				m.demotions.CheckedOverlap++
			} else {
				c.fastChecked = m.blockChecked(c, t, pc)
				if c.fastChecked {
					c.fastMerge = fastMergeRun
				}
			}
			if m.segRecording() {
				m.segBlockFootprint(t, pc)
			}
		}
		chunk := uint64(c.fastLeft)
		if chunk > n-done {
			chunk = n - done
		}
		for j := uint64(0); j < chunk; j++ {
			if !m.execFast(c, t, c.fastChecked) {
				c.fastLeft = 0
				c.fastMerge = 0
				return done + j
			}
		}
		c.fastLeft -= uint16(chunk)
		done += chunk
	}
	return done
}

// superstepSingle is the single-core window executor with same-pick
// continuation: after retiring a window, it handles the event that ended it
// — a timer interrupt at the window's own edge, or a syscall/HLT the fast
// path cannot execute — inline, replicating the legacy Run-loop sequence
// instruction for instruction (see the step-by-step correspondences below),
// and, when the core is left running, opens the next window in place
// instead of returning to the Run loop. With short quanta this collapses
// the per-decision fixed cost (loop-top scans, admission recompute, clock
// advance) into one tight loop, and when the policy re-picks the same
// thread under an unchanged register file the open block decision survives
// the boundary too. Anything that does not match the plain shapes below —
// an event due inside the sequence, MaxTicks, a stop request, a thread that
// blocks or exits, a faulting or would-trap instruction — returns to the
// Run loop at a state the legacy loop itself would have reached, so the
// loop finishes the moment exactly as before.
func (m *Machine) superstepSingle(c *Core, t0, bound uint64) {
	instr := m.cfg.Costs.Instr
	costs := &m.cfg.Costs
	for {
		n := (bound - t0 + instr - 1) / instr
		if n == 0 {
			return
		}
		done := m.runFastSingle(c, n)
		if done > 0 {
			c.BusyUntil = t0 + done*instr
			m.Stats.Instructions += done
			m.fastInstrs += done
			m.fastWindows++
		}
		if done == n {
			// Window retired to its bound. Continue only when the bound was
			// this core's own timer: deliver the interrupt inline. The legacy
			// sequence at clock T (window end) and T+TimerInt, in order:
			// TimerEdge demotion (trySuperstep's refusal), timer re-arm,
			// TimerInterrupts++, canonical-state adoption, epoch-waiter
			// check, preemption, interrupt cost, the idle-core adoption scan,
			// the flag-gated waiter check, and the scheduling decision.
			// Quantum > TimerInt guarantees the new timer is not already due.
			T := t0 + n*instr
			if bound != c.NextTimer || costs.Quantum <= costs.TimerInt ||
				(len(m.events) > 0 && m.events[0].tick <= T+costs.TimerInt) ||
				(m.cfg.MaxTicks > 0 && T+costs.TimerInt >= m.cfg.MaxTicks) {
				return
			}
			m.demotions.TimerEdge++
			m.clock = T
			c.NextTimer = T + costs.Quantum
			m.Stats.TimerInterrupts++
			m.adoptCanon(c)
			m.checkEpochWaiters()
			m.preempt(c)
			c.BusyUntil = T + costs.TimerInt
			m.clock = T + costs.TimerInt
			if m.coresBehind {
				if c.WP.Epoch != m.K.Canon.Epoch {
					m.adoptCanon(c)
				}
				m.coresBehind = false
			}
			if m.epochWaiters {
				m.checkEpochWaiters()
			}
			m.schedule(c)
			if c.Cur == nil {
				return
			}
		} else {
			// The window stopped early. When the blocker is a kernel
			// boundary (SYS or HLT) execute it inline; a faulting or
			// would-trap instruction instead replays through the Run loop,
			// whose retry re-runs the block machinery (and its demotion
			// accounting) that this path must not short-circuit.
			pc := c.Cur.PC
			if int(pc) < len(m.blockLen) && m.blockLen[pc] != 0 {
				return
			}
			in, ok := m.DecodeAt(pc)
			if !ok || (in.Op != isa.OpSYS && in.Op != isa.OpHLT) {
				return
			}
			if done > 0 {
				// Legacy: the clock advances to the partial window's end T
				// (no event lies at or before it — the window bound — and
				// MaxTicks is beyond it), then the loop top runs the
				// adoption scan (a busy core cannot idle-adopt: the flag
				// just recomputes) and the waiter check before the core
				// loop executes the boundary instruction. With done == 0
				// the loop top already ran at this clock; nothing repeats.
				m.clock = t0 + done*instr
				if m.coresBehind {
					m.coresBehind = c.WP.Epoch != m.K.Canon.Epoch
				}
				if m.epochWaiters {
					m.checkEpochWaiters()
				}
			}
			m.step(c)
			if c.Cur == nil || m.K.Log.StopRequested() {
				return
			}
			// The thread returned to userspace; the legacy loop advances to
			// the syscall's completion and takes the loop top there.
			bu := c.BusyUntil
			if (len(m.events) > 0 && m.events[0].tick <= bu) ||
				(m.cfg.MaxTicks > 0 && bu >= m.cfg.MaxTicks) {
				return
			}
			m.clock = bu
			if m.coresBehind {
				m.coresBehind = c.WP.Epoch != m.K.Canon.Epoch
			}
			if m.epochWaiters {
				m.checkEpochWaiters()
			}
			if m.clock >= c.NextTimer {
				// The syscall consumed the rest of the quantum (with short
				// exploration quanta, the common case): the timer interrupt
				// is due at its completion. Same inline sequence as the
				// window-edge interrupt above, at the current clock.
				if costs.Quantum <= costs.TimerInt {
					return
				}
				m.demotions.TimerEdge++
				c.NextTimer = m.clock + costs.Quantum
				m.Stats.TimerInterrupts++
				m.adoptCanon(c)
				m.checkEpochWaiters()
				m.preempt(c)
				c.BusyUntil = m.clock + costs.TimerInt
				bu = c.BusyUntil
				if (len(m.events) > 0 && m.events[0].tick <= bu) ||
					(m.cfg.MaxTicks > 0 && bu >= m.cfg.MaxTicks) {
					return
				}
				m.clock = bu
				if m.coresBehind {
					if c.WP.Epoch != m.K.Canon.Epoch {
						m.adoptCanon(c)
					}
					m.coresBehind = false
				}
				if m.epochWaiters {
					m.checkEpochWaiters()
				}
				m.schedule(c)
				if c.Cur == nil {
					return
				}
			}
		}
		m.resumeOrResetFast(c)
		t0 = m.clock
		bound = c.NextTimer
		if len(m.events) > 0 && m.events[0].tick < bound {
			bound = m.events[0].tick
		}
		if m.cfg.MaxTicks > 0 && m.cfg.MaxTicks < bound {
			bound = m.cfg.MaxTicks
		}
		if bound <= t0 {
			return
		}
	}
}

// blockChecked decides, at a basic-block edge, whether the straight-line
// run starting at pc must execute with per-access watchpoint checks on
// core c. False — the common case — means the block's static footprint is
// provably disjoint from every armed register that could trap thread t, so
// execFast may commit every access unchecked (Match would return -1 for
// all of them). The stack components of the footprint are offsets from the
// block's entry SP/FP, evaluated here against the thread's live registers;
// an interval that escapes the 32-bit address space is answered
// conservatively.
func (m *Machine) blockChecked(c *Core, t *Thread, pc uint32) bool {
	if c.WP.ArmedCount() == 0 {
		return false
	}
	// Thread-relevant armed summary, cached per (thread, register-file
	// mutation count): when every armed register is exempt for this thread
	// (LocalOf — optimization 3), nothing the block does can trap, whatever
	// its footprint. The cached window also prefilters the bounded case
	// below without rescanning the register file at every block edge.
	rel, rlo, rhi := m.relevantWindow(c, t.ID)
	if rel == 0 {
		return false
	}
	f := &m.fps[pc]
	if f.Unbounded {
		// An access the analysis could not bound, and at least one armed
		// register is not exempt: checked.
		m.demotions.Unbounded++
		return true
	}
	// Assemble the footprint's components — absolute plus the SP/FP
	// intervals evaluated against the live registers — and test them against
	// the register file in one scan. A register-relative interval that
	// leaves [0, 2^32) after evaluation is answered conservatively (the
	// block's accesses would wrap or fault; the checked path sorts it out
	// exactly).
	var ranges [3]hw.AddrRange
	n := 0
	if f.AbsHi > f.AbsLo {
		ranges[n] = hw.AddrRange{Lo: f.AbsLo, Hi: f.AbsHi}
		n++
	}
	for _, rr := range [2]struct {
		base   int64
		lo, hi int64
	}{
		{t.Regs[isa.RegSP], f.SPLo, f.SPHi},
		{t.Regs[isa.RegFP], f.FPLo, f.FPHi},
	} {
		if rr.hi <= rr.lo {
			continue
		}
		lo64 := int64(uint32(rr.base)) + rr.lo
		hi64 := int64(uint32(rr.base)) + rr.hi
		if lo64 < 0 || hi64 > int64(^uint32(0)) {
			m.demotions.ArmedOverlap++
			return true
		}
		ranges[n] = hw.AddrRange{Lo: uint32(lo64), Hi: uint32(hi64)}
		n++
	}
	// Window prefilter against the cached relevant window: a footprint
	// disjoint from it cannot hit any non-exempt register, so the common
	// disjoint case skips the per-register scan entirely.
	hit := false
	for i := 0; i < n; i++ {
		if ranges[i].Lo < rhi && rlo < ranges[i].Hi {
			hit = true
			break
		}
	}
	if !hit {
		return false
	}
	if c.WP.MayMatchRanges(t.ID, ranges[:n]) {
		m.demotions.ArmedOverlap++
		return true
	}
	return false
}

// wouldTrap is the checked-mode access pre-check: it reports whether the
// access would hit an armed register, in which case the instruction must
// bail out pre-commit and replay on the legacy path, which records the
// access and delivers the trap (before- or after-access, per the hardware
// model) with identical state at the identical clock.
func (m *Machine) wouldTrap(c *Core, t *Thread, addr uint32, sz uint8, typ hw.AccessType) bool {
	if c.WP.Match(t.ID, addr, sz, typ) >= 0 {
		m.demotions.WouldTrap++
		return true
	}
	return false
}

// execFast retires exactly one instruction of thread t on core c with no
// kernel interaction and no access recording. In unchecked mode the caller
// (blockChecked) has proven no access can hit an armed register; in
// checked mode every access is pre-checked with wouldTrap before anything
// commits — multi-access instructions (PUSHM, CALLM) check all their
// accesses first, so a bail-out never leaves a partial commit. It returns
// false, leaving all machine state untouched, when the instruction must
// execute on the legacy path instead: a kernel boundary (SYS, HLT), an
// undecodable pc, a faulting condition (division by zero, out-of-bounds
// access), or a checked access that would trap. Stop-before semantics make
// the fallback exact: the legacy step re-executes the instruction at the
// identical clock with identical state.
func (m *Machine) execFast(c *Core, t *Thread, checked bool) bool {
	pc := t.PC
	if int(pc) >= len(m.execKind) {
		return false
	}
	k := m.execKind[pc]
	if k == ekNone {
		return false
	}
	in := &m.decoded[pc]
	r := &t.Regs
	nextPC := pc + uint32(in.Len)

	switch k {
	case ekNOP:
	case ekMOVI:
		r[in.Rd] = in.Imm
	case ekMOVR:
		r[in.Rd] = r[in.Ra]
	case ekALU:
		v, ok := alu(in.Op, r[in.Ra], r[in.Rb])
		if !ok {
			return false // division by zero: fault on the legacy path
		}
		r[in.Rd] = v
	case ekADDI:
		r[in.Rd] = r[in.Ra] + in.Imm
	case ekLD:
		if !m.inBounds(in.Addr, in.Sz) {
			return false
		}
		if checked && m.wouldTrap(c, t, in.Addr, in.Sz, hw.Read) {
			return false
		}
		r[in.Rd] = signExtend(m.loadRaw(in.Addr, in.Sz), in.Sz)
	case ekST:
		if !m.inBounds(in.Addr, in.Sz) {
			return false
		}
		if checked && m.wouldTrap(c, t, in.Addr, in.Sz, hw.Write) {
			return false
		}
		m.storeRaw(in.Addr, in.Sz, uint64(r[in.Ra]))
	case ekLDR:
		addr := uint32(r[in.Ra] + in.Imm)
		if !m.inBounds(addr, in.Sz) {
			return false
		}
		if checked && m.wouldTrap(c, t, addr, in.Sz, hw.Read) {
			return false
		}
		r[in.Rd] = signExtend(m.loadRaw(addr, in.Sz), in.Sz)
	case ekSTR:
		addr := uint32(r[in.Ra] + in.Imm)
		if !m.inBounds(addr, in.Sz) {
			return false
		}
		if checked && m.wouldTrap(c, t, addr, in.Sz, hw.Write) {
			return false
		}
		m.storeRaw(addr, in.Sz, uint64(r[in.Rb]))
	case ekPUSH:
		sp := uint32(r[isa.RegSP]) - 8
		if !m.inBounds(sp, 8) {
			return false
		}
		if checked && m.wouldTrap(c, t, sp, 8, hw.Write) {
			return false
		}
		r[isa.RegSP] = int64(sp)
		m.storeRaw(sp, 8, uint64(r[in.Ra]))
	case ekPOP:
		sp := uint32(r[isa.RegSP])
		if !m.inBounds(sp, 8) {
			return false
		}
		if checked && m.wouldTrap(c, t, sp, 8, hw.Read) {
			return false
		}
		r[in.Rd] = int64(m.loadRaw(sp, 8))
		r[isa.RegSP] = int64(sp + 8)
	case ekPUSHM:
		if !m.inBounds(in.Addr, in.Sz) {
			return false
		}
		sp := uint32(r[isa.RegSP]) - 8
		if !m.inBounds(sp, 8) {
			return false
		}
		if checked && (m.wouldTrap(c, t, in.Addr, in.Sz, hw.Read) ||
			m.wouldTrap(c, t, sp, 8, hw.Write)) {
			return false
		}
		v := signExtend(m.loadRaw(in.Addr, in.Sz), in.Sz)
		r[isa.RegSP] = int64(sp)
		m.storeRaw(sp, 8, uint64(v))
	case ekJMP:
		nextPC = in.Addr
	case ekJZ:
		if r[in.Ra] == 0 {
			nextPC = in.Addr
		}
	case ekJNZ:
		if r[in.Ra] != 0 {
			nextPC = in.Addr
		}
	case ekCALL:
		sp := uint32(r[isa.RegSP]) - 8
		if !m.inBounds(sp, 8) {
			return false
		}
		if checked && m.wouldTrap(c, t, sp, 8, hw.Write) {
			return false
		}
		r[isa.RegSP] = int64(sp)
		m.storeRaw(sp, 8, uint64(nextPC))
		nextPC = in.Addr
		t.Depth++
	case ekCALLM:
		if !m.inBounds(in.Addr, 8) {
			return false
		}
		sp := uint32(r[isa.RegSP]) - 8
		if !m.inBounds(sp, 8) {
			return false
		}
		if checked && (m.wouldTrap(c, t, in.Addr, 8, hw.Read) ||
			m.wouldTrap(c, t, sp, 8, hw.Write)) {
			return false
		}
		target := uint32(m.loadRaw(in.Addr, 8))
		r[isa.RegSP] = int64(sp)
		m.storeRaw(sp, 8, uint64(nextPC))
		nextPC = target
		t.Depth++
	case ekRET:
		sp := uint32(r[isa.RegSP])
		if !m.inBounds(sp, 8) {
			return false
		}
		if checked && m.wouldTrap(c, t, sp, 8, hw.Read) {
			return false
		}
		nextPC = uint32(m.loadRaw(sp, 8))
		r[isa.RegSP] = int64(sp + 8)
		if t.Depth > 0 {
			t.Depth--
		}
	}

	t.LastInstr = pc
	t.PC = nextPC
	return true
}

// MemHash returns the FNV-1a hash of data memory, for differential
// comparison of final memory images across dispatch modes.
func (m *Machine) MemHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range m.Mem {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
