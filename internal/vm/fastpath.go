package vm

import (
	"kivati/internal/hw"
	"kivati/internal/isa"
)

// This file implements the tiered-execution fast path: basic-block
// superstep dispatch over the pre-decoded instruction stream.
//
// The paper's performance argument (§5) is that the non-AR common case —
// no watchpoint armed anywhere — must be nearly free. The legacy Run loop
// pays full per-instruction freight for that case: a scheduler visit, a
// timer comparison, an event-heap peek and a clock-advance computation per
// retired instruction. The superstep collapses all of it: when no kernel
// activity is due and no scheduling decision can arise, the machine
// computes the largest window [clock, bound) in which the legacy loop
// provably does nothing but retire straight-line instructions, executes
// the whole window in a tight lockstep loop, and charges cost in bulk.
//
// Armed watchpoints do not end the window. At every basic-block edge the
// dispatcher compares the block's static address footprint (compile-time
// table, evaluated against the thread's live SP/FP) with the core's armed
// registers: a provably disjoint block retires unchecked exactly as in the
// vanilla case, and an overlapping or unbounded block retires in *checked*
// mode, where each access is pre-checked against the register file before
// committing — an access that would trap bails out pre-commit and replays
// on the legacy path, which records it and delivers the trap. Everything
// observable — event delivery, timer interrupts, scheduling decisions,
// traps, rng consumption, per-thread instruction ticks — happens at
// exactly the clock values the legacy loop would have used, so execution
// is bit-identical (the differential gate in fastpath_test.go holds the
// interpreter to that).

// buildBlockLen precomputes, for every instruction start, how many
// instructions the fast path may retire beginning there without leaving
// straight-line code: 0 for pcs the fast path must not enter (SYS and HLT
// need the kernel; non-starts are decode faults), 1 for control flow
// (the block ends but the instruction itself is fast-executable), and
// 1 + blockLen[next] otherwise. starts is the list of instruction-start
// pcs in ascending order; the walk is in reverse so each entry is O(1).
// compile.Footprints runs the same reverse walk, so footprint entry pc
// covers (a superset of) the blockLen[pc] instructions dispatched from pc.
func (m *Machine) buildBlockLen(starts []uint32) {
	m.blockLen = make([]uint16, len(m.decoded))
	const maxLen = ^uint16(0)
	for i := len(starts) - 1; i >= 0; i-- {
		pc := starts[i]
		in := m.decoded[pc]
		switch {
		case in.Op.IsKernelBoundary():
			// The legacy path must execute it.
		case in.Op.IsControlFlow():
			m.blockLen[pc] = 1
		default:
			n := uint16(1)
			if next := pc + uint32(in.Len); int(next) < len(m.blockLen) {
				if bl := m.blockLen[next]; bl < maxLen {
					n += bl
				} else {
					n = maxLen
				}
			}
			m.blockLen[pc] = n
		}
	}
}

// trySuperstep retires one superstep window if the machine state admits
// one, otherwise returns leaving all state untouched so the legacy loop
// handles the current clock. Demotion conditions (any one suffices):
//
//   - an event is due at the current clock;
//   - a running core has a timer interrupt due;
//   - a free core exists while the run queue is non-empty (a scheduling
//     decision, and under the built-in scheduler an rng consultation, is
//     due at this clock).
//
// Armed watchpoints and epoch/pause waiters no longer demote the window.
// Watchpoint state is frozen inside a window — register files change only
// on kernel entries (syscalls, traps, timer interrupts), none of which
// occur mid-window — so block-edge footprint decisions (see blockChecked)
// hold for the whole block, and the per-tick epoch-waiter checks the
// legacy loop would run are provably no-ops: minCoreEpoch cannot change
// mid-window, and time-based wakes arrive via events, which bound the
// window.
//
// The window bound is the earliest clock at which the legacy loop would do
// anything besides retire an instruction: a running core's next timer
// interrupt, a busy core's wake-up (it reschedules or resumes then), a
// free core's next idle timer reset, the next event, and MaxTicks.
func (m *Machine) trySuperstep() {
	if len(m.events) > 0 && m.events[0].tick <= m.clock {
		m.demotions.TimerEdge++
		return
	}
	t0 := m.clock
	bound := ^uint64(0)
	active := m.fastCores[:0]
	for _, c := range m.cores {
		if c.BusyUntil > t0 {
			// Mid-cost (or mid-instruction) core: the legacy loop skips
			// it entirely until BusyUntil, where it reschedules, resumes
			// or has its timer checked — end the window there.
			if c.BusyUntil < bound {
				bound = c.BusyUntil
			}
			continue
		}
		if c.Cur != nil {
			if t0 >= c.NextTimer {
				m.demotions.TimerEdge++
				return
			}
			if c.NextTimer < bound {
				bound = c.NextTimer
			}
			// A block decision from a previous window is stale — the
			// register file may have changed at the intervening kernel
			// entry — so force a fresh one at this core's first block and
			// drop any leftover merge budget with it.
			c.fastLeft = 0
			c.fastMerge = 0
			active = append(active, c)
			continue
		}
		// Free core. If anything is runnable it schedules right now.
		if len(m.runq) > 0 {
			return
		}
		nt := c.NextTimer
		if t0 >= nt {
			// The legacy loop would reset the idle core's timer at t0
			// (no interrupt is delivered with nothing running); mirror
			// it so the post-window timer phase is identical.
			nt = t0 + m.cfg.Costs.Quantum
			c.NextTimer = nt
		}
		if nt < bound {
			bound = nt
		}
	}
	m.fastCores = active
	if len(active) == 0 {
		return
	}
	if len(m.events) > 0 && m.events[0].tick < bound {
		bound = m.events[0].tick
	}
	if m.cfg.MaxTicks > 0 && m.cfg.MaxTicks < bound {
		bound = m.cfg.MaxTicks
	}
	if bound <= t0 {
		return
	}

	// Lockstep rounds: in the legacy loop every aligned running core
	// retires one instruction per Costs.Instr ticks, in core order within
	// the tick. Round k therefore executes at clock t0 + k*Instr; n is the
	// number of whole rounds that fit strictly before the bound.
	instr := m.cfg.Costs.Instr
	n := (bound - t0 + instr - 1) / instr
	if n == 0 {
		return
	}

	var rounds uint64
	stopIdx := 0
	stopped := false
	if len(active) == 1 {
		rounds = m.runFastSingle(active[0], n)
		stopped = rounds < n
	} else {
	loop:
		for k := uint64(0); k < n; k++ {
			for i, c := range active {
				if !m.stepFastBlock(c) {
					// Core i cannot proceed (kernel boundary, faulting
					// instruction, or a checked access that would trap):
					// in the legacy loop its round-k instruction commits
					// at t0+k*instr *after* the round-k instructions of
					// cores ordered before it, and *before* those of
					// cores ordered after it. So cores < i keep round k;
					// cores >= i replay it (and everything later) on the
					// legacy path.
					rounds, stopIdx, stopped = k, i, true
					break loop
				}
			}
		}
		if !stopped {
			rounds = n
		}
	}

	var total uint64
	for i, c := range active {
		cnt := rounds
		if stopped && i < stopIdx {
			cnt++
		}
		if cnt == 0 {
			continue
		}
		// Bulk cost charge: identical to cnt legacy steps at Instr each.
		c.BusyUntil = t0 + cnt*instr
		total += cnt
	}
	if total == 0 {
		return
	}
	m.Stats.Instructions += total
	m.fastInstrs += total
	m.fastWindows++
}

// fastMergeRun is the checked-block merge budget: after a fresh block-edge
// decision lands on checked, this many subsequent block edges in the same
// window inherit the decision instead of re-scanning the register file.
// Overlapping-footprint runs (tight loops over a watched array, call chains
// into watched frames) thus pay one decision per fastMergeRun+1 blocks.
// Inheriting checked is always sound — checked mode pre-checks every access
// exactly — so the only cost of a stale inheritance is per-access checks on
// a block that a fresh decision would have retired unchecked.
const fastMergeRun = 4

// stepFastBlock retires one instruction of core c's thread in the
// multi-core lockstep, re-deciding checked/unchecked execution whenever the
// core crosses a basic-block edge (fastLeft counts the instructions still
// covered by the current decision; trySuperstep zeroes it at window
// admission because the register file may have changed between windows).
func (m *Machine) stepFastBlock(c *Core) bool {
	t := c.Cur
	if c.fastLeft == 0 {
		pc := t.PC
		if int(pc) >= len(m.blockLen) || m.blockLen[pc] == 0 {
			return false
		}
		c.fastLeft = m.blockLen[pc]
		if c.fastMerge > 0 {
			c.fastMerge--
			c.fastChecked = true
			m.demotions.CheckedOverlap++
		} else {
			c.fastChecked = m.blockChecked(c, t, pc)
			if c.fastChecked {
				c.fastMerge = fastMergeRun
			}
		}
		if m.segRecording() {
			m.segBlockFootprint(t, pc)
		}
	}
	if !m.execFast(c, t, c.fastChecked) {
		c.fastLeft = 0
		c.fastMerge = 0
		return false
	}
	c.fastLeft--
	return true
}

// runFastSingle is the one-active-core window executor: it retires up to n
// instructions in blockLen-sized straight-line chunks, so both the "is
// this a kernel boundary" lookup and the checked/unchecked watchpoint
// decision are hoisted to block edges. Returns the number of instructions
// retired.
func (m *Machine) runFastSingle(c *Core, n uint64) uint64 {
	t := c.Cur
	var done uint64
	var merge uint8 // window-local checked-block merge budget
	for done < n {
		pc := t.PC
		if int(pc) >= len(m.blockLen) {
			return done
		}
		chunk := uint64(m.blockLen[pc])
		if chunk == 0 {
			return done
		}
		var checked bool
		if merge > 0 {
			merge--
			checked = true
			m.demotions.CheckedOverlap++
		} else {
			checked = m.blockChecked(c, t, pc)
			if checked {
				merge = fastMergeRun
			}
		}
		if m.segRecording() {
			m.segBlockFootprint(t, pc)
		}
		if chunk > n-done {
			chunk = n - done
		}
		for j := uint64(0); j < chunk; j++ {
			if !m.execFast(c, t, checked) {
				return done + j
			}
		}
		done += chunk
	}
	return done
}

// blockChecked decides, at a basic-block edge, whether the straight-line
// run starting at pc must execute with per-access watchpoint checks on
// core c. False — the common case — means the block's static footprint is
// provably disjoint from every armed register that could trap thread t, so
// execFast may commit every access unchecked (Match would return -1 for
// all of them). The stack components of the footprint are offsets from the
// block's entry SP/FP, evaluated here against the thread's live registers;
// an interval that escapes the 32-bit address space is answered
// conservatively.
func (m *Machine) blockChecked(c *Core, t *Thread, pc uint32) bool {
	if c.WP.ArmedCount() == 0 {
		return false
	}
	f := &m.fps[pc]
	if f.Unbounded {
		// An access the analysis could not bound: checked unless every
		// armed register is exempt for this thread.
		if c.WP.MayMatchRange(t.ID, 0, ^uint32(0)) {
			m.demotions.Unbounded++
			return true
		}
		return false
	}
	// Assemble the footprint's components — absolute plus the SP/FP
	// intervals evaluated against the live registers — and test them against
	// the register file in one scan. A register-relative interval that
	// leaves [0, 2^32) after evaluation is answered conservatively (the
	// block's accesses would wrap or fault; the checked path sorts it out
	// exactly).
	var ranges [3]hw.AddrRange
	n := 0
	if f.AbsHi > f.AbsLo {
		ranges[n] = hw.AddrRange{Lo: f.AbsLo, Hi: f.AbsHi}
		n++
	}
	for _, rr := range [2]struct {
		base   int64
		lo, hi int64
	}{
		{t.Regs[isa.RegSP], f.SPLo, f.SPHi},
		{t.Regs[isa.RegFP], f.FPLo, f.FPHi},
	} {
		if rr.hi <= rr.lo {
			continue
		}
		lo64 := int64(uint32(rr.base)) + rr.lo
		hi64 := int64(uint32(rr.base)) + rr.hi
		if lo64 < 0 || hi64 > int64(^uint32(0)) {
			m.demotions.ArmedOverlap++
			return true
		}
		ranges[n] = hw.AddrRange{Lo: uint32(lo64), Hi: uint32(hi64)}
		n++
	}
	if n > 0 && c.WP.MayMatchRanges(t.ID, ranges[:n]) {
		m.demotions.ArmedOverlap++
		return true
	}
	return false
}

// wouldTrap is the checked-mode access pre-check: it reports whether the
// access would hit an armed register, in which case the instruction must
// bail out pre-commit and replay on the legacy path, which records the
// access and delivers the trap (before- or after-access, per the hardware
// model) with identical state at the identical clock.
func (m *Machine) wouldTrap(c *Core, t *Thread, addr uint32, sz uint8, typ hw.AccessType) bool {
	if c.WP.Match(t.ID, addr, sz, typ) >= 0 {
		m.demotions.WouldTrap++
		return true
	}
	return false
}

// execFast retires exactly one instruction of thread t on core c with no
// kernel interaction and no access recording. In unchecked mode the caller
// (blockChecked) has proven no access can hit an armed register; in
// checked mode every access is pre-checked with wouldTrap before anything
// commits — multi-access instructions (PUSHM, CALLM) check all their
// accesses first, so a bail-out never leaves a partial commit. It returns
// false, leaving all machine state untouched, when the instruction must
// execute on the legacy path instead: a kernel boundary (SYS, HLT), an
// undecodable pc, a faulting condition (division by zero, out-of-bounds
// access), or a checked access that would trap. Stop-before semantics make
// the fallback exact: the legacy step re-executes the instruction at the
// identical clock with identical state.
func (m *Machine) execFast(c *Core, t *Thread, checked bool) bool {
	pc := t.PC
	if int(pc) >= len(m.blockLen) || m.blockLen[pc] == 0 {
		return false
	}
	in := m.decoded[pc]
	r := &t.Regs
	op := in.Op
	nextPC := pc + uint32(in.Len)

	switch {
	case op == isa.OpNOP:
	case op == isa.OpMOVQ || op == isa.OpMOVL:
		r[in.Rd] = in.Imm
	case op == isa.OpMOVR:
		r[in.Rd] = r[in.Ra]
	case op >= isa.OpADD && op <= isa.OpCGE:
		v, ok := alu(op, r[in.Ra], r[in.Rb])
		if !ok {
			return false // division by zero: fault on the legacy path
		}
		r[in.Rd] = v
	case op == isa.OpADDI:
		r[in.Rd] = r[in.Ra] + in.Imm
	case op >= isa.OpLD && op < isa.OpLD+4:
		if !m.inBounds(in.Addr, in.Sz) {
			return false
		}
		if checked && m.wouldTrap(c, t, in.Addr, in.Sz, hw.Read) {
			return false
		}
		r[in.Rd] = signExtend(m.loadRaw(in.Addr, in.Sz), in.Sz)
	case op >= isa.OpST && op < isa.OpST+4:
		if !m.inBounds(in.Addr, in.Sz) {
			return false
		}
		if checked && m.wouldTrap(c, t, in.Addr, in.Sz, hw.Write) {
			return false
		}
		m.storeRaw(in.Addr, in.Sz, uint64(r[in.Ra]))
	case op >= isa.OpLDR && op < isa.OpLDR+4:
		addr := uint32(r[in.Ra] + in.Imm)
		if !m.inBounds(addr, in.Sz) {
			return false
		}
		if checked && m.wouldTrap(c, t, addr, in.Sz, hw.Read) {
			return false
		}
		r[in.Rd] = signExtend(m.loadRaw(addr, in.Sz), in.Sz)
	case op >= isa.OpSTR && op < isa.OpSTR+4:
		addr := uint32(r[in.Ra] + in.Imm)
		if !m.inBounds(addr, in.Sz) {
			return false
		}
		if checked && m.wouldTrap(c, t, addr, in.Sz, hw.Write) {
			return false
		}
		m.storeRaw(addr, in.Sz, uint64(r[in.Rb]))
	case op == isa.OpPUSH:
		sp := uint32(r[isa.RegSP]) - 8
		if !m.inBounds(sp, 8) {
			return false
		}
		if checked && m.wouldTrap(c, t, sp, 8, hw.Write) {
			return false
		}
		r[isa.RegSP] = int64(sp)
		m.storeRaw(sp, 8, uint64(r[in.Ra]))
	case op == isa.OpPOP:
		sp := uint32(r[isa.RegSP])
		if !m.inBounds(sp, 8) {
			return false
		}
		if checked && m.wouldTrap(c, t, sp, 8, hw.Read) {
			return false
		}
		r[in.Rd] = int64(m.loadRaw(sp, 8))
		r[isa.RegSP] = int64(sp + 8)
	case op >= isa.OpPUSHM && op < isa.OpPUSHM+4:
		if !m.inBounds(in.Addr, in.Sz) {
			return false
		}
		sp := uint32(r[isa.RegSP]) - 8
		if !m.inBounds(sp, 8) {
			return false
		}
		if checked && (m.wouldTrap(c, t, in.Addr, in.Sz, hw.Read) ||
			m.wouldTrap(c, t, sp, 8, hw.Write)) {
			return false
		}
		v := signExtend(m.loadRaw(in.Addr, in.Sz), in.Sz)
		r[isa.RegSP] = int64(sp)
		m.storeRaw(sp, 8, uint64(v))
	case op == isa.OpJMP:
		nextPC = in.Addr
	case op == isa.OpJZ:
		if r[in.Ra] == 0 {
			nextPC = in.Addr
		}
	case op == isa.OpJNZ:
		if r[in.Ra] != 0 {
			nextPC = in.Addr
		}
	case op == isa.OpCALL:
		sp := uint32(r[isa.RegSP]) - 8
		if !m.inBounds(sp, 8) {
			return false
		}
		if checked && m.wouldTrap(c, t, sp, 8, hw.Write) {
			return false
		}
		r[isa.RegSP] = int64(sp)
		m.storeRaw(sp, 8, uint64(nextPC))
		nextPC = in.Addr
		t.Depth++
	case op == isa.OpCALLM:
		if !m.inBounds(in.Addr, 8) {
			return false
		}
		sp := uint32(r[isa.RegSP]) - 8
		if !m.inBounds(sp, 8) {
			return false
		}
		if checked && (m.wouldTrap(c, t, in.Addr, 8, hw.Read) ||
			m.wouldTrap(c, t, sp, 8, hw.Write)) {
			return false
		}
		target := uint32(m.loadRaw(in.Addr, 8))
		r[isa.RegSP] = int64(sp)
		m.storeRaw(sp, 8, uint64(nextPC))
		nextPC = target
		t.Depth++
	case op == isa.OpRET:
		sp := uint32(r[isa.RegSP])
		if !m.inBounds(sp, 8) {
			return false
		}
		if checked && m.wouldTrap(c, t, sp, 8, hw.Read) {
			return false
		}
		nextPC = uint32(m.loadRaw(sp, 8))
		r[isa.RegSP] = int64(sp + 8)
		if t.Depth > 0 {
			t.Depth--
		}
	default:
		// Op the legacy interpreter would fault as unimplemented.
		return false
	}

	t.LastInstr = pc
	t.PC = nextPC
	return true
}

// MemHash returns the FNV-1a hash of data memory, for differential
// comparison of final memory images across dispatch modes.
func (m *Machine) MemHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range m.Mem {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
