package vm

import "kivati/internal/isa"

// This file implements the tiered-execution fast path: basic-block
// superstep dispatch over the pre-decoded instruction stream.
//
// The paper's performance argument (§5) is that the non-AR common case —
// no watchpoint armed anywhere — must be nearly free. The legacy Run loop
// pays full per-instruction freight for that case: a scheduler visit, a
// timer comparison, an event-heap peek and a clock-advance computation per
// retired instruction. The superstep collapses all of it: when no core can
// trap, no kernel activity is due and no scheduling decision can arise,
// the machine computes the largest window [clock, bound) in which the
// legacy loop provably does nothing but retire straight-line instructions,
// executes the whole window in a tight lockstep loop, and charges cost in
// bulk. Everything observable — event delivery, timer interrupts,
// scheduling decisions, rng consumption, per-thread instruction ticks —
// happens at exactly the clock values the legacy loop would have used, so
// execution is bit-identical (the differential gate in
// fastpath_test.go holds the interpreter to that).

// buildBlockLen precomputes, for every instruction start, how many
// instructions the fast path may retire beginning there without leaving
// straight-line code: 0 for pcs the fast path must not enter (SYS and HLT
// need the kernel; non-starts are decode faults), 1 for control flow
// (the block ends but the instruction itself is fast-executable), and
// 1 + blockLen[next] otherwise. starts is the list of instruction-start
// pcs in ascending order; the walk is in reverse so each entry is O(1).
func (m *Machine) buildBlockLen(starts []uint32) {
	m.blockLen = make([]uint16, len(m.decoded))
	const maxLen = ^uint16(0)
	for i := len(starts) - 1; i >= 0; i-- {
		pc := starts[i]
		in := m.decoded[pc]
		switch {
		case in.Op.IsKernelBoundary():
			// The legacy path must execute it.
		case in.Op.IsControlFlow():
			m.blockLen[pc] = 1
		default:
			n := uint16(1)
			if next := pc + uint32(in.Len); int(next) < len(m.blockLen) {
				if bl := m.blockLen[next]; bl < maxLen {
					n += bl
				} else {
					n = maxLen
				}
			}
			m.blockLen[pc] = n
		}
	}
}

// trySuperstep retires one superstep window if the machine state admits
// one, otherwise returns leaving all state untouched so the legacy loop
// handles the current clock. Demotion conditions (any one suffices):
//
//   - epoch/pause waiters exist: their wake checks are interleaved with
//     kernel entries the window would skip;
//   - an event is due at the current clock;
//   - a running core has a timer interrupt due or any watchpoint armed in
//     its local register file (stale or live — either can trap);
//   - a free core exists while the run queue is non-empty (a scheduling
//     decision, and under the built-in scheduler an rng consultation, is
//     due at this clock).
//
// The window bound is the earliest clock at which the legacy loop would do
// anything besides retire an instruction: a running core's next timer
// interrupt, a busy core's wake-up (it reschedules or resumes then), a
// free core's next idle timer reset, the next event, and MaxTicks.
func (m *Machine) trySuperstep() {
	if m.epochWaiters {
		return
	}
	if len(m.events) > 0 && m.events[0].tick <= m.clock {
		return
	}
	t0 := m.clock
	bound := ^uint64(0)
	active := m.fastCores[:0]
	for _, c := range m.cores {
		if c.BusyUntil > t0 {
			// Mid-cost (or mid-instruction) core: the legacy loop skips
			// it entirely until BusyUntil, where it reschedules, resumes
			// or has its timer checked — end the window there.
			if c.BusyUntil < bound {
				bound = c.BusyUntil
			}
			continue
		}
		if c.Cur != nil {
			if t0 >= c.NextTimer || c.WP.ArmedCount() != 0 {
				return
			}
			if c.NextTimer < bound {
				bound = c.NextTimer
			}
			active = append(active, c)
			continue
		}
		// Free core. If anything is runnable it schedules right now.
		if len(m.runq) > 0 {
			return
		}
		nt := c.NextTimer
		if t0 >= nt {
			// The legacy loop would reset the idle core's timer at t0
			// (no interrupt is delivered with nothing running); mirror
			// it so the post-window timer phase is identical.
			nt = t0 + m.cfg.Costs.Quantum
			c.NextTimer = nt
		}
		if nt < bound {
			bound = nt
		}
	}
	m.fastCores = active
	if len(active) == 0 {
		return
	}
	if len(m.events) > 0 && m.events[0].tick < bound {
		bound = m.events[0].tick
	}
	if m.cfg.MaxTicks > 0 && m.cfg.MaxTicks < bound {
		bound = m.cfg.MaxTicks
	}
	if bound <= t0 {
		return
	}

	// Lockstep rounds: in the legacy loop every aligned running core
	// retires one instruction per Costs.Instr ticks, in core order within
	// the tick. Round k therefore executes at clock t0 + k*Instr; n is the
	// number of whole rounds that fit strictly before the bound.
	instr := m.cfg.Costs.Instr
	n := (bound - t0 + instr - 1) / instr
	if n == 0 {
		return
	}

	var rounds uint64
	stopIdx := 0
	stopped := false
	if len(active) == 1 {
		rounds = m.runFastSingle(active[0], n)
		stopped = rounds < n
	} else {
	loop:
		for k := uint64(0); k < n; k++ {
			for i, c := range active {
				if !m.execFast(c, c.Cur) {
					// Core i cannot proceed (kernel boundary or faulting
					// instruction): in the legacy loop its round-k
					// instruction commits at t0+k*instr *after* the
					// round-k instructions of cores ordered before it,
					// and *before* those of cores ordered after it. So
					// cores < i keep round k; cores >= i replay it (and
					// everything later) on the legacy path.
					rounds, stopIdx, stopped = k, i, true
					break loop
				}
			}
		}
		if !stopped {
			rounds = n
		}
	}

	var total uint64
	for i, c := range active {
		cnt := rounds
		if stopped && i < stopIdx {
			cnt++
		}
		if cnt == 0 {
			continue
		}
		// Bulk cost charge: identical to cnt legacy steps at Instr each.
		c.BusyUntil = t0 + cnt*instr
		total += cnt
	}
	if total == 0 {
		return
	}
	m.Stats.Instructions += total
	m.fastInstrs += total
	m.fastWindows++
}

// runFastSingle is the one-active-core window executor: it retires up to n
// instructions in blockLen-sized straight-line chunks, so the per-
// instruction "is this a kernel boundary" lookup is hoisted to block
// edges. Returns the number of instructions retired.
func (m *Machine) runFastSingle(c *Core, n uint64) uint64 {
	t := c.Cur
	var done uint64
	for done < n {
		pc := t.PC
		if int(pc) >= len(m.blockLen) {
			return done
		}
		chunk := uint64(m.blockLen[pc])
		if chunk == 0 {
			return done
		}
		if chunk > n-done {
			chunk = n - done
		}
		for j := uint64(0); j < chunk; j++ {
			if !m.execFast(c, t) {
				return done + j
			}
		}
		done += chunk
	}
	return done
}

// execFast retires exactly one instruction of thread t on core c with no
// kernel interaction and no access recording (the window guarantees no
// watchpoint is armed on the core, so no trap — before- or after-access —
// can fire, and Match would return -1 for every committed access). It
// returns false, leaving all machine state untouched, when the instruction
// must execute on the legacy path instead: a kernel boundary (SYS, HLT),
// an undecodable pc, or a faulting condition (division by zero,
// out-of-bounds access). Stop-before semantics make the fallback exact:
// the legacy step re-executes the instruction at the identical clock with
// identical state.
func (m *Machine) execFast(c *Core, t *Thread) bool {
	pc := t.PC
	if int(pc) >= len(m.blockLen) || m.blockLen[pc] == 0 {
		return false
	}
	in := m.decoded[pc]
	r := &t.Regs
	op := in.Op
	nextPC := pc + uint32(in.Len)

	switch {
	case op == isa.OpNOP:
	case op == isa.OpMOVQ || op == isa.OpMOVL:
		r[in.Rd] = in.Imm
	case op == isa.OpMOVR:
		r[in.Rd] = r[in.Ra]
	case op >= isa.OpADD && op <= isa.OpCGE:
		v, ok := alu(op, r[in.Ra], r[in.Rb])
		if !ok {
			return false // division by zero: fault on the legacy path
		}
		r[in.Rd] = v
	case op == isa.OpADDI:
		r[in.Rd] = r[in.Ra] + in.Imm
	case op >= isa.OpLD && op < isa.OpLD+4:
		if !m.inBounds(in.Addr, in.Sz) {
			return false
		}
		r[in.Rd] = signExtend(m.loadRaw(in.Addr, in.Sz), in.Sz)
	case op >= isa.OpST && op < isa.OpST+4:
		if !m.inBounds(in.Addr, in.Sz) {
			return false
		}
		m.storeRaw(in.Addr, in.Sz, uint64(r[in.Ra]))
	case op >= isa.OpLDR && op < isa.OpLDR+4:
		addr := uint32(r[in.Ra] + in.Imm)
		if !m.inBounds(addr, in.Sz) {
			return false
		}
		r[in.Rd] = signExtend(m.loadRaw(addr, in.Sz), in.Sz)
	case op >= isa.OpSTR && op < isa.OpSTR+4:
		addr := uint32(r[in.Ra] + in.Imm)
		if !m.inBounds(addr, in.Sz) {
			return false
		}
		m.storeRaw(addr, in.Sz, uint64(r[in.Rb]))
	case op == isa.OpPUSH:
		sp := uint32(r[isa.RegSP]) - 8
		if !m.inBounds(sp, 8) {
			return false
		}
		r[isa.RegSP] = int64(sp)
		m.storeRaw(sp, 8, uint64(r[in.Ra]))
	case op == isa.OpPOP:
		sp := uint32(r[isa.RegSP])
		if !m.inBounds(sp, 8) {
			return false
		}
		r[in.Rd] = int64(m.loadRaw(sp, 8))
		r[isa.RegSP] = int64(sp + 8)
	case op >= isa.OpPUSHM && op < isa.OpPUSHM+4:
		if !m.inBounds(in.Addr, in.Sz) {
			return false
		}
		sp := uint32(r[isa.RegSP]) - 8
		if !m.inBounds(sp, 8) {
			return false
		}
		v := signExtend(m.loadRaw(in.Addr, in.Sz), in.Sz)
		r[isa.RegSP] = int64(sp)
		m.storeRaw(sp, 8, uint64(v))
	case op == isa.OpJMP:
		nextPC = in.Addr
	case op == isa.OpJZ:
		if r[in.Ra] == 0 {
			nextPC = in.Addr
		}
	case op == isa.OpJNZ:
		if r[in.Ra] != 0 {
			nextPC = in.Addr
		}
	case op == isa.OpCALL:
		sp := uint32(r[isa.RegSP]) - 8
		if !m.inBounds(sp, 8) {
			return false
		}
		r[isa.RegSP] = int64(sp)
		m.storeRaw(sp, 8, uint64(nextPC))
		nextPC = in.Addr
		t.Depth++
	case op == isa.OpCALLM:
		if !m.inBounds(in.Addr, 8) {
			return false
		}
		sp := uint32(r[isa.RegSP]) - 8
		if !m.inBounds(sp, 8) {
			return false
		}
		target := uint32(m.loadRaw(in.Addr, 8))
		r[isa.RegSP] = int64(sp)
		m.storeRaw(sp, 8, uint64(nextPC))
		nextPC = target
		t.Depth++
	case op == isa.OpRET:
		sp := uint32(r[isa.RegSP])
		if !m.inBounds(sp, 8) {
			return false
		}
		nextPC = uint32(m.loadRaw(sp, 8))
		r[isa.RegSP] = int64(sp + 8)
		if t.Depth > 0 {
			t.Depth--
		}
	default:
		// Op the legacy interpreter would fault as unimplemented.
		return false
	}

	t.LastInstr = pc
	t.PC = nextPC
	return true
}

// MemHash returns the FNV-1a hash of data memory, for differential
// comparison of final memory images across dispatch modes.
func (m *Machine) MemHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range m.Mem {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
