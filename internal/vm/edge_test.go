package vm

import (
	"strings"
	"testing"

	"kivati/internal/annotate"
	"kivati/internal/compile"
	"kivati/internal/kernel"
	"kivati/internal/minic"
)

// Edge cases and failure injection for the compiler/VM pair.

func TestNestedCallsPreserveScratch(t *testing.T) {
	// g(h(x)) + x*f(y): nested user calls must save/restore the caller's
	// live scratch registers across CALL.
	src := `
int f(int a) {
    return a * 2;
}
int g(int a) {
    return a + 100;
}
int h(int a) {
    return g(f(a)) + f(g(a));
}
void main() {
    int x;
    x = 3;
    print(h(x) + x * f(x));
    print(f(g(h(1))) + h(f(g(2))));
}`
	_, res := run(t, src, defaultRunOpts())
	// h(3) = g(f(3)) + f(g(3)) = (6+100) + (103*2) = 312; + 3*6 = 330
	// f(g(h(1))): h(1) = g(2)+f(101) = 102+202 = 304; g(304)=404; f=808
	// h(f(g(2))): g(2)=102; f=204; h(204) = g(408)+f(304) = 508+608 = 1116
	want := []int64{330, 808 + 1116}
	if len(res.Output) != 2 || res.Output[0] != want[0] || res.Output[1] != want[1] {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestBuiltinInsideExpression(t *testing.T) {
	// Builtins used as operands: the syscall result moves into the
	// destination without clobbering other live operands.
	src := `
void main() {
    int a;
    a = 5;
    print(a + nanos() * 0 + a);
    print((rand() & 0) + a);
}`
	_, res := run(t, src, defaultRunOpts())
	if len(res.Output) != 2 || res.Output[0] != 10 || res.Output[1] != 5 {
		t.Errorf("output = %v, want [10 5]", res.Output)
	}
}

func TestLocalArrays(t *testing.T) {
	src := `
void main() {
    int buf[4];
    int i;
    i = 0;
    while (i < 4) {
        buf[i] = i * i;
        i = i + 1;
    }
    print(buf[0] + buf[1] + buf[2] + buf[3]);
}`
	_, res := run(t, src, defaultRunOpts())
	if len(res.Output) != 1 || res.Output[0] != 14 {
		t.Errorf("output = %v, want [14]", res.Output)
	}
}

func TestDeepExpressionCompileError(t *testing.T) {
	// Expressions beyond the scratch pool must fail at compile time, not
	// corrupt registers.
	var b strings.Builder
	b.WriteString("int a;\nvoid main() { print(")
	for i := 0; i < 10; i++ {
		b.WriteString("(a + ")
	}
	b.WriteString("a")
	for i := 0; i < 10; i++ {
		b.WriteString(")")
	}
	// Build right-leaning instead: a + (a + (...)), which genuinely
	// needs one register per level in this compiler.
	src := "int a;\nvoid main() { print(" + rightLeaning(12) + "); }"
	_ = b
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := annotate.Annotate(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compile.Compile(ap, compile.Options{}); err == nil {
		t.Error("expected a compile error for register exhaustion")
	} else if !strings.Contains(err.Error(), "too deep") {
		t.Errorf("error = %v, want register-exhaustion message", err)
	}
}

func rightLeaning(depth int) string {
	if depth == 0 {
		return "a"
	}
	return "(a * " + rightLeaning(depth-1) + ")"
}

func TestSpawnLimit(t *testing.T) {
	src := `
int n;
void w(int id) {
    sleep(100000);
}
void main() {
    int i;
    i = 0;
    while (i < 100) {
        n = spawn(w, i);
        i = i + 1;
    }
    print(n);
}`
	o := defaultRunOpts()
	o.mcfg.MaxTicks = 10_000_000
	bin := buildSrc(t, src, o.compile)
	k := newTestKernel(o)
	m, err := New(bin, k, o.mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start("main", 0); err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	// spawn returns -1 past the thread limit rather than faulting.
	if len(res.Output) != 1 || res.Output[0] != -1 {
		t.Errorf("output = %v, want [-1] (limit exceeded)", res.Output)
	}
	if m.NumThreads() != compile.MaxThreads {
		t.Errorf("threads = %d, want %d", m.NumThreads(), compile.MaxThreads)
	}
}

func TestOutOfBoundsIndexFaults(t *testing.T) {
	src := `
int arr[4];
void main() {
    int i;
    i = 0 - 99999999;
    arr[i] = 1;
}`
	o := defaultRunOpts()
	bin := buildSrc(t, src, o.compile)
	k := newTestKernel(o)
	m, err := New(bin, k, o.mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start("main", 0); err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if len(res.Faults) != 1 || !strings.Contains(res.Faults[0], "out of bounds") {
		t.Errorf("faults = %v, want one out-of-bounds fault", res.Faults)
	}
}

func TestStartUnknownFunction(t *testing.T) {
	o := defaultRunOpts()
	bin := buildSrc(t, "void main() { }", o.compile)
	m, err := New(bin, newTestKernel(o), o.mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start("nope", 0); err == nil {
		t.Error("Start of unknown function: want error")
	}
}

func TestFourCores(t *testing.T) {
	src := `
int s;
int lk;
int done;
void w(int n) {
    int i;
    i = 0;
    while (i < 100) {
        lock(lk);
        s = s + 1;
        unlock(lk);
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void main() {
    spawn(w, 0);
    spawn(w, 0);
    spawn(w, 0);
    w(0);
    while (done < 4) {
        sleep(200);
    }
    print(s);
}`
	for _, cores := range []int{1, 2, 4} {
		o := defaultRunOpts()
		o.mcfg.Cores = cores
		o.mcfg.MaxTicks = 120_000_000
		_, res := run(t, src, o)
		if res.Reason != "completed" {
			t.Errorf("cores=%d: reason %q", cores, res.Reason)
			continue
		}
		if res.Output[0] != 400 {
			t.Errorf("cores=%d: s = %d, want 400", cores, res.Output[0])
		}
	}
}

func TestManyWatchpointsConfig(t *testing.T) {
	src := `
int a;
int b;
int c;
void main() {
    int t;
    t = a + b + c;
    a = t;
    b = t;
    c = t;
    print(t);
}`
	o := defaultRunOpts()
	o.kcfg.NumWatchpoints = 12
	_, res := run(t, src, o)
	if res.Stats.MissedARs != 0 {
		t.Errorf("missed %d ARs with 12 registers", res.Stats.MissedARs)
	}
}

func TestRecvWithoutGeneratorBlocksUntilMaxTicks(t *testing.T) {
	src := `
void main() {
    int r;
    r = recv();
    print(r);
}`
	o := defaultRunOpts()
	o.mcfg.MaxTicks = 50_000
	bin := buildSrc(t, src, o.compile)
	m, err := New(bin, newTestKernel(o), o.mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start("main", 0); err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	// No arrivals ever: the machine has no runnable work and no events —
	// it must report a deadlock (or run out the clock), not hang the host.
	if res.Reason != "deadlock" && res.Reason != "max-ticks" {
		t.Errorf("reason = %q", res.Reason)
	}
}

func TestShadowWritesDoNotChangeSemantics(t *testing.T) {
	src := `
int s;
void main() {
    int t;
    s = 41;
    t = s;
    print(t + 1);
}`
	o := defaultRunOpts()
	o.compile = compile.Options{Annotate: true, ShadowWrites: true}
	o.kcfg.Opt = kernel.OptOptimized
	o.kcfg.ShadowDelta = compile.ShadowDelta
	m, res := run(t, src, o)
	if len(res.Output) != 1 || res.Output[0] != 42 {
		t.Fatalf("output = %v", res.Output)
	}
	// The shadow slot holds the mirrored first-write value.
	sAddr := m.Bin.Globals["s"]
	if got := int64(m.loadRaw(sAddr+compile.ShadowDelta, 8)); got != 41 {
		t.Errorf("shadow slot = %d, want 41", got)
	}
}

func TestPartialCostsInheritDefaults(t *testing.T) {
	o := defaultRunOpts()
	o.mcfg.Costs = Costs{AccessCheck: 25} // everything else zero
	bin := buildSrc(t, "void main() { print(7); }", o.compile)
	m, err := New(bin, newTestKernel(o), o.mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start("main", 0); err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Reason != "completed" || res.Output[0] != 7 {
		t.Fatalf("res = %+v", res)
	}
	// Instructions must still cost time (defaults inherited).
	if res.Ticks < res.Stats.Instructions {
		t.Errorf("ticks %d < instructions %d: default costs lost", res.Ticks, res.Stats.Instructions)
	}
}
