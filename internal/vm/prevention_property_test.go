package vm

import (
	"fmt"
	"testing"
)

// TestPreventionPreservesIncrements is a metamorphic property over seeds:
// two threads increment a shared counter through unlocked read-modify-write
// sequences that are rare enough not to brew mutual-suspension timeouts.
// Whenever a run finishes with zero timeouts, zero missed ARs, zero
// begin-retry give-ups and zero unreorderable accesses, Kivati's prevention
// must have reordered every interleaving access — so not a single increment
// may be lost. (Runs where the escape hatches fired are skipped: the paper
// is explicit that timeout-released violations are recorded but not
// prevented.)
func TestPreventionPreservesIncrements(t *testing.T) {
	const perThread = 120
	src := fmt.Sprintf(`
int counter;
int done;
int lk;
int spin(int v) {
    int x;
    int j;
    x = v;
    j = 0;
    while (j < 90) {
        x = x * 31 + j;
        j = j + 1;
    }
    if (x < 0) {
        x = 0 - x;
    }
    return x;
}
void worker(int id) {
    int i;
    int w;
    int t;
    i = 0;
    while (i < %d) {
        w = spin(id * 131 + i);
        if (w %% 7 == 0) {
            t = counter;
            counter = t + 1;
        }
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void main() {
    spawn(worker, 1);
    worker(2);
    while (done < 2) {
        sleep(300);
    }
    print(counter);
}`, perThread)

	// Reference: how many increments each seed performs (gates depend only
	// on id and i, so the total is seed-independent; compute once from a
	// vanilla single run).
	o := defaultRunOpts()
	o.mcfg.MaxTicks = 200_000_000
	o.compile.Annotate = false
	_, vres := run(t, src, o)
	expected := vres.Output[0] // vanilla may lose updates; recompute below

	// Count the gate hits exactly.
	hits := int64(0)
	for _, id := range []int64{1, 2} {
		for i := int64(0); i < perThread; i++ {
			x := id*131 + i
			for j := int64(0); j < 90; j++ {
				x = x*31 + j
			}
			if x < 0 {
				x = -x
			}
			if x%7 == 0 {
				hits++
			}
		}
	}
	if expected > hits {
		t.Fatalf("vanilla counted %d > possible %d", expected, hits)
	}

	clean, exact := 0, 0
	for seed := int64(1); seed <= 12; seed++ {
		oo := defaultRunOpts()
		oo.mcfg.Seed = seed
		oo.mcfg.MaxTicks = 400_000_000
		_, res := run(t, src, oo)
		if res.Reason != "completed" {
			t.Fatalf("seed %d: %s", seed, res.Reason)
		}
		s := res.Stats
		if s.Timeouts == 0 && s.MissedARs == 0 && s.BeginRetryGiveUps == 0 && s.Unreorderable == 0 {
			clean++
			if res.Output[0] == hits {
				exact++
			} else {
				t.Errorf("seed %d: clean run lost increments: %d != %d",
					seed, res.Output[0], hits)
			}
		}
	}
	if clean == 0 {
		t.Skip("no timeout-free runs among the seeds; property not exercised")
	}
	t.Logf("%d/%d seeds ran clean, all %d exact", clean, 12, exact)
}
