package vm

import (
	"fmt"
	"reflect"
	"testing"

	"kivati/internal/compile"
	"kivati/internal/kernel"
)

// runDispatch compiles and runs src under one dispatch mode, tolerating
// faults (fault equivalence across modes is part of what these tests
// check).
func runDispatch(t *testing.T, src string, o runOpts, d DispatchMode) (*Machine, *Result) {
	t.Helper()
	bin := buildSrc(t, src, o.compile)
	if o.kcfg.Opt == kernel.OptOptimized && o.compile.ShadowWrites {
		o.kcfg.ShadowDelta = compile.ShadowDelta
	}
	k := kernel.New(o.kcfg, o.wl, nil, nil)
	cfg := o.mcfg
	cfg.Dispatch = d
	m, err := New(bin, k, cfg)
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	starts := o.starts
	if len(starts) == 0 {
		starts = []startSpec{{fn: "main"}}
	}
	for _, s := range starts {
		if _, err := m.Start(s.fn, s.arg); err != nil {
			t.Fatalf("Start(%s): %v", s.fn, err)
		}
	}
	return m, m.Run()
}

// assertDispatchEqual runs src under DispatchStep and DispatchAuto and
// requires bit-identical observable state: outputs, ticks, reason, faults,
// kernel stats, violations, final memory image, and per-thread registers.
func assertDispatchEqual(t *testing.T, name, src string, o runOpts) {
	t.Helper()
	ms, rs := runDispatch(t, src, o, DispatchStep)
	mf, rf := runDispatch(t, src, o, DispatchAuto)

	if rs.FastInstructions != 0 || rs.FastWindows != 0 {
		t.Errorf("%s: DispatchStep retired %d fast instructions in %d windows, want 0",
			name, rs.FastInstructions, rs.FastWindows)
	}
	if rs.Reason != rf.Reason {
		t.Errorf("%s: reason step=%q fast=%q", name, rs.Reason, rf.Reason)
	}
	if rs.Ticks != rf.Ticks {
		t.Errorf("%s: ticks step=%d fast=%d", name, rs.Ticks, rf.Ticks)
	}
	if !reflect.DeepEqual(rs.Output, rf.Output) {
		t.Errorf("%s: output step=%v fast=%v", name, rs.Output, rf.Output)
	}
	if !reflect.DeepEqual(rs.Faults, rf.Faults) {
		t.Errorf("%s: faults step=%v fast=%v", name, rs.Faults, rf.Faults)
	}
	if !reflect.DeepEqual(rs.Latencies, rf.Latencies) {
		t.Errorf("%s: latencies differ", name)
	}
	if !reflect.DeepEqual(rs.Stats, rf.Stats) {
		t.Errorf("%s: stats step=%+v fast=%+v", name, rs.Stats, rf.Stats)
	}
	if !reflect.DeepEqual(rs.Violations, rf.Violations) {
		t.Errorf("%s: violations step=%v fast=%v", name, rs.Violations, rf.Violations)
	}
	if hs, hf := ms.MemHash(), mf.MemHash(); hs != hf {
		t.Errorf("%s: memory hash step=%#x fast=%#x", name, hs, hf)
	}
	if ms.NumThreads() != mf.NumThreads() {
		t.Fatalf("%s: thread count step=%d fast=%d", name, ms.NumThreads(), mf.NumThreads())
	}
	for tid := 0; tid < ms.NumThreads(); tid++ {
		ts, tf := ms.Thread(tid), mf.Thread(tid)
		if ts.Regs != tf.Regs || ts.PC != tf.PC || ts.State != tf.State {
			t.Errorf("%s: thread %d state differs: step pc=%#x fast pc=%#x", name, tid, ts.PC, tf.PC)
		}
	}
}

func TestDispatchEquivalence(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"single-thread-loop", `
void main() {
    int i;
    int sum;
    i = 0;
    sum = 0;
    while (i < 20000) {
        sum = sum + i;
        i = i + 1;
    }
    print(sum);
}`},
		{"recursion", `
int fib(int n) {
    if (n < 2) {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}
void main() {
    print(fib(15));
}`},
		{"spawn-racy-counter", `
int counter;
int lk;
int done;
void worker(int n) {
    int i;
    i = 0;
    while (i < n) {
        counter = counter + 1;
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void main() {
    spawn(worker, 4000);
    spawn(worker, 4000);
    while (done < 2) {
        yield();
    }
    print(counter);
}`},
		{"spawn-locked-counter", `
int counter;
int lk;
void worker(int n) {
    int i;
    i = 0;
    while (i < n) {
        lock(lk);
        counter = counter + 1;
        unlock(lk);
        i = i + 1;
    }
}
void main() {
    spawn(worker, 500);
    spawn(worker, 500);
    while (counter < 1000) {
        yield();
    }
    print(counter);
}`},
		{"sleep-and-events", `
int lk;
int done;
void waiter(int n) {
    sleep(n);
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void main() {
    spawn(waiter, 700);
    spawn(waiter, 1300);
    while (done < 2) {
        yield();
    }
    print(done);
}`},
		{"division-fault", `
void main() {
    int i;
    int v;
    i = 0;
    v = 7;
    while (i < 1000) {
        i = i + 1;
    }
    print(v / (i - 1000));
}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			assertDispatchEqual(t, tc.name, tc.src, defaultRunOpts())
		})
	}
}

// Three-thread contention on two cores under prevention with annotated
// atomic regions: watchpoints arm and clear continually, so the machine
// oscillates between fast windows and legacy demotion. Sweep seeds so
// different interleavings (and timer phases) are all exercised.
func TestDispatchEquivalenceUnderPrevention(t *testing.T) {
	src := `
int shared;
int lk;
int done;
void worker(int n) {
    int i;
    i = 0;
    while (i < n) {
        shared = shared + 1;
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void main() {
    spawn(worker, 300);
    spawn(worker, 300);
    worker(300);
    while (done < 3) {
        yield();
    }
    print(shared);
}`
	for seed := int64(1); seed <= 5; seed++ {
		o := defaultRunOpts()
		o.mcfg.Seed = seed
		assertDispatchEqual(t, fmt.Sprintf("seed-%d", seed), src, o)
	}
}

// MaxTicks truncation must land on the identical tick in both modes: the
// fast path bounds every window at MaxTicks.
func TestDispatchEquivalenceMaxTicks(t *testing.T) {
	src := `
void main() {
    int i;
    i = 0;
    while (i < 1000000) {
        i = i + 1;
    }
}`
	for _, max := range []uint64{100, 999, 12345} {
		o := defaultRunOpts()
		o.mcfg.MaxTicks = max
		ms, rs := runDispatch(t, src, o, DispatchStep)
		mf, rf := runDispatch(t, src, o, DispatchAuto)
		if rs.Reason != "max-ticks" {
			t.Fatalf("max=%d: reason = %q, want max-ticks", max, rs.Reason)
		}
		if rs.Reason != rf.Reason || rs.Ticks != rf.Ticks {
			t.Errorf("max=%d: step (%q, %d) vs fast (%q, %d)",
				max, rs.Reason, rs.Ticks, rf.Reason, rf.Ticks)
		}
		if !reflect.DeepEqual(rs.Stats, rf.Stats) {
			t.Errorf("max=%d: stats differ: step=%+v fast=%+v", max, rs.Stats, rf.Stats)
		}
		if ms.Thread(0).Regs != mf.Thread(0).Regs {
			t.Errorf("max=%d: thread registers differ at truncation point", max)
		}
	}
}

// A watchpoint-free single-threaded run should spend nearly all its
// instructions on the fast path.
func TestFastPathResidency(t *testing.T) {
	src := `
void main() {
    int i;
    i = 0;
    while (i < 50000) {
        i = i + 1;
    }
}`
	o := defaultRunOpts()
	o.compile = compile.Options{}
	o.annotate = false
	_, res := runDispatch(t, src, o, DispatchAuto)
	if res.Reason != "completed" {
		t.Fatalf("reason = %q", res.Reason)
	}
	if res.FastInstructions == 0 || res.FastWindows == 0 {
		t.Fatalf("fast path never engaged: instrs=%d windows=%d", res.FastInstructions, res.FastWindows)
	}
	resid := float64(res.FastInstructions) / float64(res.Stats.Instructions)
	if resid < 0.9 {
		t.Errorf("fast-path residency = %.1f%% (%d/%d), want >= 90%%",
			100*resid, res.FastInstructions, res.Stats.Instructions)
	}
}

// The watchpoint-aware dispatcher must keep prevention-mode runs on the
// fast path: armed watchpoints no longer demote whole windows, only the
// blocks whose footprint actually overlaps them run checked. This is the
// tentpole regression test for the residency collapse (1.2% NSS / 0.0% VLC
// before footprints).
func TestFastPathResidencyUnderPrevention(t *testing.T) {
	src := `
int a;
int b;
int c;
int lk;
int done;
void finish() {
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void worker_b(int n) {
    int i;
    i = 0;
    while (i < n) {
        b = b + 1;
        i = i + 1;
    }
    finish();
}
void worker_c(int n) {
    int i;
    i = 0;
    while (i < n) {
        c = c + 1;
        i = i + 1;
    }
    finish();
}
void main() {
    int i;
    spawn(worker_b, 2000);
    spawn(worker_c, 2000);
    i = 0;
    while (i < 2000) {
        a = a + 1;
        i = i + 1;
    }
    finish();
    while (done < 3) {
        yield();
    }
    print(a + b + c);
}`
	o := defaultRunOpts()
	o.kcfg.Opt = kernel.OptOptimized
	o.mcfg.MaxTicks = 50_000_000
	_, res := runDispatch(t, src, o, DispatchAuto)
	if res.Reason != "completed" {
		t.Fatalf("reason = %q", res.Reason)
	}
	if res.Stats.Begins == 0 {
		t.Fatal("workload armed no watchpoints; residency under prevention not exercised")
	}
	resid := float64(res.FastInstructions) / float64(res.Stats.Instructions)
	if resid < 0.8 {
		t.Errorf("prevention-mode fast residency = %.1f%% (%d/%d), want >= 80%%",
			100*resid, res.FastInstructions, res.Stats.Instructions)
	}
	// Counter plumbing: a multi-quantum run always hits timer edges, and
	// the counters must surface on the Result.
	if res.Demotions.TimerEdge == 0 {
		t.Errorf("Demotions.TimerEdge = 0 over %d ticks, want > 0", res.Ticks)
	}

	// The legacy stepper records no demotions at all.
	_, rs := runDispatch(t, src, o, DispatchStep)
	if rs.Demotions != (Demotions{}) {
		t.Errorf("DispatchStep recorded demotions: %+v", rs.Demotions)
	}
}

// A schedule policy demotes DispatchAuto entirely (exploration semantics),
// while DispatchFast keeps the fast path engaged alongside the policy.
func TestPolicyDemotesAuto(t *testing.T) {
	src := `
int x;
int lk;
int done;
void worker(int n) {
    int i;
    i = 0;
    while (i < n) {
        x = x + 1;
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void main() {
    spawn(worker, 1000);
    worker(1000);
    while (done < 2) {
        yield();
    }
}`
	o := defaultRunOpts()
	o.compile = compile.Options{}

	rec := NewRecorder(queueHeadPolicy{})
	bin := buildSrc(t, src, o.compile)
	k := kernel.New(o.kcfg, nil, nil, nil)
	cfg := o.mcfg
	cfg.Policy = rec
	m, err := New(bin, k, cfg)
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	if _, err := m.Start("main", 0); err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.FastInstructions != 0 {
		t.Errorf("DispatchAuto with a policy retired %d fast instructions, want 0", res.FastInstructions)
	}
	_ = m
}

// queueHeadPolicy always picks the queue head (the non-deviating choice).
type queueHeadPolicy struct{}

func (queueHeadPolicy) Pick(SchedPoint) int { return 0 }

// blockLen sanity on a compiled binary: zero at SYS/HLT and non-starts,
// positive elsewhere, and 1 on control flow.
func TestBlockLenTable(t *testing.T) {
	src := `
void main() {
    int i;
    i = 0;
    while (i < 3) {
        i = i + 1;
    }
    print(i);
}`
	o := defaultRunOpts()
	m, _ := runDispatch(t, src, o, DispatchStep)
	if len(m.blockLen) != len(m.decoded) {
		t.Fatalf("blockLen len %d != decoded len %d", len(m.blockLen), len(m.decoded))
	}
	starts := 0
	for pc := range m.decoded {
		in := m.decoded[pc]
		if in.Len == 0 {
			if m.blockLen[pc] != 0 {
				t.Fatalf("non-start pc %#x has blockLen %d", pc, m.blockLen[pc])
			}
			continue
		}
		starts++
		bl := m.blockLen[pc]
		switch {
		case in.Op.IsKernelBoundary():
			if bl != 0 {
				t.Errorf("kernel-boundary op at %#x has blockLen %d, want 0", pc, bl)
			}
		case in.Op.IsControlFlow():
			if bl != 1 {
				t.Errorf("control-flow op at %#x has blockLen %d, want 1", pc, bl)
			}
		default:
			if bl == 0 {
				t.Errorf("straight-line op %v at %#x has blockLen 0", in.Op, pc)
			}
		}
	}
	if starts == 0 {
		t.Fatal("no instruction starts found")
	}
}

// The bounded-index regression: a static-bound loop over a fixed array is
// exactly the shape the value-range analysis must bound, so under
// prevention with armed watchpoints its blocks are checked (or clean) but
// never demoted as Unbounded.
func TestFastPathBoundedIndexNoUnbounded(t *testing.T) {
	src := `
int arr[8];
int lk;
int done;
void worker(int id) {
    int aj;
    lock(lk);
    aj = 0;
    while (aj < 8) {
        arr[aj] = arr[aj] + id;
        aj = aj + 1;
    }
    unlock(lk);
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void main() {
    spawn(worker, 1);
    spawn(worker, 2);
    worker(3);
    while (done < 3) {
        yield();
    }
    print(arr[0] + arr[7]);
}`
	o := defaultRunOpts()
	o.kcfg.Opt = kernel.OptOptimized
	o.kcfg.NumWatchpoints = 16
	o.mcfg.MaxTicks = 50_000_000
	_, res := runDispatch(t, src, o, DispatchFast)
	if res.Reason != "completed" {
		t.Fatalf("reason = %q", res.Reason)
	}
	if res.Stats.Begins == 0 {
		t.Fatal("no atomic regions began; the bounded-index shape was not exercised under prevention")
	}
	if res.Demotions.Unbounded != 0 {
		t.Errorf("Demotions.Unbounded = %d on a bounded-index program, want 0 (demotions: %+v)",
			res.Demotions.Unbounded, res.Demotions)
	}
}

// Merge-budget behavior: once a block runs checked, the next blocks of the
// same window inherit the decision (CheckedOverlap) instead of re-scanning
// the register file, and the inherited blocks still retire on the fast
// path.
func TestFastPathCheckedOverlapMerge(t *testing.T) {
	src := `
int s1;
int arr[4];
int lk;
int done;
void watcher(int n) {
    int i;
    i = 0;
    while (i < n) {
        s1 = s1 + 1;
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void scanner(int cap) {
    int i;
    int idx;
    int t;
    i = 0;
    while (i < 30000) {
        idx = i % cap;
        t = arr[idx];
        arr[idx] = t + 1;
        if (idx > i) {
            t = 0;
        }
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void main() {
    spawn(watcher, 3000);
    spawn(scanner, 4);
    while (done < 2) {
        yield();
    }
    print(s1 + arr[0]);
}`
	o := defaultRunOpts()
	o.kcfg.Opt = kernel.OptOptimized
	o.kcfg.NumWatchpoints = 16
	o.mcfg.MaxTicks = 50_000_000
	_, res := runDispatch(t, src, o, DispatchFast)
	if res.Reason != "completed" {
		t.Fatalf("reason = %q", res.Reason)
	}
	if res.Stats.Begins == 0 {
		t.Fatal("no atomic regions began; checked dispatch was not exercised")
	}
	d := res.Demotions
	if d.Unbounded == 0 && d.ArmedOverlap == 0 {
		t.Fatalf("no checked blocks at all (demotions: %+v); the merge path was not exercised", d)
	}
	if d.CheckedOverlap == 0 {
		t.Errorf("Demotions.CheckedOverlap = 0, want > 0: consecutive blocks after a checked one should inherit through the merge budget (demotions: %+v)", d)
	}
}
