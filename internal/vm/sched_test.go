package vm

import (
	"math/rand"
	"testing"
)

// schedSrc is a two-racer program with enough cross-thread interaction that
// different schedules genuinely produce different final states.
const schedSrc = `
int counter;
int done;
int lk;
void work(int id) {
    int i;
    int c;
    i = 0;
    while (i < 20) {
        c = counter;
        counter = c + 1;
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void main() {
    spawn(work, 1);
    spawn(work, 2);
    while (done < 2) {
        yield();
    }
}
`

// runWithPolicy runs schedSrc single-core with a short quantum so the policy
// is consulted at many real decision points.
func runWithPolicy(t *testing.T, policy SchedulePolicy) (*Machine, *Result) {
	t.Helper()
	o := defaultRunOpts()
	o.mcfg.Cores = 1
	o.mcfg.Policy = policy
	costs := DefaultCosts()
	costs.Quantum = 13
	o.mcfg.Costs = costs
	m, res := run(t, schedSrc, o)
	if res.Reason != "completed" {
		t.Fatalf("run did not complete: %s", res.Reason)
	}
	return m, res
}

// readGlobal reads the final value of a named global from machine memory.
func readGlobal(t *testing.T, m *Machine, name string) int64 {
	t.Helper()
	addr, ok := m.Bin.Globals[name]
	if !ok {
		t.Fatalf("no global %q", name)
	}
	return int64(m.Load(addr, 8))
}

// TestRecorderReplayerRoundTrip: a schedule recorded from a random policy
// replays with zero mismatches and reaches the identical final state.
func TestRecorderReplayerRoundTrip(t *testing.T) {
	rec := NewRecorder(PolicyFunc(func(p SchedPoint) int {
		return rand.New(rand.NewSource(int64(p.Seq) * 31)).Intn(len(p.Runnable))
	}))
	om, orig := runWithPolicy(t, rec)
	if len(rec.Decisions()) == 0 {
		t.Fatal("recorder saw no decision points")
	}
	for _, d := range rec.Decisions() {
		if len(d.Runnable) < 2 {
			t.Fatalf("decision at tick %d had %d runnable threads; policies are only consulted on real choices",
				d.Tick, len(d.Runnable))
		}
		found := false
		for _, id := range d.Runnable {
			if id == d.Chosen {
				found = true
			}
		}
		if !found {
			t.Fatalf("decision at tick %d chose %d, not among runnable %v", d.Tick, d.Chosen, d.Runnable)
		}
	}

	rep := NewReplayer(rec.Chosen())
	rm, replayed := runWithPolicy(t, rep)
	if rep.Mismatches() != 0 {
		t.Errorf("replay of a faithful trace had %d mismatches", rep.Mismatches())
	}
	if rep.Consumed() != len(rec.Chosen()) {
		t.Errorf("replay consumed %d decisions, recorder made %d", rep.Consumed(), len(rec.Chosen()))
	}
	if orig.Ticks != replayed.Ticks {
		t.Errorf("replay took %d ticks, original %d", replayed.Ticks, orig.Ticks)
	}
	for _, g := range []string{"counter", "done"} {
		if ov, rv := readGlobal(t, om, g), readGlobal(t, rm, g); ov != rv {
			t.Errorf("replay finished with %s=%d, original %d", g, rv, ov)
		}
	}
}

// TestRecorderClampsOutOfRange: an inner policy returning an out-of-range
// index is recorded as the default choice 0, never an invalid pick.
func TestRecorderClampsOutOfRange(t *testing.T) {
	rec := NewRecorder(PolicyFunc(func(p SchedPoint) int { return len(p.Runnable) + 3 }))
	runWithPolicy(t, rec)
	for _, d := range rec.Decisions() {
		if d.Chosen != d.Runnable[0] {
			t.Fatalf("out-of-range pick recorded chosen=%d, want default %d", d.Chosen, d.Runnable[0])
		}
	}
}

// TestReplayerMismatchFallback: replaying against a different program state
// (an empty trace) falls back to index 0 and counts every decision as a
// mismatch instead of failing.
func TestReplayerMismatchFallback(t *testing.T) {
	rep := NewReplayer(nil)
	runWithPolicy(t, rep)
	if rep.Mismatches() == 0 {
		t.Error("empty trace replayed a multi-decision run with 0 mismatches")
	}
	// A recorded thread that is never runnable also falls back and counts.
	rep2 := NewReplayer([]int{999, 999, 999})
	runWithPolicy(t, rep2)
	if rep2.Mismatches() < 3 {
		t.Errorf("unrunnable-thread trace had %d mismatches, want >= 3", rep2.Mismatches())
	}
}

// TestPolicySeqMonotonic: decision sequence numbers increase from 0.
func TestPolicySeqMonotonic(t *testing.T) {
	var seqs []uint64
	runWithPolicy(t, PolicyFunc(func(p SchedPoint) int {
		seqs = append(seqs, p.Seq)
		return 0
	}))
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("decision %d had Seq=%d", i, s)
		}
	}
}
