// Package vm is the multi-core virtual machine Kivati-protected programs
// run on. It models the hardware and OS surface the paper depends on: one
// watchpoint register file per core with x86 trap-after-access semantics,
// lazy cross-core propagation of watchpoint state (cores adopt the
// canonical state on kernel entries — syscalls, traps and timer
// interrupts), a virtual clock that charges a domain-crossing cost for
// every kernel entry (the dominant overhead the paper measures), a
// round-robin preemptive scheduler with seeded interleaving randomization,
// and the system calls the compiler emits — including begin_atomic /
// end_atomic / clear_ar, which are routed through the user-space library's
// decision procedure before paying for a crossing.
package vm

import (
	"container/heap"
	"fmt"
	"io"
	"math/rand"

	"kivati/internal/compile"
	"kivati/internal/hw"
	"kivati/internal/isa"
	"kivati/internal/kernel"
	"kivati/internal/trace"
)

// Costs is the virtual-time cost model, in ticks.
type Costs struct {
	Instr        uint64 // one instruction
	SyscallEnter uint64 // kernel domain crossing
	UserLibCheck uint64 // annotation handled in user space
	Trap         uint64 // watchpoint trap delivery + handling
	TimerInt     uint64 // timer interrupt
	Quantum      uint64 // scheduling quantum (timer period)
	// AccessCheck, when nonzero, charges this many ticks per committed
	// memory access. It models the per-access software instrumentation of
	// testing systems like AVIO/CTrigger (the related-work baseline the
	// paper contrasts with: 15x-65x slowdowns without hardware support).
	AccessCheck uint64
}

// DefaultCosts returns the calibrated cost model. The crossing/instruction
// ratio (~150x) matches the order of magnitude of a syscall on the paper's
// Core 2 hardware.
func DefaultCosts() Costs {
	return Costs{
		Instr:        1,
		SyscallEnter: 150,
		UserLibCheck: 80,
		Trap:         250,
		TimerInt:     15,
		Quantum:      500,
	}
}

// RequestConfig drives an open-loop request generator for server workloads
// (Webstone/TPC-W analogs): requests arrive with exponential interarrival
// times, worker threads recv() them, and send() completes them, recording
// the latency.
type RequestConfig struct {
	MeanInterarrival uint64 // mean ticks between arrivals
	Count            int    // total requests to generate
}

// DispatchMode selects the interpreter's execution tier.
type DispatchMode int

const (
	// DispatchAuto (the default) uses the basic-block fast path whenever
	// it is provably equivalent to step-at-a-time execution and demotes
	// otherwise: a schedule policy is injected, debug tracing is on, or a
	// per-access cost is charged. Within Auto the machine still demotes
	// dynamically whenever kernel activity (events, timers, scheduling) is
	// due; armed watchpoints do not demote — blocks whose static footprint
	// is disjoint from the armed registers run unchecked, the rest run
	// with per-access pre-checks (see fastpath.go).
	DispatchAuto DispatchMode = iota
	// DispatchStep forces the legacy one-instruction-at-a-time loop.
	DispatchStep
	// DispatchFast uses the fast path even under a schedule policy. This
	// is safe — no scheduling decision point can occur inside a fast
	// window, because a window never frees a core while the run queue is
	// non-empty — and is what lets recorded schedules replay on the fast
	// path (see TestFastPathReplay).
	DispatchFast
)

// Config parameterizes a machine.
type Config struct {
	Cores    int
	Seed     int64
	MaxTicks uint64 // stop after this many ticks (0 = no limit)
	Costs    Costs
	Requests *RequestConfig
	// Policy, if non-nil, replaces the built-in seeded scheduler
	// randomization: it is consulted at every decision point (a free core
	// with two or more runnable threads) and fully determines the
	// interleaving. See SchedulePolicy.
	Policy SchedulePolicy
	// Debug, if non-nil, receives a line per scheduling/kernel event.
	Debug io.Writer
	// Dispatch selects the execution tier (see DispatchMode).
	Dispatch DispatchMode
	// Snapshots enables copy-on-write snapshot support: dirty-page
	// tracking in the store path plus a draw-counting RNG source, the
	// state Machine.Snapshot/Restore need. Off by default; the tracking
	// costs one branch per store.
	Snapshots bool
}

type threadState int

const (
	stRunnable threadState = iota
	stRunning
	stBlocked
	stDone
)

// Thread is one kernel-scheduled thread.
type Thread struct {
	ID          int
	Regs        [isa.NumRegs]int64
	PC          uint32
	State       threadState
	Block       kernel.BlockKind
	WakeAt      uint64
	EpochTarget uint64
	Depth       int
	LastInstr   uint32
	OnCore      int // -1 when not running
	Fault       string
}

// Core is one CPU core with its own watchpoint register file.
type Core struct {
	ID        int
	WP        *hw.RegisterFile
	Cur       *Thread
	BusyUntil uint64
	NextTimer uint64

	// Fixed access-recording buffer for the instruction in flight (no
	// instruction performs more than two memory accesses). Owned by
	// Machine.rec / Machine.step; reset at the top of each step.
	accs        [2]access
	nacc        int
	trapAborted bool

	// Watchpoint-aware fast path state: fastLeft counts the instructions
	// still covered by the core's current block-edge decision, fastChecked
	// is that decision (per-access checks required), and fastMerge is the
	// checked-block merge budget — block edges that inherit the previous
	// checked decision without a fresh register-file scan (counted as
	// Demotions.CheckedOverlap). The decision is stamped with the thread it
	// was made for and the register file's mutation count at decision time
	// (fastDecTID/fastDecMuts); window admission keeps an open decision only
	// while both still match (see resumeOrResetFast), so a decision point
	// that re-picks the same thread under an unchanged register file extends
	// the open superstep instead of re-deciding. All five fields are part of
	// snapshots — a resumed run must make the identical keep/reset choices.
	fastLeft    uint16
	fastChecked bool
	fastMerge   uint8
	fastDecTID  int
	fastDecMuts uint64

	// Cached relevant-window summary for blockChecked, keyed by
	// (wpCacheTID, wpCacheMuts); see Machine.relevantWindow. Pure derived
	// state: never snapshotted, invalidated on Restore.
	wpCacheTID       int
	wpCacheMuts      uint64
	wpRelCount       int
	wpRelLo, wpRelHi uint32
}

// eventKind discriminates pending timer events. All kernel- and
// machine-originated events are plain data (evWake/evWPTimeout/evArrival)
// so a Snapshot can capture and a Restore can replay the pending queue on
// any machine; evFn carries an opaque closure (used only by debug/tooling
// hooks such as the whitelist-reload trainer) and makes a machine
// unsnapshottable while pending.
type eventKind uint8

const (
	evFn        eventKind = iota
	evWake                // a = thread ID: wake a Pause/Sleep-blocked thread
	evWPTimeout           // a = watchpoint index, b = generation: kernel.TimeoutWP
	evArrival             // request-generator arrival
)

type event struct {
	tick uint64
	seq  uint64
	kind eventKind
	a, b uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].tick != h[j].tick {
		return h[i].tick < h[j].tick
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Machine is the virtual machine.
type Machine struct {
	Bin   *compile.Binary
	K     *kernel.Kernel
	Stats *kernel.Stats
	Mem   []byte

	cfg      Config
	clock    uint64
	rng      *rand.Rand
	threads  []*Thread
	cores    []*Core
	runq     []*Thread
	events   eventHeap
	eventSeq uint64

	decoded []isa.Instr // indexed by PC; Len==0 means not an instruction start

	// blockLen[pc] is the number of instructions the fast path may execute
	// starting at pc without leaving straight-line code: 0 for pcs the fast
	// path must not enter (SYS, HLT, non-instruction bytes), 1 for control
	// flow, else 1 + blockLen[next pc]. Built once in New from the decoded
	// stream.
	blockLen []uint16
	// execKind[pc] is the fast interpreter's precomputed dispatch kind for
	// the instruction at pc (ekNone for everything the fast path refuses),
	// so execFast jumps straight to the handler instead of re-classifying
	// opcode ranges per retirement. Built alongside blockLen.
	execKind []uint8
	fastOK   bool // config admits the fast path at all (computed once)

	// fps[pc] is the static address footprint of the straight-line run the
	// fast path may retire starting at pc (the blockLen[pc] instructions) —
	// the disjointness oracle blockChecked tests against the armed window.
	// Taken from the Binary when the compiler produced it, recomputed
	// otherwise; never shared mutation-wise with the Binary (harness pools
	// share Binaries across machines).
	fps []isa.Footprint

	// Fast-path telemetry. Kept off kernel.Stats so Stats stays
	// byte-identical between dispatch modes (the differential gate).
	fastInstrs  uint64 // instructions retired by the fast path
	fastWindows uint64 // fast windows executed
	demotions   Demotions

	// Decision-point cost accounting (also outside kernel.Stats).
	decisions    uint64 // scheduler decision points (free core, ≥2 runnable)
	samePickCont uint64 // window boundaries that kept the open block decision
	deltaArms    uint64 // register-file adoptions resolved incrementally
	fullArms     uint64 // adoptions that fell back to the full-table copy

	fastCores  []*Core // scratch: cores active in the current window
	fastCounts []int   // scratch: per-core instructions executed this window

	curCore *Core // core whose thread is currently executing (for EpochChanged)

	schedSeq    uint64 // decision points consumed so far (policy runs only)
	runnableBuf []int  // scratch for SchedPoint.Runnable, reused across decisions

	// server workload state
	reqArrivals map[int]uint64
	reqQueue    []int
	reqWaiters  []*Thread
	reqMade     int

	// results
	Output    []int64
	Latencies []uint64
	Faults    []string
	stopped   bool
	reason    string

	epochWaiters bool // any thread blocked on epoch/pause (cheap gate)
	// epochBlocked counts the threads in that state, so the kernel-entry
	// waiter checks return without scanning the thread table when no one
	// can possibly wake. Derived state: maintained by Suspend/Resume,
	// recomputed on Restore.
	epochBlocked int

	// coresBehind is set by EpochChanged whenever the canonical watchpoint
	// state advances and cleared once every core has adopted it; while
	// false, the Run loop skips the per-iteration idle-core adoption scan
	// (lazy cross-core propagation batched at window edges).
	coresBehind bool

	// Copy-on-write snapshot support (snapshot.go). memTrack gates the
	// dirty-page bookkeeping in storeRaw; shadow[p] is the immutable copy
	// of page p as of the last Snapshot/Restore (nil = never captured) and
	// pageDirty[p] records writes since then. rsrc is the draw-counting
	// RNG source that makes the rng state restorable.
	memTrack  bool
	shadow    [][]byte
	pageDirty []bool
	rsrc      *countingSource

	// Per-decision access-segment recording for DPOR (segment.go). segLimit
	// is the number of decision-delimited segments to record (0 = off).
	segLimit int
	segs     []Segment
	seg      Segment // segment currently being accumulated
}

// New creates a machine running bin under kernel k. The kernel's Machine is
// attached automatically.
func New(bin *compile.Binary, k *kernel.Kernel, cfg Config) (*Machine, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = 2
	}
	if cfg.Costs.Instr == 0 {
		// Partial cost structs (e.g. only AccessCheck set for the
		// software-monitor baseline) inherit the calibrated defaults.
		ac := cfg.Costs.AccessCheck
		cfg.Costs = DefaultCosts()
		cfg.Costs.AccessCheck = ac
	}
	if cfg.Costs.Quantum == 0 {
		cfg.Costs.Quantum = 1000
	}
	m := &Machine{
		Bin:         bin,
		K:           k,
		Stats:       k.Stats,
		Mem:         make([]byte, compile.MemSize),
		cfg:         cfg,
		reqArrivals: map[int]uint64{},
	}
	if cfg.Snapshots {
		m.rsrc = newCountingSource(cfg.Seed)
		m.rng = rand.New(m.rsrc)
	} else {
		m.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	for addr, v := range bin.InitMem {
		m.storeRaw(addr, 8, uint64(v))
	}
	// Pre-decode the binary for fast dispatch.
	decoded, starts, err := isa.DecodeProgram(bin.Code)
	if err != nil {
		return nil, fmt.Errorf("vm: %w", err)
	}
	m.decoded = decoded
	m.buildBlockLen(starts)
	// Static block footprints for the watchpoint-aware fast path: use the
	// compiler's table when present, otherwise (hand-assembled binaries)
	// compute one here. The table is read-only from this machine's point of
	// view, so sharing the Binary's slice across machines is safe.
	m.fps = bin.Footprints
	if m.fps == nil {
		fps, err := compile.Footprints(bin.Code)
		if err != nil {
			return nil, fmt.Errorf("vm: %w", err)
		}
		m.fps = fps
	}
	// The fast path is admissible at all only when the configuration
	// cannot observe per-instruction machine activity: no per-access cost
	// charging, no debug tracing, and no schedule policy — unless
	// DispatchFast asserts the policy-compatible fast path (see
	// DispatchMode). Within an admissible run, trySuperstep still demotes
	// dynamically per window.
	m.fastOK = cfg.Dispatch != DispatchStep &&
		cfg.Costs.AccessCheck == 0 &&
		cfg.Debug == nil &&
		(cfg.Dispatch == DispatchFast || cfg.Policy == nil)
	for i := 0; i < cfg.Cores; i++ {
		c := &Core{
			ID:         i,
			WP:         hw.NewRegisterFile(k.Cfg.NumWatchpoints),
			NextTimer:  cfg.Costs.Quantum,
			fastDecTID: -1,
			wpCacheTID: -1,
		}
		m.cores = append(m.cores, c)
	}
	k.SetMachine(m)
	if bin.Annotated != nil {
		k.SetARInfo(bin.Annotated.ByID)
	}
	if k.Symbolize == nil {
		k.Symbolize = func(pc uint32) int {
			if pos, ok := bin.PosAt(pc); ok {
				return pos.Line
			}
			return 0
		}
	}
	if cfg.Requests != nil && cfg.Requests.Count > 0 {
		m.scheduleArrival()
	}
	if cfg.Snapshots {
		// Dirty tracking starts after InitMem: pages never captured by a
		// Snapshot are copied wholesale regardless of their dirty bit.
		m.shadow = make([][]byte, numPages)
		m.pageDirty = make([]bool, numPages)
		m.memTrack = true
	}
	return m, nil
}

// Start creates a thread executing the named function with one argument
// (placed in R8 per the calling convention).
func (m *Machine) Start(fn string, arg int64) (int, error) {
	entry, ok := m.Bin.Funcs[fn]
	if !ok {
		return -1, fmt.Errorf("vm: no function %q", fn)
	}
	return m.startAt(entry, arg)
}

func (m *Machine) startAt(entry uint32, arg int64) (int, error) {
	tid := len(m.threads)
	if tid >= compile.MaxThreads {
		return -1, fmt.Errorf("vm: thread limit (%d) reached", compile.MaxThreads)
	}
	t := &Thread{ID: tid, PC: entry, OnCore: -1}
	t.Regs[8] = arg
	sp := StackTopFor(tid)
	sp -= 8
	m.storeRaw(sp, 8, uint64(m.Bin.ExitStub))
	t.Regs[isa.RegSP] = int64(sp)
	t.Regs[isa.RegFP] = int64(sp)
	m.threads = append(m.threads, t)
	m.runq = append(m.runq, t)
	return tid, nil
}

// StackTopFor returns the initial stack pointer of a thread.
func StackTopFor(tid int) uint32 { return compile.StackTop(tid) }

// Thread returns thread tid (for tests and tools).
func (m *Machine) Thread(tid int) *Thread { return m.threads[tid] }

// NumThreads returns the number of threads ever created.
func (m *Machine) NumThreads() int { return len(m.threads) }

// Demotions counts, by reason, the decisions that kept work off the
// unchecked fast path, so a residency regression is diagnosable from a
// bench row rather than just visible in the aggregate percentage. Like the
// other fast-path telemetry it lives outside kernel.Stats (which must stay
// byte-identical across dispatch modes).
// Zero counters are omitted from JSON: a vanilla (watchpoint-free) run can
// only ever demote on timer edges, and its bench rows used to carry four
// always-zero fields as noise.
type Demotions struct {
	// ArmedOverlap: basic blocks executed in checked mode because their
	// static footprint may overlap an armed register.
	ArmedOverlap uint64 `json:"armed_overlap,omitempty"`
	// Unbounded: basic blocks executed in checked mode because their
	// footprint is unbounded (indirect/pointer access the value-range
	// analysis could not bound, untracked SP/FP).
	Unbounded uint64 `json:"unbounded,omitempty"`
	// CheckedOverlap: basic blocks that inherited the previous block's
	// checked decision through the merge budget instead of re-scanning the
	// register file — overlapping-footprint runs amortizing the per-block
	// decision.
	CheckedOverlap uint64 `json:"checked_overlap,omitempty"`
	// TimerEdge: superstep windows refused because a timer interrupt or
	// event was already due at window start.
	TimerEdge uint64 `json:"timer_edge,omitempty"`
	// WouldTrap: checked-mode accesses that matched an armed register; the
	// instruction replayed on the legacy path, which delivered the trap.
	WouldTrap uint64 `json:"would_trap,omitempty"`
}

// Result summarizes a run.
type Result struct {
	Stats      *kernel.Stats
	Violations []trace.Violation
	Output     []int64
	Latencies  []uint64
	Faults     []string
	Reason     string // "completed", "max-ticks", "stopped", "deadlock"
	Ticks      uint64
	// Snapshot holds the final values of the globals a caller requested
	// via core.RunConfig.SnapshotVars (nil otherwise).
	Snapshot map[string]int64
	// FastInstructions / FastWindows report fast-path residency: how many
	// instructions retired on the basic-block fast path and in how many
	// superstep windows. They live here, not in Stats, so Stats stays
	// byte-identical across dispatch modes.
	FastInstructions uint64
	FastWindows      uint64
	// Demotions breaks down why work left (or never reached) the unchecked
	// fast path; see the Demotions type.
	Demotions Demotions
	// Decision-point cost accounting: Decisions counts scheduler decision
	// points (a free core with two or more runnable threads);
	// SamePickContinues counts superstep-window boundaries that kept the
	// open block decision (crossings avoided); DeltaArms/FullArms split
	// watchpoint adoptions into incremental delta applications vs
	// full-table copies. All telemetry outside the bit-identical gate.
	Decisions         uint64
	SamePickContinues uint64
	DeltaArms         uint64
	FullArms          uint64
	// MemHash is the FNV-1a hash of final data memory, filled only when
	// the caller requested it (core.RunConfig.HashMemory).
	MemHash uint64
}

// Run executes until all threads finish, MaxTicks elapses, a violation
// callback requests a stop, or the machine deadlocks.
func (m *Machine) Run() *Result {
	for !m.stopped {
		// Fire due events.
		for len(m.events) > 0 && m.events[0].tick <= m.clock {
			ev := heap.Pop(&m.events).(event)
			m.fire(ev)
		}
		if m.K.Log.StopRequested() {
			m.reason = "stopped"
			break
		}
		if m.cfg.MaxTicks > 0 && m.clock >= m.cfg.MaxTicks {
			m.reason = "max-ticks"
			break
		}

		// Idle cores sit in the kernel: they adopt the canonical
		// watchpoint state immediately. The scan is batched behind the
		// coresBehind flag — EpochChanged raises it whenever the canonical
		// state advances, and it clears once every core has caught up, so
		// a run with no watchpoint churn never pays the per-iteration loop.
		if m.coresBehind {
			behind := false
			for _, c := range m.cores {
				if c.WP.Epoch == m.K.Canon.Epoch {
					continue
				}
				if c.Cur == nil && c.BusyUntil <= m.clock {
					m.adoptCanon(c)
				} else {
					behind = true
				}
			}
			m.coresBehind = behind
		}
		if m.epochWaiters {
			m.checkEpochWaiters()
		}

		// Tiered execution: try to retire a whole trap-free, syscall-free,
		// event-free window of instructions in one superstep before falling
		// back to the one-instruction-at-a-time loop below.
		if m.fastOK {
			m.trySuperstep()
		}

		stepped := false
		deferred := false
		for _, c := range m.cores {
			if c.BusyUntil > m.clock {
				continue
			}
			// Timer interrupt: kernel entry — adopt watchpoint state,
			// preempt.
			if m.clock >= c.NextTimer {
				c.NextTimer = m.clock + m.cfg.Costs.Quantum
				if c.Cur != nil {
					m.Stats.TimerInterrupts++
					m.adoptCanon(c)
					m.checkEpochWaiters()
					m.preempt(c)
					c.BusyUntil = m.clock + m.cfg.Costs.TimerInt
					stepped = true
					continue
				}
			}
			if c.Cur == nil {
				m.schedule(c)
				// On a single-core fast-path machine, hand a freshly
				// scheduled thread's first instruction to the next superstep
				// window instead of paying a legacy step here: re-entering
				// the loop at the same clock lets trySuperstep retire the
				// whole quantum in bulk. Timing is identical — the window
				// starts at this clock, so round 0 commits exactly where
				// step() would have, and with one core nothing else can run
				// in between. (With several cores the deferred instruction
				// could reorder against a same-tick legacy step on a later
				// core, so multi-core keeps the schedule-then-step path.)
				if m.fastOK && c.Cur != nil && len(m.cores) == 1 {
					deferred = true
					continue
				}
			}
			if c.Cur != nil {
				m.step(c)
				stepped = true
			}
		}
		if deferred {
			// The scheduled thread guarantees progress next iteration: the
			// superstep takes the window, or (if its first block is not
			// fast-eligible) the core loop legacy-steps it at this same
			// clock.
			continue
		}

		if m.allDone() {
			m.reason = "completed"
			break
		}

		// Advance the clock to the next interesting moment.
		next := ^uint64(0)
		for _, c := range m.cores {
			if c.Cur != nil || c.BusyUntil > m.clock {
				if c.BusyUntil > m.clock && c.BusyUntil < next {
					next = c.BusyUntil
				}
			}
		}
		if len(m.runq) > 0 {
			// A free core can pick this up next iteration.
			for _, c := range m.cores {
				if c.Cur == nil && c.BusyUntil <= m.clock {
					next = m.clock + 1
					break
				}
			}
		}
		if len(m.events) > 0 && m.events[0].tick < next {
			next = m.events[0].tick
		}
		if next == ^uint64(0) {
			if stepped {
				m.clock++
				continue
			}
			m.reason = "deadlock"
			break
		}
		if next <= m.clock {
			next = m.clock + 1
		}
		m.clock = next
	}
	if m.reason == "" {
		m.reason = "stopped"
	}
	m.Stats.Ticks = m.clock
	return &Result{
		Stats:             m.Stats,
		Violations:        m.K.Log.Violations,
		Output:            m.Output,
		Latencies:         m.Latencies,
		Faults:            m.Faults,
		Reason:            m.reason,
		Ticks:             m.clock,
		FastInstructions:  m.fastInstrs,
		FastWindows:       m.fastWindows,
		Demotions:         m.demotions,
		Decisions:         m.decisions,
		SamePickContinues: m.samePickCont,
		DeltaArms:         m.deltaArms,
		FullArms:          m.fullArms,
	}
}

// fire dispatches one due event by kind. Wakes reproduce the lenient
// SetWakeAt semantics exactly: a thread that was already woken (or blocked
// for another reason) since the timer was armed is left alone.
func (m *Machine) fire(ev event) {
	if m.segRecording() {
		// Timer events are kernel activity interleaved into the current
		// inter-decision segment; their effects are not captured by the
		// access stream, so the segment conflicts with everything.
		m.seg.Global = true
	}
	switch ev.kind {
	case evWake:
		t := m.threads[int(ev.a)]
		if t.State == stBlocked && (t.Block == kernel.BlockPause || t.Block == kernel.BlockSleep) {
			t.WakeAt = 0
			m.tryWake(t)
		}
	case evWPTimeout:
		m.K.TimeoutWP(int(ev.a), ev.b)
	case evArrival:
		m.arrive()
	default:
		ev.fn()
	}
}

func (m *Machine) allDone() bool {
	for _, t := range m.threads {
		if t.State != stDone {
			return false
		}
	}
	return len(m.threads) > 0
}

// schedule assigns the next runnable thread to core c. Under a Config
// Policy the choice among multiple runnable threads is the policy's;
// otherwise, with small probability the scheduler picks a random runnable
// thread instead of the queue head, so different seeds explore different
// interleavings.
func (m *Machine) schedule(c *Core) {
	if len(m.runq) == 0 {
		return
	}
	i := 0
	if len(m.runq) > 1 {
		m.decisions++
		if m.cfg.Policy != nil {
			// Decision point: close the access segment accumulated since
			// the previous decision before consulting the policy, so a
			// snapshot taken inside Pick captures a consistent segment
			// count (see segment.go).
			if m.segRecording() {
				m.closeSegment()
			}
			m.runnableBuf = m.runnableBuf[:0]
			for _, t := range m.runq {
				m.runnableBuf = append(m.runnableBuf, t.ID)
			}
			i = m.cfg.Policy.Pick(SchedPoint{
				Seq:      m.schedSeq,
				Tick:     m.clock,
				Core:     c.ID,
				Runnable: m.runnableBuf,
			})
			m.schedSeq++
			if i < 0 || i >= len(m.runq) {
				i = 0
			}
			if m.segRecording() {
				m.seg.Thread = m.runq[i].ID
			}
		} else if m.rng.Intn(4) == 0 {
			i = m.rng.Intn(len(m.runq))
		}
	} else if m.segRecording() {
		// A forced assignment (single runnable thread) changes the running
		// thread without consuming a decision, so the current segment spans
		// more than one thread's execution: treat it as conflicting with
		// everything rather than modeling multi-thread segments.
		m.seg.Global = true
	}
	t := m.runq[i]
	m.runq = append(m.runq[:i], m.runq[i+1:]...)
	t.State = stRunning
	t.OnCore = c.ID
	c.Cur = t
}

func (m *Machine) preempt(c *Core) {
	t := c.Cur
	if t == nil {
		return
	}
	t.State = stRunnable
	t.OnCore = -1
	c.Cur = nil
	m.runq = append(m.runq, t)
}

// tracef emits a debug trace line when tracing is enabled.
func (m *Machine) tracef(format string, args ...interface{}) {
	if m.cfg.Debug != nil {
		fmt.Fprintf(m.cfg.Debug, "[%d] %s\n", m.clock, fmt.Sprintf(format, args...))
	}
}

// fault kills a thread with an error.
func (m *Machine) fault(t *Thread, format string, args ...interface{}) {
	msg := fmt.Sprintf("thread %d at pc %#x: %s", t.ID, t.LastInstr, fmt.Sprintf(format, args...))
	t.Fault = msg
	m.Faults = append(m.Faults, msg)
	m.exitThread(t)
}

func (m *Machine) exitThread(t *Thread) {
	if m.segRecording() {
		m.seg.Global = true
	}
	t.State = stDone
	if t.OnCore >= 0 {
		m.cores[t.OnCore].Cur = nil
		t.OnCore = -1
	}
	m.K.ThreadExited(t.ID)
}

func (m *Machine) scheduleArrival() {
	gap := uint64(m.rng.ExpFloat64() * float64(m.cfg.Requests.MeanInterarrival))
	if gap == 0 {
		gap = 1
	}
	m.pushEvent(event{tick: m.clock + gap, kind: evArrival})
}

func (m *Machine) arrive() {
	if m.reqMade >= m.cfg.Requests.Count {
		return
	}
	id := m.reqMade
	m.reqMade++
	m.reqArrivals[id] = m.clock
	if len(m.reqWaiters) > 0 {
		w := m.reqWaiters[0]
		m.reqWaiters = m.reqWaiters[1:]
		w.Regs[0] = int64(id)
		m.Resume(w.ID)
	} else {
		m.reqQueue = append(m.reqQueue, id)
	}
	if m.reqMade < m.cfg.Requests.Count {
		m.scheduleArrival()
	}
}

// RequestsServed returns how many requests completed.
func (m *Machine) RequestsServed() int { return len(m.Latencies) }
