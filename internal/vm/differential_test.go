package vm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"kivati/internal/compile"
	"kivati/internal/kernel"
	"kivati/internal/minic"
)

// Differential testing: random single-threaded MiniC programs are executed
// three ways — by a reference tree-walking interpreter over the AST, by the
// VM on the vanilla binary, and by the VM on the fully-instrumented binary —
// and all three print() streams must agree. This pins down the parser, the
// annotator (which must never change semantics), the compiler and the
// machine against each other.

// progGen builds a random program.
type progGen struct {
	rng     *rand.Rand
	b       strings.Builder
	globals []string
	locals  []string
	arrays  []string // global arrays, all of size 8
	depth   int
	stmts   int
}

func (g *progGen) pick(vars []string) string { return vars[g.rng.Intn(len(vars))] }

// expr emits a random integer expression of bounded depth using declared
// variables. Division and modulus get a nonzero guard (|1).
func (g *progGen) expr(d int) string {
	if d <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprint(g.rng.Intn(200) - 100)
		case 1:
			if len(g.locals) > 0 && g.rng.Intn(2) == 0 {
				return g.pick(g.locals)
			}
			return g.pick(g.globals)
		default:
			return fmt.Sprintf("%s[%d]", g.pick(g.arrays), g.rng.Intn(8))
		}
	}
	a, b := g.expr(d-1), g.expr(d-1)
	switch g.rng.Intn(12) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		return fmt.Sprintf("(%s / ((%s & 7) | 1))", a, b)
	case 4:
		return fmt.Sprintf("(%s %% ((%s & 7) | 1))", a, b)
	case 5:
		return fmt.Sprintf("(%s & %s)", a, b)
	case 6:
		return fmt.Sprintf("(%s | %s)", a, b)
	case 7:
		return fmt.Sprintf("(%s ^ %s)", a, b)
	case 8:
		return fmt.Sprintf("(%s << (%s & 3))", a, b)
	case 9:
		return fmt.Sprintf("(%s >> (%s & 3))", a, b)
	case 10:
		return fmt.Sprintf("(%s < %s)", a, b)
	default:
		return fmt.Sprintf("(%s == %s)", a, b)
	}
}

func (g *progGen) line(depth int, format string, args ...interface{}) {
	g.b.WriteString(strings.Repeat("    ", depth))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteString("\n")
	g.stmts++
}

// block emits a random statement block.
func (g *progGen) block(depth, n int) {
	for i := 0; i < n; i++ {
		switch g.rng.Intn(10) {
		case 0, 1, 2:
			g.line(depth, "%s = %s;", g.pick(g.globals), g.expr(2))
		case 3, 4:
			if len(g.locals) > 0 {
				g.line(depth, "%s = %s;", g.pick(g.locals), g.expr(2))
			} else {
				g.line(depth, "%s = %s;", g.pick(g.globals), g.expr(2))
			}
		case 5:
			g.line(depth, "%s[%d] = %s;", g.pick(g.arrays), g.rng.Intn(8), g.expr(2))
		case 6:
			g.line(depth, "print(%s);", g.expr(2))
		case 7:
			g.line(depth, "if (%s) {", g.expr(1))
			g.block(depth+1, 1+g.rng.Intn(2))
			if g.rng.Intn(2) == 0 {
				g.line(depth, "} else {")
				g.block(depth+1, 1+g.rng.Intn(2))
			}
			g.line(depth, "}")
		case 8:
			// A bounded loop over a fresh counter (always terminates).
			ctr := fmt.Sprintf("c%d", g.stmts)
			g.line(depth, "int %s;", ctr)
			g.line(depth, "%s = 0;", ctr)
			g.line(depth, "while (%s < %d) {", ctr, 1+g.rng.Intn(4))
			g.block(depth+1, 1)
			g.line(depth+1, "%s = %s + 1;", ctr, ctr)
			g.line(depth, "}")
		default:
			g.line(depth, "print(%s);", g.expr(1))
		}
	}
}

func generateProgram(seed int64) string {
	g := &progGen{rng: rand.New(rand.NewSource(seed))}
	ng := 2 + g.rng.Intn(3)
	for i := 0; i < ng; i++ {
		name := fmt.Sprintf("g%d", i)
		g.globals = append(g.globals, name)
		g.line(0, "int %s = %d;", name, g.rng.Intn(50))
	}
	na := 1 + g.rng.Intn(2)
	for i := 0; i < na; i++ {
		name := fmt.Sprintf("a%d", i)
		g.arrays = append(g.arrays, name)
		g.line(0, "int %s[8];", name)
	}
	g.line(0, "void main() {")
	nl := 1 + g.rng.Intn(3)
	for i := 0; i < nl; i++ {
		name := fmt.Sprintf("l%d", i)
		g.locals = append(g.locals, name)
		g.line(1, "int %s = %d;", name, g.rng.Intn(20))
	}
	g.block(1, 4+g.rng.Intn(6))
	g.line(1, "print(%s);", g.expr(2))
	g.line(0, "}")
	return g.b.String()
}

// refEval is the reference interpreter: a direct tree walk over the AST with
// the same arithmetic semantics as the VM (64-bit wrap, shifts masked to 6
// bits, C-style truncating division).
type refEval struct {
	globals map[string]int64
	arrays  map[string][]int64
	locals  map[string]int64
	out     []int64
	steps   int
}

func (r *refEval) expr(x minic.Expr) int64 {
	switch e := x.(type) {
	case *minic.IntLit:
		return e.V
	case *minic.Ident:
		if v, ok := r.locals[e.Name]; ok {
			return v
		}
		return r.globals[e.Name]
	case *minic.Index:
		idx := r.expr(e.Idx)
		arr := r.arrays[e.Name]
		if idx < 0 || idx >= int64(len(arr)) {
			panic("ref: index out of bounds")
		}
		return arr[idx]
	case *minic.Unary:
		switch e.Op {
		case "-":
			return -r.expr(e.X)
		case "!":
			if r.expr(e.X) == 0 {
				return 1
			}
			return 0
		}
		panic("ref: unary " + e.Op)
	case *minic.Binary:
		a := r.expr(e.X)
		b := r.expr(e.Y)
		switch e.Op {
		case "+":
			return a + b
		case "-":
			return a - b
		case "*":
			return a * b
		case "/":
			return a / b
		case "%":
			return a % b
		case "&":
			return a & b
		case "|":
			return a | b
		case "^":
			return a ^ b
		case "<<":
			return a << (uint64(b) & 63)
		case ">>":
			return int64(uint64(a) >> (uint64(b) & 63))
		case "==":
			return b2i(a == b)
		case "!=":
			return b2i(a != b)
		case "<":
			return b2i(a < b)
		case "<=":
			return b2i(a <= b)
		case ">":
			return b2i(a > b)
		case ">=":
			return b2i(a >= b)
		case "&&":
			return b2i(a != 0 && b != 0)
		case "||":
			return b2i(a != 0 || b != 0)
		}
		panic("ref: binary " + e.Op)
	case *minic.Call:
		if e.Name == "print" {
			v := r.expr(e.Args[0])
			r.out = append(r.out, v)
			return 0
		}
		panic("ref: call " + e.Name)
	}
	panic(fmt.Sprintf("ref: expr %T", x))
}

func (r *refEval) assign(lhs minic.Expr, v int64) {
	switch e := lhs.(type) {
	case *minic.Ident:
		if _, ok := r.locals[e.Name]; ok {
			r.locals[e.Name] = v
			return
		}
		r.globals[e.Name] = v
	case *minic.Index:
		idx := r.expr(e.Idx)
		arr := r.arrays[e.Name]
		if idx < 0 || idx >= int64(len(arr)) {
			panic("ref: store out of bounds")
		}
		arr[idx] = v
	default:
		panic("ref: bad lvalue")
	}
}

func (r *refEval) blockStmts(b *minic.Block) {
	for _, s := range b.Stmts {
		r.stmt(s)
	}
}

func (r *refEval) stmt(s minic.Stmt) {
	r.steps++
	if r.steps > 1_000_000 {
		panic("ref: too many steps")
	}
	switch st := s.(type) {
	case *minic.DeclStmt:
		v := int64(0)
		if st.Decl.Init != nil {
			v = r.expr(st.Decl.Init)
		}
		r.locals[st.Decl.Name] = v
	case *minic.AssignStmt:
		r.assign(st.LHS, r.expr(st.RHS))
	case *minic.IfStmt:
		if r.expr(st.Cond) != 0 {
			r.blockStmts(st.Then)
		} else if st.Else != nil {
			r.blockStmts(st.Else)
		}
	case *minic.WhileStmt:
		for r.expr(st.Cond) != 0 {
			r.blockStmts(st.Body)
		}
	case *minic.ExprStmt:
		r.expr(st.X)
	case *minic.ReturnStmt:
		panic("ref: return in main not supported by the generator")
	}
}

func runReference(t *testing.T, src string) []int64 {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, src)
	}
	r := &refEval{
		globals: map[string]int64{},
		arrays:  map[string][]int64{},
		locals:  map[string]int64{},
	}
	for _, g := range prog.Globals {
		if g.Type.ArrayLen > 0 {
			r.arrays[g.Name] = make([]int64, g.Type.ArrayLen)
			continue
		}
		if g.Init != nil {
			r.globals[g.Name] = g.Init.(*minic.IntLit).V
		} else {
			r.globals[g.Name] = 0
		}
	}
	r.blockStmts(prog.Func("main").Body)
	return r.out
}

func runVM(t *testing.T, src string, copts compile.Options, kcfg kernel.Config) []int64 {
	t.Helper()
	bin := buildSrc(t, src, copts)
	k := kernel.New(kcfg, nil, nil, nil)
	m, err := New(bin, k, Config{Cores: 2, Seed: 1, MaxTicks: 500_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start("main", 0); err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if len(res.Faults) > 0 {
		t.Fatalf("faults: %v\nsource:\n%s", res.Faults, src)
	}
	if res.Reason != "completed" {
		t.Fatalf("reason %q\nsource:\n%s", res.Reason, src)
	}
	return res.Output
}

func sameOutput(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDifferentialRandomPrograms cross-checks 120 random programs.
func TestDifferentialRandomPrograms(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 20
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		src := generateProgram(seed)
		want := runReference(t, src)

		vanilla := runVM(t, src, compile.Options{}, kernel.Config{NumWatchpoints: 4})
		if !sameOutput(want, vanilla) {
			t.Fatalf("seed %d: vanilla output %v != reference %v\nsource:\n%s",
				seed, vanilla, want, src)
		}

		base := runVM(t, src, compile.Options{Annotate: true},
			kernel.Config{Opt: kernel.OptBase, NumWatchpoints: 4, TimeoutTicks: 10_000})
		if !sameOutput(want, base) {
			t.Fatalf("seed %d: base-instrumented output %v != reference %v\nsource:\n%s",
				seed, base, want, src)
		}

		opt := runVM(t, src, compile.Options{Annotate: true, ShadowWrites: true},
			kernel.Config{Opt: kernel.OptOptimized, NumWatchpoints: 4,
				TimeoutTicks: 10_000, ShadowDelta: compile.ShadowDelta})
		if !sameOutput(want, opt) {
			t.Fatalf("seed %d: optimized-instrumented output %v != reference %v\nsource:\n%s",
				seed, opt, want, src)
		}
	}
}

// TestDifferentialFewWatchpoints repeats a subset with a single watchpoint:
// heavy missed-AR pressure must not affect semantics either.
func TestDifferentialFewWatchpoints(t *testing.T) {
	for seed := int64(200); seed < 230; seed++ {
		src := generateProgram(seed)
		want := runReference(t, src)
		got := runVM(t, src, compile.Options{Annotate: true},
			kernel.Config{Opt: kernel.OptBase, NumWatchpoints: 1, TimeoutTicks: 5_000})
		if !sameOutput(want, got) {
			t.Fatalf("seed %d: output %v != reference %v\nsource:\n%s", seed, got, want, src)
		}
	}
}
