package vm

import (
	"testing"

	"kivati/internal/kernel"
)

// Trap-before hardware (Table 1: SPARC-class): prevention works without any
// undo machinery — the access is stopped before it commits.

func TestTrapBeforePreventsTornReads(t *testing.T) {
	src := `
int s;
int torn;
int stop;
void poke(int v) {
    s = v;
}
void writer(int x) {
    int i;
    i = 1;
    while (stop == 0) {
        poke(i);
        i = i + 1;
    }
}
void reader(int n) {
    int i;
    int a;
    int b;
    i = 0;
    while (i < 400) {
        a = s;
        b = s;
        if (a != b) {
            torn = torn + 1;
        }
        i = i + 1;
    }
    stop = 1;
    print(torn);
}
void main() {
    spawn(writer, 0);
    reader(400);
}`
	o := defaultRunOpts()
	o.kcfg.TrapBefore = true
	o.mcfg.MaxTicks = 60_000_000
	_, res := run(t, src, o)
	if res.Reason != "completed" {
		t.Fatalf("reason %q", res.Reason)
	}
	s := res.Stats
	if s.Timeouts == 0 && s.BeginRetryGiveUps == 0 && s.MissedARs == 0 && res.Output[0] != 0 {
		t.Errorf("torn = %d, want 0 under before-trap prevention", res.Output[0])
	}
	if s.Traps == 0 && s.Suspensions == 0 {
		t.Error("no traps/suspensions; before-trap path inert")
	}
	// The simplification the paper notes: no undo machinery ever runs.
	if s.BoundaryMismatch != 0 || s.Unreorderable != 0 || s.GuardsArmed != 0 {
		t.Errorf("before-trap mode used undo machinery: %+v", *s)
	}
}

func TestTrapBeforeSemanticsUnchanged(t *testing.T) {
	// Differential spot-check: before-trap instrumentation preserves
	// program semantics on random programs.
	for seed := int64(300); seed < 320; seed++ {
		src := generateProgram(seed)
		want := runReference(t, src)
		got := runVM(t, src, compileOptsAnnotated(),
			kernel.Config{Opt: kernel.OptBase, NumWatchpoints: 4,
				TimeoutTicks: 10_000, TrapBefore: true})
		if !sameOutput(want, got) {
			t.Fatalf("seed %d: output %v != reference %v\nsource:\n%s", seed, got, want, src)
		}
	}
}

func TestTrapBeforeViolationDetection(t *testing.T) {
	o := defaultRunOpts()
	o.kcfg.TrapBefore = true
	o.mcfg.MaxTicks = 30_000_000
	_, res := run(t, figure1Src, o)
	if res.Reason != "completed" {
		t.Fatalf("reason %q", res.Reason)
	}
	if len(res.Violations) == 0 {
		t.Error("before-trap mode detected no violations on the Figure 1 race")
	}
}
