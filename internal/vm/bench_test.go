package vm

import (
	"testing"

	"kivati/internal/annotate"
	"kivati/internal/compile"
	"kivati/internal/kernel"
	"kivati/internal/minic"
)

// Microbenchmarks for the per-decision cost of the scheduler fast path.
//
// Both run the same two-compute-thread program on one core with a short
// quantum, under a schedule policy that makes every quantum edge a real
// decision. BenchmarkContextSwitch always picks the run-queue head — the
// thread that did NOT just run — so every decision pays the full
// context-switch path (preempt, pick, register-file re-arm, fresh block
// decision). BenchmarkDecisionPoint always picks the tail — the thread
// that was just preempted — so nearly every decision is a same-pick
// continuation and the superstep keeps its open block decision across the
// boundary. The gap between the two ns/decision numbers is the cost the
// continuation amortizes away.

func buildBenchBinary(b *testing.B, src string) *compile.Binary {
	b.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		b.Fatalf("Parse: %v", err)
	}
	ap, err := annotate.Annotate(prog)
	if err != nil {
		b.Fatalf("Annotate: %v", err)
	}
	bin, err := compile.Compile(ap, compile.Options{Annotate: true})
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	return bin
}

const benchComputeSrc = `
int sink;
void worker(int n) {
    int i;
    int acc;
    i = 0;
    acc = 0;
    while (i < n) {
        acc = acc + i * 3;
        i = i + 1;
    }
    sink = sink + acc;
}
void main() {
    spawn(worker, 2000000);
    worker(2000000);
}`

// runDecisionBench runs the two-thread compute program to MaxTicks on one
// core under pick, and reports per-decision cost plus the fraction of
// decisions that continued the previous pick.
func runDecisionBench(b *testing.B, pick PolicyFunc, quantum uint64) {
	b.Helper()
	bin := buildBenchBinary(b, benchComputeSrc)
	var decisions, continues uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		k := kernel.New(kernel.Config{
			Mode:           kernel.Prevention,
			Opt:            kernel.OptBase,
			NumWatchpoints: 4,
			TimeoutTicks:   10000,
		}, nil, nil, nil)
		m, err := New(bin, k, Config{
			Cores:    1,
			Seed:     1,
			MaxTicks: 2_000_000,
			Dispatch: DispatchFast,
			Policy:   pick,
		})
		if err != nil {
			b.Fatalf("vm.New: %v", err)
		}
		if _, err := m.Start("main", 0); err != nil {
			b.Fatalf("Start: %v", err)
		}
		m.cfg.Costs.Quantum = quantum
		for _, c := range m.cores {
			c.NextTimer = quantum
		}
		b.StartTimer()
		res := m.Run()
		b.StopTimer()
		if len(res.Faults) > 0 {
			b.Fatalf("fault: %s", res.Faults[0])
		}
		decisions += res.Decisions
		continues += res.SamePickContinues
		b.StartTimer()
	}
	b.StopTimer()
	if decisions > 0 {
		ns := uint64(b.Elapsed().Nanoseconds())
		b.ReportMetric(float64(ns)/float64(decisions), "ns/decision")
		b.ReportMetric(float64(continues)/float64(decisions), "continue-ratio")
	}
}

// BenchmarkContextSwitch: every decision picks the run-queue head — the
// other thread — so every quantum edge is a full context switch.
func BenchmarkContextSwitch(b *testing.B) {
	runDecisionBench(b, func(SchedPoint) int { return 0 }, 200)
}

// BenchmarkDecisionPoint: every decision picks the run-queue tail — the
// thread just preempted — so decisions reduce to same-pick continuations.
func BenchmarkDecisionPoint(b *testing.B) {
	runDecisionBench(b, func(p SchedPoint) int { return len(p.Runnable) - 1 }, 200)
}
