package vm

import (
	"testing"

	"kivati/internal/compile"
	"kivati/internal/kernel"
	"kivati/internal/trace"
	"kivati/internal/whitelist"
)

// figure1Src is the paper's Figure 1 Firefox NSS bug pattern: a
// check-then-assign on a shared pointer without a lock. Two threads race;
// without atomicity both can pass the NULL check and both assign (lost
// update).
const figure1Src = `
int shared_ptr;
int hits;
int lk;
int done;
void racer(int id) {
    int i;
    i = 0;
    while (i < 300) {
        if (shared_ptr == 0) {
            shared_ptr = id;
            lock(lk);
            hits = hits + 1;
            unlock(lk);
        }
        shared_ptr = 0;
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void main() {
    spawn(racer, 1);
    racer(2);
    while (done < 2) {
        yield();
    }
    print(hits);
}
`

func TestFigure1ViolationDetected(t *testing.T) {
	o := defaultRunOpts()
	o.mcfg.MaxTicks = 30_000_000
	_, res := run(t, figure1Src, o)
	if res.Reason != "completed" {
		t.Fatalf("reason = %q, stats = %+v", res.Reason, *res.Stats)
	}
	if len(res.Violations) == 0 {
		t.Fatalf("no violations detected on the Figure 1 race (traps=%d, suspensions=%d)",
			res.Stats.Traps, res.Stats.Suspensions)
	}
	sawSharedPtr := false
	for _, v := range res.Violations {
		if v.Var == "shared_ptr" {
			sawSharedPtr = true
			if v.LocalThread == v.RemoteThread {
				t.Errorf("violation with identical local/remote thread: %v", v)
			}
		}
	}
	if !sawSharedPtr {
		t.Errorf("no violation attributed to shared_ptr: %v", res.Violations[0])
	}
}

// TestPreventionReordersRemoteWrite verifies the undo engine end to end:
// the local thread reads a shared variable twice inside an atomic region; a
// writer thread's interleaving stores are rolled back and re-executed after
// the region, so the two reads always agree unless a timeout released the
// writer early.
func TestPreventionReordersRemoteWrite(t *testing.T) {
	src := `
int s;
int torn;
int stop;
void poke(int v) {
    s = v;
}
void writer(int x) {
    int i;
    i = 1;
    while (stop == 0) {
        poke(i);
        i = i + 1;
    }
}
void reader(int n) {
    int i;
    int a;
    int b;
    i = 0;
    while (i < n) {
        a = s;
        b = s;
        if (a != b) {
            torn = torn + 1;
        }
        i = i + 1;
    }
    stop = 1;
    print(torn);
}
void main() {
    spawn(writer, 0);
    reader(500);
}`
	o := defaultRunOpts()
	o.mcfg.MaxTicks = 60_000_000
	_, res := run(t, src, o)
	if res.Reason != "completed" {
		t.Fatalf("reason = %q stats=%+v", res.Reason, *res.Stats)
	}
	torn := res.Output[0]
	if res.Stats.Timeouts == 0 && res.Stats.BeginRetryGiveUps == 0 &&
		res.Stats.MissedARs == 0 && res.Stats.Unreorderable == 0 && torn != 0 {
		t.Errorf("torn = %d, want 0: prevention must reorder every interleaving write", torn)
	}
	if torn > 20 {
		t.Errorf("torn = %d: too many violations slipped through", torn)
	}
	if res.Stats.Traps == 0 && res.Stats.Suspensions == 0 {
		t.Error("no traps or suspensions; the writer never conflicted?")
	}
}

// TestVanillaTornReads sanity-checks the race is real without Kivati.
func TestVanillaTornReads(t *testing.T) {
	src := `
int s;
int torn;
int stop;
void poke(int v) {
    s = v;
}
void writer(int x) {
    int i;
    i = 1;
    while (stop == 0) {
        poke(i);
        i = i + 1;
    }
}
void reader(int n) {
    int i;
    int a;
    int b;
    i = 0;
    while (i < n) {
        a = s;
        b = s;
        if (a != b) {
            torn = torn + 1;
        }
        i = i + 1;
    }
    stop = 1;
    print(torn);
}
void main() {
    spawn(writer, 0);
    reader(500);
}`
	torn := int64(0)
	for seed := int64(1); seed <= 4; seed++ {
		o := defaultRunOpts()
		o.compile = compile.Options{Annotate: false}
		o.mcfg.Seed = seed
		o.mcfg.MaxTicks = 20_000_000
		_, res := run(t, src, o)
		if res.Reason != "completed" {
			t.Fatalf("seed %d: reason %q", seed, res.Reason)
		}
		torn += res.Output[0]
	}
	if torn == 0 {
		t.Skip("vanilla torn reads did not manifest under 4 seeds")
	}
}

// TestFigure5RequiredViolationTimeout reproduces the paper's Figure 5: the
// local thread's AR contains a wait loop that only the (suspended) remote
// thread can satisfy. The 10 ms timeout must release the remote thread; the
// program completes, and the violation is recorded as not prevented.
func TestFigure5RequiredViolationTimeout(t *testing.T) {
	src := `
int shared;
int flag;
void local(int x) {
    int tmp;
    shared = 0;
    flag = 1;
    while (flag == 1) {
        yield();
    }
    tmp = shared;
    print(tmp);
}
void remote(int v) {
    while (flag != 1) {
        yield();
    }
    shared = v;
    flag = 0;
}
void main() {
    spawn(remote, 42);
    local(0);
}`
	o := defaultRunOpts()
	o.mcfg.MaxTicks = 10_000_000
	_, res := run(t, src, o)
	if res.Reason != "completed" {
		t.Fatalf("required-violation program did not complete: %q (timeout machinery broken?)", res.Reason)
	}
	if len(res.Output) != 1 || res.Output[0] != 42 {
		t.Errorf("local read %v, want [42]: the remote write must eventually land", res.Output)
	}
	if res.Stats.Timeouts == 0 {
		t.Error("no suspension timeouts fired; the remote thread should have been released by timeout")
	}
	// The W-W-R interleaving on shared is non-serializable: it must be
	// recorded, flagged as not prevented.
	sawUnprevented := false
	for _, v := range res.Violations {
		if v.Var == "shared" && !v.Prevented {
			sawUnprevented = true
		}
	}
	if !sawUnprevented {
		t.Logf("violations: %v", res.Violations)
		t.Error("expected an unprevented violation record on `shared`")
	}
}

// TestWhitelistSuppressesMonitoring: whitelisted ARs never enter the kernel
// and never produce violations.
func TestWhitelistSuppressesMonitoring(t *testing.T) {
	o := defaultRunOpts()
	o.kcfg.Opt = kernel.OptSyncVars
	// Whitelist every AR in the program.
	bin := buildSrc(t, figure1Src, o.compile)
	wl := whitelist.New()
	for _, ar := range bin.Annotated.ARs {
		wl.Add(ar.ID)
	}
	o.wl = wl
	o.mcfg.MaxTicks = 30_000_000
	_, res := run(t, figure1Src, o)
	if res.Reason != "completed" {
		t.Fatalf("reason %q", res.Reason)
	}
	if len(res.Violations) != 0 {
		t.Errorf("whitelisted run produced %d violations", len(res.Violations))
	}
	if res.Stats.WhitelistSkips == 0 {
		t.Error("no whitelist skips recorded")
	}
	if res.Stats.BeginKernel != 0 {
		t.Errorf("BeginKernel = %d, want 0 with full whitelist", res.Stats.BeginKernel)
	}
}

// TestNullSyscallDetectsNothing: the ablation mode crosses into the kernel
// but performs no monitoring.
func TestNullSyscallDetectsNothing(t *testing.T) {
	o := defaultRunOpts()
	o.kcfg.Opt = kernel.OptNullSyscall
	o.mcfg.MaxTicks = 30_000_000
	_, res := run(t, figure1Src, o)
	if res.Reason != "completed" {
		t.Fatalf("reason %q", res.Reason)
	}
	if len(res.Violations) != 0 {
		t.Errorf("null-syscall mode detected violations: %d", len(res.Violations))
	}
	if res.Stats.BeginKernel == 0 {
		t.Error("null syscalls should still cross into the kernel")
	}
	if res.Stats.Traps != 0 {
		t.Errorf("null-syscall mode armed watchpoints: %d traps", res.Stats.Traps)
	}
}

// TestOptimizedReducesKernelEntries compares Base against Optimized on a
// realistic lock-disciplined workload (the Table 3/4 effect): the user-space
// library absorbs most annotation crossings, so both kernel entries and
// runtime drop.
func TestOptimizedReducesKernelEntries(t *testing.T) {
	src := `
int shared;
int acc;
int lk;
int done;
void compute(int seedv) {
    int x;
    int j;
    x = seedv;
    j = 0;
    while (j < 20) {
        x = x * 31 + 7;
        j = j + 1;
    }
    lock(lk);
    acc = acc + x;
    unlock(lk);
}
void worker(int n) {
    int i;
    i = 0;
    while (i < n) {
        compute(i);
        lock(lk);
        shared = shared + 1;
        unlock(lk);
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void main() {
    spawn(worker, 60);
    worker(60);
    while (done < 2) {
        yield();
    }
    print(shared);
}`
	runWith := func(opt kernel.OptLevel, shadow bool) *Result {
		o := defaultRunOpts()
		o.kcfg.Opt = opt
		o.compile = compile.Options{Annotate: true, ShadowWrites: shadow}
		o.mcfg.MaxTicks = 120_000_000
		_, res := run(t, src, o)
		if res.Reason != "completed" {
			t.Fatalf("opt %v: reason %q stats %+v", opt, res.Reason, *res.Stats)
		}
		if res.Output[0] != 120 {
			t.Fatalf("opt %v: shared = %d, want 120", opt, res.Output[0])
		}
		return res
	}
	base := runWith(kernel.OptBase, false)
	optz := runWith(kernel.OptOptimized, true)
	if optz.Stats.KernelEntries() >= base.Stats.KernelEntries() {
		t.Errorf("optimized kernel entries (%d) not below base (%d)",
			optz.Stats.KernelEntries(), base.Stats.KernelEntries())
	}
	if optz.Stats.UserHandled == 0 {
		t.Error("optimized mode absorbed nothing in user space")
	}
	if optz.Ticks >= base.Ticks {
		t.Errorf("optimized runtime (%d ticks) not below base (%d)", optz.Ticks, base.Ticks)
	}
}

// TestBugFindingPausesAmplify: bug-finding mode stretches ARs; on a racy
// workload it should find the violation at least as often as prevention
// mode under the same tick budget.
func TestBugFindingPauses(t *testing.T) {
	o := defaultRunOpts()
	o.kcfg.Mode = kernel.BugFinding
	o.kcfg.PauseTicks = 20_000
	o.kcfg.PauseEvery = 10
	o.mcfg.MaxTicks = 60_000_000
	_, res := run(t, figure1Src, o)
	if res.Stats.Pauses == 0 {
		t.Error("bug-finding mode never paused")
	}
	if res.Reason != "completed" {
		t.Fatalf("reason %q", res.Reason)
	}
}

// TestMissedARsUnderExhaustion: with only 1 watchpoint, concurrent ARs on
// distinct variables must overflow and be logged as missed.
func TestMissedARsUnderExhaustion(t *testing.T) {
	src := `
int a;
int b;
int c;
int d;
int e;
void main() {
    int t;
    t = a;
    t = t + b;
    t = t + c;
    t = t + d;
    t = t + e;
    a = t;
    b = t;
    c = t;
    d = t;
    e = t;
    print(t);
}`
	o := defaultRunOpts()
	o.kcfg.NumWatchpoints = 1
	_, res := run(t, src, o)
	if res.Stats.MissedARs == 0 {
		t.Errorf("no missed ARs with a single watchpoint; monitored=%d", res.Stats.MonitoredARs)
	}
	many := defaultRunOpts()
	many.kcfg.NumWatchpoints = 12
	_, res12 := run(t, src, many)
	if res12.Stats.MissedARs >= res.Stats.MissedARs {
		t.Errorf("12 watchpoints missed %d ARs vs %d with 1", res12.Stats.MissedARs, res.Stats.MissedARs)
	}
}

// TestStopOnViolation: the violation callback can stop the run (used by the
// Table 6 time-to-detection harness).
func TestStopOnViolation(t *testing.T) {
	o := defaultRunOpts()
	bin := buildSrc(t, figure1Src, o.compile)
	k := kernel.New(o.kcfg, nil, nil, nil)
	var hit uint64
	k.Log.OnViolation = func(v trace.Violation) bool {
		hit = v.Tick
		return true
	}
	m, err := New(bin, k, Config{Cores: 2, Seed: 3, MaxTicks: 60_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start("main", 0); err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Reason != "stopped" {
		t.Skipf("no violation manifested under this seed (reason %q)", res.Reason)
	}
	if hit == 0 || len(res.Violations) == 0 {
		t.Error("stop requested but no violation recorded")
	}
}

// TestEpochPropagationCost: arming a watchpoint blocks the arming thread
// until all cores adopt; single-core runs should adopt instantly.
func TestEpochWaitsCounted(t *testing.T) {
	src := `
int s;
void main() {
    int t;
    t = s;
    s = t + 1;
    print(s);
}`
	o := defaultRunOpts()
	_, res := run(t, src, o)
	if res.Stats.EpochWaits == 0 {
		t.Error("no epoch waits recorded despite watchpoint arming")
	}
	if res.Output[0] != 1 {
		t.Errorf("output %v", res.Output)
	}
}

// TestLocalWriteCaptureWithoutOpt3: in Base mode the local thread's first
// write traps so the kernel can record the rollback value (§3.3).
func TestLocalWriteCaptureTraps(t *testing.T) {
	src := `
int s;
void main() {
    int t;
    s = 1;
    t = s;
    print(t);
}`
	o := defaultRunOpts() // Base: no local-disable
	_, res := run(t, src, o)
	if res.Stats.Traps == 0 {
		t.Error("local write inside a (W,R) AR should trap without optimization 3")
	}
	if res.Output[0] != 1 {
		t.Errorf("output %v", res.Output)
	}
}

// TestOpt3SuppressesLocalTraps: with all optimizations the local thread's
// accesses never trap.
func TestOpt3SuppressesLocalTraps(t *testing.T) {
	src := `
int s;
void main() {
    int t;
    s = 1;
    t = s;
    print(t);
}`
	o := defaultRunOpts()
	o.kcfg.Opt = kernel.OptOptimized
	o.compile = compile.Options{Annotate: true, ShadowWrites: true}
	_, res := run(t, src, o)
	if res.Stats.Traps != 0 {
		t.Errorf("optimization 3 active but %d traps occurred (single thread!)", res.Stats.Traps)
	}
	if res.Output[0] != 1 {
		t.Errorf("output %v", res.Output)
	}
}
