package vm

import (
	"testing"

	"kivati/internal/annotate"
	"kivati/internal/compile"
	"kivati/internal/kernel"
	"kivati/internal/minic"
	"kivati/internal/whitelist"
)

// buildSrc compiles MiniC source into a binary.
func buildSrc(t *testing.T, src string, opts compile.Options) *compile.Binary {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ap, err := annotate.Annotate(prog)
	if err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	bin, err := compile.Compile(ap, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return bin
}

type runOpts struct {
	kcfg     kernel.Config
	mcfg     Config
	wl       *whitelist.Whitelist
	starts   []startSpec
	compile  compile.Options
	annotate bool
}

type startSpec struct {
	fn  string
	arg int64
}

func defaultRunOpts() runOpts {
	return runOpts{
		kcfg: kernel.Config{
			Mode:           kernel.Prevention,
			Opt:            kernel.OptBase,
			NumWatchpoints: 4,
			TimeoutTicks:   10000,
		},
		mcfg:     Config{Cores: 2, Seed: 1, MaxTicks: 5_000_000},
		compile:  compile.Options{Annotate: true},
		annotate: true,
	}
}

// newTestKernel builds a kernel from runOpts.
func newTestKernel(o runOpts) *kernel.Kernel {
	return kernel.New(o.kcfg, o.wl, nil, nil)
}

// run compiles and runs src with the given options.
func run(t *testing.T, src string, o runOpts) (*Machine, *Result) {
	t.Helper()
	bin := buildSrc(t, src, o.compile)
	if o.kcfg.Opt == kernel.OptOptimized && o.compile.ShadowWrites {
		o.kcfg.ShadowDelta = compile.ShadowDelta
	}
	k := kernel.New(o.kcfg, o.wl, nil, nil)
	m, err := New(bin, k, o.mcfg)
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	starts := o.starts
	if len(starts) == 0 {
		starts = []startSpec{{fn: "main"}}
	}
	for _, s := range starts {
		if _, err := m.Start(s.fn, s.arg); err != nil {
			t.Fatalf("Start(%s): %v", s.fn, err)
		}
	}
	res := m.Run()
	for _, f := range res.Faults {
		t.Errorf("fault: %s", f)
	}
	return m, res
}

func compileOptsAnnotated() compile.Options { return compile.Options{Annotate: true} }
