package vm

// Scheduler hook: controlled-scheduler exploration (CHESS-style bounded
// search and trace replay) drives the machine through an injectable
// SchedulePolicy instead of the built-in seeded randomization. A decision
// point occurs whenever a free core must choose among more than one
// runnable thread — after a timer preemption, a blocking syscall, a trap
// suspension or a wake-up — so a policy fully determines the interleaving
// of an otherwise-deterministic run. Recorder and Replayer make any
// explored schedule reproducible from its decision trace alone.

// SchedPoint describes one scheduler decision point.
type SchedPoint struct {
	Seq      uint64 // 0-based index of this decision within the run
	Tick     uint64 // virtual time of the decision
	Core     int    // core being scheduled
	Runnable []int  // candidate thread IDs in run-queue order; only valid during Pick
}

// SchedulePolicy chooses which runnable thread a free core runs next. Pick
// returns an index into p.Runnable; out-of-range values fall back to 0. The
// policy is consulted only when there is a real choice (two or more
// runnable threads); a single runnable thread is scheduled directly and
// does not consume a decision.
type SchedulePolicy interface {
	Pick(p SchedPoint) int
}

// PolicyFunc adapts a function to a SchedulePolicy.
type PolicyFunc func(SchedPoint) int

// Pick implements SchedulePolicy.
func (f PolicyFunc) Pick(p SchedPoint) int { return f(p) }

// Decision is one recorded scheduler decision: the candidates a core chose
// among and the thread it picked.
type Decision struct {
	Tick     uint64 `json:"tick"`
	Core     int    `json:"core"`
	Runnable []int  `json:"runnable"`
	Chosen   int    `json:"chosen"` // thread ID, not index
}

// Recorder wraps a policy and records every decision, producing a trace
// that a Replayer can reproduce exactly. A nil inner policy records the
// default choice (index 0) at every point.
type Recorder struct {
	Inner     SchedulePolicy
	decisions []Decision
}

// NewRecorder returns a Recorder around inner.
func NewRecorder(inner SchedulePolicy) *Recorder { return &Recorder{Inner: inner} }

// Pick implements SchedulePolicy.
func (r *Recorder) Pick(p SchedPoint) int {
	i := 0
	if r.Inner != nil {
		i = r.Inner.Pick(p)
		if i < 0 || i >= len(p.Runnable) {
			i = 0
		}
	}
	r.decisions = append(r.decisions, Decision{
		Tick:     p.Tick,
		Core:     p.Core,
		Runnable: append([]int(nil), p.Runnable...),
		Chosen:   p.Runnable[i],
	})
	return i
}

// Decisions returns the recorded trace.
func (r *Recorder) Decisions() []Decision { return r.decisions }

// Chosen returns just the chosen thread IDs — the compact trace format
// replays consume.
func (r *Recorder) Chosen() []int {
	out := make([]int, len(r.decisions))
	for i, d := range r.decisions {
		out[i] = d.Chosen
	}
	return out
}

// Replayer replays a recorded decision trace: at decision i it picks the
// i-th recorded thread if it is runnable. A recorded thread that is not
// runnable, or a decision past the end of the trace, falls back to index 0
// and is counted as a mismatch; replaying a trace against the run that
// produced it never mismatches.
type Replayer struct {
	chosen     []int
	next       int
	mismatches int
}

// NewReplayer returns a Replayer for a chosen-thread trace.
func NewReplayer(chosen []int) *Replayer { return &Replayer{chosen: chosen} }

// Pick implements SchedulePolicy.
func (r *Replayer) Pick(p SchedPoint) int {
	if r.next >= len(r.chosen) {
		r.mismatches++
		return 0
	}
	want := r.chosen[r.next]
	r.next++
	for i, id := range p.Runnable {
		if id == want {
			return i
		}
	}
	r.mismatches++
	return 0
}

// Mismatches reports how many decisions could not be replayed faithfully.
func (r *Replayer) Mismatches() int { return r.mismatches }

// Consumed reports how many trace entries were used.
func (r *Replayer) Consumed() int { return r.next }
