package vm

import (
	"bytes"
	"fmt"
	"math/rand"

	"kivati/internal/compile"
	"kivati/internal/hw"
	"kivati/internal/kernel"
	"kivati/internal/trace"
)

// Copy-on-write machine snapshots.
//
// A Snapshot captures everything a run's future depends on — registers,
// threads, run queue, per-core watchpoint files, pending timer events,
// kernel state, RNG cursor, decision counter, and data memory — at a
// quiescent point: before Run starts, or inside a SchedulePolicy.Pick
// callback (the machine is between instructions, the current segment is
// closed, and no core is mid-step). Memory is shared copy-on-write at page
// granularity: the store path marks dirty pages, Snapshot copies only
// pages dirtied since the previous capture, and Restore copies back only
// pages that differ, so a schedule whose runs touch a few dozen pages
// costs a few dozen page copies instead of re-zeroing the whole image.
//
// Snapshots are immutable once taken and machine-portable: a snapshot
// taken on one machine restores onto any machine built from the same
// binary and configuration (the explorer gives each worker its own
// machine and shares snapshots freely).

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	numPages  = int(compile.MemSize >> pageShift)
)

// countingSource wraps a deterministic rand source and counts draws, so a
// snapshot can record the RNG cursor and a restore can rewind it by
// resetting the cursor. Seeding is lazy: the stdlib generator's seeding
// scan walks a ~600-word state vector, which dominated per-schedule reset
// cost before runs that never consult the scheduler RNG — every fixture
// without an arrival workload — learned to skip it. The source therefore
// holds only (seed, draw count) until the first draw materializes the
// stdlib state, and Seed/rewind just reset the pair.
type countingSource struct {
	src  rand.Source
	s64  rand.Source64
	seed int64
	n    uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{seed: seed}
}

// materialize builds the stdlib source at (seed, n) on first draw.
func (c *countingSource) materialize() {
	src := rand.NewSource(c.seed)
	c.src = src
	c.s64, _ = src.(rand.Source64)
	for i := uint64(0); i < c.n; i++ {
		src.Int63()
	}
}

func (c *countingSource) Int63() int64 {
	if c.src == nil {
		c.materialize()
	}
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Seed(seed int64) {
	c.src = nil
	c.s64 = nil
	c.seed = seed
	c.n = 0
}

func (c *countingSource) Uint64() uint64 {
	if c.src == nil {
		c.materialize()
	}
	if c.s64 != nil {
		c.n++
		return c.s64.Uint64()
	}
	// Source without Uint64 (not the stdlib one): mirror rand.Rand's
	// two-draw composition so the count stays exact.
	c.n += 2
	return uint64(c.src.Int63())>>31 | uint64(c.src.Int63())<<32
}

// rewind resets the source to (seed, draws). For the stdlib source one
// Uint64 and one Int63 advance the state identically, so a draw count
// fully determines the state regardless of which methods consumed it;
// materialize replays the draws if the stream is ever consulted again.
func (c *countingSource) rewind(seed int64, draws uint64) {
	c.src = nil
	c.s64 = nil
	c.seed = seed
	c.n = draws
}

type coreSnap struct {
	wp        *hw.RegisterFile
	curTID    int // -1 = idle
	busyUntil uint64
	nextTimer uint64

	// Open block decision (see Core): a run resumed from this snapshot must
	// make the identical keep/reset choice at the next window boundary that
	// the continuous run made, so the decision and its validity stamp are
	// state, not scratch.
	fastLeft    uint16
	fastChecked bool
	fastMerge   uint8
	fastDecTID  int
	fastDecMuts uint64
}

// Snapshot is an immutable capture of a machine's execution state. See the
// package comment above for the capture points and portability contract.
type Snapshot struct {
	clock    uint64
	eventSeq uint64
	schedSeq uint64
	seed     int64
	rngDraws uint64
	quantum  uint64

	threads []Thread
	runq    []int
	cores   []coreSnap
	events  []event
	pages   [][]byte

	reqArrivals map[int]uint64
	reqQueue    []int
	reqWaiters  []int
	reqMade     int

	output    []int64
	latencies []uint64
	faults    []string

	epochWaiters bool
	coresBehind  bool

	fastInstrs  uint64
	fastWindows uint64
	demotions   Demotions

	decisions    uint64
	samePickCont uint64
	deltaArms    uint64
	fullArms     uint64

	segCount int

	kern *kernel.Snapshot
	log  trace.LogState
}

// Clock returns the virtual time the snapshot was taken at.
func (s *Snapshot) Clock() uint64 { return s.clock }

// SchedSeq returns the number of decision points consumed when the
// snapshot was taken (the absolute index of the next decision).
func (s *Snapshot) SchedSeq() uint64 { return s.schedSeq }

// Snapshot captures the machine's state. The machine must have been built
// with Config.Snapshots and be at a quiescent point (before Run, or inside
// a Policy.Pick callback). It fails if a closure event (After) is pending,
// since closures cannot be captured as data.
func (m *Machine) Snapshot() (*Snapshot, error) {
	if !m.cfg.Snapshots {
		return nil, fmt.Errorf("vm: machine not built with Config.Snapshots")
	}
	for i := range m.events {
		if m.events[i].kind == evFn {
			return nil, fmt.Errorf("vm: pending closure event at tick %d is not snapshottable", m.events[i].tick)
		}
	}
	s := &Snapshot{
		clock:        m.clock,
		eventSeq:     m.eventSeq,
		schedSeq:     m.schedSeq,
		seed:         m.rsrc.seed,
		rngDraws:     m.rsrc.n,
		quantum:      m.cfg.Costs.Quantum,
		threads:      make([]Thread, len(m.threads)),
		runq:         make([]int, len(m.runq)),
		cores:        make([]coreSnap, len(m.cores)),
		events:       append([]event(nil), m.events...),
		pages:        make([][]byte, numPages),
		reqArrivals:  make(map[int]uint64, len(m.reqArrivals)),
		reqQueue:     append([]int(nil), m.reqQueue...),
		reqWaiters:   make([]int, len(m.reqWaiters)),
		reqMade:      m.reqMade,
		output:       append([]int64(nil), m.Output...),
		latencies:    append([]uint64(nil), m.Latencies...),
		faults:       append([]string(nil), m.Faults...),
		epochWaiters: m.epochWaiters,
		coresBehind:  m.coresBehind,
		fastInstrs:   m.fastInstrs,
		fastWindows:  m.fastWindows,
		demotions:    m.demotions,
		decisions:    m.decisions,
		samePickCont: m.samePickCont,
		deltaArms:    m.deltaArms,
		fullArms:     m.fullArms,
		// A snapshot taken inside Pick(d) has already closed segment d, but
		// a resumed run re-executes that Pick — including its closeSegment —
		// so the restored machine must hold only the segments of fully
		// completed decisions (min handles the recording-limit cutoff).
		segCount: min(len(m.segs), int(m.schedSeq)),
		kern:     m.K.Snapshot(),
		log:      m.K.Log.SaveState(),
	}
	for i, t := range m.threads {
		s.threads[i] = *t
	}
	for i, t := range m.runq {
		s.runq[i] = t.ID
	}
	for i, c := range m.cores {
		wp := hw.NewRegisterFile(len(c.WP.WPs))
		wp.CopyFrom(c.WP)
		cs := coreSnap{
			wp:          wp,
			curTID:      -1,
			busyUntil:   c.BusyUntil,
			nextTimer:   c.NextTimer,
			fastLeft:    c.fastLeft,
			fastChecked: c.fastChecked,
			fastMerge:   c.fastMerge,
			fastDecTID:  c.fastDecTID,
			fastDecMuts: c.fastDecMuts,
		}
		if c.Cur != nil {
			cs.curTID = c.Cur.ID
		}
		s.cores[i] = cs
	}
	for id, at := range m.reqArrivals {
		s.reqArrivals[id] = at
	}
	for i, w := range m.reqWaiters {
		s.reqWaiters[i] = w.ID
	}
	// CoW page capture: refresh the shadow copy of pages written since the
	// last capture, then share every page by reference. Captured pages are
	// never written again (stores replace the shadow pointer on the next
	// Snapshot, Restore redirects it), which is what makes snapshots
	// immutable and portable across machines. All-zero pages — most of the
	// image at the initial capture — share one global page instead of
	// getting private copies.
	for p := 0; p < numPages; p++ {
		if m.shadow[p] == nil || m.pageDirty[p] {
			page := m.Mem[p<<pageShift : (p+1)<<pageShift]
			if bytes.Equal(page, zeroPage) {
				m.shadow[p] = zeroPage
			} else {
				cp := make([]byte, pageSize)
				copy(cp, page)
				m.shadow[p] = cp
			}
			m.pageDirty[p] = false
		}
		s.pages[p] = m.shadow[p]
	}
	return s, nil
}

// zeroPage is the shared capture of every all-zero page.
var zeroPage = make([]byte, pageSize)

// Restore rewinds the machine to a snapshot. The machine must have been
// built from the same binary and an equivalent configuration (core count,
// watchpoint count) as the snapshot's source machine — not necessarily the
// same machine. After Restore the machine continues exactly as the source
// machine would have from the capture point; Run may be re-entered.
func (m *Machine) Restore(s *Snapshot) {
	m.clock = s.clock
	m.eventSeq = s.eventSeq
	m.schedSeq = s.schedSeq
	m.cfg.Costs.Quantum = s.quantum
	m.rsrc.rewind(s.seed, s.rngDraws)

	for i := range s.threads {
		var t *Thread
		if i < len(m.threads) {
			t = m.threads[i]
		} else {
			t = new(Thread)
			m.threads = append(m.threads, t)
		}
		*t = s.threads[i]
	}
	m.threads = m.threads[:len(s.threads)]

	m.runq = m.runq[:0]
	for _, tid := range s.runq {
		m.runq = append(m.runq, m.threads[tid])
	}
	for i, cs := range s.cores {
		c := m.cores[i]
		c.WP.CopyFrom(cs.wp)
		c.BusyUntil = cs.busyUntil
		c.NextTimer = cs.nextTimer
		if cs.curTID >= 0 {
			c.Cur = m.threads[cs.curTID]
		} else {
			c.Cur = nil
		}
		c.nacc = 0
		c.trapAborted = false
		c.fastLeft = cs.fastLeft
		c.fastChecked = cs.fastChecked
		c.fastMerge = cs.fastMerge
		c.fastDecTID = cs.fastDecTID
		c.fastDecMuts = cs.fastDecMuts
		// The relevant-window cache is derived state keyed on a mutation
		// count; counts from different timelines may collide, so a restore
		// always invalidates it.
		c.wpCacheTID = -1
	}
	m.events = append(m.events[:0], s.events...)

	// Memory: copy back only pages that provably differ from the
	// snapshot — a page is unchanged when it still shares the snapshot's
	// copy and has not been written since.
	for p := 0; p < numPages; p++ {
		if m.pageDirty[p] || !samePage(m.shadow[p], s.pages[p]) {
			copy(m.Mem[p<<pageShift:(p+1)<<pageShift], s.pages[p])
			m.shadow[p] = s.pages[p]
			m.pageDirty[p] = false
		}
	}

	m.reqArrivals = make(map[int]uint64, len(s.reqArrivals))
	for id, at := range s.reqArrivals {
		m.reqArrivals[id] = at
	}
	m.reqQueue = append(m.reqQueue[:0], s.reqQueue...)
	m.reqWaiters = m.reqWaiters[:0]
	for _, tid := range s.reqWaiters {
		m.reqWaiters = append(m.reqWaiters, m.threads[tid])
	}
	m.reqMade = s.reqMade

	m.Output = append(m.Output[:0], s.output...)
	m.Latencies = append(m.Latencies[:0], s.latencies...)
	m.Faults = append(m.Faults[:0], s.faults...)
	m.stopped = false
	m.reason = ""
	m.curCore = nil
	m.epochWaiters = s.epochWaiters
	m.epochBlocked = 0
	for _, t := range m.threads {
		if t.State == stBlocked && (t.Block == kernel.BlockEpoch || t.Block == kernel.BlockPause) {
			m.epochBlocked++
		}
	}
	m.coresBehind = s.coresBehind
	m.fastInstrs = s.fastInstrs
	m.fastWindows = s.fastWindows
	m.demotions = s.demotions
	m.decisions = s.decisions
	m.samePickCont = s.samePickCont
	m.deltaArms = s.deltaArms
	m.fullArms = s.fullArms

	// Segment recording resumes at the snapshot's absolute index. Entries
	// below it belong to whatever run this machine executed last and are
	// never read (a resumed run only inspects segments recorded after its
	// branch point); pad with Global placeholders to keep indexes aligned.
	if m.segLimit > 0 {
		if len(m.segs) > s.segCount {
			m.segs = m.segs[:s.segCount]
		}
		for len(m.segs) < s.segCount {
			m.segs = append(m.segs, Segment{Thread: -1, Global: true})
		}
		m.seg = Segment{Thread: -1, Reads: m.seg.Reads[:0], Writes: m.seg.Writes[:0]}
	}

	m.K.Restore(s.kern)
	m.K.Log.RestoreState(s.log)
}

func samePage(a, b []byte) bool {
	return a != nil && b != nil && &a[0] == &b[0]
}

// SetPolicy replaces the schedule policy for the next run. Valid only on
// machines whose fast-path admissibility does not depend on the policy:
// built with DispatchStep or DispatchFast (New computes fastOK once).
func (m *Machine) SetPolicy(p SchedulePolicy) {
	m.cfg.Policy = p
}

// Reseed resets the scheduler RNG to a fresh stream. Valid only at the
// run's start (clock 0), before any draw has influenced execution.
func (m *Machine) Reseed(seed int64) {
	if m.rsrc != nil {
		m.rsrc.Seed(seed)
		return
	}
	m.rng = rand.New(rand.NewSource(seed))
}

// SetQuantum sets the scheduling quantum and re-arms every core's first
// timer accordingly. Valid only at clock 0 (typically right after
// restoring the initial snapshot), matching what New does at construction.
func (m *Machine) SetQuantum(q uint64) {
	if q == 0 {
		q = 1000
	}
	m.cfg.Costs.Quantum = q
	for _, c := range m.cores {
		c.NextTimer = q
	}
}
