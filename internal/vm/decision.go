package vm

// Decision-point fast path: the helpers that make the cost of a scheduler
// decision proportional to what changed rather than to the size of the
// armed-watchpoint table.
//
// Two mechanisms cooperate (see DESIGN.md "Decision-point fast path"):
//
//   - Watchpoint delta-arming. Every kernel entry must leave the core's
//     register file synchronized with the kernel's canonical state. The
//     canonical file stamps each register with a generation counter, so
//     adoption applies only the registers that changed since this core last
//     synchronized — at a timer interrupt under a quiescent watchpoint table
//     (the overwhelmingly common case) that is a single counter comparison.
//     The full-table copy survives as the slow path and as the differential
//     reference.
//
//   - Block-decision continuation. A superstep window's block-edge decision
//     (checked/unchecked, plus the merge budget) is stamped with the thread
//     it was made for and the register file's mutation count at decision
//     time. A window boundary keeps the open decision when both still match,
//     instead of unconditionally re-deciding; combined with the inline timer
//     interrupt in superstepSingle this lets a policy that re-picks the
//     running thread extend the window in place.

// adoptCanon synchronizes core c's watchpoint register file with the
// kernel's canonical state via delta-arming, returning how many registers
// actually changed so callers can distinguish a no-op adoption from a real
// update. It is the single chokepoint for every cross-core propagation site
// (timer interrupts, syscalls, traps, idle adoption, EpochChanged).
func (m *Machine) adoptCanon(c *Core) int {
	changed, full := c.WP.AdoptDelta(m.K.Canon)
	if full {
		m.fullArms++
	} else {
		m.deltaArms++
	}
	return changed
}

// resumeOrResetFast decides, at a superstep-window boundary, whether core
// c's open block decision is still valid: same thread, register file
// unmutated since the decision was made, and no DPOR segment recording
// (whose per-decision footprint attribution requires fresh block entries).
// A kept decision means the first block of the new window retires without a
// fresh register-file scan — the same-pick continuation. The stamp and the
// fast fields are part of snapshots, so a run resumed from a mid-decision
// snapshot makes the identical keep/reset choice the continuous run made.
func (m *Machine) resumeOrResetFast(c *Core) {
	if c.fastLeft > 0 && c.Cur != nil && c.Cur.ID == c.fastDecTID &&
		c.WP.Muts() == c.fastDecMuts && !m.segRecording() {
		m.samePickCont++
		return
	}
	c.fastLeft = 0
	c.fastMerge = 0
}

// relevantWindow returns the count and address window of the armed registers
// that can trap thread tid on core c, cached per (thread, register-file
// mutation count): the register file only changes at kernel entries, so
// consecutive block-edge decisions inside and across windows reuse the scan.
// The cache is pure derived state — Restore invalidates it (mutation counts
// from different timelines may collide) and correctness never depends on it.
func (m *Machine) relevantWindow(c *Core, tid int) (int, uint32, uint32) {
	if c.wpCacheTID != tid || c.wpCacheMuts != c.WP.Muts() {
		n, lo, hi := c.WP.RelevantWindow(tid)
		c.wpCacheTID = tid
		c.wpCacheMuts = c.WP.Muts()
		c.wpRelCount, c.wpRelLo, c.wpRelHi = n, lo, hi
	}
	return c.wpRelCount, c.wpRelLo, c.wpRelHi
}
