package vm

import (
	"kivati/internal/hw"
	"kivati/internal/isa"
)

// Decision-delimited access segments for dynamic partial-order reduction.
//
// When segment recording is enabled (SetSegmentLimit), the machine
// accumulates a conservative summary of every memory access committed
// between two adjacent scheduling decision points. The explorer's DPOR
// pass uses segment independence — disjoint footprints, no kernel
// interaction — to recognize sibling schedules that merely commute
// independent transitions and prune them.
//
// Indexing is absolute: segs[i] is the segment that ended at decision
// point i (the execution between Pick(i-1) and Pick(i)); a snapshot taken
// inside Pick(i) therefore captures exactly i+1 closed segments, and a
// restored machine continues appending at the right absolute index. The
// summary errs toward dependence everywhere it is lossy: syscalls, traps,
// timer events, thread exits and forced (choice-free) reschedules mark the
// whole segment as conflicting with everything, and fast-path block
// footprints are folded in as writes.

// Interval is a half-open address range [Lo, Hi).
type Interval struct{ Lo, Hi uint32 }

// segMaxIntervals bounds per-segment interval lists; segments that exceed
// it collapse to Global (conflicts with everything) instead of growing.
const segMaxIntervals = 64

// Segment summarizes the committed memory accesses between two adjacent
// scheduling decision points.
type Segment struct {
	// Thread is the thread chosen at the decision point that opened the
	// segment (-1 for the pre-first-decision segment).
	Thread int
	// Global marks a segment whose effects are not fully described by the
	// access intervals (kernel entry, trap, timer event, thread switch
	// without a decision); it conflicts with every other segment.
	Global bool
	Reads  []Interval
	Writes []Interval
}

// overlaps reports whether any interval in a intersects any in b.
func overlaps(a, b []Interval) bool {
	for _, x := range a {
		for _, y := range b {
			if x.Lo < y.Hi && y.Lo < x.Hi {
				return true
			}
		}
	}
	return false
}

// Independent reports whether two segments provably commute: executed in
// either order from the same state they produce the same state. Distinct
// threads, no kernel interaction, and no write-sharing of any address.
func (s *Segment) Independent(o *Segment) bool {
	if s.Global || o.Global {
		return false
	}
	if s.Thread == o.Thread {
		return false // program order
	}
	if overlaps(s.Writes, o.Writes) || overlaps(s.Writes, o.Reads) || overlaps(s.Reads, o.Writes) {
		return false
	}
	return true
}

// SetSegmentLimit enables access-segment recording for the next run: up to
// n decision-delimited segments are recorded (0 disables). Resets any
// previously recorded segments.
func (m *Machine) SetSegmentLimit(n int) {
	m.segLimit = n
	m.segs = m.segs[:0]
	m.seg = Segment{Thread: -1}
}

// Segments returns the segments recorded so far (valid until the next
// restore or segment-limit reset).
func (m *Machine) Segments() []Segment { return m.segs }

// SchedSeq returns the number of scheduling decision points consumed so
// far (the absolute index of the next decision).
func (m *Machine) SchedSeq() uint64 { return m.schedSeq }

// segRecording gates the per-access/per-block recording hooks.
func (m *Machine) segRecording() bool {
	return m.segLimit > 0 && len(m.segs) < m.segLimit
}

// closeSegment finalizes the segment accumulated since the previous
// decision point. Called from schedule() immediately before Policy.Pick,
// so a snapshot taken inside Pick sees a consistent segment count.
func (m *Machine) closeSegment() {
	seg := Segment{Thread: m.seg.Thread, Global: m.seg.Global}
	if !seg.Global {
		seg.Reads = append([]Interval(nil), m.seg.Reads...)
		seg.Writes = append([]Interval(nil), m.seg.Writes...)
	}
	m.segs = append(m.segs, seg)
	m.seg.Global = false
	m.seg.Reads = m.seg.Reads[:0]
	m.seg.Writes = m.seg.Writes[:0]
}

// segAdd appends an interval to one of the open segment's lists,
// collapsing to Global when the list outgrows the bound.
func (m *Machine) segAdd(list *[]Interval, lo, hi uint32) {
	if m.seg.Global {
		return
	}
	// Cheap coalescing with the most recent interval (loops touch the
	// same addresses block after block).
	if n := len(*list); n > 0 {
		last := &(*list)[n-1]
		if lo >= last.Lo && hi <= last.Hi {
			return
		}
		if lo <= last.Hi && hi >= last.Lo { // overlapping or adjacent
			if lo < last.Lo {
				last.Lo = lo
			}
			if hi > last.Hi {
				last.Hi = hi
			}
			return
		}
	}
	if len(*list) >= segMaxIntervals {
		m.seg.Global = true
		return
	}
	*list = append(*list, Interval{Lo: lo, Hi: hi})
}

// segAccess records one committed access (legacy-step path).
func (m *Machine) segAccess(addr uint32, sz uint8, typ hw.AccessType) {
	if typ == hw.Read {
		m.segAdd(&m.seg.Reads, addr, addr+uint32(sz))
	} else {
		m.segAdd(&m.seg.Writes, addr, addr+uint32(sz))
	}
}

// segBlockFootprint folds a basic block's static footprint into the open
// segment at a fast-path block edge. Footprints do not distinguish reads
// from writes, so the whole footprint is recorded as writes — conservative
// for independence. Register-relative components are evaluated against the
// thread's live SP/FP exactly like blockChecked does.
func (m *Machine) segBlockFootprint(t *Thread, pc uint32) {
	if m.seg.Global {
		return
	}
	f := &m.fps[pc]
	if f.Unbounded {
		m.seg.Global = true
		return
	}
	if f.AbsHi > f.AbsLo {
		m.segAdd(&m.seg.Writes, f.AbsLo, f.AbsHi)
	}
	m.segRegRange(t.Regs[isa.RegSP], f.SPLo, f.SPHi)
	m.segRegRange(t.Regs[isa.RegFP], f.FPLo, f.FPHi)
}

func (m *Machine) segRegRange(base int64, lo, hi int64) {
	if hi <= lo {
		return
	}
	lo64 := int64(uint32(base)) + lo
	hi64 := int64(uint32(base)) + hi
	if lo64 < 0 || hi64 > int64(^uint32(0)) {
		// Would wrap or fault; the checked/legacy path sorts it out, the
		// segment gives up on precision.
		m.seg.Global = true
		return
	}
	m.segAdd(&m.seg.Writes, uint32(lo64), uint32(hi64))
}
