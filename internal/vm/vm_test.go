package vm

import (
	"testing"

	"kivati/internal/compile"
)

func TestArithmeticAndPrint(t *testing.T) {
	src := `
void main() {
    int a;
    int b;
    a = 6;
    b = 7;
    print(a * b);
    print(a - b);
    print(a / b);
    print(-a % 4);
    print((a < b) + 2 * (a == 6));
}`
	_, res := run(t, src, defaultRunOpts())
	want := []int64{42, -1, 0, -2, 3}
	if len(res.Output) != len(want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d", i, res.Output[i], want[i])
		}
	}
	if res.Reason != "completed" {
		t.Errorf("reason = %q", res.Reason)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
void main() {
    int i;
    int sum;
    i = 0;
    sum = 0;
    while (i < 10) {
        if (i % 2 == 0) {
            sum = sum + i;
        } else {
            sum = sum - 1;
        }
        i = i + 1;
    }
    print(sum);
}`
	_, res := run(t, src, defaultRunOpts())
	if len(res.Output) != 1 || res.Output[0] != 15 {
		t.Errorf("output = %v, want [15]", res.Output)
	}
}

func TestFunctionCallsAndRecursion(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}
void main() {
    print(fib(12));
}`
	_, res := run(t, src, defaultRunOpts())
	if len(res.Output) != 1 || res.Output[0] != 144 {
		t.Errorf("fib(12) = %v, want 144", res.Output)
	}
}

func TestGlobalsArraysPointers(t *testing.T) {
	src := `
int g = 5;
int arr[4];
int *p;
void main() {
    int i;
    i = 0;
    while (i < 4) {
        arr[i] = i * 10;
        i = i + 1;
    }
    p = &g;
    *p = *p + arr[3];
    print(g);
    print(arr[2]);
}`
	_, res := run(t, src, defaultRunOpts())
	if len(res.Output) != 2 || res.Output[0] != 35 || res.Output[1] != 20 {
		t.Errorf("output = %v, want [35 20]", res.Output)
	}
}

func TestSpawnAndSharedCounterWithLock(t *testing.T) {
	src := `
int counter;
int lk;
int started;
void worker(int n) {
    int i;
    i = 0;
    while (i < n) {
        lock(lk);
        counter = counter + 1;
        unlock(lk);
        i = i + 1;
    }
    lock(lk);
    started = started + 1;
    unlock(lk);
}
void main() {
    spawn(worker, 50);
    spawn(worker, 50);
    worker(50);
    while (started < 3) {
        yield();
    }
    print(counter);
}`
	_, res := run(t, src, defaultRunOpts())
	if len(res.Output) != 1 || res.Output[0] != 150 {
		t.Errorf("counter = %v, want [150]", res.Output)
	}
}

func TestSleepAndNanos(t *testing.T) {
	src := `
void main() {
    int t0;
    int t1;
    t0 = nanos();
    sleep(1000);
    t1 = nanos();
    print(t1 - t0 >= 1000);
}`
	_, res := run(t, src, defaultRunOpts())
	if len(res.Output) != 1 || res.Output[0] != 1 {
		t.Errorf("sleep did not advance time: %v", res.Output)
	}
}

func TestRandDeterministic(t *testing.T) {
	src := `
void main() {
    print(rand());
    print(rand());
}`
	o := defaultRunOpts()
	_, r1 := run(t, src, o)
	_, r2 := run(t, src, o)
	if len(r1.Output) != 2 || r1.Output[0] == r1.Output[1] {
		t.Errorf("rand output suspicious: %v", r1.Output)
	}
	for i := range r1.Output {
		if r1.Output[i] != r2.Output[i] {
			t.Errorf("rand not deterministic across same-seed runs")
		}
	}
}

func TestVanillaBinaryRuns(t *testing.T) {
	src := `
int s;
void main() {
    int t;
    t = s;
    s = t + 1;
    print(s);
}`
	o := defaultRunOpts()
	o.compile = compile.Options{Annotate: false}
	_, res := run(t, src, o)
	if len(res.Output) != 1 || res.Output[0] != 1 {
		t.Errorf("output = %v", res.Output)
	}
	if res.Stats.Begins != 0 || res.Stats.Ends != 0 {
		t.Errorf("vanilla run executed annotations: %+v", res.Stats)
	}
}

func TestAnnotatedSameResult(t *testing.T) {
	// The Kivati machinery must not change program semantics.
	src := `
int s;
int lk;
void main() {
    int i;
    i = 0;
    while (i < 100) {
        s = s + i;
        i = i + 1;
    }
    print(s);
}`
	o := defaultRunOpts()
	_, res := run(t, src, o)
	if len(res.Output) != 1 || res.Output[0] != 4950 {
		t.Errorf("annotated output = %v, want [4950]", res.Output)
	}
	if res.Stats.Begins == 0 {
		t.Error("no begin_atomic executed; annotation path untested")
	}
}

func TestMaxTicksStopsRunaway(t *testing.T) {
	src := `
int f;
void main() {
    while (f == 0) {
        yield();
    }
}`
	o := defaultRunOpts()
	o.mcfg.MaxTicks = 100_000
	_, res := run(t, src, o)
	if res.Reason != "max-ticks" {
		t.Errorf("reason = %q, want max-ticks", res.Reason)
	}
}

func TestDivisionByZeroFaults(t *testing.T) {
	src := `
int z;
void main() {
    print(5 / z);
}`
	o := defaultRunOpts()
	bin := buildSrc(t, src, o.compile)
	k := newTestKernel(o)
	m, err := New(bin, k, o.mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start("main", 0); err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if len(res.Faults) != 1 {
		t.Errorf("faults = %v, want one division fault", res.Faults)
	}
}

func TestRequestsServed(t *testing.T) {
	src := `
void server(int n) {
    int i;
    int req;
    i = 0;
    while (i < n) {
        req = recv();
        send(req);
        i = i + 1;
    }
}
void main() {
    spawn(server, 10);
    server(10);
}`
	o := defaultRunOpts()
	o.mcfg.Requests = &RequestConfig{MeanInterarrival: 500, Count: 20}
	m, res := run(t, src, o)
	if m.RequestsServed() != 20 {
		t.Errorf("served %d requests, want 20", m.RequestsServed())
	}
	for _, l := range res.Latencies {
		if l == 0 {
			t.Error("zero latency recorded")
		}
	}
}

func TestDeterministicExecution(t *testing.T) {
	src := `
int s;
int done;
void w(int id) {
    int i;
    i = 0;
    while (i < 200) {
        s = s + id;
        i = i + 1;
    }
    done = done + 1;
}
void main() {
    spawn(w, 1);
    spawn(w, 2);
    while (done < 2) {
        yield();
    }
    print(s);
}`
	o := defaultRunOpts()
	_, r1 := run(t, src, o)
	_, r2 := run(t, src, o)
	if r1.Ticks != r2.Ticks || len(r1.Output) != len(r2.Output) {
		t.Errorf("same-seed runs differ: %d vs %d ticks", r1.Ticks, r2.Ticks)
	}
	o.mcfg.Seed = 99
	_, r3 := run(t, src, o)
	_ = r3 // different seed may differ; just must not crash
}
