package vm

import (
	"reflect"
	"testing"

	"kivati/internal/kernel"
)

// snapSrc is a two-worker racy counter: enough scheduler decision points
// and watchpoint churn to make a mid-run capture nontrivial.
const snapSrc = `
int counter;
int lk;
int done;
void worker(int id) {
    int i;
    i = 0;
    while (i < 20) {
        counter = counter + 1;
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void main() {
    spawn(worker, 1);
    spawn(worker, 2);
    while (done < 2) {
        yield();
    }
    print(counter);
}
`

// newSnapMachine builds a snapshot-capable prevention-mode machine with the
// given schedule policy and main started, but not yet run.
func newSnapMachine(t *testing.T, policy SchedulePolicy) *Machine {
	t.Helper()
	bin := buildSrc(t, snapSrc, compileOptsAnnotated())
	k := kernel.New(kernel.Config{
		Mode:           kernel.Prevention,
		Opt:            kernel.OptBase,
		NumWatchpoints: 4,
		TimeoutTicks:   10000,
	}, nil, nil, nil)
	m, err := New(bin, k, Config{
		Cores:     1,
		Seed:      1,
		MaxTicks:  5_000_000,
		Snapshots: true,
		Dispatch:  DispatchStep, // SetPolicy below requires policy-independent fastOK
		Policy:    policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start("main", 0); err != nil {
		t.Fatal(err)
	}
	return m
}

// headRunnable is a deterministic stateless policy: always run the head of
// the queue (a yielding thread re-enters at the back, so this round-robins
// rather than re-picking the yielder). Stateless matters for the
// cross-machine test — a restored machine with the same policy continues
// identically.
var headRunnable = PolicyFunc(func(p SchedPoint) int { return 0 })

// TestSnapshotRestoreMemHash is the byte-identity quick-check: capture,
// run the machine to completion (dirtying memory), restore, and require
// the memory image hash to match the capture-time hash exactly.
func TestSnapshotRestoreMemHash(t *testing.T) {
	m := newSnapMachine(t, headRunnable)
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	before := m.MemHash()

	res := m.Run()
	if res.Reason != "completed" {
		t.Fatalf("reason = %q", res.Reason)
	}
	if m.MemHash() == before {
		t.Fatal("run did not change memory; the restore check is vacuous")
	}

	m.Restore(snap)
	if got := m.MemHash(); got != before {
		t.Fatalf("restored memory hash %#x, capture-time hash %#x", got, before)
	}
}

// TestSnapshotRerunIdentical captures at a mid-run decision point, lets the
// run finish, restores, and re-runs: the second run must be observably
// identical — same output, ticks, stop reason, and final memory image.
func TestSnapshotRerunIdentical(t *testing.T) {
	var snap *Snapshot
	m := newSnapMachine(t, nil)
	m.SetPolicy(PolicyFunc(func(p SchedPoint) int {
		if p.Seq == 3 && snap == nil {
			s, err := m.Snapshot()
			if err != nil {
				t.Errorf("mid-run snapshot: %v", err)
			}
			snap = s
		}
		return headRunnable(p)
	}))
	res1 := m.Run()
	if snap == nil {
		t.Fatal("run never reached decision 3; capture point not exercised")
	}
	hash1 := m.MemHash()

	m.Restore(snap)
	res2 := m.Run()
	if res1.Reason != res2.Reason || res1.Ticks != res2.Ticks {
		t.Errorf("(reason, ticks) first=(%q, %d) rerun=(%q, %d)",
			res1.Reason, res1.Ticks, res2.Reason, res2.Ticks)
	}
	if !reflect.DeepEqual(res1.Output, res2.Output) {
		t.Errorf("output differs: first=%v rerun=%v", res1.Output, res2.Output)
	}
	if !reflect.DeepEqual(res1.Stats, res2.Stats) {
		t.Errorf("kernel stats differ:\n first=%+v\n rerun=%+v", res1.Stats, res2.Stats)
	}
	if hash2 := m.MemHash(); hash2 != hash1 {
		t.Errorf("final memory image differs: first=%#x rerun=%#x", hash1, hash2)
	}
}

// TestSnapshotCrossMachine restores a capture into a different machine
// built from the same binary and configuration: the continuation must be
// identical to the source machine's.
func TestSnapshotCrossMachine(t *testing.T) {
	var snap *Snapshot
	a := newSnapMachine(t, nil) // policy set below so the closure can see the machine
	a.SetPolicy(PolicyFunc(func(p SchedPoint) int {
		if p.Seq == 2 && snap == nil {
			s, err := a.Snapshot()
			if err != nil {
				t.Errorf("mid-run snapshot: %v", err)
			}
			snap = s
		}
		return headRunnable(p)
	}))
	resA := a.Run()
	if snap == nil {
		t.Fatal("run never reached decision 2")
	}

	b := newSnapMachine(t, headRunnable)
	b.Restore(snap)
	resB := b.Run()
	if resA.Reason != resB.Reason || resA.Ticks != resB.Ticks {
		t.Errorf("(reason, ticks) source=(%q, %d) foreign=(%q, %d)",
			resA.Reason, resA.Ticks, resB.Reason, resB.Ticks)
	}
	if !reflect.DeepEqual(resA.Output, resB.Output) {
		t.Errorf("output differs: source=%v foreign=%v", resA.Output, resB.Output)
	}
	if !reflect.DeepEqual(resA.Stats, resB.Stats) {
		t.Errorf("kernel stats differ:\n source=%+v\n foreign=%+v", resA.Stats, resB.Stats)
	}
	if a.MemHash() != b.MemHash() {
		t.Errorf("final memory image differs: source=%#x foreign=%#x", a.MemHash(), b.MemHash())
	}
}

// TestSnapshotRejectsPendingClosure pins the capture precondition: closure
// events cannot be serialized, so Snapshot must refuse while one is queued.
func TestSnapshotRejectsPendingClosure(t *testing.T) {
	m := newSnapMachine(t, headRunnable)
	m.After(5, func() {})
	if _, err := m.Snapshot(); err == nil {
		t.Fatal("Snapshot succeeded with a pending closure event")
	}
}

// TestSnapshotRequiresConfig pins the opt-in: machines built without
// Config.Snapshots must refuse to capture.
func TestSnapshotRequiresConfig(t *testing.T) {
	bin := buildSrc(t, snapSrc, compileOptsAnnotated())
	k := kernel.New(kernel.Config{Mode: kernel.Prevention, Opt: kernel.OptBase, NumWatchpoints: 4}, nil, nil, nil)
	m, err := New(bin, k, Config{Cores: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Snapshot(); err == nil {
		t.Fatal("Snapshot succeeded without Config.Snapshots")
	}
}
