package workloads

import (
	"testing"

	"kivati/internal/core"
	"kivati/internal/kernel"
)

// runSpec builds and executes a workload at a small scale.
func runSpec(t *testing.T, spec *Spec, cfg core.RunConfig) *core.Program {
	t.Helper()
	p, err := core.Build(spec.Source)
	if err != nil {
		t.Fatalf("%s: Build: %v", spec.Name, err)
	}
	cfg.Requests = spec.Requests
	cfg.Starts = spec.Starts
	res, err := core.Run(p, cfg)
	if err != nil {
		t.Fatalf("%s: Run: %v", spec.Name, err)
	}
	if res.Reason != "completed" {
		t.Fatalf("%s: reason %q (ticks=%d, stats=%+v)", spec.Name, res.Reason, res.Ticks, *res.Stats)
	}
	return p
}

func TestAllWorkloadsCompleteVanilla(t *testing.T) {
	for _, spec := range PerfSuite(0.1) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			runSpec(t, spec, core.RunConfig{Vanilla: true, Seed: 1, MaxTicks: 80_000_000})
		})
	}
}

func TestAllWorkloadsCompleteUnderKivati(t *testing.T) {
	for _, spec := range PerfSuite(0.1) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			runSpec(t, spec, core.RunConfig{
				Mode: kernel.Prevention, Opt: kernel.OptBase,
				Seed: 1, MaxTicks: 200_000_000,
			})
		})
	}
}

func TestWorkloadsHaveARs(t *testing.T) {
	for _, spec := range PerfSuite(0.1) {
		p, err := core.Build(spec.Source)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if n := len(p.Annotated.ARs); n < 10 {
			t.Errorf("%s: only %d ARs; workload too sparse", spec.Name, n)
		}
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	spec := NSS(0.05)
	cfg := core.RunConfig{Mode: kernel.Prevention, Opt: kernel.OptBase, Seed: 42, MaxTicks: 100_000_000}
	p, err := core.Build(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := core.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Ticks != r2.Ticks || len(r1.Violations) != len(r2.Violations) {
		t.Errorf("same-seed runs differ: %d/%d ticks, %d/%d violations",
			r1.Ticks, r2.Ticks, len(r1.Violations), len(r2.Violations))
	}
}

func TestServersRecordLatencies(t *testing.T) {
	for _, spec := range PerfSuite(0.1) {
		if !spec.Server {
			continue
		}
		p, err := core.Build(spec.Source)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(p, core.RunConfig{
			Vanilla: true, Seed: 1, MaxTicks: 80_000_000, Requests: spec.Requests,
		})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if len(res.Latencies) == 0 {
			t.Errorf("%s: no request latencies recorded", spec.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		if _, err := ByName(name, 1); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("ByName(nope): want error")
	}
}

func TestScaleFloor(t *testing.T) {
	if iters(0, 100) != 2 {
		t.Errorf("iters floor = %d", iters(0, 100))
	}
	if iters(2, 100) != 200 {
		t.Errorf("iters(2,100) = %d", iters(2, 100))
	}
}
