// Package workloads provides MiniC analogs of the applications the paper
// evaluates (Table 2): the Firefox NSS crypto library, the VLC media player,
// the Apache web server under the Webstone workload, MySQL under TPC-W, and
// the SPEC OMP suite. Overhead measurements are relative — Kivati versus
// vanilla on the same program — so what matters is that each analog
// reproduces its application's *concurrency structure*: thread counts,
// shared-variable density relative to private compute, synchronization
// discipline (locks, flags), benign-violation sources, request loops for the
// two servers, and enough concurrently-live atomic regions to pressure the
// four hardware watchpoints.
//
// Design rules the generators follow:
//
//   - Compute lives in helper functions taking integer parameters; their
//     locals are not data-flow dependent on shared state, so they carry no
//     atomic regions — like the library and arithmetic code that dominates
//     real applications.
//   - Shared state is mostly lock-protected; unprotected statistics
//     counters (the benign-violation / false-positive sources) are updated
//     on a small fraction of iterations.
//   - Per-app knobs: compute rounds per iteration (annotation density) and
//     the number of simultaneously-live shared variables (watchpoint
//     pressure).
package workloads

import (
	"fmt"
	"strings"

	"kivati/internal/core"
	"kivati/internal/vm"
)

// Spec describes one benchmark application.
type Spec struct {
	Name        string
	Description string // the paper's Table 2 workload description
	PaperSecs   int    // the paper's Table 3 vanilla runtime, seconds
	Source      string
	Starts      []core.Start
	Requests    *vm.RequestConfig
	// FlagVars are synchronization flags (beyond lock/unlock operands)
	// that the SyncVars whitelist covers (§3.4 optimization 4).
	FlagVars []string
	// Server marks request/latency workloads (Table 5).
	Server bool
}

// Scale multiplies per-thread iteration counts; 1.0 is the default benchmark
// size (tests use smaller scales).
type Scale float64

func iters(s Scale, base int) int {
	n := int(float64(base) * float64(s))
	if n < 2 {
		n = 2
	}
	return n
}

// PerfSuite returns the five performance applications at the given scale.
func PerfSuite(s Scale) []*Spec {
	return []*Spec{
		NSS(s), VLC(s), Webstone(s), TPCW(s), SPECOMP(s),
	}
}

// waitBlock emits the standard completion barrier: main spins on a
// lock-protected counter.
func waitBlock(n int) string {
	return fmt.Sprintf(`    while (done < %d) {
        yield();
    }
`, n)
}

// computeFn emits an AR-free compute helper: its locals depend only on
// integer parameters, so the annotator finds nothing to bracket.
func computeFn(name string, rounds int) string {
	return fmt.Sprintf(`
int %s(int v) {
    int x;
    int j;
    x = v + 10007;
    j = 0;
    while (j < %d) {
        x = x * 31 + j;
        x = x ^ (x >> 7);
        j = j + 1;
    }
    return x;
}
`, name, rounds)
}

// NSS models the Mozilla NSS crypto library: worker threads performing
// digest-heavy "handshakes" against a lock-protected session cache, with a
// racy reference count and a check-then-initialize session pointer (the
// benign-violation sources behind its prevention-mode false positives).
func NSS(s Scale) *Spec {
	n := iters(s, 160)
	src := fmt.Sprintf(`
int cache[8];
int cachekeys[8];
int session_ptr;
int refcount;
int handshakes;
int bytes_moved;
int cache_evictions;
int sess_renewals;
int cachelk;
int statlk;
int done;
%s
void handshake(int id, int i) {
    int key;
    int slot;
    int val;
    key = digest(id * 1024 + i);
    slot = key %% 8;
    if (slot < 0) {
        slot = 0 - slot;
    }
    lock(cachelk);
    if (cachekeys[slot] == key) {
        val = cache[slot];
    } else {
        cachekeys[slot] = key;
        cache[slot] = key + 1;
        val = key + 1;
    }
    unlock(cachelk);
    val = digest(val);
    if (i %% 10 == 0) {
        refcount = refcount + 1;
        if (session_ptr == 0) {
            session_ptr = val;
        }
        refcount = refcount - 1;
    }
    if (i %% 26 == 0) {
        bytes_moved = bytes_moved + val %% 211;
    }
    if (i %% 110 == 0) {
        cache_evictions = cache_evictions + 1;
    }
    if (i %% 290 == 3) {
        sess_renewals = sess_renewals + val %% 3;
    }
}

void worker(int id) {
    int i;
    i = 0;
    while (i < %d) {
        handshake(id, i);
        if (i %% 40 == 0) {
            lock(statlk);
            handshakes = handshakes + 1;
            unlock(statlk);
        }
        i = i + 1;
    }
    lock(statlk);
    done = done + 1;
    unlock(statlk);
}

void main() {
    spawn(worker, 1);
    spawn(worker, 2);
    spawn(worker, 3);
    worker(0);
%s}
`, computeFn("digest", 300), n, waitBlock(4))
	return &Spec{
		Name:        "NSS",
		Description: "Ran the Mozilla NSS crypto test suite (handshake/digest workload analog)",
		PaperSecs:   1298,
		Source:      src,
		FlagVars:    []string{"done"},
	}
}

// VLC models the VLC media player: a producer decodes frames into a ring
// buffer, consumers render them, with flag-based hand-off (required
// violations) and rare unprotected frame statistics. Lowest shared-access
// density of the suite — most of each iteration is decode/render compute.
func VLC(s Scale) *Spec {
	n := iters(s, 180)
	src := fmt.Sprintf(`
int ring[16];
int head;
int tail;
int frames_out;
int frames_in;
int late_frames;
int av_desync;
int drops;
int eof;
int buflk;
int statlk;
int done;
%s
void producer(int id) {
    int i;
    int slot;
    int frame;
    i = 0;
    while (i < %d) {
        frame = decode(i);
        lock(buflk);
        if (head - tail < 16) {
            ring[head %% 16] = frame;
            head = head + 1;
        }
        unlock(buflk);
        if (i %% 5 == 0) {
            frames_in = frames_in + 1;
        }
        if (i %% 11 == 0) {
            drops = drops + frame %% 2;
        }
        i = i + 1;
    }
    eof = 1;
    lock(statlk);
    done = done + 1;
    unlock(statlk);
}

void consumer(int id) {
    int frame;
    int run;
    int rendered;
    int f;
    run = 1;
    while (run == 1) {
        frame = 0 - 1;
        lock(buflk);
        if (tail < head) {
            frame = ring[tail %% 16];
            tail = tail + 1;
        }
        unlock(buflk);
        if (frame >= 0) {
            rendered = decode(frame);
            if (rendered %% 6 == 0) {
                f = frames_out;
                f = f + decode(rendered) %% 2;
                frames_out = f + 1;
            }
            if (rendered %% 9 == 1) {
                late_frames = late_frames + 1;
            }
            if (rendered %% 30 == 2) {
                av_desync = av_desync + 1;
            }
        } else {
            if (eof == 1) {
                run = 0;
            } else {
                sleep(150);
            }
        }
    }
    lock(statlk);
    done = done + 1;
    unlock(statlk);
}

void main() {
    spawn(consumer, 1);
    producer(0);
%s}
`, computeFn("decode", 900), n, waitBlock(2))
	return &Spec{
		Name:        "VLC",
		Description: "Played a media clip through a decode/render pipeline (ring-buffer analog)",
		PaperSecs:   1510,
		Source:      src,
		FlagVars:    []string{"eof", "done"},
	}
}

// Webstone models the Apache web server driven by the Webstone load
// generator: worker threads receive requests, hit a lock-protected document
// cache, and occasionally update unprotected hit/byte counters.
func Webstone(s Scale) *Spec {
	reqs := iters(s, 260)
	src := fmt.Sprintf(`
int cache[8];
int cachetag[8];
int hits;
int bytes;
int keepalives;
int err_count;
int redirects;
int cachelk;
int statlk;
int done;
int served;
%s
void serve(int req) {
    int doc;
    int slot;
    int body;
    int h;
    int g;
    g = req * 48271 + 11;
    g = g ^ (g >> 9);
    if (g < 0) {
        g = 0 - g;
    }
    doc = g %% 13;
    slot = doc %% 8;
    lock(cachelk);
    if (cachetag[slot] == doc + 1) {
        body = cache[slot];
    } else {
        cachetag[slot] = doc + 1;
        cache[slot] = doc * 7 + 3;
        body = doc * 7 + 3;
    }
    unlock(cachelk);
    g = render(g);
    if (g %% 3 == 0) {
        h = hits;
        h = h + render(req) %% 2;
        hits = h + 1;
    }
    if (g %% 6 == 1) {
        h = bytes;
        h = h + render(g) %% 4;
        bytes = h + g %% 1009;
    }
    if (g %% 12 == 2) {
        keepalives = keepalives + 1;
    }
    if (g %% 40 == 3) {
        err_count = err_count + g %% 2;
    }
    if (g %% 90 == 5) {
        redirects = redirects + 1;
    }
}

void worker(int id) {
    int req;
    int stop;
    stop = 0;
    while (stop == 0) {
        lock(statlk);
        if (served >= %d) {
            stop = 1;
        } else {
            served = served + 1;
        }
        unlock(statlk);
        if (stop == 0) {
            req = recv();
            serve(req);
            send(req);
        }
    }
    lock(statlk);
    done = done + 1;
    unlock(statlk);
}

void main() {
    spawn(worker, 1);
    spawn(worker, 2);
    spawn(worker, 3);
    worker(0);
%s}
`, computeFn("render", 650), reqs, waitBlock(4))
	return &Spec{
		Name:        "Webstone",
		Description: "Ran the Webstone benchmark against the web server (request/cache analog)",
		PaperSecs:   3000,
		Source:      src,
		Requests:    &vm.RequestConfig{MeanInterarrival: 1100, Count: reqs},
		FlagVars:    []string{"done"},
		Server:      true,
	}
}

// TPCW models MySQL under TPC-W: more worker threads, multi-table
// transactions touching several shared variables at once (the watchpoint
// pressure source — TPC-W shows the paper's highest missed-AR rates), and
// a racy sequence counter.
func TPCW(s Scale) *Spec {
	reqs := iters(s, 300)
	src := fmt.Sprintf(`
int items[16];
int stock[16];
int orders[16];
int nextorder;
int commits;
int seqno;
int deadlock_retries;
int slow_queries;
int tablelk;
int orderlk;
int statlk;
int done;
int served;
%s
void txn(int req) {
    int item;
    int qty;
    int oid;
    int price;
    int plan;
    int sq;
    plan = optimize(req);
    item = plan %% 16;
    if (item < 0) {
        item = 0 - item;
    }
    qty = req %% 3 + 1;
    lock(tablelk);
    price = items[item];
    if (stock[item] >= qty) {
        stock[item] = stock[item] - qty;
    } else {
        stock[item] = stock[item] + 50;
    }
    items[item] = price + qty %% 2;
    unlock(tablelk);
    plan = optimize(plan);
    if ((plan + req) %% 4 == 0) {
        lock(orderlk);
        oid = nextorder %% 16;
        if (oid < 0) {
            oid = 0;
        }
        orders[oid] = item * 100 + qty;
        nextorder = nextorder + 1;
        unlock(orderlk);
    }
    if ((plan + req) %% 5 == 0) {
        sq = seqno;
        sq = sq + optimize(req) %% 2;
        seqno = sq + 1;
    }
    if ((plan + req * 3) %% 7 == 0) {
        commits = commits + 1;
    }
    if ((plan + req) %% 35 == 2) {
        deadlock_retries = deadlock_retries + 1;
    }
    if ((plan + req) %% 110 == 7) {
        slow_queries = slow_queries + qty;
    }
}

void worker(int id) {
    int req;
    int stop;
    stop = 0;
    while (stop == 0) {
        lock(statlk);
        if (served >= %d) {
            stop = 1;
        } else {
            served = served + 1;
        }
        unlock(statlk);
        if (stop == 0) {
            req = recv();
            txn(req);
            send(req);
        }
    }
    lock(statlk);
    done = done + 1;
    unlock(statlk);
}

void main() {
    spawn(worker, 1);
    spawn(worker, 2);
    spawn(worker, 3);
    spawn(worker, 4);
    spawn(worker, 5);
    worker(0);
%s}
`, computeFn("optimize", 420), reqs, waitBlock(6))
	return &Spec{
		Name:        "TPC-W",
		Description: "Ran the TPC-W workload against the database (multi-table transaction analog)",
		PaperSecs:   1800,
		Source:      src,
		Requests:    &vm.RequestConfig{MeanInterarrival: 900, Count: reqs},
		FlagVars:    []string{"done"},
		Server:      true,
	}
}

// SPECOMP models the SPEC OMP suite: data-parallel phases over shared
// arrays (whole arrays are treated as shared — the paper's coarse array
// handling — so disjoint per-thread slices still pair), flag-based phase
// barriers, and lock-protected reductions.
func SPECOMP(s Scale) *Spec {
	n := iters(s, 70)
	src := fmt.Sprintf(`
int grid[32];
int sum;
int residual;
int converged;
int flops_est;
int phase;
int arrived;
int redlk;
int barlk;
int done;
%s
void wait_phase(int p) {
    while (phase == p) {
        sleep(120);
    }
}

void barrier(int nthreads) {
    int myphase;
    lock(barlk);
    myphase = phase;
    arrived = arrived + 1;
    if (arrived == nthreads) {
        arrived = 0;
        phase = phase + 1;
    }
    unlock(barlk);
    wait_phase(myphase);
}

void relax(int base, int it) {
    grid[base + it %% 8] = stencil(grid[base + it %% 8]) %% 4096;
    if (it %% 14 == 0) {
        residual = residual + grid[base] %% 5;
    }
}

void worker(int id) {
    int it;
    int local;
    it = 0;
    while (it < %d) {
        relax(id * 8, it);
        local = grid[id * 8] + grid[id * 8 + 7];
        if (it %% 22 == 0) {
            converged = converged + local %% 2;
        }
        if (it %% 60 == 1) {
            flops_est = flops_est + local %% 7;
        }
        lock(redlk);
        sum = sum + local;
        unlock(redlk);
        barrier(4);
        it = it + 1;
    }
    lock(redlk);
    done = done + 1;
    unlock(redlk);
}

void main() {
    spawn(worker, 1);
    spawn(worker, 2);
    spawn(worker, 3);
    worker(0);
%s}
`, computeFn("stencil", 900), n, waitBlock(4))
	return &Spec{
		Name:        "SPEC OMP",
		Description: "Ran the OpenMP benchmark suite (data-parallel stencil + barrier analog)",
		PaperSecs:   4800,
		Source:      src,
		FlagVars:    []string{"phase", "arrived", "done"},
	}
}

// ArrayScan is the array-indexing workload behind the value-range
// footprint work: its hot loop updates shared tables exclusively through
// dynamic indices the analysis can bound — a sign-folded modulo result and
// a static-bound sweep — while unprotected checksum regions keep
// watchpoints armed. Under the legacy syntactic footprint pass every one of
// those blocks demoted via Unbounded; with value-range footprints
// prevention mode must keep them on the unchecked fast path
// (Demotions.Unbounded == 0).
func ArrayScan(s Scale) *Spec {
	n := iters(s, 200)
	src := fmt.Sprintf(`
int table[16];
int acc[8];
int checksum;
int scans;
int statlk;
int done;
%s
void sweep(int id, int i) {
    int v;
    int k;
    int j;
    int h;
    v = mixv(id * 512 + i);
    k = v %% 8;
    if (k < 0) {
        k = 0 - k;
    }
    lock(statlk);
    j = 0;
    while (j < 16) {
        table[j] = table[j] + v %% 5;
        j = j + 1;
    }
    acc[k] = acc[k] + 1;
    unlock(statlk);
    if (i %% 4 == 0) {
        h = checksum;
        h = h + mixv(v) %% 2;
        checksum = h + 1;
    }
    if (i %% 9 == 2) {
        scans = scans + 1;
    }
}

void worker(int id) {
    int i;
    i = 0;
    while (i < %d) {
        sweep(id, i);
        i = i + 1;
    }
    lock(statlk);
    done = done + 1;
    unlock(statlk);
}

void main() {
    spawn(worker, 1);
    spawn(worker, 2);
    spawn(worker, 3);
    worker(0);
%s}
`, computeFn("mixv", 260), n, waitBlock(4))
	return &Spec{
		Name:        "ArrayScan",
		Description: "Swept shared tables through bounded dynamic indices (value-range footprint workload)",
		Source:      src,
		FlagVars:    []string{"done"},
	}
}

// BenchSuite is the bench harness's application set: the five paper
// analogs plus the ArrayScan footprint workload.
func BenchSuite(s Scale) []*Spec {
	return append(PerfSuite(s), ArrayScan(s))
}

// Names lists the perf suite application names in paper order.
func Names() []string {
	return []string{"NSS", "VLC", "Webstone", "TPC-W", "SPEC OMP"}
}

// ByName returns the named spec at the given scale.
func ByName(name string, s Scale) (*Spec, error) {
	for _, spec := range BenchSuite(s) {
		if strings.EqualFold(spec.Name, name) {
			return spec, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown application %q", name)
}
