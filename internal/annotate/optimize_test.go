package annotate

import (
	"testing"

	"kivati/internal/hw"
	"kivati/internal/minic"
)

func annotateSrc(t *testing.T, src string, opts Options) *Program {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := AnnotateWithOptions(prog, opts)
	if err != nil {
		t.Fatalf("annotate: %v", err)
	}
	return p
}

func countOn(p *Program, fn, name string) int {
	n := 0
	for _, ar := range p.ARs {
		if ar.Func == fn && ar.Key.Name == name && !ar.Key.Deref {
			n++
		}
	}
	return n
}

// A straight two-increment chain produces the all-pairs table; dedupe plus
// coalesce must collapse it while keeping the un-coverable W-W pair (it
// watches remote reads, which the R/W sub-pairs do not).
const chainSrc = `
int counter;
void work() {
  counter = counter + 1;
  counter = counter + 1;
}
int main() {
  spawn(work, 0);
  work();
  return 0;
}
`

func TestDedupeAndCoalesceCollapseChain(t *testing.T) {
	base := annotateSrc(t, chainSrc, Options{})
	if got := countOn(base, "work", "counter"); got != 6 {
		t.Fatalf("base ARs on work.counter = %d, want 6 (all pairs over R,W,R,W)", got)
	}
	opt := annotateSrc(t, chainSrc, Options{
		Optimize: OptimizeOptions{Dedupe: true, Coalesce: true},
	})
	got := countOn(opt, "work", "counter")
	if got >= 6 || got < 1 {
		t.Fatalf("optimized ARs on work.counter = %d, want a real reduction from 6", got)
	}
	// The W-W pair watches remote reads; every other pair watches only
	// writes, so no combination of them covers it and it must survive.
	foundWW := false
	for _, ar := range opt.ARs {
		if ar.Func == "work" && ar.Key.Name == "counter" &&
			ar.First == hw.Write && ar.Second == hw.Write && ar.Watch == hw.Read {
			foundWW = true
		}
	}
	if !foundWW {
		t.Error("optimizer dropped the W-W pair (watch=R); its sub-pairs only watch writes")
	}
	if opt.OptStats.Input != len(base.ARs) {
		t.Errorf("OptStats.Input = %d, want %d", opt.OptStats.Input, len(base.ARs))
	}
	if opt.OptStats.Output != len(opt.ARs) {
		t.Errorf("OptStats.Output = %d, table has %d", opt.OptStats.Output, len(opt.ARs))
	}
}

// The W-R-W pattern in one function: the long W..W pair watches reads and
// must not be deduped against its write-watching halves, nor may the halves
// coalesce (the merged endpoints' watch type would not be covered).
const wrwSrc = `
int x;
void work() {
  int t;
  x = 1;
  t = x;
  x = 2;
  print(t);
}
int main() {
  spawn(work, 0);
  work();
  return 0;
}
`

func TestWRWLongPairSurvives(t *testing.T) {
	opt := annotateSrc(t, wrwSrc, Options{
		Optimize: OptimizeOptions{Dedupe: true, Coalesce: true},
	})
	found := false
	for _, ar := range opt.ARs {
		if ar.Func == "work" && ar.Key.Name == "x" &&
			ar.First == hw.Write && ar.Second == hw.Write {
			found = true
		}
	}
	if !found {
		t.Fatalf("W-W pair on x missing after optimization:\n%s", Describe(opt))
	}
}

// Consistently lock-protected accesses yield serializability proofs; with
// DropBenign the regions disappear, without it they are whitelisted.
const protectedSrc = `
int m;
int counter;
void work() {
  lock(m);
  counter = counter + 1;
  unlock(m);
}
int main() {
  spawn(work, 0);
  work();
  return 0;
}
`

func TestBenignProofsAndDrop(t *testing.T) {
	classified := annotateSrc(t, protectedSrc, Options{Lockset: true})
	ids := classified.StaticWhitelistIDs()
	if len(ids) == 0 {
		t.Fatal("no static whitelist IDs on a consistently locked counter")
	}
	for _, id := range ids {
		ar := classified.ByID(id)
		if ar == nil || ar.Proof != "m" {
			t.Fatalf("whitelisted AR %d has proof %q, want m", id, ar.Proof)
		}
	}
	dropped := annotateSrc(t, protectedSrc, Options{Optimize: OptimizeOptions{DropBenign: true}})
	if got := countOn(dropped, "work", "counter"); got != 0 {
		t.Errorf("DropBenign left %d ARs on the proven counter", got)
	}
	if dropped.OptStats.Benign == 0 {
		t.Error("OptStats.Benign = 0 after dropping proven regions")
	}
	// DropBenign implies the lockset analysis.
	if dropped.Locks == nil {
		t.Error("DropBenign build has no lockset info")
	}
}

// Racy variables (no common lock) must never be proven or dropped.
func TestUnprotectedNeverDropped(t *testing.T) {
	base := annotateSrc(t, chainSrc, Options{})
	opt := annotateSrc(t, chainSrc, Options{Lockset: true, Optimize: OptimizeOptions{DropBenign: true}})
	if len(opt.ARs) != len(base.ARs) {
		t.Errorf("DropBenign changed the AR count on an unprotected chain: %d -> %d",
			len(base.ARs), len(opt.ARs))
	}
	if got := len(opt.StaticWhitelistIDs()); got != 0 {
		t.Errorf("static whitelist has %d entries for a racy counter, want 0", got)
	}
}

// After optimization, IDs must stay dense and the begin/end maps must carry
// exactly the surviving regions.
func TestOptimizedIDsDenseAndMapsConsistent(t *testing.T) {
	for _, opts := range []Options{
		{},
		{Lockset: true},
		{Optimize: OptimizeOptions{Dedupe: true}},
		{Optimize: OptimizeOptions{DropBenign: true, Dedupe: true, Coalesce: true}},
	} {
		p := annotateSrc(t, wrwSrc, opts)
		for i, ar := range p.ARs {
			if ar.ID != i+1 {
				t.Fatalf("opts %+v: ARs[%d].ID = %d, want %d", opts, i, ar.ID, i+1)
			}
			if p.ByID(ar.ID) != ar {
				t.Fatalf("opts %+v: ByID(%d) mismatch", opts, ar.ID)
			}
		}
		seen := map[int]bool{}
		for _, fa := range p.Funcs {
			for n, ars := range fa.Begin {
				for _, ar := range ars {
					if ar.FirstNode != n {
						t.Fatalf("Begin map anchors AR%d at the wrong node", ar.ID)
					}
					seen[ar.ID] = true
				}
			}
			for n, ars := range fa.End {
				for _, ar := range ars {
					if ar.SecondNode != n {
						t.Fatalf("End map anchors AR%d at the wrong node", ar.ID)
					}
				}
			}
		}
		if len(seen) != len(p.ARs) {
			t.Fatalf("opts %+v: begin maps carry %d ARs, table has %d", opts, len(seen), len(p.ARs))
		}
	}
}

// Options.Key must separate every configuration that changes the AR table.
func TestOptionsKeyDistinguishesConfigurations(t *testing.T) {
	opts := []Options{
		{},
		{Precise: true},
		{InterProcedural: true},
		{Lockset: true},
		{Lockset: true, Roots: []string{"worker"}},
		{Optimize: OptimizeOptions{DropBenign: true}},
		{Optimize: OptimizeOptions{Dedupe: true}},
		{Optimize: OptimizeOptions{Coalesce: true}},
		{Optimize: OptimizeOptions{DropBenign: true, Dedupe: true, Coalesce: true}},
	}
	seen := map[string]int{}
	for i, o := range opts {
		k := o.Key()
		if j, dup := seen[k]; dup {
			t.Errorf("options %d and %d share cache key %q", i, j, k)
		}
		seen[k] = i
	}
}
