package annotate

import (
	"sort"

	"kivati/internal/cfg"
	"kivati/internal/hw"
	"kivati/internal/interleave"
)

// OptimizeOptions selects the annotation optimizer's passes. All three only
// ever remove or merge regions whose prevention coverage another region (or
// a lockset proof) subsumes; the differential oracle in internal/explore
// checks the combination end to end.
type OptimizeOptions struct {
	// DropBenign removes regions carrying a static serializability proof:
	// the common lock already excludes every conflicting remote access, so
	// the watchpoint can never usefully fire. Implies Options.Lockset.
	DropBenign bool
	// Dedupe removes a region when two kept (or proven-benign) regions
	// split it at a shared middle access that lies on every path between
	// its endpoints and jointly watch at least what it watches — the
	// all-pairs analysis emits every such "long" pair alongside its parts.
	Dedupe bool
	// Coalesce merges two regions that chain through a shared access and
	// watch the same remote types into one region spanning both, halving
	// the begin/end annotation stream for straight-line access chains.
	Coalesce bool
}

// Any reports whether any pass is enabled.
func (o OptimizeOptions) Any() bool { return o.DropBenign || o.Dedupe || o.Coalesce }

// OptStats summarizes one optimizer run.
type OptStats struct {
	Input     int // ARs before optimization
	Benign    int // dropped: statically proven serializable
	Deduped   int // dropped: covered by a pair of sub-regions
	Coalesced int // removed by merging chained regions
	Output    int // ARs after optimization
}

// acc identifies one access: a CFG node and an index into its ordered
// shared-access list.
type acc struct{ node, idx int }

func firstAcc(ar *AR) acc  { return acc{ar.FirstNode.ID, ar.FirstIdx} }
func secondAcc(ar *AR) acc { return acc{ar.SecondNode.ID, ar.SecondIdx} }

// watchSubset reports x ⊆ y on access-type bit sets.
func watchSubset(x, y hw.AccessType) bool { return x&^y == 0 }

// optimize runs the enabled passes over the program's AR table (IDs not yet
// assigned) and returns the surviving regions in deterministic order.
func optimize(p *Program, o OptimizeOptions) ([]*AR, OptStats) {
	stats := OptStats{Input: len(p.ARs)}
	graphs := map[string]*cfg.Graph{}
	order := map[string]int{}
	for i, fa := range p.Funcs {
		graphs[fa.Fn.Name] = fa.Graph
		order[fa.Fn.Name] = i
	}

	// Group by (function, variable): every pass reasons about overlapping
	// regions on one variable in one function.
	type groupKey struct {
		fn  string
		key string
	}
	groups := map[groupKey][]*AR{}
	var keys []groupKey
	for _, ar := range p.ARs {
		gk := groupKey{ar.Func, ar.Key.String()}
		if groups[gk] == nil {
			keys = append(keys, gk)
		}
		groups[gk] = append(groups[gk], ar)
	}
	sort.Slice(keys, func(i, j int) bool {
		if order[keys[i].fn] != order[keys[j].fn] {
			return order[keys[i].fn] < order[keys[j].fn]
		}
		return keys[i].key < keys[j].key
	})

	var out []*AR
	for _, gk := range keys {
		kept := groups[gk]
		var benign []*AR
		if o.DropBenign {
			var rest []*AR
			for _, ar := range kept {
				if ar.Benign() {
					benign = append(benign, ar)
				} else {
					rest = append(rest, ar)
				}
			}
			stats.Benign += len(benign)
			kept = rest
		}
		if o.Dedupe {
			kept = dedupe(graphs[gk.fn], kept, benign, &stats)
		}
		if o.Coalesce {
			kept = coalesce(p, kept, &stats)
		}
		out = append(out, kept...)
	}

	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if order[a.Func] != order[b.Func] {
			return order[a.Func] < order[b.Func]
		}
		if a.Key != b.Key {
			return a.Key.String() < b.Key.String()
		}
		if fa, fb := firstAcc(a), firstAcc(b); fa != fb {
			return fa.node < fb.node || (fa.node == fb.node && fa.idx < fb.idx)
		}
		sa, sb := secondAcc(a), secondAcc(b)
		return sa.node < sb.node || (sa.node == sb.node && sa.idx < sb.idx)
	})
	stats.Output = len(out)
	return out, stats
}

// regionSize counts the nodes on any first→second path of the region — the
// span measure used to drop the longest regions first, so short regions
// remain as covers.
func regionSize(g *cfg.Graph, ar *AR) int {
	n := 0
	fwd := reachFrom(g, ar.FirstNode, false, -1)
	bwd := reachFrom(g, ar.SecondNode, true, -1)
	for id := range fwd {
		if fwd[id] && bwd[id] {
			n++
		}
	}
	return n
}

// reachFrom returns the nodes reachable from `from` (backward over Preds
// when back is set), never traversing through node ID `skip`.
func reachFrom(g *cfg.Graph, from *cfg.Node, back bool, skip int) []bool {
	seen := make([]bool, len(g.Nodes))
	if from.ID == skip {
		return seen
	}
	seen[from.ID] = true
	work := []*cfg.Node{from}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		next := n.Succs
		if back {
			next = n.Preds
		}
		for _, s := range next {
			if s.ID != skip && !seen[s.ID] {
				seen[s.ID] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// onEveryPath reports whether access b lies on every execution path from
// access a to access c. Within one node the ordered access list is
// straight-line; across nodes, b's node must disconnect a from c when
// removed.
func onEveryPath(g *cfg.Graph, a, b, c acc) bool {
	if a.node == c.node {
		return b.node == a.node && a.idx < b.idx && b.idx < c.idx
	}
	if b.node == a.node {
		return b.idx > a.idx
	}
	if b.node == c.node {
		return b.idx < c.idx
	}
	return !reachFrom(g, nodeByID(g, a.node), false, b.node)[c.node]
}

func nodeByID(g *cfg.Graph, id int) *cfg.Node { return g.Nodes[id] }

// dedupe drops every region that a pair of sub-regions covers: a shared
// middle access on every path between the endpoints, with the sub-regions
// jointly watching at least the dropped region's watch set. Proven-benign
// regions count as covers with an unrestricted watch — the lock excludes
// remote accesses in their window entirely. Longest regions go first, so a
// dropped region is always covered, transitively, by kept ones.
func dedupe(g *cfg.Graph, kept, benign []*AR, stats *OptStats) []*AR {
	type cover struct {
		watch hw.AccessType
		live  bool // still available as a cover
	}
	const fullWatch = hw.AccessType(hw.Read | hw.Write)
	type span struct{ first, second acc }
	covers := map[span]*cover{}
	for _, ar := range kept {
		covers[span{firstAcc(ar), secondAcc(ar)}] = &cover{watch: ar.Watch, live: true}
	}
	for _, ar := range benign {
		covers[span{firstAcc(ar), secondAcc(ar)}] = &cover{watch: fullWatch, live: true}
	}
	// Candidate middle accesses: every access that anchors some region in
	// the group.
	mids := map[acc]bool{}
	for _, ar := range kept {
		mids[firstAcc(ar)] = true
		mids[secondAcc(ar)] = true
	}
	var midList []acc
	for m := range mids {
		midList = append(midList, m)
	}
	sort.Slice(midList, func(i, j int) bool {
		return midList[i].node < midList[j].node ||
			(midList[i].node == midList[j].node && midList[i].idx < midList[j].idx)
	})

	idx := make([]int, len(kept))
	for i := range kept {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return regionSize(g, kept[idx[i]]) > regionSize(g, kept[idx[j]])
	})

	dropped := make([]bool, len(kept))
	for _, i := range idx {
		ar := kept[i]
		a, c := firstAcc(ar), secondAcc(ar)
		for _, b := range midList {
			if b == a || b == c {
				continue
			}
			q1 := covers[span{a, b}]
			q2 := covers[span{b, c}]
			if q1 == nil || !q1.live || q2 == nil || !q2.live {
				continue
			}
			if !watchSubset(ar.Watch, q1.watch&q2.watch) {
				continue
			}
			if !onEveryPath(g, a, b, c) {
				continue
			}
			dropped[i] = true
			covers[span{a, c}].live = false
			stats.Deduped++
			break
		}
	}
	var out []*AR
	for i, ar := range kept {
		if !dropped[i] {
			out = append(out, ar)
		}
	}
	return out
}

// coalesce repeatedly merges two regions chained through a shared access
// into one region spanning both. The merge is prevention-sound — the merged
// window contains both originals and watches the same types — and is only
// done when both watch sets agree and already cover the merged endpoint
// pair's Figure 6 watch type, so the merged region traps no more than the
// chain did. Duplicate spans left behind (a merge can recreate an existing
// long region) collapse into one with the union watch.
func coalesce(p *Program, kept []*AR, stats *OptStats) []*AR {
	for {
		merged := false
		for i := 0; i < len(kept) && !merged; i++ {
			for j := 0; j < len(kept); j++ {
				if i == j {
					continue
				}
				q1, q2 := kept[i], kept[j]
				if secondAcc(q1) != firstAcc(q2) || q1.Watch != q2.Watch {
					continue
				}
				if !watchSubset(interleave.WatchType(q1.First, q2.Second), q1.Watch) {
					continue
				}
				m := &AR{
					Func:       q1.Func,
					Key:        q1.Key,
					Target:     q1.Target,
					Size:       q1.Size,
					First:      q1.First,
					Second:     q2.Second,
					Watch:      q1.Watch,
					FirstNode:  q1.FirstNode,
					SecondNode: q2.SecondNode,
					FirstIdx:   q1.FirstIdx,
					SecondIdx:  q2.SecondIdx,
				}
				if p.Locks != nil && !m.Key.Deref {
					if lk, ok := p.Locks.ProveRegion(m.Func, m.Key.Name, m.FirstNode, m.SecondNode); ok {
						m.Proof = lk
					}
				}
				var rest []*AR
				for k, ar := range kept {
					if k != i && k != j {
						rest = append(rest, ar)
					}
				}
				kept = append(rest, m)
				stats.Coalesced++
				merged = true
				break
			}
		}
		if !merged {
			break
		}
	}
	// Collapse duplicate spans (merged region == an existing long pair).
	type span struct{ first, second acc }
	seen := map[span]*AR{}
	var out []*AR
	for _, ar := range kept {
		sp := span{firstAcc(ar), secondAcc(ar)}
		if prev := seen[sp]; prev != nil {
			prev.Watch |= ar.Watch
			if prev.Proof == "" {
				prev.Proof = ar.Proof
			}
			stats.Coalesced++
			continue
		}
		seen[sp] = ar
		out = append(out, ar)
	}
	return out
}
