package annotate

import (
	"strings"
	"testing"

	"kivati/internal/cfg"
	"kivati/internal/hw"
	"kivati/internal/minic"
)

func mustAnnotate(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ap, err := Annotate(prog)
	if err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	return ap
}

// TestFigure1 annotates the paper's Figure 1 Firefox bug pattern: check
// NULL, then assign — a (R, W) pair watching remote writes.
func TestFigure1(t *testing.T) {
	ap := mustAnnotate(t, `
int shared_ptr;
void update() {
    if (shared_ptr == 0) {
        shared_ptr = 42;
    }
}`)
	var found *AR
	for _, ar := range ap.ARs {
		if ar.Key.Name == "shared_ptr" && ar.First == hw.Read && ar.Second == hw.Write {
			found = ar
		}
	}
	if found == nil {
		t.Fatalf("no R-W AR on shared_ptr; ARs:\n%s", Describe(ap))
	}
	if found.Watch != hw.Write {
		t.Errorf("watch type = %v, want W (Figure 6 R/W quadrant)", found.Watch)
	}
	if found.FirstNode.Kind != cfg.KindCond {
		t.Errorf("first access node kind = %v, want condition", found.FirstNode.Kind)
	}
}

// TestFigure3 reproduces the paper's Figure 3 annotation placement: two
// overlapping ARs on two different shared variables.
func TestFigure3(t *testing.T) {
	ap := mustAnnotate(t, `
int shared1;
int shared2;
void f() {
    int t1;
    int t2;
    t1 = shared1;
    t2 = shared2;
    shared1 = t1 + 1;
    shared2 = t2 + 1;
}`)
	var s1, s2 []*AR
	for _, ar := range ap.ARs {
		switch ar.Key.Name {
		case "shared1":
			s1 = append(s1, ar)
		case "shared2":
			s2 = append(s2, ar)
		}
	}
	if len(s1) != 1 || len(s2) != 1 {
		t.Fatalf("want exactly one AR per shared var, got %d and %d:\n%s", len(s1), len(s2), Describe(ap))
	}
	// The printed form shows begin(1) before begin(2) and end(1) before
	// end(2) — overlapping regions as in Figure 3.
	out := PrintAnnotated(ap)
	i1 := strings.Index(out, "begin_atomic(1")
	i2 := strings.Index(out, "begin_atomic(2")
	e1 := strings.Index(out, "end_atomic(1")
	e2 := strings.Index(out, "end_atomic(2")
	if !(i1 >= 0 && i2 > i1 && e1 > i2 && e2 > e1) {
		t.Errorf("annotation order wrong (overlapping ARs):\n%s", out)
	}
}

// TestFigure4 reproduces Figure 4: three pairs from three accesses, one
// access serving as both the second access of AR 1 and the first of AR 2.
func TestFigure4(t *testing.T) {
	ap := mustAnnotate(t, `
int shared;
void f() {
    int tmp;
    tmp = shared;
    if (tmp == 0) {
        shared = 1;
    }
    tmp = shared;
}`)
	var ars []*AR
	for _, ar := range ap.ARs {
		if ar.Key.Name == "shared" {
			ars = append(ars, ar)
		}
	}
	if len(ars) != 3 {
		t.Fatalf("want 3 ARs on shared, got %d:\n%s", len(ars), Describe(ap))
	}
	// One node must carry both an end (of the R-W AR) and a begin (of the
	// W-R AR): the write statement.
	fa := ap.FuncAnnotations("f")
	both := 0
	for n := range fa.Begin {
		if len(fa.End[n]) > 0 && n.Kind == cfg.KindStmt {
			both++
		}
	}
	if both == 0 {
		t.Error("no node is both an AR end and an AR begin (Figure 4 line 4 case)")
	}
}

// TestWatchTypesPerFigure6: each local pair gets the right remote watch
// types.
func TestWatchTypesPerFigure6(t *testing.T) {
	ap := mustAnnotate(t, `
int a;
void rr() { int t; int u; t = a; u = a; }
void ww() { a = 1; a = 2; }
void rw() { int t; t = a; a = t; }
void wr() { int t; a = 1; t = a; }`)
	want := map[string]hw.AccessType{
		"rr": hw.Write, "ww": hw.Read, "rw": hw.Write, "wr": hw.Write,
	}
	seen := map[string]bool{}
	for _, ar := range ap.ARs {
		if ar.Key.Name != "a" {
			continue
		}
		w, ok := want[ar.Func]
		if !ok {
			continue
		}
		seen[ar.Func] = true
		if ar.Watch != w {
			t.Errorf("%s: watch = %v, want %v (%v-%v pair)", ar.Func, ar.Watch, w, ar.First, ar.Second)
		}
	}
	for f := range want {
		if !seen[f] {
			t.Errorf("no AR found in %s", f)
		}
	}
}

func TestUniqueIDs(t *testing.T) {
	ap := mustAnnotate(t, `
int a;
int b;
void f() { a = a + 1; }
void g() { b = b + 1; a = a + b; }`)
	ids := map[int]bool{}
	for i, ar := range ap.ARs {
		if ar.ID != i+1 {
			t.Errorf("ARs[%d].ID = %d, want %d", i, ar.ID, i+1)
		}
		if ids[ar.ID] {
			t.Errorf("duplicate AR ID %d", ar.ID)
		}
		ids[ar.ID] = true
		if got := ap.ByID(ar.ID); got != ar {
			t.Errorf("ByID(%d) mismatch", ar.ID)
		}
	}
	if ap.ByID(0) != nil || ap.ByID(len(ap.ARs)+1) != nil {
		t.Error("ByID out of range should return nil")
	}
}

func TestStats(t *testing.T) {
	ap := mustAnnotate(t, `
int a;
void f() { a = a + 1; }`)
	st := ap.Stats()
	if st.Funcs != 1 {
		t.Errorf("Funcs = %d", st.Funcs)
	}
	if st.ARs == 0 || st.SharedVars == 0 {
		t.Errorf("Stats = %+v, want nonzero ARs and SharedVars", st)
	}
}

func TestPrintAnnotatedParses(t *testing.T) {
	// The annotated output (with pseudo-calls) should at least contain a
	// clear_ar per function and balanced begin/end counts.
	ap := mustAnnotate(t, `
int s;
void f() {
    int t;
    t = s;
    s = t + 1;
}
void g() {
    s = 0;
}`)
	out := PrintAnnotated(ap)
	if got := strings.Count(out, "clear_ar()"); got != 2 {
		t.Errorf("clear_ar count = %d, want 2\n%s", got, out)
	}
	if b, e := strings.Count(out, "begin_atomic("), strings.Count(out, "end_atomic("); b != e || b == 0 {
		t.Errorf("begin/end counts = %d/%d\n%s", b, e, out)
	}
}

// TestSharedPage: a function with no shared accesses gets no ARs.
func TestNoARsForPureLocal(t *testing.T) {
	ap := mustAnnotate(t, `
void f(int a) {
    int x;
    x = a + 1;
    x = x * 2;
}`)
	if len(ap.ARs) != 0 {
		t.Errorf("pure-local function produced ARs:\n%s", Describe(ap))
	}
}

// TestBothWatchUnion: when the same first access starts two ARs with
// different second access types (read on one path, write on another), the
// two ARs' watch types differ and their union covers both — the Figure 6
// bottom-right case realized via the watchpoint union rule.
func TestBothWatchUnion(t *testing.T) {
	ap := mustAnnotate(t, `
int s;
void f(int c) {
    s = 1;
    if (c) {
        s = 2;
    } else {
        int t;
        t = s;
    }
}`)
	var fromFirstWrite []*AR
	for _, ar := range ap.ARs {
		if ar.Key.Name == "s" && ar.First == hw.Write && ar.FirstNode.Kind == cfg.KindStmt {
			// the W@s=1 node starts two ARs
			fromFirstWrite = append(fromFirstWrite, ar)
		}
	}
	var union hw.AccessType
	secTypes := map[hw.AccessType]bool{}
	for _, ar := range fromFirstWrite {
		union |= ar.Watch
		secTypes[ar.Second] = true
	}
	if !secTypes[hw.Read] || !secTypes[hw.Write] {
		t.Fatalf("expected ARs with both second types from the first write; got %v", fromFirstWrite)
	}
	if union != hw.ReadWrite {
		t.Errorf("union of watch types = %v, want RW", union)
	}
}

func TestDescribeAndString(t *testing.T) {
	ap := mustAnnotate(t, "int s;\nvoid f() { s = s + 1; }")
	out := Describe(ap)
	if !strings.Contains(out, "AR1") || !strings.Contains(out, "f.s") {
		t.Errorf("Describe output = %q", out)
	}
	if got := ap.ARs[0].String(); !strings.Contains(got, "watch=") {
		t.Errorf("AR.String() = %q", got)
	}
}

func TestPrintAnnotatedWithNestedControlFlow(t *testing.T) {
	ap := mustAnnotate(t, `
int s;
void f(int c) {
    int t;
    t = s;
    while (c > 0) {
        if (t > 2) {
            s = t;
        } else {
            s = 0;
        }
        c = c - 1;
    }
    t = s;
}`)
	out := PrintAnnotated(ap)
	if b, e := strings.Count(out, "begin_atomic("), strings.Count(out, "end_atomic("); b != e || b == 0 {
		t.Errorf("begin/end = %d/%d\n%s", b, e, out)
	}
	// Nested blocks must be preserved.
	if !strings.Contains(out, "while (") || !strings.Contains(out, "else {") {
		t.Errorf("control flow lost:\n%s", out)
	}
}

func TestAnnotateWithOptionsPrecise(t *testing.T) {
	src := `
int g;
void f() {
    int copy;
    copy = g;
    copy = copy + 1;
    g = copy;
}`
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	crude, err := AnnotateWithOptions(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	precise, err := AnnotateWithOptions(prog, Options{Precise: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(precise.ARs) >= len(crude.ARs) {
		t.Errorf("precise ARs (%d) not below crude (%d)", len(precise.ARs), len(crude.ARs))
	}
	for _, ar := range precise.ARs {
		if ar.Key.Name == "copy" {
			t.Error("precise mode monitored the private local")
		}
	}
}

func TestAnnotateWithOptionsInterProcedural(t *testing.T) {
	src := `
int g;
void helper() {
    g = 1;
}
void f() {
    int t;
    t = g;
    helper();
}`
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := AnnotateWithOptions(prog, Options{InterProcedural: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ar := range inter.ARs {
		if ar.Func == "f" && ar.Key.Name == "g" && ar.First == hw.Read && ar.Second == hw.Write {
			found = true
		}
	}
	if !found {
		t.Errorf("no call-spanning R-W AR in f:\n%s", Describe(inter))
	}
}
