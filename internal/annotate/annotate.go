// Package annotate is Kivati's static annotator (§3.1): for every function
// it computes the LSV, runs the reaching-access pairing analysis, and turns
// each pair into an atomic region (AR) with a globally unique ID, the watch
// type derived from the local access pair (Figure 6), and begin/end
// annotation points attached to CFG nodes. The compiler consumes the
// annotation maps; clear_ar is emitted by the compiler at every subroutine
// exit.
package annotate

import (
	"fmt"
	"sort"
	"strings"

	"kivati/internal/analysis"
	"kivati/internal/cfg"
	"kivati/internal/hw"
	"kivati/internal/interleave"
	"kivati/internal/lockset"
	"kivati/internal/minic"
)

// AR is one atomic region: a consecutive pair of accesses to the same shared
// variable within one subroutine.
type AR struct {
	ID     int
	Func   string
	Key    analysis.Key
	Target minic.Expr    // lvalue of the first access; the watched address
	Size   int           // watched width in bytes
	First  hw.AccessType // first local access type
	Second hw.AccessType // second local access type
	Watch  hw.AccessType // remote access types to monitor

	FirstNode  *cfg.Node
	SecondNode *cfg.Node
	// FirstIdx and SecondIdx index the anchoring accesses within their
	// nodes' ordered shared-access lists, so overlapping ARs on the same
	// variable can be recognized as sharing an exact access.
	FirstIdx  int
	SecondIdx int
	// Proof names the lock the lockset analysis proved (a) held across the
	// whole region and (b) held at every access to the variable anywhere in
	// the program — making the region statically serializable. Empty when
	// unproven or when the analysis did not run.
	Proof string
}

// Benign reports whether the region carries a static serializability proof.
func (ar *AR) Benign() bool { return ar.Proof != "" }

func (ar *AR) String() string {
	return fmt.Sprintf("AR%d %s.%s %v-%v watch=%v", ar.ID, ar.Func, ar.Key, ar.First, ar.Second, ar.Watch)
}

// FuncAnnotations holds the annotation result for one function.
type FuncAnnotations struct {
	Fn    *minic.FuncDecl
	Graph *cfg.Graph
	LSV   map[string]bool
	// Begin lists the ARs whose begin_atomic precedes each node; End lists
	// the ARs whose end_atomic follows each node.
	Begin map[*cfg.Node][]*AR
	End   map[*cfg.Node][]*AR
}

// Program is a fully annotated program.
type Program struct {
	Prog  *minic.Program
	Funcs []*FuncAnnotations
	ARs   []*AR // all ARs; ARs[i].ID == i+1

	// Locks is the whole-program lockset analysis result, when
	// Options.Lockset ran.
	Locks *lockset.Info
	// Opts records the options the annotator ran with.
	Opts Options
	// OptStats summarizes what the optimizer did (zero when disabled).
	OptStats OptStats
}

// StaticWhitelistIDs returns the IDs of the ARs whose serializability the
// lockset analysis proved — the compile-time replacement for Figure 7
// training. Nil when the lockset analysis did not run.
func (p *Program) StaticWhitelistIDs() []int {
	var ids []int
	for _, ar := range p.ARs {
		if ar.Benign() {
			ids = append(ids, ar.ID)
		}
	}
	return ids
}

// ByID returns the AR with the given ID, or nil.
func (p *Program) ByID(id int) *AR {
	if id < 1 || id > len(p.ARs) {
		return nil
	}
	return p.ARs[id-1]
}

// FuncAnnotations returns the annotations for the named function, or nil.
func (p *Program) FuncAnnotations(name string) *FuncAnnotations {
	for _, fa := range p.Funcs {
		if fa.Fn.Name == name {
			return fa
		}
	}
	return nil
}

func toHW(t uint8) hw.AccessType { return hw.AccessType(t) }

// Options selects the annotator's analysis precision.
type Options struct {
	// Precise enables the §3.5 future-work analyses: a points-to pass
	// whose results (a) restrict the LSV to variables another thread can
	// actually reach — globals and address-escaping locals — removing the
	// monitors on value-dependent private locals, and (b) fold a
	// dereference through a single-target pointer onto its pointee, so
	// aliased accesses pair with direct ones.
	Precise bool
	// InterProcedural enables the §3.5 call-spanning extension: each call
	// is treated as a compound access to the globals its callee
	// transitively touches, so atomic regions form across subroutine
	// boundaries (a caller-side check paired with a helper's update).
	InterProcedural bool
	// Lockset runs the Eraser-style must-lockset analysis and records a
	// static serializability proof (AR.Proof) on every region it covers.
	// Implied by Optimize.DropBenign.
	Lockset bool
	// Roots names extra thread entry points for the lockset analysis's
	// calling-context fixpoint (functions a host starts directly).
	Roots []string
	// Optimize configures the annotation optimizer.
	Optimize OptimizeOptions
}

// Key renders the options as a canonical string for use in cache keys.
func (o Options) Key() string {
	return fmt.Sprintf("precise=%t,inter=%t,lockset=%t,roots=%s,benign=%t,dedupe=%t,coalesce=%t",
		o.Precise, o.InterProcedural, o.Lockset, strings.Join(o.Roots, "+"),
		o.Optimize.DropBenign, o.Optimize.Dedupe, o.Optimize.Coalesce)
}

// Annotate runs the static annotator over prog with the paper-prototype
// analysis (intra-procedural, name-based, value-dependence LSV).
func Annotate(prog *minic.Program) (*Program, error) {
	return AnnotateWithOptions(prog, Options{})
}

// AnnotateWithOptions runs the static annotator with the selected precision.
func AnnotateWithOptions(prog *minic.Program, opts Options) (*Program, error) {
	out := &Program{Prog: prog}
	var pt *analysis.PointsTo
	if opts.Precise {
		pt = analysis.ComputePointsTo(prog)
	}
	var effects map[string]analysis.Effect
	var extra func(*cfg.Node) []analysis.Access
	if opts.InterProcedural {
		effects = analysis.FuncEffects(prog)
		extra = func(n *cfg.Node) []analysis.Access {
			return analysis.CallAccesses(prog, effects, n)
		}
	}
	if opts.Optimize.DropBenign {
		opts.Lockset = true
	}
	out.Opts = opts
	for _, fn := range prog.Funcs {
		g := cfg.Build(fn)
		var lsv map[string]bool
		var admit func(analysis.Access) (analysis.Key, bool)
		if opts.Precise {
			lsv = analysis.PreciseLSV(prog, fn, pt)
			fnName := fn.Name
			admit = func(a analysis.Access) (analysis.Key, bool) {
				if a.Key.Deref {
					// Fold singleton-target dereferences onto the
					// pointee; pairing is per-function, so only
					// globals and this function's locals merge.
					if ref, ok := pt.Resolve(fnName, a.Key.Name); ok {
						if ref.Func == "" || ref.Func == fnName {
							return analysis.Key{Name: ref.Name}, true
						}
					}
					return a.Key, true
				}
				return a.Key, lsv[a.Key.Name]
			}
		} else {
			lsv = analysis.LSV(prog, fn)
			crude := lsv
			admit = func(a analysis.Access) (analysis.Key, bool) {
				return a.Key, crude[a.Key.Name]
			}
		}
		pairs := analysis.PairsExtra(g, admit, extra)
		fa := &FuncAnnotations{
			Fn:    fn,
			Graph: g,
			LSV:   lsv,
			Begin: make(map[*cfg.Node][]*AR),
			End:   make(map[*cfg.Node][]*AR),
		}
		for _, p := range pairs {
			first := toHW(p.FirstType)
			second := toHW(p.SecondType)
			ar := &AR{
				Func:       fn.Name,
				Key:        p.Key,
				Target:     p.FirstLvalue,
				Size:       8,
				First:      first,
				Second:     second,
				Watch:      interleave.WatchType(first, second),
				FirstNode:  p.FirstNode,
				SecondNode: p.SecondNode,
				FirstIdx:   p.FirstIdx,
				SecondIdx:  p.SecondIdx,
			}
			out.ARs = append(out.ARs, ar)
		}
		out.Funcs = append(out.Funcs, fa)
	}

	if opts.Lockset {
		graphs := make(map[string]*cfg.Graph, len(out.Funcs))
		for _, fa := range out.Funcs {
			graphs[fa.Fn.Name] = fa.Graph
		}
		out.Locks = lockset.Compute(prog, graphs, lockset.Options{Roots: opts.Roots})
		for _, ar := range out.ARs {
			if ar.Key.Deref {
				continue
			}
			if lk, ok := out.Locks.ProveRegion(ar.Func, ar.Key.Name, ar.FirstNode, ar.SecondNode); ok {
				ar.Proof = lk
			}
		}
	}
	if opts.Optimize.Any() {
		out.ARs, out.OptStats = optimize(out, opts.Optimize)
	}

	// IDs are assigned only now, after classification and optimization, so
	// the table stays dense (ARs[i].ID == i+1) and the begin/end annotation
	// maps only carry surviving regions.
	byFunc := map[string]*FuncAnnotations{}
	for _, fa := range out.Funcs {
		byFunc[fa.Fn.Name] = fa
	}
	for i, ar := range out.ARs {
		ar.ID = i + 1
		fa := byFunc[ar.Func]
		fa.Begin[ar.FirstNode] = append(fa.Begin[ar.FirstNode], ar)
		fa.End[ar.SecondNode] = append(fa.End[ar.SecondNode], ar)
	}
	return out, nil
}

// Stats summarizes the annotation result.
type Stats struct {
	Funcs      int
	ARs        int
	SharedVars int // distinct (func, key) shared variables with at least one AR
}

// Stats computes summary statistics.
func (p *Program) Stats() Stats {
	vars := map[string]bool{}
	for _, ar := range p.ARs {
		vars[ar.Func+"."+ar.Key.String()] = true
	}
	return Stats{Funcs: len(p.Funcs), ARs: len(p.ARs), SharedVars: len(vars)}
}

// PrintAnnotated renders the program with annotation pseudo-statements
// inserted, in the style of the paper's Figures 3 and 4. Annotations whose
// anchor is a branch or loop condition are printed before/after the
// enclosing if/while statement with a comment, since MiniC source has no
// finer position for them; the compiler places them exactly.
func PrintAnnotated(p *Program) string {
	clone := cloneProgram(p.Prog)
	for _, fa := range p.Funcs {
		// Build per-original-statement annotation lists.
		begins := map[minic.Stmt][]*AR{}
		ends := map[minic.Stmt][]*AR{}
		condBegins := map[minic.Stmt][]*AR{}
		condEnds := map[minic.Stmt][]*AR{}
		for n, ars := range fa.Begin {
			switch n.Kind {
			case cfg.KindStmt:
				begins[n.Stmt] = append(begins[n.Stmt], ars...)
			case cfg.KindCond:
				condBegins[n.Owner] = append(condBegins[n.Owner], ars...)
			}
		}
		for n, ars := range fa.End {
			switch n.Kind {
			case cfg.KindStmt:
				ends[n.Stmt] = append(ends[n.Stmt], ars...)
			case cfg.KindCond:
				condEnds[n.Owner] = append(condEnds[n.Owner], ars...)
			}
		}
		orig := p.Prog.Func(fa.Fn.Name)
		cl := clone.Func(fa.Fn.Name)
		cl.Body = annotateBlock(orig.Body, begins, ends, condBegins, condEnds)
		// clear_ar at subroutine exit.
		cl.Body.Stmts = append(cl.Body.Stmts, &minic.AnnotStmt{Kind: minic.AnnotClear})
	}
	return minic.Print(clone)
}

func sortARs(ars []*AR) {
	sort.Slice(ars, func(i, j int) bool { return ars[i].ID < ars[j].ID })
}

func annotStmts(ars []*AR, begin bool) []minic.Stmt {
	sortARs(ars)
	out := make([]minic.Stmt, 0, len(ars))
	for _, ar := range ars {
		if begin {
			out = append(out, &minic.AnnotStmt{
				Kind:   minic.AnnotBegin,
				ARID:   ar.ID,
				Target: ar.Target,
				Size:   ar.Size,
				Watch:  uint8(ar.Watch),
				First:  uint8(ar.First),
			})
		} else {
			out = append(out, &minic.AnnotStmt{
				Kind:   minic.AnnotEnd,
				ARID:   ar.ID,
				Second: uint8(ar.Second),
			})
		}
	}
	return out
}

// annotateBlock rebuilds a block with annotations woven around the original
// statements. Statements are cloned shallowly (nested blocks rebuilt);
// expressions are shared, as they are never mutated.
func annotateBlock(b *minic.Block, begins, ends, condBegins, condEnds map[minic.Stmt][]*AR) *minic.Block {
	out := &minic.Block{}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, annotStmts(begins[s], true)...)
		out.Stmts = append(out.Stmts, annotStmts(condBegins[s], true)...)
		switch st := s.(type) {
		case *minic.IfStmt:
			cl := &minic.IfStmt{Pos: st.Pos, Cond: st.Cond}
			cl.Then = annotateBlock(st.Then, begins, ends, condBegins, condEnds)
			if st.Else != nil {
				cl.Else = annotateBlock(st.Else, begins, ends, condBegins, condEnds)
			}
			out.Stmts = append(out.Stmts, cl)
		case *minic.WhileStmt:
			cl := &minic.WhileStmt{Pos: st.Pos, Cond: st.Cond}
			cl.Body = annotateBlock(st.Body, begins, ends, condBegins, condEnds)
			out.Stmts = append(out.Stmts, cl)
		default:
			out.Stmts = append(out.Stmts, s)
		}
		out.Stmts = append(out.Stmts, annotStmts(ends[s], false)...)
		out.Stmts = append(out.Stmts, annotStmts(condEnds[s], false)...)
	}
	return out
}

func cloneProgram(p *minic.Program) *minic.Program {
	out := &minic.Program{Globals: p.Globals}
	for _, f := range p.Funcs {
		out.Funcs = append(out.Funcs, &minic.FuncDecl{
			Pos: f.Pos, Name: f.Name, Params: f.Params,
			Void: f.Void, RetPtr: f.RetPtr, Body: f.Body,
		})
	}
	return out
}

// Describe renders the AR table as text, one AR per line.
func Describe(p *Program) string {
	var b strings.Builder
	for _, ar := range p.ARs {
		fmt.Fprintf(&b, "%s\n", ar)
	}
	return b.String()
}
