package pool

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// countSpawns routes the pool's spawn hook into a counter for the duration
// of fn.
func countSpawns(t *testing.T, fn func()) int64 {
	t.Helper()
	var n int64
	onSpawn = func() { atomic.AddInt64(&n, 1) }
	defer func() { onSpawn = nil }()
	fn()
	return atomic.LoadInt64(&n)
}

// TestSerialFastPathSpawnsNoGoroutines asserts the workers==1 path runs
// every job on the calling goroutine while still slotting results by job
// index.
func TestSerialFastPathSpawnsNoGoroutines(t *testing.T) {
	jobs := make([]func() (int, error), 10)
	for i := range jobs {
		i := i
		jobs[i] = func() (int, error) { return i * i, nil }
	}
	var res []int
	var err error
	spawned := countSpawns(t, func() { res, err = Run(1, jobs) })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if spawned != 0 {
		t.Fatalf("serial fast path spawned %d goroutines, want 0", spawned)
	}
	for i, v := range res {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}

	// The concurrent path does spawn — the hook sees every worker.
	spawned = countSpawns(t, func() { res, err = Run(4, jobs) })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if spawned != 4 {
		t.Fatalf("concurrent path spawned %d goroutines, want 4", spawned)
	}
	for i, v := range res {
		if v != i*i {
			t.Fatalf("concurrent result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestLowestIndexedErrorMatchesSerial asserts both paths report the error
// of the lowest-indexed failing job, regardless of completion order.
func TestLowestIndexedErrorMatchesSerial(t *testing.T) {
	mkJobs := func() []func() (int, error) {
		jobs := make([]func() (int, error), 8)
		for i := range jobs {
			i := i
			jobs[i] = func() (int, error) {
				if i == 3 || i == 6 {
					return 0, fmt.Errorf("job %d failed", i)
				}
				return i, nil
			}
		}
		return jobs
	}
	_, serialErr := Run(1, mkJobs())
	if serialErr == nil || serialErr.Error() != "job 3 failed" {
		t.Fatalf("serial error = %v, want job 3 failed", serialErr)
	}
	for _, workers := range []int{2, 4, 8} {
		_, err := Run(workers, mkJobs())
		if err == nil || err.Error() != serialErr.Error() {
			t.Fatalf("workers=%d error = %v, want %v", workers, err, serialErr)
		}
	}
}

// TestSerialStopsAtFirstError asserts the fast path does not run jobs past
// the failure, matching the pre-pool harness.
func TestSerialStopsAtFirstError(t *testing.T) {
	ran := make([]bool, 5)
	jobs := make([]func() (int, error), 5)
	for i := range jobs {
		i := i
		jobs[i] = func() (int, error) {
			ran[i] = true
			if i == 2 {
				return 0, errors.New("boom")
			}
			return i, nil
		}
	}
	if _, err := Run(1, jobs); err == nil {
		t.Fatal("expected error")
	}
	want := []bool{true, true, true, false, false}
	for i := range want {
		if ran[i] != want[i] {
			t.Fatalf("ran = %v, want %v", ran, want)
		}
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-2); got < 1 {
		t.Fatalf("Workers(-2) = %d, want >= 1", got)
	}
}

func TestEmptyJobs(t *testing.T) {
	res, err := Run[int](4, nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("Run(4, nil) = %v, %v", res, err)
	}
}
