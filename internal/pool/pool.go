// Package pool is the bounded worker pool the harness and the schedule
// explorer fan independent VM runs out on. Determinism is preserved by
// slotting each result into its job index rather than by arrival order,
// and by reporting the lowest-indexed error — exactly the run a serial
// sweep would have failed on first.
package pool

import (
	"runtime"
	"sync"
)

// Workers resolves a requested parallelism: n if positive, otherwise
// GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// onSpawn, when non-nil, is called once per worker goroutine the pool
// starts. Tests use it to assert the serial fast path never spawns.
var onSpawn func()

// Run executes the jobs on a pool of at most workers goroutines and
// returns their results in job order. If any job fails, the error of the
// lowest-indexed failing job is returned (matching what a serial sweep
// would have reported) along with the partial results. workers == 1 is a
// serial fast path: the jobs run on the calling goroutine, stopping at the
// first error.
func Run[T any](workers int, jobs []func() (T, error)) ([]T, error) {
	results := make([]T, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers == 1 {
		for i, job := range jobs {
			res, err := job()
			if err != nil {
				return results, err
			}
			results[i] = res
		}
		return results, nil
	}

	errs := make([]error, len(jobs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if onSpawn != nil {
				onSpawn()
			}
			for i := range next {
				results[i], errs[i] = jobs[i]()
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
