package core

import (
	"testing"

	"kivati/internal/annotate"
	"kivati/internal/compile"
	"kivati/internal/kernel"
)

const src = `
int s;
int lk;
int done;
void worker(int n) {
    int i;
    i = 0;
    while (i < 50) {
        s = s + 1;
        i = i + 1;
    }
    lock(lk);
    done = done + 1;
    unlock(lk);
}
void main() {
    spawn(worker, 0);
    worker(0);
    while (done < 2) {
        yield();
    }
    print(s);
}
`

func TestBuildErrors(t *testing.T) {
	if _, err := Build("not a program"); err == nil {
		t.Error("want parse error")
	}
	if _, err := BuildWithOptions("void f() { undefined(); }", annotate.Options{Precise: true}); err == nil {
		t.Error("want check error")
	}
}

func TestBinaryCaching(t *testing.T) {
	p, err := Build(src)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := p.Binary(compile.Options{Annotate: true})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := p.Binary(compile.Options{Annotate: true})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("same options recompiled instead of cached")
	}
	v, err := p.Binary(compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v == a1 {
		t.Error("vanilla and annotated binaries must differ")
	}
}

func TestRunDefaults(t *testing.T) {
	p, err := Build(src)
	if err != nil {
		t.Fatal(err)
	}
	// Zero config: prevention, base, 2 cores, 4 watchpoints, main().
	res, err := Run(p, RunConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != "completed" {
		t.Fatalf("reason %q", res.Reason)
	}
	if len(res.Output) != 1 {
		t.Fatalf("output %v", res.Output)
	}
	if res.Stats.Begins == 0 {
		t.Error("annotations not executed under defaults")
	}
}

func TestRunUnknownStart(t *testing.T) {
	p, err := Build(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, RunConfig{Starts: []Start{{Fn: "nope"}}}); err == nil {
		t.Error("want error for unknown entry function")
	}
}

func TestRunFaultReturnsError(t *testing.T) {
	p, err := Build(`
int z;
void main() {
    print(1 / z);
}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, RunConfig{}); err == nil {
		t.Error("want error for faulting program")
	}
}

func TestShadowDeltaOnlyWithOpt3(t *testing.T) {
	p, err := Build(src)
	if err != nil {
		t.Fatal(err)
	}
	// Base config compiles without shadow writes.
	cfg := RunConfig{Opt: kernel.OptBase}
	if got := cfg.compileOptions(); got.ShadowWrites {
		t.Error("base config requested shadow writes")
	}
	cfg = RunConfig{Opt: kernel.OptOptimized}
	if got := cfg.compileOptions(); !got.ShadowWrites || !got.Annotate {
		t.Errorf("optimized compile options = %+v", got)
	}
	cfg = RunConfig{Vanilla: true}
	if got := cfg.compileOptions(); got.Annotate {
		t.Error("vanilla config requested annotations")
	}
	_ = p
}

func TestTrainRespectsBugVars(t *testing.T) {
	p, err := Build(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Train(p, RunConfig{Seed: 3}, 2, map[string]bool{"s": true})
	if err != nil {
		t.Fatal(err)
	}
	// Every violation in this program is on the bug variable: nothing may
	// be whitelisted.
	if tr.Whitelist.Len() != 0 {
		t.Errorf("bug-variable ARs whitelisted: %v", tr.Whitelist.IDs())
	}
	tr2, err := Train(p, RunConfig{Seed: 3}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Whitelist.Len() == 0 {
		t.Error("training without bug vars whitelisted nothing")
	}
}

func TestSyncVarWhitelistExtraNames(t *testing.T) {
	p, err := Build(src)
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.SyncVarWhitelist()
	if err != nil {
		t.Fatal(err)
	}
	withDone, err := p.SyncVarWhitelist("done")
	if err != nil {
		t.Fatal(err)
	}
	if withDone.Len() <= base.Len() {
		t.Errorf("extra flag name added nothing: %d vs %d", withDone.Len(), base.Len())
	}
}
