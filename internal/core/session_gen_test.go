package core_test

import (
	"math/rand"
	"reflect"
	"testing"

	"kivati/internal/annotate"
	"kivati/internal/core"
	"kivati/internal/corpusgen"
	"kivati/internal/kernel"
	"kivati/internal/vm"
)

// capturePolicy replays a recorded decision trace and captures one
// copy-on-write snapshot inside Pick at absolute decision index at — the
// quiescent branch point the snapshot engine's framePolicy keys on. The
// decision at that index has not been consumed yet, so a resume from the
// snapshot replays the chosen tail starting at at.
type capturePolicy struct {
	t     *testing.T
	m     *vm.Machine
	inner *vm.Replayer
	at    uint64
	snap  *vm.Snapshot
}

func (p *capturePolicy) Pick(sp vm.SchedPoint) int {
	if sp.Seq == p.at && p.snap == nil {
		snap, err := p.m.Snapshot()
		if err != nil {
			p.t.Errorf("mid-run snapshot at decision %d: %v", sp.Seq, err)
		}
		p.snap = snap
	}
	return p.inner.Pick(sp)
}

// genSession builds a session for one generated Arrays program in the
// snapshot engine's configuration: prevention kernel, fast dispatch. The
// ring-buffer decoy's dynamic indices give its blocks an Unbounded static
// footprint, so every fast-path visit demotes to checked mode.
func genSession(t *testing.T, p *corpusgen.Program) *core.Session {
	t.Helper()
	prog, err := core.BuildWithOptions(p.Source, annotate.Options{})
	if err != nil {
		t.Fatalf("%s: build: %v", p.Name, err)
	}
	s, err := core.NewSession(prog, core.RunConfig{
		Mode:           kernel.Prevention,
		Opt:            kernel.OptBase,
		NumWatchpoints: 16,
		Cores:          1,
		Seed:           1,
		MaxTicks:       4_000_000,
		TimeoutTicks:   10_000,
		Costs:          vm.DefaultCosts(),
		SnapshotVars:   p.SnapshotVars,
		Dispatch:       vm.DispatchFast,
		HashMemory:     true,
	})
	if err != nil {
		t.Fatalf("%s: session: %v", p.Name, err)
	}
	return s
}

// TestSessionSnapshotRestoreGenerated pins vm.Snapshot/Restore against a
// generated program that hits the Unbounded footprint escape: a full
// recorded run must count Unbounded demotions, a mid-run branch-point
// snapshot plus a tail replay must reproduce the full run's final state
// exactly — observables, ticks, memory hash, and the demotion counters,
// which ride the snapshot like every other piece of machine state.
func TestSessionSnapshotRestoreGenerated(t *testing.T) {
	p := corpusgen.One(corpusgen.Options{Count: 8, Seed: 21, Arrays: true}, 0)
	s := genSession(t, p)
	const quantum, seed = 17, 7

	rng := rand.New(rand.NewSource(99))
	rec := vm.NewRecorder(vm.PolicyFunc(func(sp vm.SchedPoint) int {
		return rng.Intn(len(sp.Runnable))
	}))
	full, err := s.RunSchedule(rec, quantum, seed)
	if err != nil {
		t.Fatal(err)
	}
	if full.Reason != "completed" {
		t.Fatalf("full run: %s (ticks=%d)", full.Reason, full.Ticks)
	}
	if full.Demotions.Unbounded == 0 {
		t.Fatalf("full run saw no Unbounded demotions; the Arrays decoy should force the footprint escape (demotions=%+v)", full.Demotions)
	}
	chosen := rec.Chosen()
	if len(chosen) < 2 {
		t.Fatalf("only %d decisions recorded; need a mid-run branch point", len(chosen))
	}
	mid := len(chosen) / 2

	// Replay the same schedule, capturing a snapshot at the midpoint. The
	// restore of the initial snapshot must also have reset the demotion
	// counters: if they leaked across runs, this run would report 2x.
	cp := &capturePolicy{t: t, m: s.Machine(), inner: vm.NewReplayer(chosen), at: uint64(mid)}
	replay, err := s.RunSchedule(cp, quantum, seed)
	if err != nil {
		t.Fatal(err)
	}
	if cp.inner.Mismatches() != 0 {
		t.Fatalf("replay run: %d decision mismatches", cp.inner.Mismatches())
	}
	if cp.snap == nil {
		t.Fatal("capture policy never reached the midpoint decision")
	}
	if replay.Demotions != full.Demotions {
		t.Errorf("replay demotions = %+v, want %+v (initial-snapshot restore must reset counters)",
			replay.Demotions, full.Demotions)
	}
	if !reflect.DeepEqual(replay.Snapshot, full.Snapshot) || replay.Ticks != full.Ticks || replay.MemHash != full.MemHash {
		t.Errorf("replay run diverged from recorded run: snapshot=%v ticks=%d hash=%#x, want %v/%d/%#x",
			replay.Snapshot, replay.Ticks, replay.MemHash, full.Snapshot, full.Ticks, full.MemHash)
	}

	// Resume from the branch point with only the decision tail: the
	// snapshot carries clock, RNG, quantum and demotion counters, so the
	// resumed run must land on the identical final state.
	tail := vm.NewReplayer(chosen[mid:])
	res, err := s.RunFrom(cp.snap, tail)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != "completed" {
		t.Fatalf("resumed run: %s (ticks=%d)", res.Reason, res.Ticks)
	}
	if tail.Mismatches() != 0 || tail.Consumed() != len(chosen)-mid {
		t.Errorf("resumed run consumed %d/%d tail decisions with %d mismatches",
			tail.Consumed(), len(chosen)-mid, tail.Mismatches())
	}
	if !reflect.DeepEqual(res.Snapshot, full.Snapshot) {
		t.Errorf("resumed snapshot = %v, want %v", res.Snapshot, full.Snapshot)
	}
	if res.Ticks != full.Ticks {
		t.Errorf("resumed ticks = %d, want %d", res.Ticks, full.Ticks)
	}
	if res.MemHash != full.MemHash {
		t.Errorf("resumed memory hash = %#x, want %#x", res.MemHash, full.MemHash)
	}
	if res.Demotions != full.Demotions {
		t.Errorf("resumed demotions = %+v, want %+v (snapshot/restore must carry the counters)",
			res.Demotions, full.Demotions)
	}
}

// TestSessionSnapshotPortableAcrossSessions: a branch-point snapshot taken
// in one session resumes in a fresh session of the same program and
// configuration (the portability contract vm.Snapshot documents), again
// reproducing the recorded final state.
func TestSessionSnapshotPortableAcrossSessions(t *testing.T) {
	p := corpusgen.One(corpusgen.Options{Count: 8, Seed: 33, Arrays: true}, 2)
	s := genSession(t, p)
	const quantum, seed = 23, 5

	rng := rand.New(rand.NewSource(4))
	rec := vm.NewRecorder(vm.PolicyFunc(func(sp vm.SchedPoint) int {
		return rng.Intn(len(sp.Runnable))
	}))
	full, err := s.RunSchedule(rec, quantum, seed)
	if err != nil {
		t.Fatal(err)
	}
	if full.Reason != "completed" {
		t.Fatalf("full run: %s", full.Reason)
	}
	chosen := rec.Chosen()
	if len(chosen) < 2 {
		t.Fatalf("only %d decisions recorded", len(chosen))
	}
	mid := len(chosen) / 2
	cp := &capturePolicy{t: t, m: s.Machine(), inner: vm.NewReplayer(chosen), at: uint64(mid)}
	if _, err := s.RunSchedule(cp, quantum, seed); err != nil {
		t.Fatal(err)
	}
	if cp.snap == nil {
		t.Fatal("capture policy never reached the midpoint decision")
	}

	other := genSession(t, p)
	res, err := other.RunFrom(cp.snap, vm.NewReplayer(chosen[mid:]))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Snapshot, full.Snapshot) || res.Ticks != full.Ticks ||
		res.MemHash != full.MemHash || res.Demotions != full.Demotions {
		t.Errorf("cross-session resume diverged: snapshot=%v ticks=%d hash=%#x demotions=%+v, want %v/%d/%#x/%+v",
			res.Snapshot, res.Ticks, res.MemHash, res.Demotions,
			full.Snapshot, full.Ticks, full.MemHash, full.Demotions)
	}
}
