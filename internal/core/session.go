package core

import (
	"fmt"

	"kivati/internal/compile"
	"kivati/internal/kernel"
	"kivati/internal/trace"
	"kivati/internal/vm"
)

// Session is a reusable execution context for running many schedules of
// one (program, configuration) pair: the kernel and machine are built
// once, an initial copy-on-write snapshot is captured after thread
// creation, and each subsequent run restores that snapshot instead of
// re-allocating and re-zeroing an 8 MB machine. Profiling the explorer
// showed ~60% of per-schedule time was vm.New's memory zeroing; a restore
// touches only the pages the previous run dirtied.
//
// A Session is not safe for concurrent use — callers that fan out give
// each worker its own Session. Snapshots, however, are portable between
// Sessions of the same program and configuration (see vm.Snapshot).
//
// Restrictions relative to core.Run: no request generator (Requests
// consumes RNG draws at construction), no whitelist reload timer (closure
// events are unsnapshottable), and the per-run Policy is supplied to
// RunSchedule rather than via the config.
type Session struct {
	cfg  RunConfig
	bin  *compile.Binary
	m    *vm.Machine
	init *vm.Snapshot
}

// NewSession builds the execution context and captures the initial
// snapshot. cfg.Policy must be nil (policies are per-run); cfg.Dispatch
// selects the tier every run of this session uses — with DispatchFast the
// fast path stays active under the per-run policies, which is exactly the
// Fast-mode recording property the differential gates pin down.
func NewSession(p *Program, cfg RunConfig) (*Session, error) {
	cfg.defaults()
	if cfg.Policy != nil {
		return nil, fmt.Errorf("core: Session policies are per-run; RunConfig.Policy must be nil")
	}
	if cfg.Requests != nil {
		return nil, fmt.Errorf("core: Session does not support request generators")
	}
	if cfg.Whitelist != nil && cfg.Whitelist.Source != nil {
		return nil, fmt.Errorf("core: Session does not support whitelist reloading")
	}
	if cfg.OnViolation != nil {
		return nil, fmt.Errorf("core: Session does not support violation callbacks")
	}
	bin, err := p.Binary(cfg.compileOptions())
	if err != nil {
		return nil, err
	}
	kcfg := kernel.Config{
		Mode:           cfg.Mode,
		Opt:            cfg.Opt,
		NumWatchpoints: cfg.NumWatchpoints,
		TimeoutTicks:   cfg.TimeoutTicks,
		PauseTicks:     cfg.PauseTicks,
		PauseEvery:     cfg.PauseEvery,
		TrapBefore:     cfg.TrapBefore,
	}
	if bin.Opts.ShadowWrites && cfg.Opt.UseUserLib() {
		kcfg.ShadowDelta = compile.ShadowDelta
	}
	k := kernel.New(kcfg, cfg.Whitelist, &trace.Log{}, nil)
	m, err := vm.New(bin, k, vm.Config{
		Cores:     cfg.Cores,
		Seed:      cfg.Seed,
		MaxTicks:  cfg.MaxTicks,
		Costs:     cfg.Costs,
		Dispatch:  cfg.Dispatch,
		Snapshots: true,
	})
	if err != nil {
		return nil, err
	}
	for _, s := range cfg.Starts {
		if _, err := m.Start(s.Fn, s.Arg); err != nil {
			return nil, err
		}
	}
	init, err := m.Snapshot()
	if err != nil {
		return nil, err
	}
	return &Session{cfg: cfg, bin: bin, m: m, init: init}, nil
}

// Machine exposes the session's machine (snapshots, memory hashing,
// segment access). State is only meaningful between runs.
func (s *Session) Machine() *vm.Machine { return s.m }

// finish extracts the per-run results exactly like core.Run does.
func (s *Session) finish(res *vm.Result) (*vm.Result, error) {
	if s.cfg.HashMemory {
		res.MemHash = s.m.MemHash()
	}
	if len(s.cfg.SnapshotVars) > 0 {
		res.Snapshot = make(map[string]int64, len(s.cfg.SnapshotVars))
		for _, name := range s.cfg.SnapshotVars {
			addr, ok := s.bin.Globals[name]
			if !ok {
				return res, fmt.Errorf("core: no global %q to snapshot", name)
			}
			res.Snapshot[name] = int64(s.m.Load(addr, 8))
		}
	}
	if len(res.Faults) > 0 {
		return res, fmt.Errorf("core: program faulted: %s", res.Faults[0])
	}
	// Results alias machine state that the next restore rewrites in place;
	// copy out everything a caller might hold across runs.
	stats := *res.Stats
	res.Stats = &stats
	res.Violations = append([]trace.Violation(nil), res.Violations...)
	res.Output = append([]int64(nil), res.Output...)
	res.Latencies = append([]uint64(nil), res.Latencies...)
	res.Faults = append([]string(nil), res.Faults...)
	return res, nil
}

// RunSchedule executes one schedule from the initial state: restore the
// initial snapshot, reseed, set the quantum, install the policy, run.
func (s *Session) RunSchedule(policy vm.SchedulePolicy, quantum uint64, seed int64) (*vm.Result, error) {
	s.m.Restore(s.init)
	s.m.Reseed(seed)
	s.m.SetQuantum(quantum)
	s.m.SetPolicy(policy)
	return s.finish(s.m.Run())
}

// RunFrom resumes execution from a mid-run snapshot under a new policy:
// the branch-point resume that lets the DFS skip re-executing deviation
// prefixes. Quantum and RNG state are part of the snapshot.
func (s *Session) RunFrom(snap *vm.Snapshot, policy vm.SchedulePolicy) (*vm.Result, error) {
	s.m.Restore(snap)
	s.m.SetPolicy(policy)
	return s.finish(s.m.Run())
}
