// Package core ties Kivati's pieces into the end-to-end pipeline the paper
// describes: static annotation of a program's atomic regions, compilation to
// the machine binary (with the pre-processing pass artifacts), and execution
// under the kernel prevention engine with a chosen mode, optimization level
// and whitelist. It also implements the whitelist training loop of §4.2.
package core

import (
	"fmt"
	"sync"

	"kivati/internal/annotate"
	"kivati/internal/compile"
	"kivati/internal/kernel"
	"kivati/internal/minic"
	"kivati/internal/trace"
	"kivati/internal/vm"
	"kivati/internal/whitelist"
)

// Program is a built (annotated) program, with compiled binaries cached per
// code-generation variant. After Build returns, a Program is read-only
// except for the binary cache, which is guarded by a mutex — so one Program
// may serve any number of concurrent Run calls (the harness fans runs out
// across a worker pool).
type Program struct {
	Source    string
	AST       *minic.Program
	Annotated *annotate.Program

	mu   sync.Mutex
	bins map[compile.Options]*compile.Binary
}

// Build parses, annotates and prepares a MiniC program using the paper
// prototype's analysis.
func Build(source string) (*Program, error) {
	return BuildWithOptions(source, annotate.Options{})
}

// BuildWithOptions selects the annotator precision (the §3.5 points-to
// extension when opts.Precise is set).
func BuildWithOptions(source string, opts annotate.Options) (*Program, error) {
	ast, err := minic.Parse(source)
	if err != nil {
		return nil, err
	}
	ap, err := annotate.AnnotateWithOptions(ast, opts)
	if err != nil {
		return nil, err
	}
	return &Program{
		Source:    source,
		AST:       ast,
		Annotated: ap,
		bins:      map[compile.Options]*compile.Binary{},
	}, nil
}

// Binary returns (compiling on first use) the binary for the given options.
// Safe for concurrent use; a variant compiles at most once per Program.
func (p *Program) Binary(opts compile.Options) (*compile.Binary, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b, ok := p.bins[opts]; ok {
		return b, nil
	}
	b, err := compile.Compile(p.Annotated, opts)
	if err != nil {
		return nil, err
	}
	p.bins[opts] = b
	return b, nil
}

// SyncVarWhitelist returns the whitelist of ARs on synchronization variables
// (optimization 4): ARs whose shared variable is passed to lock/unlock, plus
// any extra names the caller identifies as flags.
func (p *Program) SyncVarWhitelist(extraNames ...string) (*whitelist.Whitelist, error) {
	bin, err := p.Binary(compile.Options{Annotate: true})
	if err != nil {
		return nil, err
	}
	names := map[string]bool{}
	for n := range bin.SyncVars {
		names[n] = true
	}
	for _, n := range extraNames {
		names[n] = true
	}
	wl := whitelist.New()
	for _, ar := range p.Annotated.ARs {
		if names[ar.Key.Name] {
			wl.Add(ar.ID)
		}
	}
	return wl, nil
}

// StaticWhitelist returns the compile-time whitelist: the sync-variable
// whitelist plus every AR whose serializability the lockset analysis proved
// (the static replacement for the Figure 7 training loop — the runtime path
// is unchanged, only the whitelist's provenance differs). The program must
// have been built with annotate.Options.Lockset set.
func (p *Program) StaticWhitelist(extraNames ...string) (*whitelist.Whitelist, error) {
	if p.Annotated.Locks == nil {
		return nil, fmt.Errorf("core: program was built without the lockset analysis")
	}
	wl, err := p.SyncVarWhitelist(extraNames...)
	if err != nil {
		return nil, err
	}
	for _, id := range p.Annotated.StaticWhitelistIDs() {
		wl.Add(id)
	}
	return wl, nil
}

// Start names a thread entry point and its argument.
type Start struct {
	Fn  string
	Arg int64
}

// RunConfig configures one execution.
type RunConfig struct {
	Mode           kernel.Mode
	Opt            kernel.OptLevel
	Vanilla        bool // run the unannotated binary (baseline)
	NumWatchpoints int
	Cores          int
	Seed           int64
	MaxTicks       uint64
	TimeoutTicks   uint64 // 0: default 10_000 (10 ms at 1 tick = 1 µs)
	PauseTicks     uint64
	PauseEvery     uint64
	// TrapBefore simulates before-access watchpoint hardware (Table 1:
	// SPARC-class), which needs no undo engine.
	TrapBefore bool
	Whitelist  *whitelist.Whitelist
	// WhitelistReloadTicks re-reads the whitelist from its backing source
	// every interval (§3.2: "the whitelist file is periodically checked
	// and re-read for updates during execution so that a software
	// developer can send patches to customers ... for long running
	// processes"). 0 uses 1M ticks (~1 s) when the whitelist has a
	// source; whitelists without a source are never reloaded.
	WhitelistReloadTicks uint64
	Requests             *vm.RequestConfig
	Costs                vm.Costs
	// OnViolation, if set, is invoked per violation; returning true stops
	// the run (time-to-detection experiments).
	OnViolation func(trace.Violation) bool
	// Starts lists the initial threads; default is one thread in main().
	Starts []Start
	// Policy, if non-nil, is the controlled scheduler for this run: it is
	// consulted at every decision point instead of the VM's seeded
	// randomization (schedule exploration and trace replay).
	Policy vm.SchedulePolicy
	// SnapshotVars names globals whose final values are captured into
	// Result.Snapshot after the run — the shared-memory observables the
	// differential oracle compares across schedules.
	SnapshotVars []string
	// Dispatch selects the VM execution tier (see vm.DispatchMode):
	// DispatchAuto (the default) uses the basic-block fast path whenever
	// it is provably equivalent to stepping, DispatchStep forces the
	// legacy interpreter, DispatchFast keeps the fast path even under a
	// Policy (trace replay).
	Dispatch vm.DispatchMode
	// HashMemory, when set, fills Result.MemHash with the FNV-1a hash of
	// final data memory (differential dispatch testing).
	HashMemory bool
}

func (c *RunConfig) defaults() {
	if c.NumWatchpoints == 0 {
		c.NumWatchpoints = 4
	}
	if c.Cores == 0 {
		c.Cores = 2
	}
	if c.TimeoutTicks == 0 {
		c.TimeoutTicks = 10_000
	}
	if c.MaxTicks == 0 {
		c.MaxTicks = 500_000_000
	}
	if len(c.Starts) == 0 {
		c.Starts = []Start{{Fn: "main"}}
	}
}

// compileOptions picks the code-generation variant for a run: vanilla, or
// annotated with shadow writes when optimization 3 will be active.
func (c *RunConfig) compileOptions() compile.Options {
	if c.Vanilla {
		return compile.Options{}
	}
	return compile.Options{Annotate: true, ShadowWrites: c.Opt.UseUserLib()}
}

// Run executes the program once under the given configuration.
func Run(p *Program, cfg RunConfig) (*vm.Result, error) {
	cfg.defaults()
	bin, err := p.Binary(cfg.compileOptions())
	if err != nil {
		return nil, err
	}
	kcfg := kernel.Config{
		Mode:           cfg.Mode,
		Opt:            cfg.Opt,
		NumWatchpoints: cfg.NumWatchpoints,
		TimeoutTicks:   cfg.TimeoutTicks,
		PauseTicks:     cfg.PauseTicks,
		PauseEvery:     cfg.PauseEvery,
		TrapBefore:     cfg.TrapBefore,
	}
	if bin.Opts.ShadowWrites && cfg.Opt.UseUserLib() {
		kcfg.ShadowDelta = compile.ShadowDelta
	}
	log := &trace.Log{OnViolation: cfg.OnViolation}
	k := kernel.New(kcfg, cfg.Whitelist, log, nil)
	m, err := vm.New(bin, k, vm.Config{
		Cores:    cfg.Cores,
		Seed:     cfg.Seed,
		MaxTicks: cfg.MaxTicks,
		Costs:    cfg.Costs,
		Requests: cfg.Requests,
		Policy:   cfg.Policy,
		Dispatch: cfg.Dispatch,
	})
	if err != nil {
		return nil, err
	}
	for _, s := range cfg.Starts {
		if _, err := m.Start(s.Fn, s.Arg); err != nil {
			return nil, err
		}
	}
	if cfg.Whitelist != nil && cfg.Whitelist.Source != nil {
		interval := cfg.WhitelistReloadTicks
		if interval == 0 {
			interval = 1_000_000
		}
		var reload func()
		reload = func() {
			// A failed read keeps the current whitelist (§3.2's
			// long-running-process patching must never regress).
			_ = cfg.Whitelist.Reload()
			m.After(interval, reload)
		}
		m.After(interval, reload)
	}
	res := m.Run()
	if cfg.HashMemory {
		res.MemHash = m.MemHash()
	}
	if len(cfg.SnapshotVars) > 0 {
		res.Snapshot = make(map[string]int64, len(cfg.SnapshotVars))
		for _, name := range cfg.SnapshotVars {
			addr, ok := bin.Globals[name]
			if !ok {
				return res, fmt.Errorf("core: no global %q to snapshot", name)
			}
			res.Snapshot[name] = int64(m.Load(addr, 8))
		}
	}
	if len(res.Faults) > 0 {
		return res, fmt.Errorf("core: program faulted: %s", res.Faults[0])
	}
	return res, nil
}

// TrainResult reports one whitelist training campaign (§4.2, Figure 7).
type TrainResult struct {
	Whitelist *whitelist.Whitelist
	// NewFPs[i] is the number of new false positives (violated ARs not
	// yet whitelisted) observed in iteration i.
	NewFPs []int
}

// Train runs the program repeatedly, adding every violated AR that is not a
// known bug to the whitelist after each iteration — the paper's training
// procedure for eliminating benign and required violations. bugVars names
// shared variables whose violations are real bugs and must never be
// whitelisted (empty for pure training workloads).
func Train(p *Program, cfg RunConfig, iterations int, bugVars map[string]bool) (*TrainResult, error) {
	wl := whitelist.New()
	if cfg.Whitelist != nil {
		wl.Merge(cfg.Whitelist)
	}
	out := &TrainResult{Whitelist: wl}
	for i := 0; i < iterations; i++ {
		iterCfg := cfg
		iterCfg.Whitelist = wl
		iterCfg.Seed = cfg.Seed + int64(i)*7919
		res, err := Run(p, iterCfg)
		if err != nil {
			return nil, err
		}
		fresh := 0
		for _, v := range res.Violations {
			if bugVars[v.Var] {
				continue
			}
			if !wl.Contains(v.ARID) {
				wl.Add(v.ARID)
				fresh++
			}
		}
		out.NewFPs = append(out.NewFPs, fresh)
	}
	return out, nil
}
