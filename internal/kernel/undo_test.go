package kernel

import (
	"testing"

	"kivati/internal/hw"
	"kivati/internal/isa"
)

// Kernel-level undo tests over a hand-built code image and the mock
// machine: the boundary-table rollback, the write restore, the shadow-page
// path, the PUSHM leak guard, and the refusal paths.

// buildMockCode assembles a tiny image and installs it in the mock: a store
// to 0x100, a PUSHM from 0x100, and a load from 0x100, each labeled.
func buildMockCode(t *testing.T, m *mockMachine) (stPC, pushmPC, ldPC uint32) {
	t.Helper()
	e := isa.NewEncoder()
	stPC = e.PC()
	e.Store(0x100, 3, 8)
	pushmPC = e.PC()
	e.PushMem(0x100, 8)
	ldPC = e.PC()
	e.Load(2, 0x100, 8)
	e.Hlt()
	code, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	bt, err := isa.Preprocess(code, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.boundary = bt
	for pc := uint32(0); int(pc) < len(code); {
		in, err := isa.Decode(code, pc)
		if err != nil {
			t.Fatal(err)
		}
		m.decoded[pc] = in
		pc += uint32(in.Len)
	}
	return stPC, pushmPC, ldPC
}

func TestUndoRemoteWriteRestoresSavedValue(t *testing.T) {
	k, m := newKernelWithMock(Config{NumWatchpoints: 4, TimeoutTicks: 1000})
	stPC, _, _ := buildMockCode(t, m)

	m.Store(0x100, 8, 7)
	k.BeginAtomic(1, 0, 1, 0x100, 8, hw.ReadWrite, hw.Read) // SavedValue = 7
	// Thread 2 commits a store (value 99), then the trap is delivered with
	// the post-instruction PC.
	m.Store(0x100, 8, 99)
	nextPC := stPC + 6 // ST is 6 bytes
	m.lastPC[2] = stPC
	m.pcs[2] = nextPC
	k.HandleTrap(2, nextPC, Access{Addr: 0x100, Size: 8, Type: hw.Write}, 0)

	if got := m.Load(0x100, 8); got != 7 {
		t.Errorf("memory = %d, want 7 (rolled back)", got)
	}
	if m.pcs[2] != stPC {
		t.Errorf("PC = %#x, want rewound to %#x", m.pcs[2], stPC)
	}
	if m.blocked[2] != BlockTrap {
		t.Errorf("thread 2 block = %v, want BlockTrap", m.blocked[2])
	}
	ar := k.FindAR(1, 1)
	if len(ar.Remotes) != 1 || !ar.Remotes[0].Undone || ar.Remotes[0].PC != stPC {
		t.Errorf("remote record = %+v", ar.Remotes)
	}
	// End: W between R..W is the lost-update case; prevented.
	k.EndAtomic(1, 1, hw.Write)
	if len(k.Log.Violations) != 1 || !k.Log.Violations[0].Prevented {
		t.Errorf("violations = %v", k.Log.Violations)
	}
	if _, still := m.blocked[2]; still {
		t.Error("remote not resumed at end_atomic")
	}
}

func TestUndoUsesShadowPageUnderOpt3(t *testing.T) {
	const delta = 0x1000
	k, m := newKernelWithMock(Config{
		NumWatchpoints: 4, TimeoutTicks: 1000,
		Opt: OptOptimized, ShadowDelta: delta,
	})
	stPC, _, _ := buildMockCode(t, m)

	m.Store(0x100, 8, 3)
	k.BeginAtomic(1, 0, 1, 0x100, 8, hw.ReadWrite, hw.Write)
	// Begin initialized the shadow slot; the local first write then updates
	// it (the compiler-emitted replica store).
	if got := m.Load(0x100+delta, 8); got != 3 {
		t.Fatalf("shadow init = %d, want 3", got)
	}
	m.Store(0x100, 8, 50)       // local first write (untrapped: opt3)
	m.Store(0x100+delta, 8, 50) // the replicated shadow store

	// Remote write commits, trap delivered.
	m.Store(0x100, 8, 99)
	m.lastPC[2] = stPC
	m.pcs[2] = stPC + 6
	k.HandleTrap(2, stPC+6, Access{Addr: 0x100, Size: 8, Type: hw.Write}, 0)
	if got := m.Load(0x100, 8); got != 50 {
		t.Errorf("memory = %d, want 50 (restored from shadow)", got)
	}
}

func TestUndoPushMArmsGuard(t *testing.T) {
	k, m := newKernelWithMock(Config{NumWatchpoints: 4, TimeoutTicks: 1000})
	_, pushmPC, _ := buildMockCode(t, m)

	m.Store(0x100, 8, 5)
	k.BeginAtomic(1, 0, 1, 0x100, 8, hw.ReadWrite, hw.Write)
	// Remote thread 2: PUSHM committed — value read from 0x100 landed at
	// its (post-push) stack pointer.
	m.SetReg(2, isa.RegSP, 0x800)
	m.Store(0x800, 8, 5) // the leaked value
	m.lastPC[2] = pushmPC
	m.pcs[2] = pushmPC + 5
	k.HandleTrap(2, pushmPC+5, Access{Addr: 0x100, Size: 8, Type: hw.Read}, 0)

	if k.Stats.GuardsArmed != 1 {
		t.Fatalf("GuardsArmed = %d", k.Stats.GuardsArmed)
	}
	// The guard watches the leak destination and the SP was restored.
	guardIdx := -1
	for i, wp := range k.Canon.WPs {
		if wp.Armed && k.Meta[i].Guard {
			guardIdx = i
			if wp.Addr != 0x800 {
				t.Errorf("guard watches %#x, want 0x800", wp.Addr)
			}
		}
	}
	if guardIdx < 0 {
		t.Fatal("no guard watchpoint armed")
	}
	if got := m.Reg(2, isa.RegSP); got != 0x808 {
		t.Errorf("SP = %#x, want 0x808 (push undone)", got)
	}
	// A third thread touching the leaked slot is undone and suspended on
	// the guard.
	m.Store(0x800, 8, 123)
	stPC := uint32(0) // reuse the ST instruction for thread 3
	m.lastPC[3] = stPC
	m.pcs[3] = stPC + 6
	// Point the ST's address at the guard: the handler matches by the
	// access, not the instruction operand, so report the access at 0x800.
	k.HandleTrap(3, stPC+6, Access{Addr: 0x800, Size: 8, Type: hw.Write}, guardIdx)
	if m.blocked[3] != BlockTrap {
		t.Errorf("thread 3 not suspended on the guard: %v", m.blocked[3])
	}
	if got := m.Load(0x800, 8); got != 5 {
		t.Errorf("guarded slot = %d, want 5 (restored)", got)
	}

	// When the AR ends, the leak owner resumes; its guard releases, which
	// resumes the guard's waiter in turn.
	k.EndAtomic(1, 1, hw.Write)
	if _, still := m.blocked[2]; still {
		t.Error("leak owner not resumed")
	}
	if _, still := m.blocked[3]; still {
		t.Error("guard waiter not resumed")
	}
	for i, wp := range k.Canon.WPs {
		if wp.Armed {
			t.Errorf("wp%d still armed at the end: %+v", i, wp)
		}
	}
}

func TestUndoRefusesUnknownPC(t *testing.T) {
	k, m := newKernelWithMock(Config{NumWatchpoints: 4, TimeoutTicks: 1000})
	buildMockCode(t, m)
	m.Store(0x100, 8, 1)
	k.BeginAtomic(1, 0, 1, 0x100, 8, hw.ReadWrite, hw.Read)
	// Trap PC with no boundary-table entry and not a function entry.
	k.HandleTrap(2, 0x9999, Access{Addr: 0x100, Size: 8, Type: hw.Write}, 0)
	if k.Stats.Unreorderable != 1 {
		t.Errorf("Unreorderable = %d", k.Stats.Unreorderable)
	}
	if _, blocked := m.blocked[2]; blocked {
		t.Error("unreorderable access must not suspend the thread")
	}
	// The access is still recorded for violation evaluation.
	ar := k.FindAR(1, 1)
	if len(ar.Remotes) != 1 || ar.Remotes[0].Undone {
		t.Errorf("remote record = %+v", ar.Remotes)
	}
}

func TestUndoRefusesBoundaryMismatch(t *testing.T) {
	k, m := newKernelWithMock(Config{NumWatchpoints: 4, TimeoutTicks: 1000})
	stPC, _, _ := buildMockCode(t, m)
	m.Store(0x100, 8, 1)
	k.BeginAtomic(1, 0, 1, 0x100, 8, hw.ReadWrite, hw.Read)
	// The boundary table says the instruction before stPC+6 is the ST,
	// but the thread actually came from somewhere else (control transfer).
	m.lastPC[2] = 0x4444
	k.HandleTrap(2, stPC+6, Access{Addr: 0x100, Size: 8, Type: hw.Write}, 0)
	if k.Stats.BoundaryMismatch != 1 {
		t.Errorf("BoundaryMismatch = %d", k.Stats.BoundaryMismatch)
	}
	if k.Stats.Unreorderable != 1 {
		t.Errorf("Unreorderable = %d", k.Stats.Unreorderable)
	}
}

func TestPauseSampling(t *testing.T) {
	k, m := newKernelWithMock(Config{
		NumWatchpoints: 4, Mode: BugFinding,
		PauseTicks: 500, PauseEvery: 3,
	})
	for i := 1; i <= 6; i++ {
		k.BeginAtomic(1, 0, i, uint32(0x100+8*i), 8, hw.Write, hw.Read)
		if i%3 == 0 {
			if m.blocked[1] != BlockPause {
				t.Errorf("begin %d: expected pause, got %v", i, m.blocked[1])
			}
		}
		m.Resume(1)
		k.EndAtomic(1, i, hw.Write)
	}
	if k.Stats.Pauses != 2 {
		t.Errorf("Pauses = %d, want 2", k.Stats.Pauses)
	}
}

func TestRecaptureSaved(t *testing.T) {
	k, m := newKernelWithMock(Config{NumWatchpoints: 4})
	m.Store(0x100, 8, 10)
	k.BeginAtomic(1, 0, 1, 0x100, 8, hw.Write, hw.Read)
	// A store lands in the propagation window (untrapped).
	m.Store(0x100, 8, 11)
	k.RecaptureSaved(1)
	if k.Meta[0].SavedValue != 11 {
		t.Errorf("SavedValue = %d, want 11 (recaptured)", k.Meta[0].SavedValue)
	}
}

func TestHasTimedOutAndDepthQueries(t *testing.T) {
	k, m := newKernelWithMock(Config{NumWatchpoints: 4, TimeoutTicks: 100})
	m.depths[1] = 2
	k.BeginAtomic(1, 0, 1, 0x100, 8, hw.Write, hw.Read)
	k.BeginAtomic(2, 0x40, 9, 0x100, 8, hw.Read, hw.Write) // blocks; arms the timeout
	m.advance(500)
	if !k.HasTimedOut(1, 1) {
		t.Error("HasTimedOut(1,1) = false after the timeout")
	}
	if !k.AnyTimedOutAtDepth(1, 2) {
		t.Error("AnyTimedOutAtDepth(1,2) = false")
	}
	if k.AnyTimedOutAtDepth(1, 3) {
		t.Error("AnyTimedOutAtDepth(1,3) = true for deeper frame")
	}
}
