package kernel

import (
	"testing"

	"kivati/internal/hw"
	"kivati/internal/isa"
)

// mockMachine implements Machine with manually-advanced time and explicit
// state, for kernel unit tests that don't need a full VM.
type mockMachine struct {
	now     uint64
	cores   int
	mem     [1 << 16]byte
	regs    map[int]*[16]int64
	pcs     map[int]uint32
	depths  map[int]int
	blocked map[int]BlockKind
	events  []struct {
		at uint64
		fn func()
	}
	boundary *isa.BoundaryTable
	decoded  map[uint32]isa.Instr
	lastPC   map[int]uint32

	k            *Kernel // for AfterTimeout delivery
	epochChanges int     // EpochChanged calls (lazy-propagation batching)
}

func newMock() *mockMachine {
	bt, _ := isa.Preprocess(nil, nil)
	return &mockMachine{
		cores:    2,
		regs:     map[int]*[16]int64{},
		pcs:      map[int]uint32{},
		depths:   map[int]int{},
		blocked:  map[int]BlockKind{},
		boundary: bt,
		decoded:  map[uint32]isa.Instr{},
		lastPC:   map[int]uint32{},
	}
}

func (m *mockMachine) Now() uint64                  { return m.now }
func (m *mockMachine) NumCores() int                { return m.cores }
func (m *mockMachine) Suspend(tid int, k BlockKind) { m.blocked[tid] = k }
func (m *mockMachine) Resume(tid int)               { delete(m.blocked, tid) }
func (m *mockMachine) SetWakeAt(int, uint64)        {}
func (m *mockMachine) SetEpochTarget(int, uint64)   {}
func (m *mockMachine) ThreadDepth(tid int) int      { return m.depths[tid] }
func (m *mockMachine) PC(tid int) uint32            { return m.pcs[tid] }
func (m *mockMachine) SetPC(tid int, pc uint32)     { m.pcs[tid] = pc }
func (m *mockMachine) Reg(tid, r int) int64 {
	if rr := m.regs[tid]; rr != nil {
		return rr[r]
	}
	return 0
}
func (m *mockMachine) SetReg(tid, r int, v int64) {
	if m.regs[tid] == nil {
		m.regs[tid] = &[16]int64{}
	}
	m.regs[tid][r] = v
}
func (m *mockMachine) LastInstrPC(tid int) uint32 { return m.lastPC[tid] }
func (m *mockMachine) Load(addr uint32, sz uint8) uint64 {
	var v uint64
	for i := uint8(0); i < sz; i++ {
		v |= uint64(m.mem[addr+uint32(i)]) << (8 * i)
	}
	return v
}
func (m *mockMachine) Store(addr uint32, sz uint8, v uint64) {
	for i := uint8(0); i < sz; i++ {
		m.mem[addr+uint32(i)] = byte(v >> (8 * i))
	}
}
func (m *mockMachine) Boundary() *isa.BoundaryTable { return m.boundary }
func (m *mockMachine) DecodeAt(pc uint32) (isa.Instr, bool) {
	in, ok := m.decoded[pc]
	return in, ok
}
func (m *mockMachine) After(ticks uint64, fn func()) {
	m.events = append(m.events, struct {
		at uint64
		fn func()
	}{m.now + ticks, fn})
}
func (m *mockMachine) AfterTimeout(ticks uint64, wpIdx int, gen uint64) {
	m.events = append(m.events, struct {
		at uint64
		fn func()
	}{m.now + ticks, func() { m.k.TimeoutWP(wpIdx, gen) }})
}
func (m *mockMachine) EpochChanged() { m.epochChanges++ }

// advance runs events due by the new time.
func (m *mockMachine) advance(to uint64) {
	m.now = to
	evs := m.events
	m.events = nil
	for _, e := range evs {
		if e.at <= to {
			e.fn()
		} else {
			m.events = append(m.events, e)
		}
	}
}

func newKernelWithMock(cfg Config) (*Kernel, *mockMachine) {
	k := New(cfg, nil, nil, nil)
	m := newMock()
	m.k = k
	k.SetMachine(m)
	return k, m
}

func TestBeginArmsWatchpoint(t *testing.T) {
	k, m := newKernelWithMock(Config{NumWatchpoints: 4, TimeoutTicks: 1000})
	m.Store(0x100, 8, 42)
	k.BeginAtomic(1, 0x10, 7, 0x100, 8, hw.Write, hw.Read)
	if got := k.Canon.FreeIndex(); got != 1 {
		t.Errorf("FreeIndex = %d, want 1 (one armed)", got)
	}
	wp := k.Canon.WPs[0]
	if !wp.Armed || wp.Addr != 0x100 || wp.Types != hw.Write || wp.Owner != 1 {
		t.Errorf("wp = %+v", wp)
	}
	if !k.Meta[0].HasSaved || k.Meta[0].SavedValue != 42 {
		t.Errorf("SavedValue = %v,%d", k.Meta[0].HasSaved, k.Meta[0].SavedValue)
	}
	if ar := k.FindAR(1, 7); ar == nil || ar.WP != 0 {
		t.Errorf("AR not recorded: %+v", ar)
	}
	if m.blocked[1] != BlockEpoch {
		t.Errorf("arming thread not epoch-blocked: %v", m.blocked)
	}
}

func TestBeginAttachUnionUpgrade(t *testing.T) {
	k, _ := newKernelWithMock(Config{NumWatchpoints: 4})
	k.BeginAtomic(1, 0x10, 1, 0x100, 4, hw.Write, hw.Read)
	k.BeginAtomic(1, 0x14, 2, 0x100, 8, hw.Read, hw.Write)
	if k.Canon.FreeIndex() != 1 {
		t.Fatalf("second begin armed a new watchpoint; want attach")
	}
	wp := k.Canon.WPs[0]
	if wp.Types != hw.ReadWrite || wp.Size != 8 {
		t.Errorf("union not most-aggressive: types=%v size=%d", wp.Types, wp.Size)
	}
	if len(k.Meta[0].ARs) != 2 {
		t.Errorf("ARs on watchpoint = %d, want 2", len(k.Meta[0].ARs))
	}
}

func TestBeginIdempotentForActiveAR(t *testing.T) {
	k, m := newKernelWithMock(Config{NumWatchpoints: 4})
	k.BeginAtomic(1, 0x10, 1, 0x100, 8, hw.Write, hw.Read)
	gen := k.Meta[0].Gen
	m.Store(0x100, 8, 5)
	k.BeginAtomic(1, 0x10, 1, 0x100, 8, hw.Write, hw.Read)
	if k.Meta[0].Gen != gen {
		t.Error("re-begin re-armed the watchpoint (generation changed)")
	}
	if len(k.Meta[0].ARs) != 1 {
		t.Errorf("duplicate AR after re-begin: %d", len(k.Meta[0].ARs))
	}
	if k.Meta[0].SavedValue != 5 {
		t.Errorf("re-begin did not refresh SavedValue: %d", k.Meta[0].SavedValue)
	}
}

func TestBeginMissedWhenExhausted(t *testing.T) {
	k, _ := newKernelWithMock(Config{NumWatchpoints: 2})
	k.BeginAtomic(1, 0, 1, 0x100, 8, hw.Write, hw.Read)
	k.BeginAtomic(1, 0, 2, 0x200, 8, hw.Write, hw.Read)
	k.BeginAtomic(1, 0, 3, 0x300, 8, hw.Write, hw.Read)
	if k.Stats.MissedARs != 1 {
		t.Errorf("MissedARs = %d, want 1", k.Stats.MissedARs)
	}
	if k.FindAR(1, 3) != nil {
		t.Error("missed AR should not be recorded")
	}
	// Its end_atomic has no effect.
	k.EndAtomic(1, 3, hw.Write)
	if len(k.Log.Violations) != 0 {
		t.Error("end of unmonitored AR produced a violation")
	}
}

func TestBeginBlocksOnRemoteWatch(t *testing.T) {
	k, m := newKernelWithMock(Config{NumWatchpoints: 4, TimeoutTicks: 1000})
	k.BeginAtomic(1, 0x10, 1, 0x100, 8, hw.Write, hw.Read) // T1 watches writes
	m.Resume(1)
	// T2's first access is a write: would trap T1's watchpoint — block.
	k.BeginAtomic(2, 0x50, 9, 0x100, 8, hw.Read, hw.Write)
	if m.blocked[2] != BlockBegin {
		t.Fatalf("T2 not begin-blocked: %v", m.blocked)
	}
	if m.pcs[2] != 0x50 {
		t.Errorf("T2 PC not rewound to the begin syscall: %#x", m.pcs[2])
	}
	// The about-to-happen access is recorded as a detected remote (§2.2).
	ar := k.FindAR(1, 1)
	if len(ar.Remotes) != 1 || ar.Remotes[0].Type != hw.Write {
		t.Errorf("remote access not recorded on blocking AR: %+v", ar.Remotes)
	}
	// T1's end frees the watchpoint and resumes T2; a W between R..W is
	// the R-W-W lost-update case.
	k.EndAtomic(1, 1, hw.Write)
	if _, still := m.blocked[2]; still {
		t.Error("T2 not resumed at end_atomic")
	}
	if len(k.Log.Violations) != 1 || !k.Log.Violations[0].Prevented {
		t.Errorf("violations = %v", k.Log.Violations)
	}
}

func TestBeginRetryGiveUp(t *testing.T) {
	k, m := newKernelWithMock(Config{NumWatchpoints: 4, MaxBeginRetries: 2})
	k.BeginAtomic(1, 0x10, 1, 0x100, 8, hw.Write, hw.Read)
	for i := 0; i < 2; i++ {
		k.BeginAtomic(2, 0x50, 9, 0x100, 8, hw.Read, hw.Write)
		if m.blocked[2] != BlockBegin {
			t.Fatalf("retry %d: not blocked", i)
		}
		m.Resume(2)
	}
	k.BeginAtomic(2, 0x50, 9, 0x100, 8, hw.Read, hw.Write)
	if m.blocked[2] == BlockBegin {
		t.Error("T2 still begin-blocked past the retry bound")
	}
	if k.Stats.BeginRetryGiveUps != 1 {
		t.Errorf("BeginRetryGiveUps = %d", k.Stats.BeginRetryGiveUps)
	}
	// T2 proceeded and armed its own watchpoint.
	if k.FindAR(2, 9) == nil {
		t.Error("T2's AR not armed after give-up")
	}
}

func TestTimeoutReleasesAndMarksUnprevented(t *testing.T) {
	k, m := newKernelWithMock(Config{NumWatchpoints: 4, TimeoutTicks: 1000})
	k.BeginAtomic(1, 0x10, 1, 0x100, 8, hw.Write, hw.Read)
	k.BeginAtomic(2, 0x50, 9, 0x100, 8, hw.Read, hw.Write) // blocks
	if m.blocked[2] != BlockBegin {
		t.Fatal("T2 not blocked")
	}
	m.advance(2000) // fire the timeout
	if _, still := m.blocked[2]; still {
		t.Fatal("timeout did not release T2")
	}
	if k.Stats.Timeouts != 1 {
		t.Errorf("Timeouts = %d", k.Stats.Timeouts)
	}
	// T1's AR was force-terminated; its end still reports the violation,
	// not prevented.
	if k.FindAR(1, 1) != nil {
		t.Error("timed-out AR still active")
	}
	k.EndAtomic(1, 1, hw.Write)
	if len(k.Log.Violations) != 1 {
		t.Fatalf("violations = %v", k.Log.Violations)
	}
	if k.Log.Violations[0].Prevented {
		t.Error("timed-out violation must be flagged not prevented")
	}
}

func TestClearARDepth(t *testing.T) {
	k, m := newKernelWithMock(Config{NumWatchpoints: 4})
	m.depths[1] = 1
	k.BeginAtomic(1, 0, 1, 0x100, 8, hw.Write, hw.Read)
	m.depths[1] = 2
	k.BeginAtomic(1, 0, 2, 0x200, 8, hw.Write, hw.Read)
	// clear at depth 2 removes only the inner AR.
	k.ClearAR(1)
	if k.FindAR(1, 2) != nil {
		t.Error("inner AR survived clear_ar")
	}
	if k.FindAR(1, 1) == nil {
		t.Error("outer AR wrongly cleared")
	}
	m.depths[1] = 1
	k.ClearAR(1)
	if k.FindAR(1, 1) != nil {
		t.Error("outer AR survived clear_ar at its depth")
	}
	if len(k.Log.Violations) != 0 {
		t.Error("clear_ar must not report violations")
	}
	if k.Canon.FreeIndex() != 0 {
		t.Error("watchpoints not freed by clear_ar")
	}
}

func TestEndViolationMatrix(t *testing.T) {
	// Inject remote accesses and check the Figure 2 decision at end time.
	cases := []struct {
		first, remote, second hw.AccessType
		want                  bool
	}{
		{hw.Read, hw.Write, hw.Read, true},
		{hw.Read, hw.Read, hw.Read, false},
		{hw.Write, hw.Read, hw.Write, true},
		{hw.Write, hw.Write, hw.Write, false},
	}
	for _, c := range cases {
		k, _ := newKernelWithMock(Config{NumWatchpoints: 4})
		k.BeginAtomic(1, 0, 1, 0x100, 8, hw.ReadWrite, c.first)
		ar := k.FindAR(1, 1)
		ar.Remotes = append(ar.Remotes, RemoteRec{Thread: 2, Type: c.remote, Undone: true})
		k.EndAtomic(1, 1, c.second)
		got := len(k.Log.Violations) == 1
		if got != c.want {
			t.Errorf("(%v,%v,%v): violation=%v want %v", c.first, c.remote, c.second, got, c.want)
		}
	}
}

func TestMutexTransfer(t *testing.T) {
	k, m := newKernelWithMock(Config{NumWatchpoints: 4})
	k.Lock(1, 0x500)
	if held, owner, _ := k.MutexState(0x500); !held || owner != 1 {
		t.Fatalf("lock state: %v %d", held, owner)
	}
	k.Lock(2, 0x500)
	if m.blocked[2] != BlockLock {
		t.Fatal("T2 not lock-blocked")
	}
	k.Unlock(1, 0x500)
	if _, still := m.blocked[2]; still {
		t.Fatal("unlock did not transfer to waiter")
	}
	if _, owner, _ := k.MutexState(0x500); owner != 2 {
		t.Errorf("owner = %d, want 2", owner)
	}
	// Unlock by a non-owner is ignored.
	k.Unlock(3, 0x500)
	if held, _, _ := k.MutexState(0x500); !held {
		t.Error("non-owner unlock released the mutex")
	}
	k.Unlock(2, 0x500)
	if held, _, _ := k.MutexState(0x500); held {
		t.Error("mutex still held after owner unlock")
	}
}

func TestThreadExitedReleasesEverything(t *testing.T) {
	k, m := newKernelWithMock(Config{NumWatchpoints: 4})
	k.Lock(1, 0x500)
	k.BeginAtomic(1, 0, 1, 0x100, 8, hw.Write, hw.Read)
	k.Lock(2, 0x500) // blocks
	k.ThreadExited(1)
	if k.FindAR(1, 1) != nil {
		t.Error("AR survived thread exit")
	}
	if k.Canon.FreeIndex() != 0 {
		t.Error("watchpoint not freed on thread exit")
	}
	if _, still := m.blocked[2]; still {
		t.Error("lock not transferred on owner exit")
	}
}

func TestReconcileStale(t *testing.T) {
	k, _ := newKernelWithMock(Config{NumWatchpoints: 4, Opt: OptOptimized})
	k.BeginAtomic(1, 0, 1, 0x100, 8, hw.Write, hw.Read)
	ar := k.FindAR(1, 1)
	k.DetachUser(ar)
	if !k.Meta[0].Stale {
		t.Fatal("user detach did not mark stale")
	}
	if !k.Canon.WPs[0].Armed {
		t.Fatal("lazy release must leave the hardware armed")
	}
	if !k.HasStale() {
		t.Fatal("HasStale false")
	}
	k.ReconcileStale()
	if k.Canon.WPs[0].Armed {
		t.Error("reconcile did not disarm the stale watchpoint")
	}
	if k.Stats.StaleFrees != 1 {
		t.Errorf("StaleFrees = %d", k.Stats.StaleFrees)
	}
}

func TestNullOpDoesNothing(t *testing.T) {
	k, _ := newKernelWithMock(Config{NumWatchpoints: 4, Opt: OptNullSyscall})
	k.BeginAtomic(1, 0, 1, 0x100, 8, hw.Write, hw.Read)
	if k.Canon.FreeIndex() != 0 {
		t.Error("null-syscall begin armed a watchpoint")
	}
	k.EndAtomic(1, 1, hw.Write)
	k.ClearAR(1)
	if k.Stats.BeginKernel != 1 || k.Stats.EndKernel != 1 || k.Stats.ClearKernel != 1 {
		t.Errorf("null syscalls not counted: %+v", k.Stats)
	}
}

func TestSpuriousTrap(t *testing.T) {
	k, _ := newKernelWithMock(Config{NumWatchpoints: 4})
	// Trap reported on a disarmed register (stale core state).
	k.HandleTrap(2, 0x40, Access{Addr: 0x100, Size: 8, Type: hw.Write}, 0)
	if k.Stats.SpuriousTraps != 1 {
		t.Errorf("SpuriousTraps = %d", k.Stats.SpuriousTraps)
	}
}

func TestLocalWriteCapture(t *testing.T) {
	k, m := newKernelWithMock(Config{NumWatchpoints: 4})
	m.Store(0x100, 8, 10)
	k.BeginAtomic(1, 0, 1, 0x100, 8, hw.Write, hw.Write)
	if k.Meta[0].SavedValue != 10 {
		t.Fatalf("SavedValue at begin = %d", k.Meta[0].SavedValue)
	}
	// Local write commits, then traps: the kernel records the new value.
	m.Store(0x100, 8, 99)
	k.HandleTrap(1, 0x40, Access{Addr: 0x100, Size: 8, Type: hw.Write}, 0)
	if k.Meta[0].SavedValue != 99 {
		t.Errorf("SavedValue after local write trap = %d, want 99", k.Meta[0].SavedValue)
	}
	if _, blocked := m.blocked[1]; blocked && m.blocked[1] == BlockTrap {
		t.Error("local access wrongly suspended")
	}
}

func TestStatsKernelEntries(t *testing.T) {
	s := &Stats{BeginKernel: 10, EndKernel: 5, ClearKernel: 2, Traps: 3, OtherSyscalls: 100}
	if got := s.KernelEntries(); got != 20 {
		t.Errorf("KernelEntries = %d, want 20 (other syscalls excluded)", got)
	}
}

func TestModeAndOptStrings(t *testing.T) {
	if Prevention.String() != "prevention" || BugFinding.String() != "bug-finding" {
		t.Error("Mode strings wrong")
	}
	for o, want := range map[OptLevel]string{
		OptBase: "base", OptNullSyscall: "null-syscall",
		OptSyncVars: "syncvars", OptOptimized: "optimized",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q", o, o.String())
		}
	}
	if !OptSyncVars.UseWhitelist() || OptBase.UseWhitelist() {
		t.Error("UseWhitelist wrong")
	}
	if !OptOptimized.UseUserLib() || OptSyncVars.UseUserLib() {
		t.Error("UseUserLib wrong")
	}
}
