package kernel

import (
	"testing"

	"kivati/internal/hw"
)

// TestReconcileStaleBatchesEpochChanged pins the lazy-propagation batching
// contract: a sweep that frees several stale watchpoints bumps the
// canonical epoch once per freed register (epoch-target arithmetic counts
// individual changes) but notifies the machine exactly once — idle cores
// only need to learn once that they are behind.
func TestReconcileStaleBatchesEpochChanged(t *testing.T) {
	k, m := newKernelWithMock(Config{NumWatchpoints: 4, Opt: OptOptimized})
	addrs := []uint32{0x100, 0x200, 0x300}
	for i, addr := range addrs {
		k.BeginAtomic(1, 0, i+1, addr, 8, hw.Write, hw.Read)
	}
	for i := range addrs {
		ar := k.FindAR(1, i+1)
		if ar == nil {
			t.Fatalf("AR %d not recorded", i+1)
		}
		k.DetachUser(ar)
	}
	for i := range addrs {
		if !k.Meta[i].Stale {
			t.Fatalf("wp %d not stale after user detach", i)
		}
	}

	epochBefore := k.Canon.Epoch
	notifyBefore := m.epochChanges
	k.ReconcileStale()

	if got := k.Stats.StaleFrees; got != uint64(len(addrs)) {
		t.Errorf("StaleFrees = %d, want %d", got, len(addrs))
	}
	if got := k.Canon.Epoch - epochBefore; got != uint64(len(addrs)) {
		t.Errorf("epoch advanced by %d, want one bump per freed register (%d)", got, len(addrs))
	}
	if got := m.epochChanges - notifyBefore; got != 1 {
		t.Errorf("EpochChanged called %d times for the sweep, want exactly 1", got)
	}
	for i := range addrs {
		if k.Canon.WPs[i].Armed {
			t.Errorf("wp %d still armed after reconcile", i)
		}
	}

	// A sweep with nothing stale must not notify at all: runs without
	// watchpoint churn never re-arm the idle-core adoption scan.
	notifyBefore = m.epochChanges
	epochBefore = k.Canon.Epoch
	k.ReconcileStale()
	if m.epochChanges != notifyBefore || k.Canon.Epoch != epochBefore {
		t.Errorf("no-op reconcile notified (epoch %d->%d, calls %d->%d)",
			epochBefore, k.Canon.Epoch, notifyBefore, m.epochChanges)
	}
}
