package kernel

import (
	"reflect"
	"testing"
)

// resumeOrderMachine records the order threads are resumed in — the
// observable that schedule replay depends on.
type resumeOrderMachine struct {
	*mockMachine
	resumed []int
}

func (m *resumeOrderMachine) Resume(tid int) {
	m.resumed = append(m.resumed, tid)
	m.mockMachine.Resume(tid)
}

// TestThreadExitedReleasesLocksInAddressOrder: when a thread dies holding
// several mutexes, the force-release must wake waiters in ascending mutex
// address order. Map iteration order would otherwise vary run to run,
// changing the runnable-queue order at the next decision point and breaking
// trace replay.
func TestThreadExitedReleasesLocksInAddressOrder(t *testing.T) {
	// The exiting thread acquires the locks in a scrambled order; waiter
	// thread ID encodes the mutex address so the expected wake order is
	// self-describing.
	addrs := []uint32{0x500, 0x100, 0x900, 0x300, 0x700}
	waiters := map[uint32]int{0x100: 21, 0x300: 23, 0x500: 25, 0x700: 27, 0x900: 29}

	for trial := 0; trial < 20; trial++ {
		k := New(Config{NumWatchpoints: 4, TimeoutTicks: 1000}, nil, nil, nil)
		m := &resumeOrderMachine{mockMachine: newMock()}
		k.SetMachine(m)

		for _, a := range addrs {
			k.Lock(1, a)
		}
		for _, a := range addrs {
			k.Lock(waiters[a], a)
		}
		if len(m.blocked) != len(addrs) {
			t.Fatalf("%d waiters blocked, want %d", len(m.blocked), len(addrs))
		}

		k.ThreadExited(1)

		want := []int{21, 23, 25, 27, 29} // ascending mutex address
		if !reflect.DeepEqual(m.resumed, want) {
			t.Fatalf("trial %d: waiters resumed in order %v, want %v", trial, m.resumed, want)
		}
		for _, a := range addrs {
			held, owner, nwait := k.MutexState(a)
			if !held || owner != waiters[a] || nwait != 0 {
				t.Fatalf("mutex %#x after exit: held=%v owner=%d waiters=%d", a, held, owner, nwait)
			}
		}
	}
}

// TestThreadExitedNoLocksIsQuiet: exiting without held locks resumes nobody.
func TestThreadExitedNoLocksIsQuiet(t *testing.T) {
	k := New(Config{NumWatchpoints: 4, TimeoutTicks: 1000}, nil, nil, nil)
	m := &resumeOrderMachine{mockMachine: newMock()}
	k.SetMachine(m)
	k.Lock(1, 0x100)
	k.Unlock(1, 0x100)
	k.ThreadExited(1)
	if len(m.resumed) != 0 {
		t.Errorf("resumed %v, want none", m.resumed)
	}
}
