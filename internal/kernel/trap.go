package kernel

import (
	"kivati/internal/hw"
	"kivati/internal/isa"
)

// Access describes one committed memory access of the trapping instruction,
// as reported by the hardware.
type Access struct {
	Addr uint32
	Size uint8
	Type hw.AccessType
}

// HandleTrap is the watchpoint trap handler (§3.2–§3.3). It runs after the
// triggering instruction has committed (x86 trap-after semantics): trapPC is
// the PC the processor reports, i.e. the instruction *after* the access. The
// handler classifies the access as local or remote; remote accesses are
// undone, recorded against every AR on the watchpoint, and the remote thread
// is suspended until the ARs complete or the timeout fires.
func (k *Kernel) HandleTrap(t int, trapPC uint32, acc Access, wpIdx int) {
	k.Stats.Traps++

	// The hardware reports one register, but on x86 the debug status
	// register flags every breakpoint the access matched; the handler must
	// process all of them. Two threads can hold ARs on the same variable
	// simultaneously (their begins don't conflict when the watch types
	// don't cover each other's first access), so an access can be local to
	// one watchpoint and remote to another.
	var remote []int
	matchedAny := false
	for i := range k.Canon.WPs {
		wp := k.Canon.WPs[i]
		m := k.Meta[i]
		if !wp.Armed || wp.Types&acc.Type == 0 ||
			!(acc.Addr < wp.Addr+uint32(wp.Size) && wp.Addr < acc.Addr+uint32(acc.Size)) {
			continue
		}
		matchedAny = true
		// Lazily released watchpoint (optimization 2): the user-space
		// copy says it should be free — free it now, no violation (§3.4).
		if m.Stale {
			k.Stats.StaleFrees++
			k.disarm(i)
			continue
		}
		if m.Guard {
			if m.GuardOwner != t {
				remote = append(remote, i)
			}
			continue
		}
		if len(m.ARs) > 0 && m.ARs[0].Thread == t {
			// Local access: with optimization 3 the hardware never
			// delivers these; without it, the kernel records the value
			// after the first local write so remote writes can be rolled
			// back (§3.3), and otherwise ignores the trap.
			if acc.Type == hw.Write {
				m.SavedValue = k.M.Load(wp.Addr, wp.Size)
				m.HasSaved = true
			}
			continue
		}
		if len(m.ARs) > 0 {
			remote = append(remote, i)
		}
	}
	if !matchedAny {
		// A core with stale debug registers can trap on a watchpoint the
		// kernel has since disarmed or reconfigured; the canonical state
		// decides. The core adopted the canonical state on entry, so it
		// will not re-trap.
		k.Stats.SpuriousTraps++
		return
	}
	if len(remote) > 0 {
		k.preventRemote(t, trapPC, acc, remote)
	}
}

// preventRemote undoes a committed remote access, records it on every AR of
// every watchpoint it violated, and suspends the remote thread on the first.
func (k *Kernel) preventRemote(t int, trapPC uint32, acc Access, wpIdxs []int) {
	primary := wpIdxs[0]
	instrPC, undone := k.undo(t, trapPC, acc, primary)
	rec := RemoteRec{Thread: t, PC: instrPC, Type: acc.Type, Tick: k.M.Now(), Undone: undone}
	if !undone {
		rec.PC = trapPC
		k.Stats.Unreorderable++
	}
	for _, i := range wpIdxs {
		for _, ar := range k.Meta[i].ARs {
			ar.Remotes = append(ar.Remotes, rec)
		}
	}
	if !undone {
		// Cannot reorder this access: let the thread continue (§3.3).
		return
	}
	// Suspend on the first watchpoint; if others still watch the variable
	// when it frees, re-execution traps again and waits on them — the
	// thread stays delayed until the variable is in no AR (§2.2).
	m := k.Meta[primary]
	m.TrapSuspended = append(m.TrapSuspended, t)
	k.M.Suspend(t, BlockTrap)
	k.Stats.Suspensions++
	k.armTimeout(primary)
}

// undo reverses the effects of the instruction that performed the remote
// access, so it can be re-executed after the ARs complete (§3.3). The
// instruction's PC is recovered from the pre-computed boundary table, with
// the call-instruction special case handled via the return address on the
// stack. Returns the instruction PC and whether the undo succeeded.
func (k *Kernel) undo(t int, trapPC uint32, acc Access, wpIdx int) (uint32, bool) {
	bt := k.M.Boundary()
	var instrPC uint32
	if pc, ok := bt.PrevAccess(trapPC); ok {
		instrPC = pc
	} else if bt.IsFuncEntry(trapPC) {
		// The trap PC is a subroutine's first instruction: the access was
		// made by a call instruction. The call site is found from the
		// return address at the top of the stack (§3.3).
		sp := uint32(k.M.Reg(t, isa.RegSP))
		ret := uint32(k.M.Load(sp, 8))
		instrPC = ret - isa.CallMLen
	} else {
		return 0, false
	}

	// Cross-check against reality: a control transfer (e.g. RET) can land
	// on a PC whose boundary-table predecessor is a different
	// memory-accessing instruction. The real Kivati would mis-undo here;
	// we refuse and count it.
	if actual := k.M.LastInstrPC(t); actual != instrPC {
		k.Stats.BoundaryMismatch++
		return 0, false
	}

	in, ok := k.M.DecodeAt(instrPC)
	if !ok {
		return 0, false
	}

	wp := k.Canon.WPs[wpIdx]
	m := k.Meta[wpIdx]

	if acc.Type == hw.Write {
		// Undo the write: roll the shared variable back to the value
		// recorded after the first local access (§3.3). With
		// optimization 3 the value comes from the shadow page, kept
		// current by the replicated first local write.
		val := m.SavedValue
		if k.Cfg.ShadowDelta != 0 && k.firstIsWrite(m) {
			val = k.M.Load(wp.Addr+k.Cfg.ShadowDelta, wp.Size)
		}
		if !m.HasSaved {
			return 0, false
		}
		k.M.Store(wp.Addr, wp.Size, val)
	} else if isPushM(in.Op) {
		// A remote read whose destination is another memory location:
		// the inconsistent value must not leak to other threads, so
		// configure another watchpoint to guard it (§3.3). PUSHM wrote
		// the value at the post-push stack pointer.
		dest := uint32(k.M.Reg(t, isa.RegSP))
		gi := k.FreeWPIndex()
		if gi < 0 {
			// No hardware left: allow the thread to continue and log
			// that this access could not be reordered (§3.3).
			return 0, false
		}
		k.Canon.Set(gi, hw.Watchpoint{
			Addr: dest, Size: 8, Types: hw.ReadWrite, Armed: true, Owner: -1, LocalOf: t,
		})
		k.Canon.Epoch++
		gm := k.Meta[gi]
		gm.Gen++
		gm.Guard = true
		gm.GuardOwner = t
		gm.SavedValue = k.M.Load(dest, 8)
		gm.HasSaved = true
		k.Stats.GuardsArmed++
		k.M.EpochChanged()
	}
	// Reads into registers need no memory undo: the stale register value
	// is overwritten when the access re-executes (§3.3).

	// Undo instruction-dependent side effects on the stack pointer.
	switch {
	case in.Op == isa.OpPUSH || isPushM(in.Op) || in.Op == isa.OpCALL || in.Op == isa.OpCALLM:
		k.M.SetReg(t, isa.RegSP, k.M.Reg(t, isa.RegSP)+8)
	case in.Op == isa.OpPOP || in.Op == isa.OpRET:
		k.M.SetReg(t, isa.RegSP, k.M.Reg(t, isa.RegSP)-8)
	}

	// Move the program counter back to the access instruction.
	k.M.SetPC(t, instrPC)
	return instrPC, true
}

func isPushM(op isa.Op) bool { return op >= isa.OpPUSHM && op < isa.OpPUSHM+4 }

// HandleTrapBefore is the trap handler for before-access hardware (Table 1:
// SPARC-class). The access has NOT committed: the VM aborted the
// instruction with the PC still on it, so delaying the thread needs no undo
// at all — no boundary table, no memory rollback, no leak guards.
func (k *Kernel) HandleTrapBefore(t int, pc uint32, acc Access, wpIdx int) {
	k.Stats.Traps++
	var remote []int
	matchedAny := false
	for i := range k.Canon.WPs {
		wp := k.Canon.WPs[i]
		m := k.Meta[i]
		if !wp.Armed || wp.Types&acc.Type == 0 ||
			!(acc.Addr < wp.Addr+uint32(wp.Size) && wp.Addr < acc.Addr+uint32(acc.Size)) {
			continue
		}
		matchedAny = true
		if m.Stale {
			k.Stats.StaleFrees++
			k.disarm(i)
			continue
		}
		if len(m.ARs) > 0 && m.ARs[0].Thread != t {
			remote = append(remote, i)
		}
	}
	if !matchedAny {
		k.Stats.SpuriousTraps++
		return
	}
	if len(remote) == 0 {
		return
	}
	rec := RemoteRec{Thread: t, PC: pc, Type: acc.Type, Tick: k.M.Now(), Undone: true}
	for _, i := range remote {
		for _, ar := range k.Meta[i].ARs {
			ar.Remotes = append(ar.Remotes, rec)
		}
	}
	primary := remote[0]
	m := k.Meta[primary]
	m.TrapSuspended = append(m.TrapSuspended, t)
	k.M.Suspend(t, BlockTrap)
	k.Stats.Suspensions++
	k.armTimeout(primary)
}

// firstIsWrite reports whether any AR on the watchpoint begins with a local
// write (the case needing the shadow copy under optimization 3).
func (k *Kernel) firstIsWrite(m *WPMeta) bool {
	for _, ar := range m.ARs {
		if ar.First == hw.Write {
			return true
		}
	}
	return false
}

// armTimeout schedules the suspension timeout for a watchpoint, once per
// arming generation. When it fires with threads still suspended, the ARs
// using the watchpoint are force-terminated, the watchpoint is freed and all
// suspended threads resume (§3.3) — this is what tolerates required
// violations (Figure 5) and breaks suspension deadlocks.
func (k *Kernel) armTimeout(wpIdx int) {
	m := k.Meta[wpIdx]
	if m.TimeoutArmed || k.Cfg.TimeoutTicks == 0 {
		return
	}
	m.TimeoutArmed = true
	k.M.AfterTimeout(k.Cfg.TimeoutTicks, wpIdx, m.Gen)
}

// TimeoutWP delivers a suspension timeout armed by armTimeout. It is
// exported for the VM's typed timer events; gen guards against the
// watchpoint having been freed (and possibly re-armed) since arming.
func (k *Kernel) TimeoutWP(wpIdx int, gen uint64) {
	m := k.Meta[wpIdx]
	if m.Gen != gen {
		return // freed and possibly re-armed since
	}
	m.TimeoutArmed = false
	if len(m.TrapSuspended) == 0 && len(m.BeginSuspended) == 0 {
		return
	}
	k.Stats.Timeouts++
	// Move the watchpoint's ARs to the timed-out table; their end_atomics
	// still record violations, flagged as not prevented.
	for _, ar := range append([]*ActiveAR(nil), m.ARs...) {
		ar.TimedOut = true
		k.removeFromThread(ar)
		k.thread(ar.Thread).TimedOut[ar.ID] = ar
	}
	m.ARs = nil
	k.FreeWP(wpIdx)
}
