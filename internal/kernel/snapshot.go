package kernel

import (
	"kivati/internal/hw"
)

// Deep-copy snapshots of all mutable kernel state, used by the VM's
// machine snapshots (vm.Machine.Snapshot). A kernel snapshot is copied
// OUT on capture and copied back IN on restore, so one snapshot can be
// restored any number of times — and onto a different Kernel instance, as
// long as it was built with the same Config (same watchpoint count).
//
// ActiveAR instances are shared by pointer between the per-watchpoint
// metadata (Meta[i].ARs) and the per-thread tables; the copies preserve
// that aliasing through an identity map so FindAR/detach/FreeWP keep
// operating on one object per dynamic AR after a restore.

// Snapshot is a deep copy of the kernel's mutable state.
type Snapshot struct {
	canon        *hw.RegisterFile
	meta         []WPMeta
	threads      map[int]*threadState
	mutexes      map[uint32]mutex
	begins       uint64
	beginRetries map[[2]int]int
	stats        Stats
}

type arMap map[*ActiveAR]*ActiveAR

func (am arMap) clone(ar *ActiveAR) *ActiveAR {
	if ar == nil {
		return nil
	}
	if c, ok := am[ar]; ok {
		return c
	}
	c := new(ActiveAR)
	*c = *ar
	c.Remotes = append([]RemoteRec(nil), ar.Remotes...)
	am[ar] = c
	return c
}

func (am arMap) cloneSlice(ars []*ActiveAR) []*ActiveAR {
	if ars == nil {
		return nil
	}
	out := make([]*ActiveAR, len(ars))
	for i, ar := range ars {
		out[i] = am.clone(ar)
	}
	return out
}

func cloneMeta(src []*WPMeta, am arMap) []WPMeta {
	out := make([]WPMeta, len(src))
	for i, m := range src {
		out[i] = *m
		out[i].ARs = am.cloneSlice(m.ARs)
		out[i].TrapSuspended = append([]int(nil), m.TrapSuspended...)
		out[i].BeginSuspended = append([]int(nil), m.BeginSuspended...)
	}
	return out
}

func cloneThreads(src map[int]*threadState, am arMap) map[int]*threadState {
	out := make(map[int]*threadState, len(src))
	for tid, ts := range src {
		c := &threadState{
			ARs:      am.cloneSlice(ts.ARs),
			TimedOut: make(map[int]*ActiveAR, len(ts.TimedOut)),
		}
		for id, ar := range ts.TimedOut {
			c.TimedOut[id] = am.clone(ar)
		}
		out[tid] = c
	}
	return out
}

func cloneStats(s *Stats) Stats {
	c := *s
	if s.MissedByAR != nil {
		c.MissedByAR = make(map[int]uint64, len(s.MissedByAR))
		for id, n := range s.MissedByAR {
			c.MissedByAR[id] = n
		}
	}
	return c
}

// Snapshot deep-copies the kernel's mutable state.
func (k *Kernel) Snapshot() *Snapshot {
	am := arMap{}
	s := &Snapshot{
		canon:        hw.NewRegisterFile(len(k.Canon.WPs)),
		meta:         cloneMeta(k.Meta, am),
		threads:      cloneThreads(k.threads, am),
		mutexes:      make(map[uint32]mutex, len(k.mutexes)),
		begins:       k.begins,
		beginRetries: make(map[[2]int]int, len(k.beginRetries)),
		stats:        cloneStats(k.Stats),
	}
	s.canon.CopyFrom(k.Canon)
	for addr, mu := range k.mutexes {
		c := *mu
		c.waiters = append([]int(nil), mu.waiters...)
		s.mutexes[addr] = c
	}
	for key, n := range k.beginRetries {
		s.beginRetries[key] = n
	}
	return s
}

// Restore rewinds the kernel to a snapshot (deep copy back in; the
// snapshot stays pristine and can be restored again). Canon, Meta entries
// and Stats keep their identities — only their contents are replaced — so
// references held by the VM and user library stay valid. Existing maps and
// slices are cleared and refilled rather than reallocated: the snapshot
// engine restores thousands of times per campaign, and keeping capacity
// also lets the post-restore run's AR attachments append without growing.
func (k *Kernel) Restore(s *Snapshot) {
	am := arMap{}
	k.Canon.CopyFrom(s.canon)
	for i := range k.Meta {
		src := &s.meta[i]
		dst := k.Meta[i]
		ars, trap, begin := dst.ARs[:0], dst.TrapSuspended[:0], dst.BeginSuspended[:0]
		*dst = *src
		for _, ar := range src.ARs {
			ars = append(ars, am.clone(ar))
		}
		dst.ARs = ars
		dst.TrapSuspended = append(trap, src.TrapSuspended...)
		dst.BeginSuspended = append(begin, src.BeginSuspended...)
	}
	for tid := range k.threads {
		if _, ok := s.threads[tid]; !ok {
			delete(k.threads, tid)
		}
	}
	for tid, ts := range s.threads {
		dst, ok := k.threads[tid]
		if !ok {
			dst = &threadState{TimedOut: make(map[int]*ActiveAR, len(ts.TimedOut))}
			k.threads[tid] = dst
		}
		dst.ARs = dst.ARs[:0]
		for _, ar := range ts.ARs {
			dst.ARs = append(dst.ARs, am.clone(ar))
		}
		clear(dst.TimedOut)
		for id, ar := range ts.TimedOut {
			dst.TimedOut[id] = am.clone(ar)
		}
	}
	for addr := range k.mutexes {
		if _, ok := s.mutexes[addr]; !ok {
			delete(k.mutexes, addr)
		}
	}
	for addr, mu := range s.mutexes {
		dst, ok := k.mutexes[addr]
		if !ok {
			dst = &mutex{}
			k.mutexes[addr] = dst
		}
		w := dst.waiters[:0]
		*dst = mu
		dst.waiters = append(w, mu.waiters...)
	}
	k.begins = s.begins
	clear(k.beginRetries)
	for key, n := range s.beginRetries {
		k.beginRetries[key] = n
	}
	missed := k.Stats.MissedByAR
	*k.Stats = s.stats
	if s.stats.MissedByAR != nil {
		if missed == nil {
			missed = make(map[int]uint64, len(s.stats.MissedByAR))
		} else {
			clear(missed)
		}
		for id, n := range s.stats.MissedByAR {
			missed[id] = n
		}
		k.Stats.MissedByAR = missed
	} else {
		k.Stats.MissedByAR = nil
	}
}
