package kernel

import (
	"sort"

	"kivati/internal/hw"
	"kivati/internal/interleave"
	"kivati/internal/trace"
)

// BeginAtomic is the kernel half of the begin_atomic system call (§3.2,
// §3.3). syscallPC is the PC of the SYS instruction itself, so a suspended
// thread retries the call when resumed.
func (k *Kernel) BeginAtomic(t int, syscallPC uint32, arID int, addr uint32, size uint8, watch, first hw.AccessType) {
	k.Stats.BeginKernel++
	if k.Cfg.Opt.NullOp() {
		return
	}
	k.ReconcileStale()

	// A re-executed begin for an AR already active in this thread (a loop
	// iteration re-evaluating the begin before the matching end ran) is
	// idempotent: the AR ID is already on the watchpoint's list (§3.2).
	// The watchpoint stays armed — this is what lets the suspension
	// timeout mature for remote threads trapped by loop-resident ARs
	// (Figure 5). Only an address change (pointer-based AR) re-arms.
	if old := k.FindAR(t, arID); old != nil {
		if old.Addr == addr && old.WP >= 0 {
			k.RefreshAR(old)
			k.maybePause(t)
			return
		}
		k.detach(old)
	}

	// Prevention: if the address is being watched by another thread's
	// ARs, this thread is a remote about to access that shared variable —
	// suspend it until those ARs complete (§3.3).
	if idx := k.WatchedByOther(t, addr, size, first); idx >= 0 {
		m := k.Meta[idx]
		// A remote access can be detected via a begin_atomic as well as
		// via a watchpoint (§2.2): record the access this thread is about
		// to make against the ARs it would interrupt.
		key := [2]int{t, arID}
		k.beginRetries[key]++
		if k.beginRetries[key] <= k.Cfg.MaxBeginRetries {
			rec := RemoteRec{Thread: t, PC: syscallPC, Type: first, Tick: k.M.Now(), Undone: true}
			for _, ar := range m.ARs {
				ar.Remotes = append(ar.Remotes, rec)
			}
			m.BeginSuspended = append(m.BeginSuspended, t)
			k.M.SetPC(t, syscallPC) // retry the begin_atomic on wake
			k.M.Suspend(t, BlockBegin)
			k.Stats.Suspensions++
			k.armTimeout(idx)
			return
		}
		// Retry bound exceeded: stop delaying this thread (the analog of
		// the 10 ms timeout for trap-suspended threads; prevents livelock
		// when the watching AR is re-begun every loop iteration). The
		// access is still recorded, flagged as not reordered.
		rec := RemoteRec{Thread: t, PC: syscallPC, Type: first, Tick: k.M.Now(), Undone: false}
		for _, ar := range m.ARs {
			ar.Remotes = append(ar.Remotes, rec)
		}
		k.Stats.BeginRetryGiveUps++
	}
	delete(k.beginRetries, [2]int{t, arID})

	// Attach to this thread's existing watchpoint on the same address,
	// updating types and size to the most aggressive union (§3.2).
	if idx := k.OwnWP(t, addr); idx >= 0 {
		wp := k.Canon.WPs[idx]
		newTypes := wp.Types | watch
		newSize := wp.Size
		if size > newSize {
			newSize = size
		}
		if newTypes != wp.Types || newSize != wp.Size {
			wp.Types, wp.Size = newTypes, newSize
			k.Canon.Set(idx, wp)
			k.Canon.Epoch++
			k.M.EpochChanged()
			k.waitForEpoch(t)
		}
		k.attachAR(t, syscallPC, arID, addr, size, watch, first, idx)
		k.maybePause(t)
		return
	}

	// Arm a free watchpoint, if any.
	idx := k.FreeWPIndex()
	if idx < 0 {
		// All watchpoints in use by other threads: log that this AR
		// cannot be monitored (§3.2, quantified in Tables 8 and 9).
		k.Stats.RecordMissed(arID)
		return
	}
	local := -1
	if k.localDisable() || k.Cfg.TrapBefore {
		local = t
	}
	k.Canon.Set(idx, hw.Watchpoint{
		Addr: addr, Size: size, Types: watch, Armed: true, Owner: t, LocalOf: local,
	})
	k.Canon.Epoch++
	m := k.Meta[idx]
	m.Gen++
	m.SavedValue = k.M.Load(addr, size)
	m.HasSaved = true
	if first == hw.Write && k.Cfg.ShadowDelta != 0 {
		// Initialize the shadow slot so the undo value is defined even
		// before the first local write executes.
		k.M.Store(addr+k.Cfg.ShadowDelta, size, m.SavedValue)
	}
	k.attachAR(t, syscallPC, arID, addr, size, watch, first, idx)
	k.M.EpochChanged()
	k.waitForEpoch(t)
	k.maybePause(t)
}

// attachAR records a new active AR on watchpoint idx.
func (k *Kernel) attachAR(t int, syscallPC uint32, arID int, addr uint32, size uint8, watch, first hw.AccessType, idx int) {
	ar := &ActiveAR{
		ID:      arID,
		Thread:  t,
		Depth:   k.M.ThreadDepth(t),
		Addr:    addr,
		Size:    size,
		Watch:   watch,
		First:   first,
		BeginPC: syscallPC,
		Start:   k.M.Now(),
		WP:      idx,
	}
	if k.arInfo != nil {
		ar.Static = k.arInfo(arID)
	}
	k.thread(t).ARs = append(k.thread(t).ARs, ar)
	k.Meta[idx].ARs = append(k.Meta[idx].ARs, ar)
	k.Stats.MonitoredARs++
}

// RecaptureSaved re-records the rollback values for all of a thread's ARs.
// The VM calls it when the thread's begin_atomic wait (cross-core watchpoint
// propagation, or a bug-finding pause) completes — the moment the thread
// actually enters its AR. Capturing only at arm time would race: a remote
// core that has not yet adopted the new watchpoint can store to the variable
// without trapping, leaving the recorded rollback value stale, and a later
// undo would then *introduce* an inconsistency instead of preventing one.
func (k *Kernel) RecaptureSaved(t int) {
	for _, ar := range k.thread(t).ARs {
		if ar.WP < 0 {
			continue
		}
		m := k.Meta[ar.WP]
		if m.Stale || m.Guard || len(m.ARs) == 0 || m.ARs[0].Thread != t {
			continue
		}
		wp := k.Canon.WPs[ar.WP]
		if !wp.Armed {
			continue
		}
		m.SavedValue = k.M.Load(wp.Addr, wp.Size)
		m.HasSaved = true
		if ar.First == hw.Write && k.Cfg.ShadowDelta != 0 {
			k.M.Store(wp.Addr+k.Cfg.ShadowDelta, wp.Size, m.SavedValue)
		}
	}
}

// RefreshAR renews an already-active AR on a re-executed begin_atomic: the
// start time, call depth and saved rollback value are updated in place, with
// no watchpoint change.
func (k *Kernel) RefreshAR(ar *ActiveAR) {
	ar.Start = k.M.Now()
	ar.Depth = k.M.ThreadDepth(ar.Thread)
	if ar.WP >= 0 {
		m := k.Meta[ar.WP]
		wp := k.Canon.WPs[ar.WP]
		m.SavedValue = k.M.Load(wp.Addr, wp.Size)
		m.HasSaved = true
		if ar.First == hw.Write && k.Cfg.ShadowDelta != 0 {
			k.M.Store(wp.Addr+k.Cfg.ShadowDelta, wp.Size, m.SavedValue)
		}
	}
}

// AttachUser is the user-space attach path (optimization 1): the AR joins an
// existing watchpoint whose configuration already covers it, with no
// hardware change and no kernel crossing. The user library refreshes the
// saved value, which lives in the shared page.
func (k *Kernel) AttachUser(t int, syscallPC uint32, arID int, addr uint32, size uint8, watch, first hw.AccessType, idx int) {
	if old := k.FindAR(t, arID); old != nil {
		if old.Addr == addr && old.WP == idx {
			k.RefreshAR(old)
			return
		}
		k.detachUserSide(old)
	}
	k.attachAR(t, syscallPC, arID, addr, size, watch, first, idx)
	m := k.Meta[idx]
	m.SavedValue = k.M.Load(addr, size)
	m.HasSaved = true
	if first == hw.Write && k.Cfg.ShadowDelta != 0 {
		k.M.Store(addr+k.Cfg.ShadowDelta, size, m.SavedValue)
	}
}

// waitForEpoch blocks the thread until every core has adopted the new
// canonical watchpoint state. Rather than interrupting other cores, they
// update opportunistically on their next kernel entry (§3.2).
func (k *Kernel) waitForEpoch(t int) {
	k.Stats.EpochWaits++
	k.M.SetEpochTarget(t, k.Canon.Epoch)
	k.M.Suspend(t, BlockEpoch)
}

// maybePause implements bug-finding mode's artificial AR stretching (§2.3),
// sampled every PauseEvery monitored begins.
func (k *Kernel) maybePause(t int) {
	if k.Cfg.Mode != BugFinding || k.Cfg.PauseEvery == 0 || k.Cfg.PauseTicks == 0 {
		return
	}
	k.begins++
	if k.begins%k.Cfg.PauseEvery != 0 {
		return
	}
	k.Stats.Pauses++
	k.M.SetWakeAt(t, k.M.Now()+k.Cfg.PauseTicks)
	k.M.Suspend(t, BlockPause)
}

// EndAtomic is the kernel half of the end_atomic system call: violation
// evaluation and watchpoint release (§3.2).
func (k *Kernel) EndAtomic(t int, arID int, second hw.AccessType) {
	k.Stats.EndKernel++
	if k.Cfg.Opt.NullOp() {
		return
	}
	k.evalEnd(t, arID, second)
}

// evalEnd is shared between the kernel path and the user-space path (the
// user library calls it directly when it can complete the end without a
// crossing).
func (k *Kernel) evalEnd(t int, arID int, second hw.AccessType) {
	ts := k.thread(t)
	if ar, ok := ts.TimedOut[arID]; ok {
		// The AR was force-terminated by the timeout; still record the
		// violation, noting it was not prevented (§2.2).
		delete(ts.TimedOut, arID)
		k.checkViolation(ar, second, false)
		return
	}
	ar := k.FindAR(t, arID)
	if ar == nil {
		// No matching begin_atomic (unmonitored AR or control flow that
		// skipped the begin): the end_atomic has no effect.
		return
	}
	k.checkViolation(ar, second, true)
	k.detach(ar)
}

// checkViolation applies the Figure 2 serializability test to the remote
// accesses recorded during the AR.
func (k *Kernel) checkViolation(ar *ActiveAR, second hw.AccessType, prevented bool) {
	for _, r := range ar.Remotes {
		if !interleave.Violation(ar.First, second, []hw.AccessType{r.Type}) {
			continue
		}
		v := trace.Violation{
			ARID:         ar.ID,
			Addr:         ar.Addr,
			LocalThread:  ar.Thread,
			BeginPC:      ar.BeginPC,
			EndPC:        k.M.PC(ar.Thread),
			First:        ar.First,
			Second:       second,
			RemoteThread: r.Thread,
			RemotePC:     r.PC,
			RemoteType:   r.Type,
			Tick:         k.M.Now(),
			Prevented:    prevented && r.Undone && !ar.TimedOut,
		}
		if ar.Static != nil {
			v.Func = ar.Static.Func
			v.Var = ar.Static.Key.String()
		}
		if k.Symbolize != nil {
			v.SrcLine = k.Symbolize(r.PC)
		}
		k.Log.Add(v)
	}
}

// detach removes an AR and releases or reconfigures its watchpoint,
// resuming suspended threads when the watchpoint frees.
func (k *Kernel) detach(ar *ActiveAR) {
	k.removeFromThread(ar)
	if ar.WP < 0 {
		return
	}
	m := k.Meta[ar.WP]
	removeAR(m, ar)
	if len(m.ARs) == 0 {
		k.FreeWP(ar.WP)
		return
	}
	// Reconfigure to the union of the remaining ARs (§3.2).
	var types hw.AccessType
	var size uint8
	for _, a := range m.ARs {
		types |= a.Watch
		if a.Size > size {
			size = a.Size
		}
	}
	wp := k.Canon.WPs[ar.WP]
	if wp.Types != types || wp.Size != size {
		wp.Types, wp.Size = types, size
		k.Canon.Set(ar.WP, wp)
		k.Canon.Epoch++
		k.M.EpochChanged()
	}
}

// DetachUser is the user-space detach path (optimization 2): the AR is
// removed from the replica; if it was the last AR the hardware watchpoint
// is left armed but marked stale, and if the remaining union shrinks the
// hardware is left at the more aggressive setting. Either way, no kernel
// crossing happens; the hardware is reconciled on the next kernel entry or
// trap.
func (k *Kernel) DetachUser(ar *ActiveAR) {
	k.detachUserSide(ar)
}

func (k *Kernel) detachUserSide(ar *ActiveAR) {
	k.removeFromThread(ar)
	if ar.WP < 0 {
		return
	}
	m := k.Meta[ar.WP]
	removeAR(m, ar)
	if len(m.ARs) == 0 {
		m.Stale = true
	}
}

func (k *Kernel) removeFromThread(ar *ActiveAR) {
	ts := k.thread(ar.Thread)
	for i, a := range ts.ARs {
		if a == ar {
			ts.ARs = append(ts.ARs[:i], ts.ARs[i+1:]...)
			return
		}
	}
}

func removeAR(m *WPMeta, ar *ActiveAR) {
	for i, a := range m.ARs {
		if a == ar {
			m.ARs = append(m.ARs[:i], m.ARs[i+1:]...)
			return
		}
	}
}

// FreeWP disarms a watchpoint and resumes its suspended threads: threads
// blocked by watchpoint traps are resumed before threads blocked in their
// own begin_atomic (§3.3).
func (k *Kernel) FreeWP(idx int) {
	m := k.Meta[idx]
	trapBlocked := m.TrapSuspended
	beginBlocked := m.BeginSuspended
	k.disarm(idx)
	for _, t := range trapBlocked {
		k.M.Resume(t)
		k.releaseGuards(t)
	}
	for _, t := range beginBlocked {
		k.M.Resume(t) // retries its begin_atomic (PC was rewound)
	}
}

// releaseGuards frees any leak-guard watchpoints owned by a resumed thread:
// the thread will re-execute the leaking instruction, overwriting the leaked
// value.
func (k *Kernel) releaseGuards(t int) {
	for i, m := range k.Meta {
		if m.Guard && m.GuardOwner == t {
			guardWaiters := m.TrapSuspended
			k.disarm(i)
			for _, w := range guardWaiters {
				k.M.Resume(w)
				k.releaseGuards(w)
			}
		}
	}
}

// ClearAR is the kernel half of the clear_ar annotation inserted at every
// subroutine exit: it terminates all ARs begun at or below the current call
// depth. No violations are reported for cleared ARs (§3.2).
func (k *Kernel) ClearAR(t int) {
	k.Stats.ClearKernel++
	if k.Cfg.Opt.NullOp() {
		return
	}
	k.clearDepth(t, k.M.ThreadDepth(t))
}

// clearDepth detaches the thread's ARs with depth >= depth and drops
// matching timed-out records.
func (k *Kernel) clearDepth(t, depth int) {
	ts := k.thread(t)
	for _, ar := range append([]*ActiveAR(nil), ts.ARs...) {
		if ar.Depth >= depth {
			k.detach(ar)
		}
	}
	for id, ar := range ts.TimedOut {
		if ar.Depth >= depth {
			delete(ts.TimedOut, id)
		}
	}
}

// ClearUser performs clear_ar entirely in user space when no watchpoint
// hardware change beyond lazy release is needed.
func (k *Kernel) ClearUser(t, depth int) {
	ts := k.thread(t)
	for _, ar := range append([]*ActiveAR(nil), ts.ARs...) {
		if ar.Depth >= depth {
			k.detachUserSide(ar)
		}
	}
	for id, ar := range ts.TimedOut {
		if ar.Depth >= depth {
			delete(ts.TimedOut, id)
		}
	}
}

// ThreadExited cleans up after a terminated thread: its ARs are detached
// (freeing watchpoints and waking suspended remotes) and any locks it held
// are force-released.
func (k *Kernel) ThreadExited(t int) {
	k.clearDepth(t, 0)
	// Force-release in ascending address order: unlocking wakes waiters,
	// and Go's map iteration order would otherwise make the wake sequence
	// — and therefore every replayed schedule — nondeterministic.
	var held []uint32
	for addr, mu := range k.mutexes {
		if mu.held && mu.owner == t {
			held = append(held, addr)
		}
	}
	sort.Slice(held, func(i, j int) bool { return held[i] < held[j] })
	for _, addr := range held {
		k.unlock(t, addr)
	}
}

// Lock implements the lock() syscall over an address-keyed kernel mutex.
func (k *Kernel) Lock(t int, addr uint32) {
	mu := k.mutexes[addr]
	if mu == nil {
		mu = &mutex{}
		k.mutexes[addr] = mu
	}
	if !mu.held {
		mu.held, mu.owner = true, t
		return
	}
	mu.waiters = append(mu.waiters, t)
	k.Stats.LocksBlocked++
	k.M.Suspend(t, BlockLock)
}

// Unlock implements the unlock() syscall. Unlocking a mutex the thread does
// not hold is ignored (matching pthreads' undefined behavior, benignly).
func (k *Kernel) Unlock(t int, addr uint32) {
	mu := k.mutexes[addr]
	if mu == nil || !mu.held || mu.owner != t {
		return
	}
	k.unlock(t, addr)
}

// MutexState reports a mutex's holder and waiter count (for tests and
// diagnostics). held is false if the mutex does not exist or is free.
func (k *Kernel) MutexState(addr uint32) (held bool, owner int, waiters int) {
	mu := k.mutexes[addr]
	if mu == nil {
		return false, -1, 0
	}
	return mu.held, mu.owner, len(mu.waiters)
}

func (k *Kernel) unlock(t int, addr uint32) {
	mu := k.mutexes[addr]
	if len(mu.waiters) > 0 {
		next := mu.waiters[0]
		mu.waiters = mu.waiters[1:]
		mu.owner = next
		k.M.Resume(next)
		return
	}
	mu.held = false
}
