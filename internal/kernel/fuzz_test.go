package kernel

import (
	"math/rand"
	"testing"

	"kivati/internal/hw"
)

// TestKernelStateFuzz drives the kernel with random operation sequences and
// checks structural invariants after every step:
//
//  1. every armed, non-stale, non-guard watchpoint carries at least one AR;
//  2. AR lists are consistent: an AR on a watchpoint appears in its thread's
//     table with a matching WP index, and vice versa;
//  3. no AR is attached to two watchpoints;
//  4. a disarmed register has no metadata left behind.
func TestKernelStateFuzz(t *testing.T) {
	addrs := []uint32{0x100, 0x108, 0x110, 0x118, 0x120}
	types := []hw.AccessType{hw.Read, hw.Write, hw.ReadWrite}

	for seed := int64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k, m := newKernelWithMock(Config{
			NumWatchpoints:  2 + rng.Intn(3),
			TimeoutTicks:    500,
			Opt:             []OptLevel{OptBase, OptOptimized}[rng.Intn(2)],
			MaxBeginRetries: 2,
		})
		for step := 0; step < 400; step++ {
			tid := rng.Intn(4)
			switch rng.Intn(10) {
			case 0, 1, 2:
				k.BeginAtomic(tid, uint32(rng.Intn(64)), 1+rng.Intn(12),
					addrs[rng.Intn(len(addrs))], 8,
					types[rng.Intn(len(types))], types[rng.Intn(2)+0]|hw.Read>>uint(rng.Intn(1)))
			case 3, 4:
				k.EndAtomic(tid, 1+rng.Intn(12), types[rng.Intn(2)])
			case 5:
				m.depths[tid] = rng.Intn(3)
				k.ClearAR(tid)
			case 6:
				// Deliver a trap on a random register with a random access.
				idx := rng.Intn(k.Cfg.NumWatchpoints)
				k.HandleTrap(tid, uint32(rng.Intn(64)), Access{
					Addr: addrs[rng.Intn(len(addrs))], Size: 8,
					Type: types[rng.Intn(2)],
				}, idx)
			case 7:
				// Advance time: fire pending timeouts.
				m.advance(m.now + uint64(rng.Intn(800)))
			case 8:
				// Resume a random blocked thread (scheduler activity).
				for bt := range m.blocked {
					m.Resume(bt)
					break
				}
			case 9:
				if rng.Intn(6) == 0 {
					k.ThreadExited(tid)
				} else {
					k.ReconcileStale()
				}
			}
			checkInvariants(t, k, seed, step)
			if t.Failed() {
				return
			}
		}
	}
}

func checkInvariants(t *testing.T, k *Kernel, seed int64, step int) {
	t.Helper()
	seen := map[*ActiveAR]int{}
	for i := range k.Canon.WPs {
		wp := k.Canon.WPs[i]
		m := k.Meta[i]
		if wp.Armed && !m.Stale && !m.Guard && len(m.ARs) == 0 {
			t.Errorf("seed %d step %d: wp%d armed with no ARs (%+v)", seed, step, i, wp)
		}
		if !wp.Armed {
			if len(m.ARs) != 0 || len(m.TrapSuspended) != 0 || len(m.BeginSuspended) != 0 || m.Stale || m.Guard {
				t.Errorf("seed %d step %d: wp%d disarmed but metadata persists: %+v", seed, step, i, m)
			}
		}
		for _, ar := range m.ARs {
			if prev, dup := seen[ar]; dup {
				t.Errorf("seed %d step %d: AR%d on wp%d and wp%d", seed, step, ar.ID, prev, i)
			}
			seen[ar] = i
			if ar.WP != i {
				t.Errorf("seed %d step %d: AR%d thinks it is on wp%d, found on wp%d", seed, step, ar.ID, ar.WP, i)
			}
			// It must be in its thread's table.
			found := false
			for _, ta := range k.ActiveARs(ar.Thread) {
				if ta == ar {
					found = true
				}
			}
			if !found {
				t.Errorf("seed %d step %d: AR%d on wp%d missing from thread %d's table", seed, step, ar.ID, i, ar.Thread)
			}
		}
	}
	// Every AR in a thread table with WP >= 0 must be on that watchpoint.
	for tid := 0; tid < 4; tid++ {
		for _, ar := range k.ActiveARs(tid) {
			if ar.WP < 0 {
				continue
			}
			found := false
			for _, wa := range k.Meta[ar.WP].ARs {
				if wa == ar {
					found = true
				}
			}
			if !found {
				t.Errorf("seed %d step %d: thread %d AR%d claims wp%d but is not on it", seed, step, tid, ar.ID, ar.WP)
			}
		}
	}
}
