// Package kernel implements Kivati's kernel component (§3.2–§3.3): the
// per-thread atomic region tables, the hardware watchpoint metadata, the
// begin_atomic / end_atomic / clear_ar handlers, the watchpoint trap handler
// with the undo engine that reverses committed remote accesses (x86 traps
// after the access), thread suspension with the 10 ms deadlock-avoidance
// timeout, and the violation log.
//
// The kernel manipulates the machine through the Machine interface; the
// canonical watchpoint register state lives here and is propagated lazily to
// per-core register files by the VM when cores enter the kernel.
package kernel

import (
	"kivati/internal/annotate"
	"kivati/internal/hw"
	"kivati/internal/isa"
	"kivati/internal/trace"
	"kivati/internal/whitelist"
)

// Mode selects Kivati's operating mode (§2.3).
type Mode int

const (
	// Prevention detects and prevents violations with minimal overhead.
	Prevention Mode = iota
	// BugFinding additionally pauses local threads inside atomic regions
	// to amplify the chance of a violating interleaving.
	BugFinding
)

func (m Mode) String() string {
	if m == BugFinding {
		return "bug-finding"
	}
	return "prevention"
}

// OptLevel selects the optimization configuration, matching the columns of
// the paper's Table 3.
type OptLevel int

const (
	// OptBase: every begin_atomic and end_atomic crosses into the kernel.
	OptBase OptLevel = iota
	// OptNullSyscall: annotations cross into the kernel but return
	// immediately (ablation isolating crossing cost).
	OptNullSyscall
	// OptSyncVars: Base plus the user-space whitelist seeded with
	// synchronization variables (optimization 4).
	OptSyncVars
	// OptOptimized: all four §3.4 optimizations — user-space
	// pre-processing, lazy watchpoint release, local-thread watchpoint
	// disable with shadow writes, and the whitelist.
	OptOptimized
)

func (o OptLevel) String() string {
	switch o {
	case OptBase:
		return "base"
	case OptNullSyscall:
		return "null-syscall"
	case OptSyncVars:
		return "syncvars"
	case OptOptimized:
		return "optimized"
	}
	return "opt?"
}

// UseWhitelist reports whether whitelisted ARs skip the kernel in user
// space.
func (o OptLevel) UseWhitelist() bool { return o == OptSyncVars || o == OptOptimized }

// UseUserLib reports whether the user-space library replicates AR and
// watchpoint metadata to elide kernel crossings (optimizations 1–3).
func (o OptLevel) UseUserLib() bool { return o == OptOptimized }

// NullOp reports whether kernel handlers return without doing anything.
func (o OptLevel) NullOp() bool { return o == OptNullSyscall }

// BlockKind is the reason a thread is blocked; the VM's scheduler uses it to
// decide wake conditions.
type BlockKind int

const (
	BlockNone  BlockKind = iota
	BlockEpoch           // begin_atomic waiting for cross-core watchpoint propagation
	BlockPause           // bug-finding pause inside an AR
	BlockTrap            // remote thread suspended after a watchpoint trap
	BlockBegin           // thread suspended in begin_atomic (its target is in another thread's AR)
	BlockLock            // waiting for a mutex
	BlockSleep           // sleep() syscall
	BlockRecv            // server thread waiting for a request
)

// Machine is the hardware/OS surface the kernel drives. The VM implements
// it.
type Machine interface {
	Now() uint64
	NumCores() int

	// Thread control. Suspend marks the thread blocked with the given
	// reason; Resume makes it runnable. SetWakeAt and SetEpochTarget set
	// auxiliary wake conditions honored for BlockEpoch/BlockPause.
	Suspend(tid int, kind BlockKind)
	Resume(tid int)
	SetWakeAt(tid int, tick uint64)
	SetEpochTarget(tid int, epoch uint64)

	ThreadDepth(tid int) int
	PC(tid int) uint32
	SetPC(tid int, pc uint32)
	Reg(tid int, r int) int64
	SetReg(tid int, r int, v int64)
	// LastInstrPC returns the PC of the last instruction the thread
	// executed, used only to cross-check the boundary-table undo path.
	LastInstrPC(tid int) uint32

	Load(addr uint32, sz uint8) uint64
	Store(addr uint32, sz uint8, v uint64)

	Boundary() *isa.BoundaryTable
	DecodeAt(pc uint32) (isa.Instr, bool)

	// After schedules fn to run at Now()+ticks. Pending closures make a
	// machine unsnapshottable, so kernel timers use AfterTimeout instead.
	After(ticks uint64, fn func())
	// AfterTimeout schedules TimeoutWP(wpIdx, gen) to run at Now()+ticks,
	// stored by the VM as plain data so pending suspension timeouts can be
	// captured and restored by machine snapshots.
	AfterTimeout(ticks uint64, wpIdx int, gen uint64)
	// EpochChanged tells the VM the canonical watchpoint state changed:
	// the executing core adopts immediately, others on their next kernel
	// entry.
	EpochChanged()
}

// Config parameterizes the kernel.
type Config struct {
	Mode           Mode
	Opt            OptLevel
	NumWatchpoints int    // hardware watchpoints per core (x86: 4)
	TimeoutTicks   uint64 // remote-thread suspension timeout (paper: 10 ms)
	PauseTicks     uint64 // bug-finding pause length (paper: 20/50 ms)
	// PauseEvery samples bug-finding pauses: pause on every Nth monitored
	// begin_atomic (0 disables). The paper pauses "at every begin_atomic"
	// but its measured 2–3% bug-finding overhead is only achievable if
	// pauses are far rarer than annotations; we make the sampling rate
	// explicit.
	PauseEvery uint64
	// ShadowDelta is the offset of the shadow page mirror; nonzero only
	// when the binary was compiled with shadow writes and optimization 3
	// is active.
	ShadowDelta uint32
	// TrapBefore selects before-access trap delivery (Table 1: SPARC and
	// some MIPS forms) instead of x86's after-access semantics. The VM
	// then aborts the access before it commits, so the kernel suspends
	// the remote thread without any undo — the simplification the paper
	// notes for such processors (§2.2). Watchpoints are implicitly
	// disabled for the owning thread (the hardware analog is resuming
	// local accesses with the resume-flag/single-step dance).
	TrapBefore bool
	// MaxBeginRetries bounds how many times in a row a begin_atomic is
	// suspended because its address sits in another thread's AR. Past the
	// bound the begin proceeds (its access is recorded as a detected
	// remote access but no longer delayed) — the same role the suspension
	// timeout plays for trap-blocked threads, preventing livelock against
	// a loop that re-arms its watchpoint every iteration. 0 means the
	// default of 4.
	MaxBeginRetries int
}

// RemoteRec records one remote access that hit a watchpoint during an AR.
type RemoteRec struct {
	Thread int
	PC     uint32 // PC of the accessing instruction (trap PC if unknown)
	Type   hw.AccessType
	Tick   uint64
	Undone bool
}

// ActiveAR is one dynamic atomic region instance.
type ActiveAR struct {
	ID      int
	Static  *annotate.AR // static AR info; nil for hand-assembled programs
	Thread  int
	Depth   int // call depth at begin_atomic, for clear_ar
	Addr    uint32
	Size    uint8
	Watch   hw.AccessType
	First   hw.AccessType
	BeginPC uint32
	Start   uint64
	WP      int // watchpoint index, -1 if unmonitored
	Remotes []RemoteRec
	// TimedOut marks that the AR was force-terminated by the suspension
	// timeout; a matching end_atomic still records the violation but notes
	// it was not prevented (§2.2).
	TimedOut bool
}

// WPMeta is the kernel's metadata for one watchpoint register.
type WPMeta struct {
	ARs            []*ActiveAR
	TrapSuspended  []int // remote threads suspended by traps on this watchpoint
	BeginSuspended []int // threads suspended during begin_atomic on this address
	Stale          bool  // optimization 2: hardware armed but logically free
	SavedValue     uint64
	HasSaved       bool
	Guard          bool // leak guard protecting a memory location a remote read leaked into
	GuardOwner     int
	Gen            uint64 // bumped on free/rearm; invalidates pending timeouts
	TimeoutArmed   bool
}

func (w *WPMeta) reset() {
	gen := w.Gen + 1
	*w = WPMeta{Gen: gen}
}

// threadState is the kernel's per-thread AR table.
type threadState struct {
	ARs      []*ActiveAR
	TimedOut map[int]*ActiveAR // AR ID -> timed-out instance awaiting its end_atomic
}

type mutex struct {
	held    bool
	owner   int
	waiters []int
}

// Stats counts kernel-side events. The VM shares this struct and fills the
// execution counters.
type Stats struct {
	Instructions uint64
	Ticks        uint64

	Begins, Ends, Clears                uint64 // annotations executed (any path)
	BeginKernel, EndKernel, ClearKernel uint64 // annotations that crossed into the kernel
	UserHandled                         uint64 // annotations absorbed by the user-space library
	WhitelistSkips                      uint64

	Traps             uint64
	SpuriousTraps     uint64
	StaleFrees        uint64
	MissedARs         uint64 // begin_atomic with no free watchpoint (§3.5)
	MonitoredARs      uint64 // begins that got (or joined) a watchpoint
	Timeouts          uint64
	BeginRetryGiveUps uint64 // begin_atomic suspensions abandoned after the retry bound
	Unreorderable     uint64 // remote accesses that could not be undone
	BoundaryMismatch  uint64 // undo refused: boundary table disagreed with reality
	Suspensions       uint64
	Pauses            uint64
	EpochWaits        uint64
	GuardsArmed       uint64

	OtherSyscalls   uint64
	TimerInterrupts uint64
	LocksBlocked    uint64

	// MissedByAR counts missed-AR events per AR ID (diagnostic: which
	// atomic regions lose monitoring to watchpoint exhaustion).
	MissedByAR map[int]uint64
}

// RecordMissed counts a missed AR.
func (s *Stats) RecordMissed(arID int) {
	s.MissedARs++
	if s.MissedByAR == nil {
		s.MissedByAR = map[int]uint64{}
	}
	s.MissedByAR[arID]++
}

// KernelEntries returns the domain crossings the paper's Table 4 counts:
// begin_atomic and end_atomic system calls plus remote traps (clear_ar
// included with the syscalls).
func (s *Stats) KernelEntries() uint64 {
	return s.BeginKernel + s.EndKernel + s.ClearKernel + s.Traps
}

// Kernel is the Kivati kernel component.
type Kernel struct {
	Cfg   Config
	M     Machine
	WL    *whitelist.Whitelist
	Log   *trace.Log
	Canon *hw.RegisterFile
	Meta  []*WPMeta
	Stats *Stats

	// Symbolize, if set, maps a PC to a source line for violation
	// reports.
	Symbolize func(pc uint32) int

	threads map[int]*threadState
	mutexes map[uint32]*mutex
	begins  uint64 // monotone count of monitored begins, for pause sampling
	arInfo  func(id int) *annotate.AR
	// beginRetries counts consecutive begin_atomic suspensions per
	// (thread, AR), cleared when the begin succeeds.
	beginRetries map[[2]int]int
}

// SetARInfo installs a lookup from AR ID to static AR metadata, used to
// enrich violation reports with function and variable names.
func (k *Kernel) SetARInfo(f func(id int) *annotate.AR) { k.arInfo = f }

// New constructs a kernel. The Machine must be attached (SetMachine) before
// any handler runs.
func New(cfg Config, wl *whitelist.Whitelist, log *trace.Log, stats *Stats) *Kernel {
	if cfg.NumWatchpoints <= 0 {
		cfg.NumWatchpoints = hw.DefaultNumWatchpoints
	}
	if wl == nil {
		wl = whitelist.New()
	}
	if log == nil {
		log = &trace.Log{}
	}
	if stats == nil {
		stats = &Stats{}
	}
	if cfg.MaxBeginRetries <= 0 {
		cfg.MaxBeginRetries = 4
	}
	k := &Kernel{
		Cfg:          cfg,
		WL:           wl,
		Log:          log,
		Stats:        stats,
		Canon:        hw.NewRegisterFile(cfg.NumWatchpoints),
		threads:      map[int]*threadState{},
		mutexes:      map[uint32]*mutex{},
		beginRetries: map[[2]int]int{},
	}
	k.Meta = make([]*WPMeta, cfg.NumWatchpoints)
	for i := range k.Meta {
		k.Meta[i] = &WPMeta{}
		k.Canon.Clear(i)
	}
	return k
}

// SetMachine attaches the machine.
func (k *Kernel) SetMachine(m Machine) { k.M = m }

func (k *Kernel) thread(t int) *threadState {
	ts := k.threads[t]
	if ts == nil {
		ts = &threadState{TimedOut: map[int]*ActiveAR{}}
		k.threads[t] = ts
	}
	return ts
}

// ActiveARs returns the thread's active atomic regions (used by the
// user-space library, which shares this state as its replica).
func (k *Kernel) ActiveARs(t int) []*ActiveAR { return k.thread(t).ARs }

// FindAR returns the thread's active AR with the given ID, or nil.
func (k *Kernel) FindAR(t, arID int) *ActiveAR {
	for _, ar := range k.thread(t).ARs {
		if ar.ID == arID {
			return ar
		}
	}
	return nil
}

// HasTimedOut reports whether the thread has a timed-out AR instance with
// the given ID awaiting its end_atomic.
func (k *Kernel) HasTimedOut(t, arID int) bool {
	_, ok := k.thread(t).TimedOut[arID]
	return ok
}

// AnyTimedOutAtDepth reports whether the thread has timed-out AR records at
// or below the given call depth.
func (k *Kernel) AnyTimedOutAtDepth(t, depth int) bool {
	for _, ar := range k.thread(t).TimedOut {
		if ar.Depth >= depth {
			return true
		}
	}
	return false
}

// localDisable reports whether optimization 3 (disable watchpoints during
// the owning thread's execution) is active.
func (k *Kernel) localDisable() bool { return k.Cfg.Opt.UseUserLib() }

// WatchedByOther returns the index of an armed, non-stale, non-guard
// watchpoint owned by a different thread that would trap an access of type
// t0 to [addr, addr+size), or -1.
func (k *Kernel) WatchedByOther(t int, addr uint32, size uint8, t0 hw.AccessType) int {
	if !k.Canon.MayMatch(addr, size) {
		return -1
	}
	for i, wp := range k.Canon.WPs {
		m := k.Meta[i]
		if !wp.Armed || m.Stale || m.Guard || wp.Owner == t {
			continue
		}
		if wp.Types&t0 == 0 {
			continue
		}
		if addr < wp.Addr+uint32(wp.Size) && wp.Addr < addr+uint32(size) {
			return i
		}
	}
	return -1
}

// OwnWP returns the index of a non-stale watchpoint owned by thread t on
// exactly addr, or -1.
func (k *Kernel) OwnWP(t int, addr uint32) int {
	if k.Canon.ArmedCount() == 0 {
		return -1
	}
	for i, wp := range k.Canon.WPs {
		if wp.Armed && !k.Meta[i].Stale && !k.Meta[i].Guard && wp.Owner == t && wp.Addr == addr {
			return i
		}
	}
	return -1
}

// FreeWPIndex returns a free (disarmed) watchpoint index, or -1. Stale
// watchpoints do not count as free here — reclaiming them requires a kernel
// entry (ReconcileStale).
func (k *Kernel) FreeWPIndex() int {
	if k.Canon.ArmedCount() == len(k.Canon.WPs) {
		return -1
	}
	for i, wp := range k.Canon.WPs {
		if !wp.Armed {
			return i
		}
	}
	return -1
}

// HasStale reports whether any watchpoint is lazily released and could be
// reclaimed by a kernel entry.
func (k *Kernel) HasStale() bool {
	for _, m := range k.Meta {
		if m.Stale {
			return true
		}
	}
	return false
}

// ReconcileStale frees all stale watchpoints (performed on kernel entries,
// making the hardware consistent with the user-space copy; §3.4 opt. 2).
// The per-register epoch bumps are kept — epoch-target arithmetic elsewhere
// counts individual canonical changes — but cross-core propagation is
// batched into one EpochChanged notification for the whole sweep: the
// machine only needs to learn once that cores are behind.
func (k *Kernel) ReconcileStale() {
	freed := false
	for i, m := range k.Meta {
		if m.Stale {
			k.Stats.StaleFrees++
			k.Canon.Clear(i)
			k.Canon.Epoch++
			k.Meta[i].reset()
			freed = true
		}
	}
	if freed {
		k.M.EpochChanged()
	}
}

// disarm clears a watchpoint register and resets its metadata. Suspended
// threads must have been resumed by the caller.
func (k *Kernel) disarm(i int) {
	k.Canon.Clear(i)
	k.Canon.Epoch++
	k.Meta[i].reset()
	k.M.EpochChanged()
}
