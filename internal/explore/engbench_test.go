package explore

import (
	"testing"

	"kivati/internal/bugs"
)

func benchEngine(b *testing.B, eng Engine) {
	bug, _ := bugs.ByID("NSS", "341323")
	s, _ := BugSubject(bug)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Differential(s, Options{Schedules: 100, Parallelism: 1, Engine: eng}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineReplay(b *testing.B)   { benchEngine(b, EngineReplay) }
func BenchmarkEngineSnapshot(b *testing.B) { benchEngine(b, EngineSnapshot) }
