package explore

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"

	"kivati/internal/vm"
)

// Decision-trace record and replay.
//
// A Trace is a self-contained, replayable record of one explored schedule:
// the program source, the full run configuration, the serial reference
// snapshot, and the chosen thread ID at every scheduler decision point.
// Replaying drives the VM with a vm.Replayer over those decisions; because
// the machine is fully deterministic given (binary, config, decisions),
// replay reproduces the run tick-for-tick — zero replay mismatches and a
// byte-identical snapshot. That is the reproducibility guarantee behind
// every oracle verdict: any divergent schedule can be re-examined from its
// trace file alone.

// TraceVersion identifies the trace file format. Version 2 added the
// engine metadata (Engine, DPOR); the decision encoding is unchanged, so
// version-1 traces remain fully replayable (see Replay) and a checked-in
// v1 fixture keeps that promise honest.
const TraceVersion = 2

// Trace is a recorded schedule, serializable to JSON.
type Trace struct {
	Version      int      `json:"version"`
	Subject      string   `json:"subject"`
	Source       string   `json:"source"`
	SnapshotVars []string `json:"snapshot_vars"`
	Mode         Mode     `json:"mode"`
	Strategy     Strategy `json:"strategy"`
	// Engine and DPOR record which machinery produced the original run
	// (v2 metadata; replay itself is engine-independent).
	Engine Engine `json:"engine,omitempty"`
	DPOR   bool   `json:"dpor,omitempty"`
	// Gen is a generated subject's provenance (v2 metadata, nil for the
	// hand-written corpus): the (seed, index, corpus) triple regenerates
	// the exact program, so a soak failure is replayable from the trace
	// alone even though Source is also embedded.
	Gen          *GenInfo         `json:"gen,omitempty"`
	Index        int              `json:"index"`
	Seed         int64            `json:"seed"`
	Quantum      uint64           `json:"quantum"`
	Cores        int              `json:"cores"`
	Watchpoints  int              `json:"watchpoints"`
	MaxTicks     uint64           `json:"max_ticks"`
	TimeoutTicks uint64           `json:"timeout_ticks"`
	Serial       map[string]int64 `json:"serial"`
	// Decisions is the chosen thread ID at each decision point.
	Decisions []int `json:"decisions"`
	// Snapshot and Diverged record the original run's verdict, verified
	// on replay.
	Snapshot map[string]int64 `json:"snapshot"`
	Diverged bool             `json:"diverged"`
}

// RecordTrace re-executes one schedule from a report with a recording
// policy and returns its trace. The re-execution is checked against the
// original run — a mismatch means the schedule was not reproducible and is
// an error.
func RecordTrace(subject *Subject, mode Mode, opts Options, run Run) (*Trace, error) {
	c, err := newCampaign(subject, opts)
	if err != nil {
		return nil, err
	}
	defer c.close()
	return c.recordTrace(mode, run)
}

func (c *campaign) recordTrace(mode Mode, run Run) (*Trace, error) {
	var inner vm.SchedulePolicy
	switch c.opts.Strategy {
	case Random:
		inner = randomPolicy{rng: rand.New(rand.NewSource(run.Seed))}
	case DFS:
		inner = &prefixPolicy{prefix: run.Prefix}
	default:
		return nil, fmt.Errorf("explore: unknown strategy %q", c.opts.Strategy)
	}
	rec := vm.NewRecorder(inner)
	replayed, err := c.runOne(mode, rec, run.Quantum, run.Seed)
	if err != nil {
		return nil, err
	}
	if !snapshotsEqual(replayed.Snapshot, run.Snapshot) {
		return nil, fmt.Errorf("explore: %s [%s] schedule %d: re-execution snapshot %v != original %v",
			c.subject.Name, mode, run.Index, replayed.Snapshot, run.Snapshot)
	}
	return &Trace{
		Version:      TraceVersion,
		Subject:      c.subject.Name,
		Source:       c.subject.Source,
		SnapshotVars: c.subject.SnapshotVars,
		Mode:         mode,
		Strategy:     c.opts.Strategy,
		Engine:       c.opts.Engine,
		DPOR:         c.opts.DPOR,
		Gen:          c.subject.Gen,
		Index:        run.Index,
		Seed:         run.Seed,
		Quantum:      run.Quantum,
		Cores:        c.opts.Cores,
		Watchpoints:  c.opts.Watchpoints,
		MaxTicks:     c.opts.MaxTicks,
		TimeoutTicks: c.opts.TimeoutTicks,
		Serial:       c.serial,
		Decisions:    rec.Chosen(),
		Snapshot:     replayed.Snapshot,
		Diverged:     replayed.Diverged,
	}, nil
}

// ReplayResult is the outcome of replaying a trace.
type ReplayResult struct {
	Run Run `json:"run"`
	// Mismatches counts decisions where the recorded thread was not
	// runnable; a faithful replay has zero.
	Mismatches int `json:"mismatches"`
	// Verdict reports whether the replay reproduced the trace's recorded
	// snapshot (and therefore its divergence verdict).
	Verdict bool `json:"verdict"`
}

// Replay re-executes a trace and verifies it reproduces the recorded
// outcome.
func Replay(tr *Trace) (*ReplayResult, error) {
	if tr.Version != 1 && tr.Version != TraceVersion {
		return nil, fmt.Errorf("explore: unsupported trace version %d", tr.Version)
	}
	subject := &Subject{Name: tr.Subject, Source: tr.Source, SnapshotVars: tr.SnapshotVars, Gen: tr.Gen}
	c, err := newCampaign(subject, Options{
		Strategy:     tr.Strategy,
		Schedules:    1,
		Seed:         tr.Seed,
		Cores:        tr.Cores,
		Quantum:      tr.Quantum,
		MaxTicks:     tr.MaxTicks,
		TimeoutTicks: tr.TimeoutTicks,
		Watchpoints:  tr.Watchpoints,
		Parallelism:  1,
	})
	if err != nil {
		return nil, err
	}
	defer c.close()
	if !snapshotsEqual(c.serial, tr.Serial) {
		return nil, fmt.Errorf("explore: %s: serial snapshot %v != trace serial %v",
			tr.Subject, c.serial, tr.Serial)
	}
	rep := vm.NewReplayer(tr.Decisions)
	run, err := c.runOne(tr.Mode, rep, tr.Quantum, tr.Seed)
	if err != nil {
		return nil, err
	}
	run.Index = tr.Index
	return &ReplayResult{
		Run:        run,
		Mismatches: rep.Mismatches(),
		Verdict:    rep.Mismatches() == 0 && snapshotsEqual(run.Snapshot, tr.Snapshot),
	}, nil
}

// WriteFile writes the trace as indented JSON.
func (tr *Trace) WriteFile(path string) error {
	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadTrace loads a trace file.
func ReadTrace(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tr Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("explore: %s: %w", path, err)
	}
	return &tr, nil
}
