package explore_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"kivati/internal/corpusgen"
	"kivati/internal/explore"
)

// TestGeneratedSubjectsDifferential drives one generated program per
// category through the differential oracle: injected bugs must diverge
// under vanilla and never under prevention, benign decoys must not be
// flagged at all. The statistical version over hundreds of programs lives
// in the harness soak test; this pins the wiring per shape.
func TestGeneratedSubjectsDifferential(t *testing.T) {
	schedules := 40
	if testing.Short() {
		schedules = 16
	}
	genOpts := corpusgen.Options{Count: 5, Seed: 2}
	progs, err := corpusgen.Generate(genOpts)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[corpusgen.Category]bool{}
	for _, p := range progs {
		seen[p.Category] = true
		d, err := explore.Differential(explore.GenSubject(p, len(progs)), explore.Options{
			Schedules: schedules,
			Seed:      3,
		})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if d.PreventionDivergences() != 0 {
			t.Errorf("%s [%s]: %d prevention-mode schedules diverged (engine bug)",
				p.Name, p.Category, d.PreventionDivergences())
		}
		switch p.Expect {
		case corpusgen.ExpectBug:
			if d.VanillaDivergences() == 0 {
				t.Errorf("%s [%s]: injected bug never diverged over %d vanilla schedules",
					p.Name, p.Category, schedules)
			}
		case corpusgen.ExpectBenign:
			if d.VanillaDivergences() != 0 {
				t.Errorf("%s [%s]: benign decoy diverged in %d vanilla schedules (false positive)",
					p.Name, p.Category, d.VanillaDivergences())
			}
		}
	}
	for _, c := range corpusgen.Categories() {
		if !seen[c] {
			t.Errorf("5-program corpus missing category %q", c)
		}
	}
}

// TestTraceCarriesGenMetadata: a trace recorded for a generated subject
// carries the (seed, index, corpus, category) provenance through the v2
// header and a write/read round trip, and still replays.
func TestTraceCarriesGenMetadata(t *testing.T) {
	genOpts := corpusgen.Options{Count: 3, Seed: 9}
	p := corpusgen.One(genOpts, 0) // index 0 is a bug shape by construction
	subject := explore.GenSubject(p, 3)
	opts := explore.Options{Schedules: 30, Seed: 5}
	rep, err := explore.Explore(subject, explore.Vanilla, opts)
	if err != nil {
		t.Fatal(err)
	}
	var divergent *explore.Run
	for i := range rep.Runs {
		if rep.Runs[i].Diverged {
			divergent = &rep.Runs[i]
			break
		}
	}
	if divergent == nil {
		t.Fatalf("%s: no divergent schedule in %d vanilla runs", p.Name, len(rep.Runs))
	}
	tr, err := explore.RecordTrace(subject, explore.Vanilla, opts, *divergent)
	if err != nil {
		t.Fatal(err)
	}
	want := &explore.GenInfo{Seed: p.Seed, Index: p.Index, Corpus: 3, Category: string(p.Category)}
	if !reflect.DeepEqual(tr.Gen, want) {
		t.Errorf("trace gen metadata = %+v, want %+v", tr.Gen, want)
	}
	path := filepath.Join(t.TempDir(), "gen-trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := explore.ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Gen, want) {
		t.Errorf("round-tripped gen metadata = %+v, want %+v", back.Gen, want)
	}
	res, err := explore.Replay(back)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict || res.Mismatches != 0 {
		t.Errorf("replay verdict=%v mismatches=%d, want faithful reproduction", res.Verdict, res.Mismatches)
	}
}
