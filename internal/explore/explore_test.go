package explore

import (
	"bytes"
	"encoding/json"
	"testing"

	"kivati/internal/bugs"
)

// corpusSchedules is the acceptance budget: the paper's central claim is
// checked over 500 explored schedules per bug and mode. Short mode keeps a
// meaningful slice for quick iteration.
func corpusSchedules(t *testing.T) int {
	if testing.Short() {
		return 60
	}
	return 500
}

// TestCorpusDifferential is the differential-oracle acceptance test: for
// every bug in the Table 6 corpus, random exploration must find at least
// one schedule where the vanilla program diverges from the serial result
// (the bug is real and schedule-dependent), and prevention mode must
// diverge on NO schedule (anything else is an engine bug). One divergent
// vanilla schedule per bug is then re-recorded as a decision trace and
// replayed, closing the reproducibility loop.
func TestCorpusDifferential(t *testing.T) {
	n := corpusSchedules(t)
	for _, b := range bugs.Corpus() {
		b := b
		t.Run(b.App+"_"+b.ID, func(t *testing.T) {
			t.Parallel()
			subject, err := BugSubject(b)
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{Strategy: Random, Schedules: n, Seed: 1}
			d, err := Differential(subject, opts)
			if err != nil {
				t.Fatal(err)
			}
			for name, v := range d.Serial {
				if v != 0 {
					t.Errorf("serial %s = %d, want 0 (witnesses must be silent serially)", name, v)
				}
			}
			if d.VanillaDivergences() == 0 {
				t.Errorf("vanilla: 0/%d schedules diverged; the bug never manifested", n)
			}
			if got := d.PreventionDivergences(); got != 0 {
				t.Errorf("prevention: %d/%d schedules diverged from serial — engine bug", got, n)
			}

			// Reproducibility: record and replay one divergent schedule.
			var divergent *Run
			for i := range d.Vanilla.Runs {
				if d.Vanilla.Runs[i].Diverged {
					divergent = &d.Vanilla.Runs[i]
					break
				}
			}
			if divergent == nil {
				return
			}
			tr, err := RecordTrace(subject, Vanilla, opts, *divergent)
			if err != nil {
				t.Fatalf("RecordTrace: %v", err)
			}
			res, err := Replay(tr)
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if res.Mismatches != 0 {
				t.Errorf("replay had %d decision mismatches, want 0", res.Mismatches)
			}
			if !res.Verdict {
				t.Errorf("replay verdict false: snapshot %v, trace snapshot %v",
					res.Run.Snapshot, tr.Snapshot)
			}
			if !res.Run.Diverged {
				t.Error("replayed schedule no longer diverges")
			}
		})
	}
}

// TestDeterminismAcrossParallelism locks in the contract that exploration
// output is byte-identical at any worker-pool size, for both strategies.
func TestDeterminismAcrossParallelism(t *testing.T) {
	b, err := bugs.ByID("NSS", "341323")
	if err != nil {
		t.Fatal(err)
	}
	subject, err := BugSubject(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{Random, DFS} {
		opts := Options{Strategy: strat, Schedules: 40, Seed: 7, Bound: 2}
		var baseline []byte
		for _, par := range []int{1, 4, 8} {
			opts.Parallelism = par
			d, err := Differential(subject, opts)
			if err != nil {
				t.Fatalf("%s parallelism %d: %v", strat, par, err)
			}
			enc, err := json.Marshal(d)
			if err != nil {
				t.Fatal(err)
			}
			if baseline == nil {
				baseline = enc
				continue
			}
			if !bytes.Equal(enc, baseline) {
				t.Errorf("%s: report at parallelism %d differs from parallelism 1", strat, par)
			}
		}
	}
}

// TestDFSEnumeration checks the structure of the preemption-bounded search:
// the root schedule is the empty prefix (pure round-robin), every explored
// prefix respects the deviation bound, no prefix repeats, and the budget is
// honored.
func TestDFSEnumeration(t *testing.T) {
	b, err := bugs.ByID("NSS", "225525")
	if err != nil {
		t.Fatal(err)
	}
	subject, err := BugSubject(b)
	if err != nil {
		t.Fatal(err)
	}
	const bound = 2
	rep, err := Explore(subject, Vanilla, Options{
		Strategy: DFS, Schedules: 50, Bound: bound, Horizon: 16, Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 50 {
		t.Fatalf("got %d runs, want 50", len(rep.Runs))
	}
	if len(rep.Runs[0].Prefix) != 0 {
		t.Errorf("first DFS schedule has prefix %v, want the empty prefix", rep.Runs[0].Prefix)
	}
	seen := map[string]bool{}
	for _, r := range rep.Runs {
		if d := deviations(r.Prefix); d > bound {
			t.Errorf("prefix %v has %d deviations, bound is %d", r.Prefix, d, bound)
		}
		key, _ := json.Marshal(r.Prefix)
		if seen[string(key)] {
			t.Errorf("prefix %v explored twice", r.Prefix)
		}
		seen[string(key)] = true
		if r.Index != len(seen)-1 {
			t.Errorf("run has index %d, want %d", r.Index, len(seen)-1)
		}
	}
}

// TestReplayDetectsTamper ensures a trace whose decisions no longer match
// the machine is reported as a failed replay rather than silently accepted.
func TestReplayDetectsTamper(t *testing.T) {
	b, err := bugs.ByID("NSS", "225525")
	if err != nil {
		t.Fatal(err)
	}
	subject, err := BugSubject(b)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Strategy: Random, Schedules: 10, Seed: 3}
	rep, err := Explore(subject, Vanilla, opts)
	if err != nil {
		t.Fatal(err)
	}
	var run *Run
	for i := range rep.Runs {
		if rep.Runs[i].Diverged {
			run = &rep.Runs[i]
			break
		}
	}
	if run == nil {
		t.Skip("no divergent run in the small budget")
	}
	tr, err := RecordTrace(subject, Vanilla, opts, *run)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the decisions: the replay runs out of the recorded schedule
	// and must count mismatches.
	tr.Decisions = tr.Decisions[:len(tr.Decisions)/4]
	res, err := Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches == 0 {
		t.Error("truncated trace replayed with 0 mismatches")
	}
	if res.Verdict {
		t.Error("truncated trace still reported a clean verdict")
	}
}

// TestTraceRoundTripsThroughJSON checks WriteFile/ReadTrace preserve the
// trace and the reloaded trace still replays.
func TestTraceRoundTripsThroughJSON(t *testing.T) {
	b, err := bugs.ByID("NSS", "329072")
	if err != nil {
		t.Fatal(err)
	}
	subject, err := BugSubject(b)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Strategy: Random, Schedules: 5, Seed: 11}
	rep, err := Explore(subject, Vanilla, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RecordTrace(subject, Vanilla, opts, rep.Runs[0])
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/trace.json"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(back)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict || res.Mismatches != 0 {
		t.Errorf("reloaded trace: verdict=%v mismatches=%d", res.Verdict, res.Mismatches)
	}
}

// TestBugSubjectRequiresFixture: a bug with no exploration fixture is an
// explicit error, not a silent skip.
func TestBugSubjectRequiresFixture(t *testing.T) {
	if _, err := BugSubject(&bugs.Bug{App: "X", ID: "0"}); err == nil {
		t.Error("BugSubject accepted a bug with no fixture")
	}
}
