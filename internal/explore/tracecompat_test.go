package explore

import (
	"path/filepath"
	"testing"
)

// TestTraceV1BackwardCompat replays a checked-in version-1 trace — recorded
// before the engine-metadata fields existed — and requires it to reproduce
// its recorded outcome exactly. Breaking this test means old trace archives
// can no longer be replayed; bump TraceVersion and keep the v1 reader
// instead.
func TestTraceV1BackwardCompat(t *testing.T) {
	tr, err := ReadTrace(filepath.Join("testdata", "trace_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Version != 1 {
		t.Fatalf("fixture version = %d, want 1", tr.Version)
	}
	if tr.Engine != "" || tr.DPOR {
		t.Fatalf("v1 fixture carries v2 engine metadata: engine=%q dpor=%v", tr.Engine, tr.DPOR)
	}
	res, err := Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict {
		t.Fatalf("v1 trace did not reproduce: %d mismatches, snapshot=%v recorded=%v",
			res.Mismatches, res.Run.Snapshot, tr.Snapshot)
	}
	if res.Mismatches != 0 {
		t.Fatalf("v1 trace replayed with %d mismatches", res.Mismatches)
	}
	if !res.Run.Diverged {
		t.Fatal("fixture records a divergent schedule; replay reported no divergence")
	}
}
