package explore

import (
	"fmt"

	"kivati/internal/vm"
)

// The differential oracle: the serial reference and the vanilla-vs-
// prevention comparison.
//
// The serial reference is a non-preemptive single-pass execution — the
// scheduling quantum is set beyond the tick cap, so every thread runs to
// its next blocking point uninterrupted and each fixture's step bodies are
// atomic. Fixtures are written so that *every* serial thread order agrees
// on the snapshot observables; the oracle verifies this by executing two
// opposite serial orders (FIFO and highest-thread-first) in both modes and
// refusing the subject if any of the four disagree. That check is also a
// standing audit that annotation + prevention preserve serial semantics.

// serialQuantum disables timer preemption for reference runs.
const serialQuantum = 1 << 40

// fifoPolicy is serial order A: always the queue head.
type fifoPolicy struct{}

func (fifoPolicy) Pick(sp vm.SchedPoint) int { return 0 }

// lastSpawnedPolicy is serial order B: the highest thread ID, reversing
// the order in which the workers run.
type lastSpawnedPolicy struct{}

func (lastSpawnedPolicy) Pick(sp vm.SchedPoint) int {
	best := 0
	for i, id := range sp.Runnable {
		if id > sp.Runnable[best] {
			best = i
		}
	}
	return best
}

// serialReference establishes the campaign's serial snapshot.
func (c *campaign) serialReference() error {
	type ref struct {
		mode   Mode
		policy vm.SchedulePolicy
		name   string
	}
	refs := []ref{
		{Vanilla, fifoPolicy{}, "vanilla/fifo"},
		{Vanilla, lastSpawnedPolicy{}, "vanilla/reversed"},
		{Prevention, fifoPolicy{}, "prevention/fifo"},
		{Prevention, lastSpawnedPolicy{}, "prevention/reversed"},
	}
	var base map[string]int64
	for _, r := range refs {
		run, err := c.serialRun(r.mode, r.policy)
		if err != nil {
			return fmt.Errorf("explore: %s: serial reference %s: %w", c.subject.Name, r.name, err)
		}
		if base == nil {
			base = run.Snapshot
			continue
		}
		if !snapshotsEqual(run.Snapshot, base) {
			return fmt.Errorf("explore: %s: serial executions disagree: %s got %v, want %v",
				c.subject.Name, r.name, run.Snapshot, base)
		}
	}
	c.serial = base
	return nil
}

// serialRun executes one serial reference run on whichever engine the
// campaign uses, so the sessions it warms up are the ones exploration
// reuses.
func (c *campaign) serialRun(mode Mode, policy vm.SchedulePolicy) (Run, error) {
	if c.opts.Engine != EngineSnapshot {
		return c.runOne(mode, policy, serialQuantum, c.opts.Seed)
	}
	p := c.pool(mode)
	s, err := p.get()
	if err != nil {
		return Run{}, err
	}
	defer p.put(s)
	return c.sessionRun(s, mode, policy, serialQuantum, c.opts.Seed)
}

// DiffReport compares vanilla and prevention over the same exploration
// options. The two modes compile to different binaries, so a given seed or
// prefix yields different (but individually deterministic and replayable)
// decision sequences in each mode; what is compared is the statistical
// claim over the schedule set, not schedule-by-schedule pairs.
type DiffReport struct {
	Subject string           `json:"subject"`
	Serial  map[string]int64 `json:"serial"`
	Vanilla *Report          `json:"vanilla"`
	// Prevention must report zero divergences: a prevention-mode snapshot
	// that differs from the serial result is an engine bug.
	Prevention *Report `json:"prevention"`
}

// VanillaDivergences is the count of explored schedules where the
// unprotected program corrupted the observables — evidence the bug is
// real and schedule-dependent.
func (d *DiffReport) VanillaDivergences() int { return d.Vanilla.Divergences }

// PreventionDivergences must be zero.
func (d *DiffReport) PreventionDivergences() int { return d.Prevention.Divergences }

// Differential explores the subject in both modes over the same options
// and packages the comparison.
func Differential(subject *Subject, opts Options) (*DiffReport, error) {
	c, err := newCampaign(subject, opts)
	if err != nil {
		return nil, err
	}
	defer c.close()
	van, err := c.explore(Vanilla)
	if err != nil {
		return nil, err
	}
	prev, err := c.explore(Prevention)
	if err != nil {
		return nil, err
	}
	return &DiffReport{
		Subject:    subject.Name,
		Serial:     c.serial,
		Vanilla:    van,
		Prevention: prev,
	}, nil
}
