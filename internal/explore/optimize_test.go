package explore

import (
	"testing"

	"kivati/internal/annotate"
	"kivati/internal/bugs"
)

// optimizerOptions is the full lockset-based annotation optimizer, as the
// production pipeline enables it (kivati.Analysis{Optimize: true}).
func optimizerOptions() annotate.Options {
	return annotate.Options{
		Lockset: true,
		Optimize: annotate.OptimizeOptions{
			DropBenign: true,
			Dedupe:     true,
			Coalesce:   true,
		},
	}
}

// TestCorpusDifferentialOptimized is the soundness gate for the annotation
// optimizer: re-running the differential oracle with every optimizer pass
// enabled, the bug must still manifest in the vanilla build (the fixture is
// unchanged) and prevention mode must still diverge on NO schedule — the
// optimizer may only ever drop or merge regions whose prevention coverage
// is subsumed by what remains.
func TestCorpusDifferentialOptimized(t *testing.T) {
	n := corpusSchedules(t)
	for _, b := range bugs.Corpus() {
		b := b
		t.Run(b.App+"_"+b.ID, func(t *testing.T) {
			t.Parallel()
			subject, err := BugSubject(b)
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{Strategy: Random, Schedules: n, Seed: 1, Annotate: optimizerOptions()}
			d, err := Differential(subject, opts)
			if err != nil {
				t.Fatal(err)
			}
			for name, v := range d.Serial {
				if v != 0 {
					t.Errorf("serial %s = %d, want 0 (witnesses must be silent serially)", name, v)
				}
			}
			if d.VanillaDivergences() == 0 {
				t.Errorf("vanilla: 0/%d schedules diverged; the bug never manifested", n)
			}
			if got := d.PreventionDivergences(); got != 0 {
				t.Errorf("prevention with optimizer: %d/%d schedules diverged from serial — unsound optimization", got, n)
			}
		})
	}
}
