package explore

import (
	"bytes"
	"encoding/json"
	"testing"

	"kivati/internal/bugs"
)

func subjectByName(t *testing.T, app, id string) *Subject {
	t.Helper()
	b, err := bugs.ByID(app, id)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BugSubject(b)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// scrubEngineMeta clears the fields that legitimately differ between
// engines, leaving everything the oracle cares about. The per-run
// decision-cost telemetry (same-pick continues, delta/full arms) depends
// on the dispatch tier — the replay engine pins DispatchStep, which never
// opens a superstep window and re-arms on every crossing — so it is
// engine metadata, not oracle output.
func scrubEngineMeta(d *DiffReport) {
	for _, r := range []*Report{d.Vanilla, d.Prevention} {
		r.Engine = ""
		r.Stats = nil
		for i := range r.Runs {
			r.Runs[i].SamePickContinues = 0
			r.Runs[i].DeltaArms = 0
			r.Runs[i].FullArms = 0
		}
	}
}

// TestEngineEquivalence is the engine differential: the snapshot engine
// (session reuse, Fast-mode recording, branch-point resume) must produce a
// byte-identical report to the legacy replay engine — same runs, same
// decision counts, same verdicts — for both strategies, modulo the engine
// metadata fields.
func TestEngineEquivalence(t *testing.T) {
	subjects := []*Subject{
		subjectByName(t, "NSS", "341323"),
		subjectByName(t, "Apache", "25520"),
	}
	for _, strat := range []Strategy{Random, DFS} {
		for _, s := range subjects {
			opts := Options{Strategy: strat, Schedules: 40, Seed: 7, Bound: 2, Parallelism: 2}
			var reports [2][]byte
			for i, eng := range []Engine{EngineReplay, EngineSnapshot} {
				o := opts
				o.Engine = eng
				d, err := Differential(s, o)
				if err != nil {
					t.Fatalf("%s %s %s: %v", s.Name, strat, eng, err)
				}
				scrubEngineMeta(d)
				enc, err := json.Marshal(d)
				if err != nil {
					t.Fatal(err)
				}
				reports[i] = enc
			}
			if !bytes.Equal(reports[0], reports[1]) {
				t.Errorf("%s %s: snapshot-engine report differs from replay engine\nreplay:   %s\nsnapshot: %s",
					s.Name, strat, reports[0], reports[1])
			}
		}
	}
}

// TestDPORSoundnessOnCorpus is the empirical gate behind the approximate
// swap-redundancy rule: over corpus bugs explored to DFS frontier
// exhaustion, the pruned search must report every bug the unpruned search
// reports (a vanilla divergence somewhere), identical prevention verdicts
// (zero divergences), and — whenever anything was pruned — strictly fewer
// executed schedules. The suite as a whole must prune something, or the
// optimization is dead weight.
func TestDPORSoundnessOnCorpus(t *testing.T) {
	corpus := bugs.Corpus()
	if testing.Short() {
		corpus = corpus[:4]
	}
	totalPruned := 0
	for _, b := range corpus {
		b := b
		t.Run(b.App+"_"+b.ID, func(t *testing.T) {
			s, err := BugSubject(b)
			if err != nil {
				t.Fatal(err)
			}
			// A budget far above the bound-1 frontier size, so both searches
			// exhaust the tree rather than hit the schedule cap.
			opts := Options{Strategy: DFS, Schedules: 2000, Bound: 1, Horizon: 24, Parallelism: 2}

			plain := opts
			plain.Engine = EngineSnapshot
			full, err := Differential(s, plain)
			if err != nil {
				t.Fatal(err)
			}
			pruned := opts
			pruned.Engine = EngineSnapshot
			pruned.DPOR = true
			dp, err := Differential(s, pruned)
			if err != nil {
				t.Fatal(err)
			}

			if len(full.Vanilla.Runs) >= opts.Schedules {
				t.Fatalf("unpruned search hit the %d-schedule budget; raise it so both sides exhaust the frontier", opts.Schedules)
			}
			if full.VanillaDivergences() > 0 && dp.VanillaDivergences() == 0 {
				t.Errorf("DPOR pruned away the bug: unpruned found %d divergent schedules, pruned found 0",
					full.VanillaDivergences())
			}
			if got := dp.PreventionDivergences(); got != 0 {
				t.Errorf("pruned prevention sweep diverged %d times, want 0", got)
			}
			nPruned := dp.Vanilla.Stats.Pruned + dp.Prevention.Stats.Pruned
			totalPruned += nPruned
			if nPruned > 0 {
				if got, want := len(dp.Vanilla.Runs)+len(dp.Prevention.Runs),
					len(full.Vanilla.Runs)+len(full.Prevention.Runs); got >= want {
					t.Errorf("DPOR pruned %d children but executed %d schedules vs %d unpruned",
						nPruned, got, want)
				}
			}
			t.Logf("unpruned=%d+%d pruned=%d+%d skipped=%d",
				len(full.Vanilla.Runs), len(full.Prevention.Runs),
				len(dp.Vanilla.Runs), len(dp.Prevention.Runs), nPruned)
		})
	}
	if totalPruned == 0 {
		t.Error("DPOR pruned nothing across the corpus; the redundancy check never fires")
	}
}

// TestDPOROptionValidation pins the DPOR prerequisites: dfs strategy,
// snapshot engine, single core.
func TestDPOROptionValidation(t *testing.T) {
	s := subjectByName(t, "NSS", "341323")
	cases := []struct {
		name string
		opts Options
	}{
		{"random strategy", Options{Strategy: Random, Schedules: 1, DPOR: true}},
		{"replay engine", Options{Strategy: DFS, Schedules: 1, DPOR: true, Engine: EngineReplay}},
		{"multi-core", Options{Strategy: DFS, Schedules: 1, DPOR: true, Cores: 2}},
	}
	for _, c := range cases {
		if _, err := Differential(s, c.opts); err == nil {
			t.Errorf("%s: DPOR accepted, want an error", c.name)
		}
	}
}
