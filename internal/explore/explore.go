// Package explore is the schedule-exploration subsystem: it drives the VM
// through the injectable scheduler hook (vm.SchedulePolicy) to enumerate
// or sample many distinct thread interleavings of one program, and — via
// the differential oracle in oracle.go — checks Kivati's central claim on
// each of them: a vanilla run *can* corrupt shared state, a prevention-
// mode run never corrupts the observables the engine guarantees.
//
// Three strategies are provided:
//
//   - Random: a seeded random walk — schedule k picks uniformly among the
//     runnable threads at every decision point, with the preemption
//     quantum varied per seed so decision points land at different
//     instruction phases.
//   - DFS: CHESS-style preemption-bounded depth-first search over the
//     tree of scheduling decisions. A schedule is a prefix of non-default
//     choices; children deviate at one more decision point, and prefixes
//     with more than Bound deviations are pruned.
//   - Replay (trace.go): re-execute one recorded decision trace exactly.
//
// Every run is deterministic given (strategy, seed/prefix, quantum), and
// exploration output is byte-identical at any Parallelism because results
// are slotted by schedule index and DFS runs in fixed-size waves.
package explore

import (
	"fmt"
	"math/rand"
	"sync"

	"kivati/internal/annotate"
	"kivati/internal/bugs"
	"kivati/internal/core"
	"kivati/internal/kernel"
	"kivati/internal/pool"
	"kivati/internal/vm"
)

// Strategy selects how schedules are generated.
type Strategy string

const (
	Random Strategy = "random"
	DFS    Strategy = "dfs"
)

// Mode is one side of the differential comparison.
type Mode string

const (
	// Vanilla runs the unannotated binary: no atomic regions, no engine.
	Vanilla Mode = "vanilla"
	// Prevention runs the annotated binary under the prevention engine.
	Prevention Mode = "prevention"
)

// Subject is one program under exploration.
type Subject struct {
	Name         string
	Source       string
	SnapshotVars []string
	// Gen carries a generated subject's provenance (nil for the
	// hand-written corpus); see GenSubject.
	Gen *GenInfo
}

// BugSubject wraps a corpus bug's exploration fixture.
func BugSubject(b *bugs.Bug) (*Subject, error) {
	if b.ExploreSource == "" {
		return nil, fmt.Errorf("explore: bug %s/%s has no exploration fixture", b.App, b.ID)
	}
	return &Subject{
		Name:         b.App + "/" + b.ID,
		Source:       b.ExploreSource,
		SnapshotVars: b.SnapshotVars,
	}, nil
}

// Options configure an exploration campaign.
type Options struct {
	Strategy Strategy
	Engine   Engine // execution engine (default EngineSnapshot; see engine.go)
	// DPOR enables dynamic partial-order reduction over the DFS: children
	// that merely commute provably independent transitions are pruned.
	// Requires the dfs strategy, the snapshot engine, and Cores == 1.
	DPOR      bool
	Schedules int   // schedule budget (default 100)
	Seed      int64 // base seed; random schedule k runs with Seed+k
	Bound     int   // dfs: max deviations from the default choice (default 3)
	Horizon   int   // dfs: only the first Horizon decisions spawn children (default 64)
	Cores     int   // default 1 — single-core interleavings are the bug search space
	// Quantum is the preemption quantum in ticks. 0 uses the strategy
	// default: DFS runs at a fixed 40 so the decision tree is well
	// defined, the random walk varies it per seed over [17,45] so
	// preemptions land at different instruction phases.
	Quantum      uint64
	MaxTicks     uint64 // per-run cap (default 4M)
	TimeoutTicks uint64 // kernel suspension timeout (default 10k)
	// Watchpoints defaults to 16, not the hardware's 4: the LSV includes
	// value-dependent locals, whose ARs compete with the shared variable's
	// for watchpoints, and an AR that loses the race (RecordMissed) runs
	// unmonitored — a capacity effect measured by Tables 8 and 9, not the
	// serializability property this oracle checks. The default provisions
	// enough watchpoints that every AR of the bounded fixtures is
	// monitored; set it to 4 to observe the pressure effects instead.
	Watchpoints int
	Parallelism int // worker pool size (0 = GOMAXPROCS)
	// Annotate selects the annotator configuration the subject is built
	// with — the oracle's lever for checking the lockset-based annotation
	// optimizer: enabling its passes here must leave prevention-mode
	// divergences at zero.
	Annotate annotate.Options
}

func (o Options) withDefaults() Options {
	if o.Strategy == "" {
		o.Strategy = Random
	}
	if o.Engine == "" {
		o.Engine = EngineSnapshot
	}
	if o.Schedules == 0 {
		o.Schedules = 100
	}
	if o.Bound == 0 {
		o.Bound = 3
	}
	if o.Horizon == 0 {
		o.Horizon = 64
	}
	if o.Cores == 0 {
		o.Cores = 1
	}
	if o.MaxTicks == 0 {
		o.MaxTicks = 4_000_000
	}
	if o.TimeoutTicks == 0 {
		o.TimeoutTicks = 10_000
	}
	if o.Watchpoints == 0 {
		o.Watchpoints = 16
	}
	return o
}

// quantumFor is the random strategy's per-seed quantum in [17,45]: a prime
// stride decorrelates it from the seed's decision stream.
func quantumFor(seed int64) uint64 {
	v := seed * 7919
	if v < 0 {
		v = -v
	}
	return 17 + uint64(v%29)
}

// Run is one explored schedule's outcome.
type Run struct {
	Index     int    `json:"index"`
	Seed      int64  `json:"seed"`
	Quantum   uint64 `json:"quantum"`
	Prefix    []int  `json:"prefix,omitempty"` // dfs deviation prefix (choice indices)
	Decisions int    `json:"decisions"`        // decision points consumed
	// Snapshot is the final value of each subject observable.
	Snapshot   map[string]int64 `json:"snapshot"`
	Diverged   bool             `json:"diverged"` // snapshot != serial snapshot
	Violations int              `json:"violations"`
	Prevented  int              `json:"prevented"`
	Ticks      uint64           `json:"ticks"`
	Reason     string           `json:"reason"`
	// Decision-point cost accounting (see vm.Result): kernel crossings the
	// same-pick superstep continuation avoided, and how watchpoint arming
	// at the crossings that did happen split between incremental delta
	// application and full register-file rewrites. Zero on the replay
	// engine's step-pinned runs, which never open a superstep window.
	SamePickContinues uint64 `json:"same_pick_continues,omitempty"`
	DeltaArms         uint64 `json:"delta_arms,omitempty"`
	FullArms          uint64 `json:"full_arms,omitempty"`
}

// Report is the outcome of exploring one subject in one mode.
type Report struct {
	Subject     string           `json:"subject"`
	Mode        Mode             `json:"mode"`
	Strategy    Strategy         `json:"strategy"`
	Engine      Engine           `json:"engine,omitempty"`
	Seed        int64            `json:"seed"`
	Bound       int              `json:"bound,omitempty"`
	Schedules   int              `json:"schedules"`
	Serial      map[string]int64 `json:"serial"`
	Runs        []Run            `json:"runs"`
	Divergences int              `json:"divergences"`
	// Stats reports the snapshot engine's work (nil on the replay engine).
	Stats *EngineStats `json:"engine_stats,omitempty"`
}

// campaign carries the per-subject state shared by every run.
type campaign struct {
	subject *Subject
	prog    *core.Program
	opts    Options
	serial  map[string]int64

	mu    sync.Mutex
	pools map[Mode]*sessionPool
}

func newCampaign(subject *Subject, opts Options) (*campaign, error) {
	prog, err := core.BuildWithOptions(subject.Source, opts.Annotate)
	if err != nil {
		return nil, fmt.Errorf("explore: %s: %w", subject.Name, err)
	}
	c := &campaign{subject: subject, prog: prog, opts: opts.withDefaults(), pools: map[Mode]*sessionPool{}}
	if c.opts.DPOR {
		switch {
		case c.opts.Strategy != DFS:
			return nil, fmt.Errorf("explore: %s: DPOR requires the dfs strategy", subject.Name)
		case c.opts.Engine != EngineSnapshot:
			return nil, fmt.Errorf("explore: %s: DPOR requires the snapshot engine", subject.Name)
		case c.opts.Cores != 1:
			return nil, fmt.Errorf("explore: %s: DPOR requires Cores == 1", subject.Name)
		}
	}
	if err := c.serialReference(); err != nil {
		return nil, err
	}
	return c, nil
}

// runConfig materializes the core.RunConfig for one schedule.
func (c *campaign) runConfig(mode Mode, policy vm.SchedulePolicy, quantum uint64, seed int64) core.RunConfig {
	costs := vm.DefaultCosts()
	costs.Quantum = quantum
	return core.RunConfig{
		Mode:           kernel.Prevention,
		Opt:            kernel.OptBase,
		Vanilla:        mode == Vanilla,
		NumWatchpoints: c.opts.Watchpoints,
		Cores:          c.opts.Cores,
		Seed:           seed,
		MaxTicks:       c.opts.MaxTicks,
		TimeoutTicks:   c.opts.TimeoutTicks,
		Costs:          costs,
		Policy:         policy,
		SnapshotVars:   c.subject.SnapshotVars,
		// Exploration owns the schedule: every decision point must reach
		// the injected policy at exactly the clock the legacy interpreter
		// would consult it. DispatchAuto already demotes when a Policy is
		// set; pin it explicitly so exploration semantics never ride on
		// that default.
		Dispatch: vm.DispatchStep,
	}
}

// countingPolicy counts the decision points a run consumed.
type countingPolicy struct {
	inner vm.SchedulePolicy
	n     int
}

func (p *countingPolicy) Pick(sp vm.SchedPoint) int {
	p.n++
	if p.inner == nil {
		return 0
	}
	return p.inner.Pick(sp)
}

// runOne executes one schedule on the replay engine and classifies it
// against the serial snapshot.
func (c *campaign) runOne(mode Mode, policy vm.SchedulePolicy, quantum uint64, seed int64) (Run, error) {
	cp := &countingPolicy{inner: policy}
	res, err := core.Run(c.prog, c.runConfig(mode, cp, quantum, seed))
	return c.classify(mode, res, cp.n, quantum, seed, err)
}

// classify turns one schedule's raw result into a Run verdict. An
// incomplete run (deadlock, tick cap) is an error: every fixture must
// terminate under every explored schedule.
func (c *campaign) classify(mode Mode, res *vm.Result, decisions int, quantum uint64, seed int64, err error) (Run, error) {
	if err != nil {
		return Run{}, fmt.Errorf("explore: %s [%s]: %w", c.subject.Name, mode, err)
	}
	if res.Reason != "completed" {
		return Run{}, fmt.Errorf("explore: %s [%s]: run did not complete: %s (ticks=%d)",
			c.subject.Name, mode, res.Reason, res.Ticks)
	}
	r := Run{
		Seed:              seed,
		Quantum:           quantum,
		Decisions:         decisions,
		Snapshot:          res.Snapshot,
		Diverged:          !snapshotsEqual(res.Snapshot, c.serial),
		Ticks:             res.Ticks,
		Reason:            res.Reason,
		SamePickContinues: res.SamePickContinues,
		DeltaArms:         res.DeltaArms,
		FullArms:          res.FullArms,
	}
	for _, v := range res.Violations {
		r.Violations++
		if v.Prevented {
			r.Prevented++
		}
	}
	return r, nil
}

func snapshotsEqual(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// randomPolicy picks uniformly among the runnable threads.
type randomPolicy struct{ rng *rand.Rand }

func (p randomPolicy) Pick(sp vm.SchedPoint) int { return p.rng.Intn(len(sp.Runnable)) }

// randomQuantum resolves the quantum for random-walk schedule seed.
func (c *campaign) randomQuantum(seed int64) uint64 {
	if c.opts.Quantum != 0 {
		return c.opts.Quantum
	}
	return quantumFor(seed)
}

// dfsQuantum resolves the (fixed) DFS quantum.
func (c *campaign) dfsQuantum() uint64 {
	if c.opts.Quantum != 0 {
		return c.opts.Quantum
	}
	return 40
}

// Explore runs one exploration campaign over the subject in one mode.
func Explore(subject *Subject, mode Mode, opts Options) (*Report, error) {
	c, err := newCampaign(subject, opts)
	if err != nil {
		return nil, err
	}
	defer c.close()
	return c.explore(mode)
}

func (c *campaign) explore(mode Mode) (*Report, error) {
	rep := &Report{
		Subject:   c.subject.Name,
		Mode:      mode,
		Strategy:  c.opts.Strategy,
		Engine:    c.engineFor(c.opts.Strategy),
		Seed:      c.opts.Seed,
		Schedules: c.opts.Schedules,
		Serial:    c.serial,
	}
	var stats *EngineStats
	if rep.Engine == EngineSnapshot {
		stats = &EngineStats{}
	}
	var runs []Run
	var err error
	switch c.opts.Strategy {
	case Random:
		if stats != nil {
			runs, err = c.exploreRandomSessions(mode, stats)
		} else {
			runs, err = c.exploreRandom(mode)
		}
	case DFS:
		rep.Bound = c.opts.Bound
		if stats != nil {
			runs, err = c.exploreDFSSessions(mode, stats)
		} else {
			runs, err = c.exploreDFS(mode)
		}
	default:
		return nil, fmt.Errorf("explore: unknown strategy %q", c.opts.Strategy)
	}
	if err != nil {
		return nil, err
	}
	rep.Runs = runs
	rep.Stats = stats
	for _, r := range runs {
		if r.Diverged {
			rep.Divergences++
		}
	}
	return rep, nil
}

// exploreRandom fans the seeded random walks out across the pool; results
// are slotted by schedule index, so output is parallelism-independent.
func (c *campaign) exploreRandom(mode Mode) ([]Run, error) {
	jobs := make([]func() (Run, error), c.opts.Schedules)
	for k := 0; k < c.opts.Schedules; k++ {
		k := k
		seed := c.opts.Seed + int64(k)
		jobs[k] = func() (Run, error) {
			policy := randomPolicy{rng: rand.New(rand.NewSource(seed))}
			r, err := c.runOne(mode, policy, c.randomQuantum(seed), seed)
			r.Index = k
			return r, err
		}
	}
	return pool.Run(pool.Workers(c.opts.Parallelism), jobs)
}

// prefixPolicy follows a deviation prefix: decision i takes prefix[i]
// (clamped) while i < len(prefix), and the default choice 0 — FIFO
// round-robin — afterwards. It records the branching factor of every
// decision so the DFS can enumerate children.
type prefixPolicy struct {
	prefix    []int
	branching []int
	n         int
}

func (p *prefixPolicy) Pick(sp vm.SchedPoint) int {
	choice := 0
	if p.n < len(p.prefix) {
		choice = p.prefix[p.n]
		if choice < 0 || choice >= len(sp.Runnable) {
			choice = 0
		}
	}
	p.branching = append(p.branching, len(sp.Runnable))
	p.n++
	return choice
}

func deviations(prefix []int) int {
	d := 0
	for _, c := range prefix {
		if c != 0 {
			d++
		}
	}
	return d
}

// dfsWave is the fixed batch size of the DFS frontier: waves of this many
// prefixes run concurrently. It is a constant — not the worker count — so
// the set of explored schedules is identical at any parallelism.
const dfsWave = 8

// exploreDFS is the preemption-bounded depth-first search: the frontier is
// a LIFO stack of deviation prefixes, seeded with the empty prefix (pure
// round-robin). After a prefix runs, every decision point it passed within
// the horizon spawns children that deviate there, pruned by the bound.
func (c *campaign) exploreDFS(mode Mode) ([]Run, error) {
	quantum := c.dfsQuantum()
	stack := [][]int{{}}
	var runs []Run
	for len(stack) > 0 && len(runs) < c.opts.Schedules {
		n := dfsWave
		if n > len(stack) {
			n = len(stack)
		}
		if rem := c.opts.Schedules - len(runs); n > rem {
			n = rem
		}
		// Pop the wave in LIFO order.
		wave := make([][]int, n)
		for i := 0; i < n; i++ {
			wave[i] = stack[len(stack)-1-i]
		}
		stack = stack[:len(stack)-n]

		type dfsResult struct {
			run       Run
			branching []int
		}
		jobs := make([]func() (dfsResult, error), n)
		for i, prefix := range wave {
			prefix := prefix
			jobs[i] = func() (dfsResult, error) {
				policy := &prefixPolicy{prefix: prefix}
				r, err := c.runOne(mode, policy, quantum, c.opts.Seed)
				if err != nil {
					return dfsResult{}, err
				}
				r.Prefix = prefix
				return dfsResult{run: r, branching: policy.branching}, nil
			}
		}
		results, err := pool.Run(pool.Workers(c.opts.Parallelism), jobs)
		if err != nil {
			return nil, err
		}
		for i, res := range results {
			res.run.Index = len(runs)
			runs = append(runs, res.run)
			// Children deviate at decision points past this prefix, within
			// the horizon. Push deepest-first so the LIFO explores the
			// shallowest deviation next.
			prefix := wave[i]
			base := deviations(prefix)
			if base >= c.opts.Bound {
				continue
			}
			var children [][]int
			limit := len(res.branching)
			if limit > c.opts.Horizon {
				limit = c.opts.Horizon
			}
			for d := len(prefix); d < limit; d++ {
				for choice := 1; choice < res.branching[d]; choice++ {
					child := make([]int, d+1)
					copy(child, prefix)
					child[d] = choice
					children = append(children, child)
				}
			}
			for j := len(children) - 1; j >= 0; j-- {
				stack = append(stack, children[j])
			}
		}
	}
	return runs, nil
}
