package explore

import (
	"math/rand"
	"testing"

	"kivati/internal/bugs"
)

// Delta-arming differential gates: watchpoint arming is maintained
// incrementally on the fast dispatch tier (hw.AdoptDelta plus the armed
// summary), so any divergence between the step-pinned interpreter — which
// re-arms in full on every kernel crossing — and the fast tier would show
// up as a schedule that plays out differently. The gate runs every corpus
// bug under both modes for several seeds and requires zero mismatches in
// the observable outcome, then closes the loop by recording the fast run's
// decision trace and replaying it (Recorder → Replayer), which must
// reproduce the snapshot exactly.

func TestDeltaArmDifferentialCorpus(t *testing.T) {
	corpus := bugs.Corpus()
	if testing.Short() {
		corpus = corpus[:4]
	}
	seeds := []int64{1, 2, 3}
	for _, b := range corpus {
		b := b
		t.Run(b.App+"_"+b.ID, func(t *testing.T) {
			t.Parallel()
			s, err := BugSubject(b)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range seeds {
				opts := Options{Strategy: Random, Schedules: 1, Seed: seed, Parallelism: 1}
				c, err := newCampaign(s, opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, mode := range []Mode{Vanilla, Prevention} {
					q := c.randomQuantum(seed)
					// Step-pinned: every crossing re-consults the canonical
					// register file through the legacy full path.
					stepRun, err := c.runOne(mode, randomPolicy{rng: rand.New(rand.NewSource(seed))}, q, seed)
					if err != nil {
						t.Fatal(err)
					}
					// Fast tier on a pooled session: superstep windows,
					// same-pick continuation and delta-arming all active.
					p := c.pool(mode)
					sess, err := p.get()
					if err != nil {
						t.Fatal(err)
					}
					fastRun, err := c.sessionRun(sess, mode, randomPolicy{rng: rand.New(rand.NewSource(seed))}, q, seed)
					p.put(sess)
					if err != nil {
						t.Fatal(err)
					}
					if !snapshotsEqual(stepRun.Snapshot, fastRun.Snapshot) ||
						stepRun.Decisions != fastRun.Decisions ||
						stepRun.Ticks != fastRun.Ticks ||
						stepRun.Diverged != fastRun.Diverged ||
						stepRun.Violations != fastRun.Violations ||
						stepRun.Prevented != fastRun.Prevented {
						t.Errorf("seed %d [%s]: step vs fast mismatch:\nstep: snap=%v dec=%d ticks=%d div=%v viol=%d prev=%d\nfast: snap=%v dec=%d ticks=%d div=%v viol=%d prev=%d",
							seed, mode,
							stepRun.Snapshot, stepRun.Decisions, stepRun.Ticks, stepRun.Diverged, stepRun.Violations, stepRun.Prevented,
							fastRun.Snapshot, fastRun.Decisions, fastRun.Ticks, fastRun.Diverged, fastRun.Violations, fastRun.Prevented)
					}
					// Recorder → Replayer: the fast run's decision trace must
					// reproduce its snapshot with zero replay mismatches.
					tr, err := c.recordTrace(mode, fastRun)
					if err != nil {
						t.Fatal(err)
					}
					res, err := Replay(tr)
					if err != nil {
						t.Fatal(err)
					}
					if res.Mismatches != 0 || !res.Verdict {
						t.Errorf("seed %d [%s]: replay of fast-run trace: mismatches=%d verdict=%v",
							seed, mode, res.Mismatches, res.Verdict)
					}
				}
				c.close()
			}
		})
	}
}
