package explore

import "kivati/internal/corpusgen"

// GenInfo identifies a generated subject's provenance: the corpus base
// seed, the program's index within it, and the corpus size. Together with
// the generator's determinism guarantee (program = f(seed, index)), these
// three numbers make any soak failure replayable from a report or trace
// alone — regenerate the program and re-run the recorded schedule.
type GenInfo struct {
	Seed   int64 `json:"seed"`
	Index  int   `json:"index"`
	Corpus int   `json:"corpus,omitempty"`
	// Category is the injected shape's ground-truth label.
	Category string `json:"category,omitempty"`
}

// GenSubject wraps a generated corpus program as an exploration subject,
// carrying its provenance into reports and traces.
func GenSubject(p *corpusgen.Program, corpus int) *Subject {
	return &Subject{
		Name:         p.Name,
		Source:       p.Source,
		SnapshotVars: p.SnapshotVars,
		Gen: &GenInfo{
			Seed:     p.Seed,
			Index:    p.Index,
			Corpus:   corpus,
			Category: string(p.Category),
		},
	}
}
