package explore

import (
	"fmt"
	"math/rand"
	"sync"

	"kivati/internal/core"
	"kivati/internal/kernel"
	"kivati/internal/pool"
	"kivati/internal/vm"
)

// The snapshot execution engine.
//
// The replay engine (the original implementation, kept for differential
// testing) builds a fresh kernel and an 8 MB machine for every schedule and
// pins the VM to DispatchStep; profiling showed ~60% of its per-schedule
// time was memory zeroing in vm.New, with most of the rest spent
// interpreting one instruction at a time. The snapshot engine removes both
// costs and adds branch-point resume:
//
//   - Each worker keeps one reusable core.Session; a schedule starts by
//     restoring a copy-on-write snapshot (a few page copies) instead of
//     constructing a machine.
//   - Sessions run under vm.DispatchFast — Fast-mode recording. The tiered
//     dispatcher consults the injected policy at exactly the ticks the
//     step interpreter would (superstep windows are refused whenever a
//     free core could schedule), so verdicts are identical; the
//     record-under-Fast/replay-under-Step differential gate in the root
//     test suite pins that equivalence down.
//   - The DFS captures a snapshot inside Policy.Pick at the first decision
//     past the frame's prefix and then every snapStride decisions, and each
//     child resumes from the deepest capture at or below its branch point,
//     replaying the short gap through its prefix, rather than re-executing
//     the shared prefix. (Capturing at every decision was measured to cost
//     more than it saved: a deep-horizon run would take hundreds of
//     snapshots and use a handful.) Snapshots are machine-portable, so any
//     worker can resume any frame.
//
// Mid-run resume re-enters vm.Run at the loop top, which re-executes the
// in-flight Pick; that re-entry is only provably equivalent on a single
// core (an idle multi-core machine could adopt canonical watchpoint state
// at a different point than the original flow), so multi-core DFS falls
// back to the replay engine. Random exploration restores only initial
// (clock-0) snapshots and is safe at any core count.
//
// Both engines enumerate identical schedules and produce byte-identical
// reports modulo the engine metadata fields; TestEngineEquivalence holds
// them together.

// rngPool recycles policy rng sources across schedules: each schedule's
// stream is fully determined by Seed, so a re-seeded pooled source is
// indistinguishable from a fresh one.
var rngPool = sync.Pool{New: func() interface{} { return rand.New(rand.NewSource(0)) }}

// Engine selects the execution machinery behind a campaign.
type Engine string

const (
	// EngineSnapshot is the session-reuse engine described above (default).
	EngineSnapshot Engine = "snapshot"
	// EngineReplay is the legacy engine: one vm.New per schedule, every
	// prefix re-executed from the start, DispatchStep pinned.
	EngineReplay Engine = "replay"
)

// EngineStats reports the snapshot engine's work for one explored mode.
type EngineStats struct {
	// Snapshots counts mid-run branch-point snapshots captured.
	Snapshots int `json:"snapshots"`
	// Restores counts snapshot restores (every schedule starts with one).
	Restores int `json:"restores"`
	// Resumed counts schedules resumed from a mid-run branch-point
	// snapshot rather than replayed from the initial state.
	Resumed int `json:"resumed"`
	// Pruned counts DFS children skipped by DPOR as swap-redundant.
	Pruned int `json:"pruned"`
}

// engineFor resolves the effective engine for a strategy: DFS needs
// mid-run resume, which is only single-core-safe.
func (c *campaign) engineFor(s Strategy) Engine {
	if c.opts.Engine == EngineSnapshot && s == DFS && c.opts.Cores != 1 {
		return EngineReplay
	}
	return c.opts.Engine
}

func (c *campaign) dporOn() bool {
	return c.opts.DPOR && c.engineFor(c.opts.Strategy) == EngineSnapshot
}

// sessionPool hands out per-worker Sessions for one mode, reusing them
// across waves and strategies for the life of the campaign.
type sessionPool struct {
	c    *campaign
	mode Mode
	mu   sync.Mutex
	free []*core.Session
}

func (c *campaign) pool(mode Mode) *sessionPool {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pools[mode]
	if !ok {
		p = &sessionPool{c: c, mode: mode}
		c.pools[mode] = p
	}
	return p
}

// close releases every pooled session. Campaign entry points defer it so
// a finished campaign does not pin worker-count 8 MB machine images.
func (c *campaign) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.pools {
		p.mu.Lock()
		p.free = nil
		p.mu.Unlock()
	}
	c.pools = map[Mode]*sessionPool{}
}

func (p *sessionPool) get() (*core.Session, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return s, nil
	}
	p.mu.Unlock()
	return p.c.newSession(p.mode)
}

func (p *sessionPool) put(s *core.Session) {
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}

// newSession mirrors runConfig for the session engine: same kernel and
// oracle configuration, but no per-construction policy or quantum (both
// are per-run) and the dispatcher unpinned to the fast tier.
func (c *campaign) newSession(mode Mode) (*core.Session, error) {
	s, err := core.NewSession(c.prog, core.RunConfig{
		Mode:           kernel.Prevention,
		Opt:            kernel.OptBase,
		Vanilla:        mode == Vanilla,
		NumWatchpoints: c.opts.Watchpoints,
		Cores:          c.opts.Cores,
		Seed:           c.opts.Seed,
		MaxTicks:       c.opts.MaxTicks,
		TimeoutTicks:   c.opts.TimeoutTicks,
		Costs:          vm.DefaultCosts(),
		SnapshotVars:   c.subject.SnapshotVars,
		Dispatch:       vm.DispatchFast,
	})
	if err != nil {
		return nil, fmt.Errorf("explore: %s [%s]: %w", c.subject.Name, mode, err)
	}
	if c.dporOn() {
		// Segments past the horizon never feed a pruning decision; the
		// slack tolerates the horizon-adjacent lookahead of the d' search.
		s.Machine().SetSegmentLimit(c.opts.Horizon + 8)
	}
	return s, nil
}

// runSessionJobs mirrors pool.Run — slotted results, lowest-indexed error,
// serial fast path on the calling goroutine — but leases each worker one
// reusable Session from the mode's pool.
func runSessionJobs[T any](p *sessionPool, workers int, jobs []func(*core.Session) (T, error)) ([]T, error) {
	results := make([]T, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers == 1 {
		s, err := p.get()
		if err != nil {
			return results, err
		}
		defer p.put(s)
		for i, job := range jobs {
			res, err := job(s)
			if err != nil {
				return results, err
			}
			results[i] = res
		}
		return results, nil
	}

	errs := make([]error, len(jobs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s *core.Session
			for i := range next {
				if s == nil {
					var err error
					if s, err = p.get(); err != nil {
						errs[i] = err
						continue
					}
				}
				results[i], errs[i] = jobs[i](s)
			}
			if s != nil {
				p.put(s)
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// sessionRun executes one full schedule from the initial state on a leased
// session. Decisions come from the machine's absolute decision counter,
// which matches what countingPolicy reports on the replay engine.
func (c *campaign) sessionRun(s *core.Session, mode Mode, policy vm.SchedulePolicy, quantum uint64, seed int64) (Run, error) {
	res, err := s.RunSchedule(policy, quantum, seed)
	var dec int
	if err == nil {
		dec = int(s.Machine().SchedSeq())
	}
	return c.classify(mode, res, dec, quantum, seed, err)
}

// exploreRandomSessions is the random walk on the snapshot engine: same
// seeds, policies and quanta as exploreRandom, but every schedule restores
// a pooled session instead of building a machine.
func (c *campaign) exploreRandomSessions(mode Mode, stats *EngineStats) ([]Run, error) {
	p := c.pool(mode)
	jobs := make([]func(*core.Session) (Run, error), c.opts.Schedules)
	for k := 0; k < c.opts.Schedules; k++ {
		k := k
		seed := c.opts.Seed + int64(k)
		jobs[k] = func(s *core.Session) (Run, error) {
			// Re-seeding a pooled source yields the identical stream to a
			// fresh rand.NewSource(seed) without the per-schedule allocation.
			rng := rngPool.Get().(*rand.Rand)
			rng.Seed(seed)
			r, err := c.sessionRun(s, mode, randomPolicy{rng: rng}, c.randomQuantum(seed), seed)
			rngPool.Put(rng)
			r.Index = k
			return r, err
		}
	}
	runs, err := runSessionJobs(p, pool.Workers(c.opts.Parallelism), jobs)
	if err != nil {
		return nil, err
	}
	stats.Restores += len(runs)
	return runs, nil
}

// dfsFrame is one frontier entry of the snapshot DFS: the deviation prefix
// to run plus the parent's branch-point snapshot to resume from (nil for
// the root, which runs from the initial state).
type dfsFrame struct {
	prefix []int
	snap   *vm.Snapshot
}

// framePolicy drives one DFS schedule on the snapshot engine. Decision
// indexes are absolute (sp.Seq): a resumed run starts mid-stream at its
// branch point, so prefix lookups, branching records and snapshot capture
// all key on Seq rather than a local counter.
type framePolicy struct {
	m       *vm.Machine
	prefix  []int
	horizon int
	stride  int  // capture spacing; see snapStride
	capture bool // this run may spawn children (deviations < bound)

	branching map[int]int          // decision -> branching factor, d < horizon
	runnable  map[int][]int        // decision -> runnable thread IDs (DPOR only)
	snaps     map[int]*vm.Snapshot // decision -> branch-point snapshot
	err       error                // first snapshot-capture failure
}

func (p *framePolicy) Pick(sp vm.SchedPoint) int {
	d := int(sp.Seq)
	if d < p.horizon {
		p.branching[d] = len(sp.Runnable)
		if d >= len(p.prefix) {
			if p.runnable != nil {
				p.runnable[d] = append([]int(nil), sp.Runnable...)
			}
			if p.capture && p.err == nil && (d == len(p.prefix) || d%p.stride == 0) {
				snap, err := p.m.Snapshot()
				if err != nil {
					p.err = err
				} else {
					p.snaps[d] = snap
				}
			}
		}
	}
	if d < len(p.prefix) {
		choice := p.prefix[d]
		if choice < 0 || choice >= len(sp.Runnable) {
			choice = 0
		}
		return choice
	}
	return 0
}

// exploreDFSSessions is the preemption-bounded DFS on the snapshot engine.
// The enumeration — wave size, LIFO order, bound and horizon pruning — is
// identical to exploreDFS; what changes is that every child resumes from
// its parent's branch-point snapshot, and (with DPOR) swap-redundant
// children are pruned before they are pushed.
func (c *campaign) exploreDFSSessions(mode Mode, stats *EngineStats) ([]Run, error) {
	quantum := c.dfsQuantum()
	dpor := c.dporOn()
	p := c.pool(mode)
	workers := pool.Workers(c.opts.Parallelism)
	stack := []dfsFrame{{prefix: []int{}}}
	var runs []Run
	for len(stack) > 0 && len(runs) < c.opts.Schedules {
		n := dfsWave
		if n > len(stack) {
			n = len(stack)
		}
		if rem := c.opts.Schedules - len(runs); n > rem {
			n = rem
		}
		// Pop the wave in LIFO order.
		wave := make([]dfsFrame, n)
		for i := 0; i < n; i++ {
			wave[i] = stack[len(stack)-1-i]
		}
		stack = stack[:len(stack)-n]

		type dfsResult struct {
			run       Run
			policy    *framePolicy
			segs      []vm.Segment
			decisions int
		}
		jobs := make([]func(*core.Session) (dfsResult, error), n)
		for i, fr := range wave {
			fr := fr
			jobs[i] = func(s *core.Session) (dfsResult, error) {
				fp := &framePolicy{
					m:         s.Machine(),
					prefix:    fr.prefix,
					horizon:   c.opts.Horizon,
					stride:    snapStride(c.opts.Horizon),
					capture:   deviations(fr.prefix) < c.opts.Bound,
					branching: map[int]int{},
					snaps:     map[int]*vm.Snapshot{},
				}
				if dpor {
					fp.runnable = map[int][]int{}
				}
				var res *vm.Result
				var err error
				if fr.snap == nil {
					res, err = s.RunSchedule(fp, quantum, c.opts.Seed)
				} else {
					res, err = s.RunFrom(fr.snap, fp)
				}
				var dec int
				if err == nil {
					dec = int(s.Machine().SchedSeq())
				}
				r, rerr := c.classify(mode, res, dec, quantum, c.opts.Seed, err)
				if rerr == nil {
					rerr = fp.err
				}
				if rerr != nil {
					return dfsResult{}, rerr
				}
				r.Prefix = fr.prefix
				out := dfsResult{run: r, policy: fp, decisions: dec}
				if dpor {
					out.segs = append([]vm.Segment(nil), s.Machine().Segments()...)
				}
				return out, nil
			}
		}
		results, err := runSessionJobs(p, workers, jobs)
		if err != nil {
			return nil, err
		}
		for i, res := range results {
			res.run.Index = len(runs)
			runs = append(runs, res.run)
			stats.Restores++
			if wave[i].snap != nil {
				stats.Resumed++
			}
			stats.Snapshots += len(res.policy.snaps)
			// Children deviate at decision points past this prefix, within
			// the horizon. Push deepest-first so the LIFO explores the
			// shallowest deviation next.
			prefix := wave[i].prefix
			if deviations(prefix) >= c.opts.Bound {
				continue
			}
			limit := res.decisions
			if limit > c.opts.Horizon {
				limit = c.opts.Horizon
			}
			stride := snapStride(c.opts.Horizon)
			var children []dfsFrame
			for d := len(prefix); d < limit; d++ {
				// Deepest capture at or below d; the child replays the
				// (< stride)-decision gap through its prefix.
				d0 := d - d%stride
				if d0 < len(prefix) {
					d0 = len(prefix)
				}
				snap := res.policy.snaps[d0]
				for choice := 1; choice < res.policy.branching[d]; choice++ {
					if dpor && pruneChild(res.policy, res.segs, d, choice) {
						stats.Pruned++
						continue
					}
					child := make([]int, d+1)
					copy(child, prefix)
					child[d] = choice
					children = append(children, dfsFrame{prefix: child, snap: snap})
				}
			}
			for j := len(children) - 1; j >= 0; j-- {
				stack = append(stack, children[j])
			}
		}
	}
	return runs, nil
}

// snapStride spaces branch-point captures along a DFS run. A child
// deviating at d resumes from the deepest capture at or below d and
// replays the gap (< stride decisions) through its prefix, so widening the
// stride trades a bounded replay per resume for proportionally fewer
// captures per run — a run captures ~horizon/stride snapshots instead of
// one per decision, almost all of which would be discarded.
func snapStride(horizon int) int {
	if s := horizon / 16; s > 1 {
		return s
	}
	return 1
}

// pruneChild is the DPOR swap-redundancy check. The candidate child
// deviates at decision d by running thread u first. If the parent's own
// run reached u at a later decision d', and u's transition there is
// independent of every transition the parent executed between d and d',
// then the child's schedule commutes u backwards across independent
// transitions into a state the parent's subtree already covers — skip it.
//
// Segments are indexed so segs[i+1] is the transition executed after
// decision i and carries its thread. The check is approximate: moving u
// earlier can shift later quantum-timed decision points, so DPOR is
// opt-in and its soundness is enforced empirically by the corpus gate
// (TestDPORSoundnessOnCorpus).
func pruneChild(fp *framePolicy, segs []vm.Segment, d, choice int) bool {
	runnable := fp.runnable[d]
	if choice >= len(runnable) {
		return false
	}
	u := runnable[choice]
	for dp := d; dp+1 < len(segs); dp++ {
		sd := &segs[dp+1]
		if sd.Thread != u {
			continue
		}
		// First decision at which the parent ran u. Prune only if its
		// transition commutes with everything in between.
		for i := d; i < dp; i++ {
			if !segs[i+1].Independent(sd) {
				return false
			}
		}
		return true
	}
	return false
}
