package hw

import (
	"testing"
	"testing/quick"
)

func TestAccessTypeString(t *testing.T) {
	cases := map[AccessType]string{Read: "R", Write: "W", ReadWrite: "RW", 0: "-"}
	for at, want := range cases {
		if got := at.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", at, got, want)
		}
	}
}

func TestValidSize(t *testing.T) {
	for _, sz := range []uint8{1, 2, 4, 8} {
		if !ValidSize(sz) {
			t.Errorf("ValidSize(%d) = false", sz)
		}
	}
	for _, sz := range []uint8{0, 3, 5, 6, 7, 9, 16} {
		if ValidSize(sz) {
			t.Errorf("ValidSize(%d) = true", sz)
		}
	}
}

func TestMatchBasic(t *testing.T) {
	rf := NewRegisterFile(4)
	rf.Set(0, Watchpoint{Addr: 0x1000, Size: 8, Types: Write, Armed: true, Owner: 1, LocalOf: -1})

	if got := rf.Match(2, 0x1000, 8, Write); got != 0 {
		t.Errorf("exact write match = %d, want 0", got)
	}
	if got := rf.Match(2, 0x1000, 8, Read); got != -1 {
		t.Errorf("read against write-only watchpoint = %d, want -1", got)
	}
	if got := rf.Match(2, 0x0ff8, 8, Write); got != -1 {
		t.Errorf("adjacent-below access = %d, want -1", got)
	}
	if got := rf.Match(2, 0x1008, 8, Write); got != -1 {
		t.Errorf("adjacent-above access = %d, want -1", got)
	}
	if got := rf.Match(2, 0x1004, 4, Write); got != 0 {
		t.Errorf("partial overlap = %d, want 0", got)
	}
	if got := rf.Match(2, 0x0ffc, 8, Write); got != 0 {
		t.Errorf("straddling overlap = %d, want 0", got)
	}
}

func TestMatchLocalExemption(t *testing.T) {
	// Optimization 3: the local thread that owns the AR does not trap.
	rf := NewRegisterFile(4)
	rf.Set(0, Watchpoint{Addr: 0x2000, Size: 4, Types: ReadWrite, Armed: true, Owner: 7, LocalOf: 7})
	if got := rf.Match(7, 0x2000, 4, Write); got != -1 {
		t.Errorf("local thread trapped: %d, want -1", got)
	}
	if got := rf.Match(8, 0x2000, 4, Write); got != 0 {
		t.Errorf("remote thread did not trap: %d, want 0", got)
	}
}

func TestMatchDisarmed(t *testing.T) {
	rf := NewRegisterFile(4)
	rf.Set(1, Watchpoint{Addr: 0x3000, Size: 8, Types: ReadWrite, Armed: false})
	if got := rf.Match(1, 0x3000, 8, Read); got != -1 {
		t.Errorf("disarmed watchpoint matched: %d", got)
	}
}

func TestMatchFirstOfSeveral(t *testing.T) {
	rf := NewRegisterFile(4)
	rf.Set(2, Watchpoint{Addr: 0x4000, Size: 8, Types: ReadWrite, Armed: true, Owner: 1, LocalOf: -1})
	rf.Set(3, Watchpoint{Addr: 0x4000, Size: 8, Types: ReadWrite, Armed: true, Owner: 2, LocalOf: -1})
	if got := rf.Match(9, 0x4000, 8, Read); got != 2 {
		t.Errorf("Match = %d, want first matching index 2", got)
	}
}

func TestFreeIndex(t *testing.T) {
	rf := NewRegisterFile(2)
	if got := rf.FreeIndex(); got != 0 {
		t.Errorf("FreeIndex on empty file = %d, want 0", got)
	}
	rf.Set(0, Watchpoint{Addr: 1, Size: 1, Types: Read, Armed: true})
	if got := rf.FreeIndex(); got != 1 {
		t.Errorf("FreeIndex = %d, want 1", got)
	}
	rf.Set(1, Watchpoint{Addr: 2, Size: 1, Types: Read, Armed: true})
	if got := rf.FreeIndex(); got != -1 {
		t.Errorf("FreeIndex on full file = %d, want -1 (missed AR condition)", got)
	}
	rf.Clear(0)
	if got := rf.FreeIndex(); got != 0 {
		t.Errorf("FreeIndex after Clear = %d, want 0", got)
	}
}

func TestCopyFrom(t *testing.T) {
	src := NewRegisterFile(4)
	src.Set(0, Watchpoint{Addr: 0x10, Size: 4, Types: Write, Armed: true, Owner: 3, LocalOf: 3})
	src.Epoch = 9
	dst := NewRegisterFile(4)
	dst.CopyFrom(src)
	if dst.Epoch != 9 {
		t.Errorf("Epoch = %d, want 9", dst.Epoch)
	}
	if dst.WPs[0] != src.WPs[0] {
		t.Errorf("WPs[0] = %+v, want %+v", dst.WPs[0], src.WPs[0])
	}
	// Mutating dst must not affect src (independent register files).
	dst.Clear(0)
	if !src.WPs[0].Armed {
		t.Error("Clear on copy disarmed the source register file")
	}
}

func TestSetPanics(t *testing.T) {
	rf := NewRegisterFile(2)
	assertPanics(t, "index out of range", func() { rf.Set(5, Watchpoint{}) })
	assertPanics(t, "invalid size", func() {
		rf.Set(0, Watchpoint{Addr: 1, Size: 3, Types: Read, Armed: true})
	})
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// Property: Match respects the overlap definition exactly — it returns a hit
// iff the byte ranges intersect, the types intersect, and the thread is not
// the exempted local.
func TestMatchProperty(t *testing.T) {
	f := func(wpAddr uint16, wpSzSel, accSzSel uint8, accAddr uint16, wpT, accT uint8, tid, local int8) bool {
		sizes := []uint8{1, 2, 4, 8}
		wp := Watchpoint{
			Addr:    uint32(wpAddr),
			Size:    sizes[wpSzSel%4],
			Types:   AccessType(wpT%3 + 1),
			Armed:   true,
			Owner:   0,
			LocalOf: int(local),
		}
		rf := NewRegisterFile(1)
		rf.Set(0, wp)
		at := AccessType(1 << (accT % 2)) // Read or Write
		asz := sizes[accSzSel%4]
		got := rf.Match(int(tid), uint32(accAddr), asz, at) == 0
		want := wp.Types&at != 0 &&
			int(tid) != wp.LocalOf &&
			uint32(accAddr) < wp.Addr+uint32(wp.Size) &&
			wp.Addr < uint32(accAddr)+uint32(asz)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestSurveyMatchesPaperTable1(t *testing.T) {
	if len(Survey) != 5 {
		t.Fatalf("Survey has %d rows, want 5", len(Survey))
	}
	x86 := Survey[0]
	if x86.Arch != "x86" || x86.Num != 4 || x86.Timing != "After" || !x86.Support {
		t.Errorf("x86 row = %+v", x86)
	}
	if DefaultNumWatchpoints != x86.Num {
		t.Errorf("DefaultNumWatchpoints = %d, want %d", DefaultNumWatchpoints, x86.Num)
	}
}
