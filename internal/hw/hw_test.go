package hw

import (
	"testing"
	"testing/quick"
)

func TestAccessTypeString(t *testing.T) {
	cases := map[AccessType]string{Read: "R", Write: "W", ReadWrite: "RW", 0: "-"}
	for at, want := range cases {
		if got := at.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", at, got, want)
		}
	}
}

func TestValidSize(t *testing.T) {
	for _, sz := range []uint8{1, 2, 4, 8} {
		if !ValidSize(sz) {
			t.Errorf("ValidSize(%d) = false", sz)
		}
	}
	for _, sz := range []uint8{0, 3, 5, 6, 7, 9, 16} {
		if ValidSize(sz) {
			t.Errorf("ValidSize(%d) = true", sz)
		}
	}
}

func TestMatchBasic(t *testing.T) {
	rf := NewRegisterFile(4)
	rf.Set(0, Watchpoint{Addr: 0x1000, Size: 8, Types: Write, Armed: true, Owner: 1, LocalOf: -1})

	if got := rf.Match(2, 0x1000, 8, Write); got != 0 {
		t.Errorf("exact write match = %d, want 0", got)
	}
	if got := rf.Match(2, 0x1000, 8, Read); got != -1 {
		t.Errorf("read against write-only watchpoint = %d, want -1", got)
	}
	if got := rf.Match(2, 0x0ff8, 8, Write); got != -1 {
		t.Errorf("adjacent-below access = %d, want -1", got)
	}
	if got := rf.Match(2, 0x1008, 8, Write); got != -1 {
		t.Errorf("adjacent-above access = %d, want -1", got)
	}
	if got := rf.Match(2, 0x1004, 4, Write); got != 0 {
		t.Errorf("partial overlap = %d, want 0", got)
	}
	if got := rf.Match(2, 0x0ffc, 8, Write); got != 0 {
		t.Errorf("straddling overlap = %d, want 0", got)
	}
}

func TestMatchLocalExemption(t *testing.T) {
	// Optimization 3: the local thread that owns the AR does not trap.
	rf := NewRegisterFile(4)
	rf.Set(0, Watchpoint{Addr: 0x2000, Size: 4, Types: ReadWrite, Armed: true, Owner: 7, LocalOf: 7})
	if got := rf.Match(7, 0x2000, 4, Write); got != -1 {
		t.Errorf("local thread trapped: %d, want -1", got)
	}
	if got := rf.Match(8, 0x2000, 4, Write); got != 0 {
		t.Errorf("remote thread did not trap: %d, want 0", got)
	}
}

func TestMatchDisarmed(t *testing.T) {
	rf := NewRegisterFile(4)
	rf.Set(1, Watchpoint{Addr: 0x3000, Size: 8, Types: ReadWrite, Armed: false})
	if got := rf.Match(1, 0x3000, 8, Read); got != -1 {
		t.Errorf("disarmed watchpoint matched: %d", got)
	}
}

func TestMatchFirstOfSeveral(t *testing.T) {
	rf := NewRegisterFile(4)
	rf.Set(2, Watchpoint{Addr: 0x4000, Size: 8, Types: ReadWrite, Armed: true, Owner: 1, LocalOf: -1})
	rf.Set(3, Watchpoint{Addr: 0x4000, Size: 8, Types: ReadWrite, Armed: true, Owner: 2, LocalOf: -1})
	if got := rf.Match(9, 0x4000, 8, Read); got != 2 {
		t.Errorf("Match = %d, want first matching index 2", got)
	}
}

func TestFreeIndex(t *testing.T) {
	rf := NewRegisterFile(2)
	if got := rf.FreeIndex(); got != 0 {
		t.Errorf("FreeIndex on empty file = %d, want 0", got)
	}
	rf.Set(0, Watchpoint{Addr: 1, Size: 1, Types: Read, Armed: true})
	if got := rf.FreeIndex(); got != 1 {
		t.Errorf("FreeIndex = %d, want 1", got)
	}
	rf.Set(1, Watchpoint{Addr: 2, Size: 1, Types: Read, Armed: true})
	if got := rf.FreeIndex(); got != -1 {
		t.Errorf("FreeIndex on full file = %d, want -1 (missed AR condition)", got)
	}
	rf.Clear(0)
	if got := rf.FreeIndex(); got != 0 {
		t.Errorf("FreeIndex after Clear = %d, want 0", got)
	}
}

func TestCopyFrom(t *testing.T) {
	src := NewRegisterFile(4)
	src.Set(0, Watchpoint{Addr: 0x10, Size: 4, Types: Write, Armed: true, Owner: 3, LocalOf: 3})
	src.Epoch = 9
	dst := NewRegisterFile(4)
	dst.CopyFrom(src)
	if dst.Epoch != 9 {
		t.Errorf("Epoch = %d, want 9", dst.Epoch)
	}
	if dst.WPs[0] != src.WPs[0] {
		t.Errorf("WPs[0] = %+v, want %+v", dst.WPs[0], src.WPs[0])
	}
	// Mutating dst must not affect src (independent register files).
	dst.Clear(0)
	if !src.WPs[0].Armed {
		t.Error("Clear on copy disarmed the source register file")
	}
}

func TestSetPanics(t *testing.T) {
	rf := NewRegisterFile(2)
	assertPanics(t, "index out of range", func() { rf.Set(5, Watchpoint{}) })
	assertPanics(t, "invalid size", func() {
		rf.Set(0, Watchpoint{Addr: 1, Size: 3, Types: Read, Armed: true})
	})
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// Property: Match respects the overlap definition exactly — it returns a hit
// iff the byte ranges intersect, the types intersect, and the thread is not
// the exempted local.
func TestMatchProperty(t *testing.T) {
	f := func(wpAddr uint16, wpSzSel, accSzSel uint8, accAddr uint16, wpT, accT uint8, tid, local int8) bool {
		sizes := []uint8{1, 2, 4, 8}
		wp := Watchpoint{
			Addr:    uint32(wpAddr),
			Size:    sizes[wpSzSel%4],
			Types:   AccessType(wpT%3 + 1),
			Armed:   true,
			Owner:   0,
			LocalOf: int(local),
		}
		rf := NewRegisterFile(1)
		rf.Set(0, wp)
		at := AccessType(1 << (accT % 2)) // Read or Write
		asz := sizes[accSzSel%4]
		got := rf.Match(int(tid), uint32(accAddr), asz, at) == 0
		want := wp.Types&at != 0 &&
			int(tid) != wp.LocalOf &&
			uint32(accAddr) < wp.Addr+uint32(wp.Size) &&
			wp.Addr < uint32(accAddr)+uint32(asz)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// checkSummary asserts the armed summary matches a fresh rescan of the
// registers.
func checkSummary(t *testing.T, rf *RegisterFile, context string) {
	t.Helper()
	armed := 0
	var lo, hi uint32
	for _, wp := range rf.WPs {
		if !wp.Armed {
			continue
		}
		end := wp.Addr + uint32(wp.Size)
		if armed == 0 {
			lo, hi = wp.Addr, end
		} else {
			if wp.Addr < lo {
				lo = wp.Addr
			}
			if end > hi {
				hi = end
			}
		}
		armed++
	}
	if got := rf.ArmedCount(); got != armed {
		t.Errorf("%s: ArmedCount = %d, want %d", context, got, armed)
	}
	gotLo, gotHi, ok := rf.Window()
	if ok != (armed > 0) {
		t.Errorf("%s: Window ok = %v, want %v", context, ok, armed > 0)
	}
	if ok && (gotLo != lo || gotHi != hi) {
		t.Errorf("%s: Window = [%#x, %#x), want [%#x, %#x)", context, gotLo, gotHi, lo, hi)
	}
}

func TestArmedSummaryCoherence(t *testing.T) {
	rf := NewRegisterFile(4)
	checkSummary(t, rf, "empty")
	if rf.MayMatch(0, 8) {
		t.Error("MayMatch on empty file = true")
	}

	rf.Set(1, Watchpoint{Addr: 0x2000, Size: 8, Types: Write, Armed: true, Owner: 1, LocalOf: -1})
	checkSummary(t, rf, "one armed")
	if lo, hi, _ := rf.Window(); lo != 0x2000 || hi != 0x2008 {
		t.Errorf("Window = [%#x, %#x), want [0x2000, 0x2008)", lo, hi)
	}

	rf.Set(3, Watchpoint{Addr: 0x1000, Size: 4, Types: Read, Armed: true, Owner: 2, LocalOf: -1})
	checkSummary(t, rf, "two armed")
	if lo, hi, _ := rf.Window(); lo != 0x1000 || hi != 0x2008 {
		t.Errorf("Window = [%#x, %#x), want [0x1000, 0x2008)", lo, hi)
	}

	// Clearing the register that defines the window's low edge must
	// shrink the window, not just decrement the count.
	rf.Clear(3)
	checkSummary(t, rf, "after clear")
	if lo, hi, _ := rf.Window(); lo != 0x2000 || hi != 0x2008 {
		t.Errorf("Window after Clear = [%#x, %#x), want [0x2000, 0x2008)", lo, hi)
	}

	// Overwriting an armed register with a disarmed value via Set.
	rf.Set(1, Watchpoint{Owner: -1, LocalOf: -1})
	checkSummary(t, rf, "all disarmed")
	if rf.ArmedCount() != 0 {
		t.Errorf("ArmedCount = %d, want 0", rf.ArmedCount())
	}
}

func TestCopyFromCopiesSummary(t *testing.T) {
	src := NewRegisterFile(4)
	src.Set(0, Watchpoint{Addr: 0x10, Size: 4, Types: Write, Armed: true, Owner: 3, LocalOf: -1})
	src.Set(2, Watchpoint{Addr: 0x40, Size: 8, Types: Read, Armed: true, Owner: 4, LocalOf: -1})
	dst := NewRegisterFile(4)
	dst.CopyFrom(src)
	checkSummary(t, dst, "after CopyFrom")
	if dst.ArmedCount() != 2 {
		t.Errorf("ArmedCount = %d, want 2", dst.ArmedCount())
	}
	// Disarm everything in the source and re-adopt: the summary must
	// follow, or a stale nonzero count would pin the VM off its fast path
	// forever.
	src.Clear(0)
	src.Clear(2)
	dst.CopyFrom(src)
	checkSummary(t, dst, "after re-CopyFrom")
	if dst.ArmedCount() != 0 {
		t.Errorf("ArmedCount after clearing source = %d, want 0", dst.ArmedCount())
	}
}

// Property: MayMatch is a sound filter for Match — whenever Match hits,
// MayMatch must have said "possible". (The converse need not hold: the
// window is a conservative over-approximation.)
func TestMayMatchSoundness(t *testing.T) {
	f := func(addrs [3]uint16, szSel [3]uint8, armedMask uint8, accAddr uint16, accSzSel uint8) bool {
		sizes := []uint8{1, 2, 4, 8}
		rf := NewRegisterFile(3)
		for i := 0; i < 3; i++ {
			rf.Set(i, Watchpoint{
				Addr:    uint32(addrs[i]),
				Size:    sizes[szSel[i]%4],
				Types:   ReadWrite,
				Armed:   armedMask&(1<<i) != 0,
				Owner:   0,
				LocalOf: -1,
			})
		}
		asz := sizes[accSzSel%4]
		hit := rf.Match(99, uint32(accAddr), asz, Write) >= 0
		return !hit || rf.MayMatch(uint32(accAddr), asz)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestSetIncrementalPaths drives Set through each branch of its incremental
// summary maintenance — arm into an empty file, arm extending each edge, arm
// strictly inside, disarm an interior register (the no-recompute fast path),
// disarm each edge register (the recompute slow path), and reprogram an
// armed register in place — checking the summary against the rescan oracle
// after every mutation.
func TestSetIncrementalPaths(t *testing.T) {
	arm := func(addr uint32, sz uint8) Watchpoint {
		return Watchpoint{Addr: addr, Size: sz, Types: ReadWrite, Armed: true, Owner: 0, LocalOf: -1}
	}
	rf := NewRegisterFile(4)

	rf.Set(0, arm(0x100, 8)) // first arm: window seeded exactly
	checkSummary(t, rf, "first arm")
	rf.Set(1, arm(0x80, 4)) // extends the low edge
	checkSummary(t, rf, "extend lo")
	rf.Set(2, arm(0x200, 8)) // extends the high edge
	checkSummary(t, rf, "extend hi")
	rf.Set(3, arm(0x180, 2)) // strictly interior: no edge change
	checkSummary(t, rf, "interior arm")

	rf.Clear(3) // interior disarm: the incremental path (no recompute)
	checkSummary(t, rf, "interior disarm")
	if lo, hi, _ := rf.Window(); lo != 0x80 || hi != 0x208 {
		t.Errorf("Window after interior disarm = [%#x, %#x), want [0x80, 0x208)", lo, hi)
	}
	rf.Clear(1) // low-edge disarm: must recompute and shrink lo
	checkSummary(t, rf, "lo-edge disarm")
	if lo, _, _ := rf.Window(); lo != 0x100 {
		t.Errorf("lo after edge disarm = %#x, want 0x100", lo)
	}
	rf.Clear(2) // high-edge disarm: must recompute and shrink hi
	checkSummary(t, rf, "hi-edge disarm")
	if _, hi, _ := rf.Window(); hi != 0x108 {
		t.Errorf("hi after edge disarm = %#x, want 0x108", hi)
	}

	// Reprogram the sole armed register (old value defines both edges) to a
	// disjoint location: the window must move, not hull.
	rf.Set(0, arm(0x400, 4))
	checkSummary(t, rf, "reprogram in place")
	if lo, hi, _ := rf.Window(); lo != 0x400 || hi != 0x404 {
		t.Errorf("Window after reprogram = [%#x, %#x), want [0x400, 0x404)", lo, hi)
	}
	rf.Clear(0)
	checkSummary(t, rf, "last disarm")
	if rf.MayMatch(0x400, 4) {
		t.Error("MayMatch true after last disarm")
	}
}

// Property: after any random sequence of Set/Clear/CopyFrom the incremental
// summary is identical to a fresh rescan of the registers (the satellite-2
// coherence property).
func TestSummaryCoherenceProperty(t *testing.T) {
	sizes := []uint8{1, 2, 4, 8}
	f := func(ops []uint32) bool {
		rf := NewRegisterFile(4)
		other := NewRegisterFile(4)
		for _, op := range ops {
			i := int(op>>2) % 4
			switch op % 3 {
			case 0:
				wp := Watchpoint{
					Addr:    (op >> 8) & 0xffff,
					Size:    sizes[(op>>24)%4],
					Types:   AccessType(op>>26)%3 + 1,
					Armed:   op&(1<<28) != 0,
					Owner:   0,
					LocalOf: -1,
				}
				rf.Set(i, wp)
				other.Set(3-i, wp)
			case 1:
				rf.Clear(i)
			case 2:
				rf.CopyFrom(other)
			}
			armed := 0
			var lo, hi uint32
			for _, wp := range rf.WPs {
				if !wp.Armed {
					continue
				}
				end := wp.Addr + uint32(wp.Size)
				if armed == 0 {
					lo, hi = wp.Addr, end
				} else {
					if wp.Addr < lo {
						lo = wp.Addr
					}
					if end > hi {
						hi = end
					}
				}
				armed++
			}
			gotLo, gotHi, ok := rf.Window()
			if rf.ArmedCount() != armed || ok != (armed > 0) {
				return false
			}
			if ok && (gotLo != lo || gotHi != hi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMayMatchRange(t *testing.T) {
	rf := NewRegisterFile(4)
	if rf.MayMatchRange(0, 0, ^uint32(0)) {
		t.Error("empty file: MayMatchRange = true")
	}
	rf.Set(0, Watchpoint{Addr: 0x1000, Size: 8, Types: Write, Armed: true, Owner: 1, LocalOf: -1})
	rf.Set(1, Watchpoint{Addr: 0x3000, Size: 4, Types: Read, Armed: true, Owner: 2, LocalOf: 2})

	if rf.MayMatchRange(5, 0x2000, 0x3000) {
		t.Error("range between registers reported as possible match")
	}
	if !rf.MayMatchRange(5, 0x1004, 0x1008) {
		t.Error("range inside register 0 reported disjoint")
	}
	if !rf.MayMatchRange(5, 0, ^uint32(0)) {
		t.Error("whole address space reported disjoint")
	}
	// Types are ignored: a write-only register still forces the checked
	// path for a range (the predicate is type-blind by design).
	if !rf.MayMatchRange(5, 0x0ff8, 0x1001) {
		t.Error("one-byte overlap with write-only register missed")
	}
	// Register 1 is LocalOf thread 2: exempt for it, live for others.
	if rf.MayMatchRange(2, 0x3000, 0x3004) {
		t.Error("LocalOf thread not exempted")
	}
	if !rf.MayMatchRange(5, 0x3000, 0x3004) {
		t.Error("remote thread not matched on register 1")
	}
	// Edges are half-open on both sides.
	if rf.MayMatchRange(5, 0x1008, 0x2000) {
		t.Error("range starting at register end matched")
	}
	if rf.MayMatchRange(5, 0x0f00, 0x1000) {
		t.Error("range ending at register start matched")
	}
}

// Property: MayMatchRange is a sound filter for Match — if any access inside
// [lo, hi) by thread tid hits a register, MayMatchRange(tid, lo, hi) must be
// true. This is the fast path's no-trap guarantee for footprint-disjoint
// blocks.
func TestMayMatchRangeSoundness(t *testing.T) {
	sizes := []uint8{1, 2, 4, 8}
	f := func(addrs [3]uint16, szSel [3]uint8, armedMask uint8, local int8,
		accAddr uint16, accSzSel uint8, span uint8, tid int8) bool {
		rf := NewRegisterFile(3)
		for i := 0; i < 3; i++ {
			rf.Set(i, Watchpoint{
				Addr:    uint32(addrs[i]),
				Size:    sizes[szSel[i]%4],
				Types:   ReadWrite,
				Armed:   armedMask&(1<<i) != 0,
				Owner:   0,
				LocalOf: int(local),
			})
		}
		asz := sizes[accSzSel%4]
		lo := uint32(accAddr)
		hi := lo + uint32(asz) + uint32(span)
		hit := rf.Match(int(tid), uint32(accAddr), asz, Write) >= 0
		return !hit || rf.MayMatchRange(int(tid), lo, hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestSurveyMatchesPaperTable1(t *testing.T) {
	if len(Survey) != 5 {
		t.Fatalf("Survey has %d rows, want 5", len(Survey))
	}
	x86 := Survey[0]
	if x86.Arch != "x86" || x86.Num != 4 || x86.Timing != "After" || !x86.Support {
		t.Errorf("x86 row = %+v", x86)
	}
	if DefaultNumWatchpoints != x86.Num {
		t.Errorf("DefaultNumWatchpoints = %d, want %d", DefaultNumWatchpoints, x86.Num)
	}
}

func TestMayMatchRanges(t *testing.T) {
	rf := NewRegisterFile(4)
	all := []AddrRange{{0, ^uint32(0)}}
	if rf.MayMatchRanges(0, all) {
		t.Error("empty file: MayMatchRanges = true")
	}
	rf.Set(0, Watchpoint{Addr: 0x1000, Size: 8, Types: Write, Armed: true, Owner: 1, LocalOf: -1})
	rf.Set(1, Watchpoint{Addr: 0x3000, Size: 4, Types: Read, Armed: true, Owner: 2, LocalOf: 2})

	if rf.MayMatchRanges(5, []AddrRange{{0x2000, 0x3000}, {0x4000, 0x5000}}) {
		t.Error("disjoint range set reported as possible match")
	}
	if !rf.MayMatchRanges(5, []AddrRange{{0x2000, 0x3000}, {0x1004, 0x1008}}) {
		t.Error("second range overlapping register 0 missed")
	}
	// LocalOf exemption applies per thread, across the whole set.
	if rf.MayMatchRanges(2, []AddrRange{{0x3000, 0x3004}}) {
		t.Error("LocalOf thread not exempted")
	}
	if !rf.MayMatchRanges(5, []AddrRange{{0x3000, 0x3004}}) {
		t.Error("remote thread not matched on register 1")
	}
	// Half-open on both sides, as MayMatchRange.
	if rf.MayMatchRanges(5, []AddrRange{{0x1008, 0x2000}, {0x0f00, 0x1000}}) {
		t.Error("touching-but-disjoint ranges matched")
	}
	if rf.MayMatchRanges(5, nil) {
		t.Error("empty range set matched")
	}
}

// Property: MayMatchRanges agrees with the disjunction of MayMatchRange
// over its elements — the multi-interval scan is exactly "any interval may
// match".
func TestMayMatchRangesEquivalence(t *testing.T) {
	sizes := []uint8{1, 2, 4, 8}
	f := func(addrs [3]uint16, szSel [3]uint8, armedMask uint8, local int8,
		r1lo, r1span, r2lo, r2span uint16, tid int8) bool {
		rf := NewRegisterFile(3)
		for i := 0; i < 3; i++ {
			rf.Set(i, Watchpoint{
				Addr:    uint32(addrs[i]),
				Size:    sizes[szSel[i]%4],
				Types:   ReadWrite,
				Armed:   armedMask&(1<<i) != 0,
				Owner:   0,
				LocalOf: int(local),
			})
		}
		ranges := []AddrRange{
			{uint32(r1lo), uint32(r1lo) + uint32(r1span)},
			{uint32(r2lo), uint32(r2lo) + uint32(r2span)},
		}
		want := false
		for _, r := range ranges {
			if rf.MayMatchRange(int(tid), r.Lo, r.Hi) {
				want = true
			}
		}
		return rf.MayMatchRanges(int(tid), ranges) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestAdoptDeltaIncrementalProperty quick-checks delta-arming against the
// from-scratch path: a canonical file takes a random Set/Clear sequence
// while follower files synchronize at random points — one via AdoptDelta
// (the incremental stamped scan), one via CopyFrom (the full rewrite).
// After every synchronization the two followers must agree on register
// content, generation-insensitive summary state (armed count and window),
// and the mutation cursor; and the incremental armed summary must equal a
// from-scratch recompute over the raw registers.
func TestAdoptDeltaIncrementalProperty(t *testing.T) {
	sizes := []uint8{1, 2, 4, 8}
	summary := func(rf *RegisterFile) (int, uint32, uint32) {
		armed := 0
		var lo, hi uint32
		for _, wp := range rf.WPs {
			if !wp.Armed {
				continue
			}
			end := wp.Addr + uint32(wp.Size)
			if armed == 0 {
				lo, hi = wp.Addr, end
			} else {
				if wp.Addr < lo {
					lo = wp.Addr
				}
				if end > hi {
					hi = end
				}
			}
			armed++
		}
		return armed, lo, hi
	}
	f := func(ops []uint32) bool {
		const n = 4
		canon := NewRegisterFile(n)
		delta := NewRegisterFile(n)
		full := NewRegisterFile(n)
		for _, op := range ops {
			i := int(op>>2) % n
			switch op % 4 {
			case 0, 1:
				canon.Set(i, Watchpoint{
					Addr:    (op >> 8) & 0xffff,
					Size:    sizes[(op>>24)%4],
					Types:   AccessType(op>>26)%3 + 1,
					Armed:   op&(1<<28) != 0,
					Owner:   0,
					LocalOf: -1,
				})
			case 2:
				canon.Clear(i)
			case 3:
				delta.AdoptDelta(canon)
				full.CopyFrom(canon)
				for j := range delta.WPs {
					if delta.WPs[j] != full.WPs[j] {
						return false
					}
				}
				if delta.Muts() != full.Muts() || delta.Epoch != full.Epoch {
					return false
				}
				wantArmed, wantLo, wantHi := summary(delta)
				if delta.ArmedCount() != wantArmed || full.ArmedCount() != wantArmed {
					return false
				}
				if wantArmed > 0 {
					dLo, dHi, ok := delta.Window()
					fLo, fHi, fok := full.Window()
					if !ok || !fok || dLo != wantLo || dHi != wantHi || fLo != wantLo || fHi != wantHi {
						return false
					}
				}
			}
		}
		// Final synchronization so every sequence checks at least once.
		delta.AdoptDelta(canon)
		full.CopyFrom(canon)
		for j := range delta.WPs {
			if delta.WPs[j] != full.WPs[j] {
				return false
			}
		}
		wantArmed, wantLo, wantHi := summary(canon)
		cArmed, cLo, cHi := canon.ArmedCount(), uint32(0), uint32(0)
		if lo, hi, ok := canon.Window(); ok {
			cLo, cHi = lo, hi
		}
		if cArmed != wantArmed || (wantArmed > 0 && (cLo != wantLo || cHi != wantHi)) {
			return false
		}
		return delta.ArmedCount() == wantArmed && full.ArmedCount() == wantArmed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
