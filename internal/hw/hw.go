// Package hw simulates the hardware watchpoint (debug register) facility
// Kivati builds on. It mirrors the x86 model the paper targets: each core
// has four watchpoint registers (DR0–DR3 equivalents), each configured with
// an address, an access width of 1, 2, 4 or 8 bytes, and the access types to
// trap on; the trap is delivered *after* the triggering instruction has
// committed its effects, which is what forces the kernel's undo machinery.
//
// The register count is configurable so the Table 9 watchpoint-sweep
// experiment (2–12 registers) can run on the same code path.
package hw

import "fmt"

// AccessType is a bitmask of memory access kinds.
type AccessType uint8

const (
	Read  AccessType = 1 << iota // load from memory
	Write                        // store to memory

	ReadWrite = Read | Write
)

func (t AccessType) String() string {
	switch t {
	case Read:
		return "R"
	case Write:
		return "W"
	case ReadWrite:
		return "RW"
	case 0:
		return "-"
	}
	return fmt.Sprintf("AccessType(%d)", uint8(t))
}

// DefaultNumWatchpoints is the number of debug registers on x86 (DR0–DR3).
const DefaultNumWatchpoints = 4

// Watchpoint is one debug register's configuration.
type Watchpoint struct {
	Addr    uint32     // watched address
	Size    uint8      // watched width: 1, 2, 4 or 8 bytes
	Types   AccessType // access kinds that trap
	Armed   bool       // register is in use
	Owner   int        // thread ID whose ARs own this register (-1 if none)
	LocalOf int        // thread whose accesses are exempt (-1 = none; optimization 3)
}

// ValidSize reports whether sz is a width the hardware can watch.
func ValidSize(sz uint8) bool {
	return sz == 1 || sz == 2 || sz == 4 || sz == 8
}

// overlaps reports whether [a, a+an) intersects [b, b+bn).
func overlaps(a uint32, an uint8, b uint32, bn uint8) bool {
	return a < b+uint32(bn) && b < a+uint32(an)
}

// RegisterFile is the set of watchpoint registers on one core.
//
// Alongside the registers themselves it maintains an armed-access summary —
// the armed-register count and the address window covered by the armed
// registers — kept coherent by Set/Clear/CopyFrom (the only mutation paths;
// the kernel's begin_atomic/end_atomic/clear_ar handlers and trap paths all
// program registers through Set/Clear). The summary collapses the common-case
// per-access watchpoint check to a single predicate when nothing is armed or
// the access falls outside the armed window, and is what the VM's tiered
// fast path consults to decide whether a core may execute trap-free.
type RegisterFile struct {
	WPs   []Watchpoint
	Epoch uint64 // version of the canonical register state this core has adopted

	armed  int    // number of armed registers (summary)
	lo, hi uint32 // armed address window [lo, hi); valid only when armed > 0

	// Delta-arming bookkeeping. muts counts content mutations of this file;
	// gens[i] records the mutation count at which register i last changed.
	// adopted is the source file's muts value at the last CopyFrom/AdoptDelta,
	// letting a core apply only the registers that changed since it last
	// synchronized instead of recopying the whole table.
	gens    []uint64
	muts    uint64
	adopted uint64
}

// NewRegisterFile returns a register file with n watchpoints.
func NewRegisterFile(n int) *RegisterFile {
	return &RegisterFile{WPs: make([]Watchpoint, n), gens: make([]uint64, n)}
}

// recompute rebuilds the armed summary from the registers: the slow path
// behind Set's incremental maintenance, needed only when a disarmed or
// reprogrammed register defined a window edge.
func (rf *RegisterFile) recompute() {
	rf.armed = 0
	rf.lo, rf.hi = 0, 0
	for i := range rf.WPs {
		wp := &rf.WPs[i]
		if !wp.Armed {
			continue
		}
		end := wp.Addr + uint32(wp.Size)
		if rf.armed == 0 {
			rf.lo, rf.hi = wp.Addr, end
		} else {
			if wp.Addr < rf.lo {
				rf.lo = wp.Addr
			}
			if end > rf.hi {
				rf.hi = end
			}
		}
		rf.armed++
	}
}

// Set programs register i, maintaining the armed summary incrementally:
// arming a register extends the window exactly, and disarming a strictly
// interior register only decrements the count. A full recompute happens
// only when the outgoing register touched a window edge (its address at lo
// or its end at hi), where the new tight edge depends on the other
// registers. Set panics on an invalid register index or size; programming
// the debug registers is a privileged, kernel-only operation and a bad
// argument is a kernel bug, not a recoverable condition.
func (rf *RegisterFile) Set(i int, wp Watchpoint) {
	if i < 0 || i >= len(rf.WPs) {
		panic(fmt.Sprintf("hw: watchpoint index %d out of range [0,%d)", i, len(rf.WPs)))
	}
	if wp.Armed && !ValidSize(wp.Size) {
		panic(fmt.Sprintf("hw: invalid watchpoint size %d", wp.Size))
	}
	old := rf.WPs[i]
	if wp == old {
		return
	}
	rf.muts++
	rf.gens[i] = rf.muts
	rf.WPs[i] = wp
	if old.Armed {
		if old.Addr == rf.lo || old.Addr+uint32(old.Size) == rf.hi {
			rf.recompute()
			return
		}
		rf.armed--
	}
	if wp.Armed {
		end := wp.Addr + uint32(wp.Size)
		if rf.armed == 0 {
			rf.lo, rf.hi = wp.Addr, end
		} else {
			if wp.Addr < rf.lo {
				rf.lo = wp.Addr
			}
			if end > rf.hi {
				rf.hi = end
			}
		}
		rf.armed++
	} else if rf.armed == 0 {
		rf.lo, rf.hi = 0, 0
	}
}

// Clear disarms register i.
func (rf *RegisterFile) Clear(i int) {
	rf.Set(i, Watchpoint{Owner: -1, LocalOf: -1})
}

// CopyFrom adopts the canonical register state wholesale (cross-core
// propagation; the paper's opportunistic update on kernel entry). It is the
// full-table slow path behind AdoptDelta and also the exact-clone primitive
// used by snapshots: generation stamps and the mutation count come along, so
// a clone is indistinguishable from its source to later delta adoptions.
func (rf *RegisterFile) CopyFrom(src *RegisterFile) {
	copy(rf.WPs, src.WPs)
	copy(rf.gens, src.gens)
	rf.Epoch = src.Epoch
	rf.armed, rf.lo, rf.hi = src.armed, src.lo, src.hi
	rf.muts = src.muts
	rf.adopted = src.muts
}

// AdoptDelta brings rf up to date with src by applying only the registers
// whose generation stamp postdates rf's last adoption — the symmetric
// difference between the two tables, since unchanged registers are already
// identical. It returns how many registers were written and whether the
// full-copy slow path ran (taken when every register may have changed, where
// a bulk copy is cheaper than the stamped scan). Callers must synchronize rf
// exclusively through CopyFrom/AdoptDelta from the same source for the
// adoption cursor to be meaningful.
func (rf *RegisterFile) AdoptDelta(src *RegisterFile) (changed int, full bool) {
	if rf.adopted == src.muts {
		rf.Epoch = src.Epoch
		return 0, false
	}
	if src.muts-rf.adopted >= uint64(len(rf.WPs)) {
		rf.CopyFrom(src)
		return len(rf.WPs), true
	}
	cursor := rf.adopted
	for i := range src.WPs {
		if src.gens[i] > cursor {
			rf.Set(i, src.WPs[i])
			rf.gens[i] = src.gens[i]
			changed++
		}
	}
	rf.muts = src.muts
	rf.adopted = src.muts
	rf.Epoch = src.Epoch
	return changed, false
}

// Muts returns the file's content-mutation count: it changes exactly when
// register content changes, so equality of Muts values taken from the same
// file lineage certifies identical register content.
func (rf *RegisterFile) Muts() uint64 { return rf.muts }

// ArmedCount returns the number of armed registers.
func (rf *RegisterFile) ArmedCount() int { return rf.armed }

// RelevantWindow summarizes the registers that can trap thread tid: the
// count of armed registers whose LocalOf is not tid, and the address window
// [lo, hi) they cover (meaningful only when n > 0). It is the per-thread
// refinement of the armed summary that the VM's block-edge decision caches.
func (rf *RegisterFile) RelevantWindow(tid int) (n int, lo, hi uint32) {
	if rf.armed == 0 {
		return 0, 0, 0
	}
	for i := range rf.WPs {
		wp := &rf.WPs[i]
		if !wp.Armed || wp.LocalOf == tid {
			continue
		}
		end := wp.Addr + uint32(wp.Size)
		if n == 0 {
			lo, hi = wp.Addr, end
		} else {
			if wp.Addr < lo {
				lo = wp.Addr
			}
			if end > hi {
				hi = end
			}
		}
		n++
	}
	return n, lo, hi
}

// Window returns the address window [lo, hi) covered by the armed registers.
// ok is false when nothing is armed (the window is then meaningless).
func (rf *RegisterFile) Window() (lo, hi uint32, ok bool) {
	return rf.lo, rf.hi, rf.armed > 0
}

// MayMatch is the armed-access summary predicate: it reports whether an
// access to [addr, addr+sz) could possibly hit an armed register. False
// means no Match call is needed; true means the per-register scan must run.
func (rf *RegisterFile) MayMatch(addr uint32, sz uint8) bool {
	return rf.armed != 0 && addr < rf.hi && rf.lo < addr+uint32(sz)
}

// MayMatchRange reports whether any access by thread tid inside the address
// interval [lo, hi) could hit an armed register. It is the footprint-vs-window
// disjointness predicate behind the VM's watchpoint-aware fast path: false
// means a straight-line run confined to [lo, hi) provably cannot trap on this
// core, whatever the access types, so the run may retire without per-access
// checks. Registers whose LocalOf equals tid are exempt, mirroring Match.
// Access types are ignored (conservative: a read-only watchpoint still forces
// the checked path for a range that only writes).
func (rf *RegisterFile) MayMatchRange(tid int, lo, hi uint32) bool {
	if rf.armed == 0 || lo >= rf.hi || hi <= rf.lo {
		return false
	}
	for i := range rf.WPs {
		wp := &rf.WPs[i]
		if !wp.Armed || wp.LocalOf == tid {
			continue
		}
		if lo < wp.Addr+uint32(wp.Size) && wp.Addr < hi {
			return true
		}
	}
	return false
}

// AddrRange is a half-open address interval [Lo, Hi), the unit of the
// multi-interval disjointness predicate below.
type AddrRange struct {
	Lo, Hi uint32
}

// MayMatchRanges is MayMatchRange over several intervals in one pass: it
// reports whether any access by thread tid inside any of the given
// intervals could hit an armed register. A block footprint has up to three
// components (absolute, SP-relative, FP-relative evaluated against live
// registers); scanning the register file once for all of them keeps the
// block-edge decision O(registers), not O(registers × components).
func (rf *RegisterFile) MayMatchRanges(tid int, ranges []AddrRange) bool {
	if rf.armed == 0 {
		return false
	}
	hit := false
	for _, r := range ranges {
		if r.Lo < rf.hi && rf.lo < r.Hi {
			hit = true
			break
		}
	}
	if !hit {
		return false
	}
	for i := range rf.WPs {
		wp := &rf.WPs[i]
		if !wp.Armed || wp.LocalOf == tid {
			continue
		}
		end := wp.Addr + uint32(wp.Size)
		for _, r := range ranges {
			if r.Lo < end && wp.Addr < r.Hi {
				return true
			}
		}
	}
	return false
}

// Match checks an access (addr, size sz, type t) performed by thread tid
// against the armed registers and returns the index of the first register
// that traps, or -1. A register whose LocalOf equals tid does not trap
// (optimization 3: watchpoints are disabled during execution of the local
// thread that owns the AR). The armed summary short-circuits the scan when
// nothing armed can overlap the access.
func (rf *RegisterFile) Match(tid int, addr uint32, sz uint8, t AccessType) int {
	if rf.armed == 0 || addr >= rf.hi || addr+uint32(sz) <= rf.lo {
		return -1
	}
	for i := range rf.WPs {
		wp := &rf.WPs[i]
		if !wp.Armed || wp.Types&t == 0 {
			continue
		}
		if wp.LocalOf == tid {
			continue
		}
		if overlaps(addr, sz, wp.Addr, wp.Size) {
			return i
		}
	}
	return -1
}

// FreeIndex returns the index of a disarmed register, or -1 if all are in
// use — the condition under which Kivati logs a missed AR.
func (rf *RegisterFile) FreeIndex() int {
	for i := range rf.WPs {
		if !rf.WPs[i].Armed {
			return i
		}
	}
	return -1
}

// ArchInfo is one row of the paper's Table 1 hardware watchpoint survey.
type ArchInfo struct {
	Arch    string
	Support bool
	Num     int
	Timing  string // whether the trap is delivered before or after the access
}

// Survey reproduces Table 1 of the paper.
var Survey = []ArchInfo{
	{Arch: "x86", Support: true, Num: 4, Timing: "After"},
	{Arch: "SPARC", Support: true, Num: 2, Timing: "Before"},
	{Arch: "MIPS", Support: true, Num: 1, Timing: "Depends on inst."},
	{Arch: "ARM", Support: true, Num: 2, Timing: "After"},
	{Arch: "PowerPC", Support: true, Num: 1, Timing: ""},
}
