package valrange

import (
	"math"
	"sort"

	"kivati/internal/cfg"
	"kivati/internal/dataflow"
	"kivati/internal/isa"
)

// Options configures Analyze.
type Options struct {
	// StackLo/StackHi bound the thread-stack region of the address space
	// (half-open). An absolute store whose target range may intersect it
	// conservatively clobbers all frame-slot facts; stores provably outside
	// it (globals, shadow) leave them intact.
	StackLo, StackHi uint32
}

// Analysis holds the pass's product: a bounded footprint per indirect
// memory access whose address range was provable.
type Analysis struct {
	resolved map[uint32]isa.Footprint
}

// AccessFootprint returns a bounded footprint for the general-register
// indirect access at pc, expressed relative to the register state just
// before the instruction (the same coordinate system as isa.InstrFootprint,
// so compile's reverse suffix walk can rebase and union it). ok is false
// when the access was not proved.
func (a *Analysis) AccessFootprint(pc uint32) (isa.Footprint, bool) {
	if a == nil {
		return isa.Footprint{}, false
	}
	f, ok := a.resolved[pc]
	return f, ok
}

// Resolved returns the number of proved accesses (diagnostics).
func (a *Analysis) Resolved() int {
	if a == nil {
		return 0
	}
	return len(a.resolved)
}

// Analyze decodes a whole binary image and runs the pass over each function
// region. entries are the function entry PCs (compile.Binary.FuncEntries);
// code before the first entry (the image's exit stub) is left unanalyzed.
func Analyze(code []byte, entries []uint32, opt Options) (*Analysis, error) {
	decoded, _, err := isa.DecodeProgram(code)
	if err != nil {
		return nil, err
	}
	return AnalyzeDecoded(decoded, entries, opt), nil
}

// AnalyzeDecoded is Analyze over an already-decoded image (decoded is
// indexed by PC as produced by isa.DecodeProgram).
func AnalyzeDecoded(decoded []isa.Instr, entries []uint32, opt Options) *Analysis {
	a := &Analysis{resolved: map[uint32]isa.Footprint{}}
	ents := make([]uint32, 0, len(entries))
	for _, e := range entries {
		if int(e) < len(decoded) && decoded[e].Len > 0 {
			ents = append(ents, e)
		}
	}
	if len(ents) == 0 {
		return a
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i] < ents[j] })

	type region struct{ lo, hi uint32 }
	var regions []region
	for i, lo := range ents {
		if i > 0 && lo == ents[i-1] {
			continue
		}
		hi := uint32(len(decoded))
		for j := i + 1; j < len(ents); j++ {
			if ents[j] > lo {
				hi = ents[j]
				break
			}
		}
		regions = append(regions, region{lo, hi})
	}

	// Pass 1: slot tracking on, to collect the escape verdicts. A frame
	// address that leaves its function through an unbounded channel (stored
	// to memory, passed to a callee or a spawned thread) can be written
	// through from anywhere, so such an escape disables slot tracking for
	// the whole image (register-only precision remains). An escape with a
	// known extent — begin_atomic arming a watchpoint on [addr, addr+size)
	// — only exposes that extent to foreign (kernel undo) writes, and only
	// while the arming activation is live (clear_ar at every subroutine
	// exit detaches the watchpoint before the frame pops, and callee frames
	// sit strictly below the caller's SP), so it merely poisons the
	// overlapped cells of its own function's rerun.
	type fnRun struct {
		g  *cfg.BinGraph
		r  *dataflow.EdgeResult
		fa *fnAnalysis
	}
	runs := make([]fnRun, len(regions))
	solve := func(i int, slots bool, poison []escRange) {
		rg := regions[i]
		g := cfg.BuildBinary(decoded, rg.lo, rg.hi)
		wt := g.BackEdgeTargets()
		fa := &fnAnalysis{dec: decoded, g: g, opt: opt, slotsOK: slots, poison: poison}
		r := dataflow.SolveEdges(len(g.Blocks),
			func(n int) []int { return g.Blocks[n].Succs },
			[]int{0},
			func(n int) bool { return wt[n] },
			fa)
		runs[i] = fnRun{g: g, r: r, fa: fa}
	}
	escAll := false
	for i := range regions {
		solve(i, true, nil)
		escAll = escAll || runs[i].fa.escAll
	}
	if escAll {
		for i := range regions {
			solve(i, false, nil)
		}
	} else {
		for i := range regions {
			if rs := runs[i].fa.escRanges; len(rs) > 0 {
				solve(i, true, rs)
			}
		}
	}

	// Resolution: replay the transfer through each reachable block and
	// record a bounded footprint for every provable indirect access.
	for _, run := range runs {
		for n, b := range run.g.Blocks {
			st, ok := run.r.In[n].(*state)
			if !ok || st.bot {
				continue
			}
			st = st.clone()
			for _, pc := range b.PCs {
				in := decoded[pc]
				if isIndirectAccess(in) {
					if f, provable := resolveAccess(st, in); provable {
						a.resolved[pc] = f
					}
				}
				run.fa.step(st, in)
				if st.bot {
					break
				}
			}
		}
	}
	return a
}

// isIndirectAccess reports whether in is a load/store through a general
// base register — the accesses isa.InstrFootprint marks Unbounded.
func isIndirectAccess(in isa.Instr) bool {
	op := in.Op
	if (op >= isa.OpLDR && op < isa.OpLDR+4) || (op >= isa.OpSTR && op < isa.OpSTR+4) {
		return in.Ra != isa.RegSP && in.Ra != isa.RegFP
	}
	return false
}

// resolveAccess bounds the byte range [base+imm, base+imm+sz) of one
// indirect access from the pre-instruction abstract state. Absolute ranges
// must fit the 32-bit address space without wrapping; frame-relative ranges
// are re-expressed against the current SP (or FP) so the footprint uses the
// same register-relative coordinates the VM evaluates at block entry.
func resolveAccess(st *state, in isa.Instr) (isa.Footprint, bool) {
	var f isa.Footprint
	av := vAdd(st.regs[in.Ra], cst(in.Imm))
	sz := int64(in.Sz)
	switch av.k {
	case kAbs:
		if av.lo >= 0 && av.hi <= math.MaxUint32-sz {
			f.AddAbsRange(uint32(av.lo), uint32(av.hi+sz))
			return f, true
		}
	case kFrame:
		if s, ok := st.regs[isa.RegSP].frameSingleton(); ok {
			lo, ok1 := subOv(av.lo, s)
			hi, ok2 := subOv(av.hi, s)
			if ok1 && ok2 {
				if hi2, ok3 := addOv(hi, sz); ok3 {
					f.AddSPRange(lo, hi2)
					return f, true
				}
			}
		}
		if s, ok := st.regs[isa.RegFP].frameSingleton(); ok {
			lo, ok1 := subOv(av.lo, s)
			hi, ok2 := subOv(av.hi, s)
			if ok1 && ok2 {
				if hi2, ok3 := addOv(hi, sz); ok3 {
					f.AddFPRange(lo, hi2)
					return f, true
				}
			}
		}
	}
	return isa.Footprint{}, false
}

// pred records the provenance of a boolean comparison result: the operand
// values captured at the compare, plus the frame-slot keys the operands
// were loaded from (when still valid), so a later conditional jump on the
// result can refine the slots along each edge.
type pred struct {
	op         isa.Op // OpCEQ..OpCGE
	lVal, rVal Val
	lKey, rKey int64
	lOK, rOK   bool
}

func predEq(a, b *pred) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

// state is the abstract machine state at one program point: a value per
// register, a value per tracked frame slot (8-byte cells keyed by their
// offset from the frame base; a missing key is Top), per-register slot
// provenance, and per-register comparison predicates. bot marks an
// unreachable point.
type state struct {
	bot      bool
	regs     [isa.NumRegs]Val
	origin   [isa.NumRegs]int64 // frame-slot key the register was loaded from
	originOK [isa.NumRegs]bool
	preds    [isa.NumRegs]*pred
	slots    map[int64]Val
}

func botState() *state { return &state{bot: true} }

func entryState() *state {
	st := &state{}
	for i := range st.regs {
		st.regs[i] = top()
	}
	st.regs[isa.RegSP] = mk(kFrame, 0, 0)
	return st
}

func (st *state) clone() *state {
	ns := *st
	if st.slots != nil {
		ns.slots = make(map[int64]Val, len(st.slots))
		for k, v := range st.slots {
			ns.slots[k] = v
		}
	}
	return &ns
}

// Equal implements dataflow.Facts.
func (st *state) Equal(other dataflow.Facts) bool {
	o, ok := other.(*state)
	if !ok {
		return false
	}
	if st.bot || o.bot {
		return st.bot == o.bot
	}
	for i := range st.regs {
		if st.regs[i] != o.regs[i] {
			return false
		}
		if st.originOK[i] != o.originOK[i] {
			return false
		}
		if st.originOK[i] && st.origin[i] != o.origin[i] {
			return false
		}
		if !predEq(st.preds[i], o.preds[i]) {
			return false
		}
	}
	if len(st.slots) != len(o.slots) {
		return false
	}
	for k, v := range st.slots {
		if ov, ok := o.slots[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

func (st *state) setReg(r uint8, v Val) {
	st.regs[r] = v
	st.originOK[r] = false
	st.preds[r] = nil
}

func (st *state) slotVal(key int64) Val {
	if v, ok := st.slots[key]; ok {
		return v
	}
	return top()
}

func (st *state) setSlot(key int64, v Val) {
	if v.k == kTop {
		// A missing key already means Top; keeping the representation
		// canonical keeps state equality (the fixpoint test) honest.
		delete(st.slots, key)
		return
	}
	if st.slots == nil {
		st.slots = map[int64]Val{}
	}
	st.slots[key] = v
}

// clobberSlotKey invalidates everything derived from slot key: the slot
// fact itself, register provenance into it, and predicates over it.
func (st *state) clobberSlotKey(key int64) {
	delete(st.slots, key)
	for i := range st.origin {
		if st.originOK[i] && st.origin[i] == key {
			st.originOK[i] = false
		}
		if p := st.preds[i]; p != nil && ((p.lOK && p.lKey == key) || (p.rOK && p.rKey == key)) {
			st.preds[i] = nil
		}
	}
}

// clobberSlotRange invalidates every 8-byte cell overlapping the half-open
// byte range [lo, hi) of frame offsets.
func (st *state) clobberSlotRange(lo, hi int64) {
	for k := range st.slots {
		if k < hi && lo < k+8 {
			st.clobberSlotKey(k)
		}
	}
}

func (st *state) clobberAllSlots() {
	for k := range st.slots {
		st.clobberSlotKey(k)
	}
}

// clobberSlotsBelow drops cells starting below the frame offset limit —
// the callee-territory invalidation at calls.
func (st *state) clobberSlotsBelow(limit int64) {
	for k := range st.slots {
		if k < limit {
			st.clobberSlotKey(k)
		}
	}
}

func joinState(a, b *state) *state {
	if a.bot {
		return b
	}
	if b.bot {
		return a
	}
	ns := &state{}
	for i := range ns.regs {
		ns.regs[i] = joinVal(a.regs[i], b.regs[i])
		if a.originOK[i] && b.originOK[i] && a.origin[i] == b.origin[i] {
			ns.origin[i], ns.originOK[i] = a.origin[i], true
		}
		if predEq(a.preds[i], b.preds[i]) {
			ns.preds[i] = a.preds[i]
		}
	}
	for k, va := range a.slots {
		if vb, ok := b.slots[k]; ok {
			ns.setSlot(k, joinVal(va, vb))
		}
	}
	return ns
}

// widenState extrapolates old toward new, key-wise; new must already
// over-approximate old (the caller joins first).
func widenState(old, new *state) *state {
	if old.bot {
		return new
	}
	if new.bot {
		return old
	}
	ns := &state{}
	for i := range ns.regs {
		ns.regs[i] = widenVal(old.regs[i], new.regs[i])
		if old.originOK[i] && new.originOK[i] && old.origin[i] == new.origin[i] {
			ns.origin[i], ns.originOK[i] = old.origin[i], true
		}
		if predEq(old.preds[i], new.preds[i]) {
			ns.preds[i] = old.preds[i]
		}
	}
	for k, vo := range old.slots {
		if vn, ok := new.slots[k]; ok {
			ns.setSlot(k, widenVal(vo, vn))
		}
	}
	return ns
}

// escRange is a half-open byte range of entry-SP-relative frame offsets
// that escaped with a known extent (a watchpoint armed on part of the
// frame): cells overlapping it may be written by the kernel's undo
// machinery, so the rerun never records facts for them.
type escRange struct{ lo, hi int64 }

// fnAnalysis is the per-function EdgeAnalysis: the transfer function over
// the decoded instructions of one region, with branch refinement on the
// two edges of conditional jumps.
type fnAnalysis struct {
	dec       []isa.Instr
	g         *cfg.BinGraph
	opt       Options
	slotsOK   bool
	escAll    bool       // a frame address left through an unbounded channel
	escRanges []escRange // bounded escapes collected during pass 1
	poison    []escRange // cells distrusted during the rerun
}

// poisoned reports whether the 8-byte cell at key overlaps an escaped
// extent; poisoned cells are never tracked.
func (a *fnAnalysis) poisoned(key int64) bool {
	for _, r := range a.poison {
		if key < r.hi && r.lo < key+8 {
			return true
		}
	}
	return false
}

func (a *fnAnalysis) Bottom() dataflow.Facts   { return botState() }
func (a *fnAnalysis) Entry(int) dataflow.Facts { return entryState() }
func (a *fnAnalysis) Join(x, y dataflow.Facts) dataflow.Facts {
	return joinState(x.(*state), y.(*state))
}

func (a *fnAnalysis) Widen(o, n dataflow.Facts) dataflow.Facts {
	os, ns := o.(*state), n.(*state)
	return widenState(os, joinState(os, ns))
}

func (a *fnAnalysis) Flow(n int, in dataflow.Facts) []dataflow.Facts {
	b := a.g.Blocks[n]
	st := in.(*state)
	last := b.PCs[len(b.PCs)-1]
	lin := a.dec[last]

	if lin.Op == isa.OpJZ || lin.Op == isa.OpJNZ {
		if !st.bot {
			st = st.clone()
			for _, pc := range b.PCs[:len(b.PCs)-1] {
				a.step(st, a.dec[pc])
			}
		}
		// Per-edge refinement, in BuildBinary's edge order: taken first,
		// fall-through second, skipping out-of-region targets.
		zeroTaken := lin.Op == isa.OpJZ
		next := last + uint32(lin.Len)
		outs := make([]dataflow.Facts, 0, len(b.Succs))
		for _, e := range []struct {
			target uint32
			zero   bool
		}{{lin.Addr, zeroTaken}, {next, !zeroTaken}} {
			if a.g.BlockAt(e.target) < 0 {
				continue
			}
			if st.bot {
				outs = append(outs, botState())
			} else {
				outs = append(outs, refineBranch(st, lin.Ra, e.zero))
			}
		}
		return outs
	}

	if !st.bot {
		st = st.clone()
		for _, pc := range b.PCs {
			a.step(st, a.dec[pc])
		}
	}
	outs := make([]dataflow.Facts, len(b.Succs))
	for i := range outs {
		outs[i] = st
	}
	return outs
}

// noteEscape flags a frame address leaving the function through a channel
// with no extent bound — anything may be written through it.
func (a *fnAnalysis) noteEscape(v Val) {
	if v.isFrameBased() {
		a.escAll = true
	}
}

// noteEscapeExtent flags a frame address escaping with a known byte extent
// (begin_atomic's watched range): only [addr, addr+size) becomes
// kernel-writable. When the address is not a tight frame interval or the
// size is unknown, it degrades to the unbounded escape.
func (a *fnAnalysis) noteEscapeExtent(addr, size Val) {
	if !addr.isFrameBased() {
		return
	}
	if addr.k == kFrame && size.k == kAbs && size.lo >= 0 {
		if hi, ok := addOv(addr.hi, size.hi); ok {
			a.escRanges = append(a.escRanges, escRange{addr.lo, hi})
			return
		}
	}
	a.escAll = true
}

// storeTo applies one store's effect on the slot facts: a tracked 8-byte
// frame-singleton write updates its cell; anything that may alias the
// frame clobbers the overlap (or everything, for untracked targets).
func (a *fnAnalysis) storeTo(st *state, target Val, sz int64, v Val) {
	switch target.k {
	case kFrame:
		if key, ok := target.frameSingleton(); ok && sz == 8 && a.slotsOK && !a.poisoned(key) {
			st.clobberSlotRange(key, key+sz)
			st.setSlot(key, v)
			return
		}
		hi, ok := addOv(target.hi, sz)
		if !ok {
			st.clobberAllSlots()
			return
		}
		st.clobberSlotRange(target.lo, hi)
	case kAbs:
		// Disjoint from the stack region (as a non-wrapping 32-bit range):
		// no frame cell can alias.
		if target.lo >= 0 && target.hi <= math.MaxUint32-sz &&
			(target.hi+sz <= int64(a.opt.StackLo) || target.lo >= int64(a.opt.StackHi)) {
			return
		}
		st.clobberAllSlots()
	default:
		st.clobberAllSlots()
	}
}

// step applies one instruction's transfer to st in place. Order mirrors
// vm.execFast: operand values are read before any destination is written.
func (a *fnAnalysis) step(st *state, in isa.Instr) {
	if st.bot {
		return
	}
	op := in.Op
	switch {
	case op == isa.OpNOP, op == isa.OpHLT, op == isa.OpRET,
		op == isa.OpJMP, op == isa.OpJZ, op == isa.OpJNZ, op == isa.OpSYS:
		if op == isa.OpSYS {
			// ABI: args in R0..R4, result in R0; the kernel may clobber
			// the argument registers but never touches tracked slots (its
			// undo writes target watched addresses, which require an
			// escaped frame address to point into a frame). The syscall
			// number fixes which arguments are addresses the kernel can
			// later write through:
			//   - begin_atomic arms a watchpoint on [R1, R1+R2), so a
			//     frame address there escapes with exactly that extent;
			//   - spawn forwards R1 into the new thread's R8 — an
			//     unbounded foreign-write channel;
			//   - lock/unlock key an address-indexed kernel mutex map and
			//     never dereference R0; every other syscall's arguments
			//     are ids, counts, or plain values.
			switch in.Imm {
			case isa.SysBeginAtomic:
				a.noteEscapeExtent(st.regs[1], st.regs[2])
			case isa.SysSpawn:
				a.noteEscape(st.regs[1])
			case isa.SysExit, isa.SysEndAtomic, isa.SysClearAR,
				isa.SysLock, isa.SysUnlock, isa.SysYield, isa.SysSleep,
				isa.SysPrint, isa.SysRand, isa.SysRecv, isa.SysSend,
				isa.SysNanos:
				// No dereferenced pointer arguments.
			default:
				for r := uint8(0); r <= 4; r++ {
					a.noteEscape(st.regs[r])
				}
			}
			for r := uint8(0); r <= 7; r++ {
				st.setReg(r, top())
			}
		}
	case op == isa.OpMOVQ, op == isa.OpMOVL:
		st.setReg(in.Rd, cst(in.Imm))
	case op == isa.OpMOVR:
		v := st.regs[in.Ra]
		o, ok := st.origin[in.Ra], st.originOK[in.Ra]
		p := st.preds[in.Ra]
		st.regs[in.Rd] = v
		st.origin[in.Rd], st.originOK[in.Rd] = o, ok
		st.preds[in.Rd] = p
	case op == isa.OpADDI:
		st.setReg(in.Rd, vAdd(st.regs[in.Ra], cst(in.Imm)))
	case op >= isa.OpCEQ && op <= isa.OpCGE:
		p := &pred{
			op:   op,
			lVal: st.regs[in.Ra], rVal: st.regs[in.Rb],
			lKey: st.origin[in.Ra], lOK: st.originOK[in.Ra],
			rKey: st.origin[in.Rb], rOK: st.originOK[in.Rb],
		}
		v := cmpVal(op, p.lVal, p.rVal)
		st.setReg(in.Rd, v)
		st.preds[in.Rd] = p
	case op >= isa.OpADD && op <= isa.OpSHR:
		st.setReg(in.Rd, aluVal(op, st.regs[in.Ra], st.regs[in.Rb]))
	case op >= isa.OpLD && op < isa.OpLD+4:
		st.setReg(in.Rd, top()) // global loads: contents untracked
	case op >= isa.OpST && op < isa.OpST+4:
		a.noteEscape(st.regs[in.Ra])
		a.storeTo(st, cst(int64(in.Addr)), int64(in.Sz), top())
	case op >= isa.OpLDR && op < isa.OpLDR+4:
		addr := vAdd(st.regs[in.Ra], cst(in.Imm))
		if key, ok := addr.frameSingleton(); ok && in.Sz == 8 && a.slotsOK && !a.poisoned(key) {
			v := st.slotVal(key)
			st.regs[in.Rd] = v
			st.origin[in.Rd], st.originOK[in.Rd] = key, true
			st.preds[in.Rd] = nil
		} else {
			st.setReg(in.Rd, top())
		}
	case op >= isa.OpSTR && op < isa.OpSTR+4:
		a.noteEscape(st.regs[in.Rb])
		addr := vAdd(st.regs[in.Ra], cst(in.Imm))
		a.storeTo(st, addr, int64(in.Sz), st.regs[in.Rb])
	case op == isa.OpPUSH:
		a.noteEscape(st.regs[in.Ra])
		sp := st.regs[isa.RegSP]
		v := st.regs[in.Ra]
		nsp := vAdd(sp, cst(-8))
		a.storeTo(st, nsp, 8, v)
		st.setReg(isa.RegSP, nsp)
	case op >= isa.OpPUSHM && op < isa.OpPUSHM+4:
		sp := st.regs[isa.RegSP]
		nsp := vAdd(sp, cst(-8))
		a.storeTo(st, nsp, 8, top())
		st.setReg(isa.RegSP, nsp)
	case op == isa.OpPOP:
		sp := st.regs[isa.RegSP]
		if key, ok := sp.frameSingleton(); ok && a.slotsOK && !a.poisoned(key) {
			v := st.slotVal(key)
			st.regs[in.Rd] = v
			st.origin[in.Rd], st.originOK[in.Rd] = key, true
			st.preds[in.Rd] = nil
		} else {
			st.setReg(in.Rd, top())
		}
		// Matches execFast's write order: POP SP ends at sp+8.
		st.setReg(isa.RegSP, vAdd(sp, cst(8)))
	case op == isa.OpCALL, op == isa.OpCALLM:
		// Arguments travel through R8+; a frame address there escapes to
		// the callee (the PUSH staging already flags it, this is the belt).
		for r := uint8(8); r <= 13; r++ {
			a.noteEscape(st.regs[r])
		}
		sp := st.regs[isa.RegSP]
		// Across call + matching RET: SP nets to its pre-call value, FP is
		// preserved by the prologue/epilogue convention, scratch registers
		// are clobbered. Absent a frame escape the callee holds no pointer
		// into this frame, so only cells below the caller's SP (callee
		// territory, including the pushed return PC) are invalidated.
		if key, ok := sp.frameSingleton(); ok {
			st.clobberSlotsBelow(key)
		} else {
			st.clobberAllSlots()
		}
		for r := uint8(0); r <= 13; r++ {
			st.setReg(r, top())
		}
	}
}

// refineBranch returns st refined along one side of a conditional jump on
// register r: the side where r == 0 (zero) or r != 0. Value-based pruning
// kills statically impossible edges; predicate provenance tightens the
// compared slots.
func refineBranch(st *state, r uint8, zero bool) *state {
	v := st.regs[r]
	if zero {
		if v.k == kAbs && (v.lo > 0 || v.hi < 0) {
			return botState()
		}
	} else {
		if v.k == kAbs && v.lo == 0 && v.hi == 0 {
			return botState()
		}
	}
	ns := st.clone()
	if v.k == kAbs {
		if zero {
			ns.regs[r] = cst(0)
		} else if v.lo == 0 {
			// Only the zero endpoint can be excluded from an interval.
			ns.regs[r] = mk(kAbs, 1, v.hi)
		}
	}
	p := st.preds[r]
	if p == nil {
		return ns
	}
	nl, nr, feasible := applyRel(p.op, !zero, p.lVal, p.rVal)
	if !feasible {
		return botState()
	}
	ns.refineOperand(p.lKey, p.lOK, nl)
	ns.refineOperand(p.rKey, p.rOK, nr)
	return ns
}

// refineOperand writes a tightened operand value back to its source slot
// and to every register still holding that slot's value.
func (st *state) refineOperand(key int64, ok bool, v Val) {
	if !ok {
		return
	}
	st.setSlot(key, v)
	for i := range st.regs {
		if st.originOK[i] && st.origin[i] == key {
			st.regs[i] = v
		}
	}
}

// applyRel refines both operands of a comparison known to have outcome
// truth. Operands are only comparable when they share a base kind.
func applyRel(op isa.Op, truth bool, l, r Val) (nl, nr Val, feasible bool) {
	nl, nr = l, r
	if !(l.k == r.k && (l.k == kAbs || l.k == kFrame)) {
		return nl, nr, true
	}
	// Canonicalize to one of {eq, lt, le, gt, ge} or no information.
	type rel uint8
	const (
		rNone rel = iota
		rEQ
		rLT
		rLE
		rGT
		rGE
	)
	var rl rel
	switch op {
	case isa.OpCEQ:
		if truth {
			rl = rEQ
		}
	case isa.OpCNE:
		if !truth {
			rl = rEQ
		}
	case isa.OpCLT:
		rl = rLT
		if !truth {
			rl = rGE
		}
	case isa.OpCLE:
		rl = rLE
		if !truth {
			rl = rGT
		}
	case isa.OpCGT:
		rl = rGT
		if !truth {
			rl = rLE
		}
	case isa.OpCGE:
		rl = rGE
		if !truth {
			rl = rLT
		}
	}
	clampHi := func(v Val, bound int64) (Val, bool) {
		if v.lo > bound {
			return v, false
		}
		return mk(v.k, v.lo, minI(v.hi, bound)), true
	}
	clampLo := func(v Val, bound int64) (Val, bool) {
		if v.hi < bound {
			return v, false
		}
		return mk(v.k, maxI(v.lo, bound), v.hi), true
	}
	var ok1, ok2 bool
	switch rl {
	case rEQ:
		lo, hi := maxI(l.lo, r.lo), minI(l.hi, r.hi)
		if lo > hi {
			return nl, nr, false
		}
		return mk(l.k, lo, hi), mk(l.k, lo, hi), true
	case rLT:
		if r.hi == math.MinInt64 || l.lo == math.MaxInt64 {
			return nl, nr, false
		}
		nl, ok1 = clampHi(l, r.hi-1)
		nr, ok2 = clampLo(r, l.lo+1)
	case rLE:
		nl, ok1 = clampHi(l, r.hi)
		nr, ok2 = clampLo(r, l.lo)
	case rGT:
		if l.hi == math.MinInt64 || r.lo == math.MaxInt64 {
			return nl, nr, false
		}
		nl, ok1 = clampLo(l, r.lo+1)
		nr, ok2 = clampHi(r, l.hi-1)
	case rGE:
		nl, ok1 = clampLo(l, r.lo)
		nr, ok2 = clampHi(r, l.hi)
	default:
		return nl, nr, true
	}
	return nl, nr, ok1 && ok2
}
