// Package valrange is the interval (value-range) abstract interpretation
// over compiled binaries that lets compile.Footprints bound indirect
// accesses. For every program point of every compiled function it tracks,
// per register and per frame slot, a closed interval of possible values —
// either absolute (constants, globals-relative address arithmetic, loop
// induction variables, masked/modulo ring indices) or frame-relative
// (offsets from the function's entry stack pointer). The fixpoint runs over
// cfg.BuildBinary graphs with dataflow.SolveEdges, widening at back-edge
// targets and refining intervals along the two sides of conditional jumps
// through comparison-predicate provenance.
//
// Soundness contract: an interval claims to contain the exact int64 value a
// register or slot holds, at every execution reaching that program point,
// for the wrapping semantics the VM implements (vm.alu). Two rules keep the
// claim honest:
//
//   - Wrap-to-Top: ADD/SUB/MUL/SHL results escape to Top whenever any
//     operand-corner computation could overflow int64, because the VM wraps
//     where mathematical intervals do not. Branch refinement runs before
//     body arithmetic, so loop-widened induction variables come back to
//     finite ranges where it matters.
//   - Frame escape: slot tracking assumes a function's frame is written
//     only through its own tracked stores. The moment any analyzed function
//     lets a frame address escape — stores a frame-derived value to memory,
//     passes one to a syscall, returns one, or has one in an argument
//     register at a call — slot tracking is disabled for the whole image
//     and the pass degrades to register-only precision.
//
// Beyond that the pass inherits the standard memory-safety assumption of
// compiler-side analyses (see DESIGN.md): stores stay within the objects
// the program indexes, so one thread's array write cannot scribble over
// another thread's live frame. The differential oracle and soak gates
// enforce the end-to-end consequence (identical behavior across dispatch
// modes) on every corpus program.
package valrange

import (
	"math"

	"kivati/internal/isa"
)

type kind uint8

const (
	kBot   kind = iota // unreachable: no value
	kAbs               // value ∈ [lo, hi]
	kFrame             // value = frame base + o with o ∈ [lo, hi]; frame base = entry SP
	kTop               // any int64
)

// Val is an abstract value: a closed int64 interval, absolute or relative
// to the function's frame base. Top and Bot carry no interval.
type Val struct {
	k      kind
	lo, hi int64
}

func top() Val        { return Val{k: kTop} }
func bottom() Val     { return Val{k: kBot} }
func cst(v int64) Val { return Val{k: kAbs, lo: v, hi: v} }

func mk(k kind, lo, hi int64) Val {
	if lo == math.MinInt64 && hi == math.MaxInt64 {
		return top()
	}
	return Val{k: k, lo: lo, hi: hi}
}

func (v Val) frameSingleton() (int64, bool) {
	if v.k == kFrame && v.lo == v.hi {
		return v.lo, true
	}
	return 0, false
}

func (v Val) absSingleton() (int64, bool) {
	if v.k == kAbs && v.lo == v.hi {
		return v.lo, true
	}
	return 0, false
}

// isFrameBased reports whether the value may be an address into the
// function's own frame — the escape trigger.
func (v Val) isFrameBased() bool { return v.k == kFrame }

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func joinVal(a, b Val) Val {
	if a.k == kBot {
		return b
	}
	if b.k == kBot {
		return a
	}
	if a.k == kTop || b.k == kTop || a.k != b.k {
		return top()
	}
	return mk(a.k, minI(a.lo, b.lo), maxI(a.hi, b.hi))
}

// widenVal extrapolates old toward new: an endpoint that moved jumps to
// infinity, so strictly growing chains stabilize in one step.
func widenVal(old, new Val) Val {
	if old.k == kBot {
		return new
	}
	if new.k == kBot {
		return old
	}
	if old.k == kTop || new.k == kTop || old.k != new.k {
		return top()
	}
	lo, hi := old.lo, old.hi
	if new.lo < lo {
		lo = math.MinInt64
	}
	if new.hi > hi {
		hi = math.MaxInt64
	}
	return mk(old.k, lo, hi)
}

// Overflow-checked scalar ops: ok is false when the mathematical result
// does not fit int64 (the VM would wrap).

func addOv(a, b int64) (int64, bool) {
	s := a + b
	if (a < 0) == (b < 0) && (s < 0) != (a < 0) {
		return 0, false
	}
	return s, true
}

func subOv(a, b int64) (int64, bool) {
	d := a - b
	if (a < 0) != (b < 0) && (d < 0) != (a < 0) {
		return 0, false
	}
	return d, true
}

func mulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// vAdd computes a + b under the base algebra: abs+abs stays abs,
// frame±abs stays frame, frame+frame is untrackable. Any endpoint overflow
// escapes to Top (wrap-to-Top rule).
func vAdd(a, b Val) Val {
	if a.k == kBot || b.k == kBot {
		return bottom()
	}
	if a.k == kTop || b.k == kTop {
		return top()
	}
	var k kind
	switch {
	case a.k == kAbs && b.k == kAbs:
		k = kAbs
	case a.k == kFrame && b.k == kAbs, a.k == kAbs && b.k == kFrame:
		k = kFrame
	default:
		return top()
	}
	lo, ok1 := addOv(a.lo, b.lo)
	hi, ok2 := addOv(a.hi, b.hi)
	if !ok1 || !ok2 {
		return top()
	}
	return mk(k, lo, hi)
}

// vSub: abs−abs and frame−abs keep their base; frame−frame cancels the
// base and yields the absolute offset difference.
func vSub(a, b Val) Val {
	if a.k == kBot || b.k == kBot {
		return bottom()
	}
	if a.k == kTop || b.k == kTop {
		return top()
	}
	var k kind
	switch {
	case a.k == kAbs && b.k == kAbs, a.k == kFrame && b.k == kFrame:
		k = kAbs
	case a.k == kFrame && b.k == kAbs:
		k = kFrame
	default:
		return top()
	}
	lo, ok1 := subOv(a.lo, b.hi)
	hi, ok2 := subOv(a.hi, b.lo)
	if !ok1 || !ok2 {
		return top()
	}
	return mk(k, lo, hi)
}

func vMul(a, b Val) Val {
	if a.k == kBot || b.k == kBot {
		return bottom()
	}
	if a.k != kAbs || b.k != kAbs {
		return top()
	}
	var lo, hi int64 = math.MaxInt64, math.MinInt64
	for _, x := range [2]int64{a.lo, a.hi} {
		for _, y := range [2]int64{b.lo, b.hi} {
			p, ok := mulOv(x, y)
			if !ok {
				return top()
			}
			lo, hi = minI(lo, p), maxI(hi, p)
		}
	}
	return mk(kAbs, lo, hi)
}

// vDiv models the VM's truncating division for provably positive divisors
// (monotone in the dividend); everything else — including a divisor range
// containing zero, where the VM faults — escapes to Top, which is a sound
// superset of the non-faulting executions.
func vDiv(a, b Val) Val {
	if a.k == kBot || b.k == kBot {
		return bottom()
	}
	c, ok := b.absSingleton()
	if a.k != kAbs || !ok || c < 1 {
		return top()
	}
	return mk(kAbs, a.lo/c, a.hi/c)
}

// vMod bounds a % b for divisors provably ≥ 1: the result has the sign of
// the dividend and magnitude below both |a| and b. An unknown dividend
// still yields ±(b−1) — the rule that bounds `x % ringsize` indices even
// when x itself is untracked.
func vMod(a, b Val) Val {
	if a.k == kBot || b.k == kBot {
		return bottom()
	}
	if b.k != kAbs || b.lo < 1 {
		return top()
	}
	if a.k == kTop {
		return mk(kAbs, -(b.hi - 1), b.hi-1)
	}
	if a.k != kAbs {
		return top()
	}
	m := b.hi - 1 // b.hi ≥ b.lo ≥ 1
	lo := int64(0)
	if a.lo < 0 {
		lo = maxI(-m, a.lo)
	}
	hi := int64(0)
	if a.hi > 0 {
		hi = minI(m, a.hi)
	}
	return mk(kAbs, lo, hi)
}

// vAnd: masking with a provably non-negative operand bounds the result to
// [0, that operand] (the classic mask rule for power-of-two ring indices).
func vAnd(a, b Val) Val {
	if a.k == kBot || b.k == kBot {
		return bottom()
	}
	aFin := a.k == kAbs && a.lo >= 0
	bFin := b.k == kAbs && b.lo >= 0
	switch {
	case aFin && bFin:
		return mk(kAbs, 0, minI(a.hi, b.hi))
	case aFin:
		return mk(kAbs, 0, a.hi)
	case bFin:
		return mk(kAbs, 0, b.hi)
	}
	return top()
}

// vShl: a << k is a * 2^k for a singleton in-range count (the VM masks the
// count with 63; k = 63 cannot be expressed as an int64 multiplier).
func vShl(a, b Val) Val {
	if a.k == kBot || b.k == kBot {
		return bottom()
	}
	k, ok := b.absSingleton()
	if a.k != kAbs || !ok || k < 0 || k > 62 {
		return top()
	}
	return vMul(a, cst(int64(1)<<uint(k)))
}

// vShr: the VM shifts logically; on non-negative values that coincides with
// the monotone arithmetic shift.
func vShr(a, b Val) Val {
	if a.k == kBot || b.k == kBot {
		return bottom()
	}
	k, ok := b.absSingleton()
	if a.k != kAbs || !ok || k < 0 || k > 63 || a.lo < 0 {
		return top()
	}
	return mk(kAbs, a.lo>>uint(k), a.hi>>uint(k))
}

// cmpVal folds a comparison when the operand intervals decide it (same
// base, so values are comparable), else returns the boolean range [0, 1].
func cmpVal(op isa.Op, a, b Val) Val {
	if a.k == kBot || b.k == kBot {
		return bottom()
	}
	if (a.k == kAbs || a.k == kFrame) && a.k == b.k {
		lt := a.hi < b.lo  // always a < b
		ge := a.lo >= b.hi // never a < b
		le := a.hi <= b.lo
		gt := a.lo > b.hi
		eq := a.lo == a.hi && b.lo == b.hi && a.lo == b.lo
		ne := a.hi < b.lo || b.hi < a.lo
		fold := func(yes, no bool) Val {
			switch {
			case yes:
				return cst(1)
			case no:
				return cst(0)
			}
			return mk(kAbs, 0, 1)
		}
		switch op {
		case isa.OpCEQ:
			return fold(eq, ne)
		case isa.OpCNE:
			return fold(ne, eq)
		case isa.OpCLT:
			return fold(lt, ge)
		case isa.OpCLE:
			return fold(le, gt)
		case isa.OpCGT:
			return fold(gt, le)
		case isa.OpCGE:
			return fold(ge, lt)
		}
	}
	return mk(kAbs, 0, 1)
}

func aluVal(op isa.Op, a, b Val) Val {
	switch op {
	case isa.OpADD:
		return vAdd(a, b)
	case isa.OpSUB:
		return vSub(a, b)
	case isa.OpMUL:
		return vMul(a, b)
	case isa.OpDIV:
		return vDiv(a, b)
	case isa.OpMOD:
		return vMod(a, b)
	case isa.OpAND:
		return vAnd(a, b)
	case isa.OpSHL:
		return vShl(a, b)
	case isa.OpSHR:
		return vShr(a, b)
	case isa.OpCEQ, isa.OpCNE, isa.OpCLT, isa.OpCLE, isa.OpCGT, isa.OpCGE:
		return cmpVal(op, a, b)
	}
	if a.k == kBot || b.k == kBot {
		return bottom()
	}
	return top() // OR, XOR: untracked
}
