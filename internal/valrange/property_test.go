package valrange

import (
	"math/rand"
	"testing"

	"kivati/internal/isa"
)

// The quick-check soundness property: on randomized straight-line programs,
// every address interval the analysis proves for an indirect access must
// contain the concrete byte range a mini-interpreter observes at that pc —
// for any initial register file, any initial memory contents, and
// adversarial kernel behavior at syscalls (argument-register clobber plus
// undo writes into a begin_atomic's watched extent).

const (
	propStackLo = 0x40000
	propStackHi = 0x340000
	propEntrySP = 0x48000
)

// miniMachine interprets the subset of the ISA the generator emits, with
// byte-granular memory whose uninitialized cells read as seeded garbage.
type miniMachine struct {
	regs [isa.NumRegs]int64
	mem  map[int64]byte
	r    *rand.Rand
}

func newMini(r *rand.Rand) *miniMachine {
	m := &miniMachine{mem: map[int64]byte{}, r: r}
	for i := range m.regs {
		m.regs[i] = r.Int63() - r.Int63()
	}
	m.regs[isa.RegSP] = propEntrySP
	return m
}

func (m *miniMachine) byteAt(a int64) byte {
	b, ok := m.mem[a]
	if !ok {
		b = byte(m.r.Intn(256))
		m.mem[a] = b
	}
	return b
}

func (m *miniMachine) load(a int64, sz uint8) int64 {
	var v uint64
	for i := uint8(0); i < sz; i++ {
		v |= uint64(m.byteAt(a+int64(i))) << (8 * i)
	}
	return int64(v)
}

func (m *miniMachine) store(a int64, sz uint8, v int64) {
	for i := uint8(0); i < sz; i++ {
		m.mem[a+int64(i)] = byte(uint64(v) >> (8 * i))
	}
}

// alu mirrors vm.exec's ALU semantics; ok is false on a divide fault.
func alu(op isa.Op, a, b int64) (int64, bool) {
	switch op {
	case isa.OpADD:
		return a + b, true
	case isa.OpSUB:
		return a - b, true
	case isa.OpMUL:
		return a * b, true
	case isa.OpDIV:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case isa.OpMOD:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case isa.OpAND:
		return a & b, true
	case isa.OpOR:
		return a | b, true
	case isa.OpXOR:
		return a ^ b, true
	case isa.OpSHL:
		return a << (uint64(b) & 63), true
	case isa.OpSHR:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	}
	var c bool
	switch op {
	case isa.OpCEQ:
		c = a == b
	case isa.OpCNE:
		c = a != b
	case isa.OpCLT:
		c = a < b
	case isa.OpCLE:
		c = a <= b
	case isa.OpCGT:
		c = a > b
	case isa.OpCGE:
		c = a >= b
	}
	if c {
		return 1, true
	}
	return 0, true
}

// step executes one instruction; done reports HLT or a fault (the VM stops
// there, so the interpreter does too).
func (m *miniMachine) step(in isa.Instr) (done bool) {
	op := in.Op
	switch {
	case op == isa.OpNOP:
	case op == isa.OpHLT:
		return true
	case op == isa.OpMOVQ, op == isa.OpMOVL:
		m.regs[in.Rd] = in.Imm
	case op == isa.OpMOVR:
		m.regs[in.Rd] = m.regs[in.Ra]
	case op == isa.OpADDI:
		m.regs[in.Rd] = m.regs[in.Ra] + in.Imm
	case op >= isa.OpADD && op <= isa.OpCGE:
		v, ok := alu(op, m.regs[in.Ra], m.regs[in.Rb])
		if !ok {
			return true
		}
		m.regs[in.Rd] = v
	case op >= isa.OpLD && op < isa.OpLD+4:
		m.regs[in.Rd] = m.load(int64(in.Addr), in.Sz)
	case op >= isa.OpST && op < isa.OpST+4:
		m.store(int64(in.Addr), in.Sz, m.regs[in.Ra])
	case op >= isa.OpLDR && op < isa.OpLDR+4:
		m.regs[in.Rd] = m.load(m.regs[in.Ra]+in.Imm, in.Sz)
	case op >= isa.OpSTR && op < isa.OpSTR+4:
		m.store(m.regs[in.Ra]+in.Imm, in.Sz, m.regs[in.Rb])
	case op == isa.OpPUSH:
		m.regs[isa.RegSP] -= 8
		m.store(m.regs[isa.RegSP], 8, m.regs[in.Ra])
	case op == isa.OpPOP:
		m.regs[in.Rd] = m.load(m.regs[isa.RegSP], 8)
		m.regs[isa.RegSP] += 8
	case op == isa.OpSYS:
		// Adversarial kernel: begin_atomic's undo machinery may rewrite
		// the watched extent at any later point; writing garbage into it
		// immediately is one such behavior. Argument and result registers
		// come back clobbered.
		if in.Imm == isa.SysBeginAtomic {
			addr, size := m.regs[1], m.regs[2]
			if size >= 0 && size <= 64 {
				for i := int64(0); i < size; i++ {
					m.mem[addr+i] = byte(m.r.Intn(256))
				}
			}
		}
		for r := 0; r <= 7; r++ {
			m.regs[r] = m.r.Int63() - m.r.Int63()
		}
	}
	return false
}

// genProgram emits a random straight-line program exercising the tracked
// idioms: frame-slot stores/loads, frame-derived pointers in general
// registers, ALU chains with occasional overflow-scale constants, and
// syscalls (including begin_atomic watching a frame cell).
func genProgram(r *rand.Rand) []byte {
	e := isa.NewEncoder()
	e.MovReg(isa.RegFP, isa.RegSP)
	slot := func() int32 { return -8 * int32(1+r.Intn(8)) }
	sizes := []int{1, 2, 4, 8}
	n := 15 + r.Intn(25)
	for i := 0; i < n; i++ {
		rd := uint8(r.Intn(8))
		ra := uint8(r.Intn(8))
		rb := uint8(r.Intn(8))
		switch r.Intn(14) {
		case 0:
			c := int64(r.Intn(4096) - 1024)
			if r.Intn(8) == 0 {
				c = r.Int63() - r.Int63() // overflow-scale
			}
			e.MovImm(rd, c)
		case 1:
			e.MovReg(rd, ra)
		case 2:
			ops := []isa.Op{isa.OpADD, isa.OpSUB, isa.OpMUL, isa.OpDIV, isa.OpMOD,
				isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpSHL, isa.OpSHR}
			e.ALU(ops[r.Intn(len(ops))], rd, ra, rb)
		case 3:
			cmps := []isa.Op{isa.OpCEQ, isa.OpCNE, isa.OpCLT, isa.OpCLE, isa.OpCGT, isa.OpCGE}
			e.ALU(cmps[r.Intn(len(cmps))], rd, ra, rb)
		case 4:
			e.AddImm(rd, ra, int32(r.Intn(256)-128))
		case 5:
			e.AddImm(rd, isa.RegFP, slot()) // frame pointer into a general reg
		case 6:
			e.StoreReg(isa.RegFP, slot(), ra, 8) // tracked slot write
		case 7:
			e.LoadReg(rd, isa.RegFP, slot(), 8) // tracked slot read
		case 8:
			e.LoadReg(rd, ra, int32(r.Intn(64)-32), sizes[r.Intn(4)]) // indirect
		case 9:
			e.StoreReg(ra, int32(r.Intn(64)-32), rb, sizes[r.Intn(4)]) // indirect
		case 10:
			e.Store(uint32(0x1000+8*r.Intn(16)), ra, 8) // global, outside the stack
		case 11:
			e.Load(rd, uint32(0x1000+8*r.Intn(16)), 8)
		case 12:
			if r.Intn(2) == 0 {
				e.Push(ra)
			} else {
				e.Pop(rd)
			}
		case 13:
			switch r.Intn(4) {
			case 0:
				e.Sys(isa.SysYield)
			case 1:
				e.Sys(isa.SysRand)
			case 2:
				// Arm a watchpoint on a frame cell: R1 = FP-k, R2 = 8.
				e.AddImm(1, isa.RegFP, slot())
				e.MovImm(2, 8)
				e.MovImm(0, 1)
				e.Sys(isa.SysBeginAtomic)
			case 3:
				e.Sys(isa.SysBeginAtomic) // garbage arguments
			}
		}
	}
	e.Hlt()
	code, err := e.Finish()
	if err != nil {
		panic(err)
	}
	return code
}

// contains reports whether the concrete byte range [a, a+sz) lies inside
// the proved footprint, evaluated against the pre-instruction SP/FP.
func contains(f isa.Footprint, a, sz, sp, fp int64) bool {
	if f.AbsHi > f.AbsLo && a >= int64(f.AbsLo) && a+sz <= int64(f.AbsHi) {
		return true
	}
	if f.SPHi > f.SPLo && a-sp >= f.SPLo && a-sp+sz <= f.SPHi {
		return true
	}
	if f.FPHi > f.FPLo && a-fp >= f.FPLo && a-fp+sz <= f.FPHi {
		return true
	}
	return false
}

func TestPropertyFootprintsContainObservedAddresses(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	opt := Options{StackLo: propStackLo, StackHi: propStackHi}
	checked := 0
	for prog := 0; prog < 500; prog++ {
		code := genProgram(r)
		an, err := Analyze(code, []uint32{0}, opt)
		if err != nil {
			t.Fatalf("program %d: Analyze: %v", prog, err)
		}
		decoded, _, err := isa.DecodeProgram(code)
		if err != nil {
			t.Fatalf("program %d: decode: %v", prog, err)
		}
		// Several concrete runs per program: the proof must hold for any
		// initial registers and memory garbage.
		for run := 0; run < 3; run++ {
			m := newMini(rand.New(rand.NewSource(int64(prog)*7919 + int64(run))))
			for pc := uint32(0); int(pc) < len(code); {
				in := decoded[pc]
				if isIndirectAccess(in) {
					if f, ok := an.AccessFootprint(pc); ok {
						checked++
						a := m.regs[in.Ra] + in.Imm
						if !contains(f, a, int64(in.Sz), m.regs[isa.RegSP], m.regs[isa.RegFP]) {
							t.Fatalf("program %d run %d: pc %d (%s): address [%#x,+%d) outside proved footprint %+v (SP=%#x FP=%#x)",
								prog, run, pc, in, a, in.Sz, f, m.regs[isa.RegSP], m.regs[isa.RegFP])
						}
					}
				}
				if m.step(in) {
					break
				}
				pc += uint32(in.Len)
			}
		}
	}
	// The property is only meaningful if the generator actually produces
	// provable indirect accesses that execution reaches.
	if checked < 100 {
		t.Fatalf("only %d proved indirect accesses checked across the corpus; generator regressed", checked)
	}
}

// A begin_atomic watching one frame cell must poison exactly the cells its
// extent overlaps: an index kept in a different slot stays tracked (the
// indirect access through it resolves), while an index kept in the watched
// slot does not.
func TestBeginAtomicPoisonIsExtentScoped(t *testing.T) {
	build := func(watchOff int32) (code []byte, ldPC uint32) {
		e := isa.NewEncoder()
		e.MovReg(isa.RegFP, isa.RegSP)
		e.MovImm(1, 5)
		e.StoreReg(isa.RegFP, -40, 1, 8) // index slot at FP-40
		e.AddImm(1, isa.RegFP, watchOff) // watched cell
		e.MovImm(2, 8)
		e.MovImm(0, 1)
		e.Sys(isa.SysBeginAtomic)
		e.LoadReg(1, isa.RegFP, -40, 8) // reload index
		e.MovImm(2, 8)
		e.ALU(isa.OpMUL, 1, 1, 2)
		e.MovImm(2, 4096)
		e.ALU(isa.OpADD, 1, 1, 2)
		ldPC = e.PC()
		e.LoadReg(3, 1, 0, 8)
		e.Hlt()
		code, err := e.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		return code, ldPC
	}
	opt := Options{StackLo: propStackLo, StackHi: propStackHi}

	code, ldPC := build(-48) // watch a neighboring cell
	an, err := Analyze(code, []uint32{0}, opt)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	f, ok := an.AccessFootprint(ldPC)
	if !ok {
		t.Fatalf("neighboring watch: indirect load at %d not resolved; poison over-reached", ldPC)
	}
	if f.AbsLo != 4096+5*8 || f.AbsHi != 4096+5*8+8 {
		t.Errorf("neighboring watch: footprint = %+v, want abs [4136, 4144)", f)
	}

	code, ldPC = build(-40) // watch the index's own slot
	an, err = Analyze(code, []uint32{0}, opt)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if _, ok := an.AccessFootprint(ldPC); ok {
		t.Fatalf("watched index slot: indirect load at %d resolved despite kernel-writable index", ldPC)
	}
}

// A frame address reaching spawn (the new thread's argument register) is an
// unbounded escape: all slot tracking must shut off.
func TestSpawnEscapeDisablesSlots(t *testing.T) {
	e := isa.NewEncoder()
	e.MovReg(isa.RegFP, isa.RegSP)
	e.MovImm(1, 5)
	e.StoreReg(isa.RegFP, -40, 1, 8)
	e.AddImm(1, isa.RegFP, -48)
	e.MovImm(0, 0)
	e.Sys(isa.SysSpawn) // R1 = &frame cell escapes to the new thread
	e.LoadReg(1, isa.RegFP, -40, 8)
	e.MovImm(2, 8)
	e.ALU(isa.OpMUL, 1, 1, 2)
	e.MovImm(2, 4096)
	e.ALU(isa.OpADD, 1, 1, 2)
	ldPC := e.PC()
	e.LoadReg(3, 1, 0, 8)
	e.Hlt()
	code, err := e.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	an, err := Analyze(code, []uint32{0}, Options{StackLo: propStackLo, StackHi: propStackHi})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if _, ok := an.AccessFootprint(ldPC); ok {
		t.Fatal("indirect load resolved despite the frame address escaping through spawn")
	}
}
