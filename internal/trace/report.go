package trace

import (
	"fmt"
	"sort"
	"strings"
)

// ARSummary aggregates the violations of one atomic region — the unit the
// paper counts false positives in, and the unit a developer triages: the
// same begin/end site violated by the same remote instruction is one
// finding, however many times it fired.
type ARSummary struct {
	ARID      int
	Func      string
	Var       string
	Count     int
	Prevented int // violations whose interleaving access was reordered
	First     uint64
	Last      uint64
	// RemoteSites are the distinct (thread-independent) remote PCs seen,
	// with occurrence counts.
	RemoteSites map[uint32]int
	// Threads are the distinct local/remote thread IDs involved.
	Threads map[int]bool
	Sample  Violation
}

// Summarize groups violations by AR, ordered by descending count then AR ID.
func Summarize(vs []Violation) []*ARSummary {
	byAR := map[int]*ARSummary{}
	for _, v := range vs {
		s := byAR[v.ARID]
		if s == nil {
			s = &ARSummary{
				ARID: v.ARID, Func: v.Func, Var: v.Var,
				First: v.Tick, RemoteSites: map[uint32]int{},
				Threads: map[int]bool{}, Sample: v,
			}
			byAR[v.ARID] = s
		}
		s.Count++
		if v.Prevented {
			s.Prevented++
		}
		if v.Tick < s.First {
			s.First = v.Tick
		}
		if v.Tick > s.Last {
			s.Last = v.Tick
		}
		s.RemoteSites[v.RemotePC]++
		s.Threads[v.LocalThread] = true
		s.Threads[v.RemoteThread] = true
	}
	out := make([]*ARSummary, 0, len(byAR))
	for _, s := range byAR {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ARID < out[j].ARID
	})
	return out
}

// FormatReport renders a developer-facing violation report: one block per
// violated AR with the information §2.2 says Kivati records — thread IDs,
// the shared variable's identity and address, and the program counters of
// the accesses involved.
func FormatReport(vs []Violation) string {
	if len(vs) == 0 {
		return "no atomicity violations detected\n"
	}
	var b strings.Builder
	sums := Summarize(vs)
	fmt.Fprintf(&b, "%d violation(s) across %d atomic region(s)\n\n", len(vs), len(sums))
	for _, s := range sums {
		name := s.Var
		if s.Func != "" {
			name = s.Func + "." + s.Var
		}
		fmt.Fprintf(&b, "AR%-4d %-24s %4d violation(s), %d prevented\n",
			s.ARID, name, s.Count, s.Prevented)
		fmt.Fprintf(&b, "       local %v..%v at pc %#x..%#x, variable @%#x\n",
			s.Sample.First, s.Sample.Second, s.Sample.BeginPC, s.Sample.EndPC, s.Sample.Addr)
		var threads []int
		for t := range s.Threads {
			threads = append(threads, t)
		}
		sort.Ints(threads)
		fmt.Fprintf(&b, "       threads %v, first tick %d, last tick %d\n", threads, s.First, s.Last)
		var pcs []uint32
		for pc := range s.RemoteSites {
			pcs = append(pcs, pc)
		}
		sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
		for _, pc := range pcs {
			line := ""
			if s.Sample.SrcLine > 0 && pc == s.Sample.RemotePC {
				line = fmt.Sprintf(" (line %d)", s.Sample.SrcLine)
			}
			fmt.Fprintf(&b, "       remote access at pc %#x%s x%d\n", pc, line, s.RemoteSites[pc])
		}
		b.WriteString("\n")
	}
	return b.String()
}
