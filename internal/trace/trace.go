// Package trace defines the violation records Kivati produces. When a
// non-serializable interleaving is detected, Kivati records the thread IDs
// and locations of the accesses it made atomic, plus the thread ID and
// location of the violating access (§1, §2.2) — enough for a developer to
// decide whether the violation is a bug.
package trace

import (
	"fmt"
	"sort"

	"kivati/internal/hw"
)

// Violation is one detected atomicity violation.
type Violation struct {
	ARID        int
	Func        string // function containing the atomic region
	Var         string // shared variable name
	Addr        uint32 // address of the shared variable
	LocalThread int
	BeginPC     uint32 // PC of the begin_atomic site
	EndPC       uint32 // PC of the end_atomic site
	First       hw.AccessType
	Second      hw.AccessType

	RemoteThread int
	RemotePC     uint32
	RemoteType   hw.AccessType

	Tick      uint64 // virtual time of detection
	Prevented bool   // false when the remote thread was released by timeout
	SrcLine   int    // source line of the remote access, 0 if unknown
}

func (v Violation) String() string {
	p := "prevented"
	if !v.Prevented {
		p = "NOT prevented"
	}
	return fmt.Sprintf("violation AR%d %s.%s@%#x: local T%d %v..%v (pc %#x..%#x) interleaved by remote T%d %v at pc %#x (%s, tick %d)",
		v.ARID, v.Func, v.Var, v.Addr, v.LocalThread, v.First, v.Second,
		v.BeginPC, v.EndPC, v.RemoteThread, v.RemoteType, v.RemotePC, p, v.Tick)
}

// Log accumulates violations and derived statistics.
type Log struct {
	Violations []Violation
	// OnViolation, if set, is invoked for each violation as it is logged.
	// Returning true asks the machine to stop the run (used by the bug
	// detection experiments to record time-to-detection).
	OnViolation func(Violation) bool
	stop        bool
}

// Add records a violation, returning true if the run should stop.
func (l *Log) Add(v Violation) bool {
	l.Violations = append(l.Violations, v)
	if l.OnViolation != nil && l.OnViolation(v) {
		l.stop = true
	}
	return l.stop
}

// StopRequested reports whether a violation callback asked to stop.
func (l *Log) StopRequested() bool { return l.stop }

// LogState is a point-in-time copy of a Log, used by machine snapshots.
type LogState struct {
	Violations []Violation
	Stop       bool
}

// SaveState deep-copies the log's current contents.
func (l *Log) SaveState() LogState {
	return LogState{Violations: append([]Violation(nil), l.Violations...), Stop: l.stop}
}

// RestoreState rewinds the log to a previously saved state. The callback is
// not re-invoked for restored entries.
func (l *Log) RestoreState(s LogState) {
	l.Violations = append(l.Violations[:0], s.Violations...)
	l.stop = s.Stop
}

// UniqueARs returns the distinct AR IDs with at least one violation, sorted.
// The paper counts false positives as unique violated atomic regions (§4.2).
func (l *Log) UniqueARs() []int {
	set := map[int]bool{}
	for _, v := range l.Violations {
		set[v.ARID] = true
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
