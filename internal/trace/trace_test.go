package trace

import (
	"strings"
	"testing"

	"kivati/internal/hw"
)

func TestViolationString(t *testing.T) {
	v := Violation{
		ARID: 3, Func: "f", Var: "s", Addr: 0x1000,
		LocalThread: 0, First: hw.Read, Second: hw.Write,
		RemoteThread: 1, RemotePC: 0x20, RemoteType: hw.Write,
		Tick: 99, Prevented: true,
	}
	s := v.String()
	for _, want := range []string{"AR3", "f.s", "T0", "T1", "prevented", "tick 99"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
	v.Prevented = false
	if !strings.Contains(v.String(), "NOT prevented") {
		t.Error("unprevented violation not flagged")
	}
}

func TestLogUniqueARs(t *testing.T) {
	l := &Log{}
	l.Add(Violation{ARID: 5})
	l.Add(Violation{ARID: 2})
	l.Add(Violation{ARID: 5})
	got := l.UniqueARs()
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Errorf("UniqueARs = %v", got)
	}
	if len(l.Violations) != 3 {
		t.Errorf("Violations = %d", len(l.Violations))
	}
}

func TestLogStopCallback(t *testing.T) {
	l := &Log{}
	n := 0
	l.OnViolation = func(v Violation) bool {
		n++
		return v.ARID == 2
	}
	if l.Add(Violation{ARID: 1}) {
		t.Error("stop requested too early")
	}
	if !l.Add(Violation{ARID: 2}) {
		t.Error("stop not requested")
	}
	if !l.StopRequested() {
		t.Error("StopRequested false")
	}
	// Once stopped, stays stopped.
	if !l.Add(Violation{ARID: 3}) {
		t.Error("stop flag lost")
	}
	if n != 3 {
		t.Errorf("callback invoked %d times, want 3", n)
	}
}

func TestSummarize(t *testing.T) {
	vs := []Violation{
		{ARID: 2, Func: "f", Var: "x", LocalThread: 0, RemoteThread: 1, RemotePC: 0x10, Tick: 5, Prevented: true},
		{ARID: 2, Func: "f", Var: "x", LocalThread: 1, RemoteThread: 0, RemotePC: 0x10, Tick: 9},
		{ARID: 2, Func: "f", Var: "x", LocalThread: 0, RemoteThread: 2, RemotePC: 0x20, Tick: 3, Prevented: true},
		{ARID: 7, Func: "g", Var: "y", LocalThread: 0, RemoteThread: 1, RemotePC: 0x30, Tick: 4},
	}
	sums := Summarize(vs)
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	s := sums[0]
	if s.ARID != 2 || s.Count != 3 || s.Prevented != 2 {
		t.Errorf("AR2 summary wrong: %+v", s)
	}
	if s.First != 3 || s.Last != 9 {
		t.Errorf("tick range = %d..%d", s.First, s.Last)
	}
	if len(s.Threads) != 3 || len(s.RemoteSites) != 2 {
		t.Errorf("threads=%d sites=%d", len(s.Threads), len(s.RemoteSites))
	}
	if s.RemoteSites[0x10] != 2 {
		t.Errorf("site 0x10 count = %d", s.RemoteSites[0x10])
	}
	if sums[1].ARID != 7 {
		t.Errorf("order wrong: %+v", sums[1])
	}
}

func TestFormatReport(t *testing.T) {
	if got := FormatReport(nil); !strings.Contains(got, "no atomicity violations") {
		t.Errorf("empty report = %q", got)
	}
	vs := []Violation{
		{ARID: 3, Func: "f", Var: "s", Addr: 0x1000, LocalThread: 0, RemoteThread: 1,
			RemotePC: 0x40, Tick: 7, Prevented: true, First: 1, Second: 2, SrcLine: 12},
	}
	out := FormatReport(vs)
	for _, want := range []string{"AR3", "f.s", "1 prevented", "0x40", "line 12", "threads [0 1]"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
