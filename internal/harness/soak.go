package harness

import (
	"fmt"
	"strings"
	"time"

	"kivati/internal/corpusgen"
	"kivati/internal/explore"
	"kivati/internal/pool"
)

// The soak harness: the differential oracle as a statistical gate. A soak
// run generates a labeled corpus (internal/corpusgen), sweeps every
// program through the snapshot-engine differential oracle in both modes,
// and scores the verdicts against the ground-truth labels:
//
//   - an injected bug is *detected* when at least one vanilla schedule
//     diverges from the serial reference (recall);
//   - a benign decoy that diverges in any vanilla schedule is a *false
//     positive* (precision);
//   - any prevention-mode divergence, on any program, is an engine bug.
//
// Everything is deterministic: the corpus regenerates from (GenSeed,
// index), each program's exploration seeds derive from (Seed, index), and
// per-program campaigns run serially inside while programs fan out across
// the pool — so a soak report is byte-identical (timings aside) at any
// Parallelism, and any failure is replayable from the report alone.

// SoakOptions configure one soak run.
type SoakOptions struct {
	Programs  int              // corpus size (default 50)
	Seed      int64            // generator + exploration base seed (default 1)
	Schedules int              // schedule budget per program per mode (default 60)
	Strategy  explore.Strategy // default random
	Engine    explore.Engine   // default snapshot
	// BenignEvery / Arrays / Iters pass through to corpusgen.Options.
	// Arrays enables both array decoy shapes: the runtime-sized ring
	// (Unbounded footprints) and the static-bound sweep (bounded
	// footprints), so one flag covers both ends of the footprint analysis.
	BenignEvery int
	Arrays      bool
	Iters       int
	Cores       int    // simulated cores per campaign (default 1)
	Quantum     uint64 // preemption quantum override (0 = strategy default)
	MaxTicks    uint64
	Watchpoints int
	Parallelism int // program-level worker pool (0 = GOMAXPROCS)
}

func (o SoakOptions) withDefaults() SoakOptions {
	if o.Programs == 0 {
		o.Programs = 50
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Schedules == 0 {
		o.Schedules = 60
	}
	if o.Strategy == "" {
		o.Strategy = explore.Random
	}
	if o.Engine == "" {
		o.Engine = explore.EngineSnapshot
	}
	return o
}

// genOptions is the corpusgen configuration a soak run derives from its
// own options; exposed so tests and replays regenerate the same corpus.
func (o SoakOptions) genOptions() corpusgen.Options {
	return corpusgen.Options{
		Count:         o.Programs,
		Seed:          o.Seed,
		BenignEvery:   o.BenignEvery,
		Arrays:        o.Arrays,
		BoundedArrays: o.Arrays,
		Iters:         o.Iters,
		Parallelism:   o.Parallelism,
	}
}

// exploreSeed derives program index's exploration base seed: a wide prime
// stride keeps the per-schedule seeds (base+k) of different programs from
// overlapping at any realistic schedule budget.
func (o SoakOptions) exploreSeed(index int) int64 {
	return o.Seed + int64(index+1)*1_000_003
}

// SoakProgram is one program's verdict row.
type SoakProgram struct {
	Name        string   `json:"name"`
	Index       int      `json:"index"`
	Category    string   `json:"category"`
	Expect      string   `json:"expect"`
	WitnessVars []string `json:"witness_vars,omitempty"`
	// VanillaDivergences / PreventionDivergences count divergent schedules
	// out of the per-mode budget.
	VanillaDivergences    int `json:"vanilla_divergences"`
	PreventionDivergences int `json:"prevention_divergences"`
	// Detected: an injected bug with >= 1 vanilla divergence.
	Detected bool `json:"detected,omitempty"`
	// FalsePositive: a benign decoy with >= 1 vanilla divergence.
	FalsePositive bool    `json:"false_positive,omitempty"`
	Seconds       float64 `json:"seconds,omitempty"`
}

// SoakCategory aggregates one category's rows.
type SoakCategory struct {
	Category              string  `json:"category"`
	Programs              int     `json:"programs"`
	Detected              int     `json:"detected"`
	Missed                int     `json:"missed"`
	FalsePositives        int     `json:"false_positives"`
	VanillaDivergences    int     `json:"vanilla_divergences"`
	PreventionDivergences int     `json:"prevention_divergences"`
	Precision             float64 `json:"precision"`
	Recall                float64 `json:"recall"`
}

// SoakReport is the kivati-soak/v1 output.
type SoakReport struct {
	Schema     string           `json:"schema"`
	GenSeed    int64            `json:"gen_seed"`
	Corpus     int              `json:"corpus_size"`
	Schedules  int              `json:"schedules"`
	Strategy   explore.Strategy `json:"strategy"`
	Engine     explore.Engine   `json:"engine"`
	Programs   []SoakProgram    `json:"programs"`
	Categories []SoakCategory   `json:"categories"`
	// Aggregates. Precision = detected/(detected+false positives), recall
	// = detected/bugs; both 1.0 over an empty denominator.
	Bugs                  int     `json:"bugs"`
	Benign                int     `json:"benign"`
	Detected              int     `json:"detected"`
	Missed                int     `json:"missed"`
	FalsePositives        int     `json:"false_positives"`
	PreventionDivergences int     `json:"prevention_divergences"`
	Precision             float64 `json:"precision"`
	Recall                float64 `json:"recall"`
	TotalSeconds          float64 `json:"total_seconds,omitempty"`
	SchedulesPerSec       float64 `json:"schedules_per_sec,omitempty"`
	// Load carries the open-loop latency report when the soak run includes
	// the heavy-traffic half (see RunLoad).
	Load *LoadReport `json:"load,omitempty"`
}

// ratio is precision/recall's forgiving division: 1.0 over an empty
// denominator (no claims made, none wrong).
func ratio(num, den int) float64 {
	if den == 0 {
		return 1.0
	}
	return float64(num) / float64(den)
}

// RunSoak generates the corpus and sweeps it through the differential
// oracle.
func RunSoak(opts SoakOptions) (*SoakReport, error) {
	o := opts.withDefaults()
	progs, err := corpusgen.Generate(o.genOptions())
	if err != nil {
		return nil, err
	}
	start := time.Now()
	jobs := make([]func() (SoakProgram, error), len(progs))
	for i, p := range progs {
		i, p := i, p
		jobs[i] = func() (SoakProgram, error) {
			t0 := time.Now()
			d, err := explore.Differential(explore.GenSubject(p, len(progs)), explore.Options{
				Strategy:    o.Strategy,
				Engine:      o.Engine,
				Schedules:   o.Schedules,
				Seed:        o.exploreSeed(p.Index),
				Quantum:     o.Quantum,
				Cores:       o.Cores,
				MaxTicks:    o.MaxTicks,
				Watchpoints: o.Watchpoints,
				// Campaigns are serial inside; programs are the unit of
				// fan-out, which keeps every campaign's session count at 1
				// and the report independent of Parallelism.
				Parallelism: 1,
			})
			if err != nil {
				return SoakProgram{}, fmt.Errorf("soak: %s: %w", p.Name, err)
			}
			row := SoakProgram{
				Name:                  p.Name,
				Index:                 p.Index,
				Category:              string(p.Category),
				Expect:                string(p.Expect),
				WitnessVars:           p.WitnessVars,
				VanillaDivergences:    d.VanillaDivergences(),
				PreventionDivergences: d.PreventionDivergences(),
				Seconds:               time.Since(t0).Seconds(),
			}
			if p.Expect == corpusgen.ExpectBug {
				row.Detected = row.VanillaDivergences > 0
			} else {
				row.FalsePositive = row.VanillaDivergences > 0
			}
			return row, nil
		}
	}
	rows, err := pool.Run(pool.Workers(o.Parallelism), jobs)
	if err != nil {
		return nil, err
	}

	rep := &SoakReport{
		Schema:    "kivati-soak/v1",
		GenSeed:   o.Seed,
		Corpus:    len(progs),
		Schedules: o.Schedules,
		Strategy:  o.Strategy,
		Engine:    o.Engine,
		Programs:  rows,
	}
	byCat := map[string]*SoakCategory{}
	for _, r := range rows {
		c, ok := byCat[r.Category]
		if !ok {
			c = &SoakCategory{Category: r.Category}
			byCat[r.Category] = c
		}
		c.Programs++
		c.VanillaDivergences += r.VanillaDivergences
		c.PreventionDivergences += r.PreventionDivergences
		rep.PreventionDivergences += r.PreventionDivergences
		if r.Expect == string(corpusgen.ExpectBug) {
			rep.Bugs++
			if r.Detected {
				c.Detected++
				rep.Detected++
			} else {
				c.Missed++
				rep.Missed++
			}
		} else {
			rep.Benign++
			if r.FalsePositive {
				c.FalsePositives++
				rep.FalsePositives++
			}
		}
	}
	for _, cat := range corpusgen.Categories() {
		c, ok := byCat[string(cat)]
		if !ok {
			continue
		}
		c.Precision = ratio(c.Detected, c.Detected+c.FalsePositives)
		c.Recall = ratio(c.Detected, c.Detected+c.Missed)
		rep.Categories = append(rep.Categories, *c)
	}
	rep.Precision = ratio(rep.Detected, rep.Detected+rep.FalsePositives)
	rep.Recall = ratio(rep.Detected, rep.Bugs)
	rep.TotalSeconds = time.Since(start).Seconds()
	if rep.TotalSeconds > 0 {
		rep.SchedulesPerSec = float64(2*len(progs)*o.Schedules) / rep.TotalSeconds
	}
	return rep, nil
}

// Gate enforces the soak thresholds: zero prevention-mode divergences
// (anything else is an engine bug) and zero benign false positives. With
// strict it additionally requires 100% recall — every injected bug found.
func (r *SoakReport) Gate(strict bool) error {
	if r.PreventionDivergences > 0 {
		return fmt.Errorf("soak gate: ENGINE BUG: %d prevention-mode schedules diverged from the serial result",
			r.PreventionDivergences)
	}
	if r.FalsePositives > 0 {
		return fmt.Errorf("soak gate: %d benign decoys flagged as divergent (false positives)",
			r.FalsePositives)
	}
	if strict && r.Missed > 0 {
		return fmt.Errorf("soak gate: %d/%d injected bugs never diverged under vanilla exploration",
			r.Missed, r.Bugs)
	}
	return nil
}

// String renders the per-category table plus the aggregate line.
func (r *SoakReport) String() string {
	var s strings.Builder
	fmt.Fprintf(&s, "soak: %d programs (seed %d), %d schedules/mode, %s/%s\n",
		r.Corpus, r.GenSeed, r.Schedules, r.Strategy, r.Engine)
	fmt.Fprintf(&s, "%-8s %9s %9s %7s %6s %10s %10s\n",
		"category", "programs", "detected", "missed", "fps", "precision", "recall")
	for _, c := range r.Categories {
		fmt.Fprintf(&s, "%-8s %9d %9d %7d %6d %10.3f %10.3f\n",
			c.Category, c.Programs, c.Detected, c.Missed, c.FalsePositives, c.Precision, c.Recall)
	}
	fmt.Fprintf(&s, "overall: %d bugs detected=%d missed=%d, %d benign fps=%d, precision=%.3f recall=%.3f, prevention divergences=%d\n",
		r.Bugs, r.Detected, r.Missed, r.Benign, r.FalsePositives, r.Precision, r.Recall, r.PreventionDivergences)
	if r.TotalSeconds > 0 {
		fmt.Fprintf(&s, "%.1fs, %.0f schedules/sec\n", r.TotalSeconds, r.SchedulesPerSec)
	}
	return s.String()
}
