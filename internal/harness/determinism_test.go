package harness

import (
	"testing"
)

// The pool must be invisible in the results: for a fixed seed, every table
// is byte-identical whether the runs execute serially, fan out across 8
// workers, or repeat within one process (warm build cache). Each run owns
// its machine and seeded RNG and results slot by job index, so the only
// way this fails is a shared-state race — which is exactly what it guards.

func table3Output(t *testing.T, o Options) string {
	t.Helper()
	res, err := RunTable3(o)
	if err != nil {
		t.Fatal(err)
	}
	return res.String()
}

func TestTable3DeterministicAcrossParallelism(t *testing.T) {
	o := Options{Scale: 0.1, Seed: 42}

	o.Parallelism = 1
	serial := table3Output(t, o)
	o.Parallelism = 8
	parallel := table3Output(t, o)
	if serial != parallel {
		t.Fatalf("serial and 8-way output differ:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
	// Repeated invocation in the same process (fully warm build cache).
	if again := table3Output(t, o); again != serial {
		t.Fatalf("repeated parallel run differs:\n--- first ---\n%s--- again ---\n%s", serial, again)
	}
}

func TestTable6DeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("three full bug-corpus sweeps; skipped in -short mode")
	}
	run := func(p int) string {
		rows, err := RunTable6(Options{Seed: 7, Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		return FormatTable6(rows)
	}
	serial := run(1)
	parallel := run(8)
	if serial != parallel {
		t.Fatalf("bug-corpus serial and 8-way output differ:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
	if again := run(8); again != serial {
		t.Fatalf("repeated parallel bug-corpus run differs")
	}
}
