package harness

import (
	"sync"
	"sync/atomic"

	"kivati/internal/annotate"
	"kivati/internal/core"
	"kivati/internal/workloads"
)

// The build cache memoizes workload compilation across the harness. A full
// sweep regenerates seven tables and a figure, and before the cache each
// runner re-parsed, re-analyzed and re-compiled the same five workload
// programs from scratch; now each (workload, scale, analysis options)
// combination builds exactly once per process, no matter how many tables
// replay it or how many pool workers ask for it at once.

// buildKey identifies one build product. The source text participates so
// that the same workload at different scales (the generators bake the
// scale into the program text) never collides, and the canonical annotator
// options string (annotate.Options.Key) participates so that builds with
// different lockset/optimizer settings never share an AR table — a stale
// hit across optimizer settings would silently mix AR IDs and whitelists.
type buildKey struct {
	name    string
	source  string
	options string
}

// buildEntry is a once-guarded cache slot: the first requester builds,
// concurrent requesters block on the Once and share the result.
type buildEntry struct {
	once sync.Once
	app  *appRun
	err  error
}

// BuildCache memoizes prepared workloads (program + sync-var whitelist).
// All methods are safe for concurrent use.
type BuildCache struct {
	mu     sync.Mutex
	m      map[buildKey]*buildEntry
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewBuildCache returns an empty cache.
func NewBuildCache() *BuildCache {
	return &BuildCache{m: map[buildKey]*buildEntry{}}
}

// sharedCache is the process-wide cache every harness runner uses.
var sharedCache = NewBuildCache()

// ResetBuildCache drops every memoized build (tests use this to measure
// cold-vs-warm behavior).
func ResetBuildCache() { sharedCache = NewBuildCache() }

// BuildCacheStats reports the shared cache's hit/miss counters.
func BuildCacheStats() (hits, misses uint64) {
	return sharedCache.hits.Load(), sharedCache.misses.Load()
}

// entry returns the once-guarded slot for key, creating it if needed.
func (c *BuildCache) entry(key buildKey) *buildEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		e = &buildEntry{}
		c.m[key] = e
	}
	return e
}

// prepare returns the memoized appRun for spec, building it on first use
// with the paper-prototype annotator options.
func (c *BuildCache) prepare(spec *workloads.Spec) (*appRun, error) {
	return c.prepareWithOptions(spec, annotate.Options{})
}

// prepareWithOptions is prepare for a specific annotator configuration;
// each (workload, source, options) combination builds exactly once.
func (c *BuildCache) prepareWithOptions(spec *workloads.Spec, opts annotate.Options) (*appRun, error) {
	e := c.entry(buildKey{name: spec.Name, source: spec.Source, options: opts.Key()})
	hit := true
	e.once.Do(func() {
		hit = false
		c.misses.Add(1)
		e.app, e.err = prepareWithOptions(spec, opts)
	})
	if hit {
		c.hits.Add(1)
	}
	return e.app, e.err
}

// program returns the memoized bare program for a non-workload source (the
// bug corpus), building it on first use. No whitelist is derived; the
// stored appRun carries only the program.
func (c *BuildCache) program(name, source string) (*core.Program, error) {
	return c.programWithOptions(name, source, annotate.Options{})
}

// programWithOptions is program for a specific annotator configuration.
func (c *BuildCache) programWithOptions(name, source string, opts annotate.Options) (*core.Program, error) {
	e := c.entry(buildKey{name: name, source: source, options: opts.Key()})
	hit := true
	e.once.Do(func() {
		hit = false
		c.misses.Add(1)
		p, err := core.BuildWithOptions(source, opts)
		if err != nil {
			e.err = err
			return
		}
		e.app = &appRun{prog: p}
	})
	if hit {
		c.hits.Add(1)
	}
	if e.err != nil {
		return nil, e.err
	}
	return e.app.prog, nil
}
