// Package harness regenerates every table and figure of the paper's
// evaluation (§4) on the simulated substrate: the performance overheads of
// Table 3, the kernel-crossing counts of Table 4, the request latencies of
// Table 5, the bug-detection times of Table 6, the false-positive and trap
// rates of Table 7, the missed-AR rates of Tables 8 and 9, and the
// training curves of Figure 7. Absolute numbers are virtual-clock values;
// the shapes — who wins, orderings across optimization levels, where the
// crossovers fall — are the reproduction targets (see EXPERIMENTS.md).
package harness

// Time scaling. The virtual clock ticks once per instruction cycle; we
// interpret one tick as one microsecond of paper time, which puts the
// machine at 1 MIPS per core — slower than the paper's 2.13 GHz Core 2 but
// irrelevant for relative measurements.
const (
	// TicksPerMs converts the paper's millisecond-scale parameters
	// (10 ms suspension timeout, 20/50 ms bug-finding pauses).
	TicksPerMs = 1_000

	// TimeoutTicks is the paper's 10 ms suspension timeout.
	TimeoutTicks = 10 * TicksPerMs

	// Pause20 and Pause50 are the two bug-finding pause lengths of
	// Table 6.
	Pause20 = 20 * TicksPerMs
	Pause50 = 50 * TicksPerMs

	// PauseEvery samples bug-finding pauses at one per N monitored
	// begin_atomics (see kernel.Config.PauseEvery: the paper's measured
	// 2–3% bug-finding overhead implies pauses are far rarer than
	// annotations). This is the production/beta-test rate used by the
	// Table 3/5 performance measurements.
	PauseEvery = 300

	// BugPauseEvery is the aggressive sampling the Table 6 bug hunts use:
	// in a targeted reproduction run nearly every begin_atomic belongs to
	// the suspect code, so pausing often maximizes the amplification.
	BugPauseEvery = 4

	// PaperSecondTicks maps one reported "paper second" onto virtual
	// ticks for Table 6's mm:ss columns: the bug-detection runs execute
	// scaled-down trigger workloads, so a scaled second keeps the
	// printed numbers in the paper's familiar range.
	PaperSecondTicks = 5_000

	// DetectionCapTicks is the 90-minute Table 6 cap in scaled time.
	DetectionCapTicks = 90 * 60 * PaperSecondTicks // 27M ticks
)

// Options configure a harness run.
type Options struct {
	// Scale multiplies workload iteration counts (1.0 = full benchmark;
	// tests and quick benches use less).
	Scale float64
	// Seed selects the interleaving; table runners derive per-run seeds
	// from it.
	Seed int64
	// Cores is the simulated core count (paper: 2).
	Cores int
	// Watchpoints is the debug-register count (paper: 4); Table 9 sweeps
	// it.
	Watchpoints int
	// MaxTicks bounds each individual run.
	MaxTicks uint64
	// Parallelism bounds the worker pool that fans out the independent VM
	// runs inside each table runner. 0 means GOMAXPROCS; 1 forces the
	// serial order. Results are identical at every setting: each run owns
	// its machine and RNG, results slot by index, and the first error (in
	// job order) wins.
	Parallelism int
}

func (o Options) defaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.25
	}
	if o.Cores == 0 {
		o.Cores = 2
	}
	if o.Watchpoints == 0 {
		o.Watchpoints = 4
	}
	if o.MaxTicks == 0 {
		o.MaxTicks = 400_000_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}
