package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"kivati/internal/bugs"
	"kivati/internal/explore"
)

// ExploreBenchSchema versions the BENCH_explore.json format: the
// schedule-exploration throughput sweep over the 11-bug corpus, comparing
// the snapshot engine against the legacy replay (Step-pinned) engine. v2
// added the aggregate decision-point cost columns (decisions, ns/decision,
// same-pick continues, delta-arm vs full-arm split) for the snapshot
// engine's sweep.
const ExploreBenchSchema = "kivati-explore/v2"

// ExploreBenchRow is one corpus bug's differential sweep, run on both
// engines. The divergence counts are deterministic (virtual clock) and
// must agree between engines — RunExploreBench refuses to produce a row
// where they differ; Seconds/SpeedupX are wall-clock and host-dependent.
type ExploreBenchRow struct {
	Bug             string  `json:"bug"`
	Seconds         float64 `json:"seconds"`
	BaselineSeconds float64 `json:"baseline_seconds"`
	SpeedupX        float64 `json:"speedup_x"`
	// VanillaDivergences / PreventionDivergences are the oracle verdicts,
	// identical across engines by construction.
	VanillaDivergences    int `json:"vanilla_divergences"`
	PreventionDivergences int `json:"prevention_divergences"`
	// Snapshot-engine work counters, summed over both modes.
	Snapshots int `json:"snapshots"`
	Restores  int `json:"restores"`
	Resumed   int `json:"resumed,omitempty"`
	Pruned    int `json:"pruned,omitempty"`
}

// ExploreBenchReport is written to BENCH_explore.json by
// `kivati-explore -bench-out`.
type ExploreBenchReport struct {
	Schema    string           `json:"schema"`
	Strategy  explore.Strategy `json:"strategy"`
	Engine    explore.Engine   `json:"engine"`
	DPOR      bool             `json:"dpor,omitempty"`
	Schedules int              `json:"schedules"` // per mode per bug
	Seed      int64            `json:"seed"`
	Bound     int              `json:"bound,omitempty"`
	Rows      []ExploreBenchRow `json:"rows"`
	// Aggregates over the whole sweep. SchedulesPerSec counts executed
	// schedules (bugs x 2 modes x Schedules, plus serial references) per
	// wall-clock second on each engine; SpeedupX is their ratio.
	TotalSeconds            float64 `json:"total_seconds"`
	BaselineSeconds         float64 `json:"baseline_seconds"`
	SchedulesPerSec         float64 `json:"schedules_per_sec"`
	BaselineSchedulesPerSec float64 `json:"baseline_schedules_per_sec"`
	SpeedupX                float64 `json:"speedup_x"`
	// Decision-point cost accounting, aggregated over the snapshot
	// engine's sweep (both modes, all bugs). Decisions counts scheduler
	// decision points; NsPerDecision is snapshot-engine wall-clock per
	// decision; SamePickContinues counts the kernel crossings the
	// same-pick superstep continuation avoided; DeltaArms/FullArms split
	// the watchpoint re-arms at real crossings into incremental delta
	// applications vs full register-file rewrites.
	Decisions         uint64  `json:"decisions"`
	NsPerDecision     float64 `json:"ns_per_decision"`
	SamePickContinues uint64  `json:"same_pick_continues"`
	DeltaArms         uint64  `json:"delta_arms"`
	FullArms          uint64  `json:"full_arms"`
}

// RunExploreBench sweeps the corpus with the given exploration options on
// the legacy replay engine and then on the snapshot engine, checks that the
// oracle verdicts are identical per bug, and reports the throughput of
// each. The options' Engine field is ignored (both run); everything else —
// strategy, schedule budget, seed, bound, DPOR — shapes both sweeps alike,
// except that DPOR only applies to the snapshot engine (the replay engine
// has no access streams to prune with).
func RunExploreBench(opts explore.Options) (*ExploreBenchReport, error) {
	rep := &ExploreBenchReport{
		Schema:    ExploreBenchSchema,
		Strategy:  opts.Strategy,
		Engine:    explore.EngineSnapshot,
		DPOR:      opts.DPOR,
		Schedules: opts.Schedules,
		Seed:      opts.Seed,
	}
	if rep.Strategy == "" {
		rep.Strategy = explore.Random
	}
	if rep.Strategy == explore.DFS {
		rep.Bound = opts.Bound
	}
	for _, b := range bugs.Corpus() {
		s, err := explore.BugSubject(b)
		if err != nil {
			return nil, err
		}
		ro := opts
		ro.Engine = explore.EngineReplay
		ro.DPOR = false
		t0 := time.Now()
		base, err := explore.Differential(s, ro)
		if err != nil {
			return nil, fmt.Errorf("explorebench: %s [replay]: %w", s.Name, err)
		}
		baseSecs := time.Since(t0).Seconds()

		so := opts
		so.Engine = explore.EngineSnapshot
		t1 := time.Now()
		cur, err := explore.Differential(s, so)
		if err != nil {
			return nil, fmt.Errorf("explorebench: %s [snapshot]: %w", s.Name, err)
		}
		secs := time.Since(t1).Seconds()

		if cur.VanillaDivergences() != base.VanillaDivergences() ||
			cur.PreventionDivergences() != base.PreventionDivergences() {
			return nil, fmt.Errorf(
				"explorebench: %s: engine verdicts disagree: snapshot %d/%d vs replay %d/%d",
				s.Name, cur.VanillaDivergences(), cur.PreventionDivergences(),
				base.VanillaDivergences(), base.PreventionDivergences())
		}
		row := ExploreBenchRow{
			Bug:                   s.Name,
			Seconds:               secs,
			BaselineSeconds:       baseSecs,
			SpeedupX:              baseSecs / secs,
			VanillaDivergences:    cur.VanillaDivergences(),
			PreventionDivergences: cur.PreventionDivergences(),
		}
		for _, st := range []*explore.EngineStats{cur.Vanilla.Stats, cur.Prevention.Stats} {
			if st == nil {
				continue
			}
			row.Snapshots += st.Snapshots
			row.Restores += st.Restores
			row.Resumed += st.Resumed
			row.Pruned += st.Pruned
		}
		for _, mr := range []*explore.Report{cur.Vanilla, cur.Prevention} {
			for _, run := range mr.Runs {
				rep.Decisions += uint64(run.Decisions)
				rep.SamePickContinues += run.SamePickContinues
				rep.DeltaArms += run.DeltaArms
				rep.FullArms += run.FullArms
			}
		}
		rep.Rows = append(rep.Rows, row)
		rep.TotalSeconds += secs
		rep.BaselineSeconds += baseSecs
	}
	sched := float64(len(rep.Rows) * 2 * opts.Schedules)
	if rep.TotalSeconds > 0 {
		rep.SchedulesPerSec = sched / rep.TotalSeconds
	}
	if rep.Decisions > 0 {
		rep.NsPerDecision = rep.TotalSeconds * 1e9 / float64(rep.Decisions)
	}
	if rep.BaselineSeconds > 0 {
		rep.BaselineSchedulesPerSec = sched / rep.BaselineSeconds
	}
	if rep.SchedulesPerSec > 0 && rep.BaselineSchedulesPerSec > 0 {
		rep.SpeedupX = rep.SchedulesPerSec / rep.BaselineSchedulesPerSec
	}
	return rep, nil
}

func (r *ExploreBenchReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Exploration throughput (%s, strategy=%s, %d schedules/mode)\n",
		r.Schema, r.Strategy, r.Schedules)
	fmt.Fprintf(&b, "%-14s %9s %9s %8s %6s %6s %10s %9s %7s %7s\n",
		"Bug", "replay_s", "snap_s", "speedup", "vdiv", "pdiv",
		"snapshots", "restores", "resume", "pruned")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %9.2f %9.2f %7.1fx %6d %6d %10d %9d %7d %7d\n",
			row.Bug, row.BaselineSeconds, row.Seconds, row.SpeedupX,
			row.VanillaDivergences, row.PreventionDivergences,
			row.Snapshots, row.Restores, row.Resumed, row.Pruned)
	}
	fmt.Fprintf(&b, "total: %.1f sched/s vs %.1f sched/s baseline = %.1fx\n",
		r.SchedulesPerSec, r.BaselineSchedulesPerSec, r.SpeedupX)
	if r.Decisions > 0 {
		fmt.Fprintf(&b, "decisions: %d at %.0f ns each; %d crossings avoided (same-pick), arms %d delta / %d full\n",
			r.Decisions, r.NsPerDecision, r.SamePickContinues, r.DeltaArms, r.FullArms)
	}
	return b.String()
}

// WriteExploreBench writes the report as indented JSON.
func WriteExploreBench(path string, r *ExploreBenchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadExploreBench loads a baseline report, validating the schema tag.
func ReadExploreBench(path string) (*ExploreBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ExploreBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("explorebench: %s: %w", path, err)
	}
	if r.Schema != ExploreBenchSchema {
		return nil, fmt.Errorf("explorebench: %s: schema %q, want %q", path, r.Schema, ExploreBenchSchema)
	}
	return &r, nil
}

// ExploreBenchGateMinSpeedup is the wall-clock floor GateExploreBench
// enforces on the aggregate snapshot-vs-replay speedup. It is set well
// below the measured speedup so host noise cannot fail a healthy build
// while a change that forfeits the engine's advantage still does.
const ExploreBenchGateMinSpeedup = 2.0

// ExploreBenchGateMinSchedRatio is the floor on current schedules/sec
// relative to the baseline's recorded schedules/sec. The baseline number
// comes from a different host, so the floor must absorb the full spread
// between a dev box and a loaded CI runner; 0.25 catches an
// order-of-magnitude throughput collapse (a demoted fast path, an
// accidental per-schedule rebuild) without flaking on slow runners. The
// same-runner SpeedupX floor above is the tight relative gate.
const ExploreBenchGateMinSchedRatio = 0.25

// GateExploreBench is the enforcing regression check. Deterministic
// columns gate hard: the current sweep must report exactly the baseline's
// vanilla divergence count for every bug and zero prevention divergences
// anywhere. The wall-clock gate is a floor on the aggregate speedup
// measured on the current host (baseline wall numbers are from a different
// host and are not compared). Bugs absent from the baseline pass — a new
// corpus entry needs a refreshed baseline, not a red build.
func GateExploreBench(baseline, current *ExploreBenchReport) error {
	if baseline.Strategy != current.Strategy || baseline.Schedules != current.Schedules ||
		baseline.Seed != current.Seed || baseline.Bound != current.Bound {
		return fmt.Errorf("explorebench gate: configuration mismatch: baseline %s/%d/seed%d/bound%d vs current %s/%d/seed%d/bound%d",
			baseline.Strategy, baseline.Schedules, baseline.Seed, baseline.Bound,
			current.Strategy, current.Schedules, current.Seed, current.Bound)
	}
	base := make(map[string]ExploreBenchRow, len(baseline.Rows))
	for _, row := range baseline.Rows {
		base[row.Bug] = row
	}
	var fails []string
	for _, row := range current.Rows {
		if row.PreventionDivergences != 0 {
			fails = append(fails, fmt.Sprintf("%s: %d prevention-mode divergences (engine bug)",
				row.Bug, row.PreventionDivergences))
		}
		old, ok := base[row.Bug]
		if !ok {
			continue
		}
		if row.VanillaDivergences != old.VanillaDivergences {
			fails = append(fails, fmt.Sprintf("%s: vanilla divergences %d, baseline %d",
				row.Bug, row.VanillaDivergences, old.VanillaDivergences))
		}
	}
	if current.SpeedupX < ExploreBenchGateMinSpeedup {
		fails = append(fails, fmt.Sprintf("aggregate speedup %.2fx under the %.1fx floor",
			current.SpeedupX, ExploreBenchGateMinSpeedup))
	}
	if baseline.SchedulesPerSec > 0 &&
		current.SchedulesPerSec < ExploreBenchGateMinSchedRatio*baseline.SchedulesPerSec {
		fails = append(fails, fmt.Sprintf(
			"snapshot engine %.1f schedules/sec under %.0f%% of the baseline's %.1f",
			current.SchedulesPerSec, 100*ExploreBenchGateMinSchedRatio, baseline.SchedulesPerSec))
	}
	if len(fails) > 0 {
		return fmt.Errorf("explorebench gate:\n  %s", strings.Join(fails, "\n  "))
	}
	return nil
}
