package harness

import (
	"fmt"

	"kivati/internal/annotate"
	"kivati/internal/core"
	"kivati/internal/kernel"
	"kivati/internal/vm"
	"kivati/internal/whitelist"
	"kivati/internal/workloads"
)

// appRun executes one workload under one configuration. After prepare
// returns, an appRun is read-only — the program's binary cache is
// internally locked and the whitelist is never mutated by a run — so one
// appRun is shared by every concurrent pool worker and memoized across
// tables by the build cache.
type appRun struct {
	spec *workloads.Spec
	prog *core.Program
	wl   *whitelist.Whitelist // sync-var whitelist for this program
}

// prepare builds a workload's program and its sync-var whitelist once.
func prepare(spec *workloads.Spec) (*appRun, error) {
	return prepareWithOptions(spec, annotate.Options{})
}

// prepareWithOptions is prepare under a specific annotator configuration.
// The workload's thread entry points become lockset analysis roots, so
// functions only ever started by the harness are still treated as running
// without their callers' locks.
func prepareWithOptions(spec *workloads.Spec, opts annotate.Options) (*appRun, error) {
	for _, s := range spec.Starts {
		opts.Roots = append(opts.Roots, s.Fn)
	}
	p, err := core.BuildWithOptions(spec.Source, opts)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", spec.Name, err)
	}
	wl, err := p.SyncVarWhitelist(spec.FlagVars...)
	if err != nil {
		return nil, err
	}
	return &appRun{spec: spec, prog: p, wl: wl}, nil
}

// config materializes a RunConfig for the given mode and optimization level.
// Whitelist-bearing levels (SyncVars, Optimized) get the sync-var whitelist.
func (a *appRun) config(o Options, mode kernel.Mode, opt kernel.OptLevel, vanilla bool) core.RunConfig {
	cfg := core.RunConfig{
		Mode:           mode,
		Opt:            opt,
		Vanilla:        vanilla,
		NumWatchpoints: o.Watchpoints,
		Cores:          o.Cores,
		Seed:           o.Seed,
		MaxTicks:       o.MaxTicks,
		TimeoutTicks:   TimeoutTicks,
		Starts:         a.spec.Starts,
	}
	if a.spec.Requests != nil {
		r := *a.spec.Requests
		cfg.Requests = &r
	}
	if mode == kernel.BugFinding {
		cfg.PauseTicks = Pause20
		cfg.PauseEvery = PauseEvery
	}
	if opt.UseWhitelist() {
		cfg.Whitelist = a.wl
	}
	return cfg
}

// run executes and returns the result, turning faults into errors.
func (a *appRun) run(cfg core.RunConfig) (*vm.Result, error) {
	res, err := core.Run(a.prog, cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", a.spec.Name, err)
	}
	if res.Reason != "completed" {
		return nil, fmt.Errorf("harness: %s: run did not complete: %s (ticks=%d)",
			a.spec.Name, res.Reason, res.Ticks)
	}
	return res, nil
}
