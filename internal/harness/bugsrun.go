package harness

import (
	"fmt"
	"strings"

	"kivati/internal/bugs"
	"kivati/internal/core"
	"kivati/internal/kernel"
	"kivati/internal/stats"
	"kivati/internal/trace"
)

// Table6Row is one bug's time-to-detection under the three configurations.
// Times are in ticks; Detected* report whether the bug manifested within the
// cap (the paper's "-" rows).
type Table6Row struct {
	App, ID      string
	PrevTicks    uint64
	PrevDetected bool
	Bug20Ticks   uint64
	Bug20Found   bool
	Bug50Ticks   uint64
	Bug50Found   bool

	PaperPrev, Paper20, Paper50 string
}

// RunTable6 measures how long Kivati takes to detect (and prevent) each of
// the 11 corpus bugs, in prevention mode and bug-finding mode with 20 ms and
// 50 ms pauses. Each run stops at the first violation on a bug variable or
// at the 90-scaled-minute cap.
func RunTable6(o Options) ([]Table6Row, error) {
	o = o.defaults()
	var out []Table6Row
	for bi, b := range bugs.Corpus() {
		p, err := core.Build(b.Source)
		if err != nil {
			return nil, fmt.Errorf("harness: bug %s %s: %w", b.App, b.ID, err)
		}
		bugVars := map[string]bool{}
		for _, v := range b.BugVars {
			bugVars[v] = true
		}
		detect := func(mode kernel.Mode, pause uint64) (uint64, bool, error) {
			var when uint64
			found := false
			cfg := core.RunConfig{
				Mode:           mode,
				Opt:            kernel.OptBase,
				NumWatchpoints: o.Watchpoints,
				Cores:          o.Cores,
				Seed:           o.Seed + int64(bi)*13,
				MaxTicks:       DetectionCapTicks,
				TimeoutTicks:   TimeoutTicks,
				PauseTicks:     pause,
				PauseEvery:     BugPauseEvery,
				Starts:         b.Starts(),
				OnViolation: func(v trace.Violation) bool {
					if bugVars[v.Var] {
						when = v.Tick
						found = true
						return true
					}
					return false
				},
			}
			res, err := core.Run(p, cfg)
			if err != nil {
				return 0, false, fmt.Errorf("harness: bug %s %s: %w", b.App, b.ID, err)
			}
			_ = res
			return when, found, nil
		}
		row := Table6Row{App: b.App, ID: b.ID,
			PaperPrev: b.PaperPrev, Paper20: b.Paper20, Paper50: b.Paper50}
		if row.PrevTicks, row.PrevDetected, err = detect(kernel.Prevention, 0); err != nil {
			return nil, err
		}
		if row.Bug20Ticks, row.Bug20Found, err = detect(kernel.BugFinding, Pause20); err != nil {
			return nil, err
		}
		if row.Bug50Ticks, row.Bug50Found, err = detect(kernel.BugFinding, Pause50); err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// scaledMMSS renders a tick count as scaled minutes:seconds (Table 6 units).
func scaledMMSS(ticks uint64, found bool) string {
	if !found {
		return "-"
	}
	return stats.FormatMMSS(float64(ticks) / PaperSecondTicks)
}

// FormatTable6 renders the detection-time rows next to the paper's values.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6. Time to detect+prevent each bug (scaled m:ss; '-' = no manifestation)\n")
	fmt.Fprintf(&b, "%-8s %-8s | %9s %9s %9s | paper: %7s %7s %7s\n",
		"App", "Bug ID", "Prev", "Bug(20ms)", "Bug(50ms)", "Prev", "20ms", "50ms")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-8s | %9s %9s %9s | %14s %7s %7s\n",
			r.App, r.ID,
			scaledMMSS(r.PrevTicks, r.PrevDetected),
			scaledMMSS(r.Bug20Ticks, r.Bug20Found),
			scaledMMSS(r.Bug50Ticks, r.Bug50Found),
			r.PaperPrev, r.Paper20, r.Paper50)
	}
	return b.String()
}
