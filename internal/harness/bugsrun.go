package harness

import (
	"fmt"
	"strings"

	"kivati/internal/bugs"
	"kivati/internal/core"
	"kivati/internal/kernel"
	"kivati/internal/stats"
	"kivati/internal/trace"
)

// Table6Row is one bug's time-to-detection under the three configurations.
// Times are in ticks; Detected* report whether the bug manifested within the
// cap (the paper's "-" rows).
type Table6Row struct {
	App, ID      string
	PrevTicks    uint64
	PrevDetected bool
	Bug20Ticks   uint64
	Bug20Found   bool
	Bug50Ticks   uint64
	Bug50Found   bool

	PaperPrev, Paper20, Paper50 string
}

// detection is one detect run's outcome: when the bug manifested, if it did.
type detection struct {
	when  uint64
	found bool
}

// RunTable6 measures how long Kivati takes to detect (and prevent) each of
// the 11 corpus bugs, in prevention mode and bug-finding mode with 20 ms and
// 50 ms pauses. Each run stops at the first violation on a bug variable or
// at the 90-scaled-minute cap. The 33 detect runs (11 bugs x 3
// configurations) fan out across the pool; each bug's program builds once
// through the build cache and is shared by its three runs.
func RunTable6(o Options) ([]Table6Row, error) {
	o = o.defaults()
	corpus := bugs.Corpus()

	var jobs []func() (detection, error)
	for bi, b := range corpus {
		bugVars := map[string]bool{}
		for _, v := range b.BugVars {
			bugVars[v] = true
		}
		detect := func(mode kernel.Mode, pause uint64) (detection, error) {
			p, err := sharedCache.program("bug:"+b.App+"/"+b.ID, b.Source)
			if err != nil {
				return detection{}, fmt.Errorf("harness: bug %s %s: %w", b.App, b.ID, err)
			}
			var d detection
			cfg := core.RunConfig{
				Mode:           mode,
				Opt:            kernel.OptBase,
				NumWatchpoints: o.Watchpoints,
				Cores:          o.Cores,
				Seed:           o.Seed + int64(bi)*13,
				MaxTicks:       DetectionCapTicks,
				TimeoutTicks:   TimeoutTicks,
				PauseTicks:     pause,
				PauseEvery:     BugPauseEvery,
				Starts:         b.Starts(),
				OnViolation: func(v trace.Violation) bool {
					if bugVars[v.Var] {
						d.when = v.Tick
						d.found = true
						return true
					}
					return false
				},
			}
			if _, err := core.Run(p, cfg); err != nil {
				return detection{}, fmt.Errorf("harness: bug %s %s: %w", b.App, b.ID, err)
			}
			return d, nil
		}
		for _, run := range []struct {
			mode  kernel.Mode
			pause uint64
		}{{kernel.Prevention, 0}, {kernel.BugFinding, Pause20}, {kernel.BugFinding, Pause50}} {
			jobs = append(jobs, func() (detection, error) {
				return detect(run.mode, run.pause)
			})
		}
	}
	results, err := runJobs(o.parallelism(), jobs)
	if err != nil {
		return nil, err
	}

	var out []Table6Row
	for bi, b := range corpus {
		prev, bug20, bug50 := results[bi*3], results[bi*3+1], results[bi*3+2]
		out = append(out, Table6Row{
			App: b.App, ID: b.ID,
			PrevTicks: prev.when, PrevDetected: prev.found,
			Bug20Ticks: bug20.when, Bug20Found: bug20.found,
			Bug50Ticks: bug50.when, Bug50Found: bug50.found,
			PaperPrev: b.PaperPrev, Paper20: b.Paper20, Paper50: b.Paper50,
		})
	}
	return out, nil
}

// scaledMMSS renders a tick count as scaled minutes:seconds (Table 6 units).
func scaledMMSS(ticks uint64, found bool) string {
	if !found {
		return "-"
	}
	return stats.FormatMMSS(float64(ticks) / PaperSecondTicks)
}

// FormatTable6 renders the detection-time rows next to the paper's values.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6. Time to detect+prevent each bug (scaled m:ss; '-' = no manifestation)\n")
	fmt.Fprintf(&b, "%-8s %-8s | %9s %9s %9s | paper: %7s %7s %7s\n",
		"App", "Bug ID", "Prev", "Bug(20ms)", "Bug(50ms)", "Prev", "20ms", "50ms")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-8s | %9s %9s %9s | %14s %7s %7s\n",
			r.App, r.ID,
			scaledMMSS(r.PrevTicks, r.PrevDetected),
			scaledMMSS(r.Bug20Ticks, r.Bug20Found),
			scaledMMSS(r.Bug50Ticks, r.Bug50Found),
			r.PaperPrev, r.Paper20, r.Paper50)
	}
	return b.String()
}
