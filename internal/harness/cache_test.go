package harness

import (
	"sync"
	"testing"

	"kivati/internal/annotate"
	"kivati/internal/core"
	"kivati/internal/workloads"
)

func TestBuildCacheMemoizesAcrossTables(t *testing.T) {
	ResetBuildCache()
	defer ResetBuildCache()

	spec := workloads.NSS(workloads.Scale(0.05))
	a1, err := sharedCache.prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := sharedCache.prepare(workloads.NSS(workloads.Scale(0.05)))
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("same (workload, scale) prepared twice; cache did not memoize")
	}
	hits, misses := BuildCacheStats()
	if misses != 1 || hits != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}

	// A different scale bakes different iteration counts into the source
	// and must build separately.
	a3, err := sharedCache.prepare(workloads.NSS(workloads.Scale(0.1)))
	if err != nil {
		t.Fatal(err)
	}
	if a3 == a1 {
		t.Error("different scales shared one build")
	}
	if _, misses := BuildCacheStats(); misses != 2 {
		t.Errorf("misses=%d, want 2", misses)
	}
}

func TestBuildCacheConcurrentPrepareBuildsOnce(t *testing.T) {
	ResetBuildCache()
	defer ResetBuildCache()

	spec := workloads.VLC(workloads.Scale(0.05))
	const n = 16
	apps := make([]*appRun, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, err := sharedCache.prepare(spec)
			if err != nil {
				t.Error(err)
				return
			}
			apps[i] = a
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if apps[i] != apps[0] {
			t.Fatalf("goroutine %d got a different build", i)
		}
	}
	if _, misses := BuildCacheStats(); misses != 1 {
		t.Errorf("misses=%d, want 1 (single build under contention)", misses)
	}
}

func TestBuildCacheBugPrograms(t *testing.T) {
	ResetBuildCache()
	defer ResetBuildCache()

	src := "void main() { int x; x = 1; }"
	p1, err := sharedCache.program("bug:test/1", src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sharedCache.program("bug:test/1", src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("bug program built twice")
	}
	// A build error is memoized too: the second request must fail the same
	// way without re-parsing.
	if _, err := sharedCache.program("bug:test/2", "not a program"); err == nil {
		t.Fatal("bad source built successfully")
	}
	if _, err := sharedCache.program("bug:test/2", "not a program"); err == nil {
		t.Fatal("memoized bad source built successfully")
	}
}

// TestBuildCacheDistinctSourcesSameName: the cache key includes the program
// text, so two builds under one name but with different sources (the same
// workload at two scales, an edited fixture, a future analysis variant)
// must occupy distinct entries — a name-only key would silently serve the
// first build for both.
func TestBuildCacheDistinctSourcesSameName(t *testing.T) {
	ResetBuildCache()
	defer ResetBuildCache()

	// Bare-program path.
	p1, err := sharedCache.program("bug:same/name", "void main() { int x; x = 1; }")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sharedCache.program("bug:same/name", "void main() { int x; x = 2; }")
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("different sources under one name shared a cache entry")
	}
	if hits, misses := BuildCacheStats(); hits != 0 || misses != 2 {
		t.Errorf("hits=%d misses=%d, want 0/2", hits, misses)
	}

	// Workload path: same Name, different Source.
	s1 := &workloads.Spec{Name: "clash", Source: "int a;\nvoid main() { a = 1; }"}
	s2 := &workloads.Spec{Name: "clash", Source: "int a;\nvoid main() { a = 2; }"}
	a1, err := sharedCache.prepare(s1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := sharedCache.prepare(s2)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Error("workload specs with different sources shared a cache entry")
	}
	// And the identical spec text still hits, regardless of Spec identity.
	a3, err := sharedCache.prepare(&workloads.Spec{Name: "clash", Source: s1.Source})
	if err != nil {
		t.Fatal(err)
	}
	if a3 != a1 {
		t.Error("identical (name, source) rebuilt instead of hitting the cache")
	}
	if _, misses := BuildCacheStats(); misses != 4 {
		t.Errorf("misses=%d, want 4", misses)
	}
}

// TestBuildCacheDistinctOptionsSameSource: annotation options change the AR
// table (and thus every downstream measurement), so they are part of the
// cache key. The base and optimizer builds of one workload must not share an
// entry, and repeating either configuration must hit.
func TestBuildCacheDistinctOptionsSameSource(t *testing.T) {
	ResetBuildCache()
	defer ResetBuildCache()

	spec := &workloads.Spec{
		Name:   "optclash",
		Source: "int a;\nvoid w() { a = a + 1; a = a + 1; }\nvoid main() { spawn(w, 0); w(); }",
		Starts: []core.Start{{Fn: "main"}},
	}
	optOpts := annotate.Options{
		Lockset:  true,
		Optimize: annotate.OptimizeOptions{DropBenign: true, Dedupe: true, Coalesce: true},
	}
	base, err := sharedCache.prepareWithOptions(spec, annotate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	optz, err := sharedCache.prepareWithOptions(spec, optOpts)
	if err != nil {
		t.Fatal(err)
	}
	if base == optz {
		t.Fatal("base and optimizer builds shared one cache entry")
	}
	if len(optz.prog.Annotated.ARs) >= len(base.prog.Annotated.ARs) {
		t.Errorf("optimizer build has %d ARs, base %d; want a reduction",
			len(optz.prog.Annotated.ARs), len(base.prog.Annotated.ARs))
	}
	again, err := sharedCache.prepareWithOptions(spec, optOpts)
	if err != nil {
		t.Fatal(err)
	}
	if again != optz {
		t.Error("identical (name, source, options) rebuilt instead of hitting")
	}
	if hits, misses := BuildCacheStats(); hits != 1 || misses != 2 {
		t.Errorf("hits=%d misses=%d, want 1/2", hits, misses)
	}
}
