package harness

import (
	"testing"

	"kivati/internal/kernel"
	"kivati/internal/workloads"
)

// The array-indexing acceptance row: ArrayScan's inner loops index fixed
// arrays through computed registers, which demoted every such block as
// Unbounded before the value-range footprint analysis. Under prevention
// with all optimizations the workload must now stay on the fast path with
// zero Unbounded demotions.
func TestArrayScanPreventionResidency(t *testing.T) {
	o := Options{}.defaults()
	spec := workloads.ArrayScan(workloads.Scale(o.Scale))
	a, err := sharedCache.prepare(spec)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	res, err := a.run(a.config(o, kernel.Prevention, kernel.OptOptimized, false))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Stats.Begins == 0 {
		t.Fatal("no atomic regions began; prevention was not exercised")
	}
	if res.Demotions.Unbounded != 0 {
		t.Errorf("Demotions.Unbounded = %d, want 0 (demotions: %+v)",
			res.Demotions.Unbounded, res.Demotions)
	}
	if res.Stats.Instructions == 0 {
		t.Fatal("no instructions executed")
	}
	resid := 100 * float64(res.FastInstructions) / float64(res.Stats.Instructions)
	if resid < 90 {
		t.Errorf("prevention-optimized fast residency = %.1f%%, want >= 90%%", resid)
	}
}
