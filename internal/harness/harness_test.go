package harness

import (
	"strings"
	"testing"
)

// The harness tests assert the *shapes* the paper reports, at a reduced
// scale so the suite stays fast; EXPERIMENTS.md records a full-scale run.

func TestTable1MatchesPaper(t *testing.T) {
	out := Table1()
	for _, want := range []string{"x86", "SPARC", "MIPS", "ARM", "PowerPC", "After", "Before"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ListsAllApps(t *testing.T) {
	out := Table2(Options{Scale: 0.05})
	for _, app := range []string{"NSS", "VLC", "Webstone", "TPC-W", "SPEC OMP"} {
		if !strings.Contains(out, app) {
			t.Errorf("Table 2 missing %s", app)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := RunTable3(Options{Scale: 0.15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	gm := res.GeoMean
	// Optimized must beat Base on the geometric mean (the paper's headline
	// 30% -> 19%).
	if gm.Optimized.PrevPct >= gm.Base.PrevPct {
		t.Errorf("optimized geomean %.1f%% not below base %.1f%%",
			gm.Optimized.PrevPct, gm.Base.PrevPct)
	}
	// Null syscall isolates crossing cost: at or below Base.
	if gm.NullSyscall.PrevPct > gm.Base.PrevPct*1.15 {
		t.Errorf("null-syscall geomean %.1f%% above base %.1f%%",
			gm.NullSyscall.PrevPct, gm.Base.PrevPct)
	}
	// Every overhead is positive: Kivati never speeds a program up.
	for _, row := range res.Rows {
		for _, c := range []Table3Cell{row.Base, row.NullSyscall, row.SyncVars, row.Optimized} {
			if c.PrevPct < -5 || c.BugPct < -5 {
				t.Errorf("%s: negative overhead %+v", row.App, c)
			}
		}
	}
	// The formatter includes every app and the summary row.
	out := res.String()
	if !strings.Contains(out, "geo. mean") {
		t.Error("missing geo. mean row")
	}
}

func TestTable4Shape(t *testing.T) {
	res, err := RunTable4(Options{Scale: 0.15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.BaseKps <= 0 {
			t.Errorf("%s: no kernel crossings in base mode", row.App)
		}
		if row.OptKps >= row.BaseKps {
			t.Errorf("%s: optimized crossings (%f) not below base (%f)",
				row.App, row.OptKps, row.BaseKps)
		}
		// SyncVars removes whitelisted crossings, but the rate is
		// normalized by a runtime that also shifts; allow slack.
		if row.SyncVarsKps > row.BaseKps*1.2 {
			t.Errorf("%s: syncvars crossing rate (%f) well above base (%f)",
				row.App, row.SyncVarsKps, row.BaseKps)
		}
	}
	if res.AvgReduction <= 20 {
		t.Errorf("average reduction %.0f%%: optimizations barely help", res.AvgReduction)
	}
	if !strings.Contains(res.String(), "average reduction") {
		t.Error("formatter missing summary")
	}
}

func TestTable5Shape(t *testing.T) {
	rows, err := RunTable5(Options{Scale: 0.15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("server rows = %d, want 2 (Webstone, TPC-W)", len(rows))
	}
	for _, r := range rows {
		if r.NumRequests == 0 {
			t.Errorf("%s: no requests measured", r.App)
		}
		if r.Vanilla <= 0 {
			t.Errorf("%s: no vanilla latency", r.App)
		}
		// Kivati increases latency (slightly).
		if r.PrevPct < -10 {
			t.Errorf("%s: prevention reduced latency by %f%%", r.App, r.PrevPct)
		}
	}
	if !strings.Contains(FormatTable5(rows), "Webstone") {
		t.Error("formatter missing app")
	}
}

func TestTable6Shape(t *testing.T) {
	rows, err := RunTable6(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("bug rows = %d, want 11", len(rows))
	}
	bugFound, prevMissedButBugFound := 0, 0
	for _, r := range rows {
		if r.Bug20Found {
			bugFound++
		}
		if !r.PrevDetected && r.Bug20Found {
			prevMissedButBugFound++
		}
		// Bug-finding never loses to prevention by more than noise: when
		// both detect, bug-finding is usually faster; require it within
		// 2x in the worst case.
		if r.PrevDetected && r.Bug20Found && r.Bug20Ticks > 2*r.PrevTicks+1_000_000 {
			t.Errorf("%s %s: bug-finding (%d) much slower than prevention (%d)",
				r.App, r.ID, r.Bug20Ticks, r.PrevTicks)
		}
	}
	if bugFound < 10 {
		t.Errorf("bug-finding mode found only %d/11 bugs", bugFound)
	}
	// The paper's key qualitative result: bugs that never manifest in
	// prevention mode are found by bug-finding mode.
	if prevMissedButBugFound == 0 {
		t.Error("no bug was exclusive to bug-finding mode (the paper's '-' rows)")
	}
	out := FormatTable6(rows)
	if !strings.Contains(out, "44402") || !strings.Contains(out, "25306") {
		t.Error("formatter missing bug IDs")
	}
}

func TestTable7Shape(t *testing.T) {
	rows, err := RunTable7(Options{Scale: 0.4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	totalFP, totalTraps := 0, 0.0
	for _, r := range rows {
		totalFP += r.PrevFP
		totalTraps += r.PrevTraps
		if r.BugFP < 0 || r.PrevFP < 0 {
			t.Errorf("%s: negative FP", r.App)
		}
	}
	if totalFP == 0 {
		t.Error("no false positives across the suite; benign-violation sources inert")
	}
	if totalTraps == 0 {
		t.Error("no watchpoint traps across the suite")
	}
}

func TestTable8And9Shape(t *testing.T) {
	o := Options{Scale: 0.1, Seed: 1}
	t8, err := RunTable8(o)
	if err != nil {
		t.Fatal(err)
	}
	anyMissed := false
	for _, r := range t8 {
		if r.PrevPct > 0 {
			anyMissed = true
		}
		if r.PrevPct > 75 {
			t.Errorf("%s: %.0f%% missed ARs — watchpoint pressure unrealistic", r.App, r.PrevPct)
		}
	}
	if !anyMissed {
		t.Error("no app misses any ARs at 4 watchpoints; Table 8 is degenerate")
	}

	t9, err := RunTable9(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range t9.Apps {
		pcts := t9.Pct[app]
		// Monotone-ish decrease: last < first, and converges to 0 by 12.
		if pcts[len(pcts)-1] != 0 {
			t.Errorf("%s: %.2f%% ARs still missed with 12 watchpoints", app, pcts[len(pcts)-1])
		}
		if pcts[0] <= pcts[len(pcts)-1] {
			t.Errorf("%s: missed ARs do not decrease with more watchpoints: %v", app, pcts)
		}
	}
	if !strings.Contains(t9.String(), "12") {
		t.Error("Table 9 formatter missing counts")
	}
}

func TestFigure7Shape(t *testing.T) {
	rs, err := RunFigure7(Options{Scale: 0.5, Seed: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("apps = %d", len(rs))
	}
	totalFirst, totalLast := 0, 0
	for _, r := range rs {
		if len(r.Prevention) != 5 || len(r.BugFinding) != 5 {
			t.Fatalf("%s: wrong iteration counts", r.App)
		}
		totalFirst += r.Prevention[0] + r.BugFinding[0]
		totalLast += r.Prevention[4] + r.BugFinding[4]
	}
	// Training converges: far fewer new FPs in the last iteration than the
	// first.
	if totalFirst == 0 {
		t.Error("training found nothing in iteration 1")
	}
	if totalLast >= totalFirst {
		t.Errorf("training did not converge: first=%d last=%d", totalFirst, totalLast)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.defaults()
	if o.Cores != 2 || o.Watchpoints != 4 || o.Scale == 0 || o.Seed == 0 || o.MaxTicks == 0 {
		t.Errorf("defaults incomplete: %+v", o)
	}
}
