package harness

import (
	"runtime"
	"sync"
)

// The worker pool fans the harness's independent VM runs out across host
// cores. Every run owns its Machine, Kernel and seeded RNG, and the built
// core.Program is safe for concurrent Run calls, so the runs are
// embarrassingly parallel; determinism is preserved by slotting each
// result into its job index rather than by arrival order, and by
// reporting the lowest-indexed error — exactly the run a serial sweep
// would have failed on first.

// parallelism resolves the worker count for a harness run: the explicit
// Options.Parallelism if set, otherwise GOMAXPROCS.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runJobs executes the jobs on a pool of at most workers goroutines and
// returns their results in job order. If any job fails, the error of the
// lowest-indexed failing job is returned (matching what a serial sweep
// would have reported) along with the partial results.
func runJobs[T any](workers int, jobs []func() (T, error)) ([]T, error) {
	results := make([]T, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers == 1 {
		// Serial fast path: no goroutines, identical scheduling to the
		// pre-pool harness.
		for i, job := range jobs {
			res, err := job()
			if err != nil {
				return results, err
			}
			results[i] = res
		}
		return results, nil
	}

	errs := make([]error, len(jobs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = jobs[i]()
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
