package harness

import (
	"kivati/internal/pool"
)

// The worker pool fans the harness's independent VM runs out across host
// cores. Every run owns its Machine, Kernel and seeded RNG, and the built
// core.Program is safe for concurrent Run calls, so the runs are
// embarrassingly parallel. The pool itself lives in internal/pool (shared
// with the schedule explorer); see that package for the determinism
// contract.

// parallelism resolves the worker count for a harness run: the explicit
// Options.Parallelism if set, otherwise GOMAXPROCS.
func (o Options) parallelism() int {
	return pool.Workers(o.Parallelism)
}

// runJobs executes the jobs on a pool of at most workers goroutines and
// returns their results in job order; see pool.Run.
func runJobs[T any](workers int, jobs []func() (T, error)) ([]T, error) {
	return pool.Run(workers, jobs)
}
