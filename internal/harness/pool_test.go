package harness

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunJobsSlotsResultsByIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		jobs := make([]func() (int, error), 50)
		for i := range jobs {
			jobs[i] = func() (int, error) { return i * i, nil }
		}
		got, err := runJobs(workers, jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunJobsFirstErrorWins(t *testing.T) {
	// Both jobs 10 and 40 fail; regardless of which worker finishes first,
	// the lowest-indexed error must be reported — the one a serial sweep
	// would have hit.
	err10 := errors.New("boom 10")
	jobs := make([]func() (int, error), 50)
	for i := range jobs {
		switch i {
		case 10:
			jobs[i] = func() (int, error) { return 0, err10 }
		case 40:
			jobs[i] = func() (int, error) { return 0, errors.New("boom 40") }
		default:
			jobs[i] = func() (int, error) { return i, nil }
		}
	}
	for _, workers := range []int{1, 7} {
		if _, err := runJobs(workers, jobs); !errors.Is(err, err10) {
			t.Errorf("workers=%d: err = %v, want boom 10", workers, err)
		}
	}
}

func TestRunJobsBoundsConcurrency(t *testing.T) {
	const workers = 3
	var active, peak atomic.Int64
	jobs := make([]func() (int, error), 24)
	for i := range jobs {
		jobs[i] = func() (int, error) {
			n := active.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			runtime.Gosched()
			active.Add(-1)
			return i, nil
		}
	}
	if _, err := runJobs(workers, jobs); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
}

func TestRunJobsEmpty(t *testing.T) {
	got, err := runJobs[int](4, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestParallelismResolution(t *testing.T) {
	if got := (Options{Parallelism: 5}).parallelism(); got != 5 {
		t.Errorf("explicit parallelism = %d, want 5", got)
	}
	if got := (Options{}).parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default parallelism = %d, want GOMAXPROCS", got)
	}
}
