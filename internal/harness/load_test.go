package harness_test

import (
	"reflect"
	"strings"
	"testing"

	"kivati/internal/harness"
)

// TestLoadDriver: the open-loop driver serves the full request count in
// every configuration, reports ordered percentiles, and uses the vanilla
// row as the overhead baseline.
func TestLoadDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("load driver runs full server workloads")
	}
	rep, err := harness.RunLoad(harness.LoadOptions{Requests: 120, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "Webstone" || rep.Schema != "kivati-load/v1" {
		t.Errorf("report header: %s / %s", rep.Schema, rep.Workload)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("%d rows, want vanilla/prevention/bugfinding", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Requests != rep.Requests {
			t.Errorf("%s: served %d/%d requests", row.Config, row.Requests, rep.Requests)
		}
		if row.MeanTicks <= 0 || row.ThroughputRPS <= 0 {
			t.Errorf("%s: degenerate stats: mean=%f throughput=%f", row.Config, row.MeanTicks, row.ThroughputRPS)
		}
		if !(row.P50 <= row.P95 && row.P95 <= row.P99 && row.P99 <= row.WorstTicks) {
			t.Errorf("%s: percentiles out of order: p50=%d p95=%d p99=%d worst=%d",
				row.Config, row.P50, row.P95, row.P99, row.WorstTicks)
		}
	}
	if rep.Rows[0].Config != "vanilla" || rep.Rows[0].OverheadPct != 0 {
		t.Errorf("vanilla row must lead with zero overhead: %+v", rep.Rows[0])
	}
	if s := rep.String(); !strings.Contains(s, "p99") || !strings.Contains(s, "vanilla") {
		t.Errorf("report text missing columns: %q", s)
	}
}

// TestLoadDeterministic: the arrival schedule is part of the seed, so two
// runs produce identical reports.
func TestLoadDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("load driver runs full server workloads")
	}
	opts := harness.LoadOptions{Requests: 120, Seed: 8, Parallelism: 1}
	a, err := harness.RunLoad(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 3
	b, err := harness.RunLoad(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("load reports differ across runs:\nfirst: %+v\nsecond: %+v", a, b)
	}
}

// TestLoadRejectsNonServer: only server workloads have request streams.
func TestLoadRejectsNonServer(t *testing.T) {
	if _, err := harness.RunLoad(harness.LoadOptions{Workload: "pbzip2"}); err == nil {
		t.Error("pbzip2 accepted as a load-driver workload")
	}
}
