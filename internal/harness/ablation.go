package harness

import (
	"fmt"
	"strings"

	"kivati/internal/annotate"
	"kivati/internal/core"
	"kivati/internal/kernel"
	"kivati/internal/vm"
	"kivati/internal/workloads"
)

// AblationRow compares, for one application, the paper's dynamic
// whitelist-training pipeline against the static lockset pipeline: AR table
// sizes and prevention-mode cost with and without the annotation optimizer,
// and residual false positives under the trained versus the static
// whitelist.
type AblationRow struct {
	App string

	// Static annotation effect.
	BaseARs   int // AR table size, paper-prototype annotator
	OptARs    int // AR table size with the optimizer
	Benign    int // ARs dropped via lockset serializability proofs
	Deduped   int // ARs dropped as covered by sub-regions
	Coalesced int // ARs removed by merging chains

	// Prevention-mode cost at OptBase (no whitelist: every AR arms).
	BaseKps   float64 // kernel crossings, thousands per virtual second
	OptKps    float64
	BaseArmed uint64 // begin_atomic arms over the run (monitored + missed)
	OptArmed  uint64

	// Whitelists: Figure 7 training versus the compile-time lockset proof.
	TrainedFPs     []int // new FPs per training iteration
	TrainedFPSum   int   // total FPs surfaced by training
	TrainedWLSize  int
	TrainedResidFP int // unique violated ARs under the trained whitelist
	StaticWLSize   int
	StaticFP       int // unique violated ARs under the static whitelist
}

// RunAblation runs the trained-vs-static whitelist ablation over the
// performance suite. Per app: (1) base and optimizer builds race prevention
// mode at OptBase to expose the optimizer's effect on armed ARs and kernel
// crossings; (2) a Figure 7 training campaign (prevention mode, OptOptimized)
// surfaces false positives for `iterations` runs; (3) one run each under the
// trained and the static (lockset-proof) whitelist counts residual false
// positives. Campaigns are sequential per app, so the pool parallelizes
// across apps.
func RunAblation(o Options, iterations int) ([]AblationRow, error) {
	o = o.defaults()
	if iterations <= 0 {
		iterations = 10
	}
	specs := workloads.PerfSuite(workloads.Scale(o.Scale))

	baseOpts := annotate.Options{Lockset: true}
	optOpts := annotate.Options{
		Lockset: true,
		Optimize: annotate.OptimizeOptions{
			DropBenign: true,
			Dedupe:     true,
			Coalesce:   true,
		},
	}

	jobs := make([]func() (AblationRow, error), 0, len(specs))
	for _, spec := range specs {
		jobs = append(jobs, func() (AblationRow, error) {
			row := AblationRow{App: spec.Name}
			base, err := sharedCache.prepareWithOptions(spec, baseOpts)
			if err != nil {
				return row, err
			}
			optz, err := sharedCache.prepareWithOptions(spec, optOpts)
			if err != nil {
				return row, err
			}
			row.BaseARs = len(base.prog.Annotated.ARs)
			row.OptARs = len(optz.prog.Annotated.ARs)
			os := optz.prog.Annotated.OptStats
			row.Benign, row.Deduped, row.Coalesced = os.Benign, os.Deduped, os.Coalesced

			kps := func(res *vm.Result) float64 {
				secs := float64(res.Ticks) / 1e6
				return float64(res.Stats.KernelEntries()) / secs / 1e3
			}
			armed := func(res *vm.Result) uint64 {
				return res.Stats.MonitoredARs + res.Stats.MissedARs
			}
			res, err := base.run(base.config(o, kernel.Prevention, kernel.OptBase, false))
			if err != nil {
				return row, err
			}
			row.BaseKps, row.BaseArmed = kps(res), armed(res)
			res, err = optz.run(optz.config(o, kernel.Prevention, kernel.OptBase, false))
			if err != nil {
				return row, err
			}
			row.OptKps, row.OptArmed = kps(res), armed(res)

			// Figure 7 training on the base build.
			cfg := base.config(o, kernel.Prevention, kernel.OptOptimized, false)
			tr, err := core.Train(base.prog, cfg, iterations, nil)
			if err != nil {
				return row, err
			}
			row.TrainedFPs = tr.NewFPs
			for _, n := range tr.NewFPs {
				row.TrainedFPSum += n
			}
			row.TrainedWLSize = len(tr.Whitelist.IDs())

			// Residual false positives: unique violated ARs in one run under
			// each whitelist. Like Table 7, a violation is the datum — runs
			// that stop early still count.
			countFP := func(wl *core.RunConfig) (int, error) {
				res, err := core.Run(base.prog, *wl)
				if err != nil {
					return 0, err
				}
				unique := map[int]bool{}
				for _, v := range res.Violations {
					unique[v.ARID] = true
				}
				return len(unique), nil
			}
			trainedCfg := base.config(o, kernel.Prevention, kernel.OptOptimized, false)
			trainedCfg.Whitelist = tr.Whitelist
			if row.TrainedResidFP, err = countFP(&trainedCfg); err != nil {
				return row, err
			}
			staticWL, err := base.prog.StaticWhitelist(spec.FlagVars...)
			if err != nil {
				return row, err
			}
			row.StaticWLSize = len(staticWL.IDs())
			staticCfg := base.config(o, kernel.Prevention, kernel.OptOptimized, false)
			staticCfg.Whitelist = staticWL
			if row.StaticFP, err = countFP(&staticCfg); err != nil {
				return row, err
			}
			return row, nil
		})
	}
	return runJobs(o.parallelism(), jobs)
}

// FormatAblation renders the ablation rows.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: trained vs. static (lockset) whitelist, and the annotation optimizer\n")
	fmt.Fprintf(&b, "%-10s | %5s %5s %-16s | %9s %9s | %9s %9s\n",
		"App", "ARs", "ARs'", "(-ben/-dup/-coal)", "Kcross/s", "Kcross'/s", "armed", "armed'")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s | %5d %5d %-16s | %9.0f %9.0f | %9d %9d\n",
			r.App, r.BaseARs, r.OptARs,
			fmt.Sprintf("(-%d/-%d/-%d)", r.Benign, r.Deduped, r.Coalesced),
			r.BaseKps, r.OptKps, r.BaseArmed, r.OptArmed)
	}
	fmt.Fprintf(&b, "\n%-10s | %7s %7s %7s | %7s %7s %7s\n",
		"App", "trainFP", "wl", "residFP", "static", "wl", "FP")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s | %7d %7d %7d | %7s %7d %7d   iters=%v\n",
			r.App, r.TrainedFPSum, r.TrainedWLSize, r.TrainedResidFP,
			"", r.StaticWLSize, r.StaticFP, r.TrainedFPs)
	}
	return b.String()
}
