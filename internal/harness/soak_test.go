package harness_test

import (
	"reflect"
	"strings"
	"testing"

	"kivati/internal/corpusgen"
	"kivati/internal/harness"
)

// TestSoakAcceptance is the checked-in acceptance-scale soak: 200 programs
// (40 under -short) with the ring-buffer decoys on, every injected bug
// detected under vanilla exploration, zero benign false positives, zero
// prevention-mode divergences — the precision/recall contract the soak
// gate enforces, asserted per category.
func TestSoakAcceptance(t *testing.T) {
	opts := harness.SoakOptions{Programs: 200, Schedules: 40, Seed: 1, Arrays: true}
	if testing.Short() {
		opts.Programs = 40
		opts.Schedules = 24
	}
	rep, err := harness.RunSoak(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corpus != opts.Programs {
		t.Errorf("corpus size = %d, want %d", rep.Corpus, opts.Programs)
	}
	if rep.Bugs+rep.Benign != rep.Corpus {
		t.Errorf("bugs(%d) + benign(%d) != corpus(%d)", rep.Bugs, rep.Benign, rep.Corpus)
	}
	if rep.PreventionDivergences != 0 {
		t.Errorf("ENGINE BUG: %d prevention-mode schedules diverged", rep.PreventionDivergences)
	}
	if rep.FalsePositives != 0 {
		t.Errorf("%d benign decoys flagged (precision = %.3f, want 1.0)", rep.FalsePositives, rep.Precision)
	}
	if rep.Missed != 0 {
		t.Errorf("%d/%d injected bugs never diverged (recall = %.3f, want 1.0)", rep.Missed, rep.Bugs, rep.Recall)
	}
	if rep.Precision != 1.0 || rep.Recall != 1.0 {
		t.Errorf("precision = %.3f recall = %.3f, want 1.0/1.0", rep.Precision, rep.Recall)
	}
	if err := rep.Gate(true); err != nil {
		t.Errorf("strict gate rejected a clean report: %v", err)
	}

	// Per-category breakdown: all five categories populated, perfect
	// precision/recall in each, counts summing to the aggregates.
	if len(rep.Categories) != len(corpusgen.Categories()) {
		t.Fatalf("%d category rows, want %d", len(rep.Categories), len(corpusgen.Categories()))
	}
	programs, detected := 0, 0
	for _, c := range rep.Categories {
		programs += c.Programs
		detected += c.Detected
		if c.Programs == 0 {
			t.Errorf("category %s: no programs", c.Category)
		}
		if c.Precision != 1.0 || c.Recall != 1.0 {
			t.Errorf("category %s: precision = %.3f recall = %.3f, want 1.0/1.0",
				c.Category, c.Precision, c.Recall)
		}
		if c.Category == string(corpusgen.CatBenign) {
			if c.Detected != 0 || c.VanillaDivergences != 0 {
				t.Errorf("benign category counts divergences: %+v", c)
			}
		} else if c.Detected != c.Programs {
			t.Errorf("category %s: detected %d/%d", c.Category, c.Detected, c.Programs)
		}
	}
	if programs != rep.Corpus || detected != rep.Detected {
		t.Errorf("category rows sum to %d programs / %d detected, want %d / %d",
			programs, detected, rep.Corpus, rep.Detected)
	}
	if s := rep.String(); !strings.Contains(s, "recall=1.000") {
		t.Errorf("report text missing aggregate recall: %q", s)
	}
}

// TestSoakDeterministicAcrossParallelism: timings aside, a soak report is
// identical at 1-way and 8-way program fan-out — campaigns are serial
// inside and every seed derives from (Seed, index).
func TestSoakDeterministicAcrossParallelism(t *testing.T) {
	opts := harness.SoakOptions{Programs: 12, Schedules: 12, Seed: 6, Arrays: true}
	opts.Parallelism = 1
	serial, err := harness.RunSoak(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 8
	parallel, err := harness.RunSoak(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*harness.SoakReport{serial, parallel} {
		r.TotalSeconds, r.SchedulesPerSec = 0, 0
		for i := range r.Programs {
			r.Programs[i].Seconds = 0
		}
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("soak reports differ between 1-way and 8-way runs:\n1-way: %+v\n8-way: %+v", serial, parallel)
	}
}

// TestSoakGate: the gate's three thresholds in isolation.
func TestSoakGate(t *testing.T) {
	clean := &harness.SoakReport{Bugs: 4, Detected: 4}
	if err := clean.Gate(true); err != nil {
		t.Errorf("clean report rejected: %v", err)
	}
	engine := &harness.SoakReport{PreventionDivergences: 1}
	if err := engine.Gate(false); err == nil || !strings.Contains(err.Error(), "ENGINE BUG") {
		t.Errorf("prevention divergence not flagged as engine bug: %v", err)
	}
	fp := &harness.SoakReport{FalsePositives: 2}
	if err := fp.Gate(false); err == nil || !strings.Contains(err.Error(), "false positives") {
		t.Errorf("false positives not gated: %v", err)
	}
	missed := &harness.SoakReport{Bugs: 4, Detected: 3, Missed: 1}
	if err := missed.Gate(false); err != nil {
		t.Errorf("non-strict gate rejected missed bugs: %v", err)
	}
	if err := missed.Gate(true); err == nil || !strings.Contains(err.Error(), "never diverged") {
		t.Errorf("strict gate ignored missed bugs: %v", err)
	}
}
