package harness

import (
	"fmt"
	"strings"

	"kivati/internal/kernel"
	"kivati/internal/pool"
	"kivati/internal/stats"
	"kivati/internal/vm"
	"kivati/internal/workloads"
)

// The open-loop load driver: the heavy-traffic half of the soak story.
// Where Table 5 reports mean request latency at the workload's baked-in
// arrival rate, the load driver points a seeded open-loop request
// generator (exponential interarrivals drawn from the machine RNG, so the
// arrival schedule is part of the seed) at a server workload and reports
// the latency *distribution* — p50/p95/p99 — per engine configuration.
// Open loop means arrivals do not wait for completions: a slow server
// builds queueing delay into the tail percentiles instead of silently
// throttling the generator, which is exactly the regime a production
// latency gate cares about.

// serverBase maps each server workload to its per-scale-unit request
// count (the generators bake served-request caps into the program text at
// iters(scale, base)).
var serverBase = map[string]int{
	"webstone": 260,
	"tpc-w":    300,
}

// LoadOptions configure one load-driver run.
type LoadOptions struct {
	Workload string // server workload name (default Webstone)
	// Requests is the target request count; the workload is rebuilt at the
	// scale whose baked-in served cap matches (default 240).
	Requests int
	// MeanInterarrival is the open-loop generator's mean gap in ticks
	// (default 900; the Table 5 rate is 1100 for Webstone).
	MeanInterarrival uint64
	Seed             int64
	Cores            int // default 2
	Watchpoints      int // default 4
	MaxTicks         uint64
	Parallelism      int
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Workload == "" {
		o.Workload = "Webstone"
	}
	if o.Requests == 0 {
		o.Requests = 240
	}
	if o.MeanInterarrival == 0 {
		o.MeanInterarrival = 900
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// LoadRow is one configuration's latency distribution.
type LoadRow struct {
	Config   string `json:"config"`
	Requests int    `json:"requests"`
	Ticks    uint64 `json:"ticks"`
	// ThroughputRPS is served requests per simulated second (1 tick = 1 µs).
	ThroughputRPS float64 `json:"throughput_rps"`
	MeanTicks     float64 `json:"mean_ticks"`
	P50           uint64  `json:"p50_ticks"`
	P95           uint64  `json:"p95_ticks"`
	P99           uint64  `json:"p99_ticks"`
	WorstTicks    uint64  `json:"worst_ticks"`
	// OverheadPct is the mean-latency overhead versus the vanilla row.
	OverheadPct float64 `json:"overhead_pct,omitempty"`
}

// LoadReport is the kivati-load/v1 output.
type LoadReport struct {
	Schema           string    `json:"schema"`
	Workload         string    `json:"workload"`
	Requests         int       `json:"requests"`
	MeanInterarrival uint64    `json:"mean_interarrival_ticks"`
	Seed             int64     `json:"seed"`
	Rows             []LoadRow `json:"rows"`
}

// loadConfigs are the engine configurations the driver compares, in row
// order; vanilla is the overhead baseline.
var loadConfigs = []struct {
	name    string
	mode    kernel.Mode
	vanilla bool
}{
	{"vanilla", kernel.Prevention, true},
	{"prevention", kernel.Prevention, false},
	{"bugfinding", kernel.BugFinding, false},
}

// RunLoad drives one server workload under the open-loop generator in
// every configuration and reports per-config latency percentiles. Given a
// seed, the arrival schedule — and therefore the whole report — is
// deterministic.
func RunLoad(opts LoadOptions) (*LoadReport, error) {
	o := opts.withDefaults()
	base, ok := serverBase[strings.ToLower(o.Workload)]
	if !ok {
		return nil, fmt.Errorf("load: %q is not a server workload (want Webstone or TPC-W)", o.Workload)
	}
	// The +0.5 keeps iters' truncation from landing one request short.
	spec, err := workloads.ByName(o.Workload, workloads.Scale((float64(o.Requests)+0.5)/float64(base)))
	if err != nil {
		return nil, err
	}
	a, err := sharedCache.prepare(spec)
	if err != nil {
		return nil, err
	}
	ho := Options{Seed: o.Seed, Cores: o.Cores, Watchpoints: o.Watchpoints, MaxTicks: o.MaxTicks}.defaults()

	jobs := make([]func() (*vm.Result, error), len(loadConfigs))
	for i, lc := range loadConfigs {
		lc := lc
		jobs[i] = func() (*vm.Result, error) {
			cfg := a.config(ho, lc.mode, kernel.OptOptimized, lc.vanilla)
			cfg.Requests = &vm.RequestConfig{
				MeanInterarrival: o.MeanInterarrival,
				Count:            spec.Requests.Count,
			}
			return a.run(cfg)
		}
	}
	results, err := runJobs(pool.Workers(o.Parallelism), jobs)
	if err != nil {
		return nil, err
	}

	rep := &LoadReport{
		Schema:           "kivati-load/v1",
		Workload:         spec.Name,
		Requests:         spec.Requests.Count,
		MeanInterarrival: o.MeanInterarrival,
		Seed:             o.Seed,
	}
	var vanillaMean float64
	for i, res := range results {
		lat := res.Latencies
		row := LoadRow{
			Config:    loadConfigs[i].name,
			Requests:  len(lat),
			Ticks:     res.Ticks,
			MeanTicks: stats.MeanU64(lat),
			P50:       stats.Percentile(lat, 50),
			P95:       stats.Percentile(lat, 95),
			P99:       stats.Percentile(lat, 99),
		}
		for _, l := range lat {
			if l > row.WorstTicks {
				row.WorstTicks = l
			}
		}
		if res.Ticks > 0 {
			row.ThroughputRPS = float64(len(lat)) / float64(res.Ticks) * 1e6
		}
		if i == 0 {
			vanillaMean = row.MeanTicks
		} else if vanillaMean > 0 {
			row.OverheadPct = (row.MeanTicks - vanillaMean) / vanillaMean * 100
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// String renders the latency table.
func (r *LoadReport) String() string {
	var s strings.Builder
	fmt.Fprintf(&s, "load: %s, %d requests, mean interarrival %d ticks, seed %d (open loop)\n",
		r.Workload, r.Requests, r.MeanInterarrival, r.Seed)
	fmt.Fprintf(&s, "%-11s %9s %11s %9s %8s %8s %8s %9s %9s\n",
		"config", "requests", "throughput", "mean", "p50", "p95", "p99", "worst", "overhead")
	for _, row := range r.Rows {
		over := ""
		if row.Config != "vanilla" {
			over = fmt.Sprintf("%+.1f%%", row.OverheadPct)
		}
		fmt.Fprintf(&s, "%-11s %9d %9.0f/s %9.0f %8d %8d %8d %9d %9s\n",
			row.Config, row.Requests, row.ThroughputRPS, row.MeanTicks,
			row.P50, row.P95, row.P99, row.WorstTicks, over)
	}
	return s.String()
}
