package harness

import (
	"fmt"
	"strings"

	"kivati/internal/core"
	"kivati/internal/kernel"
	"kivati/internal/vm"
	"kivati/internal/workloads"
)

// Table7Row is one application's false-positive count and watchpoint trap
// rate under prevention and bug-finding mode.
type Table7Row struct {
	App        string
	PrevFP     int
	PrevTraps  float64 // traps per virtual second
	BugFP      int
	BugTraps   float64
	Violations int
}

// RunTable7 runs the performance workloads (which contain no injected bugs)
// and counts false positives — unique atomic regions with at least one
// violation (§4.2) — plus the watchpoint trap rate. The 10 runs (5 apps x 2
// modes) fan out across the pool.
func RunTable7(o Options) ([]Table7Row, error) {
	o = o.defaults()
	specs := workloads.PerfSuite(workloads.Scale(o.Scale))
	modes := []kernel.Mode{kernel.Prevention, kernel.BugFinding}

	var jobs []func() (*vm.Result, error)
	for _, spec := range specs {
		for _, mode := range modes {
			jobs = append(jobs, func() (*vm.Result, error) {
				a, err := sharedCache.prepare(spec)
				if err != nil {
					return nil, err
				}
				// Unlike the other tables, Table 7 keeps runs that stop
				// early: a violation in prevention mode is the datum, not
				// a failure.
				return core.Run(a.prog, a.config(o, mode, kernel.OptOptimized, false))
			})
		}
	}
	results, err := runJobs(o.parallelism(), jobs)
	if err != nil {
		return nil, err
	}

	measure := func(res *vm.Result) (int, float64, int) {
		unique := map[int]bool{}
		for _, v := range res.Violations {
			unique[v.ARID] = true
		}
		secs := float64(res.Ticks) / 1e6
		return len(unique), float64(res.Stats.Traps) / secs, len(res.Violations)
	}
	var out []Table7Row
	for si, spec := range specs {
		row := Table7Row{App: spec.Name}
		var nv int
		row.PrevFP, row.PrevTraps, nv = measure(results[si*2])
		row.Violations = nv
		row.BugFP, row.BugTraps, _ = measure(results[si*2+1])
		out = append(out, row)
	}
	return out, nil
}

// FormatTable7 renders the false-positive rows.
func FormatTable7(rows []Table7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 7. False positives (unique violated ARs) and watchpoint traps/s\n")
	fmt.Fprintf(&b, "%-10s | %6s %9s | %6s %9s\n", "App", "FP", "Traps/s", "FP", "Traps/s")
	fmt.Fprintf(&b, "%-10s | %16s | %16s\n", "", "prevention", "bug-finding")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s | %6d %9.1f | %6d %9.1f\n",
			r.App, r.PrevFP, r.PrevTraps, r.BugFP, r.BugTraps)
	}
	return b.String()
}

// Table8Row is one application's missed-AR rate with the default four
// watchpoints.
type Table8Row struct {
	App        string
	PrevKps    float64 // thousands of missed ARs per second
	PrevPct    float64 // % of all executed ARs
	BugKps     float64
	BugPct     float64
	MonitoredK float64 // thousands of ARs monitored (context)
}

// RunTable8 measures ARs Kivati could not monitor because all watchpoint
// registers were in use (§3.5); the 10 runs fan out across the pool.
func RunTable8(o Options) ([]Table8Row, error) {
	o = o.defaults()
	specs := workloads.PerfSuite(workloads.Scale(o.Scale))
	modes := []kernel.Mode{kernel.Prevention, kernel.BugFinding}

	var jobs []func() (*vm.Result, error)
	for _, spec := range specs {
		for _, mode := range modes {
			jobs = append(jobs, func() (*vm.Result, error) {
				return runSpec(o, spec, mode, kernel.OptOptimized, false)
			})
		}
	}
	results, err := runJobs(o.parallelism(), jobs)
	if err != nil {
		return nil, err
	}

	measure := func(res *vm.Result) (kps, pct, monK float64) {
		secs := float64(res.Ticks) / 1e6
		missed := float64(res.Stats.MissedARs)
		total := missed + float64(res.Stats.MonitoredARs)
		if total == 0 {
			return 0, 0, 0
		}
		return missed / secs / 1e3, missed / total * 100, float64(res.Stats.MonitoredARs) / 1e3
	}
	var out []Table8Row
	for si, spec := range specs {
		row := Table8Row{App: spec.Name}
		row.PrevKps, row.PrevPct, row.MonitoredK = measure(results[si*2])
		row.BugKps, row.BugPct, _ = measure(results[si*2+1])
		out = append(out, row)
	}
	return out, nil
}

// FormatTable8 renders the missed-AR rows.
func FormatTable8(rows []Table8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 8. Missed ARs (K/s and %% of ARs) with 4 watchpoints\n")
	fmt.Fprintf(&b, "%-10s | %8s %7s | %8s %7s\n", "App", "K/s", "%ARs", "K/s", "%ARs")
	fmt.Fprintf(&b, "%-10s | %16s | %16s\n", "", "prevention", "bug-finding")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s | %8.2f %6.2f%% | %8.2f %6.2f%%\n",
			r.App, r.PrevKps, r.PrevPct, r.BugKps, r.BugPct)
	}
	return b.String()
}

// Table9Result maps each application to its missed-AR percentage for
// watchpoint counts 2..12.
type Table9Result struct {
	Counts []int // the swept watchpoint counts
	Pct    map[string][]float64
	Apps   []string
}

// RunTable9 sweeps the watchpoint register count, the paper's answer to
// "how many registers would be enough?". The 55 runs (5 apps x 11 counts)
// fan out across the pool — the widest fan-out in the harness.
func RunTable9(o Options) (*Table9Result, error) {
	o = o.defaults()
	specs := workloads.PerfSuite(workloads.Scale(o.Scale))
	out := &Table9Result{Pct: map[string][]float64{}}
	for n := 2; n <= 12; n++ {
		out.Counts = append(out.Counts, n)
	}

	var jobs []func() (*vm.Result, error)
	for _, spec := range specs {
		for _, n := range out.Counts {
			oo := o
			oo.Watchpoints = n
			jobs = append(jobs, func() (*vm.Result, error) {
				return runSpec(oo, spec, kernel.Prevention, kernel.OptOptimized, false)
			})
		}
	}
	results, err := runJobs(o.parallelism(), jobs)
	if err != nil {
		return nil, err
	}

	for si, spec := range specs {
		out.Apps = append(out.Apps, spec.Name)
		for ci := range out.Counts {
			res := results[si*len(out.Counts)+ci]
			missed := float64(res.Stats.MissedARs)
			total := missed + float64(res.Stats.MonitoredARs)
			pct := 0.0
			if total > 0 {
				pct = missed / total * 100
			}
			out.Pct[spec.Name] = append(out.Pct[spec.Name], pct)
		}
	}
	return out, nil
}

func (r *Table9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 9. %% of ARs missed vs number of watchpoint registers\n")
	fmt.Fprintf(&b, "%-10s", "App")
	for _, n := range r.Counts {
		fmt.Fprintf(&b, " %7d", n)
	}
	b.WriteString("\n")
	for _, app := range r.Apps {
		fmt.Fprintf(&b, "%-10s", app)
		for _, p := range r.Pct[app] {
			fmt.Fprintf(&b, " %6.2f%%", p)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Figure7Result holds the training curves: new false positives per training
// iteration, for prevention and bug-finding mode.
type Figure7Result struct {
	App        string
	Prevention []int
	BugFinding []int
}

// RunFigure7 reproduces the whitelist training experiment: repeated runs,
// each adding the violated ARs to the whitelist; bug-finding mode surfaces
// more false positives per iteration and converges in fewer iterations.
// Each training campaign is inherently sequential (every iteration feeds
// the next one's whitelist), so the pool parallelizes across the 10
// campaigns (5 apps x 2 modes) rather than within one.
func RunFigure7(o Options, iterations int) ([]Figure7Result, error) {
	o = o.defaults()
	if iterations <= 0 {
		iterations = 7
	}
	// Each training iteration is a shorter run than the Table 3 benchmarks:
	// rare benign violations then surface across iterations rather than all
	// at once, which is what produces the paper's decaying curves.
	specs := workloads.PerfSuite(workloads.Scale(o.Scale * 0.5))
	modes := []kernel.Mode{kernel.Prevention, kernel.BugFinding}

	var jobs []func() ([]int, error)
	for _, spec := range specs {
		for _, mode := range modes {
			jobs = append(jobs, func() ([]int, error) {
				a, err := sharedCache.prepare(spec)
				if err != nil {
					return nil, err
				}
				cfg := a.config(o, mode, kernel.OptOptimized, false)
				if mode == kernel.BugFinding {
					// Training runs are offline: sample pauses aggressively
					// so benign violations surface in fewer iterations.
					cfg.PauseEvery = 64
				}
				tr, err := core.Train(a.prog, cfg, iterations, nil)
				if err != nil {
					return nil, err
				}
				return tr.NewFPs, nil
			})
		}
	}
	results, err := runJobs(o.parallelism(), jobs)
	if err != nil {
		return nil, err
	}

	var out []Figure7Result
	for si, spec := range specs {
		out = append(out, Figure7Result{
			App:        spec.Name,
			Prevention: results[si*2],
			BugFinding: results[si*2+1],
		})
	}
	return out, nil
}

// FormatFigure7 renders the training curves.
func FormatFigure7(rs []Figure7Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7. New false positives per training iteration\n")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-10s prevention: %v\n", r.App, r.Prevention)
		fmt.Fprintf(&b, "%-10s bug-find:   %v\n", "", r.BugFinding)
	}
	return b.String()
}
