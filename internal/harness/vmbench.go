package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"kivati/internal/core"
	"kivati/internal/kernel"
	"kivati/internal/workloads"
)

// VMBenchSchema versions the BENCH_vm.json format.
const VMBenchSchema = "kivati-bench-vm/v1"

// VMBenchRow is one workload × configuration interpreter measurement.
// Instructions, KernelCrossings and Ticks are deterministic (virtual
// clock); Seconds and MInstrPerSec are wall-clock and machine-dependent.
type VMBenchRow struct {
	Workload         string  `json:"workload"`
	Config           string  `json:"config"` // "vanilla" or "prevention-optimized"
	Instructions     uint64  `json:"instructions"`
	Seconds          float64 `json:"seconds"`
	MInstrPerSec     float64 `json:"minstr_per_sec"`
	FastResidencyPct float64 `json:"fast_residency_pct"`
	KernelCrossings  uint64  `json:"kernel_crossings"`
	Ticks            uint64  `json:"ticks"`
}

// VMBenchReport is the interpreter-throughput report written to
// BENCH_vm.json by `kivati-bench -bench-out`.
type VMBenchReport struct {
	Schema string       `json:"schema"`
	Rows   []VMBenchRow `json:"rows"`
}

// RunVMBench measures raw interpreter throughput for every workload in the
// performance suite under two configurations: vanilla (watchpoint-free, so
// the fast path should dominate) and prevention with all optimizations
// (watchpoints arm and clear, so the machine oscillates between tiers).
// Runs execute serially — wall-clock throughput is the measurement, so the
// pool would only add scheduler noise.
func RunVMBench(o Options) (*VMBenchReport, error) {
	o = o.defaults()
	rep := &VMBenchReport{Schema: VMBenchSchema}
	for _, spec := range workloads.PerfSuite(workloads.Scale(o.Scale)) {
		a, err := sharedCache.prepare(spec)
		if err != nil {
			return nil, err
		}
		configs := []struct {
			name string
			cfg  core.RunConfig
		}{
			{"vanilla", a.config(o, kernel.Prevention, kernel.OptBase, true)},
			{"prevention-optimized", a.config(o, kernel.Prevention, kernel.OptOptimized, false)},
		}
		for _, cc := range configs {
			start := time.Now()
			res, err := a.run(cc.cfg)
			if err != nil {
				return nil, err
			}
			secs := time.Since(start).Seconds()
			row := VMBenchRow{
				Workload:        spec.Name,
				Config:          cc.name,
				Instructions:    res.Stats.Instructions,
				Seconds:         secs,
				MInstrPerSec:    float64(res.Stats.Instructions) / secs / 1e6,
				KernelCrossings: res.Stats.KernelEntries(),
				Ticks:           res.Ticks,
			}
			if res.Stats.Instructions > 0 {
				row.FastResidencyPct = 100 * float64(res.FastInstructions) / float64(res.Stats.Instructions)
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

func (r *VMBenchReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "VM interpreter throughput (%s)\n", r.Schema)
	fmt.Fprintf(&b, "%-10s %-22s %12s %9s %10s %8s %10s\n",
		"Workload", "Config", "Instr", "Minstr/s", "FastRes%", "Kernel", "Ticks")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-22s %12d %9.2f %10.1f %8d %10d\n",
			row.Workload, row.Config, row.Instructions, row.MInstrPerSec,
			row.FastResidencyPct, row.KernelCrossings, row.Ticks)
	}
	return b.String()
}

// WriteVMBench writes the report as indented JSON.
func WriteVMBench(path string, r *VMBenchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadVMBench loads a baseline report, validating the schema tag.
func ReadVMBench(path string) (*VMBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r VMBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("vmbench: %s: %w", path, err)
	}
	if r.Schema != VMBenchSchema {
		return nil, fmt.Errorf("vmbench: %s: schema %q, want %q", path, r.Schema, VMBenchSchema)
	}
	return &r, nil
}

// CompareVMBench renders current against a baseline, matching rows by
// (workload, config). Deterministic columns (instructions, crossings,
// ticks) are flagged on any change; throughput and residency report the
// relative delta. The comparison is informational — wall-clock numbers
// move with the host — but a large residency drop is the early warning
// that a change demoted the fast path.
func CompareVMBench(baseline, current *VMBenchReport) string {
	base := make(map[string]VMBenchRow, len(baseline.Rows))
	for _, row := range baseline.Rows {
		base[row.Workload+"/"+row.Config] = row
	}
	var b strings.Builder
	fmt.Fprintf(&b, "VM bench vs baseline\n")
	fmt.Fprintf(&b, "%-10s %-22s %10s %10s %s\n",
		"Workload", "Config", "Minstr/s", "FastRes%", "notes")
	for _, row := range current.Rows {
		key := row.Workload + "/" + row.Config
		old, ok := base[key]
		if !ok {
			fmt.Fprintf(&b, "%-10s %-22s %10.2f %10.1f (no baseline row)\n",
				row.Workload, row.Config, row.MInstrPerSec, row.FastResidencyPct)
			continue
		}
		var notes []string
		if old.Instructions != row.Instructions {
			notes = append(notes, fmt.Sprintf("instr %d->%d", old.Instructions, row.Instructions))
		}
		if old.KernelCrossings != row.KernelCrossings {
			notes = append(notes, fmt.Sprintf("crossings %d->%d", old.KernelCrossings, row.KernelCrossings))
		}
		if old.Ticks != row.Ticks {
			notes = append(notes, fmt.Sprintf("ticks %d->%d", old.Ticks, row.Ticks))
		}
		if row.FastResidencyPct < old.FastResidencyPct-5 {
			notes = append(notes, fmt.Sprintf("RESIDENCY DROP %.1f%%->%.1f%%",
				old.FastResidencyPct, row.FastResidencyPct))
		}
		speed := 0.0
		if old.MInstrPerSec > 0 {
			speed = (row.MInstrPerSec - old.MInstrPerSec) / old.MInstrPerSec * 100
		}
		fmt.Fprintf(&b, "%-10s %-22s %10.2f %+9.1f%% %s\n",
			row.Workload, row.Config, row.MInstrPerSec, speed, strings.Join(notes, "; "))
	}
	return b.String()
}
