package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"kivati/internal/core"
	"kivati/internal/kernel"
	"kivati/internal/vm"
	"kivati/internal/workloads"
)

// VMBenchSchema versions the BENCH_vm.json format. v2 added the per-row
// demotion-reason counters; v3 split the unbounded counter into unbounded
// vs checked_overlap (merge-inherited checked blocks) and added the
// ArrayScan workload row; v4 added the decision-point cost columns
// (decisions, ns/decision, same-pick continues, delta-arm vs full-arm
// split) and dropped zero-valued demotion counters from the JSON.
const VMBenchSchema = "kivati-bench-vm/v4"

// VMBenchRow is one workload × configuration interpreter measurement.
// Instructions, KernelCrossings, Ticks and Demotions are deterministic
// (virtual clock); Seconds and MInstrPerSec are wall-clock and
// machine-dependent.
type VMBenchRow struct {
	Workload         string  `json:"workload"`
	Config           string  `json:"config"` // "vanilla" or "prevention-optimized"
	Instructions     uint64  `json:"instructions"`
	Seconds          float64 `json:"seconds"`
	MInstrPerSec     float64 `json:"minstr_per_sec"`
	FastResidencyPct float64 `json:"fast_residency_pct"`
	KernelCrossings  uint64  `json:"kernel_crossings"`
	Ticks            uint64  `json:"ticks"`
	// Decision-point cost accounting. Decisions is deterministic (virtual
	// clock); NsPerDecision is wall-clock. SamePickContinues counts the
	// kernel crossings the same-pick superstep continuation avoided;
	// DeltaArms/FullArms split the watchpoint re-arms at real crossings
	// into incremental delta applications vs full register-file rewrites.
	Decisions         uint64  `json:"decisions,omitempty"`
	NsPerDecision     float64 `json:"ns_per_decision,omitempty"`
	SamePickContinues uint64  `json:"same_pick_continues,omitempty"`
	DeltaArms         uint64  `json:"delta_arms,omitempty"`
	FullArms          uint64  `json:"full_arms,omitempty"`
	// Demotions breaks down why instructions left (or never reached) the
	// unchecked fast path, making a residency regression diagnosable from
	// the row alone. Counters at zero are omitted from the JSON; in
	// particular a vanilla row serializes an empty object here, matching
	// its kernel_crossings: 0 invariant (see DESIGN.md).
	Demotions vm.Demotions `json:"demotions"`
}

// VMBenchReport is the interpreter-throughput report written to
// BENCH_vm.json by `kivati-bench -bench-out`.
type VMBenchReport struct {
	Schema string       `json:"schema"`
	Rows   []VMBenchRow `json:"rows"`
}

// vmBenchReps is how many times each workload × configuration runs; the
// fastest wall-clock repetition is reported. The runs are deterministic
// and only ~tens of milliseconds at default scale, so a single measurement
// is dominated by cache and page-fault warmup; best-of-N reports the
// interpreter's actual speed.
const vmBenchReps = 3

// RunVMBench measures raw interpreter throughput for every workload in the
// bench suite (the five paper analogs plus the array-heavy ArrayScan) under
// two configurations: vanilla (watchpoint-free, so the fast path should
// dominate) and prevention with all optimizations (watchpoints arm and
// clear, so the machine oscillates between execution modes). Runs execute
// serially — wall-clock throughput is the measurement, so the pool would
// only add scheduler noise.
func RunVMBench(o Options) (*VMBenchReport, error) {
	o = o.defaults()
	rep := &VMBenchReport{Schema: VMBenchSchema}
	for _, spec := range workloads.BenchSuite(workloads.Scale(o.Scale)) {
		a, err := sharedCache.prepare(spec)
		if err != nil {
			return nil, err
		}
		configs := []struct {
			name string
			cfg  core.RunConfig
		}{
			{"vanilla", a.config(o, kernel.Prevention, kernel.OptBase, true)},
			{"prevention-optimized", a.config(o, kernel.Prevention, kernel.OptOptimized, false)},
		}
		for _, cc := range configs {
			var res *vm.Result
			var secs float64
			for rep := 0; rep < vmBenchReps; rep++ {
				start := time.Now()
				r, err := a.run(cc.cfg)
				if err != nil {
					return nil, err
				}
				if s := time.Since(start).Seconds(); res == nil || s < secs {
					res, secs = r, s
				}
			}
			row := VMBenchRow{
				Workload:          spec.Name,
				Config:            cc.name,
				Instructions:      res.Stats.Instructions,
				Seconds:           secs,
				MInstrPerSec:      float64(res.Stats.Instructions) / secs / 1e6,
				KernelCrossings:   res.Stats.KernelEntries(),
				Ticks:             res.Ticks,
				Decisions:         res.Decisions,
				SamePickContinues: res.SamePickContinues,
				DeltaArms:         res.DeltaArms,
				FullArms:          res.FullArms,
				Demotions:         res.Demotions,
			}
			if res.Stats.Instructions > 0 {
				row.FastResidencyPct = 100 * float64(res.FastInstructions) / float64(res.Stats.Instructions)
			}
			if res.Decisions > 0 {
				row.NsPerDecision = secs * 1e9 / float64(res.Decisions)
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

func (r *VMBenchReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "VM interpreter throughput (%s)\n", r.Schema)
	fmt.Fprintf(&b, "%-10s %-22s %12s %9s %10s %8s %10s %9s %7s %11s  %s\n",
		"Workload", "Config", "Instr", "Minstr/s", "FastRes%", "Kernel", "Ticks",
		"Decisions", "ns/dec", "arms(d/f)",
		"Demotions(overlap/unbounded/merged/timer/trap)")
	for _, row := range r.Rows {
		d := row.Demotions
		fmt.Fprintf(&b, "%-10s %-22s %12d %9.2f %10.1f %8d %10d %9d %7.0f %5d/%-5d  %d/%d/%d/%d/%d\n",
			row.Workload, row.Config, row.Instructions, row.MInstrPerSec,
			row.FastResidencyPct, row.KernelCrossings, row.Ticks,
			row.Decisions, row.NsPerDecision, row.DeltaArms, row.FullArms,
			d.ArmedOverlap, d.Unbounded, d.CheckedOverlap, d.TimerEdge, d.WouldTrap)
	}
	return b.String()
}

// WriteVMBench writes the report as indented JSON.
func WriteVMBench(path string, r *VMBenchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadVMBench loads a baseline report, validating the schema tag.
func ReadVMBench(path string) (*VMBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r VMBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("vmbench: %s: %w", path, err)
	}
	if r.Schema != VMBenchSchema {
		return nil, fmt.Errorf("vmbench: %s: schema %q, want %q", path, r.Schema, VMBenchSchema)
	}
	return &r, nil
}

// CompareVMBench renders current against a baseline, matching rows by
// (workload, config). Deterministic columns (instructions, crossings,
// ticks) are flagged on any change; throughput and residency report the
// relative delta. The comparison is informational — wall-clock numbers
// move with the host — but a large residency drop is the early warning
// that a change demoted the fast path.
func CompareVMBench(baseline, current *VMBenchReport) string {
	base := make(map[string]VMBenchRow, len(baseline.Rows))
	for _, row := range baseline.Rows {
		base[row.Workload+"/"+row.Config] = row
	}
	var b strings.Builder
	fmt.Fprintf(&b, "VM bench vs baseline\n")
	fmt.Fprintf(&b, "%-10s %-22s %10s %10s %s\n",
		"Workload", "Config", "Minstr/s", "FastRes%", "notes")
	for _, row := range current.Rows {
		key := row.Workload + "/" + row.Config
		old, ok := base[key]
		if !ok {
			fmt.Fprintf(&b, "%-10s %-22s %10.2f %10.1f (no baseline row)\n",
				row.Workload, row.Config, row.MInstrPerSec, row.FastResidencyPct)
			continue
		}
		var notes []string
		if old.Instructions != row.Instructions {
			notes = append(notes, fmt.Sprintf("instr %d->%d", old.Instructions, row.Instructions))
		}
		if old.KernelCrossings != row.KernelCrossings {
			notes = append(notes, fmt.Sprintf("crossings %d->%d", old.KernelCrossings, row.KernelCrossings))
		}
		if old.Ticks != row.Ticks {
			notes = append(notes, fmt.Sprintf("ticks %d->%d", old.Ticks, row.Ticks))
		}
		if row.FastResidencyPct < old.FastResidencyPct-5 {
			notes = append(notes, fmt.Sprintf("RESIDENCY DROP %.1f%%->%.1f%%",
				old.FastResidencyPct, row.FastResidencyPct))
		}
		speed := 0.0
		if old.MInstrPerSec > 0 {
			speed = (row.MInstrPerSec - old.MInstrPerSec) / old.MInstrPerSec * 100
		}
		fmt.Fprintf(&b, "%-10s %-22s %10.2f %+9.1f%% %s\n",
			row.Workload, row.Config, row.MInstrPerSec, speed, strings.Join(notes, "; "))
	}
	return b.String()
}

// VMBenchGateMaxDrop is the residency regression budget GateVMBench
// enforces, in percentage points.
const VMBenchGateMaxDrop = 5.0

// GateVMBench is the enforcing counterpart of CompareVMBench: it returns an
// error if any prevention-optimized row regresses fast residency by more
// than VMBenchGateMaxDrop percentage points against the baseline. Residency
// is a deterministic virtual-clock quantity, so — unlike the wall-clock
// throughput columns — it can gate CI without host noise. Rows absent from
// the baseline pass (new workloads need a refreshed baseline, not a red
// build).
func GateVMBench(baseline, current *VMBenchReport) error {
	base := make(map[string]VMBenchRow, len(baseline.Rows))
	for _, row := range baseline.Rows {
		base[row.Workload+"/"+row.Config] = row
	}
	var fails []string
	for _, row := range current.Rows {
		if row.Config != "prevention-optimized" {
			continue
		}
		old, ok := base[row.Workload+"/"+row.Config]
		if !ok {
			continue
		}
		if row.FastResidencyPct < old.FastResidencyPct-VMBenchGateMaxDrop {
			fails = append(fails, fmt.Sprintf(
				"%s: prevention-optimized fast residency %.1f%% vs baseline %.1f%%",
				row.Workload, row.FastResidencyPct, old.FastResidencyPct))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("vmbench gate: residency regression over %.0f points:\n  %s",
			VMBenchGateMaxDrop, strings.Join(fails, "\n  "))
	}
	return nil
}
