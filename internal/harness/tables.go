package harness

import (
	"fmt"
	"strings"

	"kivati/internal/hw"
	"kivati/internal/kernel"
	"kivati/internal/stats"
	"kivati/internal/vm"
	"kivati/internal/workloads"
)

// Table1 reproduces the hardware watchpoint survey.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. Hardware watchpoint support survey\n")
	fmt.Fprintf(&b, "%-8s %-8s %-7s %s\n", "Arch", "Support", "Number", "Type")
	for _, a := range hw.Survey {
		sup := "No"
		if a.Support {
			sup = "Yes"
		}
		fmt.Fprintf(&b, "%-8s %-8s %-7d %s\n", a.Arch, sup, a.Num, a.Timing)
	}
	return b.String()
}

// Table2 lists the applications and workloads.
func Table2(o Options) string {
	o = o.defaults()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2. Applications and workloads\n")
	fmt.Fprintf(&b, "%-10s %s\n", "App", "Workload")
	for _, spec := range workloads.PerfSuite(workloads.Scale(o.Scale)) {
		fmt.Fprintf(&b, "%-10s %s\n", spec.Name, spec.Description)
	}
	return b.String()
}

// runSpec is one pool job: prepare the workload through the build cache
// (compiling at most once per process) and execute one configuration.
func runSpec(o Options, spec *workloads.Spec, mode kernel.Mode, opt kernel.OptLevel, vanilla bool) (*vm.Result, error) {
	a, err := sharedCache.prepare(spec)
	if err != nil {
		return nil, err
	}
	return a.run(a.config(o, mode, opt, vanilla))
}

// Table3Cell is one overhead measurement: prevention / bug-finding.
type Table3Cell struct {
	PrevPct float64
	BugPct  float64
}

// Table3Row is one application's Table 3 row.
type Table3Row struct {
	App          string
	VanillaTicks uint64
	Base         Table3Cell
	NullSyscall  Table3Cell
	SyncVars     Table3Cell
	Optimized    Table3Cell
}

// Table3Result holds all rows plus the geometric-mean summary.
type Table3Result struct {
	Rows    []Table3Row
	GeoMean Table3Row // App = "geo. mean"; VanillaTicks unused
}

// RunTable3 measures runtime overhead for every application under the four
// optimization levels, in prevention and bug-finding mode, against the
// vanilla binary. The 45 independent runs (5 apps x [1 vanilla + 4 levels x
// 2 modes]) fan out across the worker pool; results are slotted by job
// index so the aggregation below sees them in the exact serial order.
func RunTable3(o Options) (*Table3Result, error) {
	o = o.defaults()
	specs := workloads.PerfSuite(workloads.Scale(o.Scale))
	levels := []kernel.OptLevel{kernel.OptBase, kernel.OptNullSyscall, kernel.OptSyncVars, kernel.OptOptimized}
	modes := []kernel.Mode{kernel.Prevention, kernel.BugFinding}
	perApp := 1 + len(levels)*len(modes)

	var jobs []func() (*vm.Result, error)
	for _, spec := range specs {
		jobs = append(jobs, func() (*vm.Result, error) {
			return runSpec(o, spec, kernel.Prevention, kernel.OptBase, true)
		})
		for _, opt := range levels {
			for _, mode := range modes {
				jobs = append(jobs, func() (*vm.Result, error) {
					return runSpec(o, spec, mode, opt, false)
				})
			}
		}
	}
	results, err := runJobs(o.parallelism(), jobs)
	if err != nil {
		return nil, err
	}

	out := &Table3Result{}
	sums := map[kernel.OptLevel][2][]float64{}
	for si, spec := range specs {
		van := results[si*perApp]
		row := Table3Row{App: spec.Name, VanillaTicks: van.Ticks}
		for oi, opt := range levels {
			var cell Table3Cell
			for mi := range modes {
				res := results[si*perApp+1+oi*len(modes)+mi]
				pct := stats.OverheadPct(van.Ticks, res.Ticks)
				if mi == 0 {
					cell.PrevPct = pct
				} else {
					cell.BugPct = pct
				}
				s := sums[opt]
				// Geometric means need positive ratios; store the
				// runtime ratio, convert back when summarizing.
				s[mi] = append(s[mi], float64(res.Ticks)/float64(van.Ticks))
				sums[opt] = s
			}
			switch opt {
			case kernel.OptBase:
				row.Base = cell
			case kernel.OptNullSyscall:
				row.NullSyscall = cell
			case kernel.OptSyncVars:
				row.SyncVars = cell
			case kernel.OptOptimized:
				row.Optimized = cell
			}
		}
		out.Rows = append(out.Rows, row)
	}
	gm := Table3Row{App: "geo. mean"}
	cell := func(opt kernel.OptLevel) Table3Cell {
		s := sums[opt]
		return Table3Cell{
			PrevPct: (stats.GeoMean(s[0]) - 1) * 100,
			BugPct:  (stats.GeoMean(s[1]) - 1) * 100,
		}
	}
	gm.Base = cell(kernel.OptBase)
	gm.NullSyscall = cell(kernel.OptNullSyscall)
	gm.SyncVars = cell(kernel.OptSyncVars)
	gm.Optimized = cell(kernel.OptOptimized)
	out.GeoMean = gm
	return out, nil
}

func (r *Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3. Runtime overhead (%%, prevention / bug-finding) vs vanilla\n")
	fmt.Fprintf(&b, "%-10s %12s %15s %15s %15s %15s\n",
		"App", "Runtime(Mt)", "Base", "Null syscall", "SyncVars", "Optimized")
	cell := func(c Table3Cell) string {
		return fmt.Sprintf("%5.1f /%5.1f", c.PrevPct, c.BugPct)
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %12.2f %15s %15s %15s %15s\n",
			row.App, float64(row.VanillaTicks)/1e6,
			cell(row.Base), cell(row.NullSyscall), cell(row.SyncVars), cell(row.Optimized))
	}
	fmt.Fprintf(&b, "%-10s %12s %15s %15s %15s %15s\n",
		r.GeoMean.App, "",
		cell(r.GeoMean.Base), cell(r.GeoMean.NullSyscall), cell(r.GeoMean.SyncVars), cell(r.GeoMean.Optimized))
	return b.String()
}

// Table4Row is one application's kernel-crossing rates in thousands per
// (virtual) second under three optimization levels.
type Table4Row struct {
	App               string
	BaseKps           float64
	SyncVarsKps       float64
	SyncVarsReduction float64 // % vs base
	OptKps            float64
	OptReduction      float64
}

// Table4Result holds the rows and the average reduction.
type Table4Result struct {
	Rows         []Table4Row
	AvgReduction float64 // optimized vs base, mean across apps
}

// RunTable4 counts kernel domain crossings (begin/end/clear syscalls plus
// remote traps) per virtual second in prevention mode. The 15 runs (5 apps
// x 3 levels) fan out across the pool.
func RunTable4(o Options) (*Table4Result, error) {
	o = o.defaults()
	specs := workloads.PerfSuite(workloads.Scale(o.Scale))
	levels := []kernel.OptLevel{kernel.OptBase, kernel.OptSyncVars, kernel.OptOptimized}

	var jobs []func() (*vm.Result, error)
	for _, spec := range specs {
		for _, opt := range levels {
			jobs = append(jobs, func() (*vm.Result, error) {
				return runSpec(o, spec, kernel.Prevention, opt, false)
			})
		}
	}
	results, err := runJobs(o.parallelism(), jobs)
	if err != nil {
		return nil, err
	}

	kps := func(res *vm.Result) float64 {
		secs := float64(res.Ticks) / 1e6 // 1 tick = 1 µs
		return float64(res.Stats.KernelEntries()) / secs / 1e3
	}
	out := &Table4Result{}
	var reductions []float64
	for si, spec := range specs {
		base := kps(results[si*len(levels)])
		sync := kps(results[si*len(levels)+1])
		optz := kps(results[si*len(levels)+2])
		row := Table4Row{
			App: spec.Name, BaseKps: base,
			SyncVarsKps: sync, SyncVarsReduction: (base - sync) / base * 100,
			OptKps: optz, OptReduction: (base - optz) / base * 100,
		}
		reductions = append(reductions, row.OptReduction)
		out.Rows = append(out.Rows, row)
	}
	out.AvgReduction = stats.Mean(reductions)
	return out, nil
}

func (r *Table4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4. Kernel crossings (K/s): base, +syncvars, +all optimizations\n")
	fmt.Fprintf(&b, "%-10s %10s %18s %18s\n", "App", "Base", "SyncVars", "Optimized")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %10.0f %10.0f (%3.0f%%) %10.0f (%3.0f%%)\n",
			row.App, row.BaseKps, row.SyncVarsKps, row.SyncVarsReduction,
			row.OptKps, row.OptReduction)
	}
	fmt.Fprintf(&b, "average reduction (optimized vs base): %.0f%%\n", r.AvgReduction)
	return b.String()
}

// Table5Row is one server application's request latency (mean, in ticks =
// µs) under vanilla, prevention and bug-finding.
type Table5Row struct {
	App         string
	Vanilla     float64
	Prevention  float64
	PrevPct     float64
	BugFinding  float64
	BugPct      float64
	NumRequests int
}

// RunTable5 measures request latency for the two server workloads under the
// fully optimized configuration; the 6 runs fan out across the pool.
func RunTable5(o Options) ([]Table5Row, error) {
	o = o.defaults()
	var servers []*workloads.Spec
	for _, spec := range workloads.PerfSuite(workloads.Scale(o.Scale)) {
		if spec.Server {
			servers = append(servers, spec)
		}
	}

	var jobs []func() (*vm.Result, error)
	for _, spec := range servers {
		for _, cfg := range []struct {
			mode    kernel.Mode
			vanilla bool
		}{{kernel.Prevention, true}, {kernel.Prevention, false}, {kernel.BugFinding, false}} {
			jobs = append(jobs, func() (*vm.Result, error) {
				return runSpec(o, spec, cfg.mode, kernel.OptOptimized, cfg.vanilla)
			})
		}
	}
	results, err := runJobs(o.parallelism(), jobs)
	if err != nil {
		return nil, err
	}

	var out []Table5Row
	for si, spec := range servers {
		mean := func(i int) (float64, int) {
			res := results[si*3+i]
			return stats.MeanU64(res.Latencies), len(res.Latencies)
		}
		van, n := mean(0)
		prev, _ := mean(1)
		bug, _ := mean(2)
		out = append(out, Table5Row{
			App: spec.Name, Vanilla: van,
			Prevention: prev, PrevPct: (prev - van) / van * 100,
			BugFinding: bug, BugPct: (bug - van) / van * 100,
			NumRequests: n,
		})
	}
	return out, nil
}

// FormatTable5 renders the latency rows.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5. Request latency (ticks), vanilla vs prevention vs bug-finding\n")
	fmt.Fprintf(&b, "%-10s %10s %18s %18s %6s\n", "App", "Vanilla", "Prevention", "Bug", "reqs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10.0f %10.0f (%4.1f%%) %10.0f (%4.1f%%) %6d\n",
			r.App, r.Vanilla, r.Prevention, r.PrevPct, r.BugFinding, r.BugPct, r.NumRequests)
	}
	return b.String()
}
