// Package whitelist implements Kivati's benign-AR whitelist (§3.2, §3.4):
// a set of AR IDs whose begin_atomic/end_atomic return from user space
// without entering the kernel. The whitelist is seeded from synchronization
// variables (optimization 4), grown by training runs (§4.2, Figure 7), and
// — for long-running processes — periodically re-read from its backing
// source so developers can ship whitelist updates without restarts.
package whitelist

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Whitelist is a set of benign AR IDs.
type Whitelist struct {
	ids map[int]bool
	// Source, if non-nil, is re-read by Reload (the periodic re-read a
	// long-running process performs).
	Source func() (io.Reader, error)
}

// New returns an empty whitelist.
func New() *Whitelist { return &Whitelist{ids: map[int]bool{}} }

// FromIDs returns a whitelist containing the given AR IDs.
func FromIDs(ids ...int) *Whitelist {
	w := New()
	for _, id := range ids {
		w.ids[id] = true
	}
	return w
}

// Contains reports whether AR id is whitelisted.
func (w *Whitelist) Contains(id int) bool { return w.ids[id] }

// Add inserts an AR ID.
func (w *Whitelist) Add(id int) { w.ids[id] = true }

// Len returns the number of whitelisted ARs.
func (w *Whitelist) Len() int { return len(w.ids) }

// IDs returns the sorted AR IDs.
func (w *Whitelist) IDs() []int {
	out := make([]int, 0, len(w.ids))
	for id := range w.ids {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Merge adds every ID of other.
func (w *Whitelist) Merge(other *Whitelist) {
	for id := range other.ids {
		w.ids[id] = true
	}
}

// Reload re-reads the whitelist from its source, replacing the current
// contents. Used to pick up developer-shipped updates during execution.
// With no source configured, Reload is a no-op.
func (w *Whitelist) Reload() error {
	if w.Source == nil {
		return nil
	}
	r, err := w.Source()
	if err != nil {
		return err
	}
	fresh, err := Read(r)
	if err != nil {
		return err
	}
	w.ids = fresh.ids
	return nil
}

// Read parses the whitelist file format: one AR ID per line, '#' comments
// and blank lines ignored.
func Read(r io.Reader) (*Whitelist, error) {
	w := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		id, err := strconv.Atoi(line)
		if err != nil || id < 1 {
			return nil, fmt.Errorf("whitelist: line %d: invalid AR id %q", lineNo, line)
		}
		w.ids[id] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return w, nil
}

// Write renders the whitelist in file format.
func (w *Whitelist) Write(out io.Writer) error {
	if _, err := fmt.Fprintln(out, "# Kivati AR whitelist: one benign AR id per line"); err != nil {
		return err
	}
	for _, id := range w.IDs() {
		if _, err := fmt.Fprintln(out, id); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a whitelist from a file and configures it to Reload from the
// same path.
func Load(path string) (*Whitelist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	w, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("whitelist: %s: %w", path, err)
	}
	w.Source = func() (io.Reader, error) {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return strings.NewReader(string(b)), nil
	}
	return w, nil
}

// Save writes the whitelist to a file.
func (w *Whitelist) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := w.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
