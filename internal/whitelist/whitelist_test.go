package whitelist

import (
	"io"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	w := New()
	if w.Len() != 0 || w.Contains(1) {
		t.Error("empty whitelist not empty")
	}
	w.Add(3)
	w.Add(3)
	w.Add(1)
	if w.Len() != 2 || !w.Contains(3) || !w.Contains(1) || w.Contains(2) {
		t.Errorf("whitelist state wrong: %v", w.IDs())
	}
	if got := w.IDs(); got[0] != 1 || got[1] != 3 {
		t.Errorf("IDs not sorted: %v", got)
	}
}

func TestFromIDsAndMerge(t *testing.T) {
	a := FromIDs(1, 2)
	b := FromIDs(2, 5)
	a.Merge(b)
	if a.Len() != 3 || !a.Contains(5) {
		t.Errorf("merge wrong: %v", a.IDs())
	}
}

func TestReadFormat(t *testing.T) {
	src := `# header comment
1
2   # trailing comment

17
`
	w, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 17}
	got := w.IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %d", i, got[i])
		}
	}
}

func TestReadErrors(t *testing.T) {
	for _, src := range []string{"abc", "0", "-4", "1.5"} {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("Read(%q): want error", src)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := func(ids []uint16) bool {
		w := New()
		for _, id := range ids {
			w.Add(int(id) + 1)
		}
		var b strings.Builder
		if err := w.Write(&b); err != nil {
			return false
		}
		w2, err := Read(strings.NewReader(b.String()))
		if err != nil {
			return false
		}
		if w2.Len() != w.Len() {
			return false
		}
		for _, id := range w.IDs() {
			if !w2.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSaveLoadReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wl.txt")
	w := FromIDs(4, 9)
	if err := w.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Contains(4) || !loaded.Contains(9) || loaded.Len() != 2 {
		t.Errorf("loaded = %v", loaded.IDs())
	}
	// Developer ships an update: the periodic re-read picks it up (§3.2).
	updated := FromIDs(4, 9, 21)
	if err := updated.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Reload(); err != nil {
		t.Fatal(err)
	}
	if !loaded.Contains(21) {
		t.Error("Reload did not pick up the shipped update")
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Error("Load of missing file: want error")
	}
}

func TestReloadNoSource(t *testing.T) {
	w := FromIDs(1)
	if err := w.Reload(); err != nil {
		t.Errorf("Reload without source must be a no-op: %v", err)
	}
	if !w.Contains(1) {
		t.Error("Reload without source lost contents")
	}
}

func TestReloadReplaces(t *testing.T) {
	w := FromIDs(1, 2, 3)
	w.Source = func() (io.Reader, error) { return strings.NewReader("7\n"), nil }
	if err := w.Reload(); err != nil {
		t.Fatal(err)
	}
	if w.Contains(1) || !w.Contains(7) || w.Len() != 1 {
		t.Errorf("Reload did not replace contents: %v", w.IDs())
	}
}
