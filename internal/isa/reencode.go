package isa

import "fmt"

// EncodeInstr re-encodes a decoded instruction to its binary form, the
// exact inverse of Decode: for any decodable byte sequence,
// EncodeInstr(Decode(code, pc)) reproduces code[pc:pc+Len] byte for byte.
// That inverse property is what makes the boundary table trustworthy — an
// instruction the undo engine rolls back over must occupy exactly the bytes
// the decoder claims it does — and it is fuzzed in FuzzISARoundTrip.
func EncodeInstr(in Instr) ([]byte, error) {
	n, err := opLen(in.Op)
	if err != nil {
		return nil, err
	}
	b := make([]byte, 0, n)
	put8 := func(v uint8) { b = append(b, v) }
	put32 := func(v uint32) { b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
	put64 := func(v uint64) { put32(uint32(v)); put32(uint32(v >> 32)) }

	op := in.Op
	put8(uint8(op))
	switch {
	case op == OpNOP, op == OpHLT, op == OpRET:
	case op == OpMOVQ:
		put8(in.Rd)
		put64(uint64(in.Imm))
	case op == OpMOVL:
		put8(in.Rd)
		put32(uint32(int32(in.Imm)))
	case op == OpMOVR:
		put8(in.Rd)
		put8(in.Ra)
	case op >= OpADD && op <= OpCGE:
		put8(in.Rd)
		put8(in.Ra)
		put8(in.Rb)
	case op == OpADDI:
		put8(in.Rd)
		put8(in.Ra)
		put32(uint32(int32(in.Imm)))
	default:
		switch {
		case isWidth(op, OpLD):
			put8(in.Rd)
			put32(in.Addr)
		case isWidth(op, OpST):
			put8(in.Ra)
			put32(in.Addr)
		case isWidth(op, OpLDR):
			put8(in.Rd)
			put8(in.Ra)
			put32(uint32(int32(in.Imm)))
		case isWidth(op, OpSTR):
			put8(in.Ra) // base
			put8(in.Rb) // source value
			put32(uint32(int32(in.Imm)))
		case isWidth(op, OpPUSHM):
			put32(in.Addr)
		case op == OpPUSH:
			put8(in.Ra)
		case op == OpPOP:
			put8(in.Rd)
		case op == OpJMP, op == OpCALL, op == OpCALLM:
			put32(in.Addr)
		case op == OpJZ, op == OpJNZ:
			put8(in.Ra)
			put32(in.Addr)
		case op == OpSYS:
			put8(uint8(in.Imm))
		}
	}
	if len(b) != n {
		return nil, fmt.Errorf("isa: encoded %v to %d bytes, want %d", op, len(b), n)
	}
	return b, nil
}

func isWidth(op, base Op) bool {
	_, ok := widthGroup(op, base)
	return ok
}
