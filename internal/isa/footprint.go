package isa

// Static address footprints for the VM's watchpoint-aware fast path.
//
// A Footprint conservatively over-approximates the set of data-memory
// addresses a straight-line instruction run may access. Absolute accesses
// (globals) accumulate into one address interval. Stack accesses are
// expressed as offset intervals relative to the SP or FP value *at entry to
// the run*, so the VM can evaluate them against a thread's live registers at
// a block edge; the tracking survives the compiler's stack idioms
// (PUSH/POP/CALL/RET, `ADDI SP, SP, imm` frame adjustment, and the
// `MOVR FP, SP` / `MOVR SP, FP` prologue/epilogue re-basing). Accesses
// through any other base register — pointers, array indexing — escape to
// Unbounded, as does any run in which SP or FP is overwritten with an
// untrackable value.
//
// The soundness contract consumed by the fast path: every address an
// execution of the run touches before its first control-transfer out of
// straight-line code is contained in the footprint (evaluated at the run's
// entry register state), or the footprint is Unbounded.

// Footprint summarizes the memory addresses a straight-line run may touch.
// All three intervals are half-open and empty when Lo == Hi.
type Footprint struct {
	AbsLo, AbsHi uint32 // absolute addresses (globals, PUSHM/CALLM operands)
	SPLo, SPHi   int64  // offsets from the entry stack pointer
	FPLo, FPHi   int64  // offsets from the entry frame pointer
	// Unbounded marks a run with an access the analysis cannot bound: a
	// load/store through a general register base, or a stack access after
	// SP/FP was overwritten with an untracked value.
	Unbounded bool
}

// Empty reports whether the footprint provably touches no memory.
func (f *Footprint) Empty() bool {
	return !f.Unbounded && f.AbsHi == f.AbsLo && f.SPHi == f.SPLo && f.FPHi == f.FPLo
}

func (f *Footprint) addAbs(addr uint32, sz uint8) {
	end := addr + uint32(sz)
	if f.AbsHi == f.AbsLo {
		f.AbsLo, f.AbsHi = addr, end
		return
	}
	if addr < f.AbsLo {
		f.AbsLo = addr
	}
	if end > f.AbsHi {
		f.AbsHi = end
	}
}

func (f *Footprint) addSP(lo, hi int64) {
	if hi <= lo {
		return
	}
	if f.SPHi == f.SPLo {
		f.SPLo, f.SPHi = lo, hi
		return
	}
	if lo < f.SPLo {
		f.SPLo = lo
	}
	if hi > f.SPHi {
		f.SPHi = hi
	}
}

func (f *Footprint) addFP(lo, hi int64) {
	if hi <= lo {
		return
	}
	if f.FPHi == f.FPLo {
		f.FPLo, f.FPHi = lo, hi
		return
	}
	if lo < f.FPLo {
		f.FPLo = lo
	}
	if hi > f.FPHi {
		f.FPHi = hi
	}
}

// AddAbsRange widens the absolute interval to include the half-open byte
// range [lo, hi). Exported for analyses (internal/valrange) that prove
// bounds for accesses InstrFootprint alone cannot track.
func (f *Footprint) AddAbsRange(lo, hi uint32) {
	if hi <= lo {
		return
	}
	if f.AbsHi == f.AbsLo {
		f.AbsLo, f.AbsHi = lo, hi
		return
	}
	if lo < f.AbsLo {
		f.AbsLo = lo
	}
	if hi > f.AbsHi {
		f.AbsHi = hi
	}
}

// AddSPRange widens the entry-SP-relative interval to include [lo, hi).
func (f *Footprint) AddSPRange(lo, hi int64) { f.addSP(lo, hi) }

// AddFPRange widens the entry-FP-relative interval to include [lo, hi).
func (f *Footprint) AddFPRange(lo, hi int64) { f.addFP(lo, hi) }

// InstrFootprint returns the footprint of a single instruction's own memory
// accesses, relative to the register state just before it executes. It
// mirrors the access set the legacy interpreter records for the post-commit
// watchpoint check (vm.step): the instruction-fetch does not count.
func InstrFootprint(in Instr) Footprint {
	var f Footprint
	op := in.Op
	switch {
	case op >= OpLD && op < OpLD+4, op >= OpST && op < OpST+4:
		f.addAbs(in.Addr, in.Sz)
	case op >= OpLDR && op < OpLDR+4, op >= OpSTR && op < OpSTR+4:
		switch in.Ra {
		case RegSP:
			f.addSP(in.Imm, in.Imm+int64(in.Sz))
		case RegFP:
			f.addFP(in.Imm, in.Imm+int64(in.Sz))
		default:
			f.Unbounded = true
		}
	case op == OpPUSH, op == OpCALL:
		f.addSP(-8, 0)
	case op == OpPOP, op == OpRET:
		f.addSP(0, 8)
	case op >= OpPUSHM && op < OpPUSHM+4:
		f.addAbs(in.Addr, in.Sz)
		f.addSP(-8, 0)
	case op == OpCALLM:
		f.addAbs(in.Addr, 8) // the §3.3 indirect-call target read
		f.addSP(-8, 0)
	}
	return f
}

// regEffect expresses the post-execution value of register reg (RegSP or
// RegFP) in terms of the pre-execution registers: post = pre[src] + delta.
// ok is false when the instruction overwrites reg with a value the analysis
// does not track.
func regEffect(in Instr, reg uint8) (src uint8, delta int64, ok bool) {
	op := in.Op
	if reg == RegSP {
		// Implicit hardware SP updates.
		switch {
		case op == OpPUSH, op == OpCALL, op == OpCALLM,
			op >= OpPUSHM && op < OpPUSHM+4:
			return RegSP, -8, true
		case op == OpRET:
			return RegSP, 8, true
		case op == OpPOP:
			if in.Rd == RegSP {
				return 0, 0, false // POP SP: final value comes from memory
			}
			return RegSP, 8, true
		}
	}
	switch {
	case op == OpMOVR && in.Rd == reg:
		if in.Ra == RegSP || in.Ra == RegFP {
			return in.Ra, 0, true // prologue/epilogue re-basing
		}
		return 0, 0, false
	case op == OpADDI && in.Rd == reg:
		if in.Ra == RegSP || in.Ra == RegFP {
			return in.Ra, in.Imm, true // frame adjustment
		}
		return 0, 0, false
	case writesReg(in, reg):
		return 0, 0, false
	}
	return reg, 0, true
}

// writesReg reports whether in writes register reg through an explicit
// destination field (MOVR/ADDI destinations are classified by regEffect
// before this is consulted).
func writesReg(in Instr, reg uint8) bool {
	op := in.Op
	switch {
	case op == OpMOVQ, op == OpMOVL,
		op >= OpADD && op <= OpCGE,
		op >= OpLD && op < OpLD+4,
		op >= OpLDR && op < OpLDR+4,
		op == OpPOP:
		return in.Rd == reg
	}
	return false
}

// Rebase re-expresses a footprint valid after instruction in (a suffix run's
// footprint) relative to the register state before in, so a reverse walk can
// union it with in's own accesses. Stack intervals shift by the
// instruction's SP/FP delta; the MOVR SP,FP / MOVR FP,SP re-basings move an
// interval between the SP and FP components; an untrackable overwrite of a
// register with a non-empty interval escapes to Unbounded.
func (f Footprint) Rebase(in Instr) Footprint {
	out := Footprint{AbsLo: f.AbsLo, AbsHi: f.AbsHi, Unbounded: f.Unbounded}
	move := func(lo, hi int64, reg uint8) {
		if hi <= lo {
			return
		}
		src, d, ok := regEffect(in, reg)
		if !ok {
			out.Unbounded = true
			return
		}
		if src == RegSP {
			out.addSP(lo+d, hi+d)
		} else {
			out.addFP(lo+d, hi+d)
		}
	}
	move(f.SPLo, f.SPHi, RegSP)
	move(f.FPLo, f.FPHi, RegFP)
	return out
}

// UnionWith merges g into f (interval hulls; Unbounded absorbs).
func (f Footprint) UnionWith(g Footprint) Footprint {
	f.Unbounded = f.Unbounded || g.Unbounded
	if g.AbsHi > g.AbsLo {
		if f.AbsHi == f.AbsLo {
			f.AbsLo, f.AbsHi = g.AbsLo, g.AbsHi
		} else {
			if g.AbsLo < f.AbsLo {
				f.AbsLo = g.AbsLo
			}
			if g.AbsHi > f.AbsHi {
				f.AbsHi = g.AbsHi
			}
		}
	}
	f.addSP(g.SPLo, g.SPHi)
	f.addFP(g.FPLo, g.FPHi)
	return f
}

// DecodeProgram decodes a whole binary image: decoded is indexed by PC
// (entries at non-start offsets have Len == 0) and starts lists the
// instruction-start PCs in ascending order.
func DecodeProgram(code []byte) (decoded []Instr, starts []uint32, err error) {
	decoded = make([]Instr, len(code))
	for pc := uint32(0); int(pc) < len(code); {
		in, err := Decode(code, pc)
		if err != nil {
			return nil, nil, err
		}
		decoded[pc] = in
		starts = append(starts, pc)
		pc += uint32(in.Len)
	}
	return decoded, starts, nil
}
