package isa

import "fmt"

// Encoder assembles instructions into a binary code stream. It supports
// labels with back-patching so the compiler can emit forward branches.
type Encoder struct {
	code    []byte
	patches []patch
	labels  map[string]uint32
}

type patch struct {
	at    uint32 // offset of the 32-bit address field to patch
	label string
}

// NewEncoder returns an empty Encoder.
func NewEncoder() *Encoder { return &Encoder{labels: make(map[string]uint32)} }

// PC returns the current emission offset.
func (e *Encoder) PC() uint32 { return uint32(len(e.code)) }

func (e *Encoder) put8(v uint8) { e.code = append(e.code, v) }
func (e *Encoder) put32(v uint32) {
	e.code = append(e.code, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (e *Encoder) put64(v uint64) {
	e.put32(uint32(v))
	e.put32(uint32(v >> 32))
}

// Label defines label name at the current PC.
func (e *Encoder) Label(name string) {
	e.labels[name] = e.PC()
}

// Finish resolves all pending label references and returns the code. It
// returns an error if any referenced label was never defined.
func (e *Encoder) Finish() ([]byte, error) {
	for _, p := range e.patches {
		tgt, ok := e.labels[p.label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q", p.label)
		}
		e.code[p.at] = byte(tgt)
		e.code[p.at+1] = byte(tgt >> 8)
		e.code[p.at+2] = byte(tgt >> 16)
		e.code[p.at+3] = byte(tgt >> 24)
	}
	e.patches = nil
	return e.code, nil
}

func (e *Encoder) ref(label string) {
	e.patches = append(e.patches, patch{at: e.PC(), label: label})
	e.put32(0)
}

// LabelPC returns the resolved PC of a defined label.
func (e *Encoder) LabelPC(name string) (uint32, bool) {
	pc, ok := e.labels[name]
	return pc, ok
}

// Nop emits a NOP.
func (e *Encoder) Nop() { e.put8(uint8(OpNOP)) }

// Hlt emits a HLT.
func (e *Encoder) Hlt() { e.put8(uint8(OpHLT)) }

// MovImm emits the shortest move-immediate for v into rd.
func (e *Encoder) MovImm(rd uint8, v int64) {
	if v == int64(int32(v)) {
		e.put8(uint8(OpMOVL))
		e.put8(rd)
		e.put32(uint32(int32(v)))
		return
	}
	e.put8(uint8(OpMOVQ))
	e.put8(rd)
	e.put64(uint64(v))
}

// MovLabel emits MOVL rd, <pc of label>, resolved at Finish. Used to
// materialize function entry addresses (e.g. for spawn).
func (e *Encoder) MovLabel(rd uint8, label string) {
	e.put8(uint8(OpMOVL))
	e.put8(rd)
	e.ref(label)
}

// MovReg emits MOVR rd, rs.
func (e *Encoder) MovReg(rd, rs uint8) {
	e.put8(uint8(OpMOVR))
	e.put8(rd)
	e.put8(rs)
}

// ALU emits a three-register ALU or comparison instruction.
func (e *Encoder) ALU(op Op, rd, ra, rb uint8) {
	if op < OpADD || op > OpCGE {
		panic(fmt.Sprintf("isa: ALU called with %v", op))
	}
	e.put8(uint8(op))
	e.put8(rd)
	e.put8(ra)
	e.put8(rb)
}

// AddImm emits ADDI rd, ra, imm.
func (e *Encoder) AddImm(rd, ra uint8, imm int32) {
	e.put8(uint8(OpADDI))
	e.put8(rd)
	e.put8(ra)
	e.put32(uint32(imm))
}

// Load emits LD{size} rd, [addr].
func (e *Encoder) Load(rd uint8, addr uint32, size int) {
	op, err := WidthOp(OpLD, size)
	if err != nil {
		panic(err)
	}
	e.put8(uint8(op))
	e.put8(rd)
	e.put32(addr)
}

// Store emits ST{size} [addr], rs.
func (e *Encoder) Store(addr uint32, rs uint8, size int) {
	op, err := WidthOp(OpST, size)
	if err != nil {
		panic(err)
	}
	e.put8(uint8(op))
	e.put8(rs)
	e.put32(addr)
}

// LoadReg emits LDR{size} rd, [rb+off].
func (e *Encoder) LoadReg(rd, rb uint8, off int32, size int) {
	op, err := WidthOp(OpLDR, size)
	if err != nil {
		panic(err)
	}
	e.put8(uint8(op))
	e.put8(rd)
	e.put8(rb)
	e.put32(uint32(off))
}

// StoreReg emits STR{size} [rb+off], rs.
func (e *Encoder) StoreReg(rb uint8, off int32, rs uint8, size int) {
	op, err := WidthOp(OpSTR, size)
	if err != nil {
		panic(err)
	}
	e.put8(uint8(op))
	e.put8(rb)
	e.put8(rs)
	e.put32(uint32(off))
}

// Push emits PUSH rs.
func (e *Encoder) Push(rs uint8) {
	e.put8(uint8(OpPUSH))
	e.put8(rs)
}

// Pop emits POP rd.
func (e *Encoder) Pop(rd uint8) {
	e.put8(uint8(OpPOP))
	e.put8(rd)
}

// PushMem emits PUSHM{size} [addr]: a memory-to-memory move that reads addr
// and writes the value to the stack. This is the instruction that exercises
// the prevention engine's "remote read landed in memory" path.
func (e *Encoder) PushMem(addr uint32, size int) {
	op, err := WidthOp(OpPUSHM, size)
	if err != nil {
		panic(err)
	}
	e.put8(uint8(op))
	e.put32(addr)
}

// Jmp emits JMP to a label.
func (e *Encoder) Jmp(label string) {
	e.put8(uint8(OpJMP))
	e.ref(label)
}

// Jz emits JZ rs, label.
func (e *Encoder) Jz(rs uint8, label string) {
	e.put8(uint8(OpJZ))
	e.put8(rs)
	e.ref(label)
}

// Jnz emits JNZ rs, label.
func (e *Encoder) Jnz(rs uint8, label string) {
	e.put8(uint8(OpJNZ))
	e.put8(rs)
	e.ref(label)
}

// Call emits CALL to a label.
func (e *Encoder) Call(label string) {
	e.put8(uint8(OpCALL))
	e.ref(label)
}

// CallMem emits CALLM [addr]: an indirect call that reads the target PC from
// memory, then pushes the return address. The memory read can hit a
// watchpoint, which is the paper's §3.3 call-instruction special case.
func (e *Encoder) CallMem(addr uint32) {
	e.put8(uint8(OpCALLM))
	e.put32(addr)
}

// Ret emits RET.
func (e *Encoder) Ret() { e.put8(uint8(OpRET)) }

// Sys emits SYS n.
func (e *Encoder) Sys(n uint8) {
	e.put8(uint8(OpSYS))
	e.put8(n)
}

// Disassemble decodes all of code into printable lines ("pc: mnemonic").
func Disassemble(code []byte) ([]string, error) {
	var out []string
	for pc := uint32(0); int(pc) < len(code); {
		in, err := Decode(code, pc)
		if err != nil {
			return out, err
		}
		out = append(out, fmt.Sprintf("%06x: %s", pc, in))
		pc += uint32(in.Len)
	}
	return out, nil
}
