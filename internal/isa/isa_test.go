package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustFinish(t *testing.T, e *Encoder) []byte {
	t.Helper()
	code, err := e.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return code
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.MovImm(1, 42)
	e.MovImm(2, 1<<40) // forces MOVQ
	e.MovReg(3, 1)
	e.ALU(OpADD, 4, 1, 2)
	e.AddImm(5, 4, -7)
	e.Load(6, 0x1000, 8)
	e.Store(0x1008, 6, 4)
	e.LoadReg(7, RegFP, -16, 8)
	e.StoreReg(RegFP, -24, 7, 8)
	e.Push(1)
	e.Pop(2)
	e.PushMem(0x1000, 8)
	e.Label("next")
	e.Jmp("next")
	e.Jz(1, "next")
	e.Jnz(1, "next")
	e.Call("next")
	e.CallMem(0x2000)
	e.Ret()
	e.Sys(SysBeginAtomic)
	e.Hlt()
	code := mustFinish(t, e)

	want := []struct {
		op  Op
		str string
	}{
		{OpMOVL, "MOVL r1, 42"},
		{OpMOVQ, "MOVQ r2, 1099511627776"},
		{OpMOVR, "MOVR r3, r1"},
		{OpADD, "ADD r4, r1, r2"},
		{OpADDI, "ADDI r5, r4, -7"},
		{OpLD + 3, "LD8 r6, [0x1000]"},
		{OpST + 2, "ST4 [0x1008], r6"},
		{OpLDR + 3, "LDR8 r7, [r15-16]"},
		{OpSTR + 3, "STR8 [r15-24], r7"},
		{OpPUSH, "PUSH r1"},
		{OpPOP, "POP r2"},
		{OpPUSHM + 3, "PUSHM8 [0x1000]"},
		{OpJMP, ""},
		{OpJZ, ""},
		{OpJNZ, ""},
		{OpCALL, ""},
		{OpCALLM, "CALLM [0x2000]"},
		{OpRET, "RET"},
		{OpSYS, "SYS begin_atomic"},
		{OpHLT, "HLT"},
	}
	pc := uint32(0)
	for i, w := range want {
		in, err := Decode(code, pc)
		if err != nil {
			t.Fatalf("Decode at instr %d (pc %#x): %v", i, pc, err)
		}
		if in.Op != w.op {
			t.Errorf("instr %d: got op %v, want %v", i, in.Op, w.op)
		}
		if w.str != "" && in.String() != w.str {
			t.Errorf("instr %d: got %q, want %q", i, in.String(), w.str)
		}
		pc += uint32(in.Len)
	}
	if int(pc) != len(code) {
		t.Errorf("decoded %d bytes, code has %d", pc, len(code))
	}
}

func TestVariableLengths(t *testing.T) {
	// The ISA must be genuinely variable length for the undo engine's
	// boundary table to be necessary.
	e := NewEncoder()
	e.Hlt()               // 1 byte
	e.Push(1)             // 2 bytes
	e.MovReg(1, 2)        // 3 bytes
	e.ALU(OpADD, 1, 2, 3) // 4 bytes
	e.PushMem(0, 8)       // 5 bytes
	e.Load(1, 0, 8)       // 6 bytes
	e.AddImm(1, 2, 3)     // 7 bytes
	e.MovImm(1, 1<<40)    // 10 bytes
	code := mustFinish(t, e)
	wantLens := []uint8{1, 2, 3, 4, 5, 6, 7, 10}
	pc := uint32(0)
	seen := map[uint8]bool{}
	for i, w := range wantLens {
		in, err := Decode(code, pc)
		if err != nil {
			t.Fatalf("Decode %d: %v", i, err)
		}
		if in.Len != w {
			t.Errorf("instr %d: length %d, want %d", i, in.Len, w)
		}
		seen[in.Len] = true
		pc += uint32(in.Len)
	}
	if len(seen) < 5 {
		t.Errorf("only %d distinct instruction lengths; ISA not variable-length enough", len(seen))
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{0xff}, 0); err == nil {
		t.Error("unknown opcode: want error")
	}
	if _, err := Decode([]byte{byte(OpMOVQ), 1, 2}, 0); err == nil {
		t.Error("truncated MOVQ: want error")
	}
	if _, err := Decode(nil, 0); err == nil {
		t.Error("empty code: want error")
	}
	if _, err := Decode([]byte{byte(OpNOP)}, 5); err == nil {
		t.Error("pc out of bounds: want error")
	}
}

func TestWidthOp(t *testing.T) {
	for _, base := range []Op{OpLD, OpST, OpLDR, OpSTR, OpPUSHM} {
		for _, sz := range []int{1, 2, 4, 8} {
			op, err := WidthOp(base, sz)
			if err != nil {
				t.Fatalf("WidthOp(%v, %d): %v", base, sz, err)
			}
			if got := 1 << (op & 3); got != sz {
				t.Errorf("WidthOp(%v, %d) = %v which encodes width %d", base, sz, op, got)
			}
		}
		if _, err := WidthOp(base, 3); err == nil {
			t.Errorf("WidthOp(%v, 3): want error", base)
		}
	}
	if _, err := WidthOp(OpADD, 4); err == nil {
		t.Error("WidthOp(OpADD, 4): want error")
	}
}

func TestAccessesMemory(t *testing.T) {
	yes := []Op{OpLD, OpLD + 3, OpST, OpST + 3, OpLDR + 2, OpSTR + 1, OpPUSH, OpPOP, OpPUSHM, OpCALL, OpCALLM, OpRET}
	no := []Op{OpNOP, OpHLT, OpMOVQ, OpMOVL, OpMOVR, OpADD, OpCGE, OpADDI, OpJMP, OpJZ, OpJNZ, OpSYS}
	for _, op := range yes {
		if !AccessesMemory(op) {
			t.Errorf("AccessesMemory(%v) = false, want true", op)
		}
	}
	for _, op := range no {
		if AccessesMemory(op) {
			t.Errorf("AccessesMemory(%v) = true, want false", op)
		}
	}
}

func TestPreprocessBoundaryTable(t *testing.T) {
	e := NewEncoder()
	e.Label("f")
	e.MovImm(1, 5) // no access
	ld := e.PC()
	e.Load(2, 0x1000, 8) // access
	afterLD := e.PC()
	e.ALU(OpADD, 2, 2, 1)
	st := e.PC()
	e.Store(0x1000, 2, 8) // access
	afterST := e.PC()
	e.Ret()
	code := mustFinish(t, e)
	fpc, _ := e.LabelPC("f")

	bt, err := Preprocess(code, []uint32{fpc})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	if got, ok := bt.PrevAccess(afterLD); !ok || got != ld {
		t.Errorf("PrevAccess(afterLD) = %#x,%v; want %#x,true", got, ok, ld)
	}
	if got, ok := bt.PrevAccess(afterST); !ok || got != st {
		t.Errorf("PrevAccess(afterST) = %#x,%v; want %#x,true", got, ok, st)
	}
	// The ALU instruction is not memory-accessing: its next-PC must be absent.
	if _, ok := bt.PrevAccess(st); ok {
		t.Error("PrevAccess for non-access instruction should be absent")
	}
	if !bt.IsFuncEntry(fpc) {
		t.Error("IsFuncEntry(f) = false")
	}
	if bt.IsFuncEntry(fpc + 1) {
		t.Error("IsFuncEntry(f+1) = true")
	}
	// RET is memory-accessing (reads return address).
	if bt.NumAccessInstrs() != 3 {
		t.Errorf("NumAccessInstrs = %d, want 3 (LD, ST, RET)", bt.NumAccessInstrs())
	}
}

func TestPreprocessBadCode(t *testing.T) {
	if _, err := Preprocess([]byte{0xff, 0xff}, nil); err == nil {
		t.Error("Preprocess of garbage: want error")
	}
}

// TestDecodeNeverPanics is a property test: Decode must return an error, not
// panic, on arbitrary byte streams at arbitrary offsets.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(code []byte, pc uint16) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Decode panicked: %v", r)
			}
		}()
		in, err := Decode(code, uint32(pc))
		if err == nil && int(pc)+int(in.Len) > len(code) {
			t.Errorf("Decode returned instruction overrunning code: pc=%d len=%d code=%d", pc, in.Len, len(code))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestEncoderDecodeProperty: every instruction the Encoder can emit decodes
// back to consistent fields.
func TestEncoderImmediateRoundTrip(t *testing.T) {
	f := func(rd uint8, v int64) bool {
		rd %= NumRegs
		e := NewEncoder()
		e.MovImm(rd, v)
		code, err := e.Finish()
		if err != nil {
			return false
		}
		in, err := Decode(code, 0)
		if err != nil {
			return false
		}
		return in.Rd == rd && in.Imm == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisassemble(t *testing.T) {
	e := NewEncoder()
	e.MovImm(0, 1)
	e.Label("l")
	e.Sys(SysExit)
	e.Jmp("l")
	code := mustFinish(t, e)
	lines, err := Disassemble(code)
	if err != nil {
		t.Fatalf("Disassemble: %v", err)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %v", len(lines), lines)
	}
	if !strings.Contains(lines[1], "SYS exit") {
		t.Errorf("line 1 = %q, want SYS exit", lines[1])
	}
}

func TestUndefinedLabel(t *testing.T) {
	e := NewEncoder()
	e.Jmp("nowhere")
	if _, err := e.Finish(); err == nil {
		t.Error("Finish with undefined label: want error")
	}
}

func TestSysName(t *testing.T) {
	if SysName(SysBeginAtomic) != "begin_atomic" {
		t.Errorf("SysName(SysBeginAtomic) = %q", SysName(SysBeginAtomic))
	}
	if SysName(99) != "sys99" {
		t.Errorf("SysName(99) = %q", SysName(99))
	}
}

// TestExhaustiveOpcodeLengths decodes one instance of every defined opcode
// and checks decode length consistency against a zero-padded buffer.
func TestExhaustiveOpcodeLengths(t *testing.T) {
	ops := []Op{OpNOP, OpHLT, OpMOVQ, OpMOVL, OpMOVR,
		OpADD, OpSUB, OpMUL, OpDIV, OpMOD, OpAND, OpOR, OpXOR, OpSHL, OpSHR,
		OpCEQ, OpCNE, OpCLT, OpCLE, OpCGT, OpCGE, OpADDI,
		OpPUSH, OpPOP, OpJMP, OpJZ, OpJNZ, OpCALL, OpCALLM, OpRET, OpSYS}
	for _, base := range []Op{OpLD, OpST, OpLDR, OpSTR, OpPUSHM} {
		for w := Op(0); w < 4; w++ {
			ops = append(ops, base+w)
		}
	}
	for _, op := range ops {
		buf := make([]byte, 16)
		buf[0] = byte(op)
		in, err := Decode(buf, 0)
		if err != nil {
			t.Errorf("Decode(%v): %v", op, err)
			continue
		}
		if in.Op != op {
			t.Errorf("Decode(%v) yielded op %v", op, in.Op)
		}
		if in.Len == 0 || in.Len > 10 {
			t.Errorf("%v: length %d", op, in.Len)
		}
		if in.String() == "" {
			t.Errorf("%v: empty disassembly", op)
		}
	}
}
