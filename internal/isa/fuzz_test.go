package isa

import (
	"bytes"
	"testing"
)

// fuzzSeedCode assembles a representative instruction stream covering every
// opcode family, used both as a fuzz seed and as a direct round-trip case.
func fuzzSeedCode(t testing.TB) []byte {
	e := NewEncoder()
	e.Nop()
	e.MovImm(0, 42)    // MOVL
	e.MovImm(1, 1<<40) // MOVQ
	e.MovReg(2, 1)
	e.ALU(OpADD, 3, 0, 1)
	e.ALU(OpCGE, 4, 3, 0)
	e.AddImm(5, 3, -7)
	for _, sz := range []int{1, 2, 4, 8} {
		e.Load(6, 0x1000, sz)
		e.Store(0x1008, 6, sz)
		e.LoadReg(7, RegFP, -16, sz)
		e.StoreReg(RegFP, -24, 7, sz)
		e.PushMem(0x1010, sz)
	}
	e.Push(8)
	e.Pop(9)
	e.Label("loop")
	e.Jnz(9, "loop")
	e.Jz(9, "loop")
	e.Jmp("loop")
	e.Call("loop")
	e.CallMem(0x2000)
	e.Sys(SysYield)
	e.Ret()
	e.Hlt()
	code, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return code
}

// FuzzISARoundTrip checks the encoder/decoder inverse property on arbitrary
// byte streams: every decodable instruction must re-encode byte-identically
// (and therefore re-decode to the same Instr). The undo engine's backwards
// PC walk is only sound if instruction boundaries are exactly what the
// decoder claims, which this property pins down.
func FuzzISARoundTrip(f *testing.F) {
	f.Add(fuzzSeedCode(f))
	f.Add([]byte{uint8(OpNOP), uint8(OpRET), uint8(OpHLT)})
	f.Add([]byte{uint8(OpSYS), SysBeginAtomic, uint8(OpSYS), SysEndAtomic})
	f.Add([]byte{uint8(OpMOVQ), 3, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, code []byte) {
		if len(code) > 1<<16 {
			return
		}
		for pc := uint32(0); int(pc) < len(code); {
			in, err := Decode(code, pc)
			if err != nil {
				return // undecodable tail: nothing to round-trip
			}
			if in.Len == 0 {
				t.Fatalf("pc %#x: decoded zero-length instruction %v", pc, in)
			}
			enc, err := EncodeInstr(in)
			if err != nil {
				t.Fatalf("pc %#x: decoded %v but cannot re-encode: %v", pc, in, err)
			}
			orig := code[pc : pc+uint32(in.Len)]
			if !bytes.Equal(enc, orig) {
				t.Fatalf("pc %#x: %v re-encodes to % x, original % x", pc, in, enc, orig)
			}
			again, err := Decode(enc, 0)
			if err != nil {
				t.Fatalf("pc %#x: re-encoded bytes do not decode: %v", pc, err)
			}
			if again != in {
				t.Fatalf("pc %#x: re-decode mismatch: %+v != %+v", pc, again, in)
			}
			pc += uint32(in.Len)
		}
	})
}

// TestEncodeInstrMatchesEncoder cross-checks EncodeInstr against the
// assembling Encoder over the full seed stream.
func TestEncodeInstrMatchesEncoder(t *testing.T) {
	code := fuzzSeedCode(t)
	var rebuilt []byte
	for pc := uint32(0); int(pc) < len(code); {
		in, err := Decode(code, pc)
		if err != nil {
			t.Fatalf("pc %#x: %v", pc, err)
		}
		enc, err := EncodeInstr(in)
		if err != nil {
			t.Fatalf("pc %#x: %v", pc, err)
		}
		rebuilt = append(rebuilt, enc...)
		pc += uint32(in.Len)
	}
	if !bytes.Equal(rebuilt, code) {
		t.Fatal("instruction-by-instruction re-encoding does not reproduce the stream")
	}
}

// TestEncodeInstrRejectsUnknownOp: an opcode outside the ISA is an error,
// not a silent emission.
func TestEncodeInstrRejectsUnknownOp(t *testing.T) {
	if _, err := EncodeInstr(Instr{Op: 0xee}); err == nil {
		t.Error("EncodeInstr accepted an unknown opcode")
	}
}
