package isa

import "fmt"

// BoundaryTable is the result of the paper's binary pre-processing pass
// (§3.3). Because instructions are variable length, the kernel cannot move
// the program counter back a fixed amount after a trap-after-access
// watchpoint fires. The table records, for every instruction that can access
// data memory, the mapping from the PC of the instruction *following* it
// back to the PC of the instruction itself. Subroutine entry points are
// recorded separately to handle the CALLM special case: after an indirect
// call whose memory read trapped, the reported PC is the callee's first
// instruction, and the call site must be recovered from the return address
// on the stack.
type BoundaryTable struct {
	// prev maps next-PC -> PC of the memory-accessing instruction that
	// ends right before it.
	prev map[uint32]uint32
	// entries is the set of subroutine entry PCs.
	entries map[uint32]bool
}

// CallMLen is the encoded length of the CALLM instruction, used to step back
// from a return address to the call site.
const CallMLen = 5

// Preprocess linearly scans the binary and builds the boundary table. It is
// the analog of the paper's pre-processing pass over the x86 binary;
// funcEntries lists the first instruction of every subroutine (produced by
// the compiler, or by symbol-table extraction for a stripped binary).
func Preprocess(code []byte, funcEntries []uint32) (*BoundaryTable, error) {
	t := &BoundaryTable{
		prev:    make(map[uint32]uint32),
		entries: make(map[uint32]bool, len(funcEntries)),
	}
	for _, pc := range funcEntries {
		t.entries[pc] = true
	}
	for pc := uint32(0); int(pc) < len(code); {
		in, err := Decode(code, pc)
		if err != nil {
			return nil, fmt.Errorf("isa: preprocess: %w", err)
		}
		next := pc + uint32(in.Len)
		if AccessesMemory(in.Op) {
			t.prev[next] = pc
		}
		pc = next
	}
	return t, nil
}

// PrevAccess returns the PC of the memory-accessing instruction immediately
// preceding nextPC, as recorded by the pre-processing pass.
func (t *BoundaryTable) PrevAccess(nextPC uint32) (uint32, bool) {
	pc, ok := t.prev[nextPC]
	return pc, ok
}

// IsFuncEntry reports whether pc is the first instruction of a subroutine.
func (t *BoundaryTable) IsFuncEntry(pc uint32) bool { return t.entries[pc] }

// NumAccessInstrs returns how many memory-accessing instructions were found.
func (t *BoundaryTable) NumAccessInstrs() int { return len(t.prev) }
