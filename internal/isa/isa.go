// Package isa defines the instruction set of the simulated machine that
// Kivati-protected programs run on.
//
// The ISA is deliberately variable-length encoded: the paper's prevention
// engine must roll the program counter back over the instruction that caused
// a watchpoint trap, and on x86 that is only possible with a pre-computed
// instruction-boundary table because instructions cannot be decoded
// backwards. This package provides the binary encoder, the decoder, a
// disassembler, and the pre-processing pass (Preprocess) that builds the
// boundary table the kernel undo engine consumes.
//
// Machine model: 16 general-purpose 64-bit registers R0..R15. R14 is the
// stack pointer (SP) and R15 the frame pointer (FP) by software convention;
// PUSH/POP/CALL/RET manipulate R14 in hardware. Memory is byte addressable
// with 32-bit addresses; loads and stores come in 1, 2, 4 and 8 byte widths,
// matching the sizes an x86 debug register can watch.
package isa

import "fmt"

// Register aliases fixed by the hardware (PUSH/POP/CALL/RET) and by the
// software calling convention.
const (
	RegSP = 14 // stack pointer, used by PUSH/POP/CALL/RET
	RegFP = 15 // frame pointer (software convention)

	NumRegs = 16
)

// Op is an opcode. Width-parametric memory opcodes reserve four consecutive
// values; the low two bits select log2 of the access width.
type Op uint8

// IsKernelBoundary reports whether the op leaves user-mode straight-line
// execution: it enters the kernel (SYS) or ends the thread (HLT). The VM's
// basic-block fast path must stop before such an instruction.
func (o Op) IsKernelBoundary() bool { return o == OpSYS || o == OpHLT }

// IsControlFlow reports whether the op ends a basic block by redirecting
// the program counter.
func (o Op) IsControlFlow() bool {
	switch o {
	case OpJMP, OpJZ, OpJNZ, OpCALL, OpCALLM, OpRET:
		return true
	}
	return false
}

// Opcode space. Memory opcodes (OpLD, OpST, OpLDR, OpSTR, OpPUSHM) occupy
// aligned groups of four so that op&3 encodes log2(width).
const (
	OpNOP Op = 0x00
	OpHLT Op = 0x01

	OpMOVQ Op = 0x02 // MOVQ rd, imm64
	OpMOVL Op = 0x03 // MOVL rd, imm32 (sign-extended)
	OpMOVR Op = 0x04 // MOVR rd, rs

	// ALU register-register: op rd, ra, rb.
	OpADD Op = 0x08
	OpSUB Op = 0x09
	OpMUL Op = 0x0a
	OpDIV Op = 0x0b
	OpMOD Op = 0x0c
	OpAND Op = 0x0d
	OpOR  Op = 0x0e
	OpXOR Op = 0x0f
	OpSHL Op = 0x10
	OpSHR Op = 0x11

	// Comparisons setting rd to 0/1: op rd, ra, rb.
	OpCEQ Op = 0x12
	OpCNE Op = 0x13
	OpCLT Op = 0x14
	OpCLE Op = 0x15
	OpCGT Op = 0x16
	OpCGE Op = 0x17

	OpADDI Op = 0x18 // ADDI rd, ra, imm32

	// Absolute-address loads/stores (globals): width = 1<<(op&3).
	OpLD Op = 0x20 // +0..3: LD{1,2,4,8} rd, [addr32]
	OpST Op = 0x24 // +0..3: ST{1,2,4,8} [addr32], rs

	// Register-base loads/stores (stack, pointers): width = 1<<(op&3).
	OpLDR Op = 0x28 // +0..3: LDR{1,2,4,8} rd, [rb+off32]
	OpSTR Op = 0x2c // +0..3: STR{1,2,4,8} [rb+off32], rs

	// Stack operations (all 8-byte).
	OpPUSH  Op = 0x30 // PUSH rs
	OpPOP   Op = 0x31 // POP rd
	OpPUSHM Op = 0x34 // +0..3: PUSHM{1,2,4,8} [addr32] — memory-to-stack move

	// Control flow.
	OpJMP   Op = 0x40 // JMP addr32
	OpJZ    Op = 0x41 // JZ rs, addr32
	OpJNZ   Op = 0x42 // JNZ rs, addr32
	OpCALL  Op = 0x43 // CALL addr32 (pushes return PC)
	OpCALLM Op = 0x44 // CALLM [addr32] — indirect call through memory
	OpRET   Op = 0x45

	OpSYS Op = 0x50 // SYS n
)

// Syscall numbers for the SYS instruction. Arguments are passed in R0..R4
// and results returned in R0, mirroring a conventional ABI.
const (
	SysExit        = 0  // exit current thread
	SysBeginAtomic = 1  // R0=AR id, R1=addr, R2=size, R3=watch types, R4=first access type
	SysEndAtomic   = 2  // R0=AR id, R1=second access type
	SysClearAR     = 3  // clear ARs begun at >= current call depth
	SysLock        = 4  // R0=lock addr
	SysUnlock      = 5  // R0=lock addr
	SysYield       = 6  //
	SysSleep       = 7  // R0=ticks
	SysPrint       = 8  // R0=value
	SysSpawn       = 9  // R0=function PC, R1=argument (placed in new thread's R8)
	SysRand        = 10 // R0 <- pseudo-random non-negative value
	SysRecv        = 11 // R0 <- request id (blocks until a request arrives)
	SysSend        = 12 // R0=request id (completes the request)
	SysNanos       = 13 // R0 <- current virtual clock tick
)

// Instr is a decoded instruction.
type Instr struct {
	Op   Op
	Rd   uint8  // destination register
	Ra   uint8  // first source register / base register
	Rb   uint8  // second source register
	Imm  int64  // immediate (MOVQ/MOVL/ADDI, branch offsets use Addr)
	Addr uint32 // absolute address or jump target
	Sz   uint8  // memory access width in bytes (1, 2, 4, 8)
	Len  uint8  // encoded length in bytes
}

// widthGroup reports whether op belongs to the aligned four-opcode group
// starting at base, and the access width it encodes.
func widthGroup(op, base Op) (uint8, bool) {
	if op >= base && op < base+4 {
		return 1 << (op & 3), true
	}
	return 0, false
}

// lengths per opcode family (fixed per opcode, variable across opcodes).
func opLen(op Op) (int, error) {
	switch {
	case op == OpNOP, op == OpHLT, op == OpRET:
		return 1, nil
	case op == OpMOVQ:
		return 10, nil
	case op == OpMOVL:
		return 6, nil
	case op == OpMOVR:
		return 3, nil
	case op >= OpADD && op <= OpCGE:
		return 4, nil
	case op == OpADDI:
		return 7, nil
	case op >= OpLD && op < OpLD+4, op >= OpST && op < OpST+4:
		return 6, nil
	case op >= OpLDR && op < OpLDR+4, op >= OpSTR && op < OpSTR+4:
		return 7, nil
	case op == OpPUSH, op == OpPOP:
		return 2, nil
	case op >= OpPUSHM && op < OpPUSHM+4:
		return 5, nil
	case op == OpJMP, op == OpCALL, op == OpCALLM:
		return 5, nil
	case op == OpJZ, op == OpJNZ:
		return 6, nil
	case op == OpSYS:
		return 2, nil
	}
	return 0, fmt.Errorf("isa: unknown opcode %#02x", uint8(op))
}

func get32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func get64(b []byte) uint64 {
	return uint64(get32(b)) | uint64(get32(b[4:]))<<32
}

// Decode decodes the instruction starting at pc. It returns an error for an
// unknown opcode or a truncated encoding.
func Decode(code []byte, pc uint32) (Instr, error) {
	if int(pc) >= len(code) {
		return Instr{}, fmt.Errorf("isa: pc %#x out of bounds (code %d bytes)", pc, len(code))
	}
	op := Op(code[pc])
	n, err := opLen(op)
	if err != nil {
		return Instr{}, fmt.Errorf("isa: at pc %#x: %w", pc, err)
	}
	if int(pc)+n > len(code) {
		return Instr{}, fmt.Errorf("isa: truncated instruction %#02x at pc %#x", uint8(op), pc)
	}
	b := code[pc : int(pc)+n]
	in := Instr{Op: op, Len: uint8(n)}
	switch {
	case op == OpNOP, op == OpHLT, op == OpRET:
	case op == OpMOVQ:
		in.Rd = b[1]
		in.Imm = int64(get64(b[2:]))
	case op == OpMOVL:
		in.Rd = b[1]
		in.Imm = int64(int32(get32(b[2:])))
	case op == OpMOVR:
		in.Rd, in.Ra = b[1], b[2]
	case op >= OpADD && op <= OpCGE:
		in.Rd, in.Ra, in.Rb = b[1], b[2], b[3]
	case op == OpADDI:
		in.Rd, in.Ra = b[1], b[2]
		in.Imm = int64(int32(get32(b[3:])))
	default:
		if sz, ok := widthGroup(op, OpLD); ok {
			in.Sz, in.Rd, in.Addr = sz, b[1], get32(b[2:])
			break
		}
		if sz, ok := widthGroup(op, OpST); ok {
			in.Sz, in.Ra, in.Addr = sz, b[1], get32(b[2:])
			break
		}
		if sz, ok := widthGroup(op, OpLDR); ok {
			in.Sz, in.Rd, in.Ra = sz, b[1], b[2]
			in.Imm = int64(int32(get32(b[3:])))
			break
		}
		if sz, ok := widthGroup(op, OpSTR); ok {
			in.Sz, in.Ra, in.Rb = sz, b[1], b[2] // Ra = base, Rb = source value
			in.Imm = int64(int32(get32(b[3:])))
			break
		}
		if sz, ok := widthGroup(op, OpPUSHM); ok {
			in.Sz, in.Addr = sz, get32(b[1:])
			break
		}
		switch op {
		case OpPUSH:
			in.Ra = b[1]
		case OpPOP:
			in.Rd = b[1]
		case OpJMP, OpCALL, OpCALLM:
			in.Addr = get32(b[1:])
		case OpJZ, OpJNZ:
			in.Ra = b[1]
			in.Addr = get32(b[2:])
		case OpSYS:
			in.Imm = int64(b[1])
		}
	}
	return in, nil
}

// AccessesMemory reports whether op reads or writes data memory when
// executed (instruction fetch does not count). These are exactly the
// instructions the pre-processing pass records in the boundary table.
func AccessesMemory(op Op) bool {
	switch {
	case op >= OpLD && op < OpLD+4,
		op >= OpST && op < OpST+4,
		op >= OpLDR && op < OpLDR+4,
		op >= OpSTR && op < OpSTR+4,
		op >= OpPUSHM && op < OpPUSHM+4:
		return true
	}
	switch op {
	case OpPUSH, OpPOP, OpCALL, OpCALLM, OpRET:
		return true
	}
	return false
}

func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	if sz, ok := widthGroup(op, OpLD); ok {
		return fmt.Sprintf("LD%d", sz)
	}
	if sz, ok := widthGroup(op, OpST); ok {
		return fmt.Sprintf("ST%d", sz)
	}
	if sz, ok := widthGroup(op, OpLDR); ok {
		return fmt.Sprintf("LDR%d", sz)
	}
	if sz, ok := widthGroup(op, OpSTR); ok {
		return fmt.Sprintf("STR%d", sz)
	}
	if sz, ok := widthGroup(op, OpPUSHM); ok {
		return fmt.Sprintf("PUSHM%d", sz)
	}
	return fmt.Sprintf("OP(%#02x)", uint8(op))
}

var opNames = map[Op]string{
	OpNOP: "NOP", OpHLT: "HLT", OpMOVQ: "MOVQ", OpMOVL: "MOVL", OpMOVR: "MOVR",
	OpADD: "ADD", OpSUB: "SUB", OpMUL: "MUL", OpDIV: "DIV", OpMOD: "MOD",
	OpAND: "AND", OpOR: "OR", OpXOR: "XOR", OpSHL: "SHL", OpSHR: "SHR",
	OpCEQ: "CEQ", OpCNE: "CNE", OpCLT: "CLT", OpCLE: "CLE", OpCGT: "CGT", OpCGE: "CGE",
	OpADDI: "ADDI", OpPUSH: "PUSH", OpPOP: "POP",
	OpJMP: "JMP", OpJZ: "JZ", OpJNZ: "JNZ", OpCALL: "CALL", OpCALLM: "CALLM", OpRET: "RET",
	OpSYS: "SYS",
}

var sysNames = [...]string{
	SysExit: "exit", SysBeginAtomic: "begin_atomic", SysEndAtomic: "end_atomic",
	SysClearAR: "clear_ar", SysLock: "lock", SysUnlock: "unlock", SysYield: "yield",
	SysSleep: "sleep", SysPrint: "print", SysSpawn: "spawn", SysRand: "rand",
	SysRecv: "recv", SysSend: "send", SysNanos: "nanos",
}

// SysName returns the symbolic name of a syscall number.
func SysName(n int64) string {
	if n >= 0 && int(n) < len(sysNames) && sysNames[n] != "" {
		return sysNames[n]
	}
	return fmt.Sprintf("sys%d", n)
}

// String disassembles a decoded instruction.
func (in Instr) String() string {
	op := in.Op
	switch {
	case op == OpNOP, op == OpHLT, op == OpRET:
		return op.String()
	case op == OpMOVQ, op == OpMOVL:
		return fmt.Sprintf("%s r%d, %d", op, in.Rd, in.Imm)
	case op == OpMOVR:
		return fmt.Sprintf("MOVR r%d, r%d", in.Rd, in.Ra)
	case op >= OpADD && op <= OpCGE:
		return fmt.Sprintf("%s r%d, r%d, r%d", op, in.Rd, in.Ra, in.Rb)
	case op == OpADDI:
		return fmt.Sprintf("ADDI r%d, r%d, %d", in.Rd, in.Ra, in.Imm)
	case op == OpPUSH:
		return fmt.Sprintf("PUSH r%d", in.Ra)
	case op == OpPOP:
		return fmt.Sprintf("POP r%d", in.Rd)
	case op == OpJMP, op == OpCALL:
		return fmt.Sprintf("%s %#x", op, in.Addr)
	case op == OpCALLM:
		return fmt.Sprintf("CALLM [%#x]", in.Addr)
	case op == OpJZ, op == OpJNZ:
		return fmt.Sprintf("%s r%d, %#x", op, in.Ra, in.Addr)
	case op == OpSYS:
		return fmt.Sprintf("SYS %s", SysName(in.Imm))
	}
	if _, ok := widthGroup(op, OpLD); ok {
		return fmt.Sprintf("%s r%d, [%#x]", op, in.Rd, in.Addr)
	}
	if _, ok := widthGroup(op, OpST); ok {
		return fmt.Sprintf("%s [%#x], r%d", op, in.Addr, in.Ra)
	}
	if _, ok := widthGroup(op, OpLDR); ok {
		return fmt.Sprintf("%s r%d, [r%d%+d]", op, in.Rd, in.Ra, in.Imm)
	}
	if _, ok := widthGroup(op, OpSTR); ok {
		return fmt.Sprintf("%s [r%d%+d], r%d", op, in.Ra, in.Imm, in.Rb)
	}
	if _, ok := widthGroup(op, OpPUSHM); ok {
		return fmt.Sprintf("%s [%#x]", op, in.Addr)
	}
	return op.String()
}

// WidthOp returns the width-specific opcode for a base memory opcode group
// (OpLD, OpST, OpLDR, OpSTR, OpPUSHM) and a width of 1, 2, 4 or 8 bytes.
func WidthOp(base Op, size int) (Op, error) {
	switch base {
	case OpLD, OpST, OpLDR, OpSTR, OpPUSHM:
	default:
		return 0, fmt.Errorf("isa: %v is not a width-parametric opcode", base)
	}
	switch size {
	case 1:
		return base, nil
	case 2:
		return base + 1, nil
	case 4:
		return base + 2, nil
	case 8:
		return base + 3, nil
	}
	return 0, fmt.Errorf("isa: invalid access width %d", size)
}
