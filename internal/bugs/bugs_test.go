package bugs

import (
	"testing"

	"kivati/internal/core"
	"kivati/internal/kernel"
	"kivati/internal/trace"
)

func TestCorpusComplete(t *testing.T) {
	c := Corpus()
	if len(c) != 11 {
		t.Fatalf("corpus has %d bugs, want 11", len(c))
	}
	apps := map[string]int{}
	ids := map[string]bool{}
	for _, b := range c {
		apps[b.App]++
		key := b.App + b.ID
		if ids[key] {
			t.Errorf("duplicate bug %s", key)
		}
		ids[key] = true
		if len(b.BugVars) == 0 {
			t.Errorf("%s %s: no bug variables", b.App, b.ID)
		}
		if b.PaperPrev == "" || b.Paper20 == "" || b.Paper50 == "" {
			t.Errorf("%s %s: missing paper reference times", b.App, b.ID)
		}
	}
	if apps["Apache"] != 3 || apps["NSS"] != 6 || apps["MySQL"] != 2 {
		t.Errorf("per-app counts = %v, want Apache 3 / NSS 6 / MySQL 2 (Table 6)", apps)
	}
}

func TestAllBugsBuild(t *testing.T) {
	for _, b := range Corpus() {
		if _, err := core.Build(b.Source); err != nil {
			t.Errorf("%s %s: %v\n%s", b.App, b.ID, err, b.Source)
		}
	}
}

func TestBugARsCoverBugVars(t *testing.T) {
	// Every bug variable must have at least one AR so its violation is
	// detectable.
	for _, b := range Corpus() {
		p, err := core.Build(b.Source)
		if err != nil {
			t.Fatalf("%s %s: %v", b.App, b.ID, err)
		}
		for _, v := range b.BugVars {
			found := false
			for _, ar := range p.Annotated.ARs {
				if ar.Key.Name == v {
					found = true
				}
			}
			if !found {
				t.Errorf("%s %s: no AR on bug variable %q", b.App, b.ID, v)
			}
		}
	}
}

// TestBugManifestsUnderBugFinding: a representative wide-window bug is
// detected quickly in bug-finding mode.
func TestBugManifestsUnderBugFinding(t *testing.T) {
	b, err := ByID("NSS", "329072")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Build(b.Source)
	if err != nil {
		t.Fatal(err)
	}
	bugVars := map[string]bool{}
	for _, v := range b.BugVars {
		bugVars[v] = true
	}
	detected := false
	res, err := core.Run(p, core.RunConfig{
		Mode:       kernel.BugFinding,
		Opt:        kernel.OptBase,
		PauseTicks: 20_000,
		PauseEvery: 16,
		Seed:       3,
		MaxTicks:   80_000_000,
		OnViolation: func(v trace.Violation) bool {
			if bugVars[v.Var] {
				detected = true
				return true
			}
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !detected {
		t.Errorf("bug not detected within %d ticks (reason %s, %d violations, stats %+v)",
			res.Ticks, res.Reason, len(res.Violations), *res.Stats)
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("Apache", "44402"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("Apache", "0"); err == nil {
		t.Error("want error for unknown bug")
	}
}
