// Package bugs provides the 11-bug corpus of the paper's Table 6: known
// atomicity-violation bugs from the Apache, Mozilla NSS and MySQL bug
// databases, each modeled here as a MiniC program of the same *bug class*
// (lost update, check-then-act on a shared pointer, torn multi-field update,
// reference-count double decrement, …).
//
// Detection-time behaviour is governed by two knobs per bug, mirroring what
// made the real bugs slow to reproduce: how rarely the triggering input
// reaches the vulnerable code (the gate — most of each iteration is private
// compute), and how wide the vulnerable window between the two accesses is
// (the pad). Wide-window bugs manifest in prevention mode within the 90
// scaled-minute cap; narrow-window bugs only under bug-finding pauses — the
// paper's "-" rows.
package bugs

import (
	"fmt"

	"kivati/internal/core"
)

// Bug is one corpus entry.
type Bug struct {
	App         string
	ID          string // the paper's bug-database ID
	Class       string
	Description string
	Source      string
	// BugVars are the shared variables whose violation *is* the bug; a
	// violation on any of them counts as detection.
	BugVars []string
	// Paper's Table 6 detection times (mm:ss; "-" = no manifestation in
	// 90 minutes) for prevention, bug-finding 20 ms and 50 ms.
	PaperPrev, Paper20, Paper50 string
	// ExploreSource is the bug's bounded schedule-exploration fixture: a
	// short two-thread program with the same access pattern whose serial
	// executions all agree on SnapshotVars. See explore.go.
	ExploreSource string
	// SnapshotVars are the shared globals the differential oracle
	// snapshots after an explored schedule: witness variables that are 0
	// in every serial execution and become nonzero exactly when a thread
	// observes one of the Figure 2 non-serializable interleavings.
	SnapshotVars []string
}

// driver wraps a bug body in the standard harness: two threads loop doing
// private compute, and only when the compute hash passes the gate do they
// apply the triggering input. The run ends at detection or the time cap.
func driver(globals, trigger string, gate int) string {
	return fmt.Sprintf(`%s
int bug_done;
int bug_lk;

int churn(int v) {
    int x;
    int j;
    x = v + 10007;
    j = 0;
    while (j < 40) {
        x = x * 31 + j;
        x = x ^ (x >> 7);
        j = j + 1;
    }
    if (x < 0) {
        x = 0 - x;
    }
    return x;
}
%s
void racer(int id) {
    int i;
    int w;
    i = 0;
    while (i < 100000000) {
        w = churn(id * 65537 + i);
        if (w %% %d == 0) {
            trigger(id, i);
        }
        i = i + 1;
    }
    lock(bug_lk);
    bug_done = bug_done + 1;
    unlock(bug_lk);
}
void main() {
    spawn(racer, 1);
    racer(2);
    while (bug_done < 2) {
        yield();
    }
}
`, globals, trigger, gate)
}

// pad returns a compute loop of the given width, used to widen or narrow the
// vulnerable window between a bug's two accesses. The loop variable j must
// be declared by the caller.
func pad(v string, rounds int) string {
	if rounds <= 0 {
		return ""
	}
	return fmt.Sprintf(`    j = 0;
    while (j < %d) {
        %s = %s * 31 + j;
        j = j + 1;
    }
`, rounds, v, v)
}

// Corpus returns all 11 bugs in the paper's Table 6 order.
func Corpus() []*Bug {
	bs := []*Bug{
		apache44402(), apache21287(), apache25520(),
		nss341323(), nss329072(), nss225525(),
		nss270689(), nss169296(), nss201134(),
		mysql19938(), mysql25306(),
	}
	for _, b := range bs {
		attachExplore(b)
	}
	return bs
}

// ByID returns the bug with the given app/id.
func ByID(app, id string) (*Bug, error) {
	for _, b := range Corpus() {
		if b.App == app && b.ID == id {
			return b, nil
		}
	}
	return nil, fmt.Errorf("bugs: no bug %s %s", app, id)
}

// apache44402: the log-buffer index lost update — rare trigger (log writes
// on a cold path), moderate window; found late in prevention mode.
func apache44402() *Bug {
	src := driver(`
int log_off;
int log_buf[16];
`, `
void trigger(int id, int i) {
    int off;
    int j;
    int msg;
    msg = id * 7 + i;
    off = log_off;
`+pad("msg", 12)+`
    log_buf[off % 16] = msg;
    log_off = off + 1;
}
`, 113)
	return &Bug{
		App: "Apache", ID: "44402", Class: "lost update",
		Description: "buffered log write: offset read and update are not atomic, entries overwrite each other",
		Source:      src, BugVars: []string{"log_off"},
		PaperPrev: "66:59", Paper20: "8:01", Paper50: "8:23",
	}
}

// apache21287: the cache-entry reference count double decrement — adjacent
// statements, an extremely narrow window; the paper never saw it in
// prevention mode.
func apache21287() *Bug {
	src := driver(`
int entry_ref;
int entry_freed;
`, `
void trigger(int id, int i) {
    int r;
    if (i % 2 == 0) {
        entry_ref = 2;
    }
    r = entry_ref;
    entry_ref = r - 1;
    if (r - 1 == 0) {
        entry_freed = entry_freed + 1;
    }
}
`, 560)
	return &Bug{
		App: "Apache", ID: "21287", Class: "double decrement / double free",
		Description: "cache entry refcount decrement is not atomic; two threads both reach zero and free twice",
		Source:      src, BugVars: []string{"entry_ref"},
		PaperPrev: "-", Paper20: "13:30", Paper50: "17:20",
	}
}

// apache25520: torn two-field log line — the pointer is invalidated and
// republished back-to-back; narrow window, prevention never saw it.
func apache25520() *Bug {
	src := driver(`
int line_ptr;
int line_len;
`, `
void trigger(int id, int i) {
    int p;
    int l;
    if (i % 2 == 0) {
        line_ptr = 0;
        line_ptr = id * 1000 + i;
        line_len = id;
    } else {
        p = line_ptr;
        l = line_len;
    }
}
`, 73)
	return &Bug{
		App: "Apache", ID: "25520", Class: "torn multi-field update",
		Description: "log line pointer and length updated non-atomically; readers observe mismatched pairs",
		Source:      src, BugVars: []string{"line_ptr"},
		PaperPrev: "-", Paper20: "4:49", Paper50: "7:33",
	}
}

// nss341323: the Figure 1 pattern — check a shared pointer for NULL, then
// initialize it, with the allocation work in between.
func nss341323() *Bug {
	src := driver(`
int sess_ptr;
int inits;
`, `
void trigger(int id, int i) {
    int p;
    int j;
    if (i % 4 == 0) {
        sess_ptr = 0;
    }
    if (sess_ptr == 0) {
        p = id * 100 + 1;
`+pad("p", 12)+`
        sess_ptr = p;
        inits = inits + 1;
    }
}
`, 53)
	return &Bug{
		App: "NSS", ID: "341323", Class: "check-then-act (Figure 1)",
		Description: "shared pointer NULL-checked then assigned without a lock; both threads initialize",
		Source:      src, BugVars: []string{"sess_ptr"},
		PaperPrev: "12:25", Paper20: "2:59", Paper50: "2:05",
	}
}

// nss329072: init-once flag race with a wide window and frequent trigger —
// the fastest-found bug in the paper.
func nss329072() *Bug {
	src := driver(`
int initialized;
int table;
`, `
void trigger(int id, int i) {
    int v;
    int j;
    if (i % 2 == 0) {
        initialized = 0;
    }
    if (initialized == 0) {
        v = id;
`+pad("v", 20)+`
        table = v;
        initialized = 1;
    }
}
`, 19)
	return &Bug{
		App: "NSS", ID: "329072", Class: "double initialization",
		Description: "module init flag checked and set non-atomically; the table is built twice",
		Source:      src, BugVars: []string{"initialized"},
		PaperPrev: "1:40", Paper20: "0:16", Paper50: "0:17",
	}
}

// nss225525: unlocked statistics counter lost update.
func nss225525() *Bug {
	src := driver(`
int ssl_handshakes;
`, `
void trigger(int id, int i) {
    int c;
    int j;
    c = ssl_handshakes;
`+pad("c", 10)+`
    ssl_handshakes = c + 1;
}
`, 150)
	return &Bug{
		App: "NSS", ID: "225525", Class: "lost update",
		Description: "handshake counter increment unprotected; concurrent updates are lost",
		Source:      src, BugVars: []string{"ssl_handshakes"},
		PaperPrev: "4:41", Paper20: "2:21", Paper50: "3:09",
	}
}

// nss270689: freelist head pop — read the head, compute, detach.
func nss270689() *Bug {
	src := driver(`
int freelist;
int popped;
`, `
void trigger(int id, int i) {
    int head;
    int j;
    if (i % 3 == 0) {
        freelist = i + 10;
    }
    if (freelist != 0) {
        head = freelist;
`+pad("head", 9)+`
        freelist = 0;
        popped = popped + 1;
    }
}
`, 70)
	return &Bug{
		App: "NSS", ID: "270689", Class: "container pop race",
		Description: "arena freelist pop is not atomic; two threads pop the same block",
		Source:      src, BugVars: []string{"freelist"},
		PaperPrev: "2:00", Paper20: "0:33", Paper50: "0:56",
	}
}

// nss169296: narrow TOCTOU on a session flag — adjacent test-and-set; the
// paper's prevention mode never saw it.
func nss169296() *Bug {
	src := driver(`
int sess_flag;
`, `
void trigger(int id, int i) {
    if (sess_flag == 0) {
        sess_flag = id;
    }
    sess_flag = 0;
}
`, 260)
	return &Bug{
		App: "NSS", ID: "169296", Class: "narrow check-then-act",
		Description: "session flag tested and set back-to-back on a rare path; window of a few instructions",
		Source:      src, BugVars: []string{"sess_flag"},
		PaperPrev: "-", Paper20: "10:19", Paper50: "7:40",
	}
}

// nss201134: slow accumulation race — moderate window but very infrequent
// trigger, found late in prevention mode.
func nss201134() *Bug {
	src := driver(`
int cert_cache_sz;
`, `
void trigger(int id, int i) {
    int sz;
    int j;
    sz = cert_cache_sz;
`+pad("sz", 8)+`
    cert_cache_sz = sz + 1;
}
`, 520)
	return &Bug{
		App: "NSS", ID: "201134", Class: "lost update (infrequent)",
		Description: "certificate cache size updated racily on a cold path",
		Source:      src, BugVars: []string{"cert_cache_sz"},
		PaperPrev: "52:45", Paper20: "9:27", Paper50: "7:33",
	}
}

// mysql19938: row-count maintenance race on insert.
func mysql19938() *Bug {
	src := driver(`
int row_count;
int rows[8];
`, `
void trigger(int id, int i) {
    int n;
    int j;
    n = row_count;
`+pad("n", 11)+`
    rows[n % 8] = id * 10 + i;
    row_count = n + 1;
}
`, 180)
	return &Bug{
		App: "MySQL", ID: "19938", Class: "lost update",
		Description: "table row count read then written around the row insert; inserts overwrite",
		Source:      src, BugVars: []string{"row_count"},
		PaperPrev: "8:53", Paper20: "1:50", Paper50: "1:26",
	}
}

// mysql25306: binlog sequence race — moderate window, less frequent.
func mysql25306() *Bug {
	src := driver(`
int binlog_seq;
int binlog[8];
`, `
void trigger(int id, int i) {
    int s;
    int j;
    s = binlog_seq;
`+pad("s", 11)+`
    binlog[s % 8] = id;
    binlog_seq = s + 1;
}
`, 340)
	return &Bug{
		App: "MySQL", ID: "25306", Class: "lost update",
		Description: "binlog sequence number claimed non-atomically; events share a slot",
		Source:      src, BugVars: []string{"binlog_seq"},
		PaperPrev: "11:15", Paper20: "2:44", Paper50: "3:20",
	}
}

// Starts returns the thread entry configuration for a bug program.
func (b *Bug) Starts() []core.Start { return []core.Start{{Fn: "main"}} }
