package bugs

import (
	"testing"

	"kivati/internal/annotate"
	"kivati/internal/minic"
)

// TestOptimizerKeepsBugVarCoverage is the property behind the optimizer's
// soundness on the corpus: for every bug and witness variable of every
// fixture — the racy variables and the witness observables the differential
// oracle snapshots — the optimizer must keep at least one atomic region per
// (function, variable) that the base annotator covered, and must never
// claim a static serializability proof on them: these variables are racy by
// construction, so no common lock can protect all their accesses.
func TestOptimizerKeepsBugVarCoverage(t *testing.T) {
	opts := annotate.Options{
		Lockset: true,
		Optimize: annotate.OptimizeOptions{
			DropBenign: true,
			Dedupe:     true,
			Coalesce:   true,
		},
	}
	covered := func(p *annotate.Program, vars map[string]bool) map[[2]string]bool {
		out := map[[2]string]bool{}
		for _, ar := range p.ARs {
			if vars[ar.Key.Name] && !ar.Key.Deref {
				out[[2]string{ar.Func, ar.Key.Name}] = true
			}
		}
		return out
	}
	for _, b := range Corpus() {
		for _, src := range []struct{ name, text string }{
			{"source", b.Source},
			{"fixture", b.ExploreSource},
		} {
			if src.text == "" {
				continue
			}
			prog, err := minic.Parse(src.text)
			if err != nil {
				t.Fatalf("%s/%s %s: parse: %v", b.App, b.ID, src.name, err)
			}
			vars := map[string]bool{}
			for _, v := range b.BugVars {
				vars[v] = true
			}
			for _, v := range b.SnapshotVars {
				vars[v] = true
			}
			base, err := annotate.Annotate(prog)
			if err != nil {
				t.Fatal(err)
			}
			optz, err := annotate.AnnotateWithOptions(prog, opts)
			if err != nil {
				t.Fatal(err)
			}
			if optz.OptStats.Input != len(base.ARs) {
				t.Errorf("%s/%s %s: optimizer saw %d ARs, base has %d",
					b.App, b.ID, src.name, optz.OptStats.Input, len(base.ARs))
			}
			baseCov := covered(base, vars)
			optCov := covered(optz, vars)
			for fv := range baseCov {
				if !optCov[fv] {
					t.Errorf("%s/%s %s: optimizer dropped all ARs on %s.%s",
						b.App, b.ID, src.name, fv[0], fv[1])
				}
			}
			for _, ar := range optz.ARs {
				if vars[ar.Key.Name] && !ar.Key.Deref && ar.Benign() {
					t.Errorf("%s/%s %s: benign proof %q on racy variable %s.%s",
						b.App, b.ID, src.name, ar.Proof, ar.Func, ar.Key)
				}
			}
		}
	}
}
