package bugs

import "fmt"

// Schedule-exploration fixtures.
//
// The Table 6 sources are tuned for detection-time measurement: unbounded
// racer loops that stop at the first violation. The differential oracle in
// internal/explore needs something different — a *bounded* program whose
// final memory state can be compared against a serial execution — so each
// bug also carries an ExploreSource: the same access pattern, run for a
// fixed number of iterations by two threads.
//
// The snapshot observables are witness variables, not the racy counters
// themselves. A witness is incremented only when a thread's own reads
// inside one atomic region observe one of the Figure 2 non-serializable
// interleavings (two reads of the same variable disagreeing, a reader
// seeing a torn intermediate value, a just-written value changing before
// the next read). Every serial execution — any non-preemptive thread order
// — leaves every witness at 0, so a nonzero witness is a schedule-induced
// divergence. Witnesses are decided strictly before the region's final
// write, which matters in prevention mode: Kivati's suspension timeout and
// begin-retry bounds (§3.3, Figure 5) deliberately let a *delayed* remote
// write commit eventually, so raw final counter values are best-effort,
// but a remote write that lands inside an armed region is undone
// synchronously and can never be observed by the region's own reads. That
// is exactly the single-variable serializability guarantee the engine
// makes, and exactly what the witnesses measure.
//
// Two structural rules keep the witnesses sound against the engine's other
// escape hatch, the begin-retry bound. The pairing analysis pairs an access
// with *every* preceding access in the function (Figure 4), so an inline
// reset write would form a (W,W) pair with the region's final write — and
// (W,W) regions watch *reads* (Figure 6), which suspends the other thread's
// first-read begin_atomic until it gives up after MaxBeginRetries and runs
// its witness window unmonitored. So: (1) every fixture's witness variable
// has only regions whose first access is a read — such begins are never
// suspended, hence never give up — and (2) resets and refills live in
// single-access helper functions, which own no atomic region at all (the
// annotator pairs per function) while their writes still trap on armed
// remote watchpoints. Apache 25520 inverts the trick: the *reader's* single
// read lives in a helper, so the writer's W..W begin is never suspended and
// its torn window is always armed.

// exploreIters is the per-thread iteration count of every fixture: small
// enough that a schedule runs in ~100k virtual ticks, large enough that a
// random preemption lands in a vulnerable window with good probability.
const exploreIters = 24

// exploreDriver wraps a per-iteration step function in the bounded
// two-thread harness. Both workers run exploreIters iterations of
// step(id, i); main initializes shared state, spawns them and joins on
// bug_done. step bodies are syscall-free, so under a non-preemptive
// scheduler every step runs atomically — the serial reference the oracle
// compares against.
func exploreDriver(globals, helpers, init string) string {
	return fmt.Sprintf(`%s
int bug_done;
int bug_lk;
%s
void work(int id) {
    int i;
    i = 0;
    while (i < %d) {
        step(id, i);
        i = i + 1;
    }
    lock(bug_lk);
    bug_done = bug_done + 1;
    unlock(bug_lk);
}
void main() {
%s    spawn(work, 1);
    spawn(work, 2);
    while (bug_done < 2) {
        yield();
    }
}
`, globals, helpers, exploreIters, init)
}

// exploreFixture is one bug's bounded program and observables.
type exploreFixture struct {
	source string
	vars   []string
}

// attachExplore fills in a bug's exploration fixture.
func attachExplore(b *Bug) {
	f, ok := exploreFixtures[b.App+"/"+b.ID]
	if !ok {
		return
	}
	b.ExploreSource = f.source
	b.SnapshotVars = f.vars
}

var exploreFixtures = map[string]exploreFixture{
	// Lost update on the log offset: two reads bracketing the compute
	// disagree iff a remote write landed in the window (R-W-R).
	"Apache/44402": {
		source: exploreDriver(`
int log_off;
int log_buf[16];
int lost;
`, `
void step(int id, int i) {
    int off;
    int o2;
    int msg;
    int j;
    off = log_off;
    msg = id * 7 + i;
    j = 0;
    while (j < 6) {
        msg = msg * 31 + j;
        j = j + 1;
    }
    o2 = log_off;
    if (o2 != off) {
        lost = lost + 1;
    }
    log_buf[off % 16] = msg;
    log_off = off + 1;
}
`, ""),
		vars: []string{"lost"},
	},

	// Refcount double decrement: the witness sees the count move under
	// its feet between read and re-read. The pad loop advances only its
	// counter: a loop-carried write to a scratch local would create a
	// loop-resident local AR inside the window, whose churn interacts
	// with the suspension timeout and (empirically) leaks the window.
	"Apache/21287": {
		source: exploreDriver(`
int entry_ref;
int dbl;
`, `
void step(int id, int i) {
    int r;
    int r2;
    int d;
    int j;
    r = entry_ref;
    d = r + id;
    j = 0;
    while (j < 3) {
        j = j + 1;
    }
    r2 = entry_ref;
    if (r2 != r) {
        dbl = dbl + 1;
    }
    entry_ref = r - 1;
}
`, "    entry_ref = 48;\n"),
		vars: []string{"dbl"},
	},

	// Torn update: the writer invalidates then republishes (W..W); a
	// reader that observes the transient 0 saw the W-R-W dirty read. The
	// reader's single access lives in peek() so the reader owns no atomic
	// region and the writer's region is always armed.
	"Apache/25520": {
		source: exploreDriver(`
int line_ptr;
int torn;
`, `
int peek(int x) {
    return line_ptr;
}
void wr(int i) {
    int d;
    int j;
    line_ptr = 0;
    d = i;
    j = 0;
    while (j < 6) {
        d = d * 31 + j;
        j = j + 1;
    }
    line_ptr = i + 1;
}
void step(int id, int i) {
    int p;
    if (id == 1) {
        wr(i);
    } else {
        p = peek(0);
        if (p == 0) {
            torn = torn + 1;
        }
    }
}
`, "    line_ptr = 1;\n"),
		vars: []string{"torn"},
	},

	// The Figure 1 check-then-act: the NULL check and the assignment
	// bracket the allocation; the witness re-check sees a remote init
	// land in between (R-W-W observed from the reading side). The reset
	// lives in zap() so it never pairs with the assignment into a
	// read-watching (W,W) region.
	"NSS/341323": {
		source: exploreDriver(`
int sess_ptr;
int clob;
`, `
void zap(int x) {
    sess_ptr = 0;
}
void step(int id, int i) {
    int p;
    int j;
    if (id == 1) {
        if (i % 4 == 0) {
            zap(0);
        }
    }
    if (sess_ptr == 0) {
        p = id * 100 + 1;
        j = 0;
        while (j < 6) {
            p = p * 31 + j;
            j = j + 1;
        }
        if (sess_ptr != 0) {
            clob = clob + 1;
        }
        sess_ptr = p;
    }
}
`, ""),
		vars: []string{"clob"},
	},

	// Double initialization: same shape as Figure 1 with the init flag;
	// the reset is a helper for the same (W,W)-avoidance reason.
	"NSS/329072": {
		source: exploreDriver(`
int initialized;
int table;
int dbl;
`, `
void zap(int x) {
    initialized = 0;
}
void step(int id, int i) {
    int v;
    int j;
    if (id == 1) {
        if (i % 2 == 0) {
            zap(0);
        }
    }
    if (initialized == 0) {
        v = id;
        j = 0;
        while (j < 8) {
            v = v * 31 + j;
            j = j + 1;
        }
        if (initialized != 0) {
            dbl = dbl + 1;
        }
        table = v;
        initialized = 1;
    }
}
`, ""),
		vars: []string{"dbl"},
	},

	// Unlocked statistics counter.
	"NSS/225525": {
		source: exploreDriver(`
int ssl_handshakes;
int lost;
`, `
void step(int id, int i) {
    int c;
    int c2;
    int j;
    c = ssl_handshakes;
    j = 0;
    while (j < 5) {
        j = j + 1;
    }
    c2 = ssl_handshakes;
    if (c2 != c) {
        lost = lost + 1;
    }
    ssl_handshakes = c + 1;
}
`, ""),
		vars: []string{"lost"},
	},

	// Freelist pop: head read twice around the detach compute; a remote
	// pop or refill in the window makes the reads disagree (R-W-R). The
	// refill is a helper so it never pairs with the detach write.
	"NSS/270689": {
		source: exploreDriver(`
int freelist;
int dup;
`, `
void refill(int v) {
    freelist = v;
}
void step(int id, int i) {
    int head;
    int h2;
    int j;
    if (i % 3 == 0) {
        refill(id * 64 + i + 1);
    }
    if (freelist != 0) {
        head = freelist;
        j = 0;
        while (j < 6) {
            j = j + 1;
        }
        h2 = freelist;
        if (h2 != head) {
            dup = dup + 1;
        }
        freelist = 0;
    }
}
`, ""),
		vars: []string{"dup"},
	},

	// Narrow TOCTOU on the session flag: two back-to-back reads — a
	// window of a couple of instructions — disagree only if the remote
	// test-and-set or release (both single-access helpers) lands exactly
	// between them.
	"NSS/169296": {
		source: exploreDriver(`
int sess_flag;
int steal;
`, `
void set(int v) {
    sess_flag = v;
}
void step(int id, int i) {
    int a;
    int b;
    a = sess_flag;
    b = sess_flag;
    if (b != a) {
        steal = steal + 1;
    }
    if (a == 0) {
        set(id);
    } else {
        set(0);
    }
}
`, ""),
		vars: []string{"steal"},
	},

	// Infrequent lost update on the cache size.
	"NSS/201134": {
		source: exploreDriver(`
int cert_cache_sz;
int lost;
`, `
void step(int id, int i) {
    int sz;
    int sz2;
    int j;
    sz = cert_cache_sz;
    j = 0;
    while (j < 4) {
        j = j + 1;
    }
    sz2 = cert_cache_sz;
    if (sz2 != sz) {
        lost = lost + 1;
    }
    cert_cache_sz = sz + 1;
}
`, ""),
		vars: []string{"lost"},
	},

	// Row-count maintenance: the row insert sits inside the window.
	"MySQL/19938": {
		source: exploreDriver(`
int row_count;
int rows[8];
int lost;
`, `
void step(int id, int i) {
    int n;
    int n2;
    int j;
    n = row_count;
    j = 0;
    while (j < 5) {
        j = j + 1;
    }
    rows[n % 8] = id * 10 + i;
    n2 = row_count;
    if (n2 != n) {
        lost = lost + 1;
    }
    row_count = n + 1;
}
`, ""),
		vars: []string{"lost"},
	},

	// Binlog sequence claim.
	"MySQL/25306": {
		source: exploreDriver(`
int binlog_seq;
int binlog[8];
int lost;
`, `
void step(int id, int i) {
    int s;
    int s2;
    int j;
    s = binlog_seq;
    j = 0;
    while (j < 5) {
        j = j + 1;
    }
    binlog[s % 8] = id;
    s2 = binlog_seq;
    if (s2 != s) {
        lost = lost + 1;
    }
    binlog_seq = s + 1;
}
`, ""),
		vars: []string{"lost"},
	},
}
