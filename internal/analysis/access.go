// Package analysis implements the two static analyses of Kivati's annotator
// (§3.1): the per-subroutine List of Shared Variables (LSV), and the
// path-insensitive reaching-access data-flow analysis that pairs consecutive
// accesses to each shared variable into atomic regions.
package analysis

import (
	"kivati/internal/cfg"
	"kivati/internal/minic"
)

// Key identifies a shared variable as accessed in a subroutine. The paper's
// prototype identifies local accesses as belonging to the same shared
// variable by name only (§3.5, no alias analysis); a pointer variable p and
// its pointee *p are distinct keys.
type Key struct {
	Name  string
	Deref bool
}

func (k Key) String() string {
	if k.Deref {
		return "*" + k.Name
	}
	return k.Name
}

// Access is one memory access made by a CFG node, in evaluation order.
type Access struct {
	Key    Key
	Type   uint8      // minic.AccRead or minic.AccWrite
	Lvalue minic.Expr // expression denoting the accessed location
	Pos    minic.Pos  // source position of the access
}

// ExprPos returns the source position of an expression.
func ExprPos(x minic.Expr) minic.Pos {
	switch e := x.(type) {
	case *minic.IntLit:
		return e.Pos
	case *minic.Ident:
		return e.Pos
	case *minic.Index:
		return e.Pos
	case *minic.Unary:
		return e.Pos
	case *minic.Binary:
		return e.Pos
	case *minic.Call:
		return e.Pos
	}
	return minic.Pos{}
}

// NodeAccesses returns the ordered variable accesses a node performs:
// right-hand side reads first, then left-hand side index reads, then the
// left-hand side write — matching the evaluation order of the compiler.
func NodeAccesses(n *cfg.Node) []Access {
	var out []Access
	switch n.Kind {
	case cfg.KindCond:
		exprReads(n.Cond, &out)
	case cfg.KindStmt:
		switch st := n.Stmt.(type) {
		case *minic.DeclStmt:
			if st.Decl.Init != nil {
				exprReads(st.Decl.Init, &out)
				out = append(out, Access{
					Key:    Key{Name: st.Decl.Name},
					Type:   minic.AccWrite,
					Lvalue: &minic.Ident{Pos: st.Decl.Pos, Name: st.Decl.Name},
				})
			}
		case *minic.AssignStmt:
			exprReads(st.RHS, &out)
			// Index and pointer reads embedded in the LHS happen before
			// the store.
			switch lhs := st.LHS.(type) {
			case *minic.Index:
				exprReads(lhs.Idx, &out)
			case *minic.Unary: // *p: reading the pointer variable itself
				exprReads(lhs.X, &out)
			}
			out = append(out, lhsWrite(st.LHS))
		case *minic.ExprStmt:
			exprReads(st.X, &out)
		case *minic.ReturnStmt:
			if st.X != nil {
				exprReads(st.X, &out)
			}
		}
	}
	return out
}

func lhsWrite(lhs minic.Expr) Access {
	switch e := lhs.(type) {
	case *minic.Ident:
		return Access{Key: Key{Name: e.Name}, Type: minic.AccWrite, Lvalue: e}
	case *minic.Index:
		return Access{Key: Key{Name: e.Name}, Type: minic.AccWrite, Lvalue: e}
	case *minic.Unary: // *p
		id := e.X.(*minic.Ident)
		return Access{Key: Key{Name: id.Name, Deref: true}, Type: minic.AccWrite, Lvalue: e}
	}
	panic("analysis: invalid lvalue")
}

// exprReads appends the variable reads performed when evaluating x, in
// evaluation order.
func exprReads(x minic.Expr, out *[]Access) {
	switch e := x.(type) {
	case *minic.IntLit:
	case *minic.Ident:
		*out = append(*out, Access{Key: Key{Name: e.Name}, Type: minic.AccRead, Lvalue: e})
	case *minic.Index:
		exprReads(e.Idx, out)
		*out = append(*out, Access{Key: Key{Name: e.Name}, Type: minic.AccRead, Lvalue: e})
	case *minic.Unary:
		if e.Op == "&" {
			// Taking an address reads nothing.
			return
		}
		if e.Op == "*" {
			id := e.X.(*minic.Ident)
			// Reading *p first reads the pointer variable p, then the
			// pointee.
			*out = append(*out, Access{Key: Key{Name: id.Name}, Type: minic.AccRead, Lvalue: id})
			*out = append(*out, Access{Key: Key{Name: id.Name, Deref: true}, Type: minic.AccRead, Lvalue: e})
			return
		}
		exprReads(e.X, out)
	case *minic.Binary:
		exprReads(e.X, out)
		exprReads(e.Y, out)
	case *minic.Call:
		if e.Name == "spawn" {
			// The function-name argument is not a variable read.
			exprReads(e.Args[1], out)
			return
		}
		for _, a := range e.Args {
			exprReads(a, out)
		}
	}
}

// readNames returns the set of base variable names read by x (used by the
// LSV data-flow dependence rule).
func readNames(x minic.Expr) map[string]bool {
	var accs []Access
	exprReads(x, &accs)
	names := make(map[string]bool, len(accs))
	for _, a := range accs {
		names[a.Key.Name] = true
	}
	return names
}

// callsReturningPointer returns the names of functions called by x whose
// return type is a pointer.
func callsReturningPointer(prog *minic.Program, x minic.Expr) bool {
	found := false
	var walk func(minic.Expr)
	walk = func(e minic.Expr) {
		switch v := e.(type) {
		case *minic.Unary:
			walk(v.X)
		case *minic.Binary:
			walk(v.X)
			walk(v.Y)
		case *minic.Index:
			walk(v.Idx)
		case *minic.Call:
			if fn := prog.Func(v.Name); fn != nil && fn.RetPtr {
				found = true
			}
			for _, a := range v.Args {
				walk(a)
			}
		}
	}
	walk(x)
	return found
}

// takesAddressOf reports whether x contains &name for any name in set,
// another data-flow dependence edge (a pointer derived from a shared
// variable's address).
func takesAddressOf(x minic.Expr, set map[string]bool) bool {
	found := false
	var walk func(minic.Expr)
	walk = func(e minic.Expr) {
		switch v := e.(type) {
		case *minic.Unary:
			if v.Op == "&" {
				switch t := v.X.(type) {
				case *minic.Ident:
					if set[t.Name] {
						found = true
					}
				case *minic.Index:
					if set[t.Name] {
						found = true
					}
				}
				return
			}
			walk(v.X)
		case *minic.Binary:
			walk(v.X)
			walk(v.Y)
		case *minic.Index:
			walk(v.Idx)
		case *minic.Call:
			for _, a := range v.Args {
				walk(a)
			}
		}
	}
	walk(x)
	return found
}
