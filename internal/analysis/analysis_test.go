package analysis

import (
	"fmt"
	"strings"
	"testing"

	"kivati/internal/cfg"
	"kivati/internal/minic"
)

func mustParse(t *testing.T, src string) *minic.Program {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return prog
}

func TestLSVSeeds(t *testing.T) {
	prog := mustParse(t, `
int g1;
int g2;
int *gp;
void f(int a, int *b) {
    int priv;
    int tmp;
    priv = a + 1;
    tmp = g1;
}
int *mk() { return gp; }
void h() {
    int p;
    int q;
    p = 0;
    q = mk();
}`)
	f := prog.Func("f")
	lsv := LSV(prog, f)
	for _, want := range []string{"g1", "g2", "gp", "b", "tmp"} {
		if !lsv[want] {
			t.Errorf("LSV(f) missing %q; have %v", want, SortedLSV(lsv))
		}
	}
	for _, not := range []string{"a", "priv"} {
		if lsv[not] {
			t.Errorf("LSV(f) should not contain %q", not)
		}
	}

	h := prog.Func("h")
	lsvh := LSV(prog, h)
	if !lsvh["q"] {
		t.Error("LSV(h): local assigned a pointer-returning call must be shared")
	}
	if lsvh["p"] {
		t.Error("LSV(h): p is private")
	}
}

func TestLSVTransitive(t *testing.T) {
	prog := mustParse(t, `
int g;
void f() {
    int a;
    int b;
    int c;
    int d;
    a = g;
    b = a + 1;
    c = b * 2;
    d = 5;
}`)
	lsv := LSV(prog, prog.Func("f"))
	for _, want := range []string{"a", "b", "c"} {
		if !lsv[want] {
			t.Errorf("transitive dependence missed %q", want)
		}
	}
	if lsv["d"] {
		t.Error("d is private")
	}
}

func TestLSVAddressOf(t *testing.T) {
	prog := mustParse(t, `
int g;
void f() {
    int p;
    p = &g;
}`)
	lsv := LSV(prog, prog.Func("f"))
	if !lsv["p"] {
		t.Error("pointer derived from &g must be in LSV")
	}
}

func TestNodeAccessesOrder(t *testing.T) {
	prog := mustParse(t, "int s;\nint t;\nvoid f() { s = s + t; }")
	g := cfg.Build(prog.Funcs[0])
	n := g.Entry.Succs[0]
	accs := NodeAccesses(n)
	got := accessString(accs)
	want := "R(s) R(t) W(s)"
	if got != want {
		t.Errorf("accesses = %q, want %q", got, want)
	}
}

func TestNodeAccessesDeref(t *testing.T) {
	prog := mustParse(t, "int *p;\nint x;\nvoid f() { *p = x; x = *p; }")
	g := cfg.Build(prog.Funcs[0])
	s1 := g.Entry.Succs[0]
	if got := accessString(NodeAccesses(s1)); got != "R(x) R(p) W(*p)" {
		t.Errorf("*p = x accesses = %q", got)
	}
	s2 := s1.Succs[0]
	if got := accessString(NodeAccesses(s2)); got != "R(p) R(*p) W(x)" {
		t.Errorf("x = *p accesses = %q", got)
	}
}

func TestNodeAccessesArrayAndCond(t *testing.T) {
	prog := mustParse(t, "int a[4];\nint i;\nvoid f() { if (a[i] > 0) { a[i] = 0; } }")
	g := cfg.Build(prog.Funcs[0])
	cond := g.Entry.Succs[0]
	if got := accessString(NodeAccesses(cond)); got != "R(i) R(a)" {
		t.Errorf("cond accesses = %q", got)
	}
	body := cond.Succs[0]
	if got := accessString(NodeAccesses(body)); got != "R(i) W(a)" {
		t.Errorf("body accesses = %q", got)
	}
}

func TestNodeAccessesAddressOfReadsNothing(t *testing.T) {
	prog := mustParse(t, "int g;\nint p;\nvoid f() { p = &g; }")
	g := cfg.Build(prog.Funcs[0])
	n := g.Entry.Succs[0]
	if got := accessString(NodeAccesses(n)); got != "W(p)" {
		t.Errorf("p = &g accesses = %q, want W(p)", got)
	}
}

func accessString(accs []Access) string {
	parts := make([]string, len(accs))
	for i, a := range accs {
		c := "R"
		if a.Type == minic.AccWrite {
			c = "W"
		}
		parts[i] = fmt.Sprintf("%s(%s)", c, a.Key)
	}
	return strings.Join(parts, " ")
}

// pairString canonicalizes a pair for comparison, using source line numbers
// of the first and second access nodes.
func pairString(p Pair) string {
	line := func(n *cfg.Node) int {
		switch n.Kind {
		case cfg.KindCond:
			return exprLine(n.Cond)
		case cfg.KindStmt:
			return stmtLine(n.Stmt)
		}
		return 0
	}
	c := func(t uint8) string {
		if t == minic.AccWrite {
			return "W"
		}
		return "R"
	}
	return fmt.Sprintf("%s:%s@%d-%s@%d", p.Key, c(p.FirstType), line(p.FirstNode), c(p.SecondType), line(p.SecondNode))
}

func stmtLine(s minic.Stmt) int {
	switch st := s.(type) {
	case *minic.AssignStmt:
		return st.Pos.Line
	case *minic.DeclStmt:
		return st.Pos.Line
	case *minic.ExprStmt:
		return st.Pos.Line
	case *minic.ReturnStmt:
		return st.Pos.Line
	}
	return 0
}

func exprLine(x minic.Expr) int {
	switch e := x.(type) {
	case *minic.Binary:
		return e.Pos.Line
	case *minic.Ident:
		return e.Pos.Line
	case *minic.Unary:
		return e.Pos.Line
	}
	return 0
}

// TestPairsFigure4 reproduces the paper's Figure 4: three accesses to
// `shared` (read, write on one path, read) yield exactly three pairs —
// (2,4), (4,8) and (2,8) — because the analysis pairs every access with all
// reaching accesses, not only the closest one.
func TestPairsFigure4(t *testing.T) {
	src := `int shared;
void f() {
    int tmp;
    tmp = shared;
    if (tmp == 0) {
        shared = 1;
    }
    tmp = shared;
}`
	prog := mustParse(t, src)
	fn := prog.Funcs[0]
	g := cfg.Build(fn)
	lsv := LSV(prog, fn)
	pairs := Pairs(g, lsv)

	var got []string
	for _, p := range pairs {
		if p.Key.Name == "shared" {
			got = append(got, pairString(p))
		}
	}
	want := []string{
		"shared:R@4-W@6",
		"shared:R@4-R@8",
		"shared:W@6-R@8",
	}
	if !sameSet(got, want) {
		t.Errorf("pairs for shared = %v, want %v", got, want)
	}
}

// TestPairsFigure3 reproduces Figure 3: two overlapping ARs on two distinct
// shared variables.
func TestPairsFigure3(t *testing.T) {
	src := `int shared1;
int shared2;
void f() {
    int t1;
    int t2;
    t1 = shared1;
    t2 = shared2;
    shared1 = t1 + 1;
    shared2 = t2 + 1;
}`
	prog := mustParse(t, src)
	fn := prog.Funcs[0]
	pairs := Pairs(cfg.Build(fn), LSV(prog, fn))
	var got []string
	for _, p := range pairs {
		if strings.HasPrefix(p.Key.Name, "shared") {
			got = append(got, pairString(p))
		}
	}
	want := []string{
		"shared1:R@6-W@8",
		"shared2:R@7-W@9",
	}
	if !sameSet(got, want) {
		t.Errorf("pairs = %v, want %v", got, want)
	}
}

// TestPairsLoop: accesses inside a loop pair across the back edge.
func TestPairsLoop(t *testing.T) {
	src := `int s;
void f() {
    while (s > 0) {
        s = s - 1;
    }
}`
	prog := mustParse(t, src)
	fn := prog.Funcs[0]
	pairs := Pairs(cfg.Build(fn), LSV(prog, fn))
	var got []string
	for _, p := range pairs {
		if p.Key.Name == "s" {
			got = append(got, pairString(p))
		}
	}
	// cond read @3 pairs with body read @4 and body write @4 (same stmt:
	// s = s - 1 reads then writes), plus the within-statement pair. Pairs
	// pointing backwards across the loop back edge are excluded: a
	// begin_atomic whose end lies in the *previous* iteration would hold
	// its watchpoint across scheduler blocking, which the paper's
	// forward-only Figure 4 pairs avoid.
	want := []string{
		"s:R@3-R@4", // cond -> body read
		"s:R@3-W@4", // cond -> body write
		"s:R@4-W@4", // within statement
	}
	if !sameSet(got, want) {
		t.Errorf("loop pairs = %v, want %v", got, want)
	}
}

// TestPairsPrivateExcluded: accesses to variables outside the LSV form no
// pairs.
func TestPairsPrivateExcluded(t *testing.T) {
	src := `int g;
void f(int a) {
    int p;
    p = a;
    p = p + a;
    g = 1;
}`
	prog := mustParse(t, src)
	fn := prog.Funcs[0]
	pairs := Pairs(cfg.Build(fn), LSV(prog, fn))
	for _, p := range pairs {
		if p.Key.Name == "p" || p.Key.Name == "a" {
			t.Errorf("private variable paired: %v", pairString(p))
		}
	}
}

// TestPairsDerefDistinctFromPointer: p and *p are different shared
// variables and never pair with each other.
func TestPairsDerefDistinct(t *testing.T) {
	src := `int *p;
void f() {
    int x;
    x = *p;
    *p = x + 1;
}`
	prog := mustParse(t, src)
	fn := prog.Funcs[0]
	pairs := Pairs(cfg.Build(fn), LSV(prog, fn))
	sawDerefPair := false
	for _, p := range pairs {
		if p.Key.Deref {
			sawDerefPair = true
			if !p.Key.Deref || p.Key.Name != "p" {
				t.Errorf("bad deref pair %v", pairString(p))
			}
		}
	}
	if !sawDerefPair {
		t.Error("no pairs on *p found")
	}
	// Check specifically the R(*p)@4 - W(*p)@5 pair exists.
	found := false
	for _, p := range pairs {
		if p.Key == (Key{Name: "p", Deref: true}) && p.FirstType == minic.AccRead && p.SecondType == minic.AccWrite {
			found = true
		}
	}
	if !found {
		t.Error("missing R(*p)-W(*p) pair")
	}
}

func sameSet(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	m := map[string]int{}
	for _, g := range got {
		m[g]++
	}
	for _, w := range want {
		m[w]--
		if m[w] < 0 {
			return false
		}
	}
	return true
}

// TestPairsDeterministic: repeated analysis yields identical ordering.
func TestPairsDeterministic(t *testing.T) {
	src := `int a;
int b;
void f() {
    a = b;
    b = a;
    a = a + b;
}`
	prog := mustParse(t, src)
	fn := prog.Funcs[0]
	first := fmt.Sprint(pairsAsStrings(prog, fn))
	for i := 0; i < 5; i++ {
		if got := fmt.Sprint(pairsAsStrings(prog, fn)); got != first {
			t.Fatalf("iteration %d differs:\n%s\n%s", i, first, got)
		}
	}
}

func pairsAsStrings(prog *minic.Program, fn *minic.FuncDecl) []string {
	pairs := Pairs(cfg.Build(fn), LSV(prog, fn))
	out := make([]string, len(pairs))
	for i, p := range pairs {
		out[i] = pairString(p)
	}
	return out
}
