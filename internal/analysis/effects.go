package analysis

import (
	"sort"

	"kivati/internal/cfg"
	"kivati/internal/minic"
)

// This file implements the inter-procedural extension the paper lists as
// future work (§3.5): "Kivati could be enhanced to perform inter-procedural
// analysis to detect ARs that span subroutines, allowing it to detect
// atomicity violations on such ARs as well."
//
// The design is summary-based: for every function we compute the set of
// *global* variables it (transitively) reads and writes — its effect. A call
// statement in a caller is then treated as a compound access to those
// globals, so the reaching-access pairing can form atomic regions that span
// the call: a check in the caller followed by an update inside a helper
// pairs up, with begin_atomic before the preceding access and end_atomic
// right after the call returns. The regions are slightly wider than the
// precise access span (the whole callee executes inside), which is
// conservative: Kivati may monitor longer, never shorter.

// Effect records the access types a function performs on each global.
type Effect map[string]uint8 // global name -> AccRead|AccWrite bits

// FuncEffects computes, to a fixpoint over the call graph, the transitive
// global-variable effects of every function. Builtins have no global
// effects.
func FuncEffects(prog *minic.Program) map[string]Effect {
	globals := map[string]bool{}
	for _, g := range prog.Globals {
		globals[g.Name] = true
	}
	eff := map[string]Effect{}
	calls := map[string][]string{} // caller -> callees
	for _, fn := range prog.Funcs {
		e := Effect{}
		g := cfg.Build(fn)
		for _, n := range g.Nodes {
			for _, a := range NodeAccesses(n) {
				if !a.Key.Deref && globals[a.Key.Name] {
					e[a.Key.Name] |= a.Type
				}
			}
		}
		eff[fn.Name] = e
		walkStmts(fn.Body, func(s minic.Stmt) {
			walkCalls(s, func(c *minic.Call) {
				if prog.Func(c.Name) != nil {
					calls[fn.Name] = append(calls[fn.Name], c.Name)
				}
			})
		})
	}
	for changed := true; changed; {
		changed = false
		for caller, callees := range calls {
			ce := eff[caller]
			for _, callee := range callees {
				for name, bits := range eff[callee] {
					if ce[name]&bits != bits {
						ce[name] |= bits
						changed = true
					}
				}
			}
		}
	}
	return eff
}

// SortedEffect lists an effect's globals deterministically.
func SortedEffect(e Effect) []string {
	out := make([]string, 0, len(e))
	for name := range e {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CallAccesses expands the calls a CFG node makes into pseudo-accesses to
// the globals the callees (transitively) touch, per the effects table. The
// pseudo-access's lvalue names the global directly — the begin_atomic emitted
// for a pair anchored at the call computes the global's address as usual.
// A read-and-written global yields a read access followed by a write access
// (the internal order inside the callee is unknown; emitting both covers
// every pairing the callee could anchor).
func CallAccesses(prog *minic.Program, effects map[string]Effect, n *cfg.Node) []Access {
	var out []Access
	emit := func(c *minic.Call) {
		e := effects[c.Name]
		for _, name := range SortedEffect(e) {
			pos := ExprPos(c)
			lv := &minic.Ident{Pos: pos, Name: name}
			if e[name]&minic.AccRead != 0 {
				out = append(out, Access{
					Key: Key{Name: name}, Type: minic.AccRead, Lvalue: lv, Pos: pos,
				})
			}
			if e[name]&minic.AccWrite != 0 {
				out = append(out, Access{
					Key: Key{Name: name}, Type: minic.AccWrite, Lvalue: lv, Pos: pos,
				})
			}
		}
	}
	collect := func(s minic.Stmt) {
		walkCalls(s, func(c *minic.Call) {
			if prog.Func(c.Name) != nil {
				emit(c)
			}
		})
	}
	switch n.Kind {
	case cfg.KindStmt:
		collect(n.Stmt)
	case cfg.KindCond:
		// Conditions contain calls too (e.g. while (next() < n)).
		walkExprCalls(n.Cond, func(c *minic.Call) {
			if prog.Func(c.Name) != nil {
				emit(c)
			}
		})
	}
	return out
}

func walkExprCalls(x minic.Expr, f func(*minic.Call)) {
	switch e := x.(type) {
	case *minic.Call:
		f(e)
		for _, a := range e.Args {
			walkExprCalls(a, f)
		}
	case *minic.Unary:
		walkExprCalls(e.X, f)
	case *minic.Binary:
		walkExprCalls(e.X, f)
		walkExprCalls(e.Y, f)
	case *minic.Index:
		walkExprCalls(e.Idx, f)
	}
}
