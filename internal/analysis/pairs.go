package analysis

import (
	"sort"

	"kivati/internal/cfg"
	"kivati/internal/dataflow"
	"kivati/internal/minic"
)

// Pair is one consecutive pair of accesses to the same shared variable — the
// definition of an atomic region (§2.2). First and Second identify the CFG
// nodes and the access indices within those nodes' ordered access lists.
// FirstNode may equal SecondNode (e.g. `s = s + 1`), and, via loop back
// edges, may lexically follow SecondNode.
type Pair struct {
	Key         Key
	FirstNode   *cfg.Node
	FirstIdx    int
	SecondNode  *cfg.Node
	SecondIdx   int
	FirstType   uint8 // minic.AccRead / minic.AccWrite
	SecondType  uint8
	FirstLvalue minic.Expr // location expression of the first access
}

// reachingAccess is one element of the data-flow fact set.
type reachingAccess struct {
	key  Key
	node int // CFG node ID
	idx  int // index into the node's access list
	typ  uint8
}

// accessSet is the lattice element: a set of accesses that reach a program
// point. Join is union, transfer is gen-only — the paper's analysis pairs a
// shared access with *all* preceding accesses, not just the closest
// (Figure 4 pairs lines 2–8 despite the intervening access on line 4).
type accessSet map[reachingAccess]bool

func (s accessSet) Equal(other dataflow.Facts) bool {
	o := other.(accessSet)
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

type pairAnalysis struct {
	accesses map[int][]Access // node ID -> ordered shared accesses
}

func (pairAnalysis) Bottom() dataflow.Facts { return accessSet{} }
func (pairAnalysis) Entry() dataflow.Facts  { return accessSet{} }

func (pairAnalysis) Join(a, b dataflow.Facts) dataflow.Facts {
	sa, sb := a.(accessSet), b.(accessSet)
	if len(sb) == 0 {
		return sa
	}
	out := make(accessSet, len(sa)+len(sb))
	for k := range sa {
		out[k] = true
	}
	for k := range sb {
		out[k] = true
	}
	return out
}

func (p pairAnalysis) Transfer(n *cfg.Node, in dataflow.Facts) dataflow.Facts {
	accs := p.accesses[n.ID]
	if len(accs) == 0 {
		return in
	}
	out := make(accessSet, len(in.(accessSet))+len(accs))
	for k := range in.(accessSet) {
		out[k] = true
	}
	for i, a := range accs {
		out[reachingAccess{key: a.Key, node: n.ID, idx: i, typ: a.Type}] = true
	}
	return out
}

// posBefore reports whether a lexically precedes b.
func posBefore(a, b minic.Pos) bool {
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Col < b.Col
}

// Pairs runs the reaching-access analysis over g and returns every
// consecutive access pair to a shared variable, deterministically ordered.
// Only variables in the LSV participate.
func Pairs(g *cfg.Graph, lsv map[string]bool) []Pair {
	return PairsAdmit(g, func(a Access) (Key, bool) {
		return a.Key, lsv[a.Key.Name]
	})
}

// PairsAdmit is the generalized pairing analysis: admit decides, per access,
// whether it participates and under which key. The precise-analysis mode
// (§3.5 extension) uses it to drop non-escaping locals and to fold aliased
// dereferences onto their pointees.
func PairsAdmit(g *cfg.Graph, admit func(Access) (Key, bool)) []Pair {
	return PairsExtra(g, admit, nil)
}

// PairsExtra additionally lets the caller contribute pseudo-accesses per
// node — the inter-procedural extension models a call as a compound access
// to the globals the callee transitively touches. Extra accesses follow the
// node's own accesses in evaluation order.
func PairsExtra(g *cfg.Graph, admit func(Access) (Key, bool), extra func(*cfg.Node) []Access) []Pair {
	pa := pairAnalysis{accesses: map[int][]Access{}}
	for _, n := range g.Nodes {
		var shared []Access
		accs := NodeAccesses(n)
		if extra != nil {
			accs = append(accs, extra(n)...)
		}
		for _, a := range accs {
			key, ok := admit(a)
			if !ok {
				continue
			}
			a.Key = key
			if a.Pos == (minic.Pos{}) {
				a.Pos = ExprPos(a.Lvalue)
			}
			shared = append(shared, a)
		}
		if len(shared) > 0 {
			pa.accesses[n.ID] = shared
		}
	}
	sol := dataflow.Solve(g, pa)

	byNode := make(map[int]*cfg.Node, len(g.Nodes))
	for _, n := range g.Nodes {
		byNode[n.ID] = n
	}

	type pairKey struct {
		key                      Key
		fNode, fIdx, sNode, sIdx int
	}
	dedup := map[pairKey]bool{}
	var pairs []Pair
	add := func(key Key, fNode, fIdx int, fTyp uint8, fLv minic.Expr, sNode, sIdx int, sTyp uint8) {
		pk := pairKey{key, fNode, fIdx, sNode, sIdx}
		if dedup[pk] {
			return
		}
		dedup[pk] = true
		pairs = append(pairs, Pair{
			Key:         key,
			FirstNode:   byNode[fNode],
			FirstIdx:    fIdx,
			SecondNode:  byNode[sNode],
			SecondIdx:   sIdx,
			FirstType:   fTyp,
			SecondType:  sTyp,
			FirstLvalue: fLv,
		})
	}

	for _, n := range g.Nodes {
		accs := pa.accesses[n.ID]
		if len(accs) == 0 {
			continue
		}
		in := sol.In[n.ID].(accessSet)
		for i, a := range accs {
			// Pair with accesses reaching from predecessors. Pairs must be
			// lexically forward: a pair whose "first" access lies after its
			// "second" in the source can only arise through a loop back
			// edge, and a begin_atomic that outlives the loop iteration
			// would hold its watchpoint across arbitrary code (including
			// blocking in the scheduler), which the paper's Figure 4
			// forward-only pairs avoid. Same-node self-reach (an access
			// reaching itself around a loop) is excluded for the same
			// reason; within-statement pairs come from the ordered
			// intra-node loop below.
			for r := range in {
				if r.key != a.Key || r.node == n.ID {
					continue
				}
				first := pa.accesses[r.node][r.idx]
				if !posBefore(first.Pos, a.Pos) {
					continue
				}
				add(a.Key, r.node, r.idx, r.typ, first.Lvalue, n.ID, i, a.Type)
			}
			// Pair with earlier accesses within the same node.
			for j := 0; j < i; j++ {
				if accs[j].Key == a.Key {
					add(a.Key, n.ID, j, accs[j].Type, accs[j].Lvalue, n.ID, i, a.Type)
				}
			}
		}
	}

	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if a.Key != b.Key {
			return a.Key.String() < b.Key.String()
		}
		if a.FirstNode.ID != b.FirstNode.ID {
			return a.FirstNode.ID < b.FirstNode.ID
		}
		if a.FirstIdx != b.FirstIdx {
			return a.FirstIdx < b.FirstIdx
		}
		if a.SecondNode.ID != b.SecondNode.ID {
			return a.SecondNode.ID < b.SecondNode.ID
		}
		return a.SecondIdx < b.SecondIdx
	})
	return pairs
}
