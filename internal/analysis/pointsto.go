package analysis

import (
	"sort"

	"kivati/internal/minic"
)

// This file implements the pointer analysis the paper lists as future work
// (§3.5): "pointer analysis could be used to better identify shared
// variables … as well as identify ARs involving local accesses to the same
// shared variable that occur due to an alias."
//
// It is a flow-insensitive, Andersen-style inclusion analysis over the whole
// program, with two clients:
//
//   - PreciseLSV: a variable is shared only if another thread can actually
//     reach its storage — globals, and locals whose address escapes. The
//     prototype LSV's "data-flow dependent on a shared variable" rule
//     over-approximates wildly (a local copy of a shared value is not itself
//     remotely accessible); the precise rule removes those monitors.
//   - Resolve: a dereference *p whose points-to set is a single named
//     variable is keyed as that variable, so aliased accesses pair with
//     direct ones.

// Ref names a variable: Func is "" for globals.
type Ref struct {
	Func string
	Name string
}

func (r Ref) String() string {
	if r.Func == "" {
		return r.Name
	}
	return r.Func + "." + r.Name
}

// PointsTo is the fixpoint result.
type PointsTo struct {
	prog *minic.Program
	// sets maps a pointer variable to the variables it may point to.
	sets map[Ref]map[Ref]bool
	// escaped marks variables whose address is taken anywhere.
	escaped map[Ref]bool
}

// constraint is one inclusion edge: pts(src) ⊆ pts(dst); for addr edges the
// target itself joins pts(dst).
type constraint struct {
	dst  Ref
	src  Ref  // for copy edges
	addr *Ref // for address-of edges
}

// ComputePointsTo runs the analysis over the program.
func ComputePointsTo(prog *minic.Program) *PointsTo {
	pt := &PointsTo{
		prog:    prog,
		sets:    map[Ref]map[Ref]bool{},
		escaped: map[Ref]bool{},
	}
	var cons []constraint

	globals := map[string]bool{}
	for _, g := range prog.Globals {
		globals[g.Name] = true
	}
	// ref resolves a name in a function scope to its Ref.
	refOf := func(fn *minic.FuncDecl, name string) Ref {
		if !globals[name] {
			return Ref{Func: fn.Name, Name: name}
		}
		// A local declaration shadows a global only if declared; MiniC
		// checkProgram rejects duplicate names within a function, but a
		// local may share a global's name only by shadowing — scan params
		// and decls.
		for _, p := range fn.Params {
			if p.Name == name {
				return Ref{Func: fn.Name, Name: name}
			}
		}
		shadowed := false
		walkDecls(fn.Body, func(d *minic.VarDecl) {
			if d.Name == name {
				shadowed = true
			}
		})
		if shadowed {
			return Ref{Func: fn.Name, Name: name}
		}
		return Ref{Name: name}
	}

	// rhsSources lists the pointer sources of an expression: address-of
	// targets, pointer variables, and pointer-returning calls (modeled via
	// per-function return refs).
	var rhsSources func(fn *minic.FuncDecl, x minic.Expr, out *[]constraint, dst Ref)
	rhsSources = func(fn *minic.FuncDecl, x minic.Expr, out *[]constraint, dst Ref) {
		switch e := x.(type) {
		case *minic.Unary:
			if e.Op == "&" {
				switch t := e.X.(type) {
				case *minic.Ident:
					r := refOf(fn, t.Name)
					pt.escaped[r] = true
					*out = append(*out, constraint{dst: dst, addr: &r})
				case *minic.Index:
					r := refOf(fn, t.Name)
					pt.escaped[r] = true
					*out = append(*out, constraint{dst: dst, addr: &r})
				}
				return
			}
			rhsSources(fn, e.X, out, dst)
		case *minic.Ident:
			*out = append(*out, constraint{dst: dst, src: refOf(fn, e.Name)})
		case *minic.Binary:
			rhsSources(fn, e.X, out, dst)
			rhsSources(fn, e.Y, out, dst)
		case *minic.Call:
			if callee := pt.prog.Func(e.Name); callee != nil {
				if callee.RetPtr {
					*out = append(*out, constraint{dst: dst, src: Ref{Func: e.Name, Name: "$ret"}})
				}
			}
		}
	}

	for _, fn := range prog.Funcs {
		fn := fn
		walkStmts(fn.Body, func(s minic.Stmt) {
			switch st := s.(type) {
			case *minic.DeclStmt:
				if st.Decl.Init != nil {
					rhsSources(fn, st.Decl.Init, &cons, Ref{Func: fn.Name, Name: st.Decl.Name})
				}
			case *minic.AssignStmt:
				if id, ok := st.LHS.(*minic.Ident); ok {
					rhsSources(fn, st.RHS, &cons, refOf(fn, id.Name))
				}
			case *minic.ReturnStmt:
				if st.X != nil && fn.RetPtr {
					rhsSources(fn, st.X, &cons, Ref{Func: fn.Name, Name: "$ret"})
				}
			case *minic.ExprStmt:
				// handled below via calls
			}
			// Parameter binding for every call in the statement.
			walkCalls(s, func(c *minic.Call) {
				callee := prog.Func(c.Name)
				if callee == nil {
					return
				}
				for i, p := range callee.Params {
					if i >= len(c.Args) {
						break
					}
					rhsSources(fn, c.Args[i], &cons, Ref{Func: callee.Name, Name: p.Name})
				}
			})
		})
	}

	// Fixpoint.
	add := func(dst, pointee Ref) bool {
		set := pt.sets[dst]
		if set == nil {
			set = map[Ref]bool{}
			pt.sets[dst] = set
		}
		if set[pointee] {
			return false
		}
		set[pointee] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		for _, c := range cons {
			if c.addr != nil {
				if add(c.dst, *c.addr) {
					changed = true
				}
				continue
			}
			for pointee := range pt.sets[c.src] {
				if add(c.dst, pointee) {
					changed = true
				}
			}
		}
	}
	return pt
}

// Pointees returns the sorted points-to set of a pointer variable in a
// function scope ("" for a global pointer).
func (pt *PointsTo) Pointees(fn, name string) []Ref {
	r := Ref{Func: fn, Name: name}
	if _, global := pt.sets[Ref{Name: name}]; global && !pt.isLocal(fn, name) {
		r = Ref{Name: name}
	}
	var out []Ref
	for p := range pt.sets[r] {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func (pt *PointsTo) isLocal(fn, name string) bool {
	f := pt.prog.Func(fn)
	if f == nil {
		return false
	}
	for _, p := range f.Params {
		if p.Name == name {
			return true
		}
	}
	found := false
	walkDecls(f.Body, func(d *minic.VarDecl) {
		if d.Name == name {
			found = true
		}
	})
	return found
}

// Escapes reports whether the variable's address is taken anywhere.
func (pt *PointsTo) Escapes(fn, name string) bool {
	if pt.escaped[Ref{Func: fn, Name: name}] {
		return true
	}
	return !pt.isLocal(fn, name) && pt.escaped[Ref{Name: name}]
}

// Resolve maps a dereference of pointer `name` in function `fn` to a
// concrete variable when the points-to set is a singleton. ok is false when
// the target is ambiguous or unknown.
func (pt *PointsTo) Resolve(fn, name string) (Ref, bool) {
	ps := pt.Pointees(fn, name)
	if len(ps) == 1 {
		return ps[0], true
	}
	return Ref{}, false
}

// PreciseLSV computes the improved list of shared variables for a function:
// globals plus locals and parameters whose address escapes. A local's stack
// slot is unreachable from other threads otherwise, so value-dependence
// alone no longer marks it shared — the big precision win over the
// prototype LSV. (Dereferences are admitted separately by the pairing's
// resolver: the *pointee* is shared even when the pointer variable's own
// slot is private.)
func PreciseLSV(prog *minic.Program, fn *minic.FuncDecl, pt *PointsTo) map[string]bool {
	lsv := map[string]bool{}
	for _, g := range prog.Globals {
		lsv[g.Name] = true
	}
	for _, p := range fn.Params {
		if pt.Escapes(fn.Name, p.Name) {
			lsv[p.Name] = true
		}
	}
	walkDecls(fn.Body, func(d *minic.VarDecl) {
		if pt.Escapes(fn.Name, d.Name) {
			lsv[d.Name] = true
		}
	})
	return lsv
}

// AST walking helpers.

func walkStmts(b *minic.Block, f func(minic.Stmt)) {
	for _, s := range b.Stmts {
		f(s)
		switch st := s.(type) {
		case *minic.IfStmt:
			walkStmts(st.Then, f)
			if st.Else != nil {
				walkStmts(st.Else, f)
			}
		case *minic.WhileStmt:
			walkStmts(st.Body, f)
		}
	}
}

func walkDecls(b *minic.Block, f func(*minic.VarDecl)) {
	walkStmts(b, func(s minic.Stmt) {
		if d, ok := s.(*minic.DeclStmt); ok {
			f(d.Decl)
		}
	})
}

func walkCalls(s minic.Stmt, f func(*minic.Call)) {
	var walkExpr func(minic.Expr)
	walkExpr = func(x minic.Expr) {
		switch e := x.(type) {
		case *minic.Call:
			f(e)
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *minic.Unary:
			walkExpr(e.X)
		case *minic.Binary:
			walkExpr(e.X)
			walkExpr(e.Y)
		case *minic.Index:
			walkExpr(e.Idx)
		}
	}
	switch st := s.(type) {
	case *minic.DeclStmt:
		if st.Decl.Init != nil {
			walkExpr(st.Decl.Init)
		}
	case *minic.AssignStmt:
		walkExpr(st.LHS)
		walkExpr(st.RHS)
	case *minic.ExprStmt:
		walkExpr(st.X)
	case *minic.ReturnStmt:
		if st.X != nil {
			walkExpr(st.X)
		}
	case *minic.IfStmt:
		walkExpr(st.Cond)
	case *minic.WhileStmt:
		walkExpr(st.Cond)
	}
}
