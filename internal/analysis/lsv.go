package analysis

import (
	"sort"

	"kivati/internal/minic"
)

// LSV computes the List of Shared Variables for one function (§3.1):
//
//   - seeded with all global variables,
//   - plus any arguments passed by reference (pointer parameters),
//   - plus any local assigned a pointer returned from a called subroutine,
//   - closed under data-flow dependence: any variable assigned an expression
//     that reads an LSV member (or takes its address) joins the LSV,
//
// iterated to a fixpoint. The LSV over-approximates: variables in it that
// are not actually shared cost monitoring overhead but can never produce a
// violation (they are never remotely accessed).
func LSV(prog *minic.Program, fn *minic.FuncDecl) map[string]bool {
	lsv := make(map[string]bool)
	for _, g := range prog.Globals {
		lsv[g.Name] = true
	}
	for _, p := range fn.Params {
		if p.Type.Ptr {
			lsv[p.Name] = true
		}
	}

	// Collect every assignment (declarations with initializers included)
	// in the function body, flow-insensitively.
	type assign struct {
		lhs string
		rhs minic.Expr
	}
	var assigns []assign
	var walkBlock func(b *minic.Block)
	walkStmt := func(s minic.Stmt) {
		switch st := s.(type) {
		case *minic.DeclStmt:
			if st.Decl.Init != nil {
				assigns = append(assigns, assign{lhs: st.Decl.Name, rhs: st.Decl.Init})
			}
		case *minic.AssignStmt:
			if id, ok := st.LHS.(*minic.Ident); ok {
				assigns = append(assigns, assign{lhs: id.Name, rhs: st.RHS})
			}
		}
	}
	walkBlock = func(b *minic.Block) {
		for _, s := range b.Stmts {
			walkStmt(s)
			switch st := s.(type) {
			case *minic.IfStmt:
				walkBlock(st.Then)
				if st.Else != nil {
					walkBlock(st.Else)
				}
			case *minic.WhileStmt:
				walkBlock(st.Body)
			}
		}
	}
	walkBlock(fn.Body)

	for changed := true; changed; {
		changed = false
		for _, a := range assigns {
			if lsv[a.lhs] {
				continue
			}
			dependent := callsReturningPointer(prog, a.rhs) || takesAddressOf(a.rhs, lsv)
			if !dependent {
				for name := range readNames(a.rhs) {
					if lsv[name] {
						dependent = true
						break
					}
				}
			}
			if dependent {
				lsv[a.lhs] = true
				changed = true
			}
		}
	}
	return lsv
}

// SortedLSV returns the LSV as a sorted slice, for deterministic output.
func SortedLSV(lsv map[string]bool) []string {
	out := make([]string, 0, len(lsv))
	for name := range lsv {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
