package analysis

import (
	"testing"

	"kivati/internal/cfg"
	"kivati/internal/minic"
)

func TestFuncEffectsDirect(t *testing.T) {
	prog := mustParse(t, `
int g;
int h;
void reader() {
    int t;
    t = g;
}
void writer() {
    h = 1;
}
void both() {
    g = g + h;
}`)
	eff := FuncEffects(prog)
	if eff["reader"]["g"] != minic.AccRead {
		t.Errorf("reader effect on g = %d", eff["reader"]["g"])
	}
	if eff["writer"]["h"] != minic.AccWrite {
		t.Errorf("writer effect on h = %d", eff["writer"]["h"])
	}
	if eff["both"]["g"] != minic.AccRead|minic.AccWrite || eff["both"]["h"] != minic.AccRead {
		t.Errorf("both effects = %v", eff["both"])
	}
}

func TestFuncEffectsTransitive(t *testing.T) {
	prog := mustParse(t, `
int g;
void leaf() {
    g = g + 1;
}
void mid() {
    leaf();
}
void top() {
    mid();
}`)
	eff := FuncEffects(prog)
	want := uint8(minic.AccRead | minic.AccWrite)
	for _, fn := range []string{"leaf", "mid", "top"} {
		if eff[fn]["g"] != want {
			t.Errorf("%s effect on g = %d, want %d", fn, eff[fn]["g"], want)
		}
	}
}

func TestFuncEffectsRecursion(t *testing.T) {
	prog := mustParse(t, `
int g;
void a(int n) {
    if (n > 0) {
        b(n - 1);
    }
    g = n;
}
void b(int n) {
    if (n > 0) {
        a(n - 1);
    }
}`)
	eff := FuncEffects(prog)
	if eff["b"]["g"]&minic.AccWrite == 0 {
		t.Error("mutual recursion: b must inherit a's write to g")
	}
}

// TestInterProceduralPairSpansCall reproduces the headline capability: a
// caller-side check paired with a helper's update — a Figure 1 bug factored
// into a subroutine, invisible to the intra-procedural analysis.
func TestInterProceduralPairSpansCall(t *testing.T) {
	prog := mustParse(t, `
int shared_ptr;
void init() {
    shared_ptr = 42;
}
void update() {
    if (shared_ptr == 0) {
        init();
    }
}`)
	fn := prog.Func("update")
	g := cfg.Build(fn)
	lsv := LSV(prog, fn)
	admit := func(a Access) (Key, bool) { return a.Key, lsv[a.Key.Name] }

	// Intra-procedural: the caller sees only the read; no pair.
	intra := PairsAdmit(g, admit)
	for _, p := range intra {
		if p.Key.Name == "shared_ptr" {
			t.Fatalf("intra-procedural analysis should find no pair on shared_ptr, got %v", p)
		}
	}

	// Inter-procedural: the call carries init's write effect; the
	// check-then-act pair appears.
	effects := FuncEffects(prog)
	inter := PairsExtra(g, admit, func(n *cfg.Node) []Access {
		return CallAccesses(prog, effects, n)
	})
	found := false
	for _, p := range inter {
		if p.Key.Name == "shared_ptr" && p.FirstType == minic.AccRead && p.SecondType == minic.AccWrite {
			found = true
		}
	}
	if !found {
		t.Error("inter-procedural analysis missed the R(check)-W(call) pair")
	}
}

func TestCallAccessesOrderDeterministic(t *testing.T) {
	prog := mustParse(t, `
int a;
int b;
void touch() {
    a = b;
    b = a;
}
void f() {
    touch();
}`)
	effects := FuncEffects(prog)
	g := cfg.Build(prog.Func("f"))
	var callNode *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.KindStmt {
			if _, ok := n.Stmt.(*minic.ExprStmt); ok {
				callNode = n
			}
		}
	}
	first := accessString(CallAccesses(prog, effects, callNode))
	for i := 0; i < 5; i++ {
		if got := accessString(CallAccesses(prog, effects, callNode)); got != first {
			t.Fatalf("CallAccesses not deterministic: %q vs %q", got, first)
		}
	}
	// a and b each read+written: R then W per variable, sorted by name.
	if first != "R(a) W(a) R(b) W(b)" {
		t.Errorf("call accesses = %q", first)
	}
}
