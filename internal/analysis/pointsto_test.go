package analysis

import (
	"testing"

	"kivati/internal/cfg"
	"kivati/internal/minic"
)

func TestPointsToBasics(t *testing.T) {
	prog := mustParse(t, `
int g1;
int g2;
int *gp;
void f() {
    int p;
    int q;
    int r;
    p = &g1;
    q = p;
    if (g2) {
        q = &g2;
    }
    r = 5;
}`)
	pt := ComputePointsTo(prog)
	if got := pt.Pointees("f", "p"); len(got) != 1 || got[0].Name != "g1" {
		t.Errorf("pts(p) = %v, want [g1]", got)
	}
	if got := pt.Pointees("f", "q"); len(got) != 2 {
		t.Errorf("pts(q) = %v, want two targets", got)
	}
	if got := pt.Pointees("f", "r"); len(got) != 0 {
		t.Errorf("pts(r) = %v, want empty", got)
	}
	if _, ok := pt.Resolve("f", "p"); !ok {
		t.Error("Resolve(p) should succeed (singleton)")
	}
	if _, ok := pt.Resolve("f", "q"); ok {
		t.Error("Resolve(q) should fail (ambiguous)")
	}
	if !pt.Escapes("", "g1") || !pt.Escapes("", "g2") {
		t.Error("address-taken globals not marked escaped")
	}
}

func TestPointsToThroughCallsAndReturns(t *testing.T) {
	prog := mustParse(t, `
int g;
int *mk() {
    int p;
    p = &g;
    return p;
}
void callee(int *q) {
    *q = 1;
}
void f() {
    int r;
    r = mk();
    callee(r);
}`)
	pt := ComputePointsTo(prog)
	if got := pt.Pointees("f", "r"); len(got) != 1 || got[0].Name != "g" {
		t.Errorf("pts(r through return) = %v, want [g]", got)
	}
	if got := pt.Pointees("callee", "q"); len(got) != 1 || got[0].Name != "g" {
		t.Errorf("pts(q through param) = %v, want [g]", got)
	}
}

func TestPointsToLocalEscape(t *testing.T) {
	prog := mustParse(t, `
int g;
void sink(int *p) {
    *p = 0;
}
void f() {
    int kept;
    int leaked;
    kept = g;
    sink(&leaked);
}`)
	pt := ComputePointsTo(prog)
	if pt.Escapes("f", "kept") {
		t.Error("kept does not escape")
	}
	if !pt.Escapes("f", "leaked") {
		t.Error("leaked escapes via &leaked")
	}
	fn := prog.Func("f")
	lsv := PreciseLSV(prog, fn, pt)
	if lsv["kept"] {
		t.Error("precise LSV contains the value-dependent private local")
	}
	if !lsv["leaked"] || !lsv["g"] {
		t.Errorf("precise LSV missing escaping local or global: %v", SortedLSV(lsv))
	}
	// The prototype LSV, by contrast, includes kept.
	if crude := LSV(prog, fn); !crude["kept"] {
		t.Error("prototype LSV should include the value-dependent local")
	}
}

func TestPairsAdmitAliasFolding(t *testing.T) {
	// An AR formed across an alias: g is read directly and written
	// through p; with singleton points-to resolution the two accesses
	// pair — the capability the paper's §3.5 asks for.
	prog := mustParse(t, `
int g;
void f() {
    int *p;
    int t;
    p = &g;
    t = g;
    *p = t + 1;
}`)
	fn := prog.Func("f")
	g := cfg.Build(fn)
	pt := ComputePointsTo(prog)
	lsv := PreciseLSV(prog, fn, pt)
	pairs := PairsAdmit(g, func(a Access) (Key, bool) {
		if a.Key.Deref {
			if ref, ok := pt.Resolve("f", a.Key.Name); ok && (ref.Func == "" || ref.Func == "f") {
				return Key{Name: ref.Name}, true
			}
			return a.Key, true
		}
		return a.Key, lsv[a.Key.Name]
	})
	found := false
	for _, pr := range pairs {
		if pr.Key == (Key{Name: "g"}) && pr.FirstType == minic.AccRead && pr.SecondType == minic.AccWrite {
			found = true
		}
	}
	if !found {
		var got []string
		for _, pr := range pairs {
			got = append(got, pairString(pr))
		}
		t.Errorf("alias R(g)-W(*p->g) pair not found; pairs: %v", got)
	}
	// The crude analysis cannot find it (different keys).
	crude := Pairs(g, LSV(prog, fn))
	for _, pr := range crude {
		if pr.Key == (Key{Name: "g"}) && pr.SecondType == minic.AccWrite && pr.FirstType == minic.AccRead {
			t.Error("crude analysis unexpectedly paired across the alias")
		}
	}
}

func TestPreciseReducesARCount(t *testing.T) {
	// A compute-heavy function with many value-dependent locals: the
	// precise analysis must produce strictly fewer pairs.
	prog := mustParse(t, `
int shared;
void f() {
    int a;
    int b;
    int c;
    a = shared;
    b = a * 2;
    c = b + a;
    b = c - 1;
    a = b;
    shared = a;
}`)
	fn := prog.Func("f")
	g := cfg.Build(fn)
	crude := len(Pairs(g, LSV(prog, fn)))
	pt := ComputePointsTo(prog)
	lsv := PreciseLSV(prog, fn, pt)
	precise := len(PairsAdmit(g, func(a Access) (Key, bool) {
		return a.Key, !a.Key.Deref && lsv[a.Key.Name]
	}))
	if precise >= crude {
		t.Errorf("precise pairs (%d) not below crude (%d)", precise, crude)
	}
	if precise == 0 {
		t.Error("precise analysis dropped the real shared AR")
	}
}
