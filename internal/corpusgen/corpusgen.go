// Package corpusgen is the seeded procedural bug-corpus generator: it
// emits bounded multi-threaded MiniC programs with injected atomicity-
// violation shapes drawn from the Figure 2 interleaving matrix, each
// labeled with its category, witness variables and expected differential-
// oracle verdict. The hand-written 11-bug corpus pins the oracle's
// semantics on known shapes; this package scales the same construction to
// hundreds of programs so the oracle becomes a statistical gate (see
// internal/harness RunSoak).
//
// Every program follows the structural soundness rules of the exploration
// fixtures (internal/bugs/explore.go):
//
//   - Witness variables are 0 in every serial (non-preemptive) execution
//     and are incremented only when a thread's own reads observe one of
//     the Figure 2 non-serializable interleavings, strictly before the
//     region's final write — so they stay meaningful under the engine's
//     delayed-write escape hatch.
//   - Witness regions are read-first wherever the shape allows, and every
//     remote reset/poke/peek lives in a single-access helper function that
//     owns no atomic region (the annotator pairs per function), so no
//     begin_atomic is ever suspended into the begin-retry giveup that
//     would leak an unmonitored window.
//   - The W-R-W and W-W-R shapes are asymmetric — only one thread owns a
//     region on the bug variable — which keeps the write-first begins of
//     those regions unsuspendable for the same reason.
//
// Benign decoys are correctly locked look-alikes of the bug shapes plus
// lock-protected counters with commutative updates: every serial order and
// every explored schedule agrees on their observables, so any divergence
// flagged on them is a false positive of the oracle, not a bug.
//
// Generation is deterministic and parallelism-independent: program k is
// derived from (Options.Seed, k) alone via a splitmix64 stream, so 1-way
// and 8-way generation produce byte-identical sources and labels.
package corpusgen

import (
	"fmt"
	"math/rand"
	"strings"

	"kivati/internal/pool"
)

// Category is one interleaving shape from the Figure 2 matrix, or a benign
// decoy.
type Category string

const (
	// CatRWR: two reads bracketing a compute disagree iff a remote write
	// landed in the window (lost update).
	CatRWR Category = "R-W-R"
	// CatWWR: a just-written value changes before the owner's next read
	// (interleaved update).
	CatWWR Category = "W-W-R"
	// CatRWW: check-then-act — a remote init lands between the check and
	// the assignment, observed by a re-check read.
	CatRWW Category = "R-W-W"
	// CatWRW: torn publish — a reader observes the transient value between
	// the writer's invalidate and republish (dirty read).
	CatWRW Category = "W-R-W"
	// CatBenign: correctly locked decoy; flagging it is a false positive.
	CatBenign Category = "benign"
)

// Categories lists every category in report order.
func Categories() []Category {
	return []Category{CatRWR, CatWWR, CatRWW, CatWRW, CatBenign}
}

// bugCategories is the round-robin order bug programs cycle through.
var bugCategories = []Category{CatRWR, CatWWR, CatRWW, CatWRW}

// Verdict is a program's expected differential-oracle outcome.
type Verdict string

const (
	// ExpectBug: vanilla exploration must find at least one divergent
	// schedule; prevention must find none.
	ExpectBug Verdict = "bug"
	// ExpectBenign: neither mode may diverge from the serial reference.
	ExpectBenign Verdict = "benign"
)

// Program is one generated, labeled corpus entry.
type Program struct {
	// Name is gen/<index>-<shape>, unique within a corpus.
	Name  string `json:"name"`
	Index int    `json:"index"`
	// Seed is the corpus base seed; the program regenerates from
	// (Seed, Index) alone.
	Seed     int64    `json:"seed"`
	Category Category `json:"category"`
	Expect   Verdict  `json:"expect"`
	// WitnessVars are the schedule-divergence witnesses (empty for benign
	// programs, whose observables are the protected counters themselves).
	WitnessVars []string `json:"witness_vars,omitempty"`
	// SnapshotVars are the differential-oracle observables: witnesses plus
	// every lock-protected decoy counter.
	SnapshotVars []string `json:"snapshot_vars"`
	Source       string   `json:"source"`
}

// Options configure corpus generation.
type Options struct {
	Count int   // corpus size (default 50)
	Seed  int64 // base seed; program k derives from (Seed, k)
	// BenignEvery makes every k-th program a benign decoy (default 5;
	// negative disables benign programs entirely).
	BenignEvery int
	// Arrays adds a lock-protected ring-buffer decoy updated through
	// dynamic indices modulo a runtime-loaded ring size: the divisor is
	// beyond the value-range analysis, so the indirect accesses keep an
	// Unbounded static footprint, exercising the fast path's footprint
	// escape (vm.Demotions.Unbounded).
	Arrays bool
	// BoundedArrays adds a lock-protected fixed-length array decoy swept by
	// a static-bound loop: the value-range analysis proves the index range,
	// so the indirect accesses get a tight footprint and the enclosing
	// blocks must never demote via Unbounded.
	BoundedArrays bool
	// Iters is the per-thread iteration budget before per-program jitter
	// (default 12; the generator draws from [Iters-2, Iters+2]).
	Iters int
	// Parallelism bounds the generation worker pool (0 = GOMAXPROCS).
	// Output is identical at every setting.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Count == 0 {
		o.Count = 50
	}
	if o.BenignEvery == 0 {
		o.BenignEvery = 5
	}
	if o.BenignEvery < 0 {
		o.BenignEvery = 0
	}
	if o.Iters == 0 {
		o.Iters = 12
	}
	return o
}

// CategoryFor is the (pure) category assignment: with BenignEvery = k > 0
// every k-th program is benign, and the bug programs in between cycle
// through the four Figure 2 shapes round-robin, so every category is
// populated in any corpus of at least 5 programs.
func CategoryFor(index, benignEvery int) Category {
	if benignEvery > 0 && (index+1)%benignEvery == 0 {
		return CatBenign
	}
	seq := index
	if benignEvery > 0 {
		seq = index - (index+1)/benignEvery
	}
	return bugCategories[seq%len(bugCategories)]
}

// Generate emits the corpus. Results are slotted by index, so output is
// byte-identical at any Parallelism.
func Generate(opts Options) ([]*Program, error) {
	opts = opts.withDefaults()
	jobs := make([]func() (*Program, error), opts.Count)
	for k := 0; k < opts.Count; k++ {
		k := k
		jobs[k] = func() (*Program, error) { return One(opts, k), nil }
	}
	return pool.Run(pool.Workers(opts.Parallelism), jobs)
}

// One generates program index of the corpus described by opts, from
// (opts.Seed, index) alone.
func One(opts Options, index int) *Program {
	opts = opts.withDefaults()
	cat := CategoryFor(index, opts.BenignEvery)
	b := newBuilder(rand.New(rand.NewSource(mix(opts.Seed, index))), opts)
	b.emit(cat)
	p := &Program{
		Name:         fmt.Sprintf("gen/%d-%s", index, shapeSlug(cat)),
		Index:        index,
		Seed:         opts.Seed,
		Category:     cat,
		Expect:       ExpectBug,
		WitnessVars:  b.witness,
		SnapshotVars: append(append([]string(nil), b.witness...), b.observed...),
		Source:       b.source(),
	}
	if cat == CatBenign {
		p.Expect = ExpectBenign
	}
	return p
}

// shapeSlug compresses a category into a name-safe suffix.
func shapeSlug(c Category) string {
	return strings.ToLower(strings.ReplaceAll(string(c), "-", ""))
}

// mix derives program index's generator seed from the corpus seed with a
// splitmix64 step, so neighboring indices get decorrelated streams.
func mix(seed int64, index int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(index+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4b9b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
