package corpusgen_test

import (
	"fmt"
	"testing"

	"kivati/internal/annotate"
	"kivati/internal/core"
	"kivati/internal/corpusgen"
	"kivati/internal/kernel"
	"kivati/internal/vm"
)

// TestCategoryCoverage: the round-robin assignment populates every
// category in any 5-program window and puts benign decoys exactly at every
// BenignEvery-th slot.
func TestCategoryCoverage(t *testing.T) {
	progs, err := corpusgen.Generate(corpusgen.Options{Count: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[corpusgen.Category]int{}
	for _, p := range progs {
		counts[p.Category]++
		if got := corpusgen.CategoryFor(p.Index, 5); got != p.Category {
			t.Errorf("program %d: category %q, CategoryFor says %q", p.Index, p.Category, got)
		}
		wantBenign := (p.Index+1)%5 == 0
		if (p.Category == corpusgen.CatBenign) != wantBenign {
			t.Errorf("program %d: category %q, benign slot = %v", p.Index, p.Category, wantBenign)
		}
		if (p.Expect == corpusgen.ExpectBenign) != (p.Category == corpusgen.CatBenign) {
			t.Errorf("program %d: category %q but expect %q", p.Index, p.Category, p.Expect)
		}
	}
	for _, c := range corpusgen.Categories() {
		if counts[c] == 0 {
			t.Errorf("category %q missing from a 20-program corpus", c)
		}
	}
	if counts[corpusgen.CatBenign] != 4 {
		t.Errorf("benign programs = %d, want 4", counts[corpusgen.CatBenign])
	}
}

// TestDeterministicAcrossParallelism: same seed => byte-identical sources
// and identical labels at 1-way and 8-way generation.
func TestDeterministicAcrossParallelism(t *testing.T) {
	opts := corpusgen.Options{Count: 32, Seed: 11, Arrays: true}
	opts.Parallelism = 1
	serial, err := corpusgen.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 8
	parallel, err := corpusgen.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Source != b.Source {
			t.Errorf("program %d: sources differ between 1-way and 8-way generation", i)
		}
		if a.Name != b.Name || a.Category != b.Category || a.Expect != b.Expect ||
			fmt.Sprint(a.WitnessVars) != fmt.Sprint(b.WitnessVars) ||
			fmt.Sprint(a.SnapshotVars) != fmt.Sprint(b.SnapshotVars) {
			t.Errorf("program %d: labels differ between 1-way and 8-way generation", i)
		}
	}
}

// TestSeedsVaryPrograms: different corpus seeds give different programs.
func TestSeedsVaryPrograms(t *testing.T) {
	a := corpusgen.One(corpusgen.Options{Seed: 1}, 0)
	b := corpusgen.One(corpusgen.Options{Seed: 2}, 0)
	if a.Source == b.Source {
		t.Error("seeds 1 and 2 generated identical program 0")
	}
}

// serialRun executes one generated program under the non-preemptive serial
// scheduler in one mode and returns the snapshot observables.
func serialRun(t *testing.T, p *corpusgen.Program, vanilla bool) map[string]int64 {
	t.Helper()
	prog, err := core.BuildWithOptions(p.Source, annotate.Options{})
	if err != nil {
		t.Fatalf("%s: build: %v", p.Name, err)
	}
	costs := vm.DefaultCosts()
	costs.Quantum = 1 << 40 // no timer preemption: the serial reference
	res, err := core.Run(prog, core.RunConfig{
		Mode:           kernel.Prevention,
		Opt:            kernel.OptBase,
		Vanilla:        vanilla,
		NumWatchpoints: 16,
		Cores:          1,
		Seed:           1,
		MaxTicks:       4_000_000,
		TimeoutTicks:   10_000,
		Costs:          costs,
		Policy:         vm.PolicyFunc(func(vm.SchedPoint) int { return 0 }),
		SnapshotVars:   p.SnapshotVars,
		Dispatch:       vm.DispatchStep,
	})
	if err != nil {
		t.Fatalf("%s (vanilla=%v): %v", p.Name, vanilla, err)
	}
	if res.Reason != "completed" {
		t.Fatalf("%s (vanilla=%v): run did not complete: %s (ticks=%d)", p.Name, vanilla, res.Reason, res.Ticks)
	}
	return res.Snapshot
}

// TestProgramsBuildAndRunSerial: every generated program compiles and
// terminates under the serial scheduler in both modes, with every witness
// at 0 — the ground-truth labeling contract.
func TestProgramsBuildAndRunSerial(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 10
	}
	progs, err := corpusgen.Generate(corpusgen.Options{Count: n, Seed: 7, Arrays: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range progs {
		van := serialRun(t, p, true)
		prev := serialRun(t, p, false)
		for _, w := range p.WitnessVars {
			if van[w] != 0 || prev[w] != 0 {
				t.Errorf("%s: witness %s nonzero in serial run (vanilla=%d prevention=%d)",
					p.Name, w, van[w], prev[w])
			}
		}
	}
}
