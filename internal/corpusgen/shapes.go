package corpusgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// The shape emitters. Each category's MiniC idiom is a randomized instance
// of the corresponding hand-written exploration fixture (see the package
// comment and internal/bugs/explore.go for the soundness argument); the
// randomized dimensions are worker count, iteration count, variable names,
// pad widths, increments, reset strides, decoy layout and compute churn.

// Name pools. Pools are disjoint from each other and from the driver's
// reserved names (gen_done, gen_lk, gen_dlk, gen_ring, gen_rsz, gen_arr,
// step, work, main,
// mash and the poke_/zap_/flip_/peek_ helper prefixes), so a program never
// collides with itself.
var (
	bugVarPool  = []string{"refcnt", "head", "seqno", "cursor", "slotid", "epoch", "genno", "offset", "depth", "handle"}
	witnessPool = []string{"skew", "tear", "clash", "stale", "drift", "mixup"}
	decoyPool   = []string{"hits", "acks", "reqs", "evts", "moved", "polls", "turns", "marks"}
)

// builder accumulates one program's parts while consuming the per-program
// random stream in a fixed order.
type builder struct {
	rng     *rand.Rand
	opts    Options
	workers int
	iters   int

	globals  []string // global declaration lines
	helpers  []string // helper function blocks
	locals   []string // step local names, in declaration order
	body     []string // step statements, fully indented lines
	init     []string // main() initialization lines
	witness  []string
	observed []string

	used map[string]bool
}

func newBuilder(rng *rand.Rand, opts Options) *builder {
	b := &builder{rng: rng, opts: opts, workers: 2, used: map[string]bool{}}
	if rng.Intn(3) == 0 {
		b.workers = 3
	}
	b.iters = opts.Iters - 2 + rng.Intn(5)
	if b.iters < 2 {
		b.iters = 2
	}
	return b
}

// pickName draws an unused name from a pool.
func (b *builder) pickName(pool []string) string {
	i := b.rng.Intn(len(pool))
	for b.used[pool[i]] {
		i = (i + 1) % len(pool)
	}
	b.used[pool[i]] = true
	return pool[i]
}

func (b *builder) declGlobal(name string) {
	b.globals = append(b.globals, fmt.Sprintf("int %s;", name))
}

func (b *builder) local(name string) {
	for _, l := range b.locals {
		if l == name {
			return
		}
	}
	b.locals = append(b.locals, name)
}

// pattern appends a statement block to step, wrapped in `if (cond)` when
// cond is nonempty. Lines come in at zero indent.
func (b *builder) pattern(cond string, lines ...string) {
	indent := "    "
	if cond != "" {
		b.body = append(b.body, fmt.Sprintf("    if (%s) {", cond))
		indent = "        "
	}
	for _, l := range lines {
		b.body = append(b.body, indent+l)
	}
	if cond != "" {
		b.body = append(b.body, "    }")
	}
}

// pad emits the witness window: a bare counter loop. The loop body advances
// only its counter — a loop-carried write to a scratch local would create a
// loop-resident local AR inside the window (see the Apache/21287 fixture
// note).
func pad(j string, rounds int) []string {
	return []string{
		fmt.Sprintf("%s = 0;", j),
		fmt.Sprintf("while (%s < %d) {", j, rounds),
		fmt.Sprintf("    %s = %s + 1;", j, j),
		"}",
	}
}

// symGuard guards symmetric patterns so a third worker (if any) does only
// decoy work.
func (b *builder) symGuard() string {
	if b.workers > 2 {
		return "id < 3"
	}
	return ""
}

// emit generates the whole program body for one category.
func (b *builder) emit(cat Category) {
	v := b.pickName(bugVarPool)
	w := b.pickName(witnessPool)
	switch cat {
	case CatRWR:
		b.emitRWR(v, w)
	case CatWWR:
		b.emitWWR(v, w)
	case CatRWW:
		b.emitRWW(v, w)
	case CatWRW:
		b.emitWRW(v, w)
	case CatBenign:
		b.emitBenign(v, w)
	default:
		panic(fmt.Sprintf("corpusgen: unknown category %q", cat))
	}
	b.emitDecoys()
	b.emitChurn()
}

// emitRWR is the lost update: two reads bracketing the pad disagree iff a
// remote write landed in the window. Symmetric; the region is read-first
// (R..R on v), so begins are never suspended.
func (b *builder) emitRWR(v, w string) {
	rounds := 3 + b.rng.Intn(5)
	inc := 1 + b.rng.Intn(3)
	b.declGlobal(v)
	b.declGlobal(w)
	b.witness = append(b.witness, w)
	b.local("c")
	b.local("c2")
	b.local("j")
	if start := b.rng.Intn(40); start > 0 {
		b.init = append(b.init, fmt.Sprintf("    %s = %d;\n", v, start))
	}
	lines := []string{fmt.Sprintf("c = %s;", v)}
	lines = append(lines, pad("j", rounds)...)
	lines = append(lines,
		fmt.Sprintf("c2 = %s;", v),
		"if (c2 != c) {",
		fmt.Sprintf("    %s = %s + 1;", w, w),
		"}",
		fmt.Sprintf("%s = c + %d;", v, inc),
	)
	b.pattern(b.symGuard(), lines...)
}

// emitWWR is the interleaved update, observed from the writing side: the
// owner writes then re-reads (a W..R region, which watches writes); a
// remote single-access poke landing in the window changes the value under
// the owner's feet. Asymmetric — the poker owns no region on v, so the
// owner's write-first begin is never suspended.
func (b *builder) emitWWR(v, w string) {
	rounds := 3 + b.rng.Intn(5)
	base := 1 + b.rng.Intn(5)
	b.declGlobal(v)
	b.declGlobal(w)
	b.witness = append(b.witness, w)
	b.local("r")
	b.local("j")
	b.helpers = append(b.helpers, fmt.Sprintf(`void poke_%s(int x) {
    %s = x;
}
`, v, v))
	lines := []string{fmt.Sprintf("%s = i + %d;", v, base)}
	lines = append(lines, pad("j", rounds)...)
	lines = append(lines,
		fmt.Sprintf("r = %s;", v),
		fmt.Sprintf("if (r != i + %d) {", base),
		fmt.Sprintf("    %s = %s + 1;", w, w),
		"}",
	)
	b.pattern("id == 1", lines...)
	// The poke writes values the owner never writes (negative), so a poke
	// landing in the window always trips the re-read.
	b.pattern("id == 2", fmt.Sprintf("poke_%s(0 - i - 1);", v))
}

// emitRWW is the Figure 1 check-then-act: the NULL check and the
// assignment bracket the pad; the re-check read sees a remote init land in
// between. The reset lives in zap_* so it never pairs with the assignment
// into a read-watching (W,W) region.
func (b *builder) emitRWW(v, w string) {
	rounds := 3 + b.rng.Intn(5)
	stride := 2 + b.rng.Intn(3)
	b.declGlobal(v)
	b.declGlobal(w)
	b.witness = append(b.witness, w)
	b.local("p")
	b.local("j")
	b.helpers = append(b.helpers, fmt.Sprintf(`void zap_%s(int x) {
    %s = 0;
}
`, v, v))
	b.pattern("id == 1",
		fmt.Sprintf("if (i %% %d == 0) {", stride),
		fmt.Sprintf("    zap_%s(0);", v),
		"}",
	)
	// The published value id*100+i+1 is always nonzero.
	lines := []string{
		fmt.Sprintf("if (%s == 0) {", v),
		"    p = id * 100 + i + 1;",
	}
	for _, l := range pad("j", rounds) {
		lines = append(lines, "    "+l)
	}
	lines = append(lines,
		fmt.Sprintf("    if (%s != 0) {", v),
		fmt.Sprintf("        %s = %s + 1;", w, w),
		"    }",
		fmt.Sprintf("    %s = p;", v),
		"}",
	)
	b.pattern(b.symGuard(), lines...)
}

// emitWRW is the torn publish: the writer invalidates then republishes
// (W..W, watching reads); a reader observing the transient 0 saw the dirty
// read. The reader's single read lives in peek_* so the reader owns no
// region and the writer's begin is never suspended (the Apache/25520
// inversion).
func (b *builder) emitWRW(v, w string) {
	rounds := 3 + b.rng.Intn(5)
	base := 1 + b.rng.Intn(5)
	start := 1 + b.rng.Intn(9)
	b.declGlobal(v)
	b.declGlobal(w)
	b.witness = append(b.witness, w)
	b.local("p")
	b.helpers = append(b.helpers, fmt.Sprintf(`int peek_%s(int x) {
    return %s;
}
`, v, v))
	var fl strings.Builder
	fmt.Fprintf(&fl, "void flip_%s(int i) {\n    int j;\n", v)
	fmt.Fprintf(&fl, "    %s = 0;\n", v)
	for _, l := range pad("j", rounds) {
		fmt.Fprintf(&fl, "    %s\n", l)
	}
	// The republished value i+base is always nonzero.
	fmt.Fprintf(&fl, "    %s = i + %d;\n}\n", v, base)
	b.helpers = append(b.helpers, fl.String())
	b.init = append(b.init, fmt.Sprintf("    %s = %d;\n", v, start))
	b.pattern("id == 1", fmt.Sprintf("flip_%s(i);", v))
	b.pattern("id == 2",
		fmt.Sprintf("p = peek_%s(0);", v),
		"if (p == 0) {",
		fmt.Sprintf("    %s = %s + 1;", w, w),
		"}",
	)
}

// emitBenign is the correctly locked decoy: the R-W-R witness idiom run
// under a lock, so the witness stays 0 and the counter's final value is the
// same under every schedule. Both are observables — flagging either is a
// false positive.
func (b *builder) emitBenign(v, w string) {
	rounds := 3 + b.rng.Intn(5)
	inc := 1 + b.rng.Intn(3)
	b.declGlobal(v)
	b.declGlobal(w)
	b.globals = append(b.globals, "int gen_vlk;")
	b.observed = append(b.observed, v, w)
	b.local("c")
	b.local("c2")
	b.local("j")
	lines := []string{"lock(gen_vlk);", fmt.Sprintf("c = %s;", v)}
	lines = append(lines, pad("j", rounds)...)
	lines = append(lines,
		fmt.Sprintf("c2 = %s;", v),
		"if (c2 != c) {",
		fmt.Sprintf("    %s = %s + 1;", w, w),
		"}",
		fmt.Sprintf("%s = c + %d;", v, inc),
		"unlock(gen_vlk);",
	)
	b.pattern("", lines...)
}

// emitDecoys adds 1-3 lock-protected counters with commutative updates
// (each increment depends only on id, i and constants, so every thread
// order sums to the same totals) and, per the array options, lock-protected
// array decoys at both ends of the footprint analysis: a ring buffer
// indexed modulo a runtime-loaded size (provably Unbounded — the divisor is
// a memory load, beyond any static bound) and a fixed array swept by a
// static-bound loop (provably bounded — the value-range pass tracks the
// induction variable).
func (b *builder) emitDecoys() {
	n := 1 + b.rng.Intn(3)
	b.globals = append(b.globals, "int gen_dlk;")
	for k := 0; k < n; k++ {
		d := b.pickName(decoyPool)
		b.declGlobal(d)
		b.observed = append(b.observed, d)
		stride := 1 + b.rng.Intn(3)
		amt := b.rng.Intn(5)
		lines := []string{
			"lock(gen_dlk);",
			fmt.Sprintf("%s = %s + id + %d;", d, d, amt),
			"unlock(gen_dlk);",
		}
		cond := ""
		if stride > 1 {
			cond = fmt.Sprintf("i %% %d == %d", stride, b.rng.Intn(stride))
		}
		b.pattern(cond, lines...)
	}
	if b.opts.Arrays {
		// The ring size lives in a global initialized by main: the index
		// divisor is a memory load, so the value-range analysis cannot
		// bound the ring accesses and the block stays Unbounded (a constant
		// divisor would be bounded by the modulo rule and defeat the
		// shape's purpose).
		b.globals = append(b.globals, "int gen_ring[8];", "int gen_rsz;")
		b.init = append(b.init, "    gen_rsz = 8;\n")
		b.local("ri")
		mult := 3 + b.rng.Intn(5)
		b.pattern("",
			"lock(gen_dlk);",
			fmt.Sprintf("ri = (id * %d + i) %% gen_rsz;", mult),
			"gen_ring[ri] = gen_ring[ri] + 1;",
			"unlock(gen_dlk);",
		)
	}
	if b.opts.BoundedArrays {
		b.globals = append(b.globals, "int gen_arr[8];")
		b.local("aj")
		amt := b.rng.Intn(5)
		b.pattern("",
			"lock(gen_dlk);",
			"aj = 0;",
			"while (aj < 8) {",
			fmt.Sprintf("    gen_arr[aj] = gen_arr[aj] + id + %d;", amt),
			"    aj = aj + 1;",
			"}",
			"unlock(gen_dlk);",
		)
	}
}

// emitChurn sometimes adds an AR-free compute helper call: its locals
// depend only on integer parameters, so the annotator finds nothing to
// bracket — padding the program with realistic annotation-free work.
func (b *builder) emitChurn() {
	if b.rng.Intn(2) == 0 {
		return
	}
	rounds := 3 + b.rng.Intn(6)
	b.helpers = append(b.helpers, fmt.Sprintf(`int mash(int v) {
    int x;
    int j;
    x = v + 10007;
    j = 0;
    while (j < %d) {
        x = x * 31 + j;
        x = x ^ (x >> 7);
        j = j + 1;
    }
    return x;
}
`, rounds))
	b.local("t")
	b.pattern("", "t = mash(id * 64 + i);")
}

// source assembles the final MiniC program around the bounded multi-worker
// driver (the exploreDriver shape from internal/bugs).
func (b *builder) source() string {
	var s strings.Builder
	for _, g := range b.globals {
		s.WriteString(g)
		s.WriteByte('\n')
	}
	s.WriteString("int gen_done;\nint gen_lk;\n")
	for _, h := range b.helpers {
		s.WriteString(h)
	}
	s.WriteString("void step(int id, int i) {\n")
	for _, l := range b.locals {
		fmt.Fprintf(&s, "    int %s;\n", l)
	}
	for _, l := range b.body {
		s.WriteString(l)
		s.WriteByte('\n')
	}
	s.WriteString("}\n")
	fmt.Fprintf(&s, `void work(int id) {
    int i;
    i = 0;
    while (i < %d) {
        step(id, i);
        i = i + 1;
    }
    lock(gen_lk);
    gen_done = gen_done + 1;
    unlock(gen_lk);
}
void main() {
`, b.iters)
	for _, l := range b.init {
		s.WriteString(l)
	}
	for id := 1; id <= b.workers; id++ {
		fmt.Fprintf(&s, "    spawn(work, %d);\n", id)
	}
	fmt.Fprintf(&s, `    while (gen_done < %d) {
        yield();
    }
}
`, b.workers)
	return s.String()
}
