package corpusgen_test

import (
	"testing"

	"kivati/internal/corpusgen"
)

// FuzzCorpusGen is the generator's soundness fuzzer: for ANY (seed, index,
// arrays) input, the generated program must parse, typecheck, compile, and
// terminate under the serial scheduler within MaxTicks in both modes, with
// every witness variable at 0 — the ground-truth labeling contract the
// soak harness scores against. serialRun fails the run on build errors,
// non-"completed" exit reasons, and tick exhaustion alike.
func FuzzCorpusGen(f *testing.F) {
	f.Add(int64(1), 0, false)
	f.Add(int64(1), 4, true)
	f.Add(int64(-7), 2, true)
	f.Add(int64(1<<40), 13, false)
	f.Add(int64(0), 3, true)
	f.Fuzz(func(t *testing.T, seed int64, index int, arrays bool) {
		if index < 0 {
			index = -(index + 1)
		}
		index %= 1024
		opts := corpusgen.Options{Count: index + 1, Seed: seed, Arrays: arrays, BoundedArrays: arrays}
		p := corpusgen.One(opts, index)
		if p.Source == "" {
			t.Fatalf("empty source for seed=%d index=%d", seed, index)
		}
		van := serialRun(t, p, true)
		prev := serialRun(t, p, false)
		for _, w := range p.WitnessVars {
			if van[w] != 0 || prev[w] != 0 {
				t.Errorf("%s: witness %s nonzero in serial run (vanilla=%d prevention=%d)",
					p.Name, w, van[w], prev[w])
			}
		}
		for _, v := range p.SnapshotVars {
			if _, ok := van[v]; !ok {
				t.Errorf("%s: snapshot var %s missing from the serial snapshot", p.Name, v)
			}
		}
	})
}
