package interleave

import (
	"testing"

	"kivati/internal/hw"
)

// RW is the composite access type used for unknown second accesses and for
// remote accesses that both read and write.
const RW = hw.ReadWrite

// figure2 is the full Figure 2 matrix, keyed (first, remote, second). Every
// triple of pure access types appears exactly once.
var figure2 = map[[3]hw.AccessType]bool{
	{R, R, R}: false,
	{R, R, W}: false,
	{R, W, R}: true, // local reads disagree
	{R, W, W}: true, // remote write lost
	{W, R, R}: false,
	{W, R, W}: true, // remote saw a dirty intermediate value
	{W, W, R}: true, // local read sees the remote write, not its own
	{W, W, W}: false,
}

// figure6 is the full Figure 6 matrix, keyed (first, second), including the
// unknown-second-access row for both first types.
var figure6 = map[[2]hw.AccessType]hw.AccessType{
	{R, R}:  W,
	{R, W}:  W,
	{W, R}:  W,
	{W, W}:  R,
	{R, RW}: W,  // both expansions watch writes only
	{W, RW}: RW, // (W,R) needs writes, (W,W) needs reads: watch both
}

// TestMatrixExhaustive walks every (first, second, remote) access triple —
// pure types for the interleaving, plus the composite cases each function
// accepts — and checks all three exported functions against the paper's
// matrices and against each other:
//
//	NonSerializable == Figure 2, WatchType == Figure 6,
//	Violation(f, s, [r]) == NonSerializable(f, r, s),
//	and WatchType is exactly the set of remotes that can violate.
func TestMatrixExhaustive(t *testing.T) {
	pure := []hw.AccessType{R, W}

	seen := 0
	for _, f := range pure {
		for _, r := range pure {
			for _, s := range pure {
				seen++
				want, ok := figure2[[3]hw.AccessType{f, r, s}]
				if !ok {
					t.Fatalf("triple (%v,%v,%v) missing from the Figure 2 table", f, r, s)
				}
				if got := NonSerializable(f, r, s); got != want {
					t.Errorf("NonSerializable(%v,%v,%v) = %v, want %v", f, r, s, got, want)
				}
				// A single recorded remote of exactly that type must agree.
				if got := Violation(f, s, []hw.AccessType{r}); got != want {
					t.Errorf("Violation(%v,%v,[%v]) = %v, disagrees with Figure 2 (%v)", f, s, r, got, want)
				}
				// A composite remote RW decomposes: it violates iff either
				// pure remote type would.
				either := NonSerializable(f, R, s) || NonSerializable(f, W, s)
				if got := Violation(f, s, []hw.AccessType{RW}); got != either {
					t.Errorf("Violation(%v,%v,[RW]) = %v, want %v", f, s, got, either)
				}
			}
		}
	}
	if seen != 8 {
		t.Fatalf("covered %d pure triples, want 8", seen)
	}

	for _, f := range pure {
		for _, s := range []hw.AccessType{R, W, RW} {
			want, ok := figure6[[2]hw.AccessType{f, s}]
			if !ok {
				t.Fatalf("pair (%v,%v) missing from the Figure 6 table", f, s)
			}
			got := WatchType(f, s)
			if got != want {
				t.Errorf("WatchType(%v,%v) = %v, want %v", f, s, got, want)
			}
			// Completeness and minimality against Figure 2: a remote type is
			// watched iff some expansion of the second access makes the
			// triple non-serializable.
			seconds := []hw.AccessType{s}
			if s == RW {
				seconds = pure
			}
			for _, r := range pure {
				canViolate := false
				for _, ss := range seconds {
					if NonSerializable(f, r, ss) {
						canViolate = true
					}
				}
				if watched := got&r != 0; watched != canViolate {
					t.Errorf("WatchType(%v,%v): remote %v watched=%v but canViolate=%v",
						f, s, r, watched, canViolate)
				}
			}
		}
	}

	// The four non-serializable cases and only those: the invariant the
	// whole detection engine rests on.
	n := 0
	for _, v := range figure2 {
		if v {
			n++
		}
	}
	if n != 4 {
		t.Fatalf("Figure 2 table has %d non-serializable triples, paper says 4", n)
	}
}

// TestViolationMultipleRemotes: the end_atomic check scans the whole
// recorded remote-access list, so one violating access among many benign
// ones is enough, and order does not matter.
func TestViolationMultipleRemotes(t *testing.T) {
	if !Violation(R, R, []hw.AccessType{R, R, R, W, R}) {
		t.Error("a single remote write among reads must violate an (R,R) region")
	}
	if Violation(W, W, []hw.AccessType{W, W, W}) {
		t.Error("remote writes alone cannot violate a (W,W) region")
	}
	if !Violation(W, W, []hw.AccessType{W, R, W}) {
		t.Error("a remote read among writes must violate a (W,W) region")
	}
	if Violation(R, W, nil) {
		t.Error("no remote accesses, no violation")
	}
}
