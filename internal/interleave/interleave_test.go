package interleave

import (
	"testing"
	"testing/quick"

	"kivati/internal/hw"
)

const (
	R = hw.Read
	W = hw.Write
)

// TestFigure2 checks all eight three-access interleavings against the
// paper's Figure 2 taxonomy.
func TestFigure2(t *testing.T) {
	cases := []struct {
		first, remote, second hw.AccessType
		unserializable        bool
	}{
		{R, R, R, false},
		{R, R, W, false},
		{R, W, R, true},  // reads observe different values
		{R, W, W, true},  // remote write lost
		{W, R, R, false}, // remote reads the committed local write
		{W, R, W, true},  // remote observes dirty intermediate value
		{W, W, R, true},  // local read sees remote's write, not its own
		{W, W, W, false},
	}
	for _, c := range cases {
		if got := NonSerializable(c.first, c.remote, c.second); got != c.unserializable {
			t.Errorf("NonSerializable(%v,%v,%v) = %v, want %v",
				c.first, c.remote, c.second, got, c.unserializable)
		}
	}
	// Exactly four interleavings are non-serializable.
	n := 0
	for _, f := range []hw.AccessType{R, W} {
		for _, r := range []hw.AccessType{R, W} {
			for _, s := range []hw.AccessType{R, W} {
				if NonSerializable(f, r, s) {
					n++
				}
			}
		}
	}
	if n != 4 {
		t.Errorf("%d non-serializable interleavings, paper says 4", n)
	}
}

// TestNonSerializableBruteForce verifies the taxonomy against a direct
// simulation: the interleaved execution is non-serializable iff its
// observable outcome (values read, final memory value) differs from both
// serial orders (remote-first and remote-last).
func TestNonSerializableBruteForce(t *testing.T) {
	// Simulate on concrete values: initial value 0, the local thread's two
	// writes store distinct values 1 and 3, the remote write stores 2.
	// Observations: local first read, remote read, local second read, final
	// value. Distinct local write values matter: with identical values the
	// W-R-W dirty read would be indistinguishable from the serial order.
	type obs struct{ r1, rRemote, r2, final int }
	run := func(ops [3]struct {
		who  int // 0 local, 1 remote
		kind hw.AccessType
	}) obs {
		mem := 0
		o := obs{-1, -1, -1, -1}
		localReadCount, localWriteCount := 0, 0
		for _, op := range ops {
			switch {
			case op.kind == W && op.who == 0:
				mem = 1 + 2*localWriteCount
				localWriteCount++
			case op.kind == W && op.who == 1:
				mem = 2
			case op.kind == R && op.who == 0:
				if localReadCount == 0 {
					o.r1 = mem
				} else {
					o.r2 = mem
				}
				localReadCount++
			case op.kind == R && op.who == 1:
				o.rRemote = mem
			}
		}
		o.final = mem
		return o
	}
	for _, f := range []hw.AccessType{R, W} {
		for _, r := range []hw.AccessType{R, W} {
			for _, s := range []hw.AccessType{R, W} {
				type op = struct {
					who  int
					kind hw.AccessType
				}
				interleaved := run([3]op{{0, f}, {1, r}, {0, s}})
				serialAfter := run([3]op{{0, f}, {0, s}, {1, r}})
				serialBefore := run([3]op{{1, r}, {0, f}, {0, s}})
				serializable := interleaved == serialAfter || interleaved == serialBefore
				if got := NonSerializable(f, r, s); got == serializable {
					t.Errorf("(%v,%v,%v): NonSerializable=%v but brute-force serializable=%v",
						f, r, s, got, serializable)
				}
			}
		}
	}
}

// TestFigure6 checks the watch-type derivation for the four known pairs and
// the unknown-second-access case.
func TestFigure6(t *testing.T) {
	cases := []struct {
		first, second, want hw.AccessType
	}{
		{R, R, W},
		{R, W, W},
		{W, R, W},
		{W, W, R},
		{W, hw.ReadWrite, hw.ReadWrite}, // second access unknown: watch both
		{R, hw.ReadWrite, W},
	}
	for _, c := range cases {
		if got := WatchType(c.first, c.second); got != c.want {
			t.Errorf("WatchType(%v,%v) = %v, want %v", c.first, c.second, got, c.want)
		}
	}
}

// Property: WatchType is complete and minimal — a remote access type is
// watched iff it can form a non-serializable interleaving with the pair.
func TestWatchTypeProperty(t *testing.T) {
	f := func(fSel, sSel uint8) bool {
		types := []hw.AccessType{R, W}
		first := types[fSel%2]
		second := types[sSel%2]
		w := WatchType(first, second)
		for _, remote := range types {
			needs := NonSerializable(first, remote, second)
			watched := w&remote != 0
			if needs != watched {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestViolationCases(t *testing.T) {
	cases := []struct {
		first, second hw.AccessType
		remotes       []hw.AccessType
		want          bool
	}{
		{R, R, nil, false},
		{R, R, []hw.AccessType{R}, false},
		{R, R, []hw.AccessType{W}, true},
		{R, R, []hw.AccessType{R, R, W}, true},
		{W, W, []hw.AccessType{W}, false},
		{W, W, []hw.AccessType{R}, true},
		{W, R, []hw.AccessType{R}, false},
		{W, R, []hw.AccessType{W}, true},
		{R, W, []hw.AccessType{W}, true},
		{R, W, []hw.AccessType{R}, false},
		// A recorded remote RW access (e.g. union register) decomposes.
		{R, R, []hw.AccessType{hw.ReadWrite}, true},
		{W, W, []hw.AccessType{hw.ReadWrite}, true},
	}
	for _, c := range cases {
		if got := Violation(c.first, c.second, c.remotes); got != c.want {
			t.Errorf("Violation(%v,%v,%v) = %v, want %v", c.first, c.second, c.remotes, got, c.want)
		}
	}
}
