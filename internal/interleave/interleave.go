// Package interleave contains the pure serializability logic at the heart of
// Kivati: the classification of three-access interleavings (first local
// access, one remote access, second local access) into serializable and
// non-serializable cases (paper Figure 2), and the derivation of which
// remote access types a watchpoint must monitor for a given local access
// pair (paper Figure 6).
package interleave

import "kivati/internal/hw"

// NonSerializable reports whether the interleaving
//
//	local(first) ... remote ... local(second)
//
// on the same shared variable has no equivalent serial execution. Exactly
// four of the eight combinations are non-serializable (Figure 2):
//
//	R-W-R: the two local reads observe different values; serially they
//	       would observe the same value.
//	W-W-R: the local read observes the remote write instead of the local
//	       thread's own preceding write.
//	W-R-W: the remote read observes an intermediate (dirty) value that no
//	       serial execution exposes.
//	R-W-W: the remote write is lost — the local second write overwrites it,
//	       yet the local read saw the pre-remote value.
func NonSerializable(first, remote, second hw.AccessType) bool {
	switch {
	case first == hw.Read && remote == hw.Write && second == hw.Read:
		return true
	case first == hw.Write && remote == hw.Write && second == hw.Read:
		return true
	case first == hw.Write && remote == hw.Read && second == hw.Write:
		return true
	case first == hw.Read && remote == hw.Write && second == hw.Write:
		return true
	}
	return false
}

// WatchType returns the remote access types a watchpoint must monitor for an
// atomic region whose local accesses are (first, second), per Figure 6:
//
//	(R, R) -> remote writes
//	(R, W) -> remote writes
//	(W, R) -> remote writes
//	(W, W) -> remote reads
//
// When the second access type is unknown because different control-flow
// paths end the AR with different access types (Figure 6 bottom-right), pass
// second == ReadWrite and both remote reads and writes are watched; the
// recorded first access type then disambiguates at end_atomic time, when the
// actual second access type is known.
func WatchType(first, second hw.AccessType) hw.AccessType {
	if second == hw.ReadWrite {
		return WatchType(first, hw.Read) | WatchType(first, hw.Write)
	}
	var w hw.AccessType
	for _, remote := range []hw.AccessType{hw.Read, hw.Write} {
		if NonSerializable(first, remote, second) {
			w |= remote
		}
	}
	return w
}

// Violation decides, given the recorded remote access types seen during an
// AR and the actual (first, second) local access types, whether a
// non-serializable interleaving occurred. This is the check the kernel runs
// when an end_atomic arrives (§3.2).
func Violation(first, second hw.AccessType, remotes []hw.AccessType) bool {
	for _, r := range remotes {
		for _, one := range []hw.AccessType{hw.Read, hw.Write} {
			if r&one != 0 && NonSerializable(first, one, second) {
				return true
			}
		}
	}
	return false
}
