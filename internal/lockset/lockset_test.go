package lockset

import (
	"testing"

	"kivati/internal/analysis"
	"kivati/internal/cfg"
	"kivati/internal/minic"
)

func compute(t *testing.T, src string) *Info {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Compute(prog, nil, Options{})
}

func TestSetOps(t *testing.T) {
	a := Of("m1", "m2")
	b := Of("m2", "m3")
	if got := a.Intersect(b); !got.Equal(Of("m2")) {
		t.Errorf("intersect = %v", got)
	}
	if got := a.Union(b); !got.Equal(Of("m1", "m2", "m3")) {
		t.Errorf("union = %v", got)
	}
	if got := a.Subtract(b); !got.Equal(Of("m1")) {
		t.Errorf("subtract = %v", got)
	}
	if got := Top().Intersect(a); !got.Equal(a) {
		t.Errorf("top ∩ a = %v", got)
	}
	if got := Top().Union(a); !got.IsTop() {
		t.Errorf("top ∪ a = %v", got)
	}
	if got := a.Subtract(Top()); !got.IsEmpty() {
		t.Errorf("a − top = %v", got)
	}
	if got := Top().Remove("m1"); !got.IsTop() {
		t.Errorf("top − m1 = %v", got)
	}
	if Of().IsTop() || !Of().IsEmpty() {
		t.Error("Of() should be the empty set")
	}
}

func TestProtectedCounter(t *testing.T) {
	info := compute(t, `
int m;
int counter;
void work() {
  lock(m);
  counter = counter + 1;
  unlock(m);
}
int main() {
  spawn(work, 0);
  work();
  return 0;
}
`)
	cand, ok := info.Candidate("counter")
	if !ok || !cand.Has("m") {
		t.Fatalf("candidate(counter) = %v, %v; want {m}", cand, ok)
	}
	if races := info.Races(); len(races) != 0 {
		t.Fatalf("unexpected races: %v", races)
	}
}

func TestUnprotectedAccessEmptiesCandidate(t *testing.T) {
	info := compute(t, `
int m;
int counter;
void work() {
  lock(m);
  counter = counter + 1;
  unlock(m);
}
int main() {
  spawn(work, 0);
  counter = 0;
  return 0;
}
`)
	cand, _ := info.Candidate("counter")
	if !cand.IsEmpty() {
		t.Fatalf("candidate(counter) = %v; want {}", cand)
	}
	races := info.Races()
	if len(races) != 1 || races[0].Var != "counter" {
		t.Fatalf("races = %v; want one on counter", races)
	}
	r := races[0]
	if r.First.Locks.Intersect(r.Second.Locks).IsEmpty() == false {
		t.Fatalf("offending pair locksets not disjoint: %v / %v", r.First.Locks, r.Second.Locks)
	}
	if r.First.Pos.Line == 0 || r.Second.Pos.Line == 0 {
		t.Fatalf("diagnostic lost positions: %+v", r)
	}
}

// A callee called only with the lock held inherits it via its calling
// context, so its accesses count as protected.
func TestInterproceduralContext(t *testing.T) {
	info := compute(t, `
int m;
int counter;
void bump() {
  counter = counter + 1;
}
void work() {
  lock(m);
  bump();
  unlock(m);
}
int main() {
  spawn(work, 0);
  work();
  return 0;
}
`)
	cand, _ := info.Candidate("counter")
	if !cand.Has("m") {
		t.Fatalf("candidate(counter) = %v; want {m}", cand)
	}
	if races := info.Races(); len(races) != 0 {
		t.Fatalf("unexpected races: %v", races)
	}
}

// A callee that is also a spawn target runs with no locks: its context must
// fall to empty even if one call site holds the lock.
func TestSpawnTargetContextIsEmpty(t *testing.T) {
	info := compute(t, `
int m;
int counter;
void bump() {
  counter = counter + 1;
}
int main() {
  spawn(bump, 0);
  lock(m);
  bump();
  unlock(m);
  return 0;
}
`)
	cand, _ := info.Candidate("counter")
	if !cand.IsEmpty() {
		t.Fatalf("candidate(counter) = %v; want {} (bump also runs as a thread)", cand)
	}
}

// A callee that releases the lock must clobber it in the caller's lockset
// after the call.
func TestCalleeMayReleaseSummary(t *testing.T) {
	info := compute(t, `
int m;
int counter;
void helper() {
  unlock(m);
}
void work() {
  lock(m);
  helper();
  counter = counter + 1;
  lock(m);
  counter = counter + 1;
  unlock(m);
}
int main() {
  spawn(work, 0);
  work();
  return 0;
}
`)
	cand, _ := info.Candidate("counter")
	if !cand.IsEmpty() {
		t.Fatalf("candidate(counter) = %v; want {} (access after helper() unprotected)", cand)
	}
}

// A callee that always takes the lock contributes it after the call.
func TestCalleeMustAcquireSummary(t *testing.T) {
	info := compute(t, `
int m;
int counter;
void acquire() {
  lock(m);
}
void work() {
  acquire();
  counter = counter + 1;
  unlock(m);
}
int main() {
  spawn(work, 0);
  work();
  return 0;
}
`)
	cand, _ := info.Candidate("counter")
	if !cand.Has("m") {
		t.Fatalf("candidate(counter) = %v; want {m}", cand)
	}
}

// Unlocking through a pointer can release anything: every tracked lock must
// be dropped.
func TestUnlockThroughPointerClobbersAll(t *testing.T) {
	info := compute(t, `
int m;
int counter;
void work(int which) {
  int *p;
  p = &m;
  lock(m);
  unlock(*p);
  counter = counter + 1;
}
int main() {
  spawn(work, 0);
  work(0);
  return 0;
}
`)
	cand, _ := info.Candidate("counter")
	if !cand.IsEmpty() {
		t.Fatalf("candidate(counter) = %v; want {} (aliased unlock)", cand)
	}
}

// A local shadowing a global lock names a stack address, not the global
// lock: taking it must not count as holding the global.
func TestShadowedLockIgnored(t *testing.T) {
	info := compute(t, `
int m;
int counter;
void work() {
  int m;
  m = 0;
  lock(m);
  counter = counter + 1;
  unlock(m);
}
int main() {
  spawn(work, 0);
  work();
  return 0;
}
`)
	cand, _ := info.Candidate("counter")
	if !cand.IsEmpty() {
		t.Fatalf("candidate(counter) = %v; want {} (lock operand is a local)", cand)
	}
}

// Branch join: the lock is only held on one arm, so it is not provably held
// after the join.
func TestBranchJoinIntersects(t *testing.T) {
	info := compute(t, `
int m;
int counter;
void work(int c) {
  if (c) {
    lock(m);
  }
  counter = counter + 1;
}
int main() {
  spawn(work, 0);
  work(1);
  return 0;
}
`)
	cand, _ := info.Candidate("counter")
	if !cand.IsEmpty() {
		t.Fatalf("candidate(counter) = %v; want {} (conditionally held)", cand)
	}
}

// Read-only shared globals are never reported.
func TestReadOnlyGlobalNotReported(t *testing.T) {
	info := compute(t, `
int cfg;
void work() {
  int x;
  x = cfg;
  print(x);
}
int main() {
  spawn(work, 0);
  work();
  return 0;
}
`)
	if races := info.Races(); len(races) != 0 {
		t.Fatalf("unexpected races on read-only global: %v", races)
	}
}

// Lock variables themselves must not be reported as races.
func TestSyncVarNotReported(t *testing.T) {
	info := compute(t, `
int m;
int counter;
void work() {
  lock(m);
  counter = counter + 1;
  unlock(m);
}
int main() {
  spawn(work, 0);
  m = 0;
  work();
  return 0;
}
`)
	for _, r := range info.Races() {
		if r.Var == "m" {
			t.Fatalf("sync var reported as race: %v", r)
		}
	}
	if !info.SyncVar("m") {
		t.Error("m not recognized as a sync var")
	}
}

// ProveRegion accepts a consistently locked region and rejects the same
// region when a remote unprotected access exists.
func TestProveRegion(t *testing.T) {
	src := `
int m;
int counter;
void work() {
  lock(m);
  counter = counter + 1;
  counter = counter + 1;
  unlock(m);
}
int main() {
  spawn(work, 0);
  work();
  return 0;
}
`
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info := Compute(prog, nil, Options{})
	fi := info.Funcs["work"]
	var first, second *cfg.Node
	for _, n := range fi.Graph.Nodes {
		for _, a := range accessesOf(n) {
			if a == "counter" {
				if first == nil {
					first = n
				} else if second == nil && n != first {
					second = n
				}
			}
		}
	}
	if first == nil || second == nil {
		t.Fatal("could not locate the two counter statements")
	}
	lk, ok := info.ProveRegion("work", "counter", first, second)
	if !ok || lk != "m" {
		t.Fatalf("ProveRegion = %q, %v; want m, true", lk, ok)
	}
	if _, ok := info.ProveRegion("work", "m", first, second); ok {
		t.Error("sync var must not be provable")
	}
}

// Address-taken globals are never provable: a pointer alias could access
// them outside any lock without the name-based analysis seeing it.
func TestAddressTakenNotProvable(t *testing.T) {
	src := `
int m;
int counter;
void poke(int unused) {
  int *p;
  p = &counter;
  *p = 7;
}
void work() {
  lock(m);
  counter = counter + 1;
  counter = counter + 1;
  unlock(m);
}
int main() {
  spawn(work, 0);
  poke(0);
  work();
  return 0;
}
`
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info := Compute(prog, nil, Options{})
	if !info.AddressTaken("counter") {
		t.Fatal("counter should be address-taken")
	}
	fi := info.Funcs["work"]
	var nodes []*cfg.Node
	for _, n := range fi.Graph.Nodes {
		for _, a := range accessesOf(n) {
			if a == "counter" {
				nodes = append(nodes, n)
				break
			}
		}
	}
	if len(nodes) < 2 {
		t.Fatal("could not locate the counter statements")
	}
	if _, ok := info.ProveRegion("work", "counter", nodes[0], nodes[1]); ok {
		t.Error("address-taken global must not be provable")
	}
}

// accessesOf returns the names of variables a node accesses.
func accessesOf(n *cfg.Node) []string {
	var out []string
	for _, a := range analysis.NodeAccesses(n) {
		if !a.Key.Deref {
			out = append(out, a.Key.Name)
		}
	}
	return out
}
