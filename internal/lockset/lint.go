package lockset

import (
	"fmt"
	"strings"

	"kivati/internal/analysis"
	"kivati/internal/minic"
)

// RaceAccess is one side of an offending access pair in a race diagnostic.
type RaceAccess struct {
	Func  string
	Type  uint8 // minic.AccRead or minic.AccWrite
	Pos   minic.Pos
	Locks Set // locks provably held at the access
}

func (a RaceAccess) kind() string {
	if a.Type == minic.AccWrite {
		return "write"
	}
	return "read"
}

// Race is an Eraser-style static diagnostic: a written shared global whose
// accesses hold no common lock, with a concrete pair of accesses whose
// locksets are disjoint.
type Race struct {
	Var           string
	Accesses      int // named accesses program-wide
	First, Second RaceAccess
}

// String renders the diagnostic; positions are line:col into the source the
// analysis ran over.
func (r Race) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "race: global %q: no lock protects all %d accesses\n", r.Var, r.Accesses)
	fmt.Fprintf(&b, "  %s at %s in %s holds %s\n", r.First.kind(), r.First.Pos, r.First.Func, r.First.Locks)
	fmt.Fprintf(&b, "  %s at %s in %s holds %s", r.Second.kind(), r.Second.Pos, r.Second.Func, r.Second.Locks)
	return b.String()
}

// Races reports every written global whose candidate lockset is empty —
// i.e. no single lock is held at all of its accesses — along with the
// earliest pair of accesses with provably disjoint locksets. Globals used
// only as lock operands and globals that are never written are skipped
// (read sharing is trivially serializable). Order follows the program's
// global declarations.
func (i *Info) Races() []Race {
	var out []Race
	for _, g := range i.Prog.Globals {
		if i.syncVars[g.Name] {
			continue
		}
		accs := i.globalAccesses(g.Name)
		if len(accs) < 2 {
			continue
		}
		wrote := false
		for _, a := range accs {
			if a.Type == minic.AccWrite {
				wrote = true
				break
			}
		}
		if !wrote {
			continue
		}
		cand := Top()
		for _, a := range accs {
			cand = cand.Intersect(a.Locks)
		}
		if !cand.IsEmpty() {
			continue
		}
		// Walk the running intersection to the first access that empties
		// it, then pick the earliest earlier access pairwise-disjoint with
		// it: the two ends of a concrete unprotected conflict.
		cur := accs[0].Locks
		second := 1
		for ; second < len(accs); second++ {
			if cur.IsEmpty() {
				break
			}
			cur = cur.Intersect(accs[second].Locks)
			if cur.IsEmpty() {
				break
			}
		}
		if second == len(accs) {
			second = len(accs) - 1
		}
		first := 0
		for j := 0; j < second; j++ {
			if accs[j].Locks.Intersect(accs[second].Locks).IsEmpty() {
				first = j
				break
			}
		}
		out = append(out, Race{
			Var:      g.Name,
			Accesses: len(accs),
			First:    accs[first],
			Second:   accs[second],
		})
	}
	return out
}

// globalAccesses collects every named access to the global in program
// order (declaration order of functions, node order, evaluation order),
// with the locks held across the access's node.
func (i *Info) globalAccesses(name string) []RaceAccess {
	var out []RaceAccess
	for _, fname := range i.order {
		fi := i.Funcs[fname]
		if fi.shadowed[name] {
			continue
		}
		for _, n := range fi.Graph.Nodes {
			for _, a := range analysis.NodeAccesses(n) {
				if a.Key.Deref || a.Key.Name != name {
					continue
				}
				out = append(out, RaceAccess{
					Func:  fname,
					Type:  a.Type,
					Pos:   analysis.ExprPos(a.Lvalue),
					Locks: fi.held[n.ID],
				})
			}
		}
	}
	return out
}
